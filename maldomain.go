// Package maldomain is the public API of this repository: a from-scratch
// Go implementation of "Detecting Malicious Domains with Behavioral
// Modeling and Graph Embedding" (Lei et al., ICDCS 2019).
//
// The system models the DNS behavior of effective second-level domains
// (e2LDs) observed in a network's traffic through three bipartite graphs
// — domains vs. querying hosts, domains vs. resolved IP addresses, and
// domains vs. active minutes — projects each onto the domain vertex set
// with Jaccard-weighted edges, learns latent feature vectors per view
// with the LINE graph-embedding algorithm, classifies domains as
// malicious or benign with an RBF-kernel SVM, and mines malware families
// with X-Means clustering.
//
// # Quick start
//
//	det := maldomain.NewDetector(maldomain.Config{
//		Start: captureStart,
//		Days:  31,
//	})
//	for _, obs := range observations {      // joined DNS query/response records
//		det.Consume(obs)
//	}
//	if err := det.BuildModel(); err != nil { ... }
//	clf, err := det.TrainClassifier(labeledDomains, labels)
//	score, ok := clf.Score("suspicious-domain.example")
//
// See examples/ for complete programs, including end-to-end runs against
// the synthetic campus-network traffic generator used to reproduce the
// paper's evaluation, and EXPERIMENTS.md for the paper-vs-measured
// results of every table and figure.
package maldomain

import (
	"io"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/shard"
	"repro/internal/stream"
)

// Config parameterizes a Detector; see the field documentation in
// internal/core. The zero value plus Start/Days uses the paper's
// defaults throughout (pruning rules of §4.1, LINE with both proximity
// orders, RBF SVM with C=0.09 and γ=0.06).
type Config = core.Config

// Detector is the end-to-end detection system of the paper's Figure 2.
type Detector = core.Detector

// Classifier is a trained malicious-domain classifier (§6.2).
type Classifier = core.Classifier

// ModelStats summarizes a built model.
type ModelStats = core.ModelStats

// BuildReport is the per-stage timing and size report recorded by
// Detector.BuildModel; StageReport is one stage's entry.
type BuildReport = core.BuildReport

// StageReport records one build stage's cost and output size.
type StageReport = core.StageReport

// Scorer serves a persisted model (Detector.SaveModel) without any
// pipeline state: Score/Predict/FeatureVector/ScoreBatch over the
// retained domains. Load one with LoadScorer.
type Scorer = core.Scorer

// Result is one domain's scoring outcome from Scorer.ScoreBatch,
// Scorer.Lookup, or the fold-in path: decision value, thresholded
// label (1 = malicious), whether the domain was in the model, a
// calibrated confidence in [0,1], and the verdict's source.
type Result = core.Result

// Verdict sources carried in Result.Source: "model" for domains in the
// persisted decision table, "foldin" for provisional embeddings scored
// by the classifier, "knn" when the nearest-neighbor vote overrode the
// classifier on a fold-in embedding.
const (
	SourceModel  = core.SourceModel
	SourceFoldin = core.SourceFoldin
	SourceKNN    = core.SourceKNN
)

// Fold-in: scoring domains outside the model from observed relations
// to retained domains (the deployment answer to "what about a domain
// the window never retained?"). Relation is one weighted edge in one
// behavioral view; Scorer.ScoreObserved folds the relations into a
// provisional embedding and scores it. FoldInCache accumulates
// per-domain evidence with bounded capacity and TTL expiry — the state
// behind the daemon's POST /v1/observe — and Rolling feeds it at day
// boundaries through StreamConfig.FoldIn.

// Relation is one observed edge between an unknown domain and a
// retained neighbor in one behavioral view.
type Relation = core.Relation

// FoldInCache is a bounded, TTL'd store of fold-in evidence shared by
// the serving daemon and the streaming detector.
type FoldInCache = core.FoldInCache

// FoldInConfig bounds a FoldInCache (entries, relations per domain,
// evidence lifetime); the zero value uses the serving defaults.
type FoldInConfig = core.FoldInConfig

// NewFoldInCache returns an empty fold-in cache for cfg.
func NewFoldInCache(cfg FoldInConfig) *FoldInCache { return core.NewFoldInCache(cfg) }

// Observation is one joined DNS query/response record — the schema the
// paper's collector extracts from packet captures (§2).
type Observation = pipeline.Input

// View selects one of the three behavioral similarity views of §4.2.
type View = bipartite.View

// The three behavioral views: shared querying hosts (Eq. 1), shared
// resolved addresses (Eq. 2), and shared active minutes (Eq. 3).
const (
	ViewQuery = bipartite.ViewQuery
	ViewIP    = bipartite.ViewIP
	ViewTime  = bipartite.ViewTime
)

// Views lists all three views in canonical order.
var Views = bipartite.Views

// NewDetector returns a Detector for cfg.
func NewDetector(cfg Config) *Detector { return core.NewDetector(cfg) }

// Pluggable stage registry (see internal/core/registry.go for the
// backend contract): embedders, classifiers, and view sets are
// registered by name and selected through Config.Embedder,
// Config.Classifier, and Config.Views. The defaults ("line", "svm",
// "all") reproduce the paper's pipeline byte-identically.

// Embedder learns one view's embedding from its similarity graph.
type Embedder = core.Embedder

// DomainClassifier scores feature vectors on the malicious/benign axis.
type DomainClassifier = core.DomainClassifier

// Embedding holds one view's learned vertex representations.
type Embedding = core.Embedding

// EmbedSpec carries the per-build parameters an Embedder receives.
type EmbedSpec = core.EmbedSpec

// RegisterEmbedder adds an embedding backend; duplicate names panic.
func RegisterEmbedder(name string, factory func(Config) Embedder) {
	core.RegisterEmbedder(name, factory)
}

// RegisterClassifier adds a classification backend with its persisted-
// form loader; duplicate names panic.
func RegisterClassifier(name string, factory func(Config) DomainClassifier, loader func(io.Reader) (DomainClassifier, error)) {
	core.RegisterClassifier(name, factory, loader)
}

// RegisterViewSet adds a named view selection; duplicate names panic.
func RegisterViewSet(name string, views []View) { core.RegisterViewSet(name, views) }

// Embedders, Classifiers, and ViewSets list the registered backend
// names, sorted.
func Embedders() []string   { return core.Embedders() }
func Classifiers() []string { return core.Classifiers() }
func ViewSets() []string    { return core.ViewSets() }

// LoadScorer reads a model stream written by Detector.SaveModel and
// returns a serving-only Scorer.
func LoadScorer(r io.Reader) (*Scorer, error) { return core.LoadScorer(r) }

// Sentinel errors re-exported from the core implementation. The
// surface follows one convention throughout: per-domain lookups on hot
// paths (FeatureVector, Score, Predict, ScoreBatch) use the
// (value, ok) comma-ok form, whole-call failures return errors
// wrapping these sentinels, and Scorer.Lookup bridges the two by
// reporting an unknown domain as an error wrapping ErrUnknownDomain.
var (
	// ErrNotBuilt is returned by model accessors before BuildModel.
	ErrNotBuilt = core.ErrNotBuilt
	// ErrAlreadyBuilt is returned by a second BuildModel call.
	ErrAlreadyBuilt = core.ErrAlreadyBuilt
	// ErrNoDomains is returned when no domains survive pruning or no
	// labeled domain is in the retained vertex set.
	ErrNoDomains = core.ErrNoDomains
	// ErrUnknownDomain is wrapped by Scorer.Lookup for domains outside
	// the model's retained set; the serving daemon maps it to HTTP 404.
	ErrUnknownDomain = core.ErrUnknownDomain
)

// The streaming deployment layer (the real-time mode of the paper's
// introduction), re-exported so deployments need only this package.

// Rolling is the streaming detector: feed observations with Consume,
// call EndOfDay at each day boundary to remodel the sliding window and
// collect alerts.
type Rolling = stream.Rolling

// StreamConfig parameterizes a Rolling detector (window length, alert
// budget, model configuration, label source).
type StreamConfig = stream.Config

// Alert is one newly surfaced suspicious domain from a Rolling
// detector's remodel.
type Alert = stream.Alert

// Labeler supplies the currently known labels when a streaming remodel
// retrains the classifier.
type Labeler = stream.Labeler

// NewRolling returns a streaming detector for cfg.
func NewRolling(cfg StreamConfig) (*Rolling, error) { return stream.New(cfg) }

// Sharded ingestion (StreamConfig.Shards > 1) partitions observations
// by device across supervised shard workers with retry, backoff, and
// quarantine; the merged output is byte-identical to a serial run.

// ShardDegraded is a day boundary's degraded-merge report when one or
// more ingestion shards were quarantined: the day, the missing
// partitions, and the observations lost with them (Rolling.ShardDegraded).
type ShardDegraded = shard.Degraded

// ShardError is the typed terminal failure of one ingestion shard:
// which partition, how many restart attempts, and the final cause.
type ShardError = shard.ShardError

// Crash safety: a Rolling detector checkpoints its full state at day
// boundaries (Rolling.WriteCheckpoint) and a restart restores it
// (RestoreRolling / RestoreRollingFile) and replays the input stream;
// with a deterministic model configuration the resumed alert feed is
// byte-identical to an uninterrupted run.

// Cursor locates a checkpoint in the caller's input and output
// streams: the last completed day boundary and the alert-feed offset.
type Cursor = stream.Cursor

// DegradedError reports a day boundary whose remodel or training
// failed; the stream stays healthy and callers keep going (errors.As).
type DegradedError = stream.DegradedError

// RestoreRolling reads a checkpoint written by Rolling.Checkpoint or
// Rolling.WriteCheckpoint; cfg must match the writing configuration.
func RestoreRolling(r io.Reader, cfg StreamConfig) (*Rolling, Cursor, error) {
	return stream.Restore(r, cfg)
}

// RestoreRollingFile is RestoreRolling over a checkpoint file; a
// missing file satisfies os.IsNotExist (treat it as a cold start).
func RestoreRollingFile(path string, cfg StreamConfig) (*Rolling, Cursor, error) {
	return stream.RestoreFile(path, cfg)
}

// Checkpoint-failure sentinels.
var (
	// ErrCorruptCheckpoint reports a checkpoint stream that is foreign,
	// truncated, fails its CRC, or carries inconsistent state.
	ErrCorruptCheckpoint = stream.ErrCorruptCheckpoint
	// ErrFingerprintMismatch reports a checkpoint written under a
	// different configuration.
	ErrFingerprintMismatch = stream.ErrFingerprintMismatch
)

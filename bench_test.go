// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design choices listed
// in DESIGN.md §4. Each benchmark reports its headline quality metric
// (AUC, cluster count, discovered domains, ...) via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates both the cost and the result
// of every experiment at test scale; run `cmd/experiments -scale full`
// for the paper-scale numbers recorded in EXPERIMENTS.md.
package maldomain_test

import (
	"sync"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/dnssim"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/line"
	"repro/internal/pipeline"
	"repro/internal/svm"
)

// benchEnv lazily builds one shared small-scale environment. Building
// costs ~20s; every benchmark that only *evaluates* (classify, cluster,
// expand) reuses it, while generation/build benches construct their own.
var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		envVal, envErr = experiments.Build(dnssim.SmallScenario(1234),
			experiments.Options{Seed: 1234, KFolds: 5})
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

// BenchmarkFig1TrafficGeneration regenerates the Figure 1 traffic series:
// a full synthetic campus capture folded into per-day query volume and
// unique FQDN/e2LD counts.
func BenchmarkFig1TrafficGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := dnssim.NewScenario(dnssim.SmallScenario(uint64(i)))
		p := pipeline.NewProcessor(pipeline.Config{
			Start: s.Config.Start,
			Days:  s.Config.Days,
			DHCP:  s.DHCP(),
		})
		n := 0
		s.Generate(func(ev dnssim.Event) {
			p.Consume(pipeline.Input(ev))
			n++
		})
		series := p.Series()
		if len(series) == 0 {
			b.Fatal("empty series")
		}
		b.ReportMetric(float64(n), "queries")
	}
}

// BenchmarkTable1SpamCluster regenerates Table 1: X-Means over the
// combined embeddings must surface a majority-spam (.bid wordlist)
// cluster.
func BenchmarkTable1SpamCluster(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := env.Clusters()
		if err != nil {
			b.Fatal(err)
		}
		r, ok := experiments.FindStyleCluster(reports, "wordlist")
		if !ok {
			b.Fatal("no spam cluster found")
		}
		b.ReportMetric(float64(len(r.Domains)), "cluster_size")
		b.ReportMetric(r.TaggedFrac, "purity")
	}
}

// BenchmarkTable2DGACluster regenerates Table 2: the Conficker-style DGA
// cluster.
func BenchmarkTable2DGACluster(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := env.Clusters()
		if err != nil {
			b.Fatal(err)
		}
		r, ok := experiments.FindStyleCluster(reports, "conficker")
		if !ok {
			b.Fatal("no DGA cluster found")
		}
		b.ReportMetric(float64(len(r.Domains)), "cluster_size")
		b.ReportMetric(r.TaggedFrac, "purity")
	}
}

// BenchmarkFig4SeedExpansion regenerates Figure 4: discovery counts from
// cluster expansion with a seed of known malicious domains.
func BenchmarkFig4SeedExpansion(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := env.Fig4([]int{0, 10, 25, 50})
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		b.ReportMetric(float64(last.True), "true_found")
		b.ReportMetric(float64(last.Suspicious), "suspicious")
	}
}

// BenchmarkFig5TSNE regenerates Figure 5: the 2-D t-SNE layout of five
// random domain clusters.
func BenchmarkFig5TSNE(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Layout)), "points")
	}
}

// BenchmarkFig6CombinedROC regenerates Figure 6: k-fold CV of the SVM on
// the combined three-view embedding (paper AUC: 0.94).
func BenchmarkFig6CombinedROC(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AUC, "auc")
	}
}

// BenchmarkFig7PerViewROC regenerates Figure 7: single-view AUCs (paper:
// query 0.89, IP 0.83, temporal 0.65).
func BenchmarkFig7PerViewROC(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		per, err := env.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(per[bipartite.ViewQuery].AUC, "auc_query")
		b.ReportMetric(per[bipartite.ViewIP].AUC, "auc_ip")
		b.ReportMetric(per[bipartite.ViewTime].AUC, "auc_time")
	}
}

// BenchmarkExposureBaseline regenerates the §8.2 comparison: the Exposure
// statistical-feature extractor with a J48 tree (paper AUC: 0.88).
func BenchmarkExposureBaseline(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.ExposureBaseline()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AUC, "auc")
	}
}

// BenchmarkBeliefPropBaseline evaluates the graph-inference extension
// baseline (belief propagation over the host-domain graph).
func BenchmarkBeliefPropBaseline(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.BeliefPropBaseline()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AUC, "auc")
	}
}

// BenchmarkSelfTraining runs the §7.2.1 label-acquisition loop.
func BenchmarkSelfTraining(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rounds, err := env.SelfTraining(3, 80)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rounds[len(rounds)-1].HeldOutAUC, "final_auc")
	}
}

// ---- Ablations (DESIGN.md §4) ----

// ablationAUC trains/evaluates an SVM over embeddings of the query-view
// projection built with the given knobs, reporting 5-fold CV AUC.
func ablationAUC(b *testing.B, env *experiments.Env, minSim float64, prune bipartite.PruneConfig,
	order line.Order, dim, negatives int) float64 {
	b.Helper()
	proc := env.Detector.Processor()
	q, _, _ := bipartite.Build(proc.Stats(), proc.DeviceCount(), prune)
	proj := bipartite.Project(q, bipartite.ProjectConfig{MinSimilarity: minSim})
	edges := make([]graph.Edge, len(proj.Edges))
	for i, e := range proj.Edges {
		edges[i] = graph.Edge{U: e.U, V: e.V, W: e.W}
	}
	g, err := graph.Build(len(q.Domains), edges)
	if err != nil {
		b.Fatal(err)
	}
	emb, err := line.Train(g, line.Config{
		Dim: dim, Order: order, Negatives: negatives,
		Samples: 2_000_000, Seed: 5, Workers: 0,
	})
	if err != nil {
		b.Fatal(err)
	}
	idx := q.DomainIndex()
	var X [][]float64
	var y []int
	for i, d := range env.Domains {
		j, ok := idx[d]
		if !ok {
			continue
		}
		X = append(X, emb.Vectors[j])
		y = append(y, env.Labels[i])
	}
	scores, err := eval.CrossValidate(y, 5, 7, func(trainIdx []int) (func(int) float64, error) {
		tx := make([][]float64, len(trainIdx))
		ty := make([]int, len(trainIdx))
		for i, k := range trainIdx {
			tx[i] = X[k]
			ty[i] = y[k]
		}
		m, err := svm.Train(tx, ty, svm.Config{})
		if err != nil {
			return nil, err
		}
		return func(i int) float64 { return m.Decision(X[i]) }, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	auc, err := eval.AUC(scores, y)
	if err != nil {
		b.Fatal(err)
	}
	return auc
}

// BenchmarkAblationLINEOrder compares first-order, second-order, and
// combined LINE objectives on the query view.
func BenchmarkAblationLINEOrder(b *testing.B) {
	env := benchEnvironment(b)
	for _, tc := range []struct {
		name  string
		order line.Order
	}{
		{"first", line.OrderFirst},
		{"second", line.OrderSecond},
		{"both", line.OrderBoth},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				auc := ablationAUC(b, env, 0.02, bipartite.DefaultPrune, tc.order, 32, 5)
				b.ReportMetric(auc, "auc")
			}
		})
	}
}

// BenchmarkAblationEmbeddingDim sweeps the per-view embedding size.
func BenchmarkAblationEmbeddingDim(b *testing.B) {
	env := benchEnvironment(b)
	for _, dim := range []int{8, 16, 32, 64} {
		b.Run(benchName("dim", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				auc := ablationAUC(b, env, 0.02, bipartite.DefaultPrune, line.OrderBoth, dim, 5)
				b.ReportMetric(auc, "auc")
			}
		})
	}
}

// BenchmarkAblationProjectionThreshold sweeps the minimum Jaccard weight
// kept in the one-mode projection.
func BenchmarkAblationProjectionThreshold(b *testing.B) {
	env := benchEnvironment(b)
	for _, tc := range []struct {
		name string
		min  float64
	}{
		{"keepall", 0},
		{"t01", 0.01},
		{"t05", 0.05},
		{"t10", 0.10},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				auc := ablationAUC(b, env, tc.min, bipartite.DefaultPrune, line.OrderBoth, 32, 5)
				b.ReportMetric(auc, "auc")
			}
		})
	}
}

// BenchmarkAblationPruning compares the paper's §4.1 pruning rules with
// pruning disabled (every observed domain kept).
func BenchmarkAblationPruning(b *testing.B) {
	env := benchEnvironment(b)
	for _, tc := range []struct {
		name  string
		prune bipartite.PruneConfig
	}{
		{"paper", bipartite.DefaultPrune},
		{"off", bipartite.PruneConfig{MaxHostFrac: 1.0, MinHosts: 1}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				auc := ablationAUC(b, env, 0.02, tc.prune, line.OrderBoth, 32, 5)
				b.ReportMetric(auc, "auc")
			}
		})
	}
}

// BenchmarkAblationSimilarityMeasure compares the paper's Jaccard
// projection weights against cosine (Ochiai) and overlap coefficients.
func BenchmarkAblationSimilarityMeasure(b *testing.B) {
	env := benchEnvironment(b)
	for _, m := range []bipartite.Measure{
		bipartite.MeasureJaccard, bipartite.MeasureCosine, bipartite.MeasureOverlap,
	} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				auc := ablationAUCMeasure(b, env, m)
				b.ReportMetric(auc, "auc")
			}
		})
	}
}

// ablationAUCMeasure is ablationAUC with a custom similarity measure.
func ablationAUCMeasure(b *testing.B, env *experiments.Env, m bipartite.Measure) float64 {
	b.Helper()
	proc := env.Detector.Processor()
	q, _, _ := bipartite.Build(proc.Stats(), proc.DeviceCount(), bipartite.DefaultPrune)
	proj := bipartite.Project(q, bipartite.ProjectConfig{Measure: m, MinSimilarity: 0.02})
	edges := make([]graph.Edge, len(proj.Edges))
	for i, e := range proj.Edges {
		edges[i] = graph.Edge{U: e.U, V: e.V, W: e.W}
	}
	g, err := graph.Build(len(q.Domains), edges)
	if err != nil {
		b.Fatal(err)
	}
	emb, err := line.Train(g, line.Config{Dim: 32, Samples: 2_000_000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	idx := q.DomainIndex()
	var X [][]float64
	var y []int
	for i, d := range env.Domains {
		j, ok := idx[d]
		if !ok {
			continue
		}
		X = append(X, emb.Vectors[j])
		y = append(y, env.Labels[i])
	}
	scores, err := eval.CrossValidate(y, 5, 7, func(trainIdx []int) (func(int) float64, error) {
		tx := make([][]float64, len(trainIdx))
		ty := make([]int, len(trainIdx))
		for i, k := range trainIdx {
			tx[i] = X[k]
			ty[i] = y[k]
		}
		model, err := svm.Train(tx, ty, svm.Config{})
		if err != nil {
			return nil, err
		}
		return func(i int) float64 { return model.Decision(X[i]) }, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	auc, err := eval.AUC(scores, y)
	if err != nil {
		b.Fatal(err)
	}
	return auc
}

// BenchmarkAblationNegatives sweeps LINE's negative-sample count.
func BenchmarkAblationNegatives(b *testing.B) {
	env := benchEnvironment(b)
	for _, neg := range []int{1, 5, 10} {
		b.Run(benchName("neg", neg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				auc := ablationAUC(b, env, 0.02, bipartite.DefaultPrune, line.OrderBoth, 32, neg)
				b.ReportMetric(auc, "auc")
			}
		})
	}
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + string(buf[i:])
}

// Command dnsgen generates a synthetic campus-network DNS trace with
// planted malware families, in the text log format consumed by
// cmd/maldetect, plus a ground-truth label file.
//
// Usage:
//
//	dnsgen [-scale small|full] [-seed N] [-out trace.tsv] [-truth truth.tsv]
//
// The truth file has one "e2ld<TAB>label<TAB>family" line per planted
// domain, where label is "malicious" or "benign".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/dnssim"
	"repro/internal/pipeline"
)

func main() {
	var (
		scale     = flag.String("scale", "small", "scenario scale: small or full")
		seed      = flag.Uint64("seed", 1, "generation seed")
		outPath   = flag.String("out", "trace.tsv", "output trace path (- for stdout)")
		truthPath = flag.String("truth", "truth.tsv", "output ground-truth path (empty to skip)")
		dhcpPath  = flag.String("dhcp", "", "output DHCP lease log path (empty to skip)")
	)
	flag.Parse()

	if err := run(*scale, *seed, *outPath, *truthPath, *dhcpPath); err != nil {
		fmt.Fprintln(os.Stderr, "dnsgen:", err)
		os.Exit(1)
	}
}

func run(scale string, seed uint64, outPath, truthPath, dhcpPath string) error {
	var cfg dnssim.Config
	switch scale {
	case "small":
		cfg = dnssim.SmallScenario(seed)
	case "full":
		cfg = dnssim.DefaultScenario(seed)
	default:
		return fmt.Errorf("unknown scale %q (want small or full)", scale)
	}
	s := dnssim.NewScenario(cfg)

	out := os.Stdout
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriterSize(out, 1<<20)
	count := 0
	var writeErr error
	s.Generate(func(ev dnssim.Event) {
		if writeErr != nil {
			return
		}
		if err := pipeline.WriteLogLine(w, pipeline.Input(ev)); err != nil {
			writeErr = err
			return
		}
		count++
	})
	if writeErr != nil {
		return fmt.Errorf("writing trace: %w", writeErr)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dnsgen: wrote %d observations (%d hosts, %d days)\n",
		count, cfg.Hosts, cfg.Days)

	if truthPath == "" {
		return nil
	}
	tf, err := os.Create(truthPath)
	if err != nil {
		return err
	}
	defer tf.Close()
	tw := bufio.NewWriter(tf)
	truth := s.TruthTable()
	domains := make([]string, 0, len(truth))
	for d := range truth {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for _, d := range domains {
		l := truth[d]
		label := "benign"
		if l.Malicious {
			label = "malicious"
		}
		if _, err := fmt.Fprintf(tw, "%s\t%s\t%s\n", d, label, l.Family); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dnsgen: wrote %d truth labels\n", len(domains))

	if dhcpPath == "" {
		return nil
	}
	df, err := os.Create(dhcpPath)
	if err != nil {
		return err
	}
	defer df.Close()
	dw := bufio.NewWriter(df)
	leases := s.Leases()
	for _, l := range leases {
		if _, err := fmt.Fprintf(dw, "%s\t%s\t%s\t%s\n",
			l.MAC, l.IP,
			l.Start.UTC().Format("2006-01-02T15:04:05Z07:00"),
			l.End.UTC().Format("2006-01-02T15:04:05Z07:00")); err != nil {
			return err
		}
	}
	if err := dw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dnsgen: wrote %d DHCP leases\n", len(leases))
	return nil
}

package main

// The loadgen subcommand: a load-generating client for maldetect
// serve, thin glue over internal/loadgen. The query population comes
// from the served model file (-model, so the run exercises the known-
// domain hot path) or a plain list file (-domains, one domain per
// line, for adversarial mixes). Ctrl-C ends the run early and still
// prints the report for what completed.

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
)

func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	var (
		baseURL     = fs.String("url", "http://127.0.0.1:8953", "base URL of the running daemon")
		modelPath   = fs.String("model", "", "model file; its retained domains become the query population")
		domainsPath = fs.String("domains", "", "file with one query domain per line (alternative to -model)")
		workers     = fs.Int("workers", 8, "concurrent request workers")
		conns       = fs.Int("conns", 0, "max HTTP connections (0 = workers)")
		qps         = fs.Float64("qps", 0, "target requests/sec via token bucket (0 = closed-loop)")
		duration    = fs.Duration("duration", 0, "run length in wall time")
		requests    = fs.Int64("n", 0, "run length in requests (with -duration: whichever trips first)")
		batch       = fs.Int("batch", 0, "domains per batch POST (0 or 1 = single-domain GETs)")
		ndjson      = fs.Bool("ndjson", false, "request the streamed NDJSON batch framing")
		retries     = fs.Int("retries", 0, "retries per request on transport errors and 503")
		backoff     = fs.Duration("backoff", 20*time.Millisecond, "base retry backoff (doubles per attempt)")
		timeout     = fs.Duration("timeout", 5*time.Second, "per-request timeout")
		jsonOut     = fs.Bool("json", false, "emit the report in cmd/benchjson's JSON schema")
		name        = fs.String("name", "BenchmarkLoadgen", "benchmark name for -json output")
		check       = fs.Bool("check", false, "exit nonzero unless the run had successes and no errors")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *duration <= 0 && *requests <= 0 {
		return fmt.Errorf("loadgen: set -duration and/or -n")
	}
	domains, err := loadgenDomains(*modelPath, *domainsPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "maldetect: loadgen: %d query domains against %s\n", len(domains), *baseURL)

	// Ctrl-C / SIGTERM ends the run early; the report still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:   *baseURL,
		Domains:   domains,
		Workers:   *workers,
		Conns:     *conns,
		TargetQPS: *qps,
		Duration:  *duration,
		Requests:  *requests,
		Batch:     *batch,
		NDJSON:    *ndjson,
		Retries:   *retries,
		Backoff:   *backoff,
		Timeout:   *timeout,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		out, err := rep.BenchJSON(*name)
		if err != nil {
			return err
		}
		if _, err := fmt.Println(string(out)); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, rep.String())
	} else {
		if _, err := fmt.Println(rep.String()); err != nil {
			return err
		}
	}
	if *check {
		if rep.OK == 0 {
			return fmt.Errorf("loadgen: no successful requests (first error: %s)", rep.FirstError)
		}
		if rep.Errors > 0 {
			return fmt.Errorf("loadgen: %d failed requests (first error: %s)", rep.Errors, rep.FirstError)
		}
	}
	return nil
}

// loadgenDomains resolves the query population: the retained domains
// of a model file, or a plain one-per-line list.
func loadgenDomains(modelPath, domainsPath string) ([]string, error) {
	switch {
	case modelPath != "" && domainsPath != "":
		return nil, fmt.Errorf("loadgen: -model and -domains are mutually exclusive")
	case modelPath != "":
		f, err := os.Open(modelPath)
		if err != nil {
			return nil, err
		}
		sc, err := core.LoadScorer(bufio.NewReaderSize(f, 1<<20))
		_ = f.Close() // read-only; decode errors surface through err
		if err != nil {
			return nil, err
		}
		return sc.Domains(), nil
	case domainsPath != "":
		f, err := os.Open(domainsPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var out []string
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			out = append(out, line)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("loadgen: %s holds no domains", domainsPath)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("loadgen: give -model or -domains for the query population")
	}
}

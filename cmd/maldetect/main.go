// Command maldetect runs the paper's end-to-end detection pipeline on a
// DNS trace in the text log format written by cmd/dnsgen: it builds the
// three bipartite graphs, learns LINE embeddings, trains the SVM on a
// labeled subset, and scores every retained domain.
//
// Usage:
//
//	maldetect -trace trace.tsv -truth truth.tsv [-train-frac 0.7] [-seed N] [-top 25]
//
// The truth file supplies labels; a train-frac fraction (stratified) is
// used for training and the rest is scored, printing the top suspicious
// held-out domains and held-out AUC.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dhcp"
	"repro/internal/eval"
	"repro/internal/mathx"
	"repro/internal/pipeline"
)

func main() {
	var (
		tracePath = flag.String("trace", "trace.tsv", "input trace (text log format)")
		truthPath = flag.String("truth", "truth.tsv", "ground-truth labels")
		dhcpPath  = flag.String("dhcp", "", "DHCP lease log for device pinning (optional)")
		trainFrac = flag.Float64("train-frac", 0.7, "fraction of labeled domains used for training")
		seed      = flag.Uint64("seed", 1, "seed for embedding/SVM/shuffle")
		top       = flag.Int("top", 25, "suspicious domains to print")
	)
	flag.Parse()
	if err := run(*tracePath, *truthPath, *dhcpPath, *trainFrac, *seed, *top); err != nil {
		fmt.Fprintln(os.Stderr, "maldetect:", err)
		os.Exit(1)
	}
}

func run(tracePath, truthPath, dhcpPath string, trainFrac float64, seed uint64, top int) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()

	// First pass: discover the capture window so the detector's minute
	// and day indices are anchored correctly.
	var first, last time.Time
	n := 0
	if err := pipeline.ReadLog(bufio.NewReaderSize(f, 1<<20), func(in pipeline.Input) {
		if n == 0 || in.Time.Before(first) {
			first = in.Time
		}
		if in.Time.After(last) {
			last = in.Time
		}
		n++
	}); err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("trace %s is empty", tracePath)
	}
	days := int(last.Sub(first).Hours()/24) + 1
	start := first.Truncate(24 * time.Hour)

	var resolver *dhcp.Resolver
	if dhcpPath != "" {
		leases, err := readLeases(dhcpPath)
		if err != nil {
			return err
		}
		resolver = dhcp.NewResolver(leases)
		fmt.Fprintf(os.Stderr, "maldetect: loaded %d DHCP leases\n", len(leases))
	}

	det := core.NewDetector(core.Config{Start: start, Days: days, DHCP: resolver, Seed: seed})
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	if err := pipeline.ReadLog(bufio.NewReaderSize(f, 1<<20), func(in pipeline.Input) {
		det.Consume(in)
	}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "maldetect: consumed %d observations over %d days\n", n, days)

	if err := det.BuildModel(); err != nil {
		return err
	}
	stats, err := det.Stats()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "maldetect: %d devices, %d observed e2LDs, %d retained\n",
		stats.Devices, stats.ObservedE2LDs, stats.RetainedE2LDs)

	truth, err := readTruth(truthPath)
	if err != nil {
		return err
	}
	retained, err := det.Domains()
	if err != nil {
		return err
	}
	var domains []string
	var labels []int
	for _, d := range retained {
		if lab, ok := truth[d]; ok {
			domains = append(domains, d)
			labels = append(labels, lab)
		}
	}
	if len(domains) < 10 {
		return fmt.Errorf("only %d labeled retained domains", len(domains))
	}

	// Stratified train/test split.
	rng := mathx.NewRNG(seed).SplitLabeled("split")
	perm := rng.Perm(len(domains))
	var trainD, testD []string
	var trainY, testY []int
	cut := int(trainFrac * float64(len(domains)))
	for i, p := range perm {
		if i < cut {
			trainD = append(trainD, domains[p])
			trainY = append(trainY, labels[p])
		} else {
			testD = append(testD, domains[p])
			testY = append(testY, labels[p])
		}
	}

	clf, err := det.TrainClassifier(trainD, trainY)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "maldetect: trained on %d domains (%d SVs)\n",
		len(clf.Used), clf.Model().NumSV())

	type scored struct {
		domain string
		score  float64
		label  int
	}
	var results []scored
	var scores []float64
	var ys []int
	for i, d := range testD {
		s, ok := clf.Score(d)
		if !ok {
			continue
		}
		results = append(results, scored{d, s, testY[i]})
		scores = append(scores, s)
		ys = append(ys, testY[i])
	}
	if auc, err := eval.AUC(scores, ys); err == nil {
		fmt.Printf("held-out AUC: %.4f over %d domains\n", auc, len(scores))
	}
	sort.Slice(results, func(i, j int) bool { return results[i].score > results[j].score })
	fmt.Printf("\ntop %d suspicious held-out domains:\n", top)
	fmt.Printf("%-36s %10s  %s\n", "domain", "score", "truth")
	for i, r := range results {
		if i >= top {
			break
		}
		lab := "benign"
		if r.label == 1 {
			lab = "malicious"
		}
		fmt.Printf("%-36s %10.4f  %s\n", r.domain, r.score, lab)
	}
	return nil
}

// readLeases parses the DHCP lease log written by cmd/dnsgen:
// MAC, IP, start, end (RFC 3339), tab-separated.
func readLeases(path string) ([]dhcp.Lease, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []dhcp.Lease
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 4 {
			return nil, fmt.Errorf("dhcp line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		start, err := time.Parse(time.RFC3339, fields[2])
		if err != nil {
			return nil, fmt.Errorf("dhcp line %d: bad start: %w", lineNo, err)
		}
		end, err := time.Parse(time.RFC3339, fields[3])
		if err != nil {
			return nil, fmt.Errorf("dhcp line %d: bad end: %w", lineNo, err)
		}
		out = append(out, dhcp.Lease{MAC: fields[0], IP: fields[1], Start: start, End: end})
	}
	return out, sc.Err()
}

func readTruth(path string) (map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]int)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 2 {
			return nil, fmt.Errorf("truth line %d: want at least 2 fields", lineNo)
		}
		switch fields[1] {
		case "malicious":
			out[fields[0]] = 1
		case "benign":
			out[fields[0]] = 0
		default:
			return nil, fmt.Errorf("truth line %d: unknown label %q", lineNo, fields[1])
		}
	}
	return out, sc.Err()
}

// Command maldetect runs the paper's end-to-end detection pipeline on a
// DNS trace in the text log format written by cmd/dnsgen.
//
// Usage:
//
//	maldetect -trace trace.tsv -truth truth.tsv [-train-frac 0.7] [-seed N] [-top 25]
//	maldetect train -trace trace.tsv -truth truth.tsv -out model.bin [-dhcp leases.tsv] [-seed N]
//	maldetect score -model model.bin [-top 25] [domain ...]
//	maldetect serve -model model.bin [-addr 127.0.0.1:8953] [-max-inflight 256] [-timeout 5s] [-drain 10s] [-max-batch 10000] [-max-body N] [-foldin-cap N] [-foldin-ttl 15m] [-pprof]
//	maldetect stream -trace trace.tsv -truth truth.tsv [-window 2] [-dim 16] [-feed alerts.tsv] [-checkpoint stream.ckpt] [-shards N] [-shard-dir DIR]
//	maldetect loadgen -url http://127.0.0.1:8953 (-model model.bin | -domains file) [-duration 10s | -n N] [-workers 8] [-qps 0] [-batch 0] [-ndjson] [-json] [-check]
//
// The default (no subcommand) mode builds the model, trains the SVM on a
// stratified train-frac fraction of the labeled domains, and scores the
// held-out rest, printing the top suspicious domains and held-out AUC.
//
// train and stream accept -embedder/-classifier/-views to select
// registered stage backends (core's pluggable registry); backends
// lists every registration. The defaults reproduce the paper's
// LINE+SVM pipeline.
//
// The train subcommand builds the model, trains the SVM on every labeled
// retained domain, and persists the full model (domain set, per-view
// embeddings, classifier, config fingerprint) to -out; score loads such
// a file and serves decision values for the given domains — or ranks all
// retained domains when none are given — without rebuilding anything.
// Explicitly queried domains print the full verdict: score, label,
// confidence, and source (always "model" from a persisted file).
// Every model build prints a per-stage report (wall time, vertex/edge/
// sample counts) to stderr.
//
// The serve subcommand runs the scoring daemon (internal/serve) on a
// persisted model: GET /v1/score/{domain} and POST /v1/score/batch
// answer scoring queries, POST /v1/observe accepts fold-in evidence so
// domains outside the model still get a provisional verdict (-foldin-cap
// and -foldin-ttl bound the evidence cache), SIGHUP or POST /v1/reload
// hot-swaps the model file without dropping in-flight requests,
// /healthz/live, /healthz/ready (alias /healthz), and /metrics
// (Prometheus text) expose operational state, and
// SIGINT/SIGTERM drain gracefully. The bound address is printed to
// stderr, so -addr with port 0 works for smoke tests. docs/api.md is
// the wire-format reference.
//
// The loadgen subcommand (loadgen.go) drives a running daemon with a
// worker-pool HTTP client — paced or closed-loop, single GETs or
// batches, optionally over the NDJSON framing — and reports sustained
// throughput with latency percentiles, as text or in cmd/benchjson's
// JSON schema. NDJSON runs parse the enriched result lines and tally
// verdict sources (model vs foldin vs knn) into the report.
//
// The stream subcommand runs the crash-safe rolling detector
// (internal/stream) day by day over the trace, appending alerts to a
// feed file. With -checkpoint, a checkpoint is written atomically after
// every day boundary and a restart resumes from it, reproducing the
// feed byte-identically (see stream.go). With -shards N (N > 1),
// ingestion runs through the fault-tolerant shard pool
// (internal/shard): the trace is partitioned by device across N
// supervised workers, crashes and hangs are retried with backoff, and
// the merged output — feed and checkpoint alike — stays byte-identical
// to a serial run; quarantined shards degrade the affected days and
// are logged, never fatal.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dhcp"
	"repro/internal/eval"
	"repro/internal/mathx"
	"repro/internal/pipeline"
	"repro/internal/serve"
)

func main() {
	var err error
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		switch os.Args[1] {
		case "train":
			err = runTrain(os.Args[2:])
		case "score":
			err = runScore(os.Args[2:])
		case "serve":
			err = runServe(os.Args[2:])
		case "stream":
			err = runStream(os.Args[2:])
		case "loadgen":
			err = runLoadgen(os.Args[2:])
		case "backends":
			err = runBackends(os.Args[2:])
		default:
			err = fmt.Errorf("unknown subcommand %q (want train, score, serve, stream, backends, or loadgen)", os.Args[1])
		}
	} else {
		var (
			tracePath = flag.String("trace", "trace.tsv", "input trace (text log format)")
			truthPath = flag.String("truth", "truth.tsv", "ground-truth labels")
			dhcpPath  = flag.String("dhcp", "", "DHCP lease log for device pinning (optional)")
			trainFrac = flag.Float64("train-frac", 0.7, "fraction of labeled domains used for training")
			seed      = flag.Uint64("seed", 1, "seed for embedding/SVM/shuffle")
			top       = flag.Int("top", 25, "suspicious domains to print")
		)
		flag.Parse()
		err = run(*tracePath, *truthPath, *dhcpPath, *trainFrac, *seed, *top)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "maldetect:", err)
		os.Exit(1)
	}
}

// loadDetector reads the trace (two passes: one to discover the capture
// window, one to consume), builds the model, and prints the per-stage
// build report.
func loadDetector(tracePath, dhcpPath string, seed uint64, sel stageSelection) (*core.Detector, error) {
	start, days, n, err := traceWindow(tracePath)
	if err != nil {
		return nil, err
	}
	resolver, err := loadResolver(dhcpPath)
	if err != nil {
		return nil, err
	}

	det := core.NewDetector(core.Config{
		Start: start, Days: days, DHCP: resolver, Seed: seed,
		Embedder: sel.embedder, Classifier: sel.classifier, Views: sel.views,
	})
	f, err := os.Open(tracePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := pipeline.ReadLog(bufio.NewReaderSize(f, 1<<20), det.Consume); err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "maldetect: consumed %d observations over %d days\n", n, days)

	if err := det.BuildModel(); err != nil {
		return nil, err
	}
	printBuildReport(det)
	stats, err := det.Stats()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "maldetect: %d devices, %d observed e2LDs, %d retained\n",
		stats.Devices, stats.ObservedE2LDs, stats.RetainedE2LDs)
	return det, nil
}

// printBuildReport writes the staged-build timing table to stderr.
func printBuildReport(det *core.Detector) {
	report, err := det.BuildReport()
	if err != nil {
		return
	}
	fmt.Fprintln(os.Stderr, "maldetect: build stages:")
	for _, st := range report.Stages {
		line := fmt.Sprintf("  %-14s %12s  %7d vertices  %8d edges", st.Name,
			st.Duration.Round(time.Microsecond), st.Vertices, st.Edges)
		if st.Samples > 0 {
			line += fmt.Sprintf("  %9d samples", st.Samples)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	fmt.Fprintf(os.Stderr, "  %-14s %12s\n", "total", report.Total.Round(time.Microsecond))
}

// labeledRetained intersects the truth file with the retained domain set.
func labeledRetained(det *core.Detector, truthPath string) ([]string, []int, error) {
	truth, err := readTruth(truthPath)
	if err != nil {
		return nil, nil, err
	}
	retained, err := det.Domains()
	if err != nil {
		return nil, nil, err
	}
	var domains []string
	var labels []int
	for _, d := range retained {
		if lab, ok := truth[d]; ok {
			domains = append(domains, d)
			labels = append(labels, lab)
		}
	}
	return domains, labels, nil
}

// runTrain builds a model from a trace, trains the classifier on every
// labeled retained domain, and persists the result for score.
func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	var (
		tracePath = fs.String("trace", "trace.tsv", "input trace (text log format)")
		truthPath = fs.String("truth", "truth.tsv", "ground-truth labels")
		dhcpPath  = fs.String("dhcp", "", "DHCP lease log for device pinning (optional)")
		seed      = fs.Uint64("seed", 1, "seed for embedding/SVM")
		outPath   = fs.String("out", "model.bin", "output model file")
	)
	sel := stageFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	det, err := loadDetector(*tracePath, *dhcpPath, *seed, *sel)
	if err != nil {
		return err
	}
	domains, labels, err := labeledRetained(det, *truthPath)
	if err != nil {
		return err
	}
	if len(domains) < 2 {
		return fmt.Errorf("only %d labeled retained domains", len(domains))
	}
	clf, err := det.TrainClassifier(domains, labels)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "maldetect: trained on %d domains (%s)\n",
		len(clf.Used), classifierSummary(clf))

	out, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	if err := det.SaveModel(out, clf); err != nil {
		_ = out.Close() // the save error is the one worth reporting
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	info, err := os.Stat(*outPath)
	if err != nil {
		return err
	}
	fmt.Printf("saved model: %s (%d bytes, %d domains)\n", *outPath, info.Size(), len(mustDomains(det)))
	fmt.Printf("fingerprint: %s\n", det.Config().Fingerprint())
	return nil
}

func mustDomains(det *core.Detector) []string {
	d, _ := det.Domains()
	return d
}

// runScore loads a persisted model and serves decision values: for the
// domains given as arguments, or ranked over every retained domain.
func runScore(args []string) error {
	fs := flag.NewFlagSet("score", flag.ExitOnError)
	var (
		modelPath = fs.String("model", "model.bin", "model file written by train")
		top       = fs.Int("top", 25, "domains to print when ranking the whole model")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	sc, err := core.LoadScorer(bufio.NewReaderSize(f, 1<<20))
	_ = f.Close() // read-only; decode errors surface through err
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "maldetect: loaded model with %d domains\n", len(sc.Domains()))
	fmt.Fprintf(os.Stderr, "maldetect: fingerprint: %s\n", sc.Fingerprint())
	fmt.Fprintf(os.Stderr, "maldetect: backends: embedder=%s classifier=%s\n",
		sc.EmbedderName(), sc.ClassifierName())

	if fs.NArg() > 0 {
		for _, d := range fs.Args() {
			res, ok := sc.Result(d)
			if !ok {
				fmt.Printf("%-36s not in model\n", d)
				continue
			}
			verdict := "benign"
			if res.Label == 1 {
				verdict = "malicious"
			}
			fmt.Printf("%-36s %10.4f  %-9s  conf %.2f  %s\n",
				d, res.Score, verdict, res.Confidence, res.Source)
		}
		return nil
	}

	type scored struct {
		domain string
		score  float64
	}
	var results []scored
	for _, d := range sc.Domains() {
		if s, ok := sc.Score(d); ok {
			results = append(results, scored{d, s})
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].score > results[j].score })
	fmt.Printf("top %d suspicious domains:\n", *top)
	fmt.Printf("%-36s %10s\n", "domain", "score")
	for i, r := range results {
		if i >= *top {
			break
		}
		fmt.Printf("%-36s %10.4f\n", r.domain, r.score)
	}
	return nil
}

// runServe starts the model-serving daemon and blocks until a
// terminating signal drains it. SIGHUP hot-reloads the model file; a
// failed reload keeps the current model serving.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		modelPath   = fs.String("model", "model.bin", "model file written by train")
		addr        = fs.String("addr", "127.0.0.1:8953", "listen address (port 0 picks an ephemeral port)")
		maxInflight = fs.Int("max-inflight", 256, "max concurrent scoring requests before shedding with 503")
		reqTimeout  = fs.Duration("timeout", 5*time.Second, "per-request timeout")
		drain       = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		maxBatch    = fs.Int("max-batch", 10000, "max domains per batch request")
		maxBody     = fs.Int64("max-body", 0, "max batch body bytes (0 derives from -max-batch)")
		foldinCap   = fs.Int("foldin-cap", 0, "max fold-in cache entries (0 = default 65536)")
		foldinTTL   = fs.Duration("foldin-ttl", 0, "fold-in evidence lifetime (0 = default 15m)")
		pprofOn     = fs.Bool("pprof", false, "expose /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "maldetect: "+format+"\n", a...)
	}
	srv, err := serve.New(serve.Config{
		ModelPath:        *modelPath,
		MaxInFlight:      *maxInflight,
		RequestTimeout:   *reqTimeout,
		DrainTimeout:     *drain,
		MaxBatch:         *maxBatch,
		MaxBody:          *maxBody,
		FoldInMaxEntries: *foldinCap,
		FoldInTTL:        *foldinTTL,
		EnablePprof:      *pprofOn,
		Logf:             logf,
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logf("loaded model %s: %d domains", *modelPath, len(srv.Scorer().Domains()))
	logf("fingerprint: %s", srv.Scorer().Fingerprint())
	logf("serving on http://%s", l.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	shutdownErr := make(chan error, 1)
	go func() {
		for sig := range sigs {
			if sig == syscall.SIGHUP {
				// Reload logs its own outcome; a failure keeps serving.
				_ = srv.Reload()
				continue
			}
			logf("received %v", sig)
			shutdownErr <- srv.Shutdown(context.Background())
			return
		}
	}()

	if err := srv.Serve(l); err != nil {
		return err
	}
	// Serve returned cleanly, meaning Shutdown ran; surface its error
	// (nil unless the drain deadline expired).
	return <-shutdownErr
}

func run(tracePath, truthPath, dhcpPath string, trainFrac float64, seed uint64, top int) error {
	det, err := loadDetector(tracePath, dhcpPath, seed, stageSelection{})
	if err != nil {
		return err
	}
	domains, labels, err := labeledRetained(det, truthPath)
	if err != nil {
		return err
	}
	if len(domains) < 10 {
		return fmt.Errorf("only %d labeled retained domains", len(domains))
	}

	// Stratified train/test split.
	rng := mathx.NewRNG(seed).SplitLabeled("split")
	perm := rng.Perm(len(domains))
	var trainD, testD []string
	var trainY, testY []int
	cut := int(trainFrac * float64(len(domains)))
	for i, p := range perm {
		if i < cut {
			trainD = append(trainD, domains[p])
			trainY = append(trainY, labels[p])
		} else {
			testD = append(testD, domains[p])
			testY = append(testY, labels[p])
		}
	}

	clf, err := det.TrainClassifier(trainD, trainY)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "maldetect: trained on %d domains (%s)\n",
		len(clf.Used), classifierSummary(clf))

	type scored struct {
		domain string
		score  float64
		label  int
	}
	var results []scored
	var scores []float64
	var ys []int
	for i, d := range testD {
		s, ok := clf.Score(d)
		if !ok {
			continue
		}
		results = append(results, scored{d, s, testY[i]})
		scores = append(scores, s)
		ys = append(ys, testY[i])
	}
	if auc, err := eval.AUC(scores, ys); err == nil {
		fmt.Printf("held-out AUC: %.4f over %d domains\n", auc, len(scores))
	}
	sort.Slice(results, func(i, j int) bool { return results[i].score > results[j].score })
	fmt.Printf("\ntop %d suspicious held-out domains:\n", top)
	fmt.Printf("%-36s %10s  %s\n", "domain", "score", "truth")
	for i, r := range results {
		if i >= top {
			break
		}
		lab := "benign"
		if r.label == 1 {
			lab = "malicious"
		}
		fmt.Printf("%-36s %10.4f  %s\n", r.domain, r.score, lab)
	}
	return nil
}

// readLeases parses the DHCP lease log written by cmd/dnsgen:
// MAC, IP, start, end (RFC 3339), tab-separated.
func readLeases(path string) ([]dhcp.Lease, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []dhcp.Lease
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 4 {
			return nil, fmt.Errorf("dhcp line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		start, err := time.Parse(time.RFC3339, fields[2])
		if err != nil {
			return nil, fmt.Errorf("dhcp line %d: bad start: %w", lineNo, err)
		}
		end, err := time.Parse(time.RFC3339, fields[3])
		if err != nil {
			return nil, fmt.Errorf("dhcp line %d: bad end: %w", lineNo, err)
		}
		out = append(out, dhcp.Lease{MAC: fields[0], IP: fields[1], Start: start, End: end})
	}
	return out, sc.Err()
}

func readTruth(path string) (map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]int)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 2 {
			return nil, fmt.Errorf("truth line %d: want at least 2 fields", lineNo)
		}
		switch fields[1] {
		case "malicious":
			out[fields[0]] = 1
		case "benign":
			out[fields[0]] = 0
		default:
			return nil, fmt.Errorf("truth line %d: unknown label %q", lineNo, fields[1])
		}
	}
	return out, sc.Err()
}

package main

// The backends subcommand and the -embedder/-classifier/-views flag
// plumbing shared by train and stream: both resolve registered stage
// backends from core's pluggable registry.

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/core"
)

// stageSelection carries the registry selection flags; zero values mean
// the defaults (line, svm, all).
type stageSelection struct {
	embedder   string
	classifier string
	views      string
}

// stageFlags registers the backend-selection flags on fs and returns
// the destination struct.
func stageFlags(fs *flag.FlagSet) *stageSelection {
	sel := &stageSelection{}
	fs.StringVar(&sel.embedder, "embedder", "",
		fmt.Sprintf("embedding backend (%s; default %s)",
			strings.Join(core.Embedders(), ", "), core.DefaultEmbedder))
	fs.StringVar(&sel.classifier, "classifier", "",
		fmt.Sprintf("classification backend (%s; default %s)",
			strings.Join(core.Classifiers(), ", "), core.DefaultClassifier))
	fs.StringVar(&sel.views, "views", "",
		fmt.Sprintf("view set for classifier features (%s; default %s)",
			strings.Join(core.ViewSets(), ", "), core.DefaultViewSet))
	return sel
}

// runBackends lists every registered stage backend, one section per
// registry, marking the defaults.
func runBackends(args []string) error {
	fs := flag.NewFlagSet("backends", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("backends takes no arguments")
	}
	printRegistry("embedders", core.Embedders(), core.DefaultEmbedder)
	printRegistry("classifiers", core.Classifiers(), core.DefaultClassifier)
	printRegistry("view sets", core.ViewSets(), core.DefaultViewSet)
	return nil
}

func printRegistry(title string, names []string, def string) {
	fmt.Printf("%s:\n", title)
	for _, n := range names {
		mark := ""
		if n == def {
			mark = " (default)"
		}
		fmt.Printf("  %s%s\n", n, mark)
	}
}

// classifierSummary describes a trained classifier for log lines:
// support-vector count for SVM-backed classifiers, the backend name
// otherwise.
func classifierSummary(clf *core.Classifier) string {
	if m := clf.Model(); m != nil {
		return fmt.Sprintf("%d SVs", m.NumSV())
	}
	return clf.Backend() + " backend"
}

package main

// The stream subcommand: crash-safe day-by-day detection. It replays a
// trace through stream.Rolling, appends alerts to a feed file as each
// day boundary remodels, and (with -checkpoint) persists a checkpoint
// after every boundary. Killed at any point — even with kill -9 mid
// model build — a restart with the same flags resumes from the latest
// checkpoint and produces a byte-identical feed: the feed is truncated
// to the checkpointed offset, the trace is replayed (the restored
// detector ignores already-covered days), and the remaining boundaries
// re-run deterministically (-workers 1, fixed seed).

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/dhcp"
	"repro/internal/obsv"
	"repro/internal/pipeline"
	"repro/internal/stream"
)

// traceWindow scans the trace once and reports its day-aligned start,
// day count, and observation count.
func traceWindow(tracePath string) (start time.Time, days, n int, err error) {
	f, err := os.Open(tracePath)
	if err != nil {
		return time.Time{}, 0, 0, err
	}
	defer f.Close()
	var first, last time.Time
	if err := pipeline.ReadLog(bufio.NewReaderSize(f, 1<<20), func(in pipeline.Input) {
		if n == 0 || in.Time.Before(first) {
			first = in.Time
		}
		if in.Time.After(last) {
			last = in.Time
		}
		n++
	}); err != nil {
		return time.Time{}, 0, 0, err
	}
	if n == 0 {
		return time.Time{}, 0, 0, fmt.Errorf("trace %s is empty", tracePath)
	}
	days = int(last.Sub(first).Hours()/24) + 1
	return first.Truncate(24 * time.Hour), days, n, nil
}

// lagIntel keeps only the first frac share of malicious labels (in
// sorted domain order, so the subset is stable across runs) and every
// benign label: threat intel in the field lags reality, and the alert
// feed exists to surface the domains intel has not caught up with.
func lagIntel(truth map[string]int, frac float64) map[string]int {
	var malicious []string
	for d, lab := range truth {
		if lab == 1 {
			malicious = append(malicious, d)
		}
	}
	sort.Strings(malicious)
	keep := int(frac * float64(len(malicious)))
	out := make(map[string]int, len(truth))
	for d, lab := range truth {
		if lab == 0 {
			out[d] = lab
		}
	}
	for _, d := range malicious[:min(keep, len(malicious))] {
		out[d] = 1
	}
	return out
}

// loadResolver reads the optional DHCP lease log.
func loadResolver(dhcpPath string) (*dhcp.Resolver, error) {
	if dhcpPath == "" {
		return nil, nil
	}
	leases, err := readLeases(dhcpPath)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "maldetect: loaded %d DHCP leases\n", len(leases))
	return dhcp.NewResolver(leases), nil
}

func runStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	var (
		tracePath = fs.String("trace", "trace.tsv", "input trace (text log format)")
		truthPath = fs.String("truth", "truth.tsv", "ground-truth labels (the intel feed)")
		dhcpPath  = fs.String("dhcp", "", "DHCP lease log for device pinning (optional)")
		seed      = fs.Uint64("seed", 1, "seed for embedding/SVM")
		window    = fs.Int("window", 2, "rolling window in days")
		dim       = fs.Int("dim", 16, "embedding dimension")
		samples   = fs.Int("samples", 0, "LINE SGD sample budget (0 = auto)")
		workers   = fs.Int("workers", 1, "model-build parallelism (1 keeps resumed runs bit-identical)")
		feedPath  = fs.String("feed", "alerts.tsv", "alert feed output (TSV: day, domain, score)")
		ckptPath  = fs.String("checkpoint", "", "checkpoint file: written after every day boundary, resumed from on start")
		shards    = fs.Int("shards", 1,
			"ingestion shard workers (>1 partitions the trace by device through a supervised pool; output is identical for any value)")
		shardDir = fs.String("shard-dir", "",
			"scratch directory for per-shard mid-day checkpoints (optional, bounds crash replay; requires -shards > 1)")
		intelFrac = fs.Float64("intel-frac", 0.5,
			"fraction of malicious truth labels known to the labeler (simulates lagging intel; the rest can surface as alerts)")
	)
	sel := stageFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	truth, err := readTruth(*truthPath)
	if err != nil {
		return err
	}
	truth = lagIntel(truth, *intelFrac)
	resolver, err := loadResolver(*dhcpPath)
	if err != nil {
		return err
	}
	start, days, n, err := traceWindow(*tracePath)
	if err != nil {
		return err
	}

	if *shardDir != "" && *shards <= 1 {
		return fmt.Errorf("-shard-dir requires -shards > 1")
	}
	cfg := stream.Config{
		Start:      start,
		WindowDays: *window,
		Shards:     *shards,
		ShardDir:   *shardDir,
		Detector: core.Config{
			Seed:         *seed,
			EmbedDim:     *dim,
			EmbedSamples: *samples,
			Workers:      *workers,
			DHCP:         resolver,
			Embedder:     sel.embedder,
			Classifier:   sel.classifier,
			Views:        sel.views,
		},
		Labeler: func(candidates []string) ([]string, []int) {
			var outD []string
			var outL []int
			for _, c := range candidates {
				if lab, ok := truth[c]; ok {
					outD = append(outD, c)
					outL = append(outL, lab)
				}
			}
			return outD, outL
		},
		Metrics: obsv.NewRegistry(),
	}

	// Resume from the latest checkpoint when one exists; a missing file
	// is a cold start, anything else (corrupt file, changed flags) is a
	// hard error the operator must resolve.
	var r *stream.Rolling
	var cur stream.Cursor
	if *ckptPath != "" {
		switch rr, c, rerr := stream.RestoreFile(*ckptPath, cfg); {
		case rerr == nil:
			r, cur = rr, c
			fmt.Fprintf(os.Stderr, "maldetect: resumed from %s (through day %d, feed offset %d)\n",
				*ckptPath, c.Day, c.FeedBytes)
		case os.IsNotExist(rerr):
			// Cold start.
		default:
			return fmt.Errorf("restoring %s: %w", *ckptPath, rerr)
		}
	}
	if r == nil {
		if r, err = stream.New(cfg); err != nil {
			return err
		}
	}
	defer r.Close()

	// The feed picks up exactly where the checkpoint left it: alerts
	// written after the checkpointed offset belong to boundaries that
	// will re-run, so they are discarded and regenerated identically.
	feed, err := os.OpenFile(*feedPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer feed.Close()
	if err := feed.Truncate(cur.FeedBytes); err != nil {
		return err
	}
	if _, err := feed.Seek(cur.FeedBytes, io.SeekStart); err != nil {
		return err
	}

	// Replay the whole trace; the detector drops days the checkpoint
	// already covers.
	tf, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	if err := pipeline.ReadLog(bufio.NewReaderSize(tf, 1<<20), r.Consume); err != nil {
		_ = tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "maldetect: consumed %d observations over %d days\n", n, days)

	w := bufio.NewWriter(feed)
	alertsTotal, degradedDays := 0, 0
	for day := r.ConsumedThrough() + 1; day < days; day++ {
		alerts, err := r.EndOfDay(day)
		if err != nil {
			// A degraded day produced no model and no alerts, but the
			// stream stays healthy; anything else is fatal.
			var de *stream.DegradedError
			if !errors.As(err, &de) {
				return err
			}
			degradedDays++
			fmt.Fprintf(os.Stderr, "maldetect: %v (continuing)\n", de)
		}
		if deg := r.ShardDegraded(); deg != nil {
			// Quarantined ingestion shards: the day's model covers only
			// the healthy partitions. Logged per day so operators see
			// exactly which partitions and how much traffic went missing.
			fmt.Fprintf(os.Stderr, "maldetect: %v (continuing)\n", deg)
		}
		for _, a := range alerts {
			if _, err := fmt.Fprintf(w, "%d\t%s\t%s\n",
				a.Day, a.Domain, strconv.FormatFloat(a.Score, 'g', -1, 64)); err != nil {
				return err
			}
		}
		alertsTotal += len(alerts)
		// Durability order: the feed reaches disk before the checkpoint
		// that covers it, so a crash between the two only ever replays.
		if err := w.Flush(); err != nil {
			return err
		}
		if err := feed.Sync(); err != nil {
			return err
		}
		if *ckptPath != "" {
			off, err := feed.Seek(0, io.SeekCurrent)
			if err != nil {
				return err
			}
			if err := r.WriteCheckpoint(*ckptPath, stream.Cursor{Day: day, FeedBytes: off}); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "maldetect: day %d: %d alerts\n", day, len(alerts))
	}
	if err := feed.Close(); err != nil {
		return err
	}
	fmt.Printf("stream complete: %d alerts over %d days (%d degraded) -> %s\n",
		alertsTotal, days, degradedDays, *feedPath)
	return nil
}

// Command benchjson converts `go test -bench` text output, read from
// stdin, into a JSON object keyed by benchmark name. Each entry records
// the iteration count, ns/op, B/op and allocs/op (0 when the run did not
// measure them — a reported zero from -benchmem is meaningful, e.g. the
// serving hot path's allocation budget), and any custom metrics reported
// via b.ReportMetric (keyed by their unit, e.g. "samples/sec"). Lines that are not benchmark results (headers,
// PASS/ok trailers) are ignored, so the tool can consume a raw test log:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson > BENCH.json
//
// Each -merge FILE (repeatable) names a JSON file already in this
// schema — e.g. `maldetect loadgen -json` output — whose entries are
// folded into the result, so handler benchmarks and socket-level load
// tests land in one BENCH file:
//
//	go test -bench=. ./... | benchjson -merge loadgen.json > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark's parsed measurements.
type result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var merge multiFlag
	flag.Var(&merge, "merge", "JSON file in this schema to fold into the output (repeatable, later wins)")
	flag.Parse()
	out, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, path := range merge {
		if err := mergeFile(out, path); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse scans r for benchmark result lines. A result line looks like
//
//	BenchmarkName[/sub][-P]  N  v1 unit1  v2 unit2 ...
//
// where N is the iteration count and each (value, unit) pair is one
// measurement. A benchmark that appears more than once keeps its last
// line.
// mergeFile folds one schema-shaped JSON file into out; entries with
// the same benchmark name replace parsed ones.
func mergeFile(out map[string]result, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var extra map[string]result
	if err := json.Unmarshal(data, &extra); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for name, res := range extra {
		out[name] = res
	}
	return nil
}

func parse(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmarking" prose, not a result line
		}
		res := result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		out[fields[0]] = res
	}
	return out, sc.Err()
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// TestJSONReportRoundTrip runs the gate in -json mode over one small
// package and round-trips the report through encoding/json: the smoke
// that the schema check.sh consumes stays parseable and carries the
// full check roster.
func TestJSONReportRoundTrip(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "maldlint-*.json")
	if err != nil {
		t.Fatal(err)
	}
	code := run([]string{"-json", "../../internal/etld"}, out)
	if code != 0 {
		t.Fatalf("run -json internal/etld exited %d, want 0", code)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	var report lint.JSONReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if report.Findings == nil {
		t.Errorf("findings must be an array, not null")
	}
	if len(report.Checks) != len(lint.AllChecks()) {
		t.Errorf("report lists %d checks, want %d", len(report.Checks), len(lint.AllChecks()))
	}
	for i, c := range lint.AllChecks() {
		if report.Checks[i] != c.Name() {
			t.Errorf("checks[%d] = %q, want %q", i, report.Checks[i], c.Name())
		}
	}
}

// TestExplainEveryCheck verifies -explain succeeds for the whole
// roster and fails for unknown names.
func TestExplainEveryCheck(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	for _, c := range lint.AllChecks() {
		if c.Explain() == "" {
			t.Errorf("check %s has an empty Explain", c.Name())
		}
		if code := run([]string{"-explain", c.Name()}, devnull); code != 0 {
			t.Errorf("run -explain %s exited %d, want 0", c.Name(), code)
		}
	}
	if code := run([]string{"-explain", "nosuchcheck"}, devnull); code != 2 {
		t.Errorf("run -explain nosuchcheck exited %d, want 2", code)
	}
}

// TestBaselineGate seeds a baseline from a finding-bearing fixture
// module and verifies the exit-code contract: 1 without the baseline,
// 0 with it, 1 again when a new finding appears.
func TestBaselineGate(t *testing.T) {
	dir := t.TempDir()
	writeFixtureModule(t, dir, `package fx

import "io"

func isEOF(err error) bool {
	return err == io.EOF
}
`)
	restore := chdir(t, dir)
	defer restore()

	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	if code := run([]string{"./..."}, devnull); code != 1 {
		t.Fatalf("gate over finding-bearing module exited %d, want 1", code)
	}
	base := filepath.Join(dir, "baseline.json")
	if code := run([]string{"-write-baseline", base, "./..."}, devnull); code != 0 {
		t.Fatalf("-write-baseline exited %d, want 0", code)
	}
	if code := run([]string{"-baseline", base, "./..."}, devnull); code != 0 {
		t.Fatalf("baselined gate exited %d, want 0", code)
	}
	// A second, new finding must fail the gate even with the baseline.
	extra := `package fx

import "os"

func ignore() {
	os.Remove("x")
}
`
	if err := os.WriteFile(filepath.Join(dir, "extra.go"), []byte(extra), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-baseline", base, "./..."}, devnull); code != 1 {
		t.Fatalf("gate with new finding exited %d, want 1", code)
	}
}

func writeFixtureModule(t *testing.T, dir, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fx\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fx.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func chdir(t *testing.T, dir string) func() {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	return func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	}
}

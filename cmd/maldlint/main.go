// Command maldlint is the repository's static-analysis gate. It loads
// every package of the module with go/parser and go/types (stdlib only —
// no external tooling), runs the repo-specific checks of internal/lint,
// prints position-accurate findings, and exits non-zero when any remain.
//
// Usage:
//
//	maldlint [flags] [package-dir|./...]...
//
//	-list              list available checks and exit
//	-explain <check>   print the long-form documentation of one check
//	-checks a,b        run only the named checks (default: all)
//	-json              emit a machine-readable JSON report on stdout
//	-baseline <file>   fail only on findings not recorded in the baseline
//	-write-baseline <file>
//	                   record current findings as the new baseline
//	-fix               apply mechanical fixes (errcmpsentinel) in place
//	-tags a,b          extra build tags, like `go build -tags` (GOFLAGS
//	                   -tags=... is honored too)
//
// With no arguments (or "./...") the whole module is analyzed, in
// parallel, each package type-checked exactly once. Unless the race tag
// was requested explicitly, a second pass under -tags race analyzes the
// race-gated halves of tag-paired files (internal/line's hogwild split)
// and reports findings only from files the default pass did not see.
//
// Findings can be silenced inline, one line above or on the offending
// line, with
//
//	//maldlint:ignore <check>[,<check>...] <rationale>
//
// Exit status: 0 clean (or all findings baselined), 1 new findings,
// 2 load or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// outf prints report output; stdout write failures (closed pipe) are
// not actionable here, so the error is dismissed explicitly.
func outf(f *os.File, format string, args ...any) {
	_, _ = fmt.Fprintf(f, format, args...)
}

func run(args []string, stdout *os.File) int {
	fs := flag.NewFlagSet("maldlint", flag.ContinueOnError)
	listFlag := fs.Bool("list", false, "list available checks and exit")
	explainFlag := fs.String("explain", "", "print the long-form documentation of one check and exit")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	jsonFlag := fs.Bool("json", false, "emit a JSON report on stdout")
	baselineFlag := fs.String("baseline", "", "baseline file: fail only on findings it does not record")
	writeBaselineFlag := fs.String("write-baseline", "", "write current findings to this baseline file and exit")
	fixFlag := fs.Bool("fix", false, "apply mechanical fixes in place")
	tagsFlag := fs.String("tags", "", "comma-separated extra build tags (like go build -tags)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, c := range lint.AllChecks() {
			outf(stdout, "%-14s %-8s %s\n", c.Name(), c.Severity(), c.Doc())
		}
		return 0
	}
	if *explainFlag != "" {
		c := lint.CheckByName(*explainFlag)
		if c == nil {
			fmt.Fprintf(os.Stderr, "maldlint: unknown check %q (run -list for options)\n", *explainFlag)
			return 2
		}
		outf(stdout, "%s (%s): %s\n\n%s\n", c.Name(), c.Severity(), c.Doc(), c.Explain())
		return 0
	}

	runner, err := selectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maldlint:", err)
		return 2
	}

	tags := buildTags(*tagsFlag)
	loader, err := lint.NewLoaderTags(".", tags)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maldlint:", err)
		return 2
	}

	paths, err := resolvePatterns(loader, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "maldlint:", err)
		return 2
	}

	diags, loadFailed := analyze(loader, runner, paths)

	// Second pass under the race tag: tag-paired files (the hogwild
	// split) are invisible to the default tag set, so analyze the gated
	// packages again with race on and keep only findings from files the
	// first pass never parsed.
	if !hasTag(tags, "race") {
		raceDiags, raceFailed := raceTagPass(runner, tags, paths)
		diags = append(diags, raceDiags...)
		loadFailed = loadFailed || raceFailed
	}

	findings := lint.ToJSON(relativizeAll(loader.ModRoot, diags))

	if *writeBaselineFlag != "" {
		f, err := os.Create(*writeBaselineFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maldlint:", err)
			return 2
		}
		werr := lint.WriteBaseline(f, findings)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "maldlint:", werr)
			return 2
		}
		fmt.Fprintf(os.Stderr, "maldlint: wrote %d finding(s) to %s\n", len(findings), *writeBaselineFlag)
		if loadFailed {
			return 2
		}
		return 0
	}

	baselined := 0
	if *baselineFlag != "" {
		base, err := lint.ReadBaseline(*baselineFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maldlint:", err)
			return 2
		}
		findings, baselined = base.Filter(findings)
	}

	if *fixFlag {
		// Fix only unbaselined findings; match them back to the absolute
		// paths ApplyFixes needs via the diag order preserved by Filter.
		applied, err := lint.ApplyFixes(fixableDiags(diags, findings, loader.ModRoot))
		if err != nil {
			fmt.Fprintln(os.Stderr, "maldlint:", err)
			return 2
		}
		files := make([]string, 0, len(applied))
		for file := range applied {
			files = append(files, file)
		}
		sort.Strings(files)
		total := 0
		for _, file := range files {
			rel := file
			if r, err := filepath.Rel(loader.ModRoot, file); err == nil {
				rel = r
			}
			fmt.Fprintf(os.Stderr, "maldlint: fixed %d finding(s) in %s\n", applied[file], rel)
			total += applied[file]
		}
		findings = dropFixed(findings)
		if total > 0 {
			fmt.Fprintf(os.Stderr, "maldlint: re-run to verify %d applied fix(es)\n", total)
		}
	}

	if *jsonFlag {
		report := lint.JSONReport{
			Findings:  findings,
			Baselined: baselined,
			Checks:    checkNames(runner.Checks),
		}
		if report.Findings == nil {
			report.Findings = []lint.JSONFinding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "maldlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			outf(stdout, "%s:%d:%d: %s [%s] %s\n", f.File, f.Line, f.Column, f.Severity, f.Check, f.Message)
		}
	}

	switch {
	case loadFailed:
		return 2
	case len(findings) > 0:
		fmt.Fprintf(os.Stderr, "maldlint: %d new finding(s)", len(findings))
		if baselined > 0 {
			fmt.Fprintf(os.Stderr, " (%d baselined)", baselined)
		}
		fmt.Fprintln(os.Stderr)
		return 1
	}
	if baselined > 0 {
		fmt.Fprintf(os.Stderr, "maldlint: clean (%d baselined finding(s) remain)\n", baselined)
	}
	return 0
}

// analyze loads paths in parallel and runs the checks over every
// package that loaded.
func analyze(loader *lint.Loader, runner *lint.Runner, paths []string) (diags []lint.Diagnostic, failed bool) {
	pkgs, errs := loader.LoadAll(paths)
	for i, pkg := range pkgs {
		if errs[i] != nil {
			fmt.Fprintln(os.Stderr, "maldlint:", errs[i])
			failed = true
			continue
		}
		diags = append(diags, runner.Run(pkg)...)
	}
	return diags, failed
}

// raceTagPass analyzes the race-gated packages under -tags race and
// returns only findings from files the default tag set excluded.
func raceTagPass(runner *lint.Runner, baseTags []string, paths []string) ([]lint.Diagnostic, bool) {
	probe, err := lint.NewLoaderTags(".", baseTags)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maldlint:", err)
		return nil, true
	}
	gated, err := probe.GatedPackages("race")
	if err != nil {
		fmt.Fprintln(os.Stderr, "maldlint:", err)
		return nil, true
	}
	gated = intersect(gated, paths)
	if len(gated) == 0 {
		return nil, false
	}
	// Files the default pass analyzed: findings there would be
	// duplicates.
	defaultFiles := make(map[string]bool)
	pkgs, _ := probe.LoadAll(gated)
	for _, pkg := range pkgs {
		if pkg == nil {
			continue
		}
		for _, f := range pkg.Files {
			defaultFiles[probe.Fset.Position(f.Pos()).Filename] = true
		}
	}
	raceLoader, err := lint.NewLoaderTags(".", append(append([]string{}, baseTags...), "race"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "maldlint:", err)
		return nil, true
	}
	rpkgs, errs := raceLoader.LoadAll(gated)
	var out []lint.Diagnostic
	failed := false
	for i, pkg := range rpkgs {
		if errs[i] != nil {
			fmt.Fprintln(os.Stderr, "maldlint (race pass):", errs[i])
			failed = true
			continue
		}
		for _, d := range runner.Run(pkg) {
			if !defaultFiles[d.Pos.Filename] {
				out = append(out, d)
			}
		}
	}
	return out, failed
}

// intersect keeps the elements of a that also appear in b, preserving
// a's order.
func intersect(a, b []string) []string {
	set := make(map[string]bool, len(b))
	for _, x := range b {
		set[x] = true
	}
	var out []string
	for _, x := range a {
		if set[x] {
			out = append(out, x)
		}
	}
	return out
}

// buildTags merges the -tags flag with any -tags=... directive in
// GOFLAGS, mirroring the go tool's precedence (the explicit flag wins
// but both contribute).
func buildTags(flagVal string) []string {
	var tags []string
	add := func(spec string) {
		for _, t := range strings.Split(spec, ",") {
			if t = strings.TrimSpace(t); t != "" && !hasTag(tags, t) {
				tags = append(tags, t)
			}
		}
	}
	for _, f := range strings.Fields(os.Getenv("GOFLAGS")) {
		if rest, ok := strings.CutPrefix(f, "-tags="); ok {
			add(rest)
		} else if rest, ok := strings.CutPrefix(f, "--tags="); ok {
			add(rest)
		}
	}
	if flagVal != "" {
		add(flagVal)
	}
	return tags
}

func hasTag(tags []string, tag string) bool {
	for _, t := range tags {
		if t == tag {
			return true
		}
	}
	return false
}

// fixableDiags returns the diagnostics (absolute paths, as ApplyFixes
// needs) whose relativized form survived baseline filtering and carry
// a fix.
func fixableDiags(diags []lint.Diagnostic, fresh []lint.JSONFinding, root string) []lint.Diagnostic {
	want := make(map[string]int)
	for _, f := range fresh {
		if f.Fixable {
			want[f.File+"|"+f.Check+"|"+f.Message]++
		}
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		rel := d.Pos.Filename
		if r, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel = filepath.ToSlash(r)
		}
		key := rel + "|" + d.Check + "|" + d.Message
		if want[key] > 0 {
			want[key]--
			out = append(out, d)
		}
	}
	return out
}

// dropFixed removes findings whose fix was just applied from the
// report.
func dropFixed(findings []lint.JSONFinding) []lint.JSONFinding {
	var out []lint.JSONFinding
	for _, f := range findings {
		if !f.Fixable {
			out = append(out, f)
		}
	}
	return out
}

// checkNames lists the names of the checks that ran.
func checkNames(checks []lint.Check) []string {
	out := make([]string, len(checks))
	for i, c := range checks {
		out[i] = c.Name()
	}
	return out
}

// relativizeAll rewrites diagnostic filenames to module-relative,
// slash-separated paths so output and baseline keys are stable across
// checkouts.
func relativizeAll(root string, diags []lint.Diagnostic) []lint.Diagnostic {
	out := make([]lint.Diagnostic, len(diags))
	copy(out, diags)
	for i := range out {
		if rel, err := filepath.Rel(root, out[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			out[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
	return out
}

// selectChecks builds a runner for the requested check subset.
func selectChecks(spec string) (*lint.Runner, error) {
	if spec == "" {
		return lint.NewRunner(), nil
	}
	var checks []lint.Check
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c := lint.CheckByName(name)
		if c == nil {
			return nil, fmt.Errorf("unknown check %q (run -list for options)", name)
		}
		checks = append(checks, c)
	}
	if len(checks) == 0 {
		return nil, fmt.Errorf("no checks selected")
	}
	return &lint.Runner{Checks: checks}, nil
}

// resolvePatterns turns CLI arguments into module import paths. "./..."
// (and no arguments at all) selects every package of the module; other
// arguments name package directories relative to the working directory.
func resolvePatterns(loader *lint.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		return loader.Walk()
	}
	var paths []string
	for _, a := range args {
		if a == "./..." || a == "..." || a == loader.ModPath+"/..." {
			all, err := loader.Walk()
			if err != nil {
				return nil, err
			}
			paths = append(paths, all...)
			continue
		}
		abs, err := filepath.Abs(a)
		if err != nil {
			return nil, fmt.Errorf("resolving %s: %w", a, err)
		}
		rel, err := filepath.Rel(loader.ModRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("%s is outside module %s", a, loader.ModPath)
		}
		if rel == "." {
			paths = append(paths, loader.ModPath)
		} else {
			paths = append(paths, loader.ModPath+"/"+filepath.ToSlash(rel))
		}
	}
	return paths, nil
}

// Command maldlint is the repository's static-analysis gate. It loads
// every package of the module with go/parser and go/types (stdlib only —
// no external tooling), runs the repo-specific checks of internal/lint,
// prints position-accurate findings, and exits non-zero when any remain.
//
// Usage:
//
//	maldlint [-list] [-checks name,name] [package-dir|./...]...
//
// With no arguments (or "./...") the whole module is analyzed. Findings
// can be silenced inline, one line above or on the offending line, with
//
//	//maldlint:ignore <check>[,<check>...] <rationale>
//
// Exit status: 0 clean, 1 findings, 2 load or usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("maldlint", flag.ContinueOnError)
	listFlag := fs.Bool("list", false, "list available checks and exit")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, c := range lint.AllChecks() {
			fmt.Printf("%-12s %-8s %s\n", c.Name(), c.Severity(), c.Doc())
		}
		return 0
	}

	runner, err := selectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maldlint:", err)
		return 2
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "maldlint:", err)
		return 2
	}

	paths, err := resolvePatterns(loader, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "maldlint:", err)
		return 2
	}

	findings := 0
	failed := false
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maldlint:", err)
			failed = true
			continue
		}
		for _, d := range runner.Run(pkg) {
			fmt.Println(relativize(loader.ModRoot, d))
			findings++
		}
	}
	switch {
	case failed:
		return 2
	case findings > 0:
		fmt.Fprintf(os.Stderr, "maldlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// selectChecks builds a runner for the requested check subset.
func selectChecks(spec string) (*lint.Runner, error) {
	if spec == "" {
		return lint.NewRunner(), nil
	}
	var checks []lint.Check
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c := lint.CheckByName(name)
		if c == nil {
			return nil, fmt.Errorf("unknown check %q (run -list for options)", name)
		}
		checks = append(checks, c)
	}
	if len(checks) == 0 {
		return nil, fmt.Errorf("no checks selected")
	}
	return &lint.Runner{Checks: checks}, nil
}

// resolvePatterns turns CLI arguments into module import paths. "./..."
// (and no arguments at all) selects every package of the module; other
// arguments name package directories relative to the working directory.
func resolvePatterns(loader *lint.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		return loader.Walk()
	}
	var paths []string
	for _, a := range args {
		if a == "./..." || a == "..." || a == loader.ModPath+"/..." {
			all, err := loader.Walk()
			if err != nil {
				return nil, err
			}
			paths = append(paths, all...)
			continue
		}
		abs, err := filepath.Abs(a)
		if err != nil {
			return nil, fmt.Errorf("resolving %s: %w", a, err)
		}
		rel, err := filepath.Rel(loader.ModRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("%s is outside module %s", a, loader.ModPath)
		}
		if rel == "." {
			paths = append(paths, loader.ModPath)
		} else {
			paths = append(paths, loader.ModPath+"/"+filepath.ToSlash(rel))
		}
	}
	return paths, nil
}

// relativize shortens absolute file positions to module-relative paths
// for readable output.
func relativize(root string, d lint.Diagnostic) string {
	s := d.String()
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		s = strings.Replace(s, d.Pos.Filename, rel, 1)
	}
	return s
}

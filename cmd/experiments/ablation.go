package main

// The -ablation mode: sweep the pluggable stage registry's backend
// grid through Fig-6-style cross-validation and print the results as
// `go test -bench` lines, the lingua franca cmd/benchjson consumes.

import (
	"fmt"
	"os"
	"time"

	"repro/internal/dnssim"
	"repro/internal/experiments"
)

// ablationEmbedders and ablationClassifiers define the sweep grid.
var (
	ablationEmbedders   = []string{"line", "mf"}
	ablationClassifiers = []string{"svm", "labelprop", "ensemble"}
)

func runAblation(scale string, seed uint64, maxLabeled, kfolds, embedDim int) error {
	var cfg dnssim.Config
	switch scale {
	case "small":
		cfg = dnssim.SmallScenario(seed)
	case "full":
		cfg = dnssim.DefaultScenario(seed)
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}
	opts := experiments.Options{
		Seed:       seed,
		MaxLabeled: maxLabeled,
		KFolds:     kfolds,
		EmbedDim:   embedDim,
	}
	fmt.Fprintf(os.Stderr, "ablation sweep: %v embedders x %v classifiers (scale=%s seed=%d kfolds=%d)\n",
		ablationEmbedders, ablationClassifiers, scale, seed, opts.KFolds)

	// One timed cell per pairing. RunAblation amortizes the Env build
	// across each embedder's classifiers, so per-cell wall time is
	// measured around individual CV runs instead: build the env here
	// and sweep manually.
	for _, emb := range ablationEmbedders {
		o := opts
		o.Embedder = emb
		built := time.Now()
		cells, err := experiments.RunAblation(cfg, o, []string{emb}, ablationClassifiers)
		if err != nil {
			return err
		}
		elapsed := time.Since(built)
		// The env build + all classifier CVs ran in `elapsed`; charge
		// each cell its share so the per-cell ns/op stays meaningful
		// without double-counting the shared embedding build.
		per := elapsed / time.Duration(len(cells))
		for _, c := range cells {
			fmt.Printf("BenchmarkAblation/%s \t       1\t%d ns/op\t%.6f auc\n",
				c.Name(), per.Nanoseconds(), c.Result.AUC)
		}
	}
	return nil
}

// Command experiments regenerates every table and figure of the paper's
// evaluation against the synthetic campus scenario and prints a
// paper-vs-measured report (the data behind EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-scale small|full] [-seed N]
//	            [-run all|fig1,fig4,fig5,fig6,fig7,table1,table2,exposure,beliefprop,flows]
//	            [-max-labeled N] [-kfolds K] [-embed-dim D]
//	experiments -ablation [-scale small|full] [-seed N] [-kfolds K]
//
// With -ablation, the command sweeps every registered-backend pairing
// of the pluggable stage registry — {line, mf} embedders ×
// {svm, labelprop, ensemble} classifiers — through the same Fig-6-style
// k-fold CV, and prints one `go test -bench`-shaped result line per
// cell (AUC as a custom "auc" metric) so scripts/bench.sh can pipe the
// sweep through cmd/benchjson into BENCH_8.json.
//
// The full scale reproduces the paper's scope (a month of traffic,
// >10,000 labeled domains); small finishes in well under a minute.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bipartite"
	"repro/internal/dnssim"
	"repro/internal/experiments"
)

func main() {
	var (
		scale      = flag.String("scale", "small", "scenario scale: small or full")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		run        = flag.String("run", "all", "comma-separated experiment ids or 'all'")
		maxLabeled = flag.Int("max-labeled", 0, "cap the labeled set (0 = no cap)")
		kfolds     = flag.Int("kfolds", 10, "cross-validation folds")
		embedDim   = flag.Int("embed-dim", 32, "per-view embedding dimension")
		svgOut     = flag.String("svg", "", "write the Figure 5 scatter to this SVG file")
		ablation   = flag.Bool("ablation", false, "run the backend ablation sweep and print bench-format lines")
	)
	flag.Parse()
	var err error
	if *ablation {
		err = runAblation(*scale, *seed, *maxLabeled, *kfolds, *embedDim)
	} else {
		err = runAll(*scale, *seed, *run, *maxLabeled, *kfolds, *embedDim, *svgOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func runAll(scale string, seed uint64, run string, maxLabeled, kfolds, embedDim int, svgPath string) error {
	var cfg dnssim.Config
	switch scale {
	case "small":
		cfg = dnssim.SmallScenario(seed)
	case "full":
		cfg = dnssim.DefaultScenario(seed)
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}

	want := map[string]bool{}
	for _, id := range strings.Split(run, ",") {
		want[strings.TrimSpace(id)] = true
	}
	has := func(id string) bool { return want["all"] || want[id] }

	started := time.Now()
	fmt.Fprintf(os.Stderr, "building environment (scale=%s seed=%d)...\n", scale, seed)
	env, err := experiments.Build(cfg, experiments.Options{
		Seed:       seed,
		MaxLabeled: maxLabeled,
		KFolds:     kfolds,
		EmbedDim:   embedDim,
	})
	if err != nil {
		return err
	}
	st, err := env.Detector.Stats()
	if err != nil {
		return err
	}
	total, mal := env.LabeledSummary()
	fmt.Printf("# Environment (built in %s)\n", time.Since(started).Round(time.Second))
	fmt.Printf("hosts=%d days=%d devices=%d queries=%d\n",
		cfg.Hosts, cfg.Days, st.Devices, st.TotalQueries)
	fmt.Printf("observed e2LDs=%d retained=%d labeled=%d (%.0f%% malicious)\n",
		st.ObservedE2LDs, st.RetainedE2LDs, total, 100*float64(mal)/float64(total))
	for _, v := range bipartite.Views {
		fmt.Printf("%s projection: %d edges\n", v, st.ProjectionEdges[v])
	}
	fmt.Println()

	if has("fig1") {
		fmt.Println("# Figure 1 — DNS query volume and unique FQDN/e2LD counts per day")
		fmt.Print(experiments.RenderFig1(env.Fig1()))
		fmt.Println()
	}
	if has("fig6") {
		res, err := env.Fig6()
		if err != nil {
			return fmt.Errorf("fig6: %w", err)
		}
		fmt.Println("# Figure 6 — combined three-view embedding, SVM, k-fold CV")
		fmt.Printf("AUC = %.4f   (paper: 0.94)\n", res.AUC)
		c := res.Confusion
		fmt.Printf("at threshold 0: acc=%.3f prec=%.3f rec=%.3f f1=%.3f\n",
			c.Accuracy(), c.Precision(), c.Recall(), c.F1())
		fmt.Println("ROC (fpr tpr):")
		printCurve(res)
		fmt.Println()
	}
	if has("fig7") {
		per, err := env.Fig7()
		if err != nil {
			return fmt.Errorf("fig7: %w", err)
		}
		fmt.Println("# Figure 7 — per-view AUCs")
		fmt.Printf("query    AUC = %.4f   (paper: 0.89)\n", per[bipartite.ViewQuery].AUC)
		fmt.Printf("ip       AUC = %.4f   (paper: 0.83)\n", per[bipartite.ViewIP].AUC)
		fmt.Printf("temporal AUC = %.4f   (paper: 0.65)\n", per[bipartite.ViewTime].AUC)
		fmt.Println()
	}
	if has("exposure") {
		res, err := env.ExposureBaseline()
		if err != nil {
			return fmt.Errorf("exposure: %w", err)
		}
		fmt.Println("# §8.2 — Exposure baseline (J48 over statistical features)")
		fmt.Printf("AUC = %.4f   (paper: 0.88, i.e. ours +6.8%%)\n", res.AUC)
		fmt.Println()
	}
	if has("beliefprop") {
		res, err := env.BeliefPropBaseline()
		if err != nil {
			return fmt.Errorf("beliefprop: %w", err)
		}
		fmt.Println("# Extension — graph-inference baseline (belief propagation, §9 related work)")
		fmt.Printf("AUC = %.4f   (not evaluated in the paper; quantifies the embedding's added value)\n", res.AUC)
		fmt.Println()
	}
	var reports []experiments.ClusterReport
	if has("table1") || has("table2") || has("fig4") || has("fig5") {
		reports, err = env.Clusters()
		if err != nil {
			return fmt.Errorf("clustering: %w", err)
		}
	}
	if has("table1") {
		fmt.Println("# Table 1 — spam domain cluster (wordlist style)")
		printStyleCluster(reports, "wordlist")
		fmt.Println()
	}
	if has("table2") {
		fmt.Println("# Table 2 — Conficker DGA domain cluster")
		printStyleCluster(reports, "conficker")
		fmt.Println()
	}
	if has("fig4") {
		sizes := []int{0, 25, 50, 75, 100, 125, 150, 175, 200}
		pts, err := env.Fig4(sizes)
		if err != nil {
			return fmt.Errorf("fig4: %w", err)
		}
		fmt.Println("# Figure 4 — newly discovered malicious domains vs seed size")
		fmt.Printf("%8s %8s %12s\n", "seeds", "true", "suspicious")
		for _, p := range pts {
			fmt.Printf("%8d %8d %12d\n", p.SeedSize, p.True, p.Suspicious)
		}
		fmt.Println()
	}
	if has("fig5") {
		res, err := env.Fig5()
		if err != nil {
			return fmt.Errorf("fig5: %w", err)
		}
		fmt.Println("# Figure 5 — t-SNE of five random clusters")
		fmt.Printf("%d domains across 5 clusters (glyphs o x + * #)\n", len(res.Domains))
		fmt.Print(res.ASCII(24, 76))
		if svgPath != "" {
			if err := os.WriteFile(svgPath, []byte(res.SVG(640, 480)), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", svgPath, err)
			}
			fmt.Printf("(SVG written to %s)\n", svgPath)
		}
		fmt.Println()
	}
	if has("selftrain") {
		rounds, err := env.SelfTraining(5, 200)
		if err != nil {
			return fmt.Errorf("selftrain: %w", err)
		}
		fmt.Println("# §7.2.1 — self-training with acquired labels")
		fmt.Printf("%6s %10s %10s %8s %10s\n", "round", "train_mal", "train_ben", "added", "heldout_auc")
		for _, r := range rounds {
			fmt.Printf("%6d %10d %10d %8d %10.4f\n",
				r.Round, r.TrainMalicious, r.TrainBenign, r.Added, r.HeldOutAUC)
		}
		fmt.Println()
	}
	if has("flows") {
		fmt.Println("# §7.2.2 — per-family C&C traffic patterns")
		fmt.Print(env.FlowPatterns())
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(started).Round(time.Second))
	return nil
}

func printCurve(res experiments.ClassificationResult) {
	// Print a decimated curve: at most ~20 points.
	step := len(res.Curve) / 20
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(res.Curve); i += step {
		pt := res.Curve[i]
		fmt.Printf("  %.3f %.3f\n", pt.FPR, pt.TPR)
	}
	last := res.Curve[len(res.Curve)-1]
	fmt.Printf("  %.3f %.3f\n", last.FPR, last.TPR)
}

func printStyleCluster(reports []experiments.ClusterReport, style string) {
	r, ok := experiments.FindStyleCluster(reports, style)
	if !ok {
		fmt.Printf("no %s-majority cluster found\n", style)
		return
	}
	fmt.Printf("cluster %d: %d domains, %.0f%% tagged %s by threat intel\n",
		r.ID, len(r.Domains), 100*r.TaggedFrac, r.MajorityFamily)
	cols := 3
	for i := 0; i < len(r.Domains) && i < 18; i += cols {
		row := r.Domains[i:min(i+cols, len(r.Domains))]
		for _, d := range row {
			fmt.Printf("  %-28s", d)
		}
		fmt.Println()
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

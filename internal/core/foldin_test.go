package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/bipartite"
)

// foldinRelations builds a mixed-view relation set naming the scorer's
// first few retained domains, plus one relation to a neighbor outside
// the model (which must be ignored).
func foldinRelations(sc *Scorer) []Relation {
	doms := sc.Domains()
	return []Relation{
		{View: bipartite.ViewQuery, Neighbor: doms[0], Weight: 2},
		{View: bipartite.ViewQuery, Neighbor: doms[1], Weight: 1},
		{View: bipartite.ViewIP, Neighbor: doms[1], Weight: 0.5},
		{View: bipartite.ViewIP, Neighbor: doms[2]},
		{View: bipartite.ViewTime, Neighbor: doms[0], Weight: 3},
		{View: bipartite.ViewTime, Neighbor: "never-retained.example", Weight: 9},
	}
}

// TestScoreObservedKnownDomain: relations must not perturb retained
// domains — the result is the exact model verdict, bit for bit.
func TestScoreObservedKnownDomain(t *testing.T) {
	sc := tinyScorer(t, 5)
	dom := sc.Domains()[0]
	res := sc.ScoreObserved(dom, foldinRelations(sc))
	want, _ := sc.Score(dom)
	if res.Score != want || !res.Known {
		t.Fatalf("known domain: ScoreObserved %+v, want score %v Known=true", res, want)
	}
	if res.Source != SourceModel || res.Confidence != 1 {
		t.Fatalf("known domain: source %q confidence %v, want %q and 1", res.Source, res.Confidence, SourceModel)
	}
}

// TestScoreObservedUnseen: an unseen domain with retained neighbors
// gets a verdict with a fold-in source and a calibrated confidence.
func TestScoreObservedUnseen(t *testing.T) {
	sc := tinyScorer(t, 5)
	res := sc.ScoreObserved("fresh.example", foldinRelations(sc))
	if res.Known {
		t.Fatal("unseen domain reported Known=true")
	}
	if res.Source != SourceFoldin && res.Source != SourceKNN {
		t.Fatalf("source %q, want %q or %q", res.Source, SourceFoldin, SourceKNN)
	}
	if res.Confidence < 0 || res.Confidence > 1 {
		t.Fatalf("confidence %v outside [0,1]", res.Confidence)
	}
	if res.Confidence == 0 {
		t.Fatal("full-coverage evidence produced zero confidence")
	}
	if res.Label != 0 && res.Label != 1 {
		t.Fatalf("label %d", res.Label)
	}
}

// TestScoreObservedNoEvidence: relations that name no retained
// neighbor (or none at all) fold nothing in.
func TestScoreObservedNoEvidence(t *testing.T) {
	sc := tinyScorer(t, 5)
	for _, rels := range [][]Relation{
		nil,
		{{View: bipartite.ViewQuery, Neighbor: "also-unknown.example", Weight: 1}},
	} {
		if res := sc.ScoreObserved("fresh.example", rels); res != (Result{}) {
			t.Fatalf("no-evidence relations %v produced %+v, want zero Result", rels, res)
		}
	}
}

// TestScoreObservedPartialCoverage: evidence in one of three views
// caps coverage (and so confidence) at 1/3.
func TestScoreObservedPartialCoverage(t *testing.T) {
	sc := tinyScorer(t, 5)
	doms := sc.Domains()
	res := sc.ScoreObserved("fresh.example", []Relation{
		{View: bipartite.ViewQuery, Neighbor: doms[0], Weight: 1},
	})
	if res.Source == "" {
		t.Fatal("single-view evidence produced no verdict")
	}
	if res.Confidence > 1.0/3+1e-12 {
		t.Fatalf("one covered view of three: confidence %v > 1/3", res.Confidence)
	}
}

// TestScoreObservedDeterministic: the result is a pure function of the
// relation *set* — every permutation, from any number of concurrent
// goroutines, produces bit-identical Results.
func TestScoreObservedDeterministic(t *testing.T) {
	sc := tinyScorer(t, 5)
	base := foldinRelations(sc)
	want := sc.ScoreObserved("fresh.example", base)

	// Deterministic permutations: rotations and their reversals.
	perms := make([][]Relation, 0, 2*len(base))
	for r := 0; r < len(base); r++ {
		rot := append(append([]Relation(nil), base[r:]...), base[:r]...)
		rev := make([]Relation, len(rot))
		for i, rel := range rot {
			rev[len(rot)-1-i] = rel
		}
		perms = append(perms, rot, rev)
	}

	var wg sync.WaitGroup
	errs := make(chan string, len(perms)*4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, p := range perms {
				if got := sc.ScoreObserved("fresh.example", p); got != want {
					errs <- "permutation produced a different Result"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

func foldinNow() time.Time {
	return time.Date(2024, 6, 1, 12, 0, 0, 0, time.UTC)
}

// TestFoldInCacheRoundTrip: observe → score equals ScoreObserved over
// the merged relations, and the warm second lookup returns the cached
// bits.
func TestFoldInCacheRoundTrip(t *testing.T) {
	sc := tinyScorer(t, 5)
	cache := NewFoldInCache(FoldInConfig{})
	now := foldinNow()
	rels := foldinRelations(sc)

	if _, ok := cache.Score(sc, "fresh.example", now); ok {
		t.Fatal("empty cache scored a domain")
	}
	cache.Observe("fresh.example", rels, now)
	got, ok := cache.Score(sc, "fresh.example", now)
	if !ok {
		t.Fatal("observed domain did not score")
	}
	want := sc.ScoreObserved("fresh.example", rels)
	if got != want {
		t.Fatalf("cache Score %+v != ScoreObserved %+v", got, want)
	}
	again, ok := cache.Score(sc, "fresh.example", now.Add(time.Minute))
	if !ok || again != want {
		t.Fatalf("warm lookup %+v (ok=%v), want cached %+v", again, ok, want)
	}
}

// TestFoldInCacheMerge: re-observing a (view, neighbor) pair replaces
// its weight, changing the folded verdict's inputs.
func TestFoldInCacheMerge(t *testing.T) {
	sc := tinyScorer(t, 5)
	doms := sc.Domains()
	cache := NewFoldInCache(FoldInConfig{})
	now := foldinNow()

	cache.Observe("fresh.example", []Relation{
		{View: bipartite.ViewQuery, Neighbor: doms[0], Weight: 1},
	}, now)
	cache.Observe("fresh.example", []Relation{
		{View: bipartite.ViewQuery, Neighbor: doms[0], Weight: 5},
		{View: bipartite.ViewIP, Neighbor: doms[1], Weight: 1},
	}, now)
	got, ok := cache.Score(sc, "fresh.example", now)
	if !ok {
		t.Fatal("merged entry did not score")
	}
	want := sc.ScoreObserved("fresh.example", []Relation{
		{View: bipartite.ViewQuery, Neighbor: doms[0], Weight: 5},
		{View: bipartite.ViewIP, Neighbor: doms[1], Weight: 1},
	})
	if got != want {
		t.Fatalf("merged Score %+v != ScoreObserved over merged set %+v", got, want)
	}
}

// TestFoldInCacheTTL: entries expire TTL after their last observation
// and are reclaimed by Sweep.
func TestFoldInCacheTTL(t *testing.T) {
	sc := tinyScorer(t, 5)
	cache := NewFoldInCache(FoldInConfig{TTL: time.Minute})
	now := foldinNow()
	cache.Observe("fresh.example", foldinRelations(sc), now)

	if _, ok := cache.Score(sc, "fresh.example", now.Add(59*time.Second)); !ok {
		t.Fatal("entry expired before its TTL")
	}
	if _, ok := cache.Score(sc, "fresh.example", now.Add(2*time.Minute)); ok {
		t.Fatal("entry scored after its TTL")
	}
	if n := cache.Sweep(now.Add(2 * time.Minute)); n != 1 {
		t.Fatalf("Sweep reclaimed %d entries, want 1", n)
	}
	if cache.Len() != 0 {
		t.Fatalf("Len %d after sweep", cache.Len())
	}
}

// TestFoldInCacheEviction: over capacity, the earliest-observed entry
// goes first; re-observation refreshes an entry's position.
func TestFoldInCacheEviction(t *testing.T) {
	sc := tinyScorer(t, 5)
	rels := foldinRelations(sc)
	cache := NewFoldInCache(FoldInConfig{MaxEntries: 2})
	now := foldinNow()

	cache.Observe("a.example", rels, now)
	cache.Observe("b.example", rels, now.Add(time.Second))
	// Refresh a, then add c: b is now the earliest and must be evicted.
	cache.Observe("a.example", rels, now.Add(2*time.Second))
	evicted, _ := cache.Observe("c.example", rels, now.Add(3*time.Second))
	if evicted != 1 {
		t.Fatalf("evicted %d entries, want 1", evicted)
	}
	if _, ok := cache.Score(sc, "b.example", now.Add(3*time.Second)); ok {
		t.Fatal("earliest entry b.example survived eviction")
	}
	for _, d := range []string{"a.example", "c.example"} {
		if _, ok := cache.Score(sc, d, now.Add(3*time.Second)); !ok {
			t.Fatalf("%s was evicted out of order", d)
		}
	}
}

// TestFoldInCacheReloadInvalidation: a new scorer generation lazily
// recomputes cached results instead of serving the old model's bits.
func TestFoldInCacheReloadInvalidation(t *testing.T) {
	scA := tinyScorer(t, 5)
	scB := tinyScorer(t, 6)
	cache := NewFoldInCache(FoldInConfig{})
	now := foldinNow()
	relsA := foldinRelations(scA)

	cache.Observe("fresh.example", relsA, now)
	resA, okA := cache.Score(scA, "fresh.example", now)
	resB, okB := cache.Score(scB, "fresh.example", now)
	if !okA || !okB {
		t.Fatal("fold-in did not score under both generations")
	}
	if resA != scA.ScoreObserved("fresh.example", relsA) {
		t.Fatal("generation A result does not match its model")
	}
	if resB != scB.ScoreObserved("fresh.example", relsA) {
		t.Fatal("generation B served a stale cached result")
	}
}

// TestFoldInCacheWarmAllocs pins the acceptance criterion: a warm
// cache lookup is at most 2 allocations (it is zero).
func TestFoldInCacheWarmAllocs(t *testing.T) {
	sc := tinyScorer(t, 5)
	cache := NewFoldInCache(FoldInConfig{})
	now := foldinNow()
	cache.Observe("fresh.example", foldinRelations(sc), now)
	cache.Score(sc, "fresh.example", now) // warm the result cache

	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := cache.Score(sc, "fresh.example", now); !ok {
			t.Fatal("warm lookup missed")
		}
	})
	if allocs > 2 {
		t.Fatalf("warm fold-in lookup allocates %v times, budget 2", allocs)
	}
}

// BenchmarkFoldInScore measures the cold fold-in computation (fold +
// classify + kNN sweep) — the cost a cache miss pays.
func BenchmarkFoldInScore(b *testing.B) {
	sc := tinyScorer(b, 5)
	rels := foldinRelations(sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := sc.ScoreObserved("fresh.example", rels); res.Source == "" {
			b.Fatal("no verdict")
		}
	}
}

// BenchmarkFoldInCacheScore measures the warm cache path BENCH_9's
// allocs/op acceptance gate reads: repeated scores of an observed
// domain against one model generation.
func BenchmarkFoldInCacheScore(b *testing.B) {
	sc := tinyScorer(b, 5)
	cache := NewFoldInCache(FoldInConfig{})
	now := foldinNow()
	cache.Observe("fresh.example", foldinRelations(sc), now)
	cache.Score(sc, "fresh.example", now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cache.Score(sc, "fresh.example", now); !ok {
			b.Fatal("warm lookup missed")
		}
	}
}

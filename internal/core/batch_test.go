package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/pipeline"
)

// tinyDetector hand-crafts a trace small enough to build in
// milliseconds even under the race detector: 10 hosts, 8 domains, with
// overlapping host, IP, and minute sets so every domain survives
// pruning and all three projections have edges.
func tinyDetector(t testing.TB, seed uint64) (*Detector, []string, []int) {
	t.Helper()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	d := NewDetector(Config{
		Start:        start,
		Days:         1,
		EmbedDim:     4,
		EmbedSamples: 20_000,
		Seed:         seed,
		Workers:      1,
	})
	const nDomains, nHosts = 8, 10
	for i := 0; i < nDomains; i++ {
		domain := fmt.Sprintf("dom%d.com", i)
		for h := 0; h < 3; h++ {
			host := fmt.Sprintf("10.0.0.%d", (i+h)%nHosts)
			for m := 0; m < 3; m++ {
				d.Consume(pipeline.Input{
					Time:     start.Add(time.Duration(2*i+m) * time.Minute),
					ClientIP: host,
					QName:    "www." + domain,
					Answers:  []string{fmt.Sprintf("198.51.100.%d", (i+m)%nDomains)},
					TTL:      300,
				})
			}
		}
	}
	if err := d.BuildModel(); err != nil {
		t.Fatal(err)
	}
	domains, err := d.Domains()
	if err != nil {
		t.Fatal(err)
	}
	if len(domains) < 4 {
		t.Fatalf("only %d domains survived pruning", len(domains))
	}
	labels := make([]int, len(domains))
	for i := range domains {
		labels[i] = i % 2
	}
	return d, domains, labels
}

// tinyScorer persists the tiny detector's model and loads it back.
func tinyScorer(t testing.TB, seed uint64) *Scorer {
	t.Helper()
	d, domains, labels := tinyDetector(t, seed)
	clf, err := d.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadScorer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestScoreBatchMatchesSingles is the batch API's contract: one Result
// per input in input order, bit-identical to per-domain Score/Predict,
// Known=false for domains outside the retained set.
func TestScoreBatchMatchesSingles(t *testing.T) {
	sc := tinyScorer(t, 5)
	known := sc.Domains()
	queries := append([]string{"not-in-model.example"}, known...)
	queries = append(queries, "also-missing.test")
	results := sc.ScoreBatch(queries)
	if len(results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(results), len(queries))
	}
	for i, q := range queries {
		want, ok := sc.Score(q)
		if ok != results[i].Known {
			t.Fatalf("%s: batch Known=%v, single ok=%v", q, results[i].Known, ok)
		}
		if !ok {
			if results[i].Score != 0 || results[i].Label != 0 {
				t.Fatalf("%s: unknown domain has non-zero result %+v", q, results[i])
			}
			continue
		}
		if results[i].Score != want {
			t.Fatalf("%s: batch score %v != single score %v", q, results[i].Score, want)
		}
		if p, _ := sc.Predict(q); p != results[i].Label {
			t.Fatalf("%s: batch label %d != Predict %d", q, results[i].Label, p)
		}
	}
}

// TestLookupErrorForm checks the error-returning lookup: known domains
// match Score, unknown ones wrap ErrUnknownDomain.
func TestLookupErrorForm(t *testing.T) {
	sc := tinyScorer(t, 5)
	dom := sc.Domains()[0]
	res, err := sc.Lookup(dom)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := sc.Score(dom); res.Score != want || !res.Known {
		t.Fatalf("Lookup(%s) = %+v, want score %v", dom, res, want)
	}
	_, err = sc.Lookup("never-seen.example")
	if !errors.Is(err, ErrUnknownDomain) {
		t.Fatalf("Lookup unknown: err %v, want ErrUnknownDomain", err)
	}
	if !strings.Contains(err.Error(), "never-seen.example") {
		t.Errorf("error %q does not name the domain", err)
	}
}

// TestBuildMetrics checks the stage runner's obsv instrumentation: one
// histogram observation per stage, a completed-builds count, and the
// retained-domain gauge, in the shared maldomain_* vocabulary.
func TestBuildMetrics(t *testing.T) {
	reg := obsv.NewRegistry()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	d := NewDetector(Config{
		Start:        start,
		Days:         1,
		EmbedDim:     4,
		EmbedSamples: 20_000,
		Workers:      1,
		Metrics:      reg,
	})
	for i := 0; i < 8; i++ {
		for h := 0; h < 3; h++ {
			for m := 0; m < 3; m++ {
				d.Consume(pipeline.Input{
					Time:     start.Add(time.Duration(2*i+m) * time.Minute),
					ClientIP: fmt.Sprintf("10.0.0.%d", (i+h)%10),
					QName:    fmt.Sprintf("www.dom%d.com", i),
					Answers:  []string{fmt.Sprintf("198.51.100.%d", (i+m)%8)},
				})
			}
		}
	}
	if err := d.BuildModel(); err != nil {
		t.Fatal(err)
	}
	rep, err := d.BuildReport()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, st := range rep.Stages {
		want := fmt.Sprintf(`maldomain_build_stage_seconds_count{stage="%s"} 1`, st.Name)
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "maldomain_builds_total 1") {
		t.Errorf("exposition missing builds_total:\n%s", out)
	}
	domains, _ := d.Domains()
	if want := fmt.Sprintf("maldomain_build_retained_domains %d", len(domains)); !strings.Contains(out, want) {
		t.Errorf("exposition missing %q:\n%s", want, out)
	}
}

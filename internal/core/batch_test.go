package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/obsv"
	"repro/internal/pipeline"
)

// tinyDetector hand-crafts a trace small enough to build in
// milliseconds even under the race detector: 10 hosts, 8 domains, with
// overlapping host, IP, and minute sets so every domain survives
// pruning and all three projections have edges.
func tinyDetector(t testing.TB, seed uint64) (*Detector, []string, []int) {
	t.Helper()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	d := NewDetector(Config{
		Start:        start,
		Days:         1,
		EmbedDim:     4,
		EmbedSamples: 20_000,
		Seed:         seed,
		Workers:      1,
	})
	const nDomains, nHosts = 8, 10
	for i := 0; i < nDomains; i++ {
		domain := fmt.Sprintf("dom%d.com", i)
		for h := 0; h < 3; h++ {
			host := fmt.Sprintf("10.0.0.%d", (i+h)%nHosts)
			for m := 0; m < 3; m++ {
				d.Consume(pipeline.Input{
					Time:     start.Add(time.Duration(2*i+m) * time.Minute),
					ClientIP: host,
					QName:    "www." + domain,
					Answers:  []string{fmt.Sprintf("198.51.100.%d", (i+m)%nDomains)},
					TTL:      300,
				})
			}
		}
	}
	if err := d.BuildModel(); err != nil {
		t.Fatal(err)
	}
	domains, err := d.Domains()
	if err != nil {
		t.Fatal(err)
	}
	if len(domains) < 4 {
		t.Fatalf("only %d domains survived pruning", len(domains))
	}
	labels := make([]int, len(domains))
	for i := range domains {
		labels[i] = i % 2
	}
	return d, domains, labels
}

// tinyScorer persists the tiny detector's model and loads it back.
func tinyScorer(t testing.TB, seed uint64) *Scorer {
	t.Helper()
	d, domains, labels := tinyDetector(t, seed)
	clf, err := d.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadScorer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestScoreBatchMatchesSingles is the batch API's contract: one Result
// per input in input order, bit-identical to per-domain Score/Predict,
// Known=false for domains outside the retained set.
func TestScoreBatchMatchesSingles(t *testing.T) {
	sc := tinyScorer(t, 5)
	known := sc.Domains()
	queries := append([]string{"not-in-model.example"}, known...)
	queries = append(queries, "also-missing.test")
	results := sc.ScoreBatch(queries)
	if len(results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(results), len(queries))
	}
	for i, q := range queries {
		want, ok := sc.Score(q)
		if ok != results[i].Known {
			t.Fatalf("%s: batch Known=%v, single ok=%v", q, results[i].Known, ok)
		}
		if !ok {
			if results[i].Score != 0 || results[i].Label != 0 {
				t.Fatalf("%s: unknown domain has non-zero result %+v", q, results[i])
			}
			continue
		}
		if results[i].Score != want {
			t.Fatalf("%s: batch score %v != single score %v", q, results[i].Score, want)
		}
		if p, _ := sc.Predict(q); p != results[i].Label {
			t.Fatalf("%s: batch label %d != Predict %d", q, results[i].Label, p)
		}
	}
}

// TestPrecomputedTableMatchesDecision is the decision-table contract:
// the value Score serves for every retained domain must be
// bit-identical to evaluating the SVM on the domain's feature vector,
// i.e. precomputation changes where the work happens, never the
// answer.
func TestPrecomputedTableMatchesDecision(t *testing.T) {
	sc := tinyScorer(t, 5)
	buf := make([]float64, 0, 64)
	for _, d := range sc.Domains() {
		var ok bool
		buf, ok = sc.AppendFeatureVector(buf[:0], d)
		if !ok {
			t.Fatalf("%s: retained domain has no feature vector", d)
		}
		want := sc.Model().Decision(buf)
		got, _ := sc.Score(d)
		if got != want {
			t.Fatalf("%s: table score %v != Decision %v", d, got, want)
		}
		res, _ := sc.Result(d)
		if res.Score != want || res.Label != sc.Model().Predict(buf) || !res.Known {
			t.Fatalf("%s: Result %+v inconsistent with Decision %v", d, res, want)
		}
	}
}

// TestScoreBatchInto checks the append form: results land after the
// existing prefix, and a buffer with enough capacity is reused without
// reallocation.
func TestScoreBatchInto(t *testing.T) {
	sc := tinyScorer(t, 5)
	domains := sc.Domains()
	queries := append([]string{"missing.example"}, domains...)

	dst := make([]Result, 1, 1+len(queries))
	dst[0] = Result{Score: 42, Label: 1, Known: true}
	out := sc.ScoreBatchInto(dst, queries)
	if len(out) != 1+len(queries) {
		t.Fatalf("len(out) = %d, want %d", len(out), 1+len(queries))
	}
	if out[0].Score != 42 {
		t.Fatal("ScoreBatchInto clobbered the existing prefix")
	}
	want := sc.ScoreBatch(queries)
	for i, r := range out[1:] {
		if r != want[i] {
			t.Fatalf("entry %d: %+v != ScoreBatch %+v", i, r, want[i])
		}
	}

	// With capacity available, repeated batches must reuse the buffer.
	buf := make([]Result, 0, len(queries))
	allocs := testing.AllocsPerRun(100, func() {
		buf = sc.ScoreBatchInto(buf[:0], queries)
	})
	if allocs != 0 {
		t.Errorf("ScoreBatchInto with capacity: %v allocs/run, want 0", allocs)
	}
}

// TestHotPathZeroAlloc pins the allocation budget of every per-domain
// lookup form: none of them may allocate for known domains. This is
// the in-process mirror of the scripts/alloccheck.sh escape gate.
func TestHotPathZeroAlloc(t *testing.T) {
	sc := tinyScorer(t, 5)
	dom := sc.Domains()[0]
	featBuf := make([]float64, 0, 64)
	for name, fn := range map[string]func(){
		"Score":   func() { sc.Score(dom) },
		"Predict": func() { sc.Predict(dom) },
		"Result":  func() { sc.Result(dom) },
		"Lookup":  func() { _, _ = sc.Lookup(dom) },
		"AppendFeatureVector": func() {
			featBuf, _ = sc.AppendFeatureVector(featBuf[:0], dom)
		},
		"Score unknown": func() { sc.Score("missing.example") },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/run, want 0", name, allocs)
		}
	}
}

// TestAppendFeatureVectorMatches checks the append form against
// FeatureVector for every view selection, and that unknown domains
// leave dst untouched.
func TestAppendFeatureVectorMatches(t *testing.T) {
	sc := tinyScorer(t, 5)
	dom := sc.Domains()[0]
	for _, views := range [][]bipartite.View{
		nil,
		{bipartite.ViewQuery},
		{bipartite.ViewTime, bipartite.ViewIP},
	} {
		want, _ := sc.FeatureVector(dom, views...)
		got, ok := sc.AppendFeatureVector(nil, dom, views...)
		if !ok {
			t.Fatalf("views %v: append form reported unknown", views)
		}
		if len(got) != len(want) {
			t.Fatalf("views %v: %d dims, want %d", views, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("views %v dim %d: %v != %v", views, i, got[i], want[i])
			}
		}
	}
	dst := []float64{1, 2, 3}
	out, ok := sc.AppendFeatureVector(dst, "missing.example")
	if ok || len(out) != 3 {
		t.Fatalf("unknown domain: ok=%v len=%d, want false,3", ok, len(out))
	}
}

// TestLookupErrorForm checks the error-returning lookup: known domains
// match Score, unknown ones wrap ErrUnknownDomain.
func TestLookupErrorForm(t *testing.T) {
	sc := tinyScorer(t, 5)
	dom := sc.Domains()[0]
	res, err := sc.Lookup(dom)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := sc.Score(dom); res.Score != want || !res.Known {
		t.Fatalf("Lookup(%s) = %+v, want score %v", dom, res, want)
	}
	_, err = sc.Lookup("never-seen.example")
	if !errors.Is(err, ErrUnknownDomain) {
		t.Fatalf("Lookup unknown: err %v, want ErrUnknownDomain", err)
	}
	if !strings.Contains(err.Error(), "never-seen.example") {
		t.Errorf("error %q does not name the domain", err)
	}
}

// TestBuildMetrics checks the stage runner's obsv instrumentation: one
// histogram observation per stage, a completed-builds count, and the
// retained-domain gauge, in the shared maldomain_* vocabulary.
func TestBuildMetrics(t *testing.T) {
	reg := obsv.NewRegistry()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	d := NewDetector(Config{
		Start:        start,
		Days:         1,
		EmbedDim:     4,
		EmbedSamples: 20_000,
		Workers:      1,
		Metrics:      reg,
	})
	for i := 0; i < 8; i++ {
		for h := 0; h < 3; h++ {
			for m := 0; m < 3; m++ {
				d.Consume(pipeline.Input{
					Time:     start.Add(time.Duration(2*i+m) * time.Minute),
					ClientIP: fmt.Sprintf("10.0.0.%d", (i+h)%10),
					QName:    fmt.Sprintf("www.dom%d.com", i),
					Answers:  []string{fmt.Sprintf("198.51.100.%d", (i+m)%8)},
				})
			}
		}
	}
	if err := d.BuildModel(); err != nil {
		t.Fatal(err)
	}
	rep, err := d.BuildReport()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, st := range rep.Stages {
		want := fmt.Sprintf(`maldomain_build_stage_seconds_count{stage="%s"} 1`, st.Name)
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "maldomain_builds_total 1") {
		t.Errorf("exposition missing builds_total:\n%s", out)
	}
	domains, _ := d.Domains()
	if want := fmt.Sprintf("maldomain_build_retained_domains %d", len(domains)); !strings.Contains(out, want) {
		t.Errorf("exposition missing %q:\n%s", want, out)
	}
}

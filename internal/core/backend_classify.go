package core

// Built-in classification backends and view sets. The SVM adapter (the
// default) wraps internal/svm with the exact config-defaulting the
// pre-registry TrainClassifier performed, so default builds stay
// byte-identical. The label-propagation backend adapts the
// transductive internal/beliefprop inference into an inductive
// classifier (HinDom's classification scheme over this repo's feature
// space), and the ensemble backend combines per-backend decision
// values by mean or max.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/beliefprop"
	"repro/internal/bipartite"
	"repro/internal/svm"
)

func init() {
	RegisterClassifier(DefaultClassifier,
		func(cfg Config) DomainClassifier {
			scfg := cfg.SVM
			if scfg.Seed == 0 {
				scfg.Seed = cfg.Seed
			}
			return &svmClassifier{cfg: scfg}
		},
		func(r io.Reader) (DomainClassifier, error) {
			model, err := svm.LoadModel(r)
			if err != nil {
				return nil, err
			}
			return &svmClassifier{model: model}, nil
		})
	RegisterClassifier("labelprop",
		func(cfg Config) DomainClassifier {
			return &labelpropClassifier{k: labelpropK, gamma: labelpropGamma}
		},
		loadLabelprop)
	RegisterClassifier("ensemble", ensembleFactory("ensemble", combineMean), loadEnsemble("ensemble", combineMean))
	RegisterClassifier("ensemble-max", ensembleFactory("ensemble-max", combineMax), loadEnsemble("ensemble-max", combineMax))

	RegisterViewSet(DefaultViewSet, bipartite.Views)
	for _, v := range bipartite.Views {
		RegisterViewSet(v.String(), []bipartite.View{v})
	}
	RegisterViewSet("query+ip", []bipartite.View{bipartite.ViewQuery, bipartite.ViewIP})
}

// ---- svm ----

// svmClassifier wraps the paper's §6.2 SVM behind the registry seam.
type svmClassifier struct {
	cfg   svm.Config
	model *svm.Model
}

func (*svmClassifier) Name() string { return DefaultClassifier }

func (c *svmClassifier) Fit(X [][]float64, y []int) error {
	model, err := svm.Train(X, y, c.cfg)
	if err != nil {
		return err
	}
	c.model = model
	return nil
}

func (c *svmClassifier) Decision(x []float64) float64 { return c.model.Decision(x) }

func (c *svmClassifier) Save(w io.Writer) error { return c.model.Save(w) }

// SVM exposes the wrapped model for callers that inspect
// support-vector counts; it implements the svmBacked probe that
// Classifier.Model and Scorer.Model use.
func (c *svmClassifier) SVM() *svm.Model { return c.model }

// svmBacked is the probe interface for backends that wrap an SVM
// (directly or as an ensemble member).
type svmBacked interface {
	SVM() *svm.Model
}

// ---- labelprop ----

// labelpropClassifier classifies by belief propagation over a
// k-nearest-neighbor anchor graph in feature space. Fit connects each
// training point to its k nearest anchors through pseudo-association
// vertices and runs loopy BP (internal/beliefprop) with every labeled
// point as a seed, yielding a smoothed per-anchor belief that blends a
// point's own label with its neighborhood's. Decision is inductive:
// an unseen vector takes the RBF-weighted vote of its k nearest
// anchors' propagated beliefs, mapped to a [-1, 1] decision axis.
type labelpropClassifier struct {
	k     int
	gamma float64

	anchors [][]float64
	beliefs []float64
}

const (
	// labelpropK is the anchor-graph neighborhood size.
	labelpropK = 10
	// labelpropGamma matches the paper's RBF γ so labelprop and svm
	// operate at the same similarity length scale.
	labelpropGamma = 0.06
)

func (*labelpropClassifier) Name() string { return "labelprop" }

func (c *labelpropClassifier) Fit(X [][]float64, y []int) error {
	if len(X) == 0 {
		return errors.New("core: labelprop: empty training set")
	}
	if len(X) != len(y) {
		return fmt.Errorf("core: labelprop: %d rows vs %d labels", len(X), len(y))
	}
	anchors := make([][]float64, len(X))
	for i, row := range X {
		anchors[i] = append([]float64(nil), row...)
	}

	// Anchor graph: one "domain" vertex per training point, one
	// pseudo-association vertex per undirected kNN edge, so the
	// bipartite BP machinery propagates beliefs between neighbors.
	g := beliefprop.NewGraph()
	seeds := make(map[string]int, len(anchors))
	for i, label := range y {
		seeds[anchorName(i)] = label
		// Ensure isolated anchors still exist as graph vertices.
		g.AddEdge(selfEdgeName(i), anchorName(i))
	}
	k := c.k
	if k >= len(anchors) {
		k = len(anchors) - 1
	}
	for i := range anchors {
		for _, j := range nearestAnchors(anchors, anchors[i], i, k) {
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			name := pairEdgeName(lo, hi)
			g.AddEdge(name, anchorName(lo))
			g.AddEdge(name, anchorName(hi))
		}
	}
	res, err := beliefprop.Run(g, seeds, beliefprop.Config{})
	if err != nil {
		return fmt.Errorf("core: labelprop: %w", err)
	}
	beliefs := make([]float64, len(anchors))
	for i := range beliefs {
		beliefs[i] = res.DomainBelief[anchorName(i)]
	}
	c.anchors, c.beliefs = anchors, beliefs
	return nil
}

func anchorName(i int) string   { return fmt.Sprintf("a%d", i) }
func selfEdgeName(i int) string { return fmt.Sprintf("s%d", i) }
func pairEdgeName(i, j int) string {
	return fmt.Sprintf("e%d:%d", i, j)
}

// nearestAnchors returns the indices of the k anchors closest to x
// (squared Euclidean distance), excluding self. Ties break on index so
// the anchor graph is deterministic.
func nearestAnchors(anchors [][]float64, x []float64, self, k int) []int {
	if k <= 0 {
		return nil
	}
	type cand struct {
		idx  int
		dist float64
	}
	cands := make([]cand, 0, len(anchors)-1)
	for j, a := range anchors {
		if j == self {
			continue
		}
		cands = append(cands, cand{idx: j, dist: sqDist(x, a)})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].idx < cands[b].idx
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}

func sqDist(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

func (c *labelpropClassifier) Decision(x []float64) float64 {
	k := c.k
	if k > len(c.anchors) {
		k = len(c.anchors)
	}
	nearest := nearestAnchors(c.anchors, x, -1, k)
	num, den := 0.0, 0.0
	for _, j := range nearest {
		w := math.Exp(-c.gamma * sqDist(x, c.anchors[j]))
		num += w * (2*c.beliefs[j] - 1)
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// labelpropWire is the persisted form of a fitted labelprop
// classifier (exported fields only; gobfields patrols this).
type labelpropWire struct {
	K       int
	Gamma   float64
	Dim     int
	Anchors [][]float64
	Beliefs []float64
}

func (c *labelpropClassifier) Save(w io.Writer) error {
	dim := 0
	if len(c.anchors) > 0 {
		dim = len(c.anchors[0])
	}
	wire := labelpropWire{K: c.k, Gamma: c.gamma, Dim: dim, Anchors: c.anchors, Beliefs: c.beliefs}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("core: encoding labelprop classifier: %w", err)
	}
	return nil
}

func loadLabelprop(r io.Reader) (DomainClassifier, error) {
	var wire labelpropWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decoding labelprop classifier: %w", err)
	}
	if wire.K <= 0 || wire.Gamma <= 0 {
		return nil, fmt.Errorf("core: corrupt labelprop classifier: k=%d gamma=%g", wire.K, wire.Gamma)
	}
	if len(wire.Anchors) != len(wire.Beliefs) {
		return nil, fmt.Errorf("core: corrupt labelprop classifier: %d anchors vs %d beliefs",
			len(wire.Anchors), len(wire.Beliefs))
	}
	for i, a := range wire.Anchors {
		if len(a) != wire.Dim {
			return nil, fmt.Errorf("core: corrupt labelprop classifier: anchor %d has dim %d, want %d",
				i, len(a), wire.Dim)
		}
	}
	return &labelpropClassifier{
		k: wire.K, gamma: wire.Gamma,
		anchors: wire.Anchors, beliefs: wire.Beliefs,
	}, nil
}

// ---- ensemble ----

// combiner folds per-member decision values into one.
type combiner struct {
	name string
	fold func(values []float64) float64
}

var (
	combineMean = combiner{name: "mean", fold: func(vs []float64) float64 {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		return s / float64(len(vs))
	}}
	combineMax = combiner{name: "max", fold: func(vs []float64) float64 {
		m := math.Inf(-1)
		for _, v := range vs {
			if v > m {
				m = v
			}
		}
		return m
	}}
)

// ensembleMembers are the backends an ensemble combines. The member
// decision axes differ in scale (the SVM margin is unbounded, the
// labelprop vote lives in [-1, 1]); each member's decision values are
// standardized over the training set before combining so neither
// dominates by units.
var ensembleMembers = []string{DefaultClassifier, "labelprop"}

// ensembleClassifier fits every member on the same training matrix and
// combines standardized decision values.
type ensembleClassifier struct {
	name    string
	combine combiner
	members []DomainClassifier
	// shift and scale standardize member i's decision values, fitted
	// on the training set.
	shift []float64
	scale []float64
}

func ensembleFactory(name string, combine combiner) ClassifierFactory {
	return func(cfg Config) DomainClassifier {
		members := make([]DomainClassifier, len(ensembleMembers))
		for i, m := range ensembleMembers {
			members[i] = classifiers[m](cfg)
		}
		return &ensembleClassifier{name: name, combine: combine, members: members}
	}
}

func (c *ensembleClassifier) Name() string { return c.name }

func (c *ensembleClassifier) Fit(X [][]float64, y []int) error {
	c.shift = make([]float64, len(c.members))
	c.scale = make([]float64, len(c.members))
	for i, m := range c.members {
		if err := m.Fit(X, y); err != nil {
			return fmt.Errorf("core: ensemble member %s: %w", m.Name(), err)
		}
		mean, std := 0.0, 0.0
		for _, row := range X {
			mean += m.Decision(row)
		}
		mean /= float64(len(X))
		for _, row := range X {
			d := m.Decision(row) - mean
			std += d * d
		}
		std = math.Sqrt(std / float64(len(X)))
		if std < 1e-12 {
			std = 1
		}
		c.shift[i], c.scale[i] = mean, std
	}
	return nil
}

func (c *ensembleClassifier) Decision(x []float64) float64 {
	vs := make([]float64, len(c.members))
	for i, m := range c.members {
		vs[i] = (m.Decision(x) - c.shift[i]) / c.scale[i]
	}
	return c.combine.fold(vs)
}

// SVM exposes the first SVM-backed member, so support-vector counts
// stay reportable for ensembles.
func (c *ensembleClassifier) SVM() *svm.Model {
	for _, m := range c.members {
		if sb, ok := m.(svmBacked); ok {
			return sb.SVM()
		}
	}
	return nil
}

// ensembleWire is the persisted envelope preceding the member blobs
// (exported fields only; gobfields patrols this).
type ensembleWire struct {
	Members []string
	Shift   []float64
	Scale   []float64
}

func (c *ensembleClassifier) Save(w io.Writer) error {
	wire := ensembleWire{Members: make([]string, len(c.members)), Shift: c.shift, Scale: c.scale}
	for i, m := range c.members {
		wire.Members[i] = m.Name()
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("core: encoding ensemble envelope: %w", err)
	}
	for _, m := range c.members {
		if err := m.Save(w); err != nil {
			return fmt.Errorf("core: saving ensemble member %s: %w", m.Name(), err)
		}
	}
	return nil
}

func loadEnsemble(name string, combine combiner) ClassifierLoader {
	return func(r io.Reader) (DomainClassifier, error) {
		var wire ensembleWire
		if err := gob.NewDecoder(r).Decode(&wire); err != nil {
			return nil, fmt.Errorf("core: decoding ensemble envelope: %w", err)
		}
		if len(wire.Members) == 0 || len(wire.Shift) != len(wire.Members) || len(wire.Scale) != len(wire.Members) {
			return nil, fmt.Errorf("core: corrupt ensemble envelope: %d members, %d shifts, %d scales",
				len(wire.Members), len(wire.Shift), len(wire.Scale))
		}
		members := make([]DomainClassifier, len(wire.Members))
		for i, mn := range wire.Members {
			if mn == name || mn == "ensemble" || mn == "ensemble-max" {
				return nil, fmt.Errorf("core: corrupt ensemble envelope: nested ensemble member %q", mn)
			}
			m, err := loadClassifier(mn, r)
			if err != nil {
				return nil, fmt.Errorf("core: loading ensemble member %s: %w", mn, err)
			}
			members[i] = m
		}
		for i, s := range wire.Scale {
			if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) || math.IsNaN(wire.Shift[i]) || math.IsInf(wire.Shift[i], 0) {
				return nil, fmt.Errorf("core: corrupt ensemble envelope: member %d scale=%g shift=%g",
					i, s, wire.Shift[i])
			}
		}
		return &ensembleClassifier{
			name: name, combine: combine, members: members,
			shift: wire.Shift, scale: wire.Scale,
		}, nil
	}
}

package core

// Full-model persistence: the train/serve split of the staged
// architecture. SaveModel writes everything scoring needs — the retained
// domain set, the three per-view LINE embeddings, the trained SVM with
// its view selection, and a config fingerprint — as one versioned
// stream layered on the existing line.Embedding.Save and svm.Model.Save
// formats. LoadScorer reads it back into a Scorer, a lightweight
// serving handle that answers Score/Predict/FeatureVector without a
// pipeline.Processor or any of the build-time state, so a model trains
// once and deploys to any number of scoring processes.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/bipartite"
	"repro/internal/crcio"
	"repro/internal/line"
	"repro/internal/svm"
)

const (
	// modelMagic guards against feeding arbitrary gob streams (for
	// example a bare embedding or SVM file) to LoadScorer.
	modelMagic = "maldomain-model"
	// modelVersion is bumped on any incompatible layout change.
	// Version 2 appends a CRC-32 integrity trailer (crcio) over the
	// whole stream; version-1 files (no trailer) are still readable.
	modelVersion = 2
)

// modelHeader is the leading gob value of a saved model; the three
// per-view embeddings (canonical bipartite.Views order) and the SVM
// model follow it on the same stream.
type modelHeader struct {
	Magic       string
	Version     int
	Fingerprint string
	EmbedDim    int
	Domains     []string
	Views       []bipartite.View
}

// Fingerprint returns a short description of every configuration knob
// that shapes the model artifact (window, pruning, projection, embedding
// and SVM parameters, seed). It is stored in saved models so operators
// can tell which configuration produced a file.
func (c Config) Fingerprint() string {
	kernel := "rbf(gamma=0.06)"
	if c.SVM.Kernel != nil {
		kernel = c.SVM.Kernel.Name()
	}
	cost := c.SVM.C
	if cost <= 0 {
		cost = 0.09
	}
	return fmt.Sprintf(
		"start=%s days=%d prune=%g/%d minsim=%g timesim=%g maxattr=%d dim=%d order=%d samples=%d svm=%s/C=%g seed=%d",
		c.Start.UTC().Format("2006-01-02T15:04:05Z"), c.Days,
		c.Prune.MaxHostFrac, c.Prune.MinHosts,
		c.MinSimilarity, c.TimeMinSimilarity, c.MaxAttrDegree,
		c.EmbedDim, c.EmbedOrder, c.EmbedSamples,
		kernel, cost, c.Seed)
}

// SaveModel writes the built model and the classifier trained on it as
// a single versioned stream readable by LoadScorer. The round trip is
// exact: a loaded Scorer reproduces bit-identical feature vectors and
// decision values for every retained domain.
func (d *Detector) SaveModel(w io.Writer, clf *Classifier) error {
	if !d.built {
		return ErrNotBuilt
	}
	if clf == nil {
		return errors.New("core: SaveModel needs a trained classifier")
	}
	if clf.detector != d {
		return errors.New("core: classifier was trained on a different detector")
	}
	hdr := modelHeader{
		Magic:       modelMagic,
		Version:     modelVersion,
		Fingerprint: d.cfg.Fingerprint(),
		EmbedDim:    d.cfg.EmbedDim,
		Domains:     d.domains,
		Views:       clf.views,
	}
	cw := crcio.NewWriter(w)
	if err := gob.NewEncoder(cw).Encode(hdr); err != nil {
		return fmt.Errorf("core: encoding model header: %w", err)
	}
	for _, v := range bipartite.Views {
		if err := d.embeddings[v].Save(cw); err != nil {
			return fmt.Errorf("core: saving %v embedding: %w", v, err)
		}
	}
	if err := clf.model.Save(cw); err != nil {
		return fmt.Errorf("core: saving classifier: %w", err)
	}
	if err := cw.WriteTrailer(); err != nil {
		return fmt.Errorf("core: sealing model: %w", err)
	}
	return nil
}

// Scorer serves a persisted model: feature vectors, decision values and
// predictions for the domains retained at build time, with none of the
// build-time pipeline state. Scorers are immutable and safe for
// concurrent use.
type Scorer struct {
	fingerprint string
	dim         int
	domains     []string
	index       map[string]int
	embeddings  map[bipartite.View]*line.Embedding
	model       *svm.Model
	views       []bipartite.View
}

// LoadScorer reads a model written by SaveModel. Corrupt, truncated, or
// foreign streams are rejected with an error: version-2 streams carry a
// CRC-32 trailer that is verified over every byte, so bit-rot anywhere
// in the file is detected deterministically. Legacy version-1 streams
// (written before the trailer existed) still load.
func LoadScorer(r io.Reader) (*Scorer, error) {
	cr := crcio.NewReader(r)
	var hdr modelHeader
	if err := gob.NewDecoder(cr).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("core: decoding model header: %w", err)
	}
	if hdr.Magic != modelMagic {
		return nil, fmt.Errorf("core: not a model stream (magic %q)", hdr.Magic)
	}
	if hdr.Version != modelVersion && hdr.Version != 1 {
		return nil, fmt.Errorf("core: model version %d, this build reads %d (and legacy 1)",
			hdr.Version, modelVersion)
	}
	if hdr.EmbedDim <= 0 || len(hdr.Domains) == 0 {
		return nil, errors.New("core: corrupt model: empty domain set or dimension")
	}
	if len(hdr.Views) == 0 {
		return nil, errors.New("core: corrupt model: classifier has no views")
	}
	for _, v := range hdr.Views {
		if v != bipartite.ViewQuery && v != bipartite.ViewIP && v != bipartite.ViewTime {
			return nil, fmt.Errorf("core: corrupt model: unknown view %d", int(v))
		}
	}
	s := &Scorer{
		fingerprint: hdr.Fingerprint,
		dim:         hdr.EmbedDim,
		domains:     hdr.Domains,
		index:       make(map[string]int, len(hdr.Domains)),
		embeddings:  make(map[bipartite.View]*line.Embedding, len(bipartite.Views)),
		views:       hdr.Views,
	}
	for i, d := range hdr.Domains {
		s.index[d] = i
	}
	for _, v := range bipartite.Views {
		emb, err := line.LoadEmbedding(cr)
		if err != nil {
			return nil, fmt.Errorf("core: loading %v embedding: %w", v, err)
		}
		if emb.Dim != hdr.EmbedDim {
			return nil, fmt.Errorf("core: %v embedding dim %d, header says %d", v, emb.Dim, hdr.EmbedDim)
		}
		if len(emb.Vectors) != len(hdr.Domains) {
			return nil, fmt.Errorf("core: %v embedding has %d vectors for %d domains",
				v, len(emb.Vectors), len(hdr.Domains))
		}
		s.embeddings[v] = emb
	}
	model, err := svm.LoadModel(cr)
	if err != nil {
		return nil, fmt.Errorf("core: loading classifier: %w", err)
	}
	s.model = model
	if hdr.Version >= 2 {
		if err := cr.VerifyTrailer(); err != nil {
			return nil, fmt.Errorf("core: model integrity check: %w", err)
		}
	}
	return s, nil
}

// Domains returns the retained domain set the model scores, sorted.
// The slice is the scorer's state; treat it as read-only.
func (s *Scorer) Domains() []string { return s.domains }

// Fingerprint returns the configuration fingerprint recorded at save
// time.
func (s *Scorer) Fingerprint() string { return s.fingerprint }

// Model exposes the underlying SVM (support-vector count etc.).
func (s *Scorer) Model() *svm.Model { return s.model }

// FeatureVector mirrors Detector.FeatureVector on the persisted
// embeddings: the domain's representation over the requested views
// (default all three), or ok=false for domains outside the retained set.
func (s *Scorer) FeatureVector(domain string, views ...bipartite.View) ([]float64, bool) {
	i, ok := s.index[domain]
	if !ok {
		return nil, false
	}
	if len(views) == 0 {
		views = bipartite.Views
	}
	out := make([]float64, 0, len(views)*s.dim)
	for _, v := range views {
		out = append(out, s.embeddings[v].Vectors[i]...)
	}
	return out, true
}

// Score returns the SVM decision value for a domain over the views the
// classifier was trained with; ok is false for unknown domains.
func (s *Scorer) Score(domain string) (float64, bool) {
	v, ok := s.FeatureVector(domain, s.views...)
	if !ok {
		return 0, false
	}
	return s.model.Decision(v), true
}

// Predict returns 1 (malicious) or 0 (benign); ok is false for unknown
// domains.
func (s *Scorer) Predict(domain string) (int, bool) {
	sc, ok := s.Score(domain)
	if !ok {
		return 0, false
	}
	if sc > 0 {
		return 1, true
	}
	return 0, true
}

// Result is one domain's scoring outcome in a batch or error-form
// lookup: the SVM decision value, the thresholded label (1 =
// malicious), and whether the domain was in the retained set at all.
// Known=false zero-values the other fields.
type Result struct {
	Score float64
	Label int
	Known bool
}

// ScoreBatch scores many domains in one call, returning one Result per
// input in input order (Known=false for domains outside the retained
// set). Scores and labels are bit-identical to per-domain Score and
// Predict calls; the batch form replaces the three parallel
// single-domain lookups a caller would otherwise chain per domain, and
// reuses one feature buffer across the whole batch so the only
// per-call allocation is the result slice.
func (s *Scorer) ScoreBatch(domains []string) []Result {
	out := make([]Result, len(domains))
	buf := make([]float64, 0, len(s.views)*s.dim)
	for i, d := range domains {
		j, ok := s.index[d]
		if !ok {
			continue
		}
		buf = buf[:0]
		for _, v := range s.views {
			buf = append(buf, s.embeddings[v].Vectors[j]...)
		}
		sc := s.model.Decision(buf)
		label := 0
		if sc > 0 {
			label = 1
		}
		out[i] = Result{Score: sc, Label: label, Known: true}
	}
	return out
}

// Lookup is the error-returning form of Score/Predict for callers that
// propagate failures as errors: it returns the domain's Result, or an
// error wrapping ErrUnknownDomain when the domain is outside the
// retained set. The serving layer maps that sentinel to HTTP 404.
func (s *Scorer) Lookup(domain string) (Result, error) {
	if _, ok := s.index[domain]; !ok {
		return Result{}, fmt.Errorf("%q: %w", domain, ErrUnknownDomain)
	}
	sc, _ := s.Score(domain)
	label := 0
	if sc > 0 {
		label = 1
	}
	return Result{Score: sc, Label: label, Known: true}, nil
}

package core

// Full-model persistence: the train/serve split of the staged
// architecture. SaveModel writes everything scoring needs — the retained
// domain set, the three per-view embeddings, the trained classifier with
// its view selection, and a config fingerprint — as one versioned
// stream layered on the existing line.Embedding.Save and the backend's
// classifier Save format. LoadScorer reads it back into a Scorer, a
// lightweight serving handle that answers Score/Predict/FeatureVector
// without a pipeline.Processor or any of the build-time state, so a
// model trains once and deploys to any number of scoring processes.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/crcio"
	"repro/internal/line"
	"repro/internal/svm"
)

const (
	// modelMagic guards against feeding arbitrary gob streams (for
	// example a bare embedding or SVM file) to LoadScorer.
	modelMagic = "maldomain-model"
	// modelVersion is bumped on any incompatible layout change.
	// Version 2 appends a CRC-32 integrity trailer (crcio) over the
	// whole stream; version-1 files (no trailer) are still readable.
	modelVersion = 2
	// modelVersionBackends (version 3) inserts a modelBackends record
	// between the header and the embedding blobs, naming the backends
	// that produced the file. Default-backend models keep writing
	// version 2 so their bytes are identical to pre-registry builds;
	// versions 1 and 2 load as line+svm.
	modelVersionBackends = 3
)

// modelHeader is the leading gob value of a saved model; the three
// per-view embeddings (canonical bipartite.Views order) and the
// classifier follow it on the same stream (on version-3 streams, after
// the modelBackends record).
type modelHeader struct {
	Magic       string
	Version     int
	Fingerprint string
	EmbedDim    int
	Domains     []string
	Views       []bipartite.View
}

// modelBackends is the second gob value of a version-3 model stream: it
// names the registered backends that produced the file so loading
// dispatches to the right classifier reader and rejects files whose
// backends this build does not know.
type modelBackends struct {
	Embedder   string
	Classifier string
	ViewSet    string
}

// Fingerprint returns a short description of every configuration knob
// that shapes the model artifact (window, pruning, projection, embedding
// and SVM parameters, seed). It is stored in saved models so operators
// can tell which configuration produced a file.
func (c Config) Fingerprint() string {
	kernel := "rbf(gamma=0.06)"
	if c.SVM.Kernel != nil {
		kernel = c.SVM.Kernel.Name()
	}
	cost := c.SVM.C
	if cost <= 0 {
		cost = 0.09
	}
	fp := fmt.Sprintf(
		"start=%s days=%d prune=%g/%d minsim=%g timesim=%g maxattr=%d dim=%d order=%d samples=%d svm=%s/C=%g seed=%d",
		c.Start.UTC().Format("2006-01-02T15:04:05Z"), c.Days,
		c.Prune.MaxHostFrac, c.Prune.MinHosts,
		c.MinSimilarity, c.TimeMinSimilarity, c.MaxAttrDegree,
		c.EmbedDim, c.EmbedOrder, c.EmbedSamples,
		kernel, cost, c.Seed)
	// Backend selections append only when non-default, so every
	// fingerprint ever produced by a default configuration — including
	// ones persisted before the registry existed — stays stable.
	if n := c.embedderName(); n != DefaultEmbedder {
		fp += " embedder=" + n
	}
	if n := c.classifierName(); n != DefaultClassifier {
		fp += " classifier=" + n
	}
	if n := c.viewSetName(); n != DefaultViewSet {
		fp += " views=" + n
	}
	return fp
}

// SaveModel writes the built model and the classifier trained on it as
// a single versioned stream readable by LoadScorer. The round trip is
// exact: a loaded Scorer reproduces bit-identical feature vectors and
// decision values for every retained domain.
func (d *Detector) SaveModel(w io.Writer, clf *Classifier) error {
	if !d.built {
		return ErrNotBuilt
	}
	if clf == nil {
		return errors.New("core: SaveModel needs a trained classifier")
	}
	if clf.detector != d {
		return errors.New("core: classifier was trained on a different detector")
	}
	bk := modelBackends{
		Embedder:   d.cfg.embedderName(),
		Classifier: clf.clf.Name(),
		ViewSet:    d.cfg.viewSetName(),
	}
	version := modelVersion
	if bk.Embedder != DefaultEmbedder || bk.Classifier != DefaultClassifier {
		version = modelVersionBackends
	}
	hdr := modelHeader{
		Magic:       modelMagic,
		Version:     version,
		Fingerprint: d.cfg.Fingerprint(),
		EmbedDim:    d.cfg.EmbedDim,
		Domains:     d.domains,
		Views:       clf.views,
	}
	cw := crcio.NewWriter(w)
	enc := gob.NewEncoder(cw)
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("core: encoding model header: %w", err)
	}
	if version >= modelVersionBackends {
		if err := enc.Encode(bk); err != nil {
			return fmt.Errorf("core: encoding model backends: %w", err)
		}
	}
	for _, v := range bipartite.Views {
		e := d.embeddings[v]
		// Embeddings always persist through the line wire format
		// regardless of which backend trained them: the on-disk blob is
		// plain (dim, vectors), and reusing one format keeps default
		// files byte-identical to pre-registry builds.
		if err := (&line.Embedding{Dim: e.Dim, Vectors: e.Vectors}).Save(cw); err != nil {
			return fmt.Errorf("core: saving %v embedding: %w", v, err)
		}
	}
	if err := clf.clf.Save(cw); err != nil {
		return fmt.Errorf("core: saving classifier: %w", err)
	}
	if err := cw.WriteTrailer(); err != nil {
		return fmt.Errorf("core: sealing model: %w", err)
	}
	return nil
}

// Scorer serves a persisted model: feature vectors, decision values and
// predictions for the domains retained at build time, with none of the
// build-time pipeline state. Scorers are immutable and safe for
// concurrent use.
//
// The retained domain set is fixed at load time, which makes the
// classifier decision values a finite pure function of the model:
// LoadScorer precomputes them once (through the exact same
// feature-assembly and Decision path a per-call evaluation would take,
// so the table is bit-identical by construction) and the per-request
// lookup forms — Score, Predict, Result, ScoreBatch, ScoreBatchInto,
// Lookup — reduce to one map probe plus two array reads. None of them
// allocate; scripts/alloccheck.sh gates that invariant in CI.
type Scorer struct {
	fingerprint string
	dim         int
	domains     []string
	index       map[string]int
	embeddings  map[bipartite.View]*Embedding
	clf         DomainClassifier
	views       []bipartite.View

	// embedderName and classifierName are the backend names recorded in
	// the file (line/svm for legacy version-1/2 streams).
	embedderName   string
	classifierName string

	// scores and labels are the precomputed decision table, indexed
	// like domains.
	scores []float64
	labels []int8

	// featNorm is the L2 norm of each retained domain's feature vector
	// over the classifier's views, precomputed for the fold-in kNN's
	// cosine similarities (foldin.go).
	featNorm []float64

	// foldinPool recycles ScoreObserved's scratch space (foldin.go).
	foldinPool sync.Pool
}

// LoadScorer reads a model written by SaveModel. Corrupt, truncated, or
// foreign streams are rejected with an error: version-2 streams carry a
// CRC-32 trailer that is verified over every byte, so bit-rot anywhere
// in the file is detected deterministically. Legacy version-1 streams
// (written before the trailer existed) still load.
func LoadScorer(r io.Reader) (*Scorer, error) {
	cr := crcio.NewReader(r)
	dec := gob.NewDecoder(cr)
	var hdr modelHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("core: decoding model header: %w", err)
	}
	if hdr.Magic != modelMagic {
		return nil, fmt.Errorf("core: not a model stream (magic %q)", hdr.Magic)
	}
	if hdr.Version != modelVersion && hdr.Version != modelVersionBackends && hdr.Version != 1 {
		return nil, fmt.Errorf("core: model version %d, this build reads %d (and legacy 2, 1)",
			hdr.Version, modelVersionBackends)
	}
	if hdr.EmbedDim <= 0 || len(hdr.Domains) == 0 {
		return nil, errors.New("core: corrupt model: empty domain set or dimension")
	}
	if len(hdr.Views) == 0 {
		return nil, errors.New("core: corrupt model: classifier has no views")
	}
	for _, v := range hdr.Views {
		if v != bipartite.ViewQuery && v != bipartite.ViewIP && v != bipartite.ViewTime {
			return nil, fmt.Errorf("core: corrupt model: unknown view %d", int(v))
		}
	}
	// Version-1/2 streams predate backend names; they were always
	// line+svm. Version-3 streams name their backends, and both names
	// must be registered in this build or the load is rejected.
	bk := modelBackends{Embedder: DefaultEmbedder, Classifier: DefaultClassifier, ViewSet: DefaultViewSet}
	if hdr.Version >= modelVersionBackends {
		if err := dec.Decode(&bk); err != nil {
			return nil, fmt.Errorf("core: decoding model backends: %w", err)
		}
		if _, ok := embedders[bk.Embedder]; !ok {
			return nil, fmt.Errorf("core: model needs unknown embedder %q (available: %s)",
				bk.Embedder, strings.Join(Embedders(), ", "))
		}
		if _, ok := clfLoaders[bk.Classifier]; !ok {
			return nil, fmt.Errorf("core: model needs unknown classifier %q (available: %s)",
				bk.Classifier, strings.Join(Classifiers(), ", "))
		}
	}
	s := &Scorer{
		fingerprint:    hdr.Fingerprint,
		dim:            hdr.EmbedDim,
		domains:        hdr.Domains,
		index:          make(map[string]int, len(hdr.Domains)),
		embeddings:     make(map[bipartite.View]*Embedding, len(bipartite.Views)),
		views:          hdr.Views,
		embedderName:   bk.Embedder,
		classifierName: bk.Classifier,
	}
	for i, d := range hdr.Domains {
		s.index[d] = i
	}
	for _, v := range bipartite.Views {
		emb, err := line.LoadEmbedding(cr)
		if err != nil {
			return nil, fmt.Errorf("core: loading %v embedding: %w", v, err)
		}
		if emb.Dim != hdr.EmbedDim {
			return nil, fmt.Errorf("core: %v embedding dim %d, header says %d", v, emb.Dim, hdr.EmbedDim)
		}
		if len(emb.Vectors) != len(hdr.Domains) {
			return nil, fmt.Errorf("core: %v embedding has %d vectors for %d domains",
				v, len(emb.Vectors), len(hdr.Domains))
		}
		s.embeddings[v] = &Embedding{Dim: emb.Dim, Vectors: emb.Vectors}
	}
	clf, err := loadClassifier(bk.Classifier, cr)
	if err != nil {
		return nil, fmt.Errorf("core: loading classifier: %w", err)
	}
	s.clf = clf
	if hdr.Version >= 2 {
		if err := cr.VerifyTrailer(); err != nil {
			return nil, fmt.Errorf("core: model integrity check: %w", err)
		}
	}
	s.precompute()
	return s, nil
}

// precompute fills the decision table: one Decision evaluation per
// retained domain, through the same AppendFeatureVector + Decision
// path a per-call Score would take, so serving reads are bit-identical
// to on-demand evaluation. One feature buffer is reused across the
// whole sweep; the table itself (16 B + 1 B per domain) is the only
// allocation that scales with the model.
func (s *Scorer) precompute() {
	s.scores = make([]float64, len(s.domains))
	s.labels = make([]int8, len(s.domains))
	s.featNorm = make([]float64, len(s.domains))
	buf := make([]float64, 0, len(s.views)*s.dim)
	for i := range s.domains {
		buf = s.appendFeaturesAt(buf[:0], i, s.views)
		sc := s.clf.Decision(buf)
		s.scores[i] = sc
		if sc > 0 {
			s.labels[i] = 1
		}
		var sq float64
		for _, x := range buf {
			sq += x * x
		}
		s.featNorm[i] = math.Sqrt(sq)
	}
	s.foldinPool.New = func() any { return s.newFoldinScratch() }
}

// appendFeaturesAt appends the feature vector of the i-th retained
// domain (over the given views) to dst and returns the extended slice.
func (s *Scorer) appendFeaturesAt(dst []float64, i int, views []bipartite.View) []float64 {
	for _, v := range views {
		dst = append(dst, s.embeddings[v].Vectors[i]...)
	}
	return dst
}

// Domains returns the retained domain set the model scores, sorted.
// The slice is the scorer's state; treat it as read-only.
func (s *Scorer) Domains() []string { return s.domains }

// Fingerprint returns the configuration fingerprint recorded at save
// time.
func (s *Scorer) Fingerprint() string { return s.fingerprint }

// Model exposes the underlying SVM (support-vector count etc.) when
// the persisted classifier is SVM-backed, directly or through an
// ensemble member; it returns nil for other backends.
func (s *Scorer) Model() *svm.Model {
	if b, ok := s.clf.(svmBacked); ok {
		return b.SVM()
	}
	return nil
}

// EmbedderName returns the embedding backend name recorded in the model
// file ("line" for legacy version-1/2 files).
func (s *Scorer) EmbedderName() string { return s.embedderName }

// ClassifierName returns the classification backend name recorded in
// the model file ("svm" for legacy version-1/2 files).
func (s *Scorer) ClassifierName() string { return s.classifierName }

// FeatureVector mirrors Detector.FeatureVector on the persisted
// embeddings: the domain's representation over the requested views
// (default all three), or ok=false for domains outside the retained
// set. The returned slice is freshly allocated and caller-owned; use
// AppendFeatureVector to reuse a buffer across calls.
func (s *Scorer) FeatureVector(domain string, views ...bipartite.View) ([]float64, bool) {
	i, ok := s.index[domain]
	if !ok {
		return nil, false
	}
	if len(views) == 0 {
		views = bipartite.Views
	}
	return s.appendFeaturesAt(make([]float64, 0, len(views)*s.dim), i, views), true
}

// AppendFeatureVector is the append form of FeatureVector: it appends
// the domain's representation over the requested views (default all
// three) to dst and returns the extended slice. When dst has capacity
// len(views)*Dim free, the call does not allocate; ok=false (with dst
// unchanged) reports domains outside the retained set.
func (s *Scorer) AppendFeatureVector(dst []float64, domain string, views ...bipartite.View) ([]float64, bool) {
	i, ok := s.index[domain]
	if !ok {
		return dst, false
	}
	if len(views) == 0 {
		views = bipartite.Views
	}
	return s.appendFeaturesAt(dst, i, views), true
}

// Score returns the SVM decision value for a domain over the views the
// classifier was trained with; ok is false for unknown domains. The
// value is read from the precomputed decision table and is
// bit-identical to evaluating the classifier on the domain's feature
// vector.
//
//alloccheck:hot
func (s *Scorer) Score(domain string) (float64, bool) {
	i, ok := s.index[domain]
	if !ok {
		return 0, false
	}
	return s.scores[i], true
}

// Predict returns 1 (malicious) or 0 (benign); ok is false for unknown
// domains.
//
//alloccheck:hot
func (s *Scorer) Predict(domain string) (int, bool) {
	i, ok := s.index[domain]
	if !ok {
		return 0, false
	}
	return int(s.labels[i]), true
}

// Result returns the domain's full scoring outcome in comma-ok form:
// the same Score/Label pair the batch API reports, without touching
// the error path. It is the building block the serving layer's hot
// path uses.
//
//alloccheck:hot
func (s *Scorer) Result(domain string) (Result, bool) {
	i, ok := s.index[domain]
	if !ok {
		return Result{}, false
	}
	return Result{Score: s.scores[i], Label: int(s.labels[i]), Known: true,
		Confidence: 1, Source: SourceModel}, true
}

// Scoring sources: how a Result's verdict was produced. The serving
// layer surfaces them verbatim in the v1 API's "source" field.
const (
	// SourceModel marks a retained domain scored from the precomputed
	// decision table — the exact model verdict.
	SourceModel = "model"
	// SourceFoldin marks an unseen domain scored by classifying its
	// folded-in provisional embedding (ScoreObserved), with the kNN
	// vote agreeing or abstaining.
	SourceFoldin = "foldin"
	// SourceKNN marks an unseen domain whose kNN-over-embeddings vote
	// overrode a disagreeing classifier verdict.
	SourceKNN = "knn"
)

// Result is one domain's scoring outcome in a batch or error-form
// lookup: the decision value, the thresholded label (1 = malicious),
// and whether the domain was in the retained set at all. Known=false
// zero-values the other fields — unless the result came from
// ScoreObserved, which scores domains outside the model (Known stays
// false, Source and Confidence report how and how surely).
type Result struct {
	Score float64
	Label int
	Known bool
	// Confidence calibrates the verdict into [0,1]: 1 for retained
	// domains (the score is the model's exact output), and for fold-in
	// results the product of relation coverage across views and the
	// kNN neighborhood's label agreement (see foldin.go).
	Confidence float64
	// Source is one of SourceModel, SourceFoldin, SourceKNN; empty for
	// a Known=false result with no fold-in evidence.
	Source string
}

// ScoreBatch scores many domains in one call, returning one Result per
// input in input order (Known=false for domains outside the retained
// set). Scores and labels are bit-identical to per-domain Score and
// Predict calls. The result slice is the only per-call allocation;
// callers that reuse buffers across batches should use ScoreBatchInto.
func (s *Scorer) ScoreBatch(domains []string) []Result {
	return s.ScoreBatchInto(make([]Result, 0, len(domains)), domains)
}

// ScoreBatchInto is the append form of ScoreBatch: it appends one
// Result per domain (input order, Known=false for unknown domains) to
// dst and returns the extended slice. When dst has capacity
// len(domains) free, the call does not allocate, so a caller scoring a
// stream of batches can reuse one buffer for the whole stream.
//
//alloccheck:hot
func (s *Scorer) ScoreBatchInto(dst []Result, domains []string) []Result {
	for _, d := range domains {
		i, ok := s.index[d]
		if !ok {
			dst = append(dst, Result{})
			continue
		}
		dst = append(dst, Result{Score: s.scores[i], Label: int(s.labels[i]), Known: true,
			Confidence: 1, Source: SourceModel})
	}
	return dst
}

// Lookup is the error-returning form of Score/Predict for callers that
// propagate failures as errors: it returns the domain's Result, or an
// error wrapping ErrUnknownDomain when the domain is outside the
// retained set. The serving layer maps that sentinel to HTTP 404.
// The known-domain path does not allocate.
//
//alloccheck:hot
func (s *Scorer) Lookup(domain string) (Result, error) {
	res, ok := s.Result(domain)
	if !ok {
		return Result{}, unknownDomainError(domain)
	}
	return res, nil
}

// unknownDomainError builds the wrapped ErrUnknownDomain for one
// domain. It is kept out of Lookup so the error construction's
// allocations stay off the gated hot-path functions.
//
//go:noinline
func unknownDomainError(domain string) error {
	return fmt.Errorf("%q: %w", domain, ErrUnknownDomain)
}

package core

// The Figure-2 build is decomposed into explicit named stages — graph
// construction, one one-mode projection per view, one embedding per
// view — executed by a small runner that threads a buildArtifacts struct
// from stage to stage and records a BuildReport. The decomposition is
// what the streaming mode's warm-start remodels and the model
// persistence layer hang off: stages expose their intermediate products
// (graphs, projections, embeddings) and their costs instead of hiding
// them inside one monolithic BuildModel body. The embedding stages call
// whichever Embedder backend Config.Embedder selects from the registry.

import (
	"fmt"
	"time"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/obsv"
)

// StageReport records one build stage's cost and output size. Zero
// counts mean the dimension does not apply to the stage.
type StageReport struct {
	// Name identifies the stage: "graphs", "project:<view>", or
	// "embed:<view>".
	Name string
	// Duration is the stage's wall-clock time.
	Duration time.Duration
	// Vertices is the domain vertex count the stage operated on.
	Vertices int
	// Edges is the stage's output edge count (bipartite edges for
	// "graphs", similarity edges for projection and embedding stages).
	Edges int
	// Samples is the number of SGD samples an embedding stage performed.
	Samples int
}

// BuildReport summarizes a full BuildModel run stage by stage.
type BuildReport struct {
	// Stages lists the per-stage reports in execution order.
	Stages []StageReport
	// Total is the end-to-end wall-clock time of BuildModel.
	Total time.Duration
}

// Stage returns the report for the named stage, if present.
func (r BuildReport) Stage(name string) (StageReport, bool) {
	for _, s := range r.Stages {
		if s.Name == name {
			return s, true
		}
	}
	return StageReport{}, false
}

// buildArtifacts is the state threaded through the build stages; each
// stage fills the fields the next stages consume. After the last stage
// the runner installs the artifacts on the Detector.
type buildArtifacts struct {
	graphs      map[bipartite.View]*bipartite.Graph
	domains     []string
	index       map[string]int
	projections map[bipartite.View]*bipartite.Projection
	embeddings  map[bipartite.View]*Embedding
	// embedder is the backend resolved once by runBuild, shared by the
	// per-view embedding stages.
	embedder Embedder
}

// buildStage is one named step of the staged build.
type buildStage struct {
	name string
	run  func(d *Detector, a *buildArtifacts, rep *StageReport) error
}

// buildStages returns the stage sequence of the paper's Figure-2 model
// build: bipartite graph construction, then per view a one-mode
// projection followed by a LINE embedding.
func (d *Detector) buildStages() []buildStage {
	stages := []buildStage{{name: "graphs", run: stageGraphs}}
	for _, view := range bipartite.Views {
		stages = append(stages, buildStage{
			name: "project:" + view.String(),
			run:  stageProject(view),
		})
	}
	for _, view := range bipartite.Views {
		stages = append(stages, buildStage{
			name: "embed:" + view.String(),
			run:  stageEmbed(view),
		})
	}
	return stages
}

// runBuild executes the stages in order, timing each, and returns the
// artifacts and report. It does not mutate the Detector. When
// Config.Metrics is set, every stage's wall time is also observed into
// the shared obsv registry under the same vocabulary the serving
// daemon exposes.
func (d *Detector) runBuild(stages []buildStage) (*buildArtifacts, BuildReport, error) {
	embedder, err := newEmbedder(d.cfg)
	if err != nil {
		return nil, BuildReport{}, err
	}
	a := &buildArtifacts{
		projections: make(map[bipartite.View]*bipartite.Projection, len(bipartite.Views)),
		embeddings:  make(map[bipartite.View]*Embedding, len(bipartite.Views)),
		embedder:    embedder,
	}
	var stageSeconds *obsv.HistogramVec
	if reg := d.cfg.Metrics; reg != nil {
		stageSeconds = reg.HistogramVec("maldomain_build_stage_seconds",
			"Wall time of one model-build stage.", "stage")
	}
	var report BuildReport
	start := time.Now() //maldlint:ignore detpath stage timing is observability only, never model state
	for _, st := range stages {
		rep := StageReport{Name: st.name}
		s0 := time.Now() //maldlint:ignore detpath stage timing is observability only, never model state
		if err := st.run(d, a, &rep); err != nil {
			return nil, BuildReport{}, err
		}
		rep.Duration = time.Since(s0)
		report.Stages = append(report.Stages, rep)
		if stageSeconds != nil {
			stageSeconds.With(st.name).Observe(rep.Duration.Seconds())
		}
	}
	report.Total = time.Since(start)
	if reg := d.cfg.Metrics; reg != nil {
		reg.Histogram("maldomain_build_seconds",
			"End-to-end wall time of BuildModel.").Observe(report.Total.Seconds())
		reg.Counter("maldomain_builds_total",
			"Completed model builds.").Inc()
		reg.Gauge("maldomain_build_retained_domains",
			"Retained domain vertex count of the last completed build.").Set(float64(len(a.domains)))
	}
	return a, report, nil
}

// stageGraphs builds the three bipartite graphs over the shared pruned
// domain vertex set (§4.1).
func stageGraphs(d *Detector, a *buildArtifacts, rep *StageReport) error {
	q, ip, tg := bipartite.Build(d.proc.Stats(), d.proc.DeviceCount(), d.cfg.Prune)
	if len(q.Domains) == 0 {
		return ErrNoDomains
	}
	a.graphs = map[bipartite.View]*bipartite.Graph{
		bipartite.ViewQuery: q,
		bipartite.ViewIP:    ip,
		bipartite.ViewTime:  tg,
	}
	a.domains = q.Domains
	a.index = q.DomainIndex()
	rep.Vertices = len(a.domains)
	rep.Edges = q.EdgeCount + ip.EdgeCount + tg.EdgeCount
	return nil
}

// stageProject computes one view's one-mode projection (§4.2).
func stageProject(view bipartite.View) func(*Detector, *buildArtifacts, *StageReport) error {
	return func(d *Detector, a *buildArtifacts, rep *StageReport) error {
		minSim := d.cfg.MinSimilarity
		if view == bipartite.ViewTime && d.cfg.TimeMinSimilarity > 0 {
			minSim = d.cfg.TimeMinSimilarity
		}
		proj := bipartite.Project(a.graphs[view], bipartite.ProjectConfig{
			MinSimilarity: minSim,
			MaxAttrDegree: d.cfg.MaxAttrDegree,
			Workers:       d.cfg.Workers,
		})
		a.projections[view] = proj
		rep.Vertices = len(a.domains)
		rep.Edges = len(proj.Edges)
		return nil
	}
}

// stageEmbed trains one view's embedding (§5) through the configured
// Embedder backend, warm-started from Config.EmbedInit when the hook
// supplies vectors.
func stageEmbed(view bipartite.View) func(*Detector, *buildArtifacts, *StageReport) error {
	return func(d *Detector, a *buildArtifacts, rep *StageReport) error {
		proj := a.projections[view]
		edges := make([]graph.Edge, len(proj.Edges))
		for i, e := range proj.Edges {
			edges[i] = graph.Edge{U: e.U, V: e.V, W: e.W}
		}
		g, err := graph.Build(len(a.domains), edges)
		if err != nil {
			return fmt.Errorf("core: building %v similarity graph: %w", view, err)
		}
		var init [][]float64
		if d.cfg.EmbedInit != nil {
			init = d.cfg.EmbedInit(view, a.domains)
		}
		emb, err := a.embedder.Train(g, EmbedSpec{
			Dim:     d.cfg.EmbedDim,
			Samples: d.cfg.EmbedSamples,
			Workers: d.cfg.Workers,
			Seed:    d.cfg.Seed ^ uint64(view)*0x9e3779b97f4a7c15,
			Init:    init,
		})
		if err != nil {
			return fmt.Errorf("core: embedding %v view with %s: %w", view, a.embedder.Name(), err)
		}
		a.embeddings[view] = emb
		rep.Vertices = len(a.domains)
		rep.Edges = len(proj.Edges)
		rep.Samples = emb.Samples
		return nil
	}
}

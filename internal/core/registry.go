package core

// The pluggable-stage registry: the three seams of the Figure-2
// pipeline — feature learning over the similarity graphs, domain
// classification over the concatenated features, and the view
// selection between them — are interfaces resolved by name from
// package-level registries, so alternative backends (the MF-DNS-E
// matrix-factorization embedder, label propagation over the
// association structure, ensembles) plug in through Config instead of
// patching core internals. The built-in registrations live in the
// backend_*.go files; the default selection (line + svm over all three
// views) reproduces the pre-registry build byte-identically, which
// golden_test.go pins.
//
// Registry contract for backends (see DESIGN.md §S30):
//
//   - Determinism: with Workers ≤ 1 in the spec, Train/Fit must be a
//     pure function of (inputs, seed) — the streaming mode's
//     crash-recovery guarantee replays builds and compares feeds
//     byte-for-byte.
//   - Warm start: an Embedder must honor EmbedSpec.Init (nil rows =
//     cold start for that vertex) or ignore it entirely; it must never
//     mutate the init rows, which alias the previous window's live
//     model.
//   - Persistence: a DomainClassifier's Save must write only
//     gob-friendly wire structs with exported fields (maldlint's
//     gobfields check patrols this), and the registered loader must
//     read back a classifier whose Decision is bit-identical to the
//     saved one.

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/bipartite"
	"repro/internal/graph"
)

// Embedding holds one view's learned vertex representations in a
// backend-neutral form: Vectors[v] is the embedding of retained domain
// v (index-aligned with Detector.Domains).
type Embedding struct {
	Dim     int
	Vectors [][]float64
	// Samples is the number of SGD samples the backend performed, for
	// build telemetry; 0 when the notion does not apply.
	Samples int
}

// EmbedSpec carries the per-build training parameters an Embedder
// receives alongside the similarity graph. Backend-specific knobs
// (LINE's proximity order, MF's regularization) belong to the backend
// factory's captured Config instead.
type EmbedSpec struct {
	// Dim is the requested embedding dimension.
	Dim int
	// Samples overrides the backend's automatic sample budget (0 =
	// auto).
	Samples int
	// Workers bounds parallelism; 1 must make training deterministic.
	Workers int
	// Seed drives initialization and sampling; it is already mixed
	// per-view by the stage runner.
	Seed uint64
	// Init optionally warm-starts training with one row per vertex
	// (nil rows fall back to random initialization). Rows must be
	// treated as read-only.
	Init [][]float64
}

// Embedder learns one view's embedding from its similarity graph.
// Implementations are stateless per build; a fresh value comes from
// the registered factory for every Detector.
type Embedder interface {
	// Name returns the registered backend name.
	Name() string
	// Train learns vertex representations for g under spec.
	Train(g *graph.Weighted, spec EmbedSpec) (*Embedding, error)
}

// DomainClassifier scores feature vectors on the malicious/benign
// axis. Fit is called once with the training matrix; Decision must be
// safe for concurrent use after Fit (the Scorer precomputes its
// decision table through it).
type DomainClassifier interface {
	// Name returns the registered backend name.
	Name() string
	// Fit trains on X (one row per domain) with labels y (1 =
	// malicious).
	Fit(X [][]float64, y []int) error
	// Decision returns the decision value for one feature vector
	// (positive = malicious side of the boundary).
	Decision(x []float64) float64
	// Save persists the fitted state; the backend's registered
	// ClassifierLoader must read it back.
	Save(w io.Writer) error
}

// EmbedderFactory builds a backend instance for one detector
// configuration.
type EmbedderFactory func(cfg Config) Embedder

// ClassifierFactory builds a backend instance for one detector
// configuration.
type ClassifierFactory func(cfg Config) DomainClassifier

// ClassifierLoader reads a classifier persisted by its Save method.
type ClassifierLoader func(r io.Reader) (DomainClassifier, error)

// Default backend names: the selection Config's zero values resolve
// to, reproducing the paper's pipeline.
const (
	DefaultEmbedder   = "line"
	DefaultClassifier = "svm"
	DefaultViewSet    = "all"
)

var (
	embedders   = map[string]EmbedderFactory{}
	classifiers = map[string]ClassifierFactory{}
	clfLoaders  = map[string]ClassifierLoader{}
	viewSets    = map[string][]bipartite.View{}
)

// RegisterEmbedder adds an embedding backend under name. Registering a
// duplicate name panics: silently replacing a backend would change
// what existing fingerprints and model files mean.
func RegisterEmbedder(name string, factory EmbedderFactory) {
	if name == "" || factory == nil {
		panic("core: RegisterEmbedder needs a name and a factory")
	}
	if _, dup := embedders[name]; dup {
		panic(fmt.Sprintf("core: embedder %q already registered", name))
	}
	embedders[name] = factory
}

// RegisterClassifier adds a classification backend under name, with
// the loader that reads its persisted form. Duplicate names panic.
func RegisterClassifier(name string, factory ClassifierFactory, loader ClassifierLoader) {
	if name == "" || factory == nil || loader == nil {
		panic("core: RegisterClassifier needs a name, a factory, and a loader")
	}
	if _, dup := classifiers[name]; dup {
		panic(fmt.Sprintf("core: classifier %q already registered", name))
	}
	classifiers[name] = factory
	clfLoaders[name] = loader
}

// RegisterViewSet adds a named view selection. Duplicate names panic.
func RegisterViewSet(name string, views []bipartite.View) {
	if name == "" || len(views) == 0 {
		panic("core: RegisterViewSet needs a name and at least one view")
	}
	if _, dup := viewSets[name]; dup {
		panic(fmt.Sprintf("core: view set %q already registered", name))
	}
	viewSets[name] = append([]bipartite.View(nil), views...)
}

// Embedders lists the registered embedding backends, sorted.
func Embedders() []string { return sortedKeys(embedders) }

// Classifiers lists the registered classification backends, sorted.
func Classifiers() []string { return sortedKeys(classifiers) }

// ViewSets lists the registered view selections, sorted.
func ViewSets() []string { return sortedKeys(viewSets) }

// ViewSet returns the views registered under name.
func ViewSet(name string) ([]bipartite.View, bool) {
	views, ok := viewSets[name]
	if !ok {
		return nil, false
	}
	return append([]bipartite.View(nil), views...), true
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Selection-name accessors: the Config zero values mean the defaults,
// so fingerprints and persisted headers always carry concrete names.

func (c Config) embedderName() string {
	if c.Embedder == "" {
		return DefaultEmbedder
	}
	return c.Embedder
}

func (c Config) classifierName() string {
	if c.Classifier == "" {
		return DefaultClassifier
	}
	return c.Classifier
}

func (c Config) viewSetName() string {
	if c.Views == "" {
		return DefaultViewSet
	}
	return c.Views
}

// newEmbedder resolves the configured embedding backend.
func newEmbedder(cfg Config) (Embedder, error) {
	name := cfg.embedderName()
	factory, ok := embedders[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown embedder %q (available: %s)",
			name, strings.Join(Embedders(), ", "))
	}
	return factory(cfg), nil
}

// newClassifier resolves the configured classification backend.
func newClassifier(cfg Config) (DomainClassifier, error) {
	name := cfg.classifierName()
	factory, ok := classifiers[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown classifier %q (available: %s)",
			name, strings.Join(Classifiers(), ", "))
	}
	return factory(cfg), nil
}

// loadClassifier reads a persisted classifier through the loader
// registered under name.
func loadClassifier(name string, r io.Reader) (DomainClassifier, error) {
	loader, ok := clfLoaders[name]
	if !ok {
		return nil, fmt.Errorf("core: model needs unknown classifier %q (available: %s)",
			name, strings.Join(Classifiers(), ", "))
	}
	return loader(r)
}

// resolveViewSet resolves the configured named view selection to a
// fresh slice.
func resolveViewSet(cfg Config) ([]bipartite.View, error) {
	name := cfg.viewSetName()
	views, ok := ViewSet(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown view set %q (available: %s)",
			name, strings.Join(ViewSets(), ", "))
	}
	return views, nil
}

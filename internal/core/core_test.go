package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/dnssim"
	"repro/internal/eval"
	"repro/internal/pipeline"
	"repro/internal/race"
	"repro/internal/svm"
	"repro/internal/threatintel"
	"repro/internal/xmeans"
)

// sharedFixture caches one built detector per seed: the model is
// immutable after BuildModel, so tests can safely share it, which keeps
// the package's wall-clock time down (building costs ~20s).
var sharedFixture = struct {
	mu    sync.Mutex
	cache map[uint64]*fixture
}{cache: make(map[uint64]*fixture)}

type fixture struct {
	d  *Detector
	s  *dnssim.Scenario
	ti *threatintel.Service
}

// buildDetector returns the shared fixture for seed, building it on
// first use.
func buildDetector(t testing.TB, seed uint64) (*Detector, *dnssim.Scenario, *threatintel.Service) {
	t.Helper()
	skipIfRace(t)
	sharedFixture.mu.Lock()
	defer sharedFixture.mu.Unlock()
	if f, ok := sharedFixture.cache[seed]; ok {
		return f.d, f.s, f.ti
	}
	s := dnssim.NewScenario(dnssim.SmallScenario(seed))
	d := NewDetector(Config{
		Start: s.Config.Start,
		Days:  s.Config.Days,
		DHCP:  s.DHCP(),
		Seed:  seed,
	})
	s.Generate(func(ev dnssim.Event) { d.Consume(pipeline.Input(ev)) })
	if err := d.BuildModel(); err != nil {
		t.Fatal(err)
	}
	ti := threatintel.NewService(s.TruthTable(), threatintel.Config{Seed: seed})
	sharedFixture.cache[seed] = &fixture{d: d, s: s, ti: ti}
	return d, s, ti
}

func labeledSet(t testing.TB, d *Detector, ti *threatintel.Service) (domains []string, labels []int) {
	t.Helper()
	all, err := d.Domains()
	if err != nil {
		t.Fatal(err)
	}
	return ti.LabeledSet(all)
}

// skipIfRace skips model-building tests under the race detector: the
// LINE SGD inside BuildModel performs hundreds of millions of atomic
// operations, which instrumentation slows past the default per-package
// test timeout. The pipeline's concurrent components (bipartite
// projection, LINE workers, x-means) have fast package-level tests
// that do run under -race; core itself orchestrates them sequentially.
func skipIfRace(t testing.TB) {
	t.Helper()
	if race.Enabled {
		t.Skip("model build too slow under the race detector; components are race-tested per package")
	}
}

func TestLifecycleErrors(t *testing.T) {
	d := NewDetector(Config{})
	if _, err := d.Domains(); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("Domains before build: %v", err)
	}
	if _, err := d.Stats(); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("Stats before build: %v", err)
	}
	if _, err := d.TrainClassifier(nil, nil); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("TrainClassifier before build: %v", err)
	}
	if _, _, err := d.FeatureMatrix([]string{"a.com"}); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("FeatureMatrix before build: %v", err)
	}
	if _, err := d.BuildReport(); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("BuildReport before build: %v", err)
	}
	if _, err := d.Embedding(bipartite.ViewQuery); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("Embedding before build: %v", err)
	}
	if err := d.BuildModel(); !errors.Is(err, ErrNoDomains) {
		t.Errorf("BuildModel on empty traffic: %v", err)
	}
}

// TestBuildReportStages checks the staged build's telemetry: every
// Figure-2 stage appears in order with plausible counts.
func TestBuildReportStages(t *testing.T) {
	d, _, _ := buildDetector(t, 21)
	rep, err := d.BuildReport()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"graphs",
		"project:query", "project:ip", "project:time",
		"embed:query", "embed:ip", "embed:time",
	}
	if len(rep.Stages) != len(want) {
		t.Fatalf("report has %d stages, want %d", len(rep.Stages), len(want))
	}
	st, _ := d.Stats()
	var sum int64
	for i, s := range rep.Stages {
		if s.Name != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Name, want[i])
		}
		if s.Vertices != st.RetainedE2LDs {
			t.Errorf("stage %q vertices = %d, want %d", s.Name, s.Vertices, st.RetainedE2LDs)
		}
		sum += int64(s.Duration)
	}
	if rep.Total <= 0 || int64(rep.Total) < sum {
		t.Errorf("total %v below stage sum %v", rep.Total, sum)
	}
	for _, v := range bipartite.Views {
		p, ok := rep.Stage("project:" + v.String())
		if !ok || p.Edges != st.ProjectionEdges[v] {
			t.Errorf("project:%v edges = %d, want %d", v, p.Edges, st.ProjectionEdges[v])
		}
		e, ok := rep.Stage("embed:" + v.String())
		if !ok || e.Samples <= 0 {
			t.Errorf("embed:%v samples = %d, want > 0", v, e.Samples)
		}
	}
	if _, ok := rep.Stage("no-such-stage"); ok {
		t.Error("unknown stage reported present")
	}
}

func TestBuildModelOnce(t *testing.T) {
	d, _, _ := buildDetector(t, 21)
	if err := d.BuildModel(); !errors.Is(err, ErrAlreadyBuilt) {
		t.Errorf("second BuildModel: %v", err)
	}
}

func TestModelStats(t *testing.T) {
	d, s, _ := buildDetector(t, 21)
	st, err := d.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Devices == 0 || st.Devices > s.Config.Hosts {
		t.Errorf("devices = %d with %d hosts", st.Devices, s.Config.Hosts)
	}
	if st.RetainedE2LDs == 0 || st.RetainedE2LDs > st.ObservedE2LDs {
		t.Errorf("retained %d of %d observed", st.RetainedE2LDs, st.ObservedE2LDs)
	}
	for _, v := range bipartite.Views {
		if st.ProjectionEdges[v] == 0 {
			t.Errorf("%v projection has no edges", v)
		}
	}
}

func TestFeatureVectorShape(t *testing.T) {
	d, _, _ := buildDetector(t, 21)
	domains, err := d.Domains()
	if err != nil {
		t.Fatal(err)
	}
	full, ok := d.FeatureVector(domains[0])
	if !ok {
		t.Fatal("retained domain has no feature vector")
	}
	if len(full) != 3*d.Config().EmbedDim {
		t.Errorf("combined vector dim %d, want %d", len(full), 3*d.Config().EmbedDim)
	}
	single, ok := d.FeatureVector(domains[0], bipartite.ViewQuery)
	if !ok || len(single) != d.Config().EmbedDim {
		t.Errorf("single-view vector dim %d, want %d", len(single), d.Config().EmbedDim)
	}
	if _, ok := d.FeatureVector("never-seen.example"); ok {
		t.Error("unknown domain has a feature vector")
	}
}

// TestEndToEndAUCOrdering is the headline reproduction check at test
// scale: combined features must clearly separate malicious from benign
// (paper: 0.94), the query view must be the strongest single view
// (paper: 0.89) and the temporal view the weakest (paper: 0.65).
func TestEndToEndAUCOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline test")
	}
	d, _, ti := buildDetector(t, 21)
	domains, labels := labeledSet(t, d, ti)
	if len(domains) < 200 {
		t.Fatalf("labeled set too small: %d", len(domains))
	}
	pos := 0
	for _, l := range labels {
		pos += l
	}
	if pos < 30 || pos > len(labels)*3/4 {
		t.Fatalf("labeled set has %d/%d positives", pos, len(labels))
	}

	aucFor := func(views ...bipartite.View) float64 {
		scores, err := eval.CrossValidate(labels, 5, 99, func(trainIdx []int) (func(int) float64, error) {
			td := make([]string, len(trainIdx))
			tl := make([]int, len(trainIdx))
			for i, idx := range trainIdx {
				td[i] = domains[idx]
				tl[i] = labels[idx]
			}
			clf, err := d.TrainClassifier(td, tl, views...)
			if err != nil {
				return nil, err
			}
			return func(i int) float64 {
				s, _ := clf.Score(domains[i])
				return s
			}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		auc, err := eval.AUC(scores, labels)
		if err != nil {
			t.Fatal(err)
		}
		return auc
	}

	combined := aucFor()
	query := aucFor(bipartite.ViewQuery)
	temporal := aucFor(bipartite.ViewTime)
	t.Logf("AUC combined=%.3f query=%.3f temporal=%.3f", combined, query, temporal)

	if combined < 0.85 {
		t.Errorf("combined AUC %.3f, want >= 0.85", combined)
	}
	if query < 0.75 {
		t.Errorf("query-view AUC %.3f, want >= 0.75", query)
	}
	if temporal >= combined {
		t.Errorf("temporal AUC %.3f not below combined %.3f", temporal, combined)
	}
}

func TestClassifierRoundTrip(t *testing.T) {
	d, _, ti := buildDetector(t, 21)
	domains, labels := labeledSet(t, d, ti)
	clf, err := d.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(clf.Used) == 0 || len(clf.Used) > len(domains) {
		t.Fatalf("Used = %d of %d", len(clf.Used), len(domains))
	}
	if clf.Model().NumSV() == 0 {
		t.Fatal("no support vectors")
	}
	// Training-set decision values must rank the classes well: with the
	// paper's heavily regularized C=0.09 the zero-threshold operating
	// point can collapse to the majority class, so assert ranking (AUC)
	// rather than accuracy, as the paper's own evaluation does.
	var scores []float64
	var ys []int
	for i, dom := range domains {
		s, ok := clf.Score(dom)
		if !ok {
			continue
		}
		scores = append(scores, s)
		ys = append(ys, labels[i])
	}
	auc, err := eval.AUC(scores, ys)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.8 {
		t.Errorf("training-set AUC %.3f, want >= 0.8", auc)
	}
	if _, ok := clf.Predict("never-seen.example"); ok {
		t.Error("prediction for unknown domain")
	}
}

func TestClusteringGroupsFamilies(t *testing.T) {
	d, s, _ := buildDetector(t, 21)
	mal := s.MaliciousDomains()
	res, kept, err := d.ClusterDomains(mal, xmeans.Config{KMin: 2, KMax: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) < len(mal)/3 {
		t.Fatalf("only %d/%d malicious domains retained", len(kept), len(mal))
	}
	// Cluster purity by family must beat a random assignment by a wide
	// margin.
	truth := s.TruthTable()
	counts := make([]map[string]int, res.K)
	for i := range counts {
		counts[i] = make(map[string]int)
	}
	for i, dom := range kept {
		counts[res.Assign[i]][truth[dom].Family]++
	}
	pure := 0
	for _, m := range counts {
		best := 0
		for _, n := range m {
			if n > best {
				best = n
			}
		}
		pure += best
	}
	purity := float64(pure) / float64(len(kept))
	if purity < 0.6 {
		t.Errorf("family purity %.3f, want >= 0.6 (K=%d)", purity, res.K)
	}
	t.Logf("clusters=%d purity=%.3f", res.K, purity)
}

func TestTrainClassifierValidation(t *testing.T) {
	d, _, _ := buildDetector(t, 21)
	if _, err := d.TrainClassifier([]string{"a.com"}, []int{1, 0}); err == nil {
		t.Error("misaligned domains/labels accepted")
	}
	if _, err := d.TrainClassifier([]string{"never-seen.example"}, []int{1}); !errors.Is(err, ErrNoDomains) {
		t.Errorf("all-unknown training set: %v", err)
	}
}

func TestCustomSVMConfigPropagates(t *testing.T) {
	skipIfRace(t)
	s := dnssim.NewScenario(dnssim.SmallScenario(29))
	d := NewDetector(Config{
		Start: s.Config.Start,
		Days:  s.Config.Days,
		DHCP:  s.DHCP(),
		Seed:  29,
		SVM:   svm.Config{C: 1.0, Kernel: svm.Linear{}},
	})
	s.Generate(func(ev dnssim.Event) { d.Consume(pipeline.Input(ev)) })
	if err := d.BuildModel(); err != nil {
		t.Fatal(err)
	}
	ti := threatintel.NewService(s.TruthTable(), threatintel.Config{Seed: 29})
	domains, labels := labeledSet(t, d, ti)
	clf, err := d.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	if clf.Model().KernelName() != "linear" {
		t.Errorf("kernel = %q, want linear", clf.Model().KernelName())
	}
}

package core

// Built-in embedding backends: the paper's LINE trainer (the default)
// and the MF-DNS-E matrix-factorization alternative. Both adapt their
// package's native config to the registry's EmbedSpec; backend-only
// knobs (LINE's proximity order) come from the Config the factory
// captured.

import (
	"repro/internal/graph"
	"repro/internal/line"
	"repro/internal/mfembed"
)

func init() {
	RegisterEmbedder(DefaultEmbedder, func(cfg Config) Embedder {
		return lineEmbedder{order: cfg.EmbedOrder}
	})
	RegisterEmbedder("mf", func(cfg Config) Embedder {
		return mfEmbedder{}
	})
}

// lineEmbedder adapts line.Train. It passes the spec through exactly
// as the pre-registry stage runner did, so the default build is
// byte-identical to the direct call.
type lineEmbedder struct {
	order line.Order
}

func (lineEmbedder) Name() string { return DefaultEmbedder }

func (e lineEmbedder) Train(g *graph.Weighted, spec EmbedSpec) (*Embedding, error) {
	emb, err := line.Train(g, line.Config{
		Dim:     spec.Dim,
		Order:   e.order,
		Samples: spec.Samples,
		Workers: spec.Workers,
		Seed:    spec.Seed,
		Init:    spec.Init,
	})
	if err != nil {
		return nil, err
	}
	return &Embedding{Dim: emb.Dim, Vectors: emb.Vectors, Samples: emb.Samples}, nil
}

// mfEmbedder adapts mfembed.Train.
type mfEmbedder struct{}

func (mfEmbedder) Name() string { return "mf" }

func (mfEmbedder) Train(g *graph.Weighted, spec EmbedSpec) (*Embedding, error) {
	emb, err := mfembed.Train(g, mfembed.Config{
		Dim:     spec.Dim,
		Samples: spec.Samples,
		Workers: spec.Workers,
		Seed:    spec.Seed,
		Init:    spec.Init,
	})
	if err != nil {
		return nil, err
	}
	return &Embedding{Dim: emb.Dim, Vectors: emb.Vectors, Samples: emb.Samples}, nil
}

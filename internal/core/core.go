// Package core assembles the paper's end-to-end detection system
// (Figure 2): DNS pre-processing, behavioral modeling via bipartite
// graphs and one-mode projections, feature learning, classification,
// and X-Means cluster mining. The feature-learning and classification
// stages are pluggable backends resolved by name from the registry in
// registry.go (defaults: LINE + SVM, the paper's pipeline). The root
// package maldomain re-exports this API; see the repository README for
// usage.
//
//maldlint:deterministic
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bipartite"
	"repro/internal/dhcp"
	"repro/internal/etld"
	"repro/internal/line"
	"repro/internal/obsv"
	"repro/internal/pipeline"
	"repro/internal/svm"
	"repro/internal/xmeans"
)

// Config parameterizes a Detector. The zero value plus Start/Days is
// usable: every knob has the paper's default.
type Config struct {
	// Start anchors the measurement window; Days is its length.
	Start time.Time
	Days  int
	// DHCP, when set, pins client IPs to device identities.
	DHCP *dhcp.Resolver
	// Suffixes is the public-suffix table (default etld.Default).
	Suffixes *etld.Table

	// Prune is the §4.1 graph-reduction policy (default: >50% fan-out
	// and single-host rules).
	Prune bipartite.PruneConfig
	// MinSimilarity drops projection edges below this Jaccard weight
	// (default 0.02).
	MinSimilarity float64
	// TimeMinSimilarity overrides MinSimilarity for the temporal view
	// when positive. Minute-overlap weights are naturally much smaller
	// than host/IP overlaps, so the temporal projection usually needs a
	// lower threshold to retain any structure.
	TimeMinSimilarity float64
	// MaxAttrDegree enables stop-attribute filtering during projection;
	// 0 means no limit.
	MaxAttrDegree int

	// EmbedDim is the per-view embedding size k; the combined feature
	// vector has 3k dimensions (default 32).
	EmbedDim int
	// EmbedSamples overrides the embedder's SGD sample count (0 = auto).
	EmbedSamples int
	// EmbedOrder selects the LINE proximity objective (default
	// OrderBoth). Only the "line" embedder consults it.
	EmbedOrder line.Order

	// SVM is the classifier configuration (defaults: RBF, C=0.09,
	// γ=0.06 per §6.2). Only the "svm" classification backend (and the
	// ensembles wrapping it) consults it.
	SVM svm.Config

	// Embedder selects the feature-learning backend by registered name
	// ("" = "line"). See RegisterEmbedder and the registry contract in
	// registry.go.
	Embedder string
	// Classifier selects the classification backend by registered name
	// ("" = "svm").
	Classifier string
	// Views selects the named view set classifiers train over ("" =
	// "all", the three-view concatenation of §6.1). All three views are
	// always embedded and persisted regardless; the selection only
	// shapes classifier feature vectors.
	Views string

	// Workers bounds parallelism in projection and embedding (0 = all
	// cores).
	Workers int
	// Seed drives every stochastic stage.
	Seed uint64

	// EmbedInit, when set, is consulted at the start of each embedding
	// stage to warm-start LINE: it receives the view and the retained
	// domain list and returns one initial vector per domain (nil rows
	// fall back to random initialization), or nil for a cold start. The
	// streaming mode uses it to seed each remodel with the previous
	// window's vectors for persisting domains.
	EmbedInit func(view bipartite.View, domains []string) [][]float64

	// Metrics, when set, receives build instrumentation: each stage's
	// wall time lands in the maldomain_build_stage_seconds{stage=...}
	// histogram, maldomain_builds_total counts completed builds, and
	// maldomain_build_retained_domains records the last build's vertex
	// count. The serving daemon (internal/serve) exposes the same
	// registry vocabulary on /metrics, so batch builds and the online
	// scoring path report through one namespace.
	Metrics *obsv.Registry
}

func (c Config) withDefaults() Config {
	if c.Suffixes == nil {
		c.Suffixes = etld.Default
	}
	if c.Prune.MaxHostFrac == 0 && c.Prune.MinHosts == 0 {
		c.Prune = bipartite.DefaultPrune
	}
	if c.MinSimilarity == 0 {
		c.MinSimilarity = 0.02
	}
	if c.EmbedDim <= 0 {
		c.EmbedDim = 32
	}
	if c.EmbedOrder == 0 {
		c.EmbedOrder = line.OrderBoth
	}
	if c.Days <= 0 {
		c.Days = 31
	}
	return c
}

// Detector is the end-to-end system. Feed observations with Consume,
// then call BuildModel once; afterwards feature vectors, classifiers and
// clusterings are available. A Detector is not safe for concurrent use.
type Detector struct {
	cfg  Config
	proc *pipeline.Processor

	built       bool
	graphs      map[bipartite.View]*bipartite.Graph
	projections map[bipartite.View]*bipartite.Projection
	embeddings  map[bipartite.View]*Embedding
	domains     []string
	index       map[string]int
	report      BuildReport
}

// ModelStats summarizes the built model for reports and logs.
type ModelStats struct {
	TotalQueries    int
	Devices         int
	ObservedE2LDs   int
	RetainedE2LDs   int
	ProjectionEdges map[bipartite.View]int
}

// NewDetector returns a Detector for cfg.
func NewDetector(cfg Config) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{
		cfg: cfg,
		proc: pipeline.NewProcessor(pipeline.Config{
			Start:    cfg.Start,
			Days:     cfg.Days,
			DHCP:     cfg.DHCP,
			Suffixes: cfg.Suffixes,
		}),
	}
}

// NewDetectorWith returns a Detector that models the aggregates already
// accumulated in proc instead of starting from an empty pipeline. The
// processor must have been built with the same Start/Suffixes the
// detector config describes (the streaming mode merges per-day
// processors and hands the result here, skipping any replay of raw
// observations). The detector takes ownership of proc; callers must not
// keep consuming into it.
func NewDetectorWith(cfg Config, proc *pipeline.Processor) *Detector {
	return &Detector{cfg: cfg.withDefaults(), proc: proc}
}

// Lookup conventions. The surface distinguishes two failure shapes and
// keeps them consistent across Detector, Classifier, and Scorer:
//
//   - Per-domain lookups on the hot path — FeatureVector, Score,
//     Predict, ScoreBatch — use the (value, ok) comma-ok form. An
//     unknown domain is an expected, per-item outcome (most domains a
//     deployment is asked about were never retained), not an
//     exceptional condition, and the comma-ok form keeps these calls
//     allocation-free.
//   - Whole-call failures — using an accessor before BuildModel,
//     building twice, ending up with an empty vertex set — return
//     errors, always wrapping one of the sentinels below so callers can
//     errors.Is them.
//
// Scorer.Lookup bridges the two for callers that need an error value
// for the unknown-domain case (the serving layer maps it to HTTP 404):
// it reports the same condition as ok=false, wrapped around
// ErrUnknownDomain.
var (
	ErrAlreadyBuilt = errors.New("core: model already built")
	ErrNotBuilt     = errors.New("core: call BuildModel first")
	ErrNoDomains    = errors.New("core: no domains survived pruning")
	// ErrUnknownDomain reports a per-domain lookup for a domain outside
	// the model's retained vertex set. Only the error-returning lookup
	// forms (Scorer.Lookup) wrap it; the comma-ok forms report the same
	// condition as ok=false.
	ErrUnknownDomain = errors.New("core: domain not in model")
)

// Consume folds one joined DNS observation into the pipeline aggregates.
// It must not be called after BuildModel.
func (d *Detector) Consume(in pipeline.Input) {
	d.proc.Consume(in)
}

// Processor exposes the underlying pipeline aggregates (read-only), for
// the Exposure baseline and traffic reporting.
func (d *Detector) Processor() *pipeline.Processor { return d.proc }

// Config returns the detector's effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// BuildModel runs behavioral modeling and feature learning as a
// sequence of named stages (see stages.go): bipartite graph
// construction with pruning, the three one-mode projections, and one
// LINE embedding per view. Per-stage timings and counts are recorded
// and available through BuildReport afterwards.
func (d *Detector) BuildModel() error {
	if d.built {
		return ErrAlreadyBuilt
	}
	a, report, err := d.runBuild(d.buildStages())
	if err != nil {
		return err
	}
	d.graphs = a.graphs
	d.domains = a.domains
	d.index = a.index
	d.projections = a.projections
	d.embeddings = a.embeddings
	d.report = report
	d.built = true
	return nil
}

// BuildReport returns the per-stage timing and size report of the
// BuildModel run.
func (d *Detector) BuildReport() (BuildReport, error) {
	if !d.built {
		return BuildReport{}, ErrNotBuilt
	}
	return d.report, nil
}

// Stats summarizes the built model.
func (d *Detector) Stats() (ModelStats, error) {
	if !d.built {
		return ModelStats{}, ErrNotBuilt
	}
	s := ModelStats{
		TotalQueries:    d.proc.TotalQueries(),
		Devices:         d.proc.DeviceCount(),
		ObservedE2LDs:   len(d.proc.Stats()),
		RetainedE2LDs:   len(d.domains),
		ProjectionEdges: make(map[bipartite.View]int, 3),
	}
	for v, p := range d.projections {
		s.ProjectionEdges[v] = len(p.Edges)
	}
	return s, nil
}

// Domains returns the retained (post-pruning) domain vertex set, sorted.
func (d *Detector) Domains() ([]string, error) {
	if !d.built {
		return nil, ErrNotBuilt
	}
	return d.domains, nil
}

// Graph returns one of the three bipartite graphs.
func (d *Detector) Graph(v bipartite.View) (*bipartite.Graph, error) {
	if !d.built {
		return nil, ErrNotBuilt
	}
	return d.graphs[v], nil
}

// Projection returns one of the three one-mode projections.
func (d *Detector) Projection(v bipartite.View) (*bipartite.Projection, error) {
	if !d.built {
		return nil, ErrNotBuilt
	}
	return d.projections[v], nil
}

// Embedding returns one view's trained embedding. The result is the
// detector's live model state; treat it as read-only.
func (d *Detector) Embedding(v bipartite.View) (*Embedding, error) {
	if !d.built {
		return nil, ErrNotBuilt
	}
	return d.embeddings[v], nil
}

// FeatureVector returns the domain's feature representation built from
// the requested views, concatenated in the given order (§6.1 uses all
// three: [V1..Vk | Vk+1..V2k | V2k+1..V3k]). ok is false for domains not
// in the retained vertex set.
func (d *Detector) FeatureVector(domain string, views ...bipartite.View) ([]float64, bool) {
	if !d.built {
		return nil, false
	}
	i, ok := d.index[domain]
	if !ok {
		return nil, false
	}
	if len(views) == 0 {
		views = bipartite.Views
	}
	out := make([]float64, 0, len(views)*d.cfg.EmbedDim)
	for _, v := range views {
		out = append(out, d.embeddings[v].Vectors[i]...)
	}
	return out, true
}

// FeatureMatrix builds vectors for a slice of domains, skipping ones not
// retained; it returns the matrix and the corresponding kept domains.
// Like its sibling accessors it returns ErrNotBuilt before BuildModel.
func (d *Detector) FeatureMatrix(domains []string, views ...bipartite.View) ([][]float64, []string, error) {
	if !d.built {
		return nil, nil, ErrNotBuilt
	}
	var X [][]float64
	var kept []string
	for _, dom := range domains {
		if v, ok := d.FeatureVector(dom, views...); ok {
			X = append(X, v)
			kept = append(kept, dom)
		}
	}
	return X, kept, nil
}

// TrainClassifier fits the configured classification backend (default:
// the SVM of §6.2) on labeled domains (label 1 = malicious). Domains
// not in the retained set are skipped; Classifier.Used reports which
// training domains were actually used. When no views are passed
// explicitly, the configured named view set (Config.Views) selects
// them.
func (d *Detector) TrainClassifier(domains []string, labels []int, views ...bipartite.View) (*Classifier, error) {
	return d.TrainClassifierNamed("", domains, labels, views...)
}

// TrainClassifierNamed is TrainClassifier with an explicit backend
// selection: it trains the classification backend registered under
// name ("" = the configured Config.Classifier) without rebuilding the
// detector, so backend ablations can sweep classifiers over one set of
// embeddings. Everything else — view resolution, label handling, the
// backend's own configuration (e.g. Config.SVM) — behaves exactly like
// TrainClassifier.
func (d *Detector) TrainClassifierNamed(name string, domains []string, labels []int, views ...bipartite.View) (*Classifier, error) {
	if !d.built {
		return nil, ErrNotBuilt
	}
	if len(domains) != len(labels) {
		return nil, fmt.Errorf("core: %d domains vs %d labels", len(domains), len(labels))
	}
	sel := viewsOrAll(views)
	if len(views) == 0 {
		var err error
		if sel, err = resolveViewSet(d.cfg); err != nil {
			return nil, err
		}
	}
	cfg := d.cfg
	if name != "" {
		cfg.Classifier = name
	}
	clf, err := newClassifier(cfg)
	if err != nil {
		return nil, err
	}
	var X [][]float64
	var y []int
	var used []string
	for i, dom := range domains {
		if v, ok := d.FeatureVector(dom, sel...); ok {
			X = append(X, v)
			y = append(y, labels[i])
			used = append(used, dom)
		}
	}
	if len(X) == 0 {
		return nil, ErrNoDomains
	}
	if err := clf.Fit(X, y); err != nil {
		return nil, fmt.Errorf("core: training %s classifier: %w", clf.Name(), err)
	}
	return &Classifier{detector: d, clf: clf, views: sel, Used: used}, nil
}

// Classifier is a trained malicious-domain classifier bound to its
// detector's feature space.
type Classifier struct {
	detector *Detector
	clf      DomainClassifier
	views    []bipartite.View
	// Used lists the training domains that were actually in the retained
	// vertex set.
	Used []string
}

// Score returns the backend's decision value for a domain (positive =
// malicious side of the boundary); ok is false for unknown domains.
func (c *Classifier) Score(domain string) (float64, bool) {
	v, ok := c.detector.FeatureVector(domain, c.views...)
	if !ok {
		return 0, false
	}
	return c.clf.Decision(v), true
}

// Predict returns 1 (malicious) or 0 (benign); ok is false for unknown
// domains.
func (c *Classifier) Predict(domain string) (int, bool) {
	s, ok := c.Score(domain)
	if !ok {
		return 0, false
	}
	if s > 0 {
		return 1, true
	}
	return 0, true
}

// Model exposes the underlying SVM (support-vector count etc.) when
// the classification backend is SVM-backed, directly or through an
// ensemble member; it returns nil for other backends.
func (c *Classifier) Model() *svm.Model {
	if b, ok := c.clf.(svmBacked); ok {
		return b.SVM()
	}
	return nil
}

// Backend returns the classification backend's registered name.
func (c *Classifier) Backend() string { return c.clf.Name() }

// ClusterDomains groups the given domains by X-Means over their combined
// feature vectors (§7.1), returning the clustering and the domains
// actually clustered (those in the retained set, order-aligned with the
// result's Assign).
func (d *Detector) ClusterDomains(domains []string, cfg xmeans.Config) (*xmeans.Result, []string, error) {
	if !d.built {
		return nil, nil, ErrNotBuilt
	}
	X, kept, err := d.FeatureMatrix(domains)
	if err != nil {
		return nil, nil, err
	}
	if len(X) == 0 {
		return nil, nil, ErrNoDomains
	}
	if cfg.Seed == 0 {
		cfg.Seed = d.cfg.Seed
	}
	res, err := xmeans.Cluster(X, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("core: clustering: %w", err)
	}
	return res, kept, nil
}

// viewsOrAll resolves an explicit view selection, defaulting to all
// three. It always returns a fresh slice: handing out the package-level
// bipartite.Views (or aliasing the caller's argument) would let anyone
// holding a Classifier mutate the global view order.
func viewsOrAll(views []bipartite.View) []bipartite.View {
	if len(views) == 0 {
		views = bipartite.Views
	}
	return append([]bipartite.View(nil), views...)
}

// Package core assembles the paper's end-to-end detection system
// (Figure 2): DNS pre-processing, behavioral modeling via bipartite
// graphs and one-mode projections, LINE feature learning, SVM
// classification, and X-Means cluster mining. The root package maldomain
// re-exports this API; see the repository README for usage.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bipartite"
	"repro/internal/dhcp"
	"repro/internal/etld"
	"repro/internal/graph"
	"repro/internal/line"
	"repro/internal/pipeline"
	"repro/internal/svm"
	"repro/internal/xmeans"
)

// Config parameterizes a Detector. The zero value plus Start/Days is
// usable: every knob has the paper's default.
type Config struct {
	// Start anchors the measurement window; Days is its length.
	Start time.Time
	Days  int
	// DHCP, when set, pins client IPs to device identities.
	DHCP *dhcp.Resolver
	// Suffixes is the public-suffix table (default etld.Default).
	Suffixes *etld.Table

	// Prune is the §4.1 graph-reduction policy (default: >50% fan-out
	// and single-host rules).
	Prune bipartite.PruneConfig
	// MinSimilarity drops projection edges below this Jaccard weight
	// (default 0.02).
	MinSimilarity float64
	// TimeMinSimilarity overrides MinSimilarity for the temporal view
	// when positive. Minute-overlap weights are naturally much smaller
	// than host/IP overlaps, so the temporal projection usually needs a
	// lower threshold to retain any structure.
	TimeMinSimilarity float64
	// MaxAttrDegree enables stop-attribute filtering during projection;
	// 0 means no limit.
	MaxAttrDegree int

	// EmbedDim is the per-view embedding size k; the combined feature
	// vector has 3k dimensions (default 32).
	EmbedDim int
	// EmbedSamples overrides LINE's SGD sample count (0 = auto).
	EmbedSamples int
	// EmbedOrder selects the LINE proximity objective (default
	// OrderBoth).
	EmbedOrder line.Order

	// SVM is the classifier configuration (defaults: RBF, C=0.09,
	// γ=0.06 per §6.2).
	SVM svm.Config

	// Workers bounds parallelism in projection and embedding (0 = all
	// cores).
	Workers int
	// Seed drives every stochastic stage.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Suffixes == nil {
		c.Suffixes = etld.Default
	}
	if c.Prune.MaxHostFrac == 0 && c.Prune.MinHosts == 0 {
		c.Prune = bipartite.DefaultPrune
	}
	if c.MinSimilarity == 0 {
		c.MinSimilarity = 0.02
	}
	if c.EmbedDim <= 0 {
		c.EmbedDim = 32
	}
	if c.EmbedOrder == 0 {
		c.EmbedOrder = line.OrderBoth
	}
	if c.Days <= 0 {
		c.Days = 31
	}
	return c
}

// Detector is the end-to-end system. Feed observations with Consume,
// then call BuildModel once; afterwards feature vectors, classifiers and
// clusterings are available. A Detector is not safe for concurrent use.
type Detector struct {
	cfg  Config
	proc *pipeline.Processor

	built       bool
	graphs      map[bipartite.View]*bipartite.Graph
	projections map[bipartite.View]*bipartite.Projection
	embeddings  map[bipartite.View]*line.Embedding
	domains     []string
	index       map[string]int
}

// ModelStats summarizes the built model for reports and logs.
type ModelStats struct {
	TotalQueries    int
	Devices         int
	ObservedE2LDs   int
	RetainedE2LDs   int
	ProjectionEdges map[bipartite.View]int
}

// NewDetector returns a Detector for cfg.
func NewDetector(cfg Config) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{
		cfg: cfg,
		proc: pipeline.NewProcessor(pipeline.Config{
			Start:    cfg.Start,
			Days:     cfg.Days,
			DHCP:     cfg.DHCP,
			Suffixes: cfg.Suffixes,
		}),
	}
}

// Errors returned by Detector methods.
var (
	ErrAlreadyBuilt = errors.New("core: model already built")
	ErrNotBuilt     = errors.New("core: call BuildModel first")
	ErrNoDomains    = errors.New("core: no domains survived pruning")
)

// Consume folds one joined DNS observation into the pipeline aggregates.
// It must not be called after BuildModel.
func (d *Detector) Consume(in pipeline.Input) {
	d.proc.Consume(in)
}

// Processor exposes the underlying pipeline aggregates (read-only), for
// the Exposure baseline and traffic reporting.
func (d *Detector) Processor() *pipeline.Processor { return d.proc }

// Config returns the detector's effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// BuildModel runs behavioral modeling and feature learning: bipartite
// graph construction with pruning, the three one-mode projections, and
// one LINE embedding per view.
func (d *Detector) BuildModel() error {
	if d.built {
		return ErrAlreadyBuilt
	}
	q, ip, tg := bipartite.Build(d.proc.Stats(), d.proc.DeviceCount(), d.cfg.Prune)
	if len(q.Domains) == 0 {
		return ErrNoDomains
	}
	d.graphs = map[bipartite.View]*bipartite.Graph{
		bipartite.ViewQuery: q,
		bipartite.ViewIP:    ip,
		bipartite.ViewTime:  tg,
	}
	d.domains = q.Domains
	d.index = q.DomainIndex()

	d.projections = make(map[bipartite.View]*bipartite.Projection, 3)
	d.embeddings = make(map[bipartite.View]*line.Embedding, 3)
	for _, view := range bipartite.Views {
		minSim := d.cfg.MinSimilarity
		if view == bipartite.ViewTime && d.cfg.TimeMinSimilarity > 0 {
			minSim = d.cfg.TimeMinSimilarity
		}
		proj := bipartite.Project(d.graphs[view], bipartite.ProjectConfig{
			MinSimilarity: minSim,
			MaxAttrDegree: d.cfg.MaxAttrDegree,
			Workers:       d.cfg.Workers,
		})
		d.projections[view] = proj

		edges := make([]graph.Edge, len(proj.Edges))
		for i, e := range proj.Edges {
			edges[i] = graph.Edge{U: e.U, V: e.V, W: e.W}
		}
		g, err := graph.Build(len(d.domains), edges)
		if err != nil {
			return fmt.Errorf("core: building %v similarity graph: %w", view, err)
		}
		emb, err := line.Train(g, line.Config{
			Dim:     d.cfg.EmbedDim,
			Order:   d.cfg.EmbedOrder,
			Samples: d.cfg.EmbedSamples,
			Workers: d.cfg.Workers,
			Seed:    d.cfg.Seed ^ uint64(view)*0x9e3779b97f4a7c15,
		})
		if err != nil {
			return fmt.Errorf("core: embedding %v view: %w", view, err)
		}
		d.embeddings[view] = emb
	}
	d.built = true
	return nil
}

// Stats summarizes the built model.
func (d *Detector) Stats() (ModelStats, error) {
	if !d.built {
		return ModelStats{}, ErrNotBuilt
	}
	s := ModelStats{
		TotalQueries:    d.proc.TotalQueries(),
		Devices:         d.proc.DeviceCount(),
		ObservedE2LDs:   len(d.proc.Stats()),
		RetainedE2LDs:   len(d.domains),
		ProjectionEdges: make(map[bipartite.View]int, 3),
	}
	for v, p := range d.projections {
		s.ProjectionEdges[v] = len(p.Edges)
	}
	return s, nil
}

// Domains returns the retained (post-pruning) domain vertex set, sorted.
func (d *Detector) Domains() ([]string, error) {
	if !d.built {
		return nil, ErrNotBuilt
	}
	return d.domains, nil
}

// Graph returns one of the three bipartite graphs.
func (d *Detector) Graph(v bipartite.View) (*bipartite.Graph, error) {
	if !d.built {
		return nil, ErrNotBuilt
	}
	return d.graphs[v], nil
}

// Projection returns one of the three one-mode projections.
func (d *Detector) Projection(v bipartite.View) (*bipartite.Projection, error) {
	if !d.built {
		return nil, ErrNotBuilt
	}
	return d.projections[v], nil
}

// FeatureVector returns the domain's feature representation built from
// the requested views, concatenated in the given order (§6.1 uses all
// three: [V1..Vk | Vk+1..V2k | V2k+1..V3k]). ok is false for domains not
// in the retained vertex set.
func (d *Detector) FeatureVector(domain string, views ...bipartite.View) ([]float64, bool) {
	if !d.built {
		return nil, false
	}
	i, ok := d.index[domain]
	if !ok {
		return nil, false
	}
	if len(views) == 0 {
		views = bipartite.Views
	}
	out := make([]float64, 0, len(views)*d.cfg.EmbedDim)
	for _, v := range views {
		out = append(out, d.embeddings[v].Vectors[i]...)
	}
	return out, true
}

// FeatureMatrix builds vectors for a slice of domains, skipping ones not
// retained; it returns the matrix and the corresponding kept domains.
func (d *Detector) FeatureMatrix(domains []string, views ...bipartite.View) ([][]float64, []string) {
	var X [][]float64
	var kept []string
	for _, dom := range domains {
		if v, ok := d.FeatureVector(dom, views...); ok {
			X = append(X, v)
			kept = append(kept, dom)
		}
	}
	return X, kept
}

// TrainClassifier fits the SVM of §6.2 on labeled domains (label 1 =
// malicious). Domains not in the retained set are skipped; Classifier.Used
// reports which training domains were actually used.
func (d *Detector) TrainClassifier(domains []string, labels []int, views ...bipartite.View) (*Classifier, error) {
	if !d.built {
		return nil, ErrNotBuilt
	}
	if len(domains) != len(labels) {
		return nil, fmt.Errorf("core: %d domains vs %d labels", len(domains), len(labels))
	}
	var X [][]float64
	var y []int
	var used []string
	for i, dom := range domains {
		if v, ok := d.FeatureVector(dom, views...); ok {
			X = append(X, v)
			y = append(y, labels[i])
			used = append(used, dom)
		}
	}
	if len(X) == 0 {
		return nil, ErrNoDomains
	}
	cfg := d.cfg.SVM
	if cfg.Seed == 0 {
		cfg.Seed = d.cfg.Seed
	}
	model, err := svm.Train(X, y, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: training SVM: %w", err)
	}
	return &Classifier{detector: d, model: model, views: viewsOrAll(views), Used: used}, nil
}

// Classifier is a trained malicious-domain classifier bound to its
// detector's feature space.
type Classifier struct {
	detector *Detector
	model    *svm.Model
	views    []bipartite.View
	// Used lists the training domains that were actually in the retained
	// vertex set.
	Used []string
}

// Score returns the SVM decision value for a domain (positive =
// malicious side of the boundary); ok is false for unknown domains.
func (c *Classifier) Score(domain string) (float64, bool) {
	v, ok := c.detector.FeatureVector(domain, c.views...)
	if !ok {
		return 0, false
	}
	return c.model.Decision(v), true
}

// Predict returns 1 (malicious) or 0 (benign); ok is false for unknown
// domains.
func (c *Classifier) Predict(domain string) (int, bool) {
	s, ok := c.Score(domain)
	if !ok {
		return 0, false
	}
	if s > 0 {
		return 1, true
	}
	return 0, true
}

// Model exposes the underlying SVM (support-vector count etc.).
func (c *Classifier) Model() *svm.Model { return c.model }

// ClusterDomains groups the given domains by X-Means over their combined
// feature vectors (§7.1), returning the clustering and the domains
// actually clustered (those in the retained set, order-aligned with the
// result's Assign).
func (d *Detector) ClusterDomains(domains []string, cfg xmeans.Config) (*xmeans.Result, []string, error) {
	if !d.built {
		return nil, nil, ErrNotBuilt
	}
	X, kept := d.FeatureMatrix(domains)
	if len(X) == 0 {
		return nil, nil, ErrNoDomains
	}
	if cfg.Seed == 0 {
		cfg.Seed = d.cfg.Seed
	}
	res, err := xmeans.Cluster(X, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("core: clustering: %w", err)
	}
	return res, kept, nil
}

func viewsOrAll(views []bipartite.View) []bipartite.View {
	if len(views) == 0 {
		return bipartite.Views
	}
	return views
}

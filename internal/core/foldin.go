package core

// Fold-in scoring for domains outside the retained set — the "score
// the unknown" path. A production deployment is asked about domains
// the training window never retained; until now those lookups ended in
// ErrUnknownDomain. ScoreObserved instead derives a provisional
// embedding for an unseen domain from its observed relations to
// retained neighbors (the standard fold-in construction for
// LINE/MF-style embeddings: a weighted mean of neighbor vectors per
// view, which is where SGD would pull a new vertex with those edges),
// classifies it with the model's own classifier, and cross-checks the
// verdict with a kNN vote over the retained decision table (cosine
// similarity in the concatenated feature space). The two signals are
// folded into a calibrated Confidence:
//
//   - classifier and kNN agree  → Source "foldin", the classifier's
//     score, confidence = coverage · agreement;
//   - they disagree             → Source "knn", the neighborhood's
//     weighted mean score, confidence halved (the model is split);
//   - no usable neighbors       → Source "foldin", classifier only,
//     confidence halved.
//
// coverage is the fraction of the classifier's views with at least one
// usable relation, agreement the winning label's share of the vote
// weight; both are in [0,1] so Confidence is too.
//
// FoldInCache is the serving-side store for observed relations: a
// bounded, TTL'd map the daemon's POST /v1/observe writes and the
// score paths read, with the computed Result cached per model
// generation so a warm lookup is two map probes and no allocation.
// Everything here takes explicit time.Time values — this package is
// //maldlint:deterministic, and eviction order must replay exactly.

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/bipartite"
)

// Relation is one observed association between a domain being folded
// in and a retained neighbor: "these two shared an attribute in view
// V". The serving layer builds them from /v1/observe bodies, the
// streaming layer from each window's co-occurrence aggregates.
type Relation struct {
	// View is the behavioral view the association was observed in.
	View bipartite.View
	// Neighbor is the related domain; relations whose neighbor is not
	// in the model's retained set are ignored.
	Neighbor string
	// Weight is the association strength (e.g. a Jaccard overlap).
	// Zero or negative weights count as 1.
	Weight float64
}

// foldinK is the kNN vote size: how many nearest retained domains
// (by cosine over the concatenated feature space) check the
// classifier's fold-in verdict.
const foldinK = 8

// foldinScratch is ScoreObserved's pooled working state: the sorted
// relation copy, the provisional feature vector, per-view weight
// sums, and the kNN top-k arrays.
type foldinScratch struct {
	rels []Relation
	q    []float64
	wsum []float64
	nbr  [foldinK]int
	sim  [foldinK]float64
}

func (s *Scorer) newFoldinScratch() *foldinScratch {
	return &foldinScratch{
		rels: make([]Relation, 0, 16),
		q:    make([]float64, len(s.views)*s.dim),
		wsum: make([]float64, len(s.views)),
	}
}

// ScoreObserved scores a domain from its observed relations. Retained
// domains return their exact model Result (bit-identical to Score,
// Source "model", Confidence 1) regardless of the relations passed.
// For an unseen domain the relations are folded into a provisional
// embedding and classified as documented above; when no relation
// names a retained neighbor in any of the classifier's views there is
// no evidence to fold in and the zero Result (Known=false, empty
// Source) is returned.
//
// The result is a pure function of (model, domain, relation set):
// relations are canonicalized by sorting, so permutations of the same
// set produce bit-identical Results at any worker count.
func (s *Scorer) ScoreObserved(domain string, relations []Relation) Result {
	if res, ok := s.Result(domain); ok {
		return res
	}
	if len(relations) == 0 {
		return Result{}
	}
	sc := s.foldinPool.Get().(*foldinScratch)
	defer s.foldinPool.Put(sc)

	// Canonical relation order: float accumulation is not commutative,
	// so determinism across callers requires a total order first.
	rels := append(sc.rels[:0], relations...)
	sort.Slice(rels, func(i, j int) bool {
		if rels[i].View != rels[j].View {
			return rels[i].View < rels[j].View
		}
		if rels[i].Neighbor != rels[j].Neighbor {
			return rels[i].Neighbor < rels[j].Neighbor
		}
		return rels[i].Weight < rels[j].Weight
	})
	sc.rels = rels

	// Per-view weighted mean of retained neighbor vectors.
	q := sc.q[:len(s.views)*s.dim]
	wsum := sc.wsum[:len(s.views)]
	for i := range q {
		q[i] = 0
	}
	for i := range wsum {
		wsum[i] = 0
	}
	for _, rel := range rels {
		vi := -1
		for i, v := range s.views {
			if v == rel.View {
				vi = i
				break
			}
		}
		if vi < 0 {
			continue
		}
		j, ok := s.index[rel.Neighbor]
		if !ok {
			continue
		}
		w := rel.Weight
		if w <= 0 {
			w = 1
		}
		vec := s.embeddings[rel.View].Vectors[j]
		block := q[vi*s.dim : (vi+1)*s.dim]
		for d, x := range vec {
			block[d] += w * x
		}
		wsum[vi] += w
	}
	covered := 0
	for vi, w := range wsum {
		if w == 0 {
			continue
		}
		covered++
		block := q[vi*s.dim : (vi+1)*s.dim]
		for d := range block {
			block[d] /= w
		}
	}
	if covered == 0 {
		return Result{}
	}
	coverage := float64(covered) / float64(len(s.views))

	clfScore := s.clf.Decision(q)
	clfLabel := 0
	if clfScore > 0 {
		clfLabel = 1
	}

	posW, negW, knnScore := s.knnVote(sc, q)
	totW := posW + negW
	if totW == 0 {
		// No usable neighborhood: the classifier stands alone, at half
		// confidence.
		return Result{Score: clfScore, Label: clfLabel,
			Confidence: 0.5 * coverage, Source: SourceFoldin}
	}
	knnLabel := 0
	if posW > negW {
		knnLabel = 1
	}
	agreement := math.Max(posW, negW) / totW
	if knnLabel == clfLabel {
		return Result{Score: clfScore, Label: clfLabel,
			Confidence: coverage * agreement, Source: SourceFoldin}
	}
	// The neighborhood outvotes the classifier: report its weighted
	// mean decision value, at half confidence — the model is split.
	return Result{Score: knnScore, Label: knnLabel,
		Confidence: 0.5 * coverage * agreement, Source: SourceKNN}
}

// knnVote finds the foldinK retained domains nearest to q by cosine
// similarity and returns the positive and negative label vote weights
// (each neighbor votes max(cos, 0) for its precomputed label) plus the
// vote-weighted mean of the neighbors' decision values.
func (s *Scorer) knnVote(sc *foldinScratch, q []float64) (posW, negW, knnScore float64) {
	var qsq float64
	for _, x := range q {
		qsq += x * x
	}
	qNorm := math.Sqrt(qsq)
	if qNorm == 0 {
		return 0, 0, 0
	}
	// Fixed-size descending top-k by insertion; ties keep the earlier
	// (lower-index) domain, so the selection is deterministic.
	n := 0
	for j := range s.domains {
		fn := s.featNorm[j]
		if fn == 0 {
			continue
		}
		var dot float64
		for vi, v := range s.views {
			vec := s.embeddings[v].Vectors[j]
			block := q[vi*s.dim : (vi+1)*s.dim]
			for d, x := range vec {
				dot += x * block[d]
			}
		}
		cos := dot / (qNorm * fn)
		if n == foldinK && cos <= sc.sim[n-1] {
			continue
		}
		at := n
		if n < foldinK {
			n++
		} else {
			at = n - 1
		}
		for at > 0 && cos > sc.sim[at-1] {
			sc.sim[at] = sc.sim[at-1]
			sc.nbr[at] = sc.nbr[at-1]
			at--
		}
		sc.sim[at] = cos
		sc.nbr[at] = j
	}
	var wScore float64
	for i := 0; i < n; i++ {
		w := sc.sim[i]
		if w <= 0 {
			continue
		}
		j := sc.nbr[i]
		if s.labels[j] == 1 {
			posW += w
		} else {
			negW += w
		}
		wScore += w * s.scores[j]
	}
	if tot := posW + negW; tot > 0 {
		knnScore = wScore / tot
	}
	return posW, negW, knnScore
}

// ---- the serving-side relation cache ----

// FoldInConfig parameterizes a FoldInCache; the zero value is usable.
type FoldInConfig struct {
	// MaxEntries bounds the number of domains with buffered relations;
	// beyond it the earliest-observed entries are evicted (default
	// 65536).
	MaxEntries int
	// TTL is how long after its last observation an entry remains
	// scorable (default 15m). Expired entries are treated as absent
	// and reclaimed opportunistically.
	TTL time.Duration
}

func (c FoldInConfig) withDefaults() FoldInConfig {
	if c.MaxEntries <= 0 {
		c.MaxEntries = 1 << 16
	}
	if c.TTL <= 0 {
		c.TTL = 15 * time.Minute
	}
	return c
}

// maxFoldinRelations bounds the merged relation set per cached domain;
// further relations for already-saturated entries are dropped, keeping
// the per-entry memory bounded against adversarial observers.
const maxFoldinRelations = 256

// foldinEntry is one domain's buffered evidence plus the last computed
// Result, cached per model generation (resScorer identifies it; a
// reload or new relations invalidate lazily).
type foldinEntry struct {
	rels []Relation
	seen time.Time
	seq  uint64

	res       Result
	resScorer *Scorer
}

type foldinQueued struct {
	domain string
	seq    uint64
}

// FoldInCache buffers observed relations for domains outside the
// model and serves fold-in Results over them. It is bounded
// (FIFO-by-observation eviction), TTL'd, and safe for concurrent use;
// all methods take the current time explicitly so behavior is a pure
// function of the call sequence (this package is deterministic — no
// wall-clock reads).
type FoldInCache struct {
	mu      sync.RWMutex
	cfg     FoldInConfig
	entries map[string]*foldinEntry
	queue   []foldinQueued
	seq     uint64
}

// NewFoldInCache returns an empty cache under cfg's bounds.
func NewFoldInCache(cfg FoldInConfig) *FoldInCache {
	return &FoldInCache{
		cfg:     cfg.withDefaults(),
		entries: make(map[string]*foldinEntry),
	}
}

// Observe merges relations into domain's entry (same-view same-neighbor
// relations replace the buffered weight) and refreshes its TTL. It
// returns how many other entries were dropped to make room: evicted
// counts capacity evictions (earliest observation first), expired
// counts entries whose TTL had already lapsed. Relations are copied;
// the caller keeps ownership of rels.
func (c *FoldInCache) Observe(domain string, rels []Relation, now time.Time) (evicted, expired int) {
	if domain == "" || len(rels) == 0 {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[domain]
	if e == nil {
		e = &foldinEntry{rels: make([]Relation, 0, len(rels))}
		c.entries[domain] = e
	}
	for _, rel := range rels {
		merged := false
		for i := range e.rels {
			if e.rels[i].View == rel.View && e.rels[i].Neighbor == rel.Neighbor {
				e.rels[i].Weight = rel.Weight
				merged = true
				break
			}
		}
		if !merged && len(e.rels) < maxFoldinRelations {
			e.rels = append(e.rels, rel)
		}
	}
	e.seen = now
	c.seq++
	e.seq = c.seq
	e.resScorer = nil // new evidence invalidates the cached verdict
	c.queue = append(c.queue, foldinQueued{domain: domain, seq: e.seq})
	return c.reclaim(now)
}

// reclaim drops expired and over-capacity entries, earliest
// observation first. Caller holds mu.
func (c *FoldInCache) reclaim(now time.Time) (evicted, expired int) {
	for len(c.queue) > 0 {
		head := c.queue[0]
		e := c.entries[head.domain]
		if e == nil || e.seq != head.seq {
			// Stale queue record: the entry was re-observed (a newer
			// record exists further back) or already removed.
			c.queue = c.queue[1:]
			continue
		}
		if now.Sub(e.seen) > c.cfg.TTL {
			delete(c.entries, head.domain)
			c.queue = c.queue[1:]
			expired++
			continue
		}
		if len(c.entries) <= c.cfg.MaxEntries {
			break
		}
		delete(c.entries, head.domain)
		c.queue = c.queue[1:]
		evicted++
	}
	// Re-observations leave stale records behind the head; compact
	// before they can outgrow the entry bound by more than a constant
	// factor.
	if len(c.queue) > 2*len(c.entries)+1024 {
		live := c.queue[:0]
		for _, rec := range c.queue {
			if e := c.entries[rec.domain]; e != nil && e.seq == rec.seq {
				live = append(live, rec)
			}
		}
		c.queue = live
	}
	return evicted, expired
}

// Sweep removes every entry whose TTL has lapsed at now and returns
// how many were dropped.
func (c *FoldInCache) Sweep(now time.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var stale []string
	for d, e := range c.entries {
		if now.Sub(e.seen) > c.cfg.TTL {
			stale = append(stale, d)
		}
	}
	sort.Strings(stale)
	for _, d := range stale {
		delete(c.entries, d)
	}
	return len(stale)
}

// Len reports the live entry count.
func (c *FoldInCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Score serves a fold-in Result for domain from its buffered
// relations, or ok=false when the cache holds no live evidence (never
// observed, expired, or the relations named no retained neighbor).
// The Result is cached per (entry, scorer) generation, so repeated
// lookups against the same model are two map probes with no
// allocation; a model reload or new observations recompute lazily.
//
//alloccheck:hot
func (c *FoldInCache) Score(s *Scorer, domain string, now time.Time) (Result, bool) {
	c.mu.RLock()
	e := c.entries[domain]
	if e == nil || now.Sub(e.seen) > c.cfg.TTL {
		c.mu.RUnlock()
		return Result{}, false
	}
	if e.resScorer == s {
		res := e.res
		c.mu.RUnlock()
		return res, res.Source != ""
	}
	c.mu.RUnlock()
	return c.scoreSlow(s, domain, now)
}

// scoreSlow recomputes and caches the entry's Result under the write
// lock. Kept out of Score so the warm path stays allocation-free
// under the escape-analysis gate.
func (c *FoldInCache) scoreSlow(s *Scorer, domain string, now time.Time) (Result, bool) {
	c.mu.Lock()
	e := c.entries[domain]
	if e == nil || now.Sub(e.seen) > c.cfg.TTL {
		c.mu.Unlock()
		return Result{}, false
	}
	if e.resScorer == s {
		res := e.res
		c.mu.Unlock()
		return res, res.Source != ""
	}
	rels := append([]Relation(nil), e.rels...)
	c.mu.Unlock()

	// Fold in outside the lock: ScoreObserved can scan the whole
	// decision table, and concurrent scores of other domains must not
	// serialize behind it. Racing recomputes of one domain produce
	// identical Results (ScoreObserved is deterministic), so last-
	// writer-wins is safe.
	res := s.ScoreObserved(domain, rels)

	c.mu.Lock()
	if e2 := c.entries[domain]; e2 != nil {
		e2.res = res
		e2.resScorer = s
	}
	c.mu.Unlock()
	return res, res.Source != ""
}

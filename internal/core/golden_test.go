package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/crcio"
	"repro/internal/line"
	"repro/internal/pipeline"
)

// goldenModelSHA256 is the SHA-256 of the model file produced by
// goldenModelBytes under the pre-registry build path (PR 7). The
// pluggable-stage refactor must keep the default selection
// (line + svm, all views) byte-identical to this: the registry is a
// seam, not a behavior change.
const goldenModelSHA256 = "babb19a785f075ccd77f8bd6619c3a6a5eede35c3d3f9c676467549c15ab0185"

// goldenModelBytes trains the fixed tiny fixture — 8 domains, 3 hosts,
// deterministic timestamps, Workers=1, seed 42 — and returns the
// serialized model file.
func goldenModelBytes(t *testing.T) []byte {
	t.Helper()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	det := NewDetector(Config{
		Start:        start,
		Days:         1,
		EmbedDim:     4,
		EmbedSamples: 20_000,
		Seed:         42,
		Workers:      1,
	})
	for i := 0; i < 8; i++ {
		for h := 0; h < 3; h++ {
			for m := 0; m < 3; m++ {
				det.Consume(pipeline.Input{
					Time:     start.Add(time.Duration(2*i+m) * time.Minute),
					ClientIP: fmt.Sprintf("10.0.0.%d", (i+h)%10),
					QName:    fmt.Sprintf("www.dom%d.com", i),
					Answers:  []string{fmt.Sprintf("198.51.100.%d", (i+m)%8)},
				})
			}
		}
	}
	if err := det.BuildModel(); err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	domains, err := det.Domains()
	if err != nil {
		t.Fatalf("Domains: %v", err)
	}
	labels := make([]int, len(domains))
	for i := range domains {
		labels[i] = i % 2
	}
	clf, err := det.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatalf("TrainClassifier: %v", err)
	}
	var buf bytes.Buffer
	if err := det.SaveModel(&buf, clf); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenModelBytes pins the default-path model file bytes across
// the registry refactor.
func TestGoldenModelBytes(t *testing.T) {
	b := goldenModelBytes(t)
	got := fmt.Sprintf("%x", sha256.Sum256(b))
	if got != goldenModelSHA256 {
		t.Fatalf("model bytes changed: sha256 %s (len %d), want %s", got, len(b), goldenModelSHA256)
	}
}

// TestGoldenModelVersionCompat pins the fold-in API redesign's
// compatibility promise across every on-disk version: version-1 (no
// trailer), version-2 (the golden default bytes), and version-3
// (backend-named) streams of the same model all load, and the default
// Score path stays bit-identical across them — with retained domains
// reporting Source "model" at Confidence 1 through the new Result
// surface.
func TestGoldenModelVersionCompat(t *testing.T) {
	v2 := goldenModelBytes(t)
	ref, err := LoadScorer(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("golden v2 stream refused: %v", err)
	}

	// Rebuild the fixture's live state to hand-write the v1 and v3
	// layouts around the same embeddings and classifier.
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	det := NewDetector(Config{
		Start: start, Days: 1, EmbedDim: 4, EmbedSamples: 20_000, Seed: 42, Workers: 1,
	})
	for i := 0; i < 8; i++ {
		for h := 0; h < 3; h++ {
			for m := 0; m < 3; m++ {
				det.Consume(pipeline.Input{
					Time:     start.Add(time.Duration(2*i+m) * time.Minute),
					ClientIP: fmt.Sprintf("10.0.0.%d", (i+h)%10),
					QName:    fmt.Sprintf("www.dom%d.com", i),
					Answers:  []string{fmt.Sprintf("198.51.100.%d", (i+m)%8)},
				})
			}
		}
	}
	if err := det.BuildModel(); err != nil {
		t.Fatal(err)
	}
	domains, _ := det.Domains()
	labels := make([]int, len(domains))
	for i := range domains {
		labels[i] = i % 2
	}
	clf, err := det.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}

	hdr := modelHeader{
		Magic:       modelMagic,
		Version:     1,
		Fingerprint: det.cfg.Fingerprint(),
		EmbedDim:    det.cfg.EmbedDim,
		Domains:     det.domains,
		Views:       clf.views,
	}
	writeBody := func(w io.Writer) {
		for _, v := range bipartite.Views {
			e := det.embeddings[v]
			if err := (&line.Embedding{Dim: e.Dim, Vectors: e.Vectors}).Save(w); err != nil {
				t.Fatal(err)
			}
		}
		if err := clf.clf.Save(w); err != nil {
			t.Fatal(err)
		}
	}

	// Version 1: header + blobs, no trailer.
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(hdr); err != nil {
		t.Fatal(err)
	}
	writeBody(&v1)

	// Version 3: header + backends record + blobs + CRC trailer.
	var v3 bytes.Buffer
	cw := crcio.NewWriter(&v3)
	hdr.Version = modelVersionBackends
	enc := gob.NewEncoder(cw)
	if err := enc.Encode(hdr); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(modelBackends{
		Embedder: DefaultEmbedder, Classifier: DefaultClassifier, ViewSet: DefaultViewSet,
	}); err != nil {
		t.Fatal(err)
	}
	writeBody(cw)
	if err := cw.WriteTrailer(); err != nil {
		t.Fatal(err)
	}

	for name, stream := range map[string][]byte{"v1": v1.Bytes(), "v3": v3.Bytes()} {
		sc, err := LoadScorer(bytes.NewReader(stream))
		if err != nil {
			t.Fatalf("%s stream refused: %v", name, err)
		}
		if got, want := len(sc.Domains()), len(ref.Domains()); got != want {
			t.Fatalf("%s: %d domains, want %d", name, got, want)
		}
		for _, dom := range ref.Domains() {
			want, _ := ref.Result(dom)
			got, ok := sc.Result(dom)
			if !ok || got != want {
				t.Fatalf("%s: %s Result %+v, want %+v", name, dom, got, want)
			}
			if got.Source != SourceModel || got.Confidence != 1 {
				t.Fatalf("%s: %s source %q confidence %v, want model/1", name, dom, got.Source, got.Confidence)
			}
		}
	}
}

package core

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// goldenModelSHA256 is the SHA-256 of the model file produced by
// goldenModelBytes under the pre-registry build path (PR 7). The
// pluggable-stage refactor must keep the default selection
// (line + svm, all views) byte-identical to this: the registry is a
// seam, not a behavior change.
const goldenModelSHA256 = "babb19a785f075ccd77f8bd6619c3a6a5eede35c3d3f9c676467549c15ab0185"

// goldenModelBytes trains the fixed tiny fixture — 8 domains, 3 hosts,
// deterministic timestamps, Workers=1, seed 42 — and returns the
// serialized model file.
func goldenModelBytes(t *testing.T) []byte {
	t.Helper()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	det := NewDetector(Config{
		Start:        start,
		Days:         1,
		EmbedDim:     4,
		EmbedSamples: 20_000,
		Seed:         42,
		Workers:      1,
	})
	for i := 0; i < 8; i++ {
		for h := 0; h < 3; h++ {
			for m := 0; m < 3; m++ {
				det.Consume(pipeline.Input{
					Time:     start.Add(time.Duration(2*i+m) * time.Minute),
					ClientIP: fmt.Sprintf("10.0.0.%d", (i+h)%10),
					QName:    fmt.Sprintf("www.dom%d.com", i),
					Answers:  []string{fmt.Sprintf("198.51.100.%d", (i+m)%8)},
				})
			}
		}
	}
	if err := det.BuildModel(); err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	domains, err := det.Domains()
	if err != nil {
		t.Fatalf("Domains: %v", err)
	}
	labels := make([]int, len(domains))
	for i := range domains {
		labels[i] = i % 2
	}
	clf, err := det.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatalf("TrainClassifier: %v", err)
	}
	var buf bytes.Buffer
	if err := det.SaveModel(&buf, clf); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenModelBytes pins the default-path model file bytes across
// the registry refactor.
func TestGoldenModelBytes(t *testing.T) {
	b := goldenModelBytes(t)
	got := fmt.Sprintf("%x", sha256.Sum256(b))
	if got != goldenModelSHA256 {
		t.Fatalf("model bytes changed: sha256 %s (len %d), want %s", got, len(b), goldenModelSHA256)
	}
}

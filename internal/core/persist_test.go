package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bipartite"
)

// TestSaveModelLoadScorerRoundTrip is the train-once/serve-many
// guarantee: a Scorer loaded from a saved model must reproduce
// bit-identical feature vectors, decision values, and predictions for
// every retained domain, without any pipeline state.
func TestSaveModelLoadScorerRoundTrip(t *testing.T) {
	d, _, ti := buildDetector(t, 21)
	domains, labels := labeledSet(t, d, ti)
	clf, err := d.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := d.SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadScorer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	retained, err := d.Domains()
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Domains(); len(got) != len(retained) {
		t.Fatalf("scorer has %d domains, want %d", len(got), len(retained))
	}
	if sc.Fingerprint() != d.Config().Fingerprint() {
		t.Errorf("fingerprint %q, want %q", sc.Fingerprint(), d.Config().Fingerprint())
	}
	if sc.Model().NumSV() != clf.Model().NumSV() {
		t.Errorf("scorer has %d SVs, want %d", sc.Model().NumSV(), clf.Model().NumSV())
	}
	for _, dom := range retained {
		want, ok := clf.Score(dom)
		if !ok {
			t.Fatalf("detector cannot score retained domain %s", dom)
		}
		got, ok := sc.Score(dom)
		if !ok {
			t.Fatalf("scorer cannot score retained domain %s", dom)
		}
		if got != want {
			t.Fatalf("%s: scorer decision %v != detector decision %v", dom, got, want)
		}
		wp, _ := clf.Predict(dom)
		if gp, _ := sc.Predict(dom); gp != wp {
			t.Fatalf("%s: scorer predicts %d, detector %d", dom, gp, wp)
		}
		wv, _ := d.FeatureVector(dom)
		gv, _ := sc.FeatureVector(dom)
		if len(gv) != len(wv) {
			t.Fatalf("%s: feature dim %d != %d", dom, len(gv), len(wv))
		}
		for i := range wv {
			if gv[i] != wv[i] {
				t.Fatalf("%s: feature component %d differs after round trip", dom, i)
			}
		}
	}
	if _, ok := sc.Score("never-seen.example"); ok {
		t.Error("scorer scored an unknown domain")
	}
	if v, ok := sc.FeatureVector(retained[0], bipartite.ViewQuery); !ok || len(v) != d.Config().EmbedDim {
		t.Errorf("single-view scorer vector dim %d, want %d", len(v), d.Config().EmbedDim)
	}
}

func TestSaveModelValidation(t *testing.T) {
	var buf bytes.Buffer
	unbuilt := NewDetector(Config{})
	if err := unbuilt.SaveModel(&buf, nil); err == nil {
		t.Fatal("SaveModel before build accepted")
	}

	d, _, ti := buildDetector(t, 21)
	if err := d.SaveModel(&buf, nil); err == nil {
		t.Fatal("nil classifier accepted")
	}
	// A classifier trained on a different detector must be rejected: its
	// support vectors index a different feature space.
	other := &Classifier{detector: unbuilt}
	if err := d.SaveModel(&buf, other); err == nil {
		t.Fatal("foreign classifier accepted")
	}
	domains, labels := labeledSet(t, d, ti)
	clf, err := d.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
}

// TestLoadScorerRejectsCorruptStreams mirrors the line/svm persist
// tests: garbage, truncation at several depths, and foreign-but-valid
// gob streams must all fail cleanly.
func TestLoadScorerRejectsCorruptStreams(t *testing.T) {
	if _, err := LoadScorer(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage stream accepted")
	}

	d, _, ti := buildDetector(t, 21)
	domains, labels := labeledSet(t, d, ti)
	clf, err := d.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncations: inside the header, inside the embeddings, and just
	// before the SVM trailer.
	for _, frac := range []int{64, 4, 2} {
		cut := len(full) / frac
		if _, err := LoadScorer(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated stream (%d of %d bytes) accepted", cut, len(full))
		}
	}
	if _, err := LoadScorer(bytes.NewReader(full[:len(full)-1])); err == nil {
		t.Fatal("stream missing final byte accepted")
	}
	// A valid gob stream that is not a model: a bare embedding.
	var embBuf bytes.Buffer
	emb, err := d.Embedding(bipartite.ViewQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Save(&embBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScorer(bytes.NewReader(embBuf.Bytes())); err == nil {
		t.Fatal("bare embedding stream accepted as a model")
	}
}

package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/crcio"
	"repro/internal/faultio"
	"repro/internal/line"
)

// TestSaveModelLoadScorerRoundTrip is the train-once/serve-many
// guarantee: a Scorer loaded from a saved model must reproduce
// bit-identical feature vectors, decision values, and predictions for
// every retained domain, without any pipeline state.
func TestSaveModelLoadScorerRoundTrip(t *testing.T) {
	d, _, ti := buildDetector(t, 21)
	domains, labels := labeledSet(t, d, ti)
	clf, err := d.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := d.SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadScorer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	retained, err := d.Domains()
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Domains(); len(got) != len(retained) {
		t.Fatalf("scorer has %d domains, want %d", len(got), len(retained))
	}
	if sc.Fingerprint() != d.Config().Fingerprint() {
		t.Errorf("fingerprint %q, want %q", sc.Fingerprint(), d.Config().Fingerprint())
	}
	if sc.Model().NumSV() != clf.Model().NumSV() {
		t.Errorf("scorer has %d SVs, want %d", sc.Model().NumSV(), clf.Model().NumSV())
	}
	for _, dom := range retained {
		want, ok := clf.Score(dom)
		if !ok {
			t.Fatalf("detector cannot score retained domain %s", dom)
		}
		got, ok := sc.Score(dom)
		if !ok {
			t.Fatalf("scorer cannot score retained domain %s", dom)
		}
		if got != want {
			t.Fatalf("%s: scorer decision %v != detector decision %v", dom, got, want)
		}
		wp, _ := clf.Predict(dom)
		if gp, _ := sc.Predict(dom); gp != wp {
			t.Fatalf("%s: scorer predicts %d, detector %d", dom, gp, wp)
		}
		wv, _ := d.FeatureVector(dom)
		gv, _ := sc.FeatureVector(dom)
		if len(gv) != len(wv) {
			t.Fatalf("%s: feature dim %d != %d", dom, len(gv), len(wv))
		}
		for i := range wv {
			if gv[i] != wv[i] {
				t.Fatalf("%s: feature component %d differs after round trip", dom, i)
			}
		}
	}
	if _, ok := sc.Score("never-seen.example"); ok {
		t.Error("scorer scored an unknown domain")
	}
	if v, ok := sc.FeatureVector(retained[0], bipartite.ViewQuery); !ok || len(v) != d.Config().EmbedDim {
		t.Errorf("single-view scorer vector dim %d, want %d", len(v), d.Config().EmbedDim)
	}
}

func TestSaveModelValidation(t *testing.T) {
	var buf bytes.Buffer
	unbuilt := NewDetector(Config{})
	if err := unbuilt.SaveModel(&buf, nil); err == nil {
		t.Fatal("SaveModel before build accepted")
	}

	d, _, ti := buildDetector(t, 21)
	if err := d.SaveModel(&buf, nil); err == nil {
		t.Fatal("nil classifier accepted")
	}
	// A classifier trained on a different detector must be rejected: its
	// support vectors index a different feature space.
	other := &Classifier{detector: unbuilt}
	if err := d.SaveModel(&buf, other); err == nil {
		t.Fatal("foreign classifier accepted")
	}
	domains, labels := labeledSet(t, d, ti)
	clf, err := d.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
}

// TestLoadScorerRejectsCorruptStreams mirrors the line/svm persist
// tests: garbage, truncation at several depths, and foreign-but-valid
// gob streams must all fail cleanly.
func TestLoadScorerRejectsCorruptStreams(t *testing.T) {
	if _, err := LoadScorer(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage stream accepted")
	}

	d, _, ti := buildDetector(t, 21)
	domains, labels := labeledSet(t, d, ti)
	clf, err := d.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncations: inside the header, inside the embeddings, and just
	// before the SVM trailer.
	for _, frac := range []int{64, 4, 2} {
		cut := len(full) / frac
		if _, err := LoadScorer(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated stream (%d of %d bytes) accepted", cut, len(full))
		}
	}
	if _, err := LoadScorer(bytes.NewReader(full[:len(full)-1])); err == nil {
		t.Fatal("stream missing final byte accepted")
	}
	// A valid gob stream that is not a model: a bare embedding.
	var embBuf bytes.Buffer
	emb, err := d.Embedding(bipartite.ViewQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := (&line.Embedding{Dim: emb.Dim, Vectors: emb.Vectors}).Save(&embBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScorer(bytes.NewReader(embBuf.Bytes())); err == nil {
		t.Fatal("bare embedding stream accepted as a model")
	}
}

// TestLoadScorerReadsLegacyV1 pins the compatibility promise: model
// files written before the CRC trailer existed (version 1, no trailer)
// must keep loading and score identically to a current save.
func TestLoadScorerReadsLegacyV1(t *testing.T) {
	d, _, ti := buildDetector(t, 21)
	domains, labels := labeledSet(t, d, ti)
	clf, err := d.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-write the version-1 layout: header + three embeddings + SVM,
	// no trailer.
	var v1 bytes.Buffer
	hdr := modelHeader{
		Magic:       modelMagic,
		Version:     1,
		Fingerprint: d.cfg.Fingerprint(),
		EmbedDim:    d.cfg.EmbedDim,
		Domains:     d.domains,
		Views:       clf.views,
	}
	if err := gob.NewEncoder(&v1).Encode(hdr); err != nil {
		t.Fatal(err)
	}
	for _, v := range bipartite.Views {
		e := d.embeddings[v]
		if err := (&line.Embedding{Dim: e.Dim, Vectors: e.Vectors}).Save(&v1); err != nil {
			t.Fatal(err)
		}
	}
	if err := clf.clf.Save(&v1); err != nil {
		t.Fatal(err)
	}

	sc, err := LoadScorer(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("legacy v1 stream refused: %v", err)
	}
	for _, dom := range sc.Domains() {
		want, _ := clf.Score(dom)
		if got, ok := sc.Score(dom); !ok || got != want {
			t.Fatalf("%s: legacy scorer decision %v, want %v", dom, got, want)
		}
	}
}

// TestModelTrailerDetectsCorruption: a current save carries a CRC-32
// trailer, so corruption the gob layer would happily decode — flipped
// trailer bytes, bit-rot in the float payload — is refused.
func TestModelTrailerDetectsCorruption(t *testing.T) {
	d, _, ti := buildDetector(t, 21)
	domains, labels := labeledSet(t, d, ti)
	clf, err := d.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Flips inside the trailer itself always surface as ErrChecksum:
	// the payload decodes fine, the seal does not match.
	for i := len(full) - 4; i < len(full); i++ {
		flipped := bytes.Clone(full)
		flipped[i] ^= 0x08
		if _, err := LoadScorer(bytes.NewReader(flipped)); !errors.Is(err, crcio.ErrChecksum) {
			t.Fatalf("trailer flip at byte %d: err = %v, want ErrChecksum", i, err)
		}
	}
	// Flips sampled across the whole payload must be refused one way or
	// another: either the gob layer chokes or the trailer check does.
	for i := 0; i < len(full)-4; i += 97 {
		flipped := bytes.Clone(full)
		flipped[i] ^= 0x08
		if _, err := LoadScorer(bytes.NewReader(flipped)); err == nil {
			t.Fatalf("payload flip at byte %d accepted", i)
		}
	}
	// Truncation that removes only the trailer is no longer silent.
	if _, err := LoadScorer(bytes.NewReader(full[:len(full)-4])); err == nil {
		t.Fatal("stream with amputated trailer accepted")
	}
}

// TestModelPersistFaultInjection drives save and load through the
// faultio seam: a writer that dies mid-stream fails the save, a reader
// that dies mid-stream fails the load, and both surface the injected
// cause.
func TestModelPersistFaultInjection(t *testing.T) {
	d, _, ti := buildDetector(t, 21)
	domains, labels := labeledSet(t, d, ti)
	clf, err := d.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for _, limit := range []int64{0, 10, int64(len(full) / 2), int64(len(full) - 2)} {
		var sink bytes.Buffer
		if err := d.SaveModel(faultio.FailWriter(&sink, limit), clf); !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("save with writer failing after %d bytes: err = %v, want ErrInjected", limit, err)
		}
		if _, err := LoadScorer(faultio.FailReader(bytes.NewReader(full), limit)); !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("load with reader failing after %d bytes: err = %v, want ErrInjected", limit, err)
		}
	}
	// A torn write that lands on disk is caught at load time by the
	// trailer (the torn prefix reads as a truncated stream).
	var torn bytes.Buffer
	_ = d.SaveModel(faultio.TornWriter(&torn, int64(len(full)/2)), clf)
	if _, err := LoadScorer(bytes.NewReader(torn.Bytes())); err == nil {
		t.Fatal("torn model stream accepted")
	}
	// Short-write detection: SaveModel's writes go through the caller's
	// writer directly, so a lying writer shows up as an encode error.
	var short bytes.Buffer
	if err := d.SaveModel(faultio.ShortWriter(&short, 10), clf); err == nil {
		t.Fatal("save through a short writer reported success")
	}
}

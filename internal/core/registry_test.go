package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/pipeline"
)

// backendDetector builds the golden fixture's 8-domain trace under the
// given backend selection, for registry round-trip tests that need a
// fast non-default build.
func backendDetector(t *testing.T, embedder, classifier, views string) *Detector {
	t.Helper()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	det := NewDetector(Config{
		Start:        start,
		Days:         1,
		EmbedDim:     4,
		EmbedSamples: 20_000,
		Seed:         42,
		Workers:      1,
		Embedder:     embedder,
		Classifier:   classifier,
		Views:        views,
	})
	for i := 0; i < 8; i++ {
		for h := 0; h < 3; h++ {
			for m := 0; m < 3; m++ {
				det.Consume(pipeline.Input{
					Time:     start.Add(time.Duration(2*i+m) * time.Minute),
					ClientIP: fmt.Sprintf("10.0.0.%d", (i+h)%10),
					QName:    fmt.Sprintf("www.dom%d.com", i),
					Answers:  []string{fmt.Sprintf("198.51.100.%d", (i+m)%8)},
				})
			}
		}
	}
	if err := det.BuildModel(); err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	return det
}

func backendLabels(t *testing.T, det *Detector) ([]string, []int) {
	t.Helper()
	domains, err := det.Domains()
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int, len(domains))
	for i := range domains {
		labels[i] = i % 2
	}
	return domains, labels
}

// TestRegisterDuplicatePanics: silently replacing a registered backend
// would change what fingerprints and model files mean, so every
// registry refuses duplicates loudly.
func TestRegisterDuplicatePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Fatalf("%s: duplicate registration did not panic", name)
			}
		}()
		f()
	}
	mustPanic("embedder", func() {
		RegisterEmbedder(DefaultEmbedder, func(Config) Embedder { return lineEmbedder{} })
	})
	mustPanic("classifier", func() {
		RegisterClassifier(DefaultClassifier,
			func(Config) DomainClassifier { return &svmClassifier{} },
			loadLabelprop)
	})
	mustPanic("view set", func() {
		RegisterViewSet(DefaultViewSet, bipartite.Views)
	})
	mustPanic("empty embedder", func() { RegisterEmbedder("", nil) })
}

// TestUnknownBackendErrors: selecting an unregistered name fails fast —
// at build time for embedders, at training time for classifiers and
// view sets — with an error that names the available backends.
func TestUnknownBackendErrors(t *testing.T) {
	det := NewDetector(Config{
		Start:    time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC),
		Days:     1,
		Embedder: "nope",
	})
	det.Consume(pipeline.Input{
		Time:     time.Date(2024, 1, 1, 0, 1, 0, 0, time.UTC),
		ClientIP: "10.0.0.1", QName: "www.a.com", Answers: []string{"198.51.100.1"},
	})
	err := det.BuildModel()
	if err == nil {
		t.Fatal("unknown embedder accepted")
	}
	for _, want := range []string{`"nope"`, "line", "mf", "available"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("embedder error %q does not mention %s", err, want)
		}
	}

	for _, tc := range []struct {
		name string
		cfg  func(*Config)
		want []string
	}{
		{"classifier", func(c *Config) { c.Classifier = "nope" }, []string{`"nope"`, "svm", "labelprop", "ensemble"}},
		{"views", func(c *Config) { c.Views = "nope" }, []string{`"nope"`, "all", "query+ip"}},
	} {
		det := backendDetector(t, "", "", "")
		cfg := det.cfg
		tc.cfg(&cfg)
		det2 := &Detector{cfg: cfg, proc: det.proc, built: true,
			graphs: det.graphs, projections: det.projections,
			embeddings: det.embeddings, domains: det.domains, index: det.index}
		domains, labels := backendLabels(t, det)
		if _, err := det2.TrainClassifier(domains, labels); err == nil {
			t.Fatalf("%s: unknown name accepted", tc.name)
		} else {
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("%s error %q does not mention %s", tc.name, err, want)
				}
			}
		}
	}
}

// TestNonDefaultRoundTrip: an mf+labelprop model trains, persists as a
// version-3 stream, reloads, and scores identically, with the backend
// names surfaced on both the fingerprint and the Scorer.
func TestNonDefaultRoundTrip(t *testing.T) {
	det := backendDetector(t, "mf", "labelprop", "")
	domains, labels := backendLabels(t, det)
	clf, err := det.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	if clf.Backend() != "labelprop" {
		t.Fatalf("classifier backend %q, want labelprop", clf.Backend())
	}
	if clf.Model() != nil {
		t.Fatal("labelprop classifier reports an underlying SVM")
	}
	fp := det.Config().Fingerprint()
	for _, want := range []string{"embedder=mf", "classifier=labelprop"} {
		if !strings.Contains(fp, want) {
			t.Fatalf("fingerprint %q missing %s", fp, want)
		}
	}

	var buf bytes.Buffer
	if err := det.SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadScorer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sc.EmbedderName() != "mf" || sc.ClassifierName() != "labelprop" {
		t.Fatalf("scorer backends %s/%s, want mf/labelprop",
			sc.EmbedderName(), sc.ClassifierName())
	}
	if sc.Model() != nil {
		t.Fatal("labelprop scorer reports an underlying SVM")
	}
	for _, dom := range domains {
		want, _ := clf.Score(dom)
		got, ok := sc.Score(dom)
		if !ok || got != want {
			t.Fatalf("%s: scorer decision %v, want %v", dom, got, want)
		}
	}
}

// TestEnsembleRoundTrip: the mean ensemble trains both members,
// persists, reloads, and exposes its SVM member through Model().
func TestEnsembleRoundTrip(t *testing.T) {
	det := backendDetector(t, "", "ensemble", "")
	domains, labels := backendLabels(t, det)
	clf, err := det.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	if clf.Model() == nil {
		t.Fatal("ensemble did not expose its SVM member")
	}
	var buf bytes.Buffer
	if err := det.SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadScorer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sc.ClassifierName() != "ensemble" {
		t.Fatalf("scorer classifier %q, want ensemble", sc.ClassifierName())
	}
	for _, dom := range domains {
		want, _ := clf.Score(dom)
		if got, ok := sc.Score(dom); !ok || got != want {
			t.Fatalf("%s: ensemble scorer decision %v, want %v", dom, got, want)
		}
	}
}

// TestLegacyModelReportsDefaultBackends: version-2 files predate
// backend names; a loaded Scorer must still name line+svm.
func TestLegacyModelReportsDefaultBackends(t *testing.T) {
	det := backendDetector(t, "", "", "")
	domains, labels := backendLabels(t, det)
	clf, err := det.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadScorer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sc.EmbedderName() != DefaultEmbedder || sc.ClassifierName() != DefaultClassifier {
		t.Fatalf("default-build scorer backends %s/%s, want %s/%s",
			sc.EmbedderName(), sc.ClassifierName(), DefaultEmbedder, DefaultClassifier)
	}
	if sc.Model() == nil {
		t.Fatal("svm scorer lost its model accessor")
	}
}

// TestNamedViewSetShapesClassifier: Config.Views narrows the feature
// vectors classifiers train over without touching what gets embedded.
func TestNamedViewSetShapesClassifier(t *testing.T) {
	det := backendDetector(t, "", "", "query+ip")
	domains, labels := backendLabels(t, det)
	clf, err := det.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	wantViews := []bipartite.View{bipartite.ViewQuery, bipartite.ViewIP}
	if len(clf.views) != len(wantViews) {
		t.Fatalf("classifier has %d views, want %d", len(clf.views), len(wantViews))
	}
	for i, v := range wantViews {
		if clf.views[i] != v {
			t.Fatalf("view %d is %v, want %v", i, clf.views[i], v)
		}
	}
	if !strings.Contains(det.Config().Fingerprint(), "views=query+ip") {
		t.Fatalf("fingerprint %q missing views token", det.Config().Fingerprint())
	}
	// All three views are still embedded regardless of the selection.
	for _, v := range bipartite.Views {
		if _, err := det.Embedding(v); err != nil {
			t.Fatalf("view %v not embedded: %v", v, err)
		}
	}
}

// TestViewsOrAllReturnsCopy is the aliasing regression test: mutating
// the slice a Classifier holds (or the helper's return) must not
// reorder the package-level bipartite.Views.
func TestViewsOrAllReturnsCopy(t *testing.T) {
	got := viewsOrAll(nil)
	if len(got) != len(bipartite.Views) {
		t.Fatalf("viewsOrAll(nil) has %d views, want %d", len(got), len(bipartite.Views))
	}
	orig := append([]bipartite.View(nil), bipartite.Views...)
	got[0], got[1] = got[1], got[0]
	for i, v := range bipartite.Views {
		if v != orig[i] {
			t.Fatal("mutating viewsOrAll's result reordered the global bipartite.Views")
		}
	}
	// The explicit-argument form must not alias the caller's slice
	// either.
	arg := []bipartite.View{bipartite.ViewTime}
	got = viewsOrAll(arg)
	got[0] = bipartite.ViewQuery
	if arg[0] != bipartite.ViewTime {
		t.Fatal("viewsOrAll aliased its argument")
	}
}

// TestRegistryListsSorted: the listing accessors are the CLI's
// backends output; they must be sorted and include the defaults.
func TestRegistryListsSorted(t *testing.T) {
	for _, tc := range []struct {
		name string
		got  []string
		want string
	}{
		{"embedders", Embedders(), DefaultEmbedder},
		{"classifiers", Classifiers(), DefaultClassifier},
		{"view sets", ViewSets(), DefaultViewSet},
	} {
		found := false
		for i, n := range tc.got {
			if i > 0 && tc.got[i-1] >= n {
				t.Fatalf("%s not sorted: %v", tc.name, tc.got)
			}
			if n == tc.want {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s missing default %q: %v", tc.name, tc.want, tc.got)
		}
	}
	// ViewSet hands out copies, not the registered slice.
	a, ok := ViewSet(DefaultViewSet)
	if !ok {
		t.Fatal("default view set missing")
	}
	a[0], a[1] = a[1], a[0]
	b, _ := ViewSet(DefaultViewSet)
	if b[0] != bipartite.Views[0] {
		t.Fatal("ViewSet returned an aliased slice")
	}
}

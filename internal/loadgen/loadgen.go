// Package loadgen is the daemon's load generator: a worker-pool HTTP
// client that drives maldetect serve's scoring endpoints at a target
// rate and reports what the daemon actually sustained — throughput,
// latency percentiles, shed and error counts. It exists to give the
// zero-allocation serving claims an end-to-end measurement over real
// sockets: `go test -bench` numbers isolate the handler, loadgen
// numbers include the HTTP stack, the concurrency gate, and the
// client's own scheduling.
//
// The generator paces with a token bucket (TargetQPS tokens per
// second, small burst) shared by all workers, so offered load is
// shaped rather than convoyed; unpaced runs (TargetQPS=0) measure
// closed-loop capacity instead. 503 responses — the daemon shedding
// load — are tracked separately from errors and retried with
// exponential backoff, because shed-and-retry is the client behavior
// the Retry-After contract asks for.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mathx"
	"repro/internal/obsv"
	"repro/internal/serve"
)

// Config parameterizes one load-generation run.
type Config struct {
	// BaseURL is the daemon's root, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Domains is the query population; workers cycle through it
	// round-robin. Required.
	Domains []string
	// Workers is the number of concurrent request loops (default 8).
	Workers int
	// Conns caps HTTP connections to the daemon (default Workers).
	Conns int
	// TargetQPS paces offered load with a token bucket; 0 runs
	// closed-loop as fast as the workers turn around.
	TargetQPS float64
	// Duration bounds the run in wall time. At least one of Duration
	// and Requests must be set; whichever trips first ends the run.
	Duration time.Duration
	// Requests bounds the run in completed requests.
	Requests int64
	// Batch switches from single-domain GETs to POST /v1/score/batch
	// with this many domains per request (0 or 1 keeps single GETs).
	Batch int
	// NDJSON opts batch requests into the streamed x-ndjson framing.
	NDJSON bool
	// Retries is how many times a transport error or 503 is retried
	// before counting as a failure (default 0: fail fast).
	Retries int
	// Backoff is the base of the exponential retry backoff (default
	// 20ms). Attempt n draws its wait uniformly from [d/2, d) where
	// d = Backoff·2ⁿ capped at MaxBackoff — equal jitter, so workers
	// shed together do not retry together and re-convoy on the daemon.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 1s).
	MaxBackoff time.Duration
	// Seed drives the backoff jitter (default 1). Fixed seeds make
	// retry schedules reproducible run to run.
	Seed uint64
	// Timeout bounds one HTTP request (default 5s).
	Timeout time.Duration
	// Client overrides the HTTP client, for tests. When nil a client
	// with a dedicated pooled transport is built from Conns/Timeout.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Conns <= 0 {
		c.Conns = c.Workers
	}
	if c.Backoff <= 0 {
		c.Backoff = 20 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	return c
}

// Report is what a run measured. Requests = OK + Errors; attempts
// beyond a request's first are counted in Retries, not Requests.
type Report struct {
	Requests uint64        `json:"requests"`
	OK       uint64        `json:"ok"`
	Errors   uint64        `json:"errors"`
	Shed     uint64        `json:"shed"` // 503 responses received (each counted, retried or not)
	Retries  uint64        `json:"retries"`
	Domains  uint64        `json:"domains"` // domains scored across all OK responses
	Elapsed  time.Duration `json:"elapsed_ns"`

	// Verdict-source tallies, collected in NDJSON mode where the
	// result lines are parsed: how many scored domains were answered
	// from the model's decision table versus the fold-in/kNN fallback.
	// Model+Foldin+KNN ≤ Domains; the gap is no-evidence entries.
	Model  uint64 `json:"source_model,omitempty"`
	Foldin uint64 `json:"source_foldin,omitempty"`
	KNN    uint64 `json:"source_knn,omitempty"`

	P50, P90, P99 time.Duration `json:"-"`

	ReqPerSec     float64 `json:"req_per_sec"`
	DomainsPerSec float64 `json:"domains_per_sec"`

	// FirstError preserves the first failure's text for diagnostics.
	FirstError string `json:"first_error,omitempty"`
}

// String renders the human report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d requests in %v (%.1f req/s, %.1f domains/s)\n",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.ReqPerSec, r.DomainsPerSec)
	fmt.Fprintf(&b, "  ok %d   errors %d   shed %d   retries %d\n", r.OK, r.Errors, r.Shed, r.Retries)
	if r.Model+r.Foldin+r.KNN > 0 {
		fmt.Fprintf(&b, "  sources: model %d   foldin %d   knn %d\n", r.Model, r.Foldin, r.KNN)
	}
	fmt.Fprintf(&b, "  latency p50 %v  p90 %v  p99 %v",
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	if r.FirstError != "" {
		fmt.Fprintf(&b, "\n  first error: %s", r.FirstError)
	}
	return b.String()
}

// BenchJSON renders the report in cmd/benchjson's schema, so loadgen
// results merge into the same BENCH_*.json files as go test -bench
// output. Iterations is the request count and ns_per_op the mean
// request latency; rates and percentiles ride in metrics.
func (r Report) BenchJSON(name string) ([]byte, error) {
	var nsPerOp float64
	if r.OK > 0 {
		// Mean over the run, derived from offered concurrency-free
		// wall math would mislead; report the median instead, which
		// the histogram measured directly.
		nsPerOp = float64(r.P50.Nanoseconds())
	}
	doc := map[string]struct {
		Iterations int64              `json:"iterations"`
		NsPerOp    float64            `json:"ns_per_op"`
		Metrics    map[string]float64 `json:"metrics,omitempty"`
	}{
		name: {
			Iterations: int64(r.Requests),
			NsPerOp:    nsPerOp,
			Metrics: map[string]float64{
				"req/sec":     r.ReqPerSec,
				"domains/sec": r.DomainsPerSec,
				"p50_ms":      float64(r.P50) / float64(time.Millisecond),
				"p90_ms":      float64(r.P90) / float64(time.Millisecond),
				"p99_ms":      float64(r.P99) / float64(time.Millisecond),
				"errors":      float64(r.Errors),
				"shed":        float64(r.Shed),
			},
		},
	}
	if r.Model+r.Foldin+r.KNN > 0 {
		m := doc[name].Metrics
		m["source_model"] = float64(r.Model)
		m["source_foldin"] = float64(r.Foldin)
		m["source_knn"] = float64(r.KNN)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// pacer is a mutex token bucket: TargetQPS tokens per second with a
// burst of rate/50 (≥1), so offered load is smooth at the 20ms scale
// without convoying every worker onto the same tick.
type pacer struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newPacer(qps float64) *pacer {
	if qps <= 0 {
		return nil
	}
	burst := qps / 50
	if burst < 1 {
		burst = 1
	}
	return &pacer{rate: qps, burst: burst, tokens: burst, last: time.Now()}
}

// resetTimer lazily allocates t on first use and re-arms it after.
// Callers only invoke it after draining t.C, so Reset is race-free.
func resetTimer(t *time.Timer, d time.Duration) *time.Timer {
	if t == nil {
		return time.NewTimer(d)
	}
	t.Reset(d)
	return t
}

// wait blocks until a token is available or ctx ends.
func (p *pacer) wait(ctx context.Context) error {
	if p == nil {
		return ctx.Err()
	}
	var timer *time.Timer // reused across iterations; Reset is safe after a receive
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		p.mu.Lock()
		now := time.Now()
		p.tokens += now.Sub(p.last).Seconds() * p.rate
		p.last = now
		if p.tokens > p.burst {
			p.tokens = p.burst
		}
		if p.tokens >= 1 {
			p.tokens--
			p.mu.Unlock()
			return nil
		}
		need := time.Duration((1 - p.tokens) / p.rate * float64(time.Second))
		p.mu.Unlock()
		timer = resetTimer(timer, need)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// latencyBounds is a geometric grid from 50µs to ~30s (step ×1.25),
// giving Quantile about ±12% resolution anywhere in the range.
func latencyBounds() []float64 {
	var b []float64
	for v := 50e-6; v < 30; v *= 1.25 {
		b = append(b, v)
	}
	return b
}

// loader is one run's shared state.
type loader struct {
	cfg    Config
	client *http.Client
	pace   *pacer
	hist   *obsv.Histogram

	urls    []string // single mode: prebuilt GET targets
	bodies  [][]byte // batch mode: prebuilt request bodies
	next    atomic.Uint64
	limited bool
	budget  atomic.Int64 // remaining requests when limited

	ok, errs, shed, retries, domains atomic.Uint64
	srcModel, srcFoldin, srcKNN      atomic.Uint64

	errOnce  sync.Once
	firstErr atomic.Pointer[string]
}

// Run drives the configured load and reports what it measured. The
// returned error covers configuration problems only; request failures
// are counted in the Report.
func Run(ctx context.Context, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return Report{}, fmt.Errorf("loadgen: BaseURL required")
	}
	if len(cfg.Domains) == 0 {
		return Report{}, fmt.Errorf("loadgen: no domains to query")
	}
	if cfg.Duration <= 0 && cfg.Requests <= 0 {
		return Report{}, fmt.Errorf("loadgen: set Duration or Requests")
	}
	l := &loader{
		cfg:    cfg,
		client: cfg.Client,
		pace:   newPacer(cfg.TargetQPS),
		hist:   obsv.NewHistogram(latencyBounds()),
	}
	if l.client == nil {
		l.client = &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Conns * 2,
				MaxIdleConnsPerHost: cfg.Conns,
				MaxConnsPerHost:     cfg.Conns,
			},
		}
	}
	base := strings.TrimSuffix(cfg.BaseURL, "/")
	if cfg.Batch > 1 {
		if err := l.buildBodies(); err != nil {
			return Report{}, err
		}
	} else {
		l.urls = make([]string, len(cfg.Domains))
		for i, d := range cfg.Domains {
			l.urls[i] = base + "/v1/score/" + url.PathEscape(d)
		}
	}
	if cfg.Requests > 0 {
		l.limited = true
		l.budget.Store(cfg.Requests)
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	start := time.Now()
	var wg sync.WaitGroup
	jitter := mathx.NewRNG(cfg.Seed).SplitLabeled("loadgen-backoff")
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		rng := jitter.SplitLabeled(fmt.Sprint(w))
		go func() {
			defer wg.Done()
			l.worker(ctx, rng)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{
		OK:      l.ok.Load(),
		Errors:  l.errs.Load(),
		Shed:    l.shed.Load(),
		Retries: l.retries.Load(),
		Domains: l.domains.Load(),
		Model:   l.srcModel.Load(),
		Foldin:  l.srcFoldin.Load(),
		KNN:     l.srcKNN.Load(),
		Elapsed: elapsed,
		P50:     time.Duration(l.hist.Quantile(0.50) * float64(time.Second)),
		P90:     time.Duration(l.hist.Quantile(0.90) * float64(time.Second)),
		P99:     time.Duration(l.hist.Quantile(0.99) * float64(time.Second)),
	}
	rep.Requests = rep.OK + rep.Errors
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ReqPerSec = float64(rep.Requests) / secs
		rep.DomainsPerSec = float64(rep.Domains) / secs
	}
	if p := l.firstErr.Load(); p != nil {
		rep.FirstError = *p
	}
	return rep, nil
}

// buildBodies pre-marshals the batch request bodies once: workers then
// only rewind readers, never re-encode.
func (l *loader) buildBodies() error {
	n := (len(l.cfg.Domains) + l.cfg.Batch - 1) / l.cfg.Batch
	l.bodies = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		batch := make([]string, l.cfg.Batch)
		for j := range batch {
			batch[j] = l.cfg.Domains[(i*l.cfg.Batch+j)%len(l.cfg.Domains)]
		}
		body, err := json.Marshal(serve.BatchRequest{Domains: batch})
		if err != nil {
			return fmt.Errorf("loadgen: encoding batch body: %w", err)
		}
		l.bodies = append(l.bodies, body)
	}
	return nil
}

func (l *loader) worker(ctx context.Context, rng *mathx.RNG) {
	// Per-worker NDJSON counting buffer, reused across responses.
	var ndbuf []byte
	if l.cfg.NDJSON {
		ndbuf = make([]byte, 32*1024)
	}
	for {
		if ctx.Err() != nil {
			return
		}
		if l.limited && l.budget.Add(-1) < 0 {
			return
		}
		if err := l.pace.wait(ctx); err != nil {
			return
		}
		l.one(ctx, l.next.Add(1)-1, ndbuf, rng)
	}
}

// backoffFor computes the jittered wait before retry attempt n
// (0-based): Backoff·2ⁿ capped at MaxBackoff, drawn uniformly from the
// upper half of that delay. The shift is clamped so pathological retry
// budgets cannot overflow the duration arithmetic.
func (l *loader) backoffFor(attempt int, rng *mathx.RNG) time.Duration {
	shift := uint(attempt)
	if shift > 16 {
		shift = 16
	}
	d := l.cfg.Backoff << shift
	if d <= 0 || d > l.cfg.MaxBackoff {
		d = l.cfg.MaxBackoff
	}
	half := d / 2
	return half + time.Duration(rng.Float64()*float64(half))
}

// one issues a single logical request, retrying transport errors and
// 503s with jittered exponential backoff up to cfg.Retries.
func (l *loader) one(ctx context.Context, seq uint64, ndbuf []byte, rng *mathx.RNG) {
	var timer *time.Timer // reused across retries; Reset is safe after a receive
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for attempt := 0; ; attempt++ {
		start := time.Now()
		scored, status, err := l.attempt(ctx, seq, ndbuf)
		switch {
		case err == nil && status == http.StatusOK:
			l.hist.Observe(time.Since(start).Seconds())
			l.ok.Add(1)
			l.domains.Add(scored)
			return
		case err != nil && ctx.Err() != nil:
			// Run ended mid-request; not a daemon failure.
			return
		case status == http.StatusServiceUnavailable:
			l.shed.Add(1)
			l.noteError(fmt.Sprintf("request %d: 503 server at capacity", seq))
		case err != nil:
			l.noteError(fmt.Sprintf("request %d: %v", seq, err))
		default:
			// A definitive non-shed HTTP status (404, 400, ...) will
			// not improve on retry.
			l.errs.Add(1)
			l.noteError(fmt.Sprintf("request %d: HTTP %d", seq, status))
			return
		}
		if attempt >= l.cfg.Retries {
			l.errs.Add(1)
			return
		}
		if ctx.Err() != nil {
			// The run was cancelled between attempts: stop retrying
			// immediately rather than arming a backoff timer against a
			// dead context. Like a cancelled in-flight request, the
			// unfinished logical request counts neither OK nor error.
			return
		}
		l.retries.Add(1)
		timer = resetTimer(timer, l.backoffFor(attempt, rng))
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
	}
}

// attempt performs one HTTP exchange and returns the domains scored,
// the status code, and any transport error.
func (l *loader) attempt(ctx context.Context, seq uint64, ndbuf []byte) (uint64, int, error) {
	var req *http.Request
	var err error
	var batchSize uint64
	if l.bodies != nil {
		body := l.bodies[seq%uint64(len(l.bodies))]
		batchSize = uint64(l.cfg.Batch)
		req, err = http.NewRequestWithContext(ctx, http.MethodPost,
			strings.TrimSuffix(l.cfg.BaseURL, "/")+"/v1/score/batch", bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
			if l.cfg.NDJSON {
				req.Header.Set("Accept", serve.NDJSONContentType)
			}
		}
	} else {
		batchSize = 1
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, l.urls[seq%uint64(len(l.urls))], nil)
	}
	if err != nil {
		return 0, 0, err
	}
	resp, err := l.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, resp.StatusCode, nil
	}
	if l.cfg.NDJSON && l.bodies != nil {
		tally, err := serve.TallyNDJSON(resp.Body, ndbuf)
		if err != nil {
			return 0, resp.StatusCode, fmt.Errorf("malformed NDJSON response: %w", err)
		}
		l.srcModel.Add(uint64(tally.Model))
		l.srcFoldin.Add(uint64(tally.Foldin))
		l.srcKNN.Add(uint64(tally.KNN))
		return uint64(tally.Results), resp.StatusCode, nil
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, resp.StatusCode, err
	}
	return batchSize, resp.StatusCode, nil
}

// noteError records the first failure's text for the report.
func (l *loader) noteError(msg string) {
	l.errOnce.Do(func() { l.firstErr.Store(&msg) })
}

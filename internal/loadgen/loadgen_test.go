package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mathx"
	"repro/internal/serve"
)

var testDomains = []string{"a.example", "b.example", "c.example", "d.example"}

// okHandler answers every score GET with a fixed JSON document.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"domain":"x","score":1,"label":1}`)
	})
}

// TestRunCounts pins the request-budget mode: exactly Requests logical
// requests, all OK, one domain each, percentiles populated.
func TestRunCounts(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Domains:  testDomains,
		Workers:  4,
		Requests: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 50 || rep.OK != 50 || rep.Errors != 0 || rep.Shed != 0 {
		t.Fatalf("counts: %+v", rep)
	}
	if rep.Domains != 50 {
		t.Fatalf("domains = %d, want 50", rep.Domains)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("percentiles: p50 %v p99 %v", rep.P50, rep.P99)
	}
	if rep.ReqPerSec <= 0 {
		t.Fatalf("req/s = %v", rep.ReqPerSec)
	}
}

// TestBatchNDJSON drives the batch+NDJSON path against a handler that
// decodes the batch body and streams a well-formed NDJSON response;
// Domains must come from counting the streamed lines, and the verdict
// sources on the enriched lines must land in the report's tallies.
func TestBatchNDJSON(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/score/batch" {
			t.Errorf("path %q", r.URL.Path)
		}
		if got := r.Header.Get("Accept"); got != serve.NDJSONContentType {
			t.Errorf("Accept %q", got)
		}
		var req serve.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding batch: %v", err)
		}
		w.Header().Set("Content-Type", serve.NDJSONContentType)
		fmt.Fprintln(w, `{"fingerprint":"test"}`)
		for i, d := range req.Domains {
			switch i {
			case 0:
				fmt.Fprintf(w, `{"domain":%q,"score":0.5,"label":1,"known":false,"confidence":0.4,"source":"foldin"}`+"\n", d)
			case 1:
				fmt.Fprintf(w, `{"domain":%q,"score":0.5,"label":1,"known":false,"confidence":0.3,"source":"knn"}`+"\n", d)
			case 2:
				fmt.Fprintf(w, `{"domain":%q,"score":0,"label":0,"known":false,"confidence":0}`+"\n", d)
			default:
				fmt.Fprintf(w, `{"domain":%q,"score":0.5,"label":1,"known":true,"confidence":1,"source":"model"}`+"\n", d)
			}
		}
	}))
	defer srv.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Domains:  testDomains,
		Workers:  2,
		Requests: 10,
		Batch:    8,
		NDJSON:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 10 || rep.Errors != 0 {
		t.Fatalf("counts: %+v", rep)
	}
	if rep.Domains != 80 {
		t.Fatalf("domains = %d, want 80 (10 batches × 8 streamed lines)", rep.Domains)
	}
	if rep.Model != 50 || rep.Foldin != 10 || rep.KNN != 10 {
		t.Fatalf("source tallies model/foldin/knn = %d/%d/%d, want 50/10/10",
			rep.Model, rep.Foldin, rep.KNN)
	}
}

// TestShedRetry checks the 503 contract: shed responses are counted,
// retried with backoff, and succeed without registering errors when
// capacity returns.
func TestShedRetry(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"server at capacity"}`)
			return
		}
		fmt.Fprintln(w, `{"domain":"x","score":1,"label":1}`)
	}))
	defer srv.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Domains:  testDomains,
		Workers:  1,
		Requests: 5,
		Retries:  3,
		Backoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 5 || rep.Errors != 0 {
		t.Fatalf("counts: %+v", rep)
	}
	if rep.Shed != 2 || rep.Retries != 2 {
		t.Fatalf("shed %d retries %d, want 2 and 2", rep.Shed, rep.Retries)
	}
}

// TestDefinitiveErrorNoRetry: a non-503 error status fails immediately
// (retrying a 404 cannot help) and surfaces in FirstError.
func TestDefinitiveErrorNoRetry(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "nope", http.StatusNotFound)
	}))
	defer srv.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Domains:  testDomains,
		Workers:  1,
		Requests: 3,
		Retries:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 3 || rep.OK != 0 || rep.Retries != 0 {
		t.Fatalf("counts: %+v", rep)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d attempts for 3 definitive failures", calls.Load())
	}
	if !strings.Contains(rep.FirstError, "HTTP 404") {
		t.Fatalf("FirstError %q", rep.FirstError)
	}
}

// TestPacing checks the token bucket holds offered load near
// TargetQPS. Bounds are deliberately loose: the assertion is "paced,
// not closed-loop", not a timing benchmark.
func TestPacing(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL:   srv.URL,
		Domains:   testDomains,
		Workers:   4,
		TargetQPS: 200,
		Duration:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unpaced, 4 workers on loopback would do thousands; 200 QPS over
	// 0.3s should land near 60.
	if rep.Requests < 20 || rep.Requests > 150 {
		t.Fatalf("paced run made %d requests in 300ms at 200 QPS", rep.Requests)
	}
}

// TestConfigValidation: the config errors a caller can hit.
func TestConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{Domains: testDomains, Duration: time.Second}); err == nil {
		t.Error("missing BaseURL accepted")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", Duration: time.Second}); err == nil {
		t.Error("missing domains accepted")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", Domains: testDomains}); err == nil {
		t.Error("missing Duration and Requests accepted")
	}
}

// TestBenchJSON checks the report renders in cmd/benchjson's schema.
func TestBenchJSON(t *testing.T) {
	rep := Report{
		Requests: 100, OK: 99, Errors: 1, Shed: 2,
		Domains: 1600, Elapsed: time.Second,
		P50: 2 * time.Millisecond, P90: 5 * time.Millisecond, P99: 9 * time.Millisecond,
		ReqPerSec: 100, DomainsPerSec: 1600,
	}
	out, err := rep.BenchJSON("BenchmarkLoadgenBatch")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]struct {
		Iterations int64              `json:"iterations"`
		NsPerOp    float64            `json:"ns_per_op"`
		Metrics    map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	got, ok := doc["BenchmarkLoadgenBatch"]
	if !ok {
		t.Fatalf("missing benchmark key in %s", out)
	}
	if got.Iterations != 100 || got.NsPerOp != float64(2*time.Millisecond) {
		t.Fatalf("parsed %+v", got)
	}
	for _, key := range []string{"req/sec", "domains/sec", "p50_ms", "p99_ms", "errors", "shed"} {
		if _, ok := got.Metrics[key]; !ok {
			t.Errorf("metrics missing %q in %s", key, out)
		}
	}
	if got.Metrics["domains/sec"] != 1600 {
		t.Errorf("domains/sec = %v", got.Metrics["domains/sec"])
	}
}

// TestBackoffJitterBounds pins the retry schedule contract: attempt n
// waits in [d/2, d) for d = Backoff·2ⁿ capped at MaxBackoff, and the
// draws actually vary (jitter, not a fixed fraction).
func TestBackoffJitterBounds(t *testing.T) {
	l := &loader{cfg: Config{
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 80 * time.Millisecond,
	}.withDefaults()}
	rng := mathx.NewRNG(7)
	distinct := make(map[time.Duration]bool)
	for attempt := 0; attempt < 12; attempt++ {
		d := l.cfg.Backoff << uint(attempt)
		if d <= 0 || d > l.cfg.MaxBackoff {
			d = l.cfg.MaxBackoff
		}
		for draw := 0; draw < 8; draw++ {
			got := l.backoffFor(attempt, rng)
			if got < d/2 || got >= d {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, got, d/2, d)
			}
			distinct[got] = true
		}
	}
	if len(distinct) < 10 {
		t.Fatalf("only %d distinct draws across 96 backoffs; jitter missing", len(distinct))
	}
}

// TestCancelledContextStopsRetrying: once the run context is
// cancelled, a shed response is not retried — the worker returns
// without sleeping out its backoff budget, and the unfinished request
// counts neither OK nor error. The stub transport delivers a real 503
// and cancels the run in the same instant, pinning the exact
// shed-then-cancelled window.
func TestCancelledContextStopsRetrying(t *testing.T) {
	var calls atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	client := &http.Client{Transport: rtFunc(func(r *http.Request) (*http.Response, error) {
		calls.Add(1)
		cancel() // run dies while the daemon is shedding
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader(`{"error":"server at capacity"}`)),
			Request:    r,
		}, nil
	})}
	start := time.Now()
	rep, err := Run(ctx, Config{
		BaseURL:  "http://stub.invalid",
		Domains:  testDomains,
		Workers:  1,
		Requests: 5,
		Retries:  1000,
		Backoff:  time.Hour, // a single honored backoff would hang the test
		Client:   client,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("run took %v; cancelled context did not stop the retry loop", elapsed)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d attempts after cancellation, want 1", calls.Load())
	}
	if rep.OK != 0 || rep.Errors != 0 || rep.Shed != 1 || rep.Retries != 0 {
		t.Fatalf("counts after cancelled retry: %+v", rep)
	}
}

// rtFunc adapts a function to http.RoundTripper for stub transports.
type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

package j48

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/mathx"
)

func axisData(n int, seed uint64) (X [][]float64, y []int) {
	rng := mathx.NewRNG(seed)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		X = append(X, x)
		if x[0] > 5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	return X, y
}

func accuracy(t *Tree, X [][]float64, y []int) float64 {
	right := 0
	for i, x := range X {
		if t.Predict(x) == y[i] {
			right++
		}
	}
	return float64(right) / float64(len(X))
}

func TestAxisAlignedSplit(t *testing.T) {
	X, y := axisData(300, 1)
	tree, err := Train(X, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tree, X, y); acc < 0.98 {
		t.Errorf("training accuracy %.3f on axis-separable data", acc)
	}
	Xt, yt := axisData(300, 2)
	if acc := accuracy(tree, Xt, yt); acc < 0.95 {
		t.Errorf("test accuracy %.3f", acc)
	}
	// The first split should essentially be x0 <= ~5.
	if tree.root.leaf || tree.root.feature != 0 {
		t.Errorf("root split on feature %d, want 0", tree.root.feature)
	}
	if tree.root.threshold < 4 || tree.root.threshold > 6 {
		t.Errorf("root threshold %.3f, want ≈5", tree.root.threshold)
	}
}

func TestConjunctionNeedsDepth(t *testing.T) {
	// Label 1 iff x0 > 5 AND x1 > 5: a single split cannot express this,
	// so a correct tree needs depth >= 2.
	rng := mathx.NewRNG(3)
	var X [][]float64
	var y []int
	for i := 0; i < 600; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		X = append(X, []float64{a, b})
		if a > 5 && b > 5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	tree, err := Train(X, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tree, X, y); acc < 0.95 {
		t.Errorf("conjunction accuracy %.3f", acc)
	}
	if tree.Depth() < 2 {
		t.Errorf("conjunction solved with depth %d, want >= 2", tree.Depth())
	}
}

func TestPureNodeBecomesLeaf(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []int{1, 1, 1, 1}
	if _, err := Train(X, y, Config{}); err != nil {
		t.Fatal(err)
	}
	tree, err := Train(X, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.root.leaf {
		t.Error("pure training set did not yield a single leaf")
	}
	if tree.Leaves() != 1 || tree.Depth() != 0 {
		t.Errorf("leaves=%d depth=%d", tree.Leaves(), tree.Depth())
	}
}

func TestScoresAreProbabilities(t *testing.T) {
	X, y := axisData(200, 9)
	tree, err := Train(X, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		s := tree.Score(x)
		if s <= 0 || s >= 1 {
			t.Fatalf("score %v outside (0,1)", s)
		}
	}
}

func TestPruningReducesLeaves(t *testing.T) {
	// Noisy labels: an unpruned tree overfits into many leaves.
	rng := mathx.NewRNG(13)
	var X [][]float64
	var y []int
	for i := 0; i < 500; i++ {
		x := []float64{rng.Float64() * 10}
		label := 0
		if x[0] > 5 {
			label = 1
		}
		if rng.Float64() < 0.25 { // 25% label noise
			label = 1 - label
		}
		X = append(X, x)
		y = append(y, label)
	}
	unpruned, err := Train(X, y, Config{CF: 1})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Train(X, y, Config{CF: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Leaves() >= unpruned.Leaves() {
		t.Errorf("pruned leaves %d not below unpruned %d", pruned.Leaves(), unpruned.Leaves())
	}
	// Pruning must not destroy the real signal (clean 1-d test set).
	rngT := mathx.NewRNG(14)
	var Xt [][]float64
	var yt []int
	for i := 0; i < 300; i++ {
		x := []float64{rngT.Float64() * 10}
		Xt = append(Xt, x)
		if x[0] > 5 {
			yt = append(yt, 1)
		} else {
			yt = append(yt, 0)
		}
	}
	if acc := accuracy(pruned, Xt, yt); acc < 0.85 {
		t.Errorf("pruned tree clean-test accuracy %.3f", acc)
	}
}

func TestMinLeafRespected(t *testing.T) {
	X, y := axisData(100, 5)
	tree, err := Train(X, y, Config{MinLeaf: 40})
	if err != nil {
		t.Fatal(err)
	}
	var check func(nd *node)
	check = func(nd *node) {
		if nd.leaf {
			if nd.n < 40 && nd.n != 100 {
				t.Errorf("leaf with %d samples under MinLeaf 40", nd.n)
			}
			return
		}
		check(nd.left)
		check(nd.right)
	}
	check(tree.root)
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []int{0, 1}, Config{}); !errors.Is(err, ErrDimension) {
		t.Errorf("dim: %v", err)
	}
	if _, err := Train([][]float64{{1}}, []int{7}, Config{}); !errors.Is(err, ErrBadLabel) {
		t.Errorf("label: %v", err)
	}
}

func TestScorePanicsOnWrongDim(t *testing.T) {
	X, y := axisData(50, 6)
	tree, err := Train(X, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-dimension Score did not panic")
		}
	}()
	tree.Score([]float64{1, 2, 3})
}

func TestConstantFeaturesGiveLeaf(t *testing.T) {
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []int{0, 1, 0, 1}
	tree, err := Train(X, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.root.leaf {
		t.Error("unsplittable data did not produce a leaf")
	}
	if s := tree.Score([]float64{1, 1}); s < 0.3 || s > 0.7 {
		t.Errorf("ambiguous leaf score %v, want ≈0.5", s)
	}
}

func BenchmarkTrain1000x15(b *testing.B) {
	rng := mathx.NewRNG(7)
	var X [][]float64
	var y []int
	for i := 0; i < 1000; i++ {
		v := make([]float64, 15)
		for j := range v {
			v[j] = rng.Float64()
		}
		X = append(X, v)
		if v[3]+v[7] > 1 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(X, y, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDump(t *testing.T) {
	X, y := axisData(100, 8)
	tree, err := Train(X, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := tree.Dump([]string{"width", "height"})
	if !strings.Contains(out, "width <=") {
		t.Errorf("dump missing named split:\n%s", out)
	}
	if !strings.Contains(out, "leaf n=") {
		t.Errorf("dump missing leaves:\n%s", out)
	}
	// Unknown feature index renders a placeholder rather than panicking.
	if got := tree.Dump(nil); !strings.Contains(got, "?") {
		t.Errorf("dump without names should use placeholders:\n%s", got)
	}
}

// Package j48 implements a C4.5-style decision tree classifier over
// numeric features — the "J48" learner (Weka's C4.5 implementation) the
// Exposure baseline trains in the paper's comparison (§8.2).
//
// Splits are binary thresholds on single features chosen by gain ratio;
// growth stops at purity, minimum leaf size, or depth; pruning uses the
// C4.5 pessimistic-error estimate (upper confidence bound on the leaf
// error) with subtree replacement. Leaves predict the Laplace-smoothed
// positive-class probability so downstream ROC sweeps have graded scores.
package j48

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Config parameterizes tree induction.
type Config struct {
	// MinLeaf is the minimum number of samples per leaf (default 2,
	// matching Weka's -M 2).
	MinLeaf int
	// MaxDepth bounds tree height (default 25).
	MaxDepth int
	// CF is the pruning confidence factor (default 0.25, Weka's -C).
	// Larger values prune less; 1 disables pruning.
	CF float64
}

func (c Config) withDefaults() Config {
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 25
	}
	if c.CF <= 0 {
		c.CF = 0.25
	}
	return c
}

// Tree is a trained classifier.
type Tree struct {
	root *node
	dim  int
}

type node struct {
	// Leaf fields.
	leaf bool
	prob float64 // Laplace-smoothed P(class 1)
	n    int     // training samples reaching the node
	pos  int     // positives among them
	// Split fields.
	feature   int
	threshold float64
	left      *node // feature <= threshold
	right     *node
}

// Errors returned by Train.
var (
	ErrNoData    = errors.New("j48: empty training set")
	ErrDimension = errors.New("j48: inconsistent feature dimensions")
	ErrBadLabel  = errors.New("j48: labels must be 0 or 1")
)

// Train grows and prunes a tree on X with binary labels y.
func Train(X [][]float64, y []int, cfg Config) (*Tree, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, ErrNoData
	}
	dim := len(X[0])
	for i, x := range X {
		if len(x) != dim {
			return nil, ErrDimension
		}
		if y[i] != 0 && y[i] != 1 {
			return nil, ErrBadLabel
		}
	}
	cfg = cfg.withDefaults()
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	b := &builder{cfg: cfg, x: X, y: y}
	root := b.grow(idx, 0)
	if cfg.CF < 1 {
		prune(root, cfg.CF)
	}
	return &Tree{root: root, dim: dim}, nil
}

type builder struct {
	cfg Config
	x   [][]float64
	y   []int
}

func (b *builder) grow(idx []int, depth int) *node {
	pos := 0
	for _, i := range idx {
		pos += b.y[i]
	}
	nd := &node{
		n:    len(idx),
		pos:  pos,
		prob: (float64(pos) + 1) / (float64(len(idx)) + 2),
	}
	if pos == 0 || pos == len(idx) ||
		len(idx) < 2*b.cfg.MinLeaf || depth >= b.cfg.MaxDepth {
		nd.leaf = true
		return nd
	}

	feature, threshold, ok := b.bestSplit(idx)
	if !ok {
		nd.leaf = true
		return nd
	}
	var left, right []int
	for _, i := range idx {
		if b.x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		nd.leaf = true
		return nd
	}
	nd.feature = feature
	nd.threshold = threshold
	nd.left = b.grow(left, depth+1)
	nd.right = b.grow(right, depth+1)
	return nd
}

// bestSplit scans every feature for the threshold maximizing gain ratio.
func (b *builder) bestSplit(idx []int) (feature int, threshold float64, ok bool) {
	dim := len(b.x[idx[0]])
	n := float64(len(idx))
	pos := 0
	for _, i := range idx {
		pos += b.y[i]
	}
	baseEntropy := entropy(float64(pos), n)

	type fv struct {
		v float64
		y int
	}
	vals := make([]fv, len(idx))
	bestRatio := 1e-9
	for f := 0; f < dim; f++ {
		for k, i := range idx {
			vals[k] = fv{v: b.x[i][f], y: b.y[i]}
		}
		sort.Slice(vals, func(a, c int) bool { return vals[a].v < vals[c].v })
		leftPos, leftN := 0.0, 0.0
		for k := 0; k < len(vals)-1; k++ {
			leftN++
			leftPos += float64(vals[k].y)
			if vals[k].v == vals[k+1].v {
				continue
			}
			if int(leftN) < b.cfg.MinLeaf || len(vals)-int(leftN) < b.cfg.MinLeaf {
				continue
			}
			rightN := n - leftN
			rightPos := float64(pos) - leftPos
			cond := (leftN/n)*entropy(leftPos, leftN) + (rightN/n)*entropy(rightPos, rightN)
			gain := baseEntropy - cond
			if gain <= 1e-12 {
				continue
			}
			splitInfo := entropy(leftN, n) // entropy of the {left,right} partition
			if splitInfo < 1e-9 {
				continue
			}
			ratio := gain / splitInfo
			if ratio > bestRatio {
				bestRatio = ratio
				feature = f
				threshold = (vals[k].v + vals[k+1].v) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// entropy returns the binary entropy of a subset with pos positives out
// of n samples, in bits.
func entropy(pos, n float64) float64 {
	if n <= 0 || pos <= 0 || pos >= n {
		return 0
	}
	p := pos / n
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// prune applies C4.5 subtree replacement bottom-up: a split is replaced
// by a leaf when the leaf's pessimistic error bound does not exceed the
// weighted bound of its children.
func prune(nd *node, cf float64) {
	if nd.leaf {
		return
	}
	prune(nd.left, cf)
	prune(nd.right, cf)

	subtreeErr := pessimisticSubtree(nd, cf)
	miscl := nd.pos
	if nd.pos*2 > nd.n {
		miscl = nd.n - nd.pos
	}
	leafErr := float64(nd.n) * pessimistic(float64(miscl), float64(nd.n), cf)
	if leafErr <= subtreeErr+0.1 {
		nd.leaf = true
		nd.left, nd.right = nil, nil
	}
}

func pessimisticSubtree(nd *node, cf float64) float64 {
	if nd.leaf {
		miscl := nd.pos
		if nd.pos*2 > nd.n {
			miscl = nd.n - nd.pos
		}
		return float64(nd.n) * pessimistic(float64(miscl), float64(nd.n), cf)
	}
	return pessimisticSubtree(nd.left, cf) + pessimisticSubtree(nd.right, cf)
}

// pessimistic returns the C4.5 upper confidence bound on the true error
// rate given e observed errors out of n, using the normal approximation
// to the binomial (Weka's errorEstimate).
func pessimistic(e, n, cf float64) float64 {
	if n == 0 {
		return 0
	}
	z := zScore(cf)
	f := e / n
	num := f + z*z/(2*n) + z*math.Sqrt(f/n-f*f/n+z*z/(4*n*n))
	den := 1 + z*z/n
	return num / den
}

// zScore approximates the standard normal quantile for upper-tail
// probability cf (cf=0.25 -> z≈0.674).
func zScore(cf float64) float64 {
	// Rational approximation (Abramowitz & Stegun 26.2.23).
	p := cf
	if p <= 0 {
		p = 1e-9
	}
	if p >= 1 {
		p = 1 - 1e-9
	}
	t := math.Sqrt(-2 * math.Log(p))
	return t - (2.30753+0.27061*t)/(1+0.99229*t+0.04481*t*t)
}

// Score returns the tree's positive-class probability for x.
func (t *Tree) Score(x []float64) float64 {
	if len(x) != t.dim {
		panic(fmt.Sprintf("j48: feature dim %d, trained with %d", len(x), t.dim))
	}
	nd := t.root
	for !nd.leaf {
		if x[nd.feature] <= nd.threshold {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.prob
}

// Predict returns the class (0 or 1) for x.
func (t *Tree) Predict(x []float64) int {
	if t.Score(x) > 0.5 {
		return 1
	}
	return 0
}

// Depth returns the height of the tree (a lone leaf has depth 0).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(nd *node) int {
	if nd.leaf {
		return 0
	}
	l, r := depth(nd.left), depth(nd.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return leaves(t.root) }

func leaves(nd *node) int {
	if nd.leaf {
		return 1
	}
	return leaves(nd.left) + leaves(nd.right)
}

// Dump renders the tree structure with feature names for inspection, one
// node per line, children indented.
func (t *Tree) Dump(featureNames []string) string {
	var b []byte
	var walk func(nd *node, depth int)
	walk = func(nd *node, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		if nd.leaf {
			b = appendf(b, "leaf n=%d p=%.3f\n", nd.n, nd.prob)
			return
		}
		name := "?"
		if nd.feature < len(featureNames) {
			name = featureNames[nd.feature]
		}
		b = appendf(b, "%s <= %.4f (n=%d)\n", name, nd.threshold, nd.n)
		walk(nd.left, depth+1)
		walk(nd.right, depth+1)
	}
	walk(t.root, 0)
	return string(b)
}

func appendf(b []byte, format string, args ...interface{}) []byte {
	return append(b, fmt.Sprintf(format, args...)...)
}

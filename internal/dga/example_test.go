package dga_test

import (
	"fmt"

	"repro/internal/dga"
)

func ExampleSequence() {
	// Two infected machines running the same malware derive the same
	// domain sequence from the shared campaign seed.
	hostA := dga.Sequence(dga.Conficker{TLDs: []string{"ws"}}, 42, 3)
	hostB := dga.Sequence(dga.Conficker{TLDs: []string{"ws"}}, 42, 3)
	fmt.Println(hostA[0] == hostB[0], hostA[1] == hostB[1], hostA[2] == hostB[2])
	// Output:
	// true true true
}

// Package dga implements domain generation algorithms in the styles the
// paper's cluster analysis surfaces (§7, Tables 1–2): a Conficker-like
// pseudo-random-letter generator over throwaway TLDs such as .ws, a
// wordlist-combination generator producing pronounceable spam domains on
// .bid, and a hash-hex generator typical of newer malware families.
//
// Each Generator is deterministic in (seed, index): two infected hosts
// running the same family with the same seed derive the same domain
// sequence, which is precisely the property that makes DGA domains
// cluster in the host-domain projection graph.
package dga

import (
	"fmt"

	"repro/internal/mathx"
)

// Generator produces the idx-th domain of a family's sequence for a given
// campaign seed. Implementations must be deterministic and safe for
// concurrent use.
type Generator interface {
	// Domain returns the idx-th generated e2LD (name plus TLD).
	Domain(seed uint64, idx int) string
	// Style is a short family-style tag used in reports ("conficker",
	// "wordlist", "hashhex").
	Style() string
}

// Conficker generates Conficker-style names: 8–12 pseudo-random lowercase
// letters on a rotating set of disposable TLDs (.ws, .cc, .info, ...).
type Conficker struct {
	// TLDs overrides the default TLD rotation when non-empty.
	TLDs []string
}

var _ Generator = Conficker{}

var confickerTLDs = []string{"ws", "info", "cc", "biz", "net"}

// Domain implements Generator.
func (c Conficker) Domain(seed uint64, idx int) string {
	rng := mathx.NewRNG(seed ^ uint64(idx)*0x9e3779b97f4a7c15)
	n := 8 + rng.Intn(5)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	tlds := c.TLDs
	if len(tlds) == 0 {
		tlds = confickerTLDs
	}
	return fmt.Sprintf("%s.%s", b, tlds[rng.Intn(len(tlds))])
}

// Style implements Generator.
func (Conficker) Style() string { return "conficker" }

// Wordlist generates spam-style pronounceable names by concatenating and
// lightly mutating dictionary fragments, echoing the .bid spam cluster in
// the paper's Table 1 (e.g. "fattylivercur.bid", "bstwoodprofit.bid").
type Wordlist struct {
	// TLD overrides the default ".bid" when non-empty.
	TLD string
}

var _ Generator = Wordlist{}

var wordFragments = []string{
	"fatty", "liver", "cur", "wood", "profit", "belly", "canvas", "solar",
	"turmeric", "uses", "flight", "gam", "holster", "permit", "nano",
	"clen", "cook", "nice", "easy", "amrica", "detect", "ger", "ankle",
	"tol", "spam", "deal", "cash", "loan", "diet", "trick", "fast",
	"muscle", "grow", "skin", "care", "miracl", "cure", "weight", "loss",
	"crypto", "gain", "win", "free", "gift", "card", "insur", "claim",
}

// Domain implements Generator.
func (w Wordlist) Domain(seed uint64, idx int) string {
	rng := mathx.NewRNG(seed ^ uint64(idx)*0xbf58476d1ce4e5b9)
	parts := 2 + rng.Intn(2)
	name := make([]byte, 0, 24)
	for i := 0; i < parts; i++ {
		name = append(name, wordFragments[rng.Intn(len(wordFragments))]...)
	}
	// Spammers drop or double letters to dodge exact-match blacklists.
	if len(name) > 6 && rng.Float64() < 0.5 {
		pos := 1 + rng.Intn(len(name)-2)
		if rng.Float64() < 0.5 {
			name = append(name[:pos], name[pos+1:]...) // drop
		} else {
			name = append(name[:pos+1], name[pos:]...) // double
		}
	}
	if len(name) > 20 {
		name = name[:20]
	}
	tld := w.TLD
	if tld == "" {
		tld = "bid"
	}
	return fmt.Sprintf("%s.%s", name, tld)
}

// Style implements Generator.
func (Wordlist) Style() string { return "wordlist" }

// HashHex generates hex-digest-style names (16 hex characters) on .top,
// typical of newer hash-based DGA families.
type HashHex struct{}

var _ Generator = HashHex{}

// Domain implements Generator.
func (HashHex) Domain(seed uint64, idx int) string {
	rng := mathx.NewRNG(seed ^ uint64(idx)*0x94d049bb133111eb)
	const hexDigits = "0123456789abcdef"
	b := make([]byte, 16)
	for i := range b {
		b[i] = hexDigits[rng.Intn(16)]
	}
	return fmt.Sprintf("%s.top", b)
}

// Style implements Generator.
func (HashHex) Style() string { return "hashhex" }

// Sequence returns the first n domains of g's sequence for seed,
// de-duplicated while preserving order (DGAs occasionally collide).
func Sequence(g Generator, seed uint64, n int) []string {
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for idx := 0; len(out) < n; idx++ {
		d := g.Domain(seed, idx)
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

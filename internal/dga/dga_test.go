package dga

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/etld"
)

var generators = []Generator{Conficker{}, Wordlist{}, HashHex{}}

func TestDeterminism(t *testing.T) {
	for _, g := range generators {
		for idx := 0; idx < 50; idx++ {
			a := g.Domain(12345, idx)
			b := g.Domain(12345, idx)
			if a != b {
				t.Errorf("%s: Domain(12345,%d) nondeterministic: %q vs %q", g.Style(), idx, a, b)
			}
		}
	}
}

func TestSeedsProduceDisjointSequences(t *testing.T) {
	for _, g := range generators {
		a := Sequence(g, 1, 100)
		b := Sequence(g, 2, 100)
		set := make(map[string]bool, len(a))
		for _, d := range a {
			set[d] = true
		}
		overlap := 0
		for _, d := range b {
			if set[d] {
				overlap++
			}
		}
		if overlap > 2 {
			t.Errorf("%s: seeds 1 and 2 overlap on %d/100 domains", g.Style(), overlap)
		}
	}
}

func TestDomainsAreValidE2LDs(t *testing.T) {
	for _, g := range generators {
		for _, d := range Sequence(g, 7, 200) {
			got, err := etld.E2LD(d)
			if err != nil {
				t.Fatalf("%s produced %q which has no e2LD: %v", g.Style(), d, err)
			}
			if got != d {
				t.Errorf("%s produced %q, not an e2LD (e2LD is %q)", g.Style(), d, got)
			}
		}
	}
}

func TestConfickerShape(t *testing.T) {
	for _, d := range Sequence(Conficker{}, 3, 100) {
		name, _, ok := strings.Cut(d, ".")
		if !ok {
			t.Fatalf("domain %q has no TLD", d)
		}
		if len(name) < 8 || len(name) > 12 {
			t.Errorf("conficker name %q length %d outside [8,12]", name, len(name))
		}
		for _, c := range name {
			if c < 'a' || c > 'z' {
				t.Errorf("conficker name %q contains non-letter %q", name, c)
			}
		}
	}
}

func TestConfickerCustomTLDs(t *testing.T) {
	g := Conficker{TLDs: []string{"ws"}}
	for _, d := range Sequence(g, 3, 50) {
		if !strings.HasSuffix(d, ".ws") {
			t.Errorf("domain %q not on .ws", d)
		}
	}
}

func TestWordlistShape(t *testing.T) {
	for _, d := range Sequence(Wordlist{}, 9, 100) {
		name, tld, _ := strings.Cut(d, ".")
		if tld != "bid" {
			t.Errorf("wordlist domain %q not on .bid", d)
		}
		if len(name) < 5 || len(name) > 20 {
			t.Errorf("wordlist name %q length %d outside [5,20]", name, len(name))
		}
	}
}

func TestHashHexShape(t *testing.T) {
	for _, d := range Sequence(HashHex{}, 11, 100) {
		name, tld, _ := strings.Cut(d, ".")
		if tld != "top" || len(name) != 16 {
			t.Errorf("hashhex domain %q malformed", d)
		}
		for _, c := range name {
			if !strings.ContainsRune("0123456789abcdef", c) {
				t.Errorf("hashhex name %q has non-hex rune %q", name, c)
			}
		}
	}
}

func TestSequenceUniqueAndOrdered(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		seq := Sequence(Conficker{}, seed, n)
		if len(seq) != n {
			return false
		}
		seen := make(map[string]bool)
		for _, d := range seq {
			if seen[d] {
				return false
			}
			seen[d] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConficker(b *testing.B) {
	g := Conficker{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Domain(42, i)
	}
}

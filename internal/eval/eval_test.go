package eval

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestPerfectSeparationAUC(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.2, 0.1}
	labels := []int{1, 1, 1, 0, 0}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1.0 {
		t.Errorf("AUC = %v, want 1.0", auc)
	}
}

func TestInvertedSeparationAUC(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.9, 0.8}
	labels := []int{1, 1, 0, 0}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.0 {
		t.Errorf("AUC = %v, want 0.0", auc)
	}
}

func TestRandomScoresAUCNearHalf(t *testing.T) {
	rng := mathx.NewRNG(4)
	n := 20000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2)
	}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.02 {
		t.Errorf("AUC on random scores = %v, want ≈0.5", auc)
	}
}

func TestTiedScoresHandled(t *testing.T) {
	// All scores equal: the curve is the diagonal, AUC 0.5 exactly.
	scores := []float64{1, 1, 1, 1}
	labels := []int{1, 0, 1, 0}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.5 {
		t.Errorf("AUC with all ties = %v, want exactly 0.5", auc)
	}
}

func TestROCEndpoints(t *testing.T) {
	scores := []float64{0.3, -0.2, 0.8, -0.9, 0.1}
	labels := []int{1, 0, 1, 0, 1}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Errorf("curve start = %+v, want origin", first)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("curve end = %+v, want (1,1)", last)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("curve not monotone at %d: %+v -> %+v", i, curve[i-1], curve[i])
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	if _, err := AUC([]float64{1, 2}, []int{1, 1}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("single class err = %v", err)
	}
	if _, err := ROC([]float64{1}, []int{1, 0}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// Property: AUC equals the Wilcoxon-Mann-Whitney probability that a
// random positive outscores a random negative (ties count half).
func TestAUCEqualsWMW(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 30 + rng.Intn(50)
		scores := make([]float64, n)
		labels := make([]int, n)
		hasPos, hasNeg := false, false
		for i := range scores {
			scores[i] = float64(rng.Intn(10)) // coarse scores force ties
			labels[i] = rng.Intn(2)
			if labels[i] == 1 {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		auc, err := AUC(scores, labels)
		if err != nil {
			return false
		}
		wins, ties, pairs := 0, 0, 0
		for i := range scores {
			if labels[i] != 1 {
				continue
			}
			for j := range scores {
				if labels[j] != 0 {
					continue
				}
				pairs++
				switch {
				case scores[i] > scores[j]:
					wins++
				case scores[i] == scores[j]:
					ties++
				}
			}
		}
		wmw := (float64(wins) + 0.5*float64(ties)) / float64(pairs)
		return math.Abs(auc-wmw) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConfusionMetrics(t *testing.T) {
	scores := []float64{1, 1, -1, -1, 1, -1}
	labels := []int{1, 1, 0, 0, 0, 1}
	c := Confusions(scores, labels)
	if c.TP != 2 || c.TN != 2 || c.FP != 1 || c.FN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if math.Abs(c.Accuracy()-4.0/6) > 1e-12 {
		t.Errorf("accuracy = %v", c.Accuracy())
	}
	if math.Abs(c.Precision()-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", c.Precision())
	}
	if math.Abs(c.Recall()-2.0/3) > 1e-12 {
		t.Errorf("recall = %v", c.Recall())
	}
	if math.Abs(c.F1()-2.0/3) > 1e-12 {
		t.Errorf("f1 = %v", c.F1())
	}
}

func TestConfusionZeroDivision(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Error("empty confusion should give all zeros")
	}
}

func TestFoldsAreStratifiedPartition(t *testing.T) {
	labels := make([]int, 100)
	for i := 0; i < 30; i++ {
		labels[i] = 1
	}
	folds, err := Folds(labels, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 10 {
		t.Fatalf("got %d folds", len(folds))
	}
	seen := make([]bool, 100)
	for _, f := range folds {
		pos := 0
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d appears in two folds", i)
			}
			seen[i] = true
			if labels[i] == 1 {
				pos++
			}
		}
		if pos != 3 {
			t.Errorf("fold has %d positives, want 3 (stratified)", pos)
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d missing from all folds", i)
		}
	}
}

func TestFoldsInvalidK(t *testing.T) {
	if _, err := Folds([]int{0, 1}, 1, 0); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := Folds([]int{0, 1}, 3, 0); err == nil {
		t.Error("k>n accepted")
	}
}

func TestCrossValidateScoresEverySampleOnce(t *testing.T) {
	labels := make([]int, 60)
	for i := range labels {
		labels[i] = i % 2
	}
	calls := 0
	scores, err := CrossValidate(labels, 6, 3, func(trainIdx []int) (func(int) float64, error) {
		calls++
		inTrain := make(map[int]bool, len(trainIdx))
		for _, i := range trainIdx {
			inTrain[i] = true
		}
		return func(i int) float64 {
			if inTrain[i] {
				t.Fatalf("scoring a training sample %d", i)
			}
			return float64(labels[i]) // oracle
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 6 {
		t.Fatalf("train called %d times, want 6", calls)
	}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1.0 {
		t.Errorf("oracle CV AUC = %v, want 1.0", auc)
	}
}

func TestCrossValidatePropagatesTrainError(t *testing.T) {
	labels := []int{0, 1, 0, 1}
	wantErr := errors.New("boom")
	_, err := CrossValidate(labels, 2, 0, func([]int) (func(int) float64, error) {
		return nil, wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

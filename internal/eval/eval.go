// Package eval implements the paper's evaluation methodology (§8):
// stratified k-fold cross-validation over the labeled domain set, ROC
// curves from classifier decision values, and the area under the curve
// (AUC) summary metric.
package eval

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/mathx"
)

// ROCPoint is one point of a receiver operating characteristic curve.
type ROCPoint struct {
	FPR       float64
	TPR       float64
	Threshold float64
}

// ErrDegenerate is returned when a metric is undefined because only one
// class is present.
var ErrDegenerate = errors.New("eval: need both classes present")

// ROC computes the ROC curve from decision scores and binary labels
// (1 = positive). Points are ordered from threshold +inf (0,0) to
// threshold -inf (1,1), with ties on score collapsed into single steps.
func ROC(scores []float64, labels []int) ([]ROCPoint, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("eval: %d scores vs %d labels", len(scores), len(labels))
	}
	pos, neg := 0, 0
	for _, l := range labels {
		if l == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, ErrDegenerate
	}
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })

	curve := []ROCPoint{{FPR: 0, TPR: 0}}
	tp, fp := 0, 0
	i := 0
	for i < len(order) {
		j := i
		// Consume all samples tied at this score together.
		for j < len(order) && scores[order[j]] == scores[order[i]] {
			if labels[order[j]] == 1 {
				tp++
			} else {
				fp++
			}
			j++
		}
		curve = append(curve, ROCPoint{
			FPR:       float64(fp) / float64(neg),
			TPR:       float64(tp) / float64(pos),
			Threshold: scores[order[i]],
		})
		i = j
	}
	return curve, nil
}

// AUC computes the area under the ROC curve by trapezoidal integration.
func AUC(scores []float64, labels []int) (float64, error) {
	curve, err := ROC(scores, labels)
	if err != nil {
		return 0, err
	}
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area, nil
}

// Confusion summarizes threshold-at-zero classification quality.
type Confusion struct {
	TP, FP, TN, FN int
}

// Confusions computes the confusion matrix at decision threshold 0.
func Confusions(scores []float64, labels []int) Confusion {
	var c Confusion
	for i, s := range scores {
		switch {
		case s > 0 && labels[i] == 1:
			c.TP++
		case s > 0:
			c.FP++
		case labels[i] == 1:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Accuracy returns (TP+TN)/total, or 0 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Folds partitions indices [0, n) into k stratified folds: each fold
// receives a proportional share of each class, after a seeded shuffle.
// Every index appears in exactly one fold.
func Folds(labels []int, k int, seed uint64) ([][]int, error) {
	n := len(labels)
	if k < 2 || k > n {
		return nil, fmt.Errorf("eval: k = %d invalid for %d samples", k, n)
	}
	rng := mathx.NewRNG(seed)
	byClass := make(map[int][]int)
	for i, l := range labels {
		byClass[l] = append(byClass[l], i)
	}
	folds := make([][]int, k)
	// Deterministic class order.
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for i, v := range idx {
			folds[i%k] = append(folds[i%k], v)
		}
	}
	for f := range folds {
		sort.Ints(folds[f])
	}
	return folds, nil
}

// CrossValidate runs k-fold CV: for each fold, train is called with the
// remaining folds' indices and returns a scoring function, which is then
// evaluated on the held-out fold. It returns the pooled out-of-fold
// scores aligned with labels (every sample scored exactly once by a model
// that never saw it).
func CrossValidate(labels []int, k int, seed uint64,
	train func(trainIdx []int) (score func(i int) float64, err error)) ([]float64, error) {

	folds, err := Folds(labels, k, seed)
	if err != nil {
		return nil, err
	}
	scores := make([]float64, len(labels))
	for fi, hold := range folds {
		var trainIdx []int
		for fj, f := range folds {
			if fj != fi {
				trainIdx = append(trainIdx, f...)
			}
		}
		score, err := train(trainIdx)
		if err != nil {
			return nil, fmt.Errorf("eval: fold %d: %w", fi, err)
		}
		for _, i := range hold {
			scores[i] = score(i)
		}
	}
	return scores, nil
}

package eval_test

import (
	"fmt"

	"repro/internal/eval"
)

func ExampleAUC() {
	scores := []float64{0.9, 0.7, 0.4, 0.2} // classifier decision values
	labels := []int{1, 1, 0, 0}             // ground truth
	auc, err := eval.AUC(scores, labels)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("AUC = %.2f\n", auc)
	// Output:
	// AUC = 1.00
}

func ExampleConfusions() {
	scores := []float64{1.2, -0.3, 0.8, -1.1}
	labels := []int{1, 1, 0, 0}
	c := eval.Confusions(scores, labels)
	fmt.Printf("precision=%.2f recall=%.2f\n", c.Precision(), c.Recall())
	// Output:
	// precision=0.50 recall=0.50
}

package eval

import (
	"fmt"
	"math"
)

// Clustering-quality metrics for the §7 cluster analysis: purity for the
// Table 1-2 style reports, and information-theoretic agreement measures
// for quantitative comparison of clusterings against ground-truth
// families.

// Purity returns the weighted fraction of points whose cluster's
// majority class matches their own class.
func Purity(assign []int, truth []int) (float64, error) {
	if len(assign) != len(truth) || len(assign) == 0 {
		return 0, fmt.Errorf("eval: purity needs equal non-empty slices")
	}
	counts := map[int]map[int]int{}
	for i, c := range assign {
		if counts[c] == nil {
			counts[c] = map[int]int{}
		}
		counts[c][truth[i]]++
	}
	right := 0
	for _, m := range counts {
		best := 0
		for _, n := range m {
			if n > best {
				best = n
			}
		}
		right += best
	}
	return float64(right) / float64(len(assign)), nil
}

// NMI returns the normalized mutual information between two labelings,
// normalized by the arithmetic mean of the entropies (in [0, 1]; 1 means
// identical partitions up to renaming, 0 means independence).
func NMI(a, b []int) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("eval: NMI needs equal non-empty slices")
	}
	n := float64(len(a))
	ca, cb := map[int]int{}, map[int]int{}
	joint := map[[2]int]int{}
	for i := range a {
		ca[a[i]]++
		cb[b[i]]++
		joint[[2]int{a[i], b[i]}]++
	}
	mi := 0.0
	for key, nij := range joint {
		pij := float64(nij) / n
		pi := float64(ca[key[0]]) / n
		pj := float64(cb[key[1]]) / n
		mi += pij * math.Log(pij/(pi*pj))
	}
	ha, hb := entropyOf(ca, n), entropyOf(cb, n)
	if ha == 0 && hb == 0 {
		return 1, nil // both labelings are constant: identical partitions
	}
	denom := (ha + hb) / 2
	if denom == 0 {
		return 0, nil
	}
	v := mi / denom
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v, nil
}

func entropyOf(counts map[int]int, n float64) float64 {
	h := 0.0
	for _, c := range counts {
		p := float64(c) / n
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// AdjustedRand returns the adjusted Rand index between two labelings
// (1 = identical partitions, ≈0 = chance agreement; can be negative).
func AdjustedRand(a, b []int) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("eval: ARI needs equal non-empty slices")
	}
	n := len(a)
	ca, cb := map[int]int{}, map[int]int{}
	joint := map[[2]int]int{}
	for i := range a {
		ca[a[i]]++
		cb[b[i]]++
		joint[[2]int{a[i], b[i]}]++
	}
	var sumJoint, sumA, sumB float64
	for _, nij := range joint {
		sumJoint += choose2(nij)
	}
	for _, ni := range ca {
		sumA += choose2(ni)
	}
	for _, nj := range cb {
		sumB += choose2(nj)
	}
	total := choose2(n)
	if total == 0 {
		return 1, nil
	}
	expected := sumA * sumB / total
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 1, nil // both partitions trivial in the same way
	}
	return (sumJoint - expected) / (maxIdx - expected), nil
}

func choose2(n int) float64 {
	return float64(n) * float64(n-1) / 2
}

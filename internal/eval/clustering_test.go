package eval

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestPurity(t *testing.T) {
	assign := []int{0, 0, 0, 1, 1, 1}
	truth := []int{7, 7, 8, 9, 9, 9}
	p, err := Purity(assign, truth)
	if err != nil {
		t.Fatal(err)
	}
	if want := 5.0 / 6; math.Abs(p-want) > 1e-12 {
		t.Errorf("purity = %v, want %v", p, want)
	}
	if _, err := Purity(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Purity([]int{1}, []int{1, 2}); err == nil {
		t.Error("mismatched input accepted")
	}
}

func TestNMIIdenticalPartitions(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{5, 5, 9, 9, 7, 7} // same partition, renamed
	v, err := NMI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-12 {
		t.Errorf("NMI of identical partitions = %v, want 1", v)
	}
	ari, err := AdjustedRand(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ari-1) > 1e-12 {
		t.Errorf("ARI of identical partitions = %v, want 1", ari)
	}
}

func TestNMIIndependentPartitions(t *testing.T) {
	// Large random independent labelings: NMI ≈ 0, ARI ≈ 0.
	rng := mathx.NewRNG(3)
	n := 20000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(4)
		b[i] = rng.Intn(4)
	}
	v, err := NMI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v > 0.01 {
		t.Errorf("NMI of independent labelings = %v, want ≈0", v)
	}
	ari, err := AdjustedRand(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ari) > 0.01 {
		t.Errorf("ARI of independent labelings = %v, want ≈0", ari)
	}
}

func TestNMIRefinement(t *testing.T) {
	// Splitting a true class into two clusters keeps purity at 1 but
	// lowers NMI below 1 — the metric penalizes over-segmentation.
	truth := []int{0, 0, 0, 0, 1, 1, 1, 1}
	split := []int{0, 0, 2, 2, 1, 1, 1, 1}
	p, err := Purity(split, truth)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("purity = %v, want 1", p)
	}
	v, err := NMI(split, truth)
	if err != nil {
		t.Fatal(err)
	}
	if v >= 1 {
		t.Errorf("NMI = %v, want < 1 for refinement", v)
	}
	if v < 0.5 {
		t.Errorf("NMI = %v, unreasonably low for a refinement", v)
	}
}

func TestClusteringMetricsDegenerate(t *testing.T) {
	constant := []int{1, 1, 1}
	v, err := NMI(constant, constant)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("NMI of constant labelings = %v, want 1", v)
	}
	if _, err := NMI([]int{1}, []int{1, 2}); err == nil {
		t.Error("mismatched NMI input accepted")
	}
	if _, err := AdjustedRand(nil, nil); err == nil {
		t.Error("empty ARI input accepted")
	}
}

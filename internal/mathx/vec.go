package mathx

import "math"

// Dot returns the inner product of a and b. It panics if the lengths
// differ, because a length mismatch is always a programming error in
// this codebase (feature vectors are fixed-width). The loop is four-way
// unrolled with independent accumulators so the multiplies pipeline; the
// summation order therefore differs from the naive left-to-right loop,
// which is fine everywhere Dot is used (results stay deterministic for a
// given binary).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	b = b[:len(a)] // bounds-check hint
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// SquaredDistance returns the squared Euclidean distance between a and b.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: SquaredDistance length mismatch")
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance between a and b.
func Distance(a, b []float64) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// SquaredNorm returns ‖v‖², the sum of squared components. Hot kernels
// cache it per vector so ‖x−y‖² = ‖x‖²+‖y‖²−2·x·y needs only one dot
// product per pair instead of a full subtract-square pass.
func SquaredNorm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 {
	return math.Sqrt(SquaredNorm(v))
}

// Normalize scales v in place to unit Euclidean norm. A zero vector is
// left unchanged.
func Normalize(v []float64) {
	n := Norm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// AddScaled performs dst += scale * src in place.
func AddScaled(dst []float64, scale float64, src []float64) {
	if len(dst) != len(src) {
		panic("mathx: AddScaled length mismatch")
	}
	for i, v := range src {
		dst[i] += scale * v
	}
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than
// two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Sigmoid returns 1/(1+e^-x) with clamping to avoid overflow.
func Sigmoid(x float64) float64 {
	switch {
	case x > 30:
		return 1
	case x < -30:
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// Sigmoid lookup table: 1024 uniform intervals over [−sigBound, sigBound]
// (1025 knots so interval i interpolates between knots i and i+1), the
// same bounded-table trick the reference LINE implementation uses to keep
// math.Exp out of the SGD inner loop.
const (
	sigBound     = 6.0
	sigIntervals = 1024
	sigScale     = sigIntervals / (2 * sigBound)
)

var sigTable = func() [sigIntervals + 1]float64 {
	var t [sigIntervals + 1]float64
	for i := range t {
		t[i] = Sigmoid(-sigBound + float64(i)/sigScale)
	}
	return t
}()

// FastSigmoid returns a linearly interpolated table lookup of the
// logistic function. Inside [−6, 6] the interpolation error is below
// 2e−6 (h²/8·max|σ″| with table step h ≈ 0.0117 and |σ″| ≤ 0.0963);
// outside it clamps to
// 0 or 1, so the worst-case absolute error is σ(−6) ≈ 2.5e−3 at the
// boundary — the same truncation the reference LINE implementation
// applies, and far below the gradient noise hogwild SGD already
// tolerates. NaN input clamps to 1 rather than propagating.
func FastSigmoid(x float64) float64 {
	if x <= -sigBound {
		return 0
	}
	if x >= sigBound || math.IsNaN(x) {
		return 1
	}
	f := (x + sigBound) * sigScale
	i := int(f)
	if i >= sigIntervals {
		// x one ulp below sigBound can still round (x+sigBound)*sigScale
		// up to exactly sigIntervals, which would read past the last
		// knot; treat it as the boundary clamp.
		return 1
	}
	frac := f - float64(i)
	return sigTable[i] + frac*(sigTable[i+1]-sigTable[i])
}

// ExpNeg returns e^x for x ≤ 0 with relative error below 1e−8, roughly
// 3× faster than math.Exp. It is the RBF kernel's exponential: kernel
// arguments are −γ‖x−y‖² ≤ 0, and a 1e−8 relative perturbation of a
// kernel value is orders of magnitude below the SMO tolerance (1e−3).
// The implementation is standard range reduction x = k·ln2 + r with
// |r| ≤ ln2/2, a degree-7 Taylor polynomial for e^r (truncation error
// ≤ |r|⁸/8! ≈ 5e−9 relative), and an exponent-field rebuild for the 2^k
// scale. The polynomial is evaluated in Estrin form — four independent
// linear terms combined through r² and r⁴ — which roughly halves the
// floating-point dependency chain versus Horner, and inputs already in
// [−ln2/2, 0] skip range reduction entirely (the common case for RBF
// arguments near 0). Positive inputs fall back to math.Exp.
func ExpNeg(x float64) float64 {
	// This two-branch wrapper stays under the inlining budget, so hot
	// callers evaluate the no-reduction case without a function call.
	if x > -halfLn2 && x <= 0 {
		return expPoly(x)
	}
	return expNegSlow(x)
}

// expNegSlow is the out-of-line remainder of ExpNeg: inputs that need
// range reduction, underflow to zero, or fall back to math.Exp.
func expNegSlow(x float64) float64 {
	if x >= 0 {
		if x == 0 {
			return 1
		}
		return math.Exp(x)
	}
	if x < -708 { // e^x underflows float64
		return 0
	}
	const (
		invLn2 = 1.44269504088896338700e+00
		ln2Hi  = 6.93147180369123816490e-01
		ln2Lo  = 1.90821492927058770002e-10
	)
	kf := math.Floor(x*invLn2 + 0.5)
	r := (x - kf*ln2Hi) - kf*ln2Lo
	p := expPoly(r)
	k := int(kf)
	if k < -1022 {
		// Subnormal result range: delegate the tricky scaling.
		return math.Ldexp(p, k)
	}
	return p * math.Float64frombits(uint64(1023+k)<<52)
}

const halfLn2 = 0.34657359027997264 // ln2/2, the range-reduction radius

// expPoly evaluates the degree-7 Taylor polynomial of e^r for
// |r| ≤ ln2/2 in Estrin form.
func expPoly(r float64) float64 {
	r2 := r * r
	r4 := r2 * r2
	q01 := 1 + r
	q23 := 1.0/2 + r*(1.0/6)
	q45 := 1.0/24 + r*(1.0/120)
	q67 := 1.0/720 + r*(1.0/5040)
	return (q01 + r2*q23) + r4*(q45+r2*q67)
}

// Concat returns the concatenation of the given vectors as one new slice.
func Concat(vs ...[]float64) []float64 {
	n := 0
	for _, v := range vs {
		n += len(v)
	}
	out := make([]float64, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

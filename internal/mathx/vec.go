package mathx

import "math"

// Dot returns the inner product of a and b. It panics if the lengths
// differ, because a length mismatch is always a programming error in
// this codebase (feature vectors are fixed-width).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// SquaredDistance returns the squared Euclidean distance between a and b.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: SquaredDistance length mismatch")
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance between a and b.
func Distance(a, b []float64) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Normalize scales v in place to unit Euclidean norm. A zero vector is
// left unchanged.
func Normalize(v []float64) {
	n := Norm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// AddScaled performs dst += scale * src in place.
func AddScaled(dst []float64, scale float64, src []float64) {
	if len(dst) != len(src) {
		panic("mathx: AddScaled length mismatch")
	}
	for i, v := range src {
		dst[i] += scale * v
	}
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than
// two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Sigmoid returns 1/(1+e^-x) with clamping to avoid overflow.
func Sigmoid(x float64) float64 {
	switch {
	case x > 30:
		return 1
	case x < -30:
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// Concat returns the concatenation of the given vectors as one new slice.
func Concat(vs ...[]float64) []float64 {
	n := 0
	for _, v := range vs {
		n += len(v)
	}
	out := make([]float64, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

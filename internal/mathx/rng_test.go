package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/1000 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling child streams produced the same first value")
	}
}

func TestSplitLabeledStable(t *testing.T) {
	a := NewRNG(9).SplitLabeled("line")
	b := NewRNG(9).SplitLabeled("line")
	c := NewRNG(9).SplitLabeled("svm")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same label produced different streams")
	}
	a2 := NewRNG(9).SplitLabeled("line")
	if a2.Uint64() == c.Uint64() {
		t.Fatal("different labels produced the same stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d far from expected %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(17)
	for _, mean := range []float64{0.5, 3, 20, 100, 500} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.1 {
			t.Errorf("Poisson(%v) sample mean %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	r := NewRNG(1)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid or duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(29)
	z := NewZipf(1000, 1.0)
	const draws = 50000
	counts := make([]int, 1000)
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] < counts[500]*10 {
		t.Errorf("Zipf not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
	for rank, c := range counts {
		_ = rank
		if c < 0 {
			t.Fatal("negative count")
		}
	}
}

func TestZipfSampleInRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		z := NewZipf(17, 1.2)
		for i := 0; i < 100; i++ {
			v := z.Sample(r)
			if v < 0 || v >= 17 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

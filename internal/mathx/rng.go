// Package mathx provides small numeric building blocks shared across the
// repository: a deterministic splittable random number generator, dense
// vector operations, and summary statistics.
//
// Every stochastic component in this module (traffic generation, LINE
// embedding, SVM shuffling, k-means seeding, t-SNE) draws randomness from
// mathx.RNG so that experiments are reproducible from a single 64-bit seed.
package mathx

import (
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random number generator based on
// splitmix64. It is small, fast, and splittable: independent child
// streams can be derived with Split, which is how subsystems obtain
// decorrelated randomness from one experiment seed.
//
// RNG is not safe for concurrent use; derive one stream per goroutine
// with Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds yield
// decorrelated streams; a zero seed is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child stream. The child's sequence does
// not overlap the parent's for any practical sample count, and the
// parent advances by one step so successive Split calls differ.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() * 0x9e3779b97f4a7c15}
}

// SplitLabeled derives a child stream bound to a caller-chosen label so
// that the same logical component receives the same stream regardless of
// the order in which sibling components are initialized.
func (r *RNG) SplitLabeled(label string) *RNG {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return &RNG{state: r.state ^ h ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the polar
// Marsaglia method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson variate with the given mean. For large
// means it uses a normal approximation, which is adequate for traffic
// volume modeling.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := mean + math.Sqrt(mean)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	// Knuth's product-of-uniforms method.
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Zipf samples ranks in [0, n) following a Zipf distribution with
// exponent s, using precomputed cumulative weights. Construct once and
// sample many times.
type Zipf struct {
	cum []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
// Rank 0 is the most popular.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("mathx: NewZipf called with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum}
}

// Sample draws one rank.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

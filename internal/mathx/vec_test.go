package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDot(t *testing.T) {
	tests := []struct {
		a, b []float64
		want float64
	}{
		{nil, nil, 0},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{-1, 1}, []float64{1, 1}, 0},
	}
	for _, tt := range tests {
		if got := Dot(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Dot(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestDistance(t *testing.T) {
	if got := Distance([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Distance = %v, want 5", got)
	}
}

// bound maps arbitrary quick-generated floats into a finite range so that
// intermediate squares cannot overflow.
func bound(v [4]float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = math.Mod(x, 1e6)
		if math.IsNaN(out[i]) {
			out[i] = 0
		}
	}
	return out
}

func TestDistanceProperties(t *testing.T) {
	f := func(a, b [4]float64) bool {
		x, y := bound(a), bound(b)
		d1 := Distance(x, y)
		d2 := Distance(y, x)
		return d1 >= 0 && almostEqual(d1, d2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		x, y, z := bound(a), bound(b), bound(c)
		ab := Distance(x, y)
		bc := Distance(y, z)
		ac := Distance(x, z)
		return ac <= ab+bc+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	Normalize(v)
	if !almostEqual(Norm(v), 1, 1e-12) {
		t.Errorf("norm after Normalize = %v, want 1", Norm(v))
	}
	zero := []float64{0, 0}
	Normalize(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Error("Normalize modified the zero vector")
	}
}

func TestAddScaled(t *testing.T) {
	dst := []float64{1, 2}
	AddScaled(dst, 2, []float64{10, 20})
	if dst[0] != 21 || dst[1] != 42 {
		t.Errorf("AddScaled result %v, want [21 42]", dst)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Sigmoid(0) = %v, want 0.5", got)
	}
	if Sigmoid(100) != 1 {
		t.Error("Sigmoid should saturate to 1")
	}
	if Sigmoid(-100) != 0 {
		t.Error("Sigmoid should saturate to 0")
	}
}

func TestSigmoidMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return Sigmoid(a) <= Sigmoid(b)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcat(t *testing.T) {
	got := Concat([]float64{1}, nil, []float64{2, 3})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Concat = %v", got)
	}
	// Mutating the result must not alias the inputs.
	a := []float64{9}
	out := Concat(a)
	out[0] = 1
	if a[0] != 9 {
		t.Error("Concat aliased its input")
	}
}

package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDot(t *testing.T) {
	tests := []struct {
		a, b []float64
		want float64
	}{
		{nil, nil, 0},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{-1, 1}, []float64{1, 1}, 0},
	}
	for _, tt := range tests {
		if got := Dot(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Dot(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestDistance(t *testing.T) {
	if got := Distance([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Distance = %v, want 5", got)
	}
}

// bound maps arbitrary quick-generated floats into a finite range so that
// intermediate squares cannot overflow.
func bound(v [4]float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = math.Mod(x, 1e6)
		if math.IsNaN(out[i]) {
			out[i] = 0
		}
	}
	return out
}

func TestDistanceProperties(t *testing.T) {
	f := func(a, b [4]float64) bool {
		x, y := bound(a), bound(b)
		d1 := Distance(x, y)
		d2 := Distance(y, x)
		return d1 >= 0 && almostEqual(d1, d2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		x, y, z := bound(a), bound(b), bound(c)
		ab := Distance(x, y)
		bc := Distance(y, z)
		ac := Distance(x, z)
		return ac <= ab+bc+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	Normalize(v)
	if !almostEqual(Norm(v), 1, 1e-12) {
		t.Errorf("norm after Normalize = %v, want 1", Norm(v))
	}
	zero := []float64{0, 0}
	Normalize(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Error("Normalize modified the zero vector")
	}
}

func TestAddScaled(t *testing.T) {
	dst := []float64{1, 2}
	AddScaled(dst, 2, []float64{10, 20})
	if dst[0] != 21 || dst[1] != 42 {
		t.Errorf("AddScaled result %v, want [21 42]", dst)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Sigmoid(0) = %v, want 0.5", got)
	}
	if Sigmoid(100) != 1 {
		t.Error("Sigmoid should saturate to 1")
	}
	if Sigmoid(-100) != 0 {
		t.Error("Sigmoid should saturate to 0")
	}
}

func TestSigmoidMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return Sigmoid(a) <= Sigmoid(b)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotMatchesNaiveLoop(t *testing.T) {
	// The unrolled Dot reassociates the sum; it must stay within a tight
	// tolerance of the sequential reference for all lengths, including
	// the remainder tail (len % 4 != 0).
	rng := NewRNG(5)
	for n := 0; n <= 13; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		want := 0.0
		for i := range a {
			want += a[i] * b[i]
		}
		if got := Dot(a, b); !almostEqual(got, want, 1e-12*(1+math.Abs(want))) {
			t.Errorf("len %d: Dot = %v, naive = %v", n, got, want)
		}
	}
}

func TestSquaredNorm(t *testing.T) {
	if got := SquaredNorm([]float64{3, 4}); !almostEqual(got, 25, 1e-12) {
		t.Errorf("SquaredNorm = %v, want 25", got)
	}
	if SquaredNorm(nil) != 0 {
		t.Error("SquaredNorm(nil) != 0")
	}
}

func TestFastSigmoidErrorBound(t *testing.T) {
	// Documented bound: < 2e-6 inside [-6, 6] (h²/8·max|σ″|), and the
	// clamp error at the boundary is sigma(-6) ≈ 2.5e-3.
	for x := -5.9995; x < 6.0; x += 1e-3 {
		if diff := math.Abs(FastSigmoid(x) - Sigmoid(x)); diff > 2e-6 {
			t.Fatalf("FastSigmoid(%v) off by %v, want < 2e-6", x, diff)
		}
	}
	// At the clamp boundary the absolute error is sigma(-6) ≈ 2.5e-3.
	if diff := math.Abs(FastSigmoid(-6) - Sigmoid(-6)); diff > 2.5e-3 {
		t.Errorf("clamp error at -6 is %v, want <= 2.5e-3", diff)
	}
	if FastSigmoid(-100) != 0 || FastSigmoid(100) != 1 {
		t.Error("FastSigmoid should clamp outside the table")
	}
	if FastSigmoid(-6) != 0 || FastSigmoid(6) != 1 {
		t.Error("FastSigmoid boundary values should clamp")
	}
	if got := FastSigmoid(0); !almostEqual(got, 0.5, 1e-9) {
		t.Errorf("FastSigmoid(0) = %v, want 0.5", got)
	}
}

func TestFastSigmoidBoundary(t *testing.T) {
	// Regression: x one ulp inside the table bound passes the clamp
	// check but (x+sigBound)*sigScale can round up to exactly the knot
	// count, which used to index one past the end of the table.
	x, y := 6.0, -6.0
	for i := 0; i < 64; i++ {
		for _, v := range []float64{x, y} {
			got := FastSigmoid(v)
			if diff := math.Abs(got - Sigmoid(v)); diff > 2.5e-3 {
				t.Fatalf("FastSigmoid(%v) = %v, off by %v, want <= 2.5e-3", v, got, diff)
			}
		}
		x = math.Nextafter(x, -1)
		y = math.Nextafter(y, 1)
	}
}

func TestFastSigmoidMonotone(t *testing.T) {
	prev := -1.0
	for x := -7.0; x <= 7.0; x += 1e-3 {
		v := FastSigmoid(x)
		if v < prev {
			t.Fatalf("FastSigmoid not monotone at %v: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestExpNegAccuracy(t *testing.T) {
	// Documented bound: relative error below 1e-8 for x <= 0.
	for x := -700.0; x <= 0; x += 0.37 {
		got, want := ExpNeg(x), math.Exp(x)
		if want == 0 {
			continue
		}
		if rel := math.Abs(got-want) / want; rel > 1e-8 {
			t.Fatalf("ExpNeg(%v) relative error %v, want < 1e-8", x, rel)
		}
	}
	if ExpNeg(0) != 1 {
		t.Error("ExpNeg(0) != 1")
	}
	if ExpNeg(-1000) != 0 {
		t.Error("ExpNeg(-1000) should underflow to 0")
	}
	// Positive inputs fall back to math.Exp exactly.
	if ExpNeg(2.5) != math.Exp(2.5) {
		t.Error("ExpNeg positive fallback mismatch")
	}
}

func TestExpNegSubnormalRange(t *testing.T) {
	// k < -1022 takes the Ldexp path; spot-check it stays finite and
	// close to math.Exp.
	for _, x := range []float64{-690, -700, -705, -708} {
		got, want := ExpNeg(x), math.Exp(x)
		if got < 0 || math.IsNaN(got) {
			t.Fatalf("ExpNeg(%v) = %v", x, got)
		}
		if want > 0 {
			if rel := math.Abs(got-want) / want; rel > 1e-6 {
				t.Fatalf("ExpNeg(%v) relative error %v in subnormal range", x, rel)
			}
		}
	}
}

func TestConcat(t *testing.T) {
	got := Concat([]float64{1}, nil, []float64{2, 3})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Concat = %v", got)
	}
	// Mutating the result must not alias the inputs.
	a := []float64{9}
	out := Concat(a)
	out[0] = 1
	if a[0] != 9 {
		t.Error("Concat aliased its input")
	}
}

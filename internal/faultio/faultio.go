// Package faultio is the injectable I/O fault seam used by every
// persistence test in the repository: writers that fail cleanly, tear,
// or silently shorten mid-stream, readers that error after N bytes, and
// a small filesystem abstraction whose fault-wrapping implementation
// injects create/sync/rename/close failures into atomic-write code
// paths.
//
// Production code depends only on the FS interface (through the OS
// implementation); tests substitute Faults to prove that a persistence
// layer survives torn writes, full disks, and crashed renames without
// corrupting the previous on-disk state.
package faultio

import (
	"errors"
	"io"
	"os"
)

// ErrInjected is the sentinel returned (possibly wrapped) by every
// injected fault, so tests can errors.Is their way to the cause.
var ErrInjected = errors.New("faultio: injected fault")

// FailWriter returns a writer that passes through the first limit bytes
// and then fails every subsequent call with ErrInjected, writing
// nothing more: a clean write error at a byte boundary (disk full,
// revoked descriptor).
func FailWriter(w io.Writer, limit int64) io.Writer {
	return &limitWriter{w: w, left: limit, torn: false}
}

// TornWriter is like FailWriter, but the failing call first writes
// whatever budget remains before reporting ErrInjected: part of the
// buffer lands in the file, the rest is lost — a torn write, the shape a
// power cut leaves behind.
func TornWriter(w io.Writer, limit int64) io.Writer {
	return &limitWriter{w: w, left: limit, torn: true}
}

type limitWriter struct {
	w    io.Writer
	left int64
	torn bool
}

func (lw *limitWriter) Write(p []byte) (int, error) {
	if int64(len(p)) <= lw.left {
		n, err := lw.w.Write(p)
		lw.left -= int64(n)
		return n, err
	}
	n := 0
	if lw.torn && lw.left > 0 {
		var err error
		n, err = lw.w.Write(p[:lw.left])
		lw.left -= int64(n)
		if err != nil {
			return n, err
		}
	} else {
		lw.left = 0
	}
	return n, ErrInjected
}

// ShortWriter returns a writer that passes through the first limit
// bytes, then performs one contract-violating short write (n < len(p)
// with a nil error — the shape of a buggy or lying device driver) and
// hard-fails every call after that with ErrInjected. Robust callers
// must detect the shortfall (bufio.Writer turns a short flush into
// io.ErrShortWrite); the trailing hard failure keeps retry loops from
// spinning forever on a writer that never makes progress.
func ShortWriter(w io.Writer, limit int64) io.Writer {
	return &shortWriter{w: w, left: limit}
}

type shortWriter struct {
	w    io.Writer
	left int64 // -1 once the short write has happened
}

func (sw *shortWriter) Write(p []byte) (int, error) {
	if sw.left < 0 {
		return 0, ErrInjected
	}
	if int64(len(p)) <= sw.left {
		n, err := sw.w.Write(p)
		sw.left -= int64(n)
		return n, err
	}
	n := int(sw.left)
	if n > 0 {
		var err error
		n, err = sw.w.Write(p[:n])
		if err != nil {
			sw.left -= int64(n)
			return n, err
		}
	}
	sw.left = -1
	return n, nil
}

// FailReader returns a reader that yields the first limit bytes of r
// and then fails with ErrInjected: mid-stream I/O error, the read-side
// twin of FailWriter. Truncation (EOF instead of an error) is modeled
// by plain io.LimitReader.
func FailReader(r io.Reader, limit int64) io.Reader {
	return &failReader{r: r, left: limit}
}

type failReader struct {
	r    io.Reader
	left int64
}

func (fr *failReader) Read(p []byte) (int, error) {
	if fr.left == 0 {
		return 0, ErrInjected
	}
	if int64(len(p)) > fr.left {
		p = p[:fr.left]
	}
	n, err := fr.r.Read(p)
	fr.left -= int64(n)
	if errors.Is(err, io.EOF) && fr.left > 0 {
		// The underlying stream ended before the injection point; let
		// EOF through so short underlying data still reads normally.
		return n, err
	}
	if err != nil {
		return n, err
	}
	return n, nil
}

// FS abstracts the filesystem operations an atomic temp-file-and-rename
// persistence path needs. Production code uses OS; tests wrap it in
// Faults to inject failures at any step.
type FS interface {
	// CreateTemp creates a new unique file in dir (os.CreateTemp
	// semantics: pattern's final "*" is replaced by a random string).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file; used for cleanup after failed writes.
	Remove(name string) error
}

// File is the write handle CreateTemp returns.
type File interface {
	io.Writer
	// Name returns the file's path.
	Name() string
	// Sync flushes the file's contents to stable storage.
	Sync() error
	// Close closes the file.
	Close() error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

// Faults wraps an inner FS (default OS) and injects failures. Each
// boolean arms one failure site; WrapWriter, when set, wraps every
// created file's write path (compose with FailWriter, TornWriter, or
// ShortWriter to fail mid-stream).
type Faults struct {
	// Inner is the filesystem faults are injected into; nil means OS.
	Inner FS
	// FailCreate makes CreateTemp fail.
	FailCreate bool
	// FailRename makes Rename fail, leaving oldpath in place.
	FailRename bool
	// FailSync makes File.Sync fail.
	FailSync bool
	// FailClose makes File.Close fail (after closing the real file, so
	// no descriptors leak in tests).
	FailClose bool
	// WrapWriter, when non-nil, wraps each created file's writes.
	WrapWriter func(io.Writer) io.Writer

	// Renames counts successful Rename calls, so tests can assert
	// whether a failed persistence attempt ever reached the commit step.
	Renames int
}

func (f *Faults) inner() FS {
	if f.Inner == nil {
		return OS
	}
	return f.Inner
}

// CreateTemp implements FS.
func (f *Faults) CreateTemp(dir, pattern string) (File, error) {
	if f.FailCreate {
		return nil, ErrInjected
	}
	file, err := f.inner().CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	ff := &faultFile{File: file, w: io.Writer(file), faults: f}
	if f.WrapWriter != nil {
		ff.w = f.WrapWriter(file)
	}
	return ff, nil
}

// Rename implements FS.
func (f *Faults) Rename(oldpath, newpath string) error {
	if f.FailRename {
		return ErrInjected
	}
	if err := f.inner().Rename(oldpath, newpath); err != nil {
		return err
	}
	f.Renames++
	return nil
}

// Remove implements FS.
func (f *Faults) Remove(name string) error { return f.inner().Remove(name) }

type faultFile struct {
	File
	w      io.Writer
	faults *Faults
}

func (ff *faultFile) Write(p []byte) (int, error) { return ff.w.Write(p) }

func (ff *faultFile) Sync() error {
	if ff.faults.FailSync {
		return ErrInjected
	}
	return ff.File.Sync()
}

func (ff *faultFile) Close() error {
	err := ff.File.Close()
	if ff.faults.FailClose {
		return ErrInjected
	}
	return err
}

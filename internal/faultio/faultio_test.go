package faultio

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFailWriter(t *testing.T) {
	var buf bytes.Buffer
	w := FailWriter(&buf, 5)
	if n, err := w.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("within budget: n=%d err=%v", n, err)
	}
	// The crossing call fails cleanly: nothing of it is written.
	if n, err := w.Write([]byte("defg")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing call: n=%d err=%v", n, err)
	}
	if n, err := w.Write([]byte("h")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-fault call: n=%d err=%v", n, err)
	}
	if got := buf.String(); got != "abc" {
		t.Fatalf("underlying got %q, want %q", got, "abc")
	}
}

func TestTornWriter(t *testing.T) {
	var buf bytes.Buffer
	w := TornWriter(&buf, 5)
	if n, err := w.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("within budget: n=%d err=%v", n, err)
	}
	// The crossing call writes the remaining budget, then fails.
	if n, err := w.Write([]byte("defg")); n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing call: n=%d err=%v", n, err)
	}
	if got := buf.String(); got != "abcde" {
		t.Fatalf("underlying got %q, want %q", got, "abcde")
	}
	if n, err := w.Write([]byte("h")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-fault call: n=%d err=%v", n, err)
	}
}

func TestShortWriter(t *testing.T) {
	var buf bytes.Buffer
	w := ShortWriter(&buf, 5)
	// The crossing call lies: partial write, nil error.
	if n, err := w.Write([]byte("abcdefg")); n != 5 || err != nil {
		t.Fatalf("crossing call: n=%d err=%v", n, err)
	}
	// After the lie, the writer hard-fails so callers can't spin.
	if n, err := w.Write([]byte("h")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-budget call: n=%d err=%v", n, err)
	}
	if got := buf.String(); got != "abcde" {
		t.Fatalf("underlying got %q, want %q", got, "abcde")
	}
}

func TestFailReader(t *testing.T) {
	r := FailReader(strings.NewReader("abcdefgh"), 5)
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(got) != "abcde" {
		t.Fatalf("read %q before fault, want %q", got, "abcde")
	}

	// Underlying data shorter than the injection point: plain EOF.
	r = FailReader(strings.NewReader("ab"), 5)
	got, err = io.ReadAll(r)
	if err != nil || string(got) != "ab" {
		t.Fatalf("short underlying: got %q err=%v", got, err)
	}
}

// writeVia runs the canonical atomic-write sequence (create temp,
// write, sync, close, rename) against fs, the sequence the fault cases
// below interrupt at every step.
func writeVia(fs FS, path string, data []byte) error {
	f, err := fs.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = fs.Remove(f.Name())
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fs.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(f.Name())
		return err
	}
	if err := fs.Rename(f.Name(), path); err != nil {
		_ = fs.Remove(f.Name())
		return err
	}
	return nil
}

func TestOSFSAtomicWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bin")
	if err := writeVia(OS, path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read back %q err=%v", got, err)
	}
}

func TestFaultsEachStep(t *testing.T) {
	cases := []struct {
		name   string
		faults *Faults
	}{
		{"create", &Faults{FailCreate: true}},
		{"write", &Faults{WrapWriter: func(w io.Writer) io.Writer { return FailWriter(w, 1) }}},
		{"torn", &Faults{WrapWriter: func(w io.Writer) io.Writer { return TornWriter(w, 1) }}},
		{"sync", &Faults{FailSync: true}},
		{"close", &Faults{FailClose: true}},
		{"rename", &Faults{FailRename: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "state.bin")
			if err := writeVia(OS, path, []byte("previous")); err != nil {
				t.Fatal(err)
			}
			err := writeVia(tc.faults, path, []byte("next-generation"))
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("fault not surfaced: err=%v", err)
			}
			if tc.faults.Renames != 0 {
				t.Error("failed write still reached the rename step")
			}
			// The previous generation survives every fault.
			got, rerr := os.ReadFile(path)
			if rerr != nil || string(got) != "previous" {
				t.Fatalf("previous state damaged: %q err=%v", got, rerr)
			}
			// No temp litter except where cleanup itself was impossible.
			ents, _ := os.ReadDir(dir)
			if len(ents) != 1 {
				t.Errorf("temp file leaked: %d entries in dir", len(ents))
			}
		})
	}
}

// TestShortWriteDetectedByBufio documents the contract the checkpoint
// writer relies on: a lying short writer is surfaced as
// io.ErrShortWrite by bufio at flush time.
func TestShortWriteDetectedByBufio(t *testing.T) {
	var sink bytes.Buffer
	sw := ShortWriter(&sink, 3)
	bw := bufio.NewWriterSize(sw, 16)
	if _, err := bw.Write([]byte("xxxxxxxx")); err != nil {
		t.Fatalf("buffered write failed early: %v", err)
	}
	if err := bw.Flush(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("flush err = %v, want io.ErrShortWrite", err)
	}
}

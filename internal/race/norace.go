//go:build !race

package race

// Enabled is true when the build has race detection instrumentation.
const Enabled = false

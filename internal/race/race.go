//go:build race

// Package race reports whether the binary was built with the race
// detector, mirroring the runtime-internal convention. Heavyweight
// end-to-end tests consult Enabled to skip model builds that would
// exceed the default per-package test timeout under instrumentation;
// the concurrent components themselves (bipartite projection, LINE
// SGD, x-means workers) have fast package-level tests that always run
// under -race.
package race

// Enabled is true when the build has race detection instrumentation.
const Enabled = true

// Package tsne implements exact t-distributed stochastic neighbor
// embedding (van der Maaten & Hinton, JMLR 2008), used by the paper to
// project domain embeddings to two dimensions for the cluster
// visualization of Figure 5 (§7.3).
//
// The implementation follows the reference algorithm: Gaussian input
// affinities with per-point bandwidths found by binary search to match a
// target perplexity, symmetrized and normalized; Student-t output
// affinities; KL-divergence gradient descent with momentum, adaptive
// gains, and early exaggeration. Exact O(n²) computation is appropriate
// at the few-hundred-point scale of the paper's figure.
package tsne

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/mathx"
)

// Config parameterizes the embedding.
type Config struct {
	// Perplexity is the effective neighbor count (default 30, clamped to
	// (n-1)/3 when the input is small).
	Perplexity float64
	// Iterations of gradient descent (default 500).
	Iterations int
	// LearningRate (default 100).
	LearningRate float64
	// Seed drives the initial layout.
	Seed uint64
}

func (c Config) withDefaults(n int) Config {
	if c.Perplexity <= 0 {
		c.Perplexity = 30
	}
	if max := float64(n-1) / 3; c.Perplexity > max && max >= 2 {
		c.Perplexity = max
	}
	if c.Iterations <= 0 {
		c.Iterations = 500
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 100
	}
	return c
}

// ErrTooFewPoints is returned for inputs with fewer than 4 points.
var ErrTooFewPoints = errors.New("tsne: need at least 4 points")

// Embed projects points to 2-D.
func Embed(points [][]float64, cfg Config) ([][2]float64, error) {
	n := len(points)
	if n < 4 {
		return nil, ErrTooFewPoints
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("tsne: inconsistent dimensions")
		}
	}
	cfg = cfg.withDefaults(n)

	P := affinities(points, cfg.Perplexity)
	// Early exaggeration.
	for i := range P {
		P[i] *= 4
	}

	rng := mathx.NewRNG(cfg.Seed)
	Y := make([][2]float64, n)
	for i := range Y {
		Y[i][0] = 1e-4 * rng.NormFloat64()
		Y[i][1] = 1e-4 * rng.NormFloat64()
	}

	var (
		dY    = make([][2]float64, n)
		velo  = make([][2]float64, n)
		gains = make([][2]float64, n)
		Q     = make([]float64, n*n)
	)
	for i := range gains {
		gains[i] = [2]float64{1, 1}
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		if iter == 100 {
			for i := range P {
				P[i] /= 4 // end early exaggeration
			}
		}
		// Student-t output affinities.
		sumQ := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := Y[i][0] - Y[j][0]
				dy := Y[i][1] - Y[j][1]
				q := 1 / (1 + dx*dx + dy*dy)
				Q[i*n+j] = q
				Q[j*n+i] = q
				sumQ += 2 * q
			}
		}
		if sumQ < 1e-12 {
			sumQ = 1e-12
		}
		// Gradient.
		for i := 0; i < n; i++ {
			gx, gy := 0.0, 0.0
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				q := Q[i*n+j]
				mult := (P[i*n+j] - q/sumQ) * q
				gx += mult * (Y[i][0] - Y[j][0])
				gy += mult * (Y[i][1] - Y[j][1])
			}
			dY[i][0] = 4 * gx
			dY[i][1] = 4 * gy
		}
		momentum := 0.5
		if iter >= 250 {
			momentum = 0.8
		}
		for i := 0; i < n; i++ {
			for d := 0; d < 2; d++ {
				if (dY[i][d] > 0) != (velo[i][d] > 0) {
					gains[i][d] += 0.2
				} else {
					gains[i][d] *= 0.8
				}
				if gains[i][d] < 0.01 {
					gains[i][d] = 0.01
				}
				velo[i][d] = momentum*velo[i][d] - cfg.LearningRate*gains[i][d]*dY[i][d]
				Y[i][d] += velo[i][d]
			}
		}
		// Re-center.
		var mx, my float64
		for i := range Y {
			mx += Y[i][0]
			my += Y[i][1]
		}
		mx /= float64(n)
		my /= float64(n)
		for i := range Y {
			Y[i][0] -= mx
			Y[i][1] -= my
		}
	}
	return Y, nil
}

// affinities computes the symmetrized, normalized joint distribution P
// with per-point bandwidths matched to the target perplexity.
func affinities(points [][]float64, perplexity float64) []float64 {
	n := len(points)
	d2 := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := mathx.SquaredDistance(points[i], points[j])
			d2[i*n+j] = d
			d2[j*n+i] = d
		}
	}
	logU := math.Log(perplexity)
	P := make([]float64, n*n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		// Binary search the precision beta for row i.
		beta := 1.0
		betaMin, betaMax := math.Inf(-1), math.Inf(1)
		for t := 0; t < 50; t++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				if j == i {
					row[j] = 0
					continue
				}
				row[j] = math.Exp(-d2[i*n+j] * beta)
				sum += row[j]
			}
			if sum < 1e-300 {
				sum = 1e-300
			}
			// Shannon entropy of the row distribution.
			h := 0.0
			for j := 0; j < n; j++ {
				if row[j] > 0 {
					p := row[j] / sum
					h -= p * math.Log(p)
				}
			}
			diff := h - logU
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 { // entropy too high -> sharpen
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
		}
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += row[j]
		}
		if sum < 1e-300 {
			sum = 1e-300
		}
		for j := 0; j < n; j++ {
			P[i*n+j] = row[j] / sum
		}
	}
	// Symmetrize and normalize; floor tiny values for numeric stability.
	total := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (P[i*n+j] + P[j*n+i]) / 2
			P[i*n+j] = v
			P[j*n+i] = v
			total += 2 * v
		}
		P[i*n+i] = 0
	}
	for i := range P {
		P[i] /= total
		if P[i] < 1e-12 {
			P[i] = 1e-12
		}
	}
	return P
}

// ASCIIScatter renders the layout as a rows×cols character grid, one
// glyph per point class (points overwrite earlier points in the same
// cell). It is the terminal rendering of Figure 5.
func ASCIIScatter(Y [][2]float64, classes []int, rows, cols int) string {
	if len(Y) == 0 || rows < 2 || cols < 2 {
		return ""
	}
	minX, maxX := Y[0][0], Y[0][0]
	minY, maxY := Y[0][1], Y[0][1]
	for _, p := range Y {
		minX = math.Min(minX, p[0])
		maxX = math.Max(maxX, p[0])
		minY = math.Min(minY, p[1])
		maxY = math.Max(maxY, p[1])
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = make([]byte, cols)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	glyphs := "ox+*#@%&=~"
	for i, p := range Y {
		c := int((p[0] - minX) / spanX * float64(cols-1))
		r := int((p[1] - minY) / spanY * float64(rows-1))
		g := byte('.')
		if classes != nil {
			g = glyphs[classes[i]%len(glyphs)]
		}
		grid[r][c] = g
	}
	out := make([]byte, 0, rows*(cols+1))
	for r := range grid {
		out = append(out, grid[r]...)
		out = append(out, '\n')
	}
	return string(out)
}

// SVGScatter renders the layout as a standalone SVG document, one circle
// per point colored by class — the publishable rendering of Figure 5.
func SVGScatter(Y [][2]float64, classes []int, width, height int) string {
	if len(Y) == 0 || width < 10 || height < 10 {
		return ""
	}
	minX, maxX := Y[0][0], Y[0][0]
	minY, maxY := Y[0][1], Y[0][1]
	for _, p := range Y {
		minX = math.Min(minX, p[0])
		maxX = math.Max(maxX, p[0])
		minY = math.Min(minY, p[1])
		maxY = math.Max(maxY, p[1])
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	palette := []string{
		"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
		"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
	}
	const margin = 12
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	for i, p := range Y {
		x := margin + (p[0]-minX)/spanX*float64(width-2*margin)
		y := margin + (p[1]-minY)/spanY*float64(height-2*margin)
		color := "#333333"
		if classes != nil {
			color = palette[classes[i]%len(palette)]
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s" fill-opacity="0.8"/>`, x, y, color)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

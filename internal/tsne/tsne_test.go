package tsne

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/mathx"
)

// clusters generates k tight groups in dim dimensions, centers far apart.
func clusters(k, m, dim int, seed uint64) (points [][]float64, classes []int) {
	rng := mathx.NewRNG(seed)
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = 10 * rng.NormFloat64()
		}
	}
	for c := 0; c < k; c++ {
		for i := 0; i < m; i++ {
			p := make([]float64, dim)
			for j := range p {
				p[j] = centers[c][j] + 0.3*rng.NormFloat64()
			}
			points = append(points, p)
			classes = append(classes, c)
		}
	}
	return points, classes
}

func TestEmbedSeparatesClusters(t *testing.T) {
	points, classes := clusters(4, 25, 16, 3)
	Y, err := Embed(points, Config{Perplexity: 15, Iterations: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(Y) != len(points) {
		t.Fatalf("got %d layouts for %d points", len(Y), len(points))
	}
	// Mean within-class 2-D distance must be well below between-class.
	within, between := 0.0, 0.0
	nw, nb := 0, 0
	for i := range Y {
		for j := i + 1; j < len(Y); j++ {
			dx := Y[i][0] - Y[j][0]
			dy := Y[i][1] - Y[j][1]
			d := math.Hypot(dx, dy)
			if classes[i] == classes[j] {
				within += d
				nw++
			} else {
				between += d
				nb++
			}
		}
	}
	within /= float64(nw)
	between /= float64(nb)
	if between < 3*within {
		t.Errorf("cluster separation weak: within %.3f between %.3f", within, between)
	}
}

func TestEmbedFiniteOutput(t *testing.T) {
	points, _ := clusters(3, 15, 8, 7)
	Y, err := Embed(points, Config{Iterations: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range Y {
		if math.IsNaN(p[0]) || math.IsNaN(p[1]) || math.IsInf(p[0], 0) || math.IsInf(p[1], 0) {
			t.Fatalf("point %d is %v", i, p)
		}
	}
}

func TestEmbedCentered(t *testing.T) {
	points, _ := clusters(2, 20, 4, 9)
	Y, err := Embed(points, Config{Iterations: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var mx, my float64
	for _, p := range Y {
		mx += p[0]
		my += p[1]
	}
	mx /= float64(len(Y))
	my /= float64(len(Y))
	if math.Abs(mx) > 1e-6 || math.Abs(my) > 1e-6 {
		t.Errorf("layout not centered: mean (%v, %v)", mx, my)
	}
}

func TestEmbedErrors(t *testing.T) {
	if _, err := Embed([][]float64{{1}, {2}}, Config{}); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("too few: %v", err)
	}
	ragged := [][]float64{{1, 2}, {1}, {1, 2}, {1, 2}}
	if _, err := Embed(ragged, Config{}); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	points, _ := clusters(2, 10, 4, 11)
	a, err := Embed(points, Config{Iterations: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Embed(points, Config{Iterations: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different layouts")
		}
	}
}

func TestPerplexityClampedForSmallInputs(t *testing.T) {
	points, _ := clusters(2, 3, 4, 13) // 6 points, default perplexity 30
	if _, err := Embed(points, Config{Iterations: 50, Seed: 1}); err != nil {
		t.Fatalf("small input failed: %v", err)
	}
}

func TestASCIIScatter(t *testing.T) {
	Y := [][2]float64{{-1, -1}, {1, 1}, {-1, 1}, {1, -1}}
	classes := []int{0, 1, 2, 3}
	s := ASCIIScatter(Y, classes, 5, 9)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d rows", len(lines))
	}
	for _, g := range []string{"o", "x", "+", "*"} {
		if !strings.Contains(s, g) {
			t.Errorf("glyph %q missing from scatter:\n%s", g, s)
		}
	}
	if ASCIIScatter(nil, nil, 5, 5) != "" {
		t.Error("empty input should render empty")
	}
}

func BenchmarkEmbed100(b *testing.B) {
	points, _ := clusters(4, 25, 16, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Embed(points, Config{Iterations: 250, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSVGScatter(t *testing.T) {
	Y := [][2]float64{{-1, -1}, {1, 1}, {-1, 1}, {1, -1}}
	classes := []int{0, 1, 2, 3}
	svg := SVGScatter(Y, classes, 200, 150)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatalf("not an SVG document: %.60s...", svg)
	}
	if got := strings.Count(svg, "<circle"); got != 4 {
		t.Errorf("got %d circles, want 4", got)
	}
	// Distinct classes get distinct colors.
	if strings.Count(svg, "#4e79a7") != 1 || strings.Count(svg, "#f28e2b") != 1 {
		t.Error("class colors not applied")
	}
	if SVGScatter(nil, nil, 200, 150) != "" {
		t.Error("empty layout should render empty string")
	}
	if SVGScatter(Y, nil, 5, 5) != "" {
		t.Error("degenerate viewport should render empty string")
	}
}

package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/dnssim"
	"repro/internal/race"
)

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

// skipIfRace skips environment-building tests under the race detector:
// Build trains LINE embeddings whose hogwild SGD performs hundreds of
// millions of atomic operations, which instrumentation slows past the
// default per-package test timeout. The concurrent components
// (bipartite, line, xmeans) have fast package-level -race tests; this
// package orchestrates them sequentially.
func skipIfRace(t testing.TB) {
	t.Helper()
	if race.Enabled {
		t.Skip("model build too slow under the race detector; components are race-tested per package")
	}
}

// testEnv builds one shared small-scenario environment per test binary.
func testEnv(t testing.TB) *Env {
	t.Helper()
	skipIfRace(t)
	envOnce.Do(func() {
		envVal, envErr = Build(dnssim.SmallScenario(77), Options{Seed: 77, KFolds: 5})
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestBuildEnv(t *testing.T) {
	e := testEnv(t)
	total, mal := e.LabeledSummary()
	if total < 200 {
		t.Fatalf("labeled set has only %d domains", total)
	}
	if mal == 0 || mal == total {
		t.Fatalf("labeled set degenerate: %d/%d malicious", mal, total)
	}
}

func TestMaxLabeledSubsampling(t *testing.T) {
	skipIfRace(t)
	e, err := Build(dnssim.SmallScenario(78), Options{Seed: 78, MaxLabeled: 100, KFolds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Domains) > 110 {
		t.Fatalf("subsample left %d domains, cap was 100", len(e.Domains))
	}
	pos := 0
	for _, l := range e.Labels {
		pos += l
	}
	if pos == 0 || pos == len(e.Labels) {
		t.Fatal("subsample lost a class")
	}
}

func TestFig1Series(t *testing.T) {
	e := testEnv(t)
	series := e.Fig1()
	if len(series) != e.Scenario.Config.Days {
		t.Fatalf("series has %d points for %d days", len(series), e.Scenario.Config.Days)
	}
	for i, pt := range series {
		if pt.Queries == 0 || pt.UniqueFQDN == 0 || pt.UniqueE2LD == 0 {
			t.Errorf("day %d has zero counts: %+v", i, pt)
		}
		if pt.UniqueE2LD > pt.UniqueFQDN {
			t.Errorf("day %d: more e2LDs (%d) than FQDNs (%d)", i, pt.UniqueE2LD, pt.UniqueFQDN)
		}
	}
	text := RenderFig1(series)
	if !strings.Contains(text, "uniq_fqdn") || len(strings.Split(text, "\n")) < len(series) {
		t.Error("RenderFig1 output malformed")
	}
}

func TestFig6CombinedAUC(t *testing.T) {
	e := testEnv(t)
	res, err := e.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("combined AUC = %.3f", res.AUC)
	if res.AUC < 0.85 {
		t.Errorf("combined AUC %.3f, want >= 0.85 (paper: 0.94)", res.AUC)
	}
	if len(res.Curve) < 3 {
		t.Error("ROC curve degenerate")
	}
}

func TestFig7PerViewAUC(t *testing.T) {
	e := testEnv(t)
	per, err := e.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range per {
		t.Logf("%v AUC = %.3f", v, r.AUC)
		if r.AUC < 0.5 {
			t.Errorf("%v view AUC %.3f below chance", v, r.AUC)
		}
	}
	if per[bipartite.ViewQuery].AUC < 0.75 {
		t.Errorf("query view AUC %.3f too low (paper: 0.89)", per[bipartite.ViewQuery].AUC)
	}
}

func TestExposureBaseline(t *testing.T) {
	e := testEnv(t)
	res, err := e.ExposureBaseline()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("exposure AUC = %.3f", res.AUC)
	if res.AUC < 0.7 {
		t.Errorf("Exposure baseline AUC %.3f suspiciously low (paper: 0.88)", res.AUC)
	}
}

func TestClustersAndTables(t *testing.T) {
	e := testEnv(t)
	reports, err := e.Clusters()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) < 4 {
		t.Fatalf("only %d clusters", len(reports))
	}
	// Table 1: a wordlist/spam cluster must exist and be family-pure.
	spam, ok := FindStyleCluster(reports, "wordlist")
	if !ok {
		t.Fatal("no spam (wordlist) cluster found for Table 1")
	}
	if len(spam.Domains) < 5 || spam.TaggedFrac < 0.5 {
		t.Errorf("spam cluster weak: %d domains, %.2f tagged", len(spam.Domains), spam.TaggedFrac)
	}
	for _, d := range spam.Domains[:minInt(5, len(spam.Domains))] {
		if !strings.HasSuffix(d, ".bid") {
			t.Logf("note: spam cluster member %s not on .bid", d)
		}
	}
	// Table 2: a Conficker DGA cluster must exist.
	dga, ok := FindStyleCluster(reports, "conficker")
	if !ok {
		t.Fatal("no conficker cluster found for Table 2")
	}
	if len(dga.Domains) < 5 {
		t.Errorf("dga cluster too small: %d", len(dga.Domains))
	}
}

func TestFig4SeedExpansion(t *testing.T) {
	e := testEnv(t)
	pts, err := e.Fig4([]int{0, 10, 25, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].SeedSize != 0 || pts[0].True != 0 || pts[0].Suspicious != 0 {
		t.Errorf("zero seeds should discover nothing: %+v", pts[0])
	}
	// Seeds are nested across sizes, so the total identified malicious
	// population (seeds + discovered) must be monotone non-decreasing;
	// the discovered count alone may dip as discoveries become seeds.
	for i := 1; i < len(pts); i++ {
		prev := pts[i-1].SeedSize + pts[i-1].True
		cur := pts[i].SeedSize + pts[i].True
		if cur < prev {
			t.Errorf("identified population decreased: %+v -> %+v", pts[i-1], pts[i])
		}
	}
	// At small seed counts the expansion factor must be large; at larger
	// counts the small-scale pool saturates (seeds consume the very
	// domains they would have discovered), so no factor check there.
	if pts[1].True < 2*pts[1].SeedSize {
		t.Errorf("expansion factor at %d seeds only %dx", pts[1].SeedSize, pts[1].True/maxInt(1, pts[1].SeedSize))
	}
	t.Logf("seed expansion: %+v", pts)
}

func TestFig5TSNE(t *testing.T) {
	e := testEnv(t)
	res, err := e.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layout) != len(res.Domains) || len(res.Layout) != len(res.ClusterIDs) {
		t.Fatal("misaligned Fig5 result")
	}
	if len(res.Layout) < 16 {
		t.Fatalf("only %d points in visualization", len(res.Layout))
	}
	ascii := res.ASCII(20, 60)
	if len(strings.Split(strings.TrimRight(ascii, "\n"), "\n")) != 20 {
		t.Error("ASCII scatter malformed")
	}
}

func TestFlowPatterns(t *testing.T) {
	e := testEnv(t)
	out := e.FlowPatterns()
	if !strings.Contains(out, "conficker") || !strings.Contains(out, "ports") {
		t.Errorf("flow pattern report malformed:\n%s", out)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestBeliefPropBaseline(t *testing.T) {
	e := testEnv(t)
	res, err := e.BeliefPropBaseline()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("beliefprop AUC = %.3f", res.AUC)
	if res.AUC < 0.6 {
		t.Errorf("belief propagation AUC %.3f barely above chance", res.AUC)
	}
}

func TestSelfTraining(t *testing.T) {
	e := testEnv(t)
	rounds, err := e.SelfTraining(4, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 4 {
		t.Fatalf("got %d rounds", len(rounds))
	}
	// Training set must grow through confirmed discoveries.
	grew := false
	for i := 1; i < len(rounds); i++ {
		if rounds[i].TrainMalicious > rounds[i-1].TrainMalicious {
			grew = true
		}
		if rounds[i].TrainMalicious < rounds[i-1].TrainMalicious {
			t.Fatalf("training set shrank: %+v -> %+v", rounds[i-1], rounds[i])
		}
	}
	if !grew {
		t.Error("self-training never acquired a new label")
	}
	// Detection quality must not collapse as labels accumulate, and the
	// final round should be at least as good as the seed round (within a
	// small band for SGD/SVM noise).
	first, last := rounds[0].HeldOutAUC, rounds[len(rounds)-1].HeldOutAUC
	t.Logf("self-training AUC %.3f -> %.3f (added %d+%d+%d labels)",
		first, last, rounds[0].Added, rounds[1].Added, rounds[2].Added)
	if last < first-0.05 {
		t.Errorf("self-training degraded AUC: %.3f -> %.3f", first, last)
	}
}

package experiments

// The backend ablation of the pluggable stage registry: every
// (embedder, classifier) pairing evaluated with the same Fig-6-style
// k-fold cross-validation on the same scenario, so MF-DNS-E's
// matrix-factorization embeddings and HinDom-style label propagation
// are directly comparable to the paper's LINE+SVM pipeline (and to the
// mean ensemble over both classifiers). One Env is built per embedder —
// the expensive part — and every classifier sweeps over its embeddings
// via TrainClassifierNamed.

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/dnssim"
)

// AblationCell is one backend pairing's cross-validated outcome.
type AblationCell struct {
	Embedder   string
	Classifier string
	Result     ClassificationResult
}

// Name returns the cell's grid label, e.g. "line_svm".
func (c AblationCell) Name() string { return c.Embedder + "_" + c.Classifier }

// RunAblation cross-validates every embedder × classifier pairing on
// the scenario, reusing one built Env per embedder. Cells are returned
// in sweep order (embedders outer, classifiers inner).
func RunAblation(scfg dnssim.Config, opts Options, embedders, classifiers []string) ([]AblationCell, error) {
	var cells []AblationCell
	for _, emb := range embedders {
		o := opts
		o.Embedder = emb
		env, err := Build(scfg, o)
		if err != nil {
			return nil, fmt.Errorf("experiments: building %s env: %w", emb, err)
		}
		for _, clf := range classifiers {
			res, err := env.classifierCV(emb+"_"+clf, clf, bipartite.Views...)
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation %s+%s: %w", emb, clf, err)
			}
			cells = append(cells, AblationCell{Embedder: emb, Classifier: clf, Result: res})
		}
	}
	return cells, nil
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§7-§8) against the synthetic campus scenario. It is shared
// by cmd/experiments (human-readable reports, EXPERIMENTS.md data) and
// the root-level benchmark suite (one testing.B benchmark per artifact).
//
// Per-artifact index (see DESIGN.md §3 for the full mapping):
//
//	Fig1      traffic volume and unique FQDN/e2LD series
//	Table1/2  spam and DGA cluster examples with threat-intel tags
//	Fig4      seed-expansion discovery counts
//	Fig5      t-SNE layout of five random clusters
//	Fig6      combined-feature ROC / AUC under 10-fold CV
//	Fig7      per-view AUCs
//	§8.2      Exposure (J48 over statistical features) baseline AUC
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/mathx"
	"repro/internal/pipeline"
	"repro/internal/threatintel"
)

// Options tunes environment construction.
type Options struct {
	// Seed drives the scenario, detector and threat-intel feeds.
	Seed uint64
	// EmbedDim is the per-view embedding size (default 32).
	EmbedDim int
	// MaxLabeled stratified-subsamples the labeled set to at most this
	// many domains (0 = no cap). The SVM's SMO is quadratic-ish in the
	// training size, so benchmarks cap this.
	MaxLabeled int
	// Workers bounds parallelism (0 = all cores).
	Workers int
	// KFolds for cross-validation (default 10, the paper's k).
	KFolds int
	// MinSimilarity is the projection edge threshold (default 0.05 at
	// experiment scale, which keeps graph memory bounded and trims the
	// weakest coincidental-overlap edges).
	MinSimilarity float64
	// Embedder selects the feature-learning backend by registered name
	// ("" = line), for the backend ablation sweep.
	Embedder string
}

func (o Options) withDefaults() Options {
	if o.EmbedDim <= 0 {
		o.EmbedDim = 32
	}
	if o.KFolds <= 0 {
		o.KFolds = 10
	}
	if o.MinSimilarity == 0 {
		o.MinSimilarity = 0.05
	}
	return o
}

// Env is a fully built experimental world: generated traffic folded into
// a detector with a trained embedding model, simulated threat-intel
// feeds, and the labeled domain set of §6.1. Build is expensive; reuse
// the Env across experiments (its model is immutable).
type Env struct {
	Opts     Options
	Scenario *dnssim.Scenario
	Detector *core.Detector
	TI       *threatintel.Service

	// Labeled set (post-pruning, confirmation rule applied), aligned.
	Domains []string
	Labels  []int

	// clusters caches the all-domain X-Means model shared by the
	// cluster-based experiments (Tables 1-2, Fig 4, Fig 5).
	clusters *clusterModel
}

// Build constructs an Env for the scenario configuration.
func Build(scfg dnssim.Config, opts Options) (*Env, error) {
	opts = opts.withDefaults()
	s := dnssim.NewScenario(scfg)
	det := core.NewDetector(core.Config{
		Start:             scfg.Start,
		Days:              scfg.Days,
		DHCP:              s.DHCP(),
		EmbedDim:          opts.EmbedDim,
		MinSimilarity:     opts.MinSimilarity,
		TimeMinSimilarity: 0.015,
		Workers:           opts.Workers,
		Seed:              opts.Seed,
		Embedder:          opts.Embedder,
	})
	s.Generate(func(ev dnssim.Event) { det.Consume(pipeline.Input(ev)) })
	if err := det.BuildModel(); err != nil {
		return nil, fmt.Errorf("experiments: building model: %w", err)
	}
	ti := threatintel.NewService(s.TruthTable(), threatintel.Config{Seed: opts.Seed})

	retained, err := det.Domains()
	if err != nil {
		return nil, err
	}
	domains, labels := ti.LabeledSet(retained)
	if opts.MaxLabeled > 0 && len(domains) > opts.MaxLabeled {
		domains, labels = subsample(domains, labels, opts.MaxLabeled, opts.Seed)
	}
	return &Env{
		Opts:     opts,
		Scenario: s,
		Detector: det,
		TI:       ti,
		Domains:  domains,
		Labels:   labels,
	}, nil
}

// subsample keeps a stratified random subset of size n.
func subsample(domains []string, labels []int, n int, seed uint64) ([]string, []int) {
	rng := mathx.NewRNG(seed).SplitLabeled("subsample")
	byClass := map[int][]int{}
	for i, l := range labels {
		byClass[l] = append(byClass[l], i)
	}
	frac := float64(n) / float64(len(domains))
	var keep []int
	for _, c := range []int{0, 1} {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		take := int(frac*float64(len(idx)) + 0.5)
		if take > len(idx) {
			take = len(idx)
		}
		keep = append(keep, idx[:take]...)
	}
	sort.Ints(keep)
	outD := make([]string, len(keep))
	outL := make([]int, len(keep))
	for i, k := range keep {
		outD[i] = domains[k]
		outL[i] = labels[k]
	}
	return outD, outL
}

// LabeledSummary reports the class balance of the labeled set.
func (e *Env) LabeledSummary() (total, malicious int) {
	for _, l := range e.Labels {
		malicious += l
	}
	return len(e.Labels), malicious
}

package experiments

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/eval"
	"repro/internal/exposure"
	"repro/internal/j48"
)

// ClassificationResult is one classifier evaluation under k-fold CV.
type ClassificationResult struct {
	Name  string
	AUC   float64
	Curve []eval.ROCPoint
	// Confusion at the zero-threshold operating point.
	Confusion eval.Confusion
	// Scores holds the pooled out-of-fold decision values, index-aligned
	// with the Env's Domains/Labels (every domain scored exactly once by
	// a model that never saw it).
	Scores []float64
}

// Fig6 evaluates the paper's full system — SVM over the combined
// three-view embedding — with k-fold cross-validation, reproducing the
// ROC of Figure 6 (paper AUC: 0.94).
func (e *Env) Fig6() (ClassificationResult, error) {
	return e.embeddingCV("combined", bipartite.Views...)
}

// Fig7 evaluates each view's embedding alone, reproducing Figure 7
// (paper AUCs: query 0.89, IP 0.83, temporal 0.65).
func (e *Env) Fig7() (map[bipartite.View]ClassificationResult, error) {
	out := make(map[bipartite.View]ClassificationResult, 3)
	for _, v := range bipartite.Views {
		r, err := e.embeddingCV(v.String(), v)
		if err != nil {
			return nil, fmt.Errorf("view %v: %w", v, err)
		}
		out[v] = r
	}
	return out, nil
}

// embeddingCV cross-validates the configured classifier on embeddings
// from the given views.
func (e *Env) embeddingCV(name string, views ...bipartite.View) (ClassificationResult, error) {
	return e.classifierCV(name, "", views...)
}

// classifierCV cross-validates the named classification backend ("" =
// the configured default) on embeddings from the given views.
func (e *Env) classifierCV(name, classifier string, views ...bipartite.View) (ClassificationResult, error) {
	scores, err := eval.CrossValidate(e.Labels, e.Opts.KFolds, e.Opts.Seed^0xf01d5,
		func(trainIdx []int) (func(int) float64, error) {
			td := make([]string, len(trainIdx))
			tl := make([]int, len(trainIdx))
			for i, idx := range trainIdx {
				td[i] = e.Domains[idx]
				tl[i] = e.Labels[idx]
			}
			clf, err := e.Detector.TrainClassifierNamed(classifier, td, tl, views...)
			if err != nil {
				return nil, err
			}
			return func(i int) float64 {
				s, _ := clf.Score(e.Domains[i])
				return s
			}, nil
		})
	if err != nil {
		return ClassificationResult{}, err
	}
	return summarize(name, scores, e.Labels)
}

// ExposureBaseline reproduces the §8.2 comparison: the Exposure feature
// groups (time, DNS-answer, TTL, lexical) feeding a J48 decision tree,
// cross-validated on the same labeled set (paper AUC: 0.88).
func (e *Env) ExposureBaseline() (ClassificationResult, error) {
	stats := e.Detector.Processor().Stats()
	days := e.Scenario.Config.Days
	X := exposure.ExtractAll(stats, e.Domains, days)

	scores, err := eval.CrossValidate(e.Labels, e.Opts.KFolds, e.Opts.Seed^0xe4905,
		func(trainIdx []int) (func(int) float64, error) {
			tx := make([][]float64, len(trainIdx))
			tl := make([]int, len(trainIdx))
			for i, idx := range trainIdx {
				tx[i] = X[idx]
				tl[i] = e.Labels[idx]
			}
			tree, err := j48.Train(tx, tl, j48.Config{})
			if err != nil {
				return nil, err
			}
			return func(i int) float64 { return tree.Score(X[i]) - 0.5 }, nil
		})
	if err != nil {
		return ClassificationResult{}, err
	}
	return summarize("exposure-j48", scores, e.Labels)
}

func summarize(name string, scores []float64, labels []int) (ClassificationResult, error) {
	auc, err := eval.AUC(scores, labels)
	if err != nil {
		return ClassificationResult{}, err
	}
	curve, err := eval.ROC(scores, labels)
	if err != nil {
		return ClassificationResult{}, err
	}
	return ClassificationResult{
		Name:      name,
		AUC:       auc,
		Curve:     curve,
		Confusion: eval.Confusions(scores, labels),
		Scores:    scores,
	}, nil
}

package experiments

import (
	"fmt"
	"sort"

	"repro/internal/mathx"
	"repro/internal/tsne"
	"repro/internal/xmeans"
)

// ClusterReport describes one discovered domain cluster (§7.1).
type ClusterReport struct {
	ID int
	// Domains are the member e2LDs.
	Domains []string
	// MajorityFamily / MajorityStyle are the dominant threat-intel tags
	// among members with reports; empty for benign-dominated clusters.
	MajorityFamily string
	MajorityStyle  string
	// TaggedFrac is the fraction of members carrying the majority tag.
	TaggedFrac float64
}

// clusterModel caches the X-Means clustering of all retained domains,
// which several experiments share.
type clusterModel struct {
	res  *xmeans.Result
	kept []string
}

// clusterAll clusters every retained domain by combined embedding.
func (e *Env) clusterAll() (*clusterModel, error) {
	if e.clusters != nil {
		return e.clusters, nil
	}
	retained, err := e.Detector.Domains()
	if err != nil {
		return nil, err
	}
	kMax := len(retained) / 40
	if kMax < 16 {
		kMax = 16
	}
	if kMax > 160 {
		kMax = 160
	}
	res, kept, err := e.Detector.ClusterDomains(retained, xmeans.Config{
		KMin: 8, KMax: kMax, Seed: e.Opts.Seed ^ 0xc1573,
	})
	if err != nil {
		return nil, fmt.Errorf("clustering all retained domains: %w", err)
	}
	e.clusters = &clusterModel{res: res, kept: kept}
	return e.clusters, nil
}

// Clusters runs X-Means over all retained domains and annotates each
// cluster with its majority ThreatBook-style family report.
func (e *Env) Clusters() ([]ClusterReport, error) {
	cm, err := e.clusterAll()
	if err != nil {
		return nil, err
	}
	members := cm.res.Members()
	reports := make([]ClusterReport, 0, len(members))
	for c, idx := range members {
		r := ClusterReport{ID: c}
		famCount := map[string]int{}
		styleByFam := map[string]string{}
		for _, i := range idx {
			d := cm.kept[i]
			r.Domains = append(r.Domains, d)
			if fam, style, ok := e.TI.Family(d); ok {
				famCount[fam]++
				styleByFam[fam] = style
			}
		}
		sort.Strings(r.Domains)
		best, bestN := "", 0
		for fam, n := range famCount {
			if n > bestN || (n == bestN && fam < best) {
				best, bestN = fam, n
			}
		}
		if bestN*2 > len(idx) { // majority means > half the members
			r.MajorityFamily = best
			r.MajorityStyle = styleByFam[best]
			r.TaggedFrac = float64(bestN) / float64(len(idx))
		}
		reports = append(reports, r)
	}
	return reports, nil
}

// FindStyleCluster returns the largest cluster whose majority style
// matches, reproducing Table 1 (style "wordlist": spam .bid domains) and
// Table 2 (style "conficker": DGA .ws domains).
func FindStyleCluster(reports []ClusterReport, style string) (ClusterReport, bool) {
	best := ClusterReport{}
	found := false
	for _, r := range reports {
		if r.MajorityStyle == style && len(r.Domains) > len(best.Domains) {
			best = r
			found = true
		}
	}
	return best, found
}

// SeedExpansionPoint is one point of Figure 4: starting from SeedSize
// known malicious domains, how many new domains the cluster expansion
// surfaces, split into VirusTotal-confirmed ("true") and unconfirmed
// ("suspicious").
type SeedExpansionPoint struct {
	SeedSize   int
	True       int
	Suspicious int
}

// Fig4 reproduces the seed-expansion experiment (§7.2.1): for each seed
// size, sample that many confirmed malicious domains, take every cluster
// containing at least one seed, and classify the clusters' non-seed
// members via the VirusTotal confirmation rule.
func (e *Env) Fig4(seedSizes []int) ([]SeedExpansionPoint, error) {
	cm, err := e.clusterAll()
	if err != nil {
		return nil, err
	}
	// Pool of confirmed malicious domains present in the clustering.
	clusterOf := make(map[string]int, len(cm.kept))
	for i, d := range cm.kept {
		clusterOf[d] = cm.res.Assign[i]
	}
	var pool []string
	for _, d := range cm.kept {
		if e.TI.Validate(d) {
			if l, ok := e.Scenario.Truth(d); ok && l.Malicious {
				pool = append(pool, d)
			}
		}
	}
	sort.Strings(pool)
	rng := mathx.NewRNG(e.Opts.Seed).SplitLabeled("fig4")
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	members := cm.res.Members()
	out := make([]SeedExpansionPoint, 0, len(seedSizes))
	for _, size := range seedSizes {
		if size > len(pool) {
			size = len(pool)
		}
		seeds := make(map[string]bool, size)
		hit := make(map[int]bool)
		for _, d := range pool[:size] {
			seeds[d] = true
			hit[clusterOf[d]] = true
		}
		pt := SeedExpansionPoint{SeedSize: size}
		for c := range hit {
			for _, i := range members[c] {
				d := cm.kept[i]
				if seeds[d] {
					continue
				}
				if e.TI.Validate(d) {
					pt.True++
				} else if l, ok := e.Scenario.Truth(d); ok && l.Malicious {
					pt.Suspicious++
				}
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// Fig5Result is the t-SNE visualization of five random clusters (§7.3).
type Fig5Result struct {
	// Layout is the 2-D position of each selected domain.
	Layout [][2]float64
	// Domains and ClusterIDs are index-aligned with Layout; ClusterIDs
	// are renumbered 0..4.
	Domains    []string
	ClusterIDs []int
}

// Fig5 selects five random clusters of reasonable size and projects
// their members' combined embeddings to 2-D with t-SNE.
func (e *Env) Fig5() (*Fig5Result, error) {
	cm, err := e.clusterAll()
	if err != nil {
		return nil, err
	}
	members := cm.res.Members()
	var candidates []int
	for c, idx := range members {
		if len(idx) >= 8 && len(idx) <= 200 {
			candidates = append(candidates, c)
		}
	}
	if len(candidates) < 2 {
		return nil, fmt.Errorf("experiments: only %d clusters of visualizable size", len(candidates))
	}
	rng := mathx.NewRNG(e.Opts.Seed).SplitLabeled("fig5")
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if len(candidates) > 5 {
		candidates = candidates[:5]
	}

	res := &Fig5Result{}
	var points [][]float64
	for newID, c := range candidates {
		for _, i := range members[c] {
			d := cm.kept[i]
			v, ok := e.Detector.FeatureVector(d)
			if !ok {
				continue
			}
			points = append(points, v)
			res.Domains = append(res.Domains, d)
			res.ClusterIDs = append(res.ClusterIDs, newID)
		}
	}
	layout, err := tsne.Embed(points, tsne.Config{
		Perplexity: 30,
		Iterations: 400,
		Seed:       e.Opts.Seed ^ 0x75e3,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: t-SNE: %w", err)
	}
	res.Layout = layout
	return res, nil
}

// ASCII renders the Figure 5 layout as a terminal scatter plot.
func (r *Fig5Result) ASCII(rows, cols int) string {
	return tsne.ASCIIScatter(r.Layout, r.ClusterIDs, rows, cols)
}

// SVG renders the Figure 5 layout as a standalone SVG document.
func (r *Fig5Result) SVG(width, height int) string {
	return tsne.SVGScatter(r.Layout, r.ClusterIDs, width, height)
}

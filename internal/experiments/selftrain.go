package experiments

import (
	"fmt"
	"sort"

	"repro/internal/eval"
	"repro/internal/mathx"
)

// SelfTrainingRound records one iteration of the §7.2.1 application:
// "the discovery of malicious or benign domain clusters can reciprocally
// improve malicious domain detection ... by acquiring additional labeled
// domains for model training."
type SelfTrainingRound struct {
	Round int
	// TrainMalicious / TrainBenign are the training-set class sizes at
	// the start of the round.
	TrainMalicious int
	TrainBenign    int
	// Added is how many newly confirmed malicious domains the round
	// contributed.
	Added int
	// HeldOutAUC is the AUC on the fixed held-out evaluation set after
	// training on the round's labels.
	HeldOutAUC float64
}

// SelfTraining runs the label-acquisition loop: starting from a small
// seed of the labeled set, each round trains the SVM, ranks the still
// unlabeled domains, asks the simulated VirusTotal to confirm the top
// candidates, adds the confirmed ones as new malicious training labels,
// and re-evaluates on a fixed held-out split. candidatesPerRound bounds
// how many top-ranked domains are submitted for confirmation each round.
func (e *Env) SelfTraining(rounds, candidatesPerRound int) ([]SelfTrainingRound, error) {
	if rounds <= 0 {
		rounds = 5
	}
	if candidatesPerRound <= 0 {
		candidatesPerRound = 100
	}

	// Fixed held-out split (30%), stratified.
	rng := mathx.NewRNG(e.Opts.Seed).SplitLabeled("selftrain")
	perm := rng.Perm(len(e.Domains))
	holdCut := len(e.Domains) * 3 / 10
	holdIdx := perm[:holdCut]
	poolIdx := perm[holdCut:]

	// Seed training: 25% of the pool's malicious labels plus all benign
	// labels (the paper's whitelist is available from day one; malicious
	// intel accumulates).
	training := make(map[int]bool)
	var malPool []int
	for _, i := range poolIdx {
		if e.Labels[i] == 0 {
			training[i] = true
		} else {
			malPool = append(malPool, i)
		}
	}
	rng.Shuffle(len(malPool), func(a, b int) { malPool[a], malPool[b] = malPool[b], malPool[a] })
	seedMal := len(malPool) / 4
	if seedMal < 5 && len(malPool) >= 5 {
		seedMal = 5
	}
	for _, i := range malPool[:seedMal] {
		training[i] = true
	}

	var out []SelfTrainingRound
	for round := 0; round < rounds; round++ {
		var trD []string
		for i := range training {
			trD = append(trD, e.Domains[i])
		}
		sort.Strings(trD) // deterministic training order
		labelOf := make(map[string]int, len(e.Domains))
		for i, d := range e.Domains {
			labelOf[d] = e.Labels[i]
		}
		trY := make([]int, len(trD))
		nm, nb := 0, 0
		for i, d := range trD {
			trY[i] = labelOf[d]
			if trY[i] == 1 {
				nm++
			} else {
				nb++
			}
		}

		clf, err := e.Detector.TrainClassifier(trD, trY)
		if err != nil {
			return nil, fmt.Errorf("self-training round %d: %w", round, err)
		}

		// Held-out evaluation.
		var scores []float64
		var ys []int
		for _, i := range holdIdx {
			if s, ok := clf.Score(e.Domains[i]); ok {
				scores = append(scores, s)
				ys = append(ys, e.Labels[i])
			}
		}
		auc, err := eval.AUC(scores, ys)
		if err != nil {
			return nil, fmt.Errorf("self-training round %d: %w", round, err)
		}
		rec := SelfTrainingRound{
			Round:          round,
			TrainMalicious: nm,
			TrainBenign:    nb,
			HeldOutAUC:     auc,
		}

		// Rank unlabeled pool domains and submit the top candidates for
		// threat-intel confirmation.
		type cand struct {
			idx   int
			score float64
		}
		var cands []cand
		for _, i := range poolIdx {
			if training[i] {
				continue
			}
			if s, ok := clf.Score(e.Domains[i]); ok {
				cands = append(cands, cand{i, s})
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })
		if len(cands) > candidatesPerRound {
			cands = cands[:candidatesPerRound]
		}
		for _, c := range cands {
			if e.TI.Validate(e.Domains[c.idx]) {
				training[c.idx] = true
				rec.Added++
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

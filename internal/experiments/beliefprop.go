package experiments

import (
	"fmt"

	"repro/internal/beliefprop"
	"repro/internal/eval"
)

// BeliefPropBaseline evaluates the graph-inference baseline (belief
// propagation over the host-domain graph, Manadhata et al., §9's
// representative graph-based solution) under the same k-fold protocol as
// the other classifiers: each fold's training labels anchor the priors
// and the held-out domains are ranked by their converged beliefs.
//
// This comparison goes beyond the paper's own evaluation (which compares
// only against Exposure); it quantifies how much the embedding+SVM
// pipeline adds over direct label propagation on the same graph.
func (e *Env) BeliefPropBaseline() (ClassificationResult, error) {
	// Build the host-domain association graph once from the pipeline
	// aggregates (post-pruning domain set).
	g := beliefprop.NewGraph()
	stats := e.Detector.Processor().Stats()
	retained, err := e.Detector.Domains()
	if err != nil {
		return ClassificationResult{}, err
	}
	for _, d := range retained {
		st := stats[d]
		if st == nil {
			continue
		}
		for h := range st.Hosts {
			g.AddEdge(h, d)
		}
	}

	scores, err := eval.CrossValidate(e.Labels, e.Opts.KFolds, e.Opts.Seed^0xb9,
		func(trainIdx []int) (func(int) float64, error) {
			seeds := make(map[string]int, len(trainIdx))
			for _, idx := range trainIdx {
				seeds[e.Domains[idx]] = e.Labels[idx]
			}
			res, err := beliefprop.Run(g, seeds, beliefprop.Config{})
			if err != nil {
				return nil, fmt.Errorf("belief propagation: %w", err)
			}
			return func(i int) float64 {
				return res.DomainBelief[e.Domains[i]] - 0.5
			}, nil
		})
	if err != nil {
		return ClassificationResult{}, err
	}
	return summarize("beliefprop", scores, e.Labels)
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/pipeline"
)

// Fig1 returns the traffic series of Figure 1: per-bucket DNS query
// volume and the unique FQDN and e2LD counts over the measurement month.
func (e *Env) Fig1() []pipeline.BucketStat {
	return e.Detector.Processor().Series()
}

// RenderFig1 formats the series as the aligned text table cmd/experiments
// prints and EXPERIMENTS.md embeds.
func RenderFig1(series []pipeline.BucketStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "day", "queries", "uniq_fqdn", "uniq_e2ld")
	for _, pt := range series {
		fmt.Fprintf(&b, "%-12s %12d %12d %12d\n",
			pt.Start.Format("2006-01-02"), pt.Queries, pt.UniqueFQDN, pt.UniqueE2LD)
	}
	return b.String()
}

// FlowPatterns returns the §7.2.2 per-family traffic summaries derived
// from the scenario's flow view.
func (e *Env) FlowPatterns() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-10s %8s %8s %6s  %s\n",
		"family", "style", "domains", "hosts", "ips", "ports")
	for _, f := range e.Scenario.FlowSummaries() {
		ports := make([]string, len(f.Ports))
		for i, p := range f.Ports {
			ports[i] = fmt.Sprint(p)
		}
		fmt.Fprintf(&b, "%-16s %-10s %8d %8d %6d  %s\n",
			f.Family, f.Style, f.Domains, f.HostCount, len(f.ServerIPs),
			strings.Join(ports, ","))
	}
	return b.String()
}

package dnswire

import "fmt"

// maxSectionRecords bounds per-section record counts so a hostile or
// corrupt header cannot force huge allocations before parsing fails.
const maxSectionRecords = 4096

// Decode parses a wire-format DNS message.
func Decode(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, ErrShortMessage
	}
	var m Message
	m.Header.ID = uint16(b[0])<<8 | uint16(b[1])
	flags := uint16(b[2])<<8 | uint16(b[3])
	m.Header.Response = flags&(1<<15) != 0
	m.Header.Opcode = uint8(flags >> 11 & 0xf)
	m.Header.Authoritative = flags&(1<<10) != 0
	m.Header.Truncated = flags&(1<<9) != 0
	m.Header.RecursionDesired = flags&(1<<8) != 0
	m.Header.RecursionAvailable = flags&(1<<7) != 0
	m.Header.RCode = RCode(flags & 0xf)

	qd := int(uint16(b[4])<<8 | uint16(b[5]))
	an := int(uint16(b[6])<<8 | uint16(b[7]))
	ns := int(uint16(b[8])<<8 | uint16(b[9]))
	ar := int(uint16(b[10])<<8 | uint16(b[11]))
	if qd > maxSectionRecords || an > maxSectionRecords ||
		ns > maxSectionRecords || ar > maxSectionRecords {
		return nil, ErrTooManyRecords
	}

	off := 12
	for i := 0; i < qd; i++ {
		name, n, err := readName(b, off, 0)
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		off = n
		if off+4 > len(b) {
			return nil, ErrShortMessage
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  Type(uint16(b[off])<<8 | uint16(b[off+1])),
			Class: Class(uint16(b[off+2])<<8 | uint16(b[off+3])),
		})
		off += 4
	}
	var err error
	if m.Answers, off, err = readSection(b, off, an); err != nil {
		return nil, fmt.Errorf("answer section: %w", err)
	}
	if m.Authority, off, err = readSection(b, off, ns); err != nil {
		return nil, fmt.Errorf("authority section: %w", err)
	}
	if m.Additional, _, err = readSection(b, off, ar); err != nil {
		return nil, fmt.Errorf("additional section: %w", err)
	}
	return &m, nil
}

func readSection(b []byte, off, count int) ([]Record, int, error) {
	if count == 0 {
		return nil, off, nil
	}
	records := make([]Record, 0, count)
	for i := 0; i < count; i++ {
		name, n, err := readName(b, off, 0)
		if err != nil {
			return nil, 0, fmt.Errorf("record %d: %w", i, err)
		}
		off = n
		if off+10 > len(b) {
			return nil, 0, ErrShortMessage
		}
		r := Record{
			Name:  name,
			Type:  Type(uint16(b[off])<<8 | uint16(b[off+1])),
			Class: Class(uint16(b[off+2])<<8 | uint16(b[off+3])),
			TTL: uint32(b[off+4])<<24 | uint32(b[off+5])<<16 |
				uint32(b[off+6])<<8 | uint32(b[off+7]),
		}
		rdlen := int(uint16(b[off+8])<<8 | uint16(b[off+9]))
		off += 10
		if off+rdlen > len(b) {
			return nil, 0, ErrShortMessage
		}
		// Name-bearing rdata may contain compression pointers into the
		// full message; re-encode it as a standalone uncompressed name so
		// Record.Data is self-contained.
		switch r.Type {
		case TypeCNAME, TypeNS:
			target, _, err := readName(b, off, 0)
			if err != nil {
				return nil, 0, fmt.Errorf("record %d rdata: %w", i, err)
			}
			if r.Data, err = appendName(nil, target, nil, -1); err != nil {
				return nil, 0, fmt.Errorf("record %d rdata: %w", i, err)
			}
		default:
			r.Data = append([]byte(nil), b[off:off+rdlen]...)
		}
		off += rdlen
		records = append(records, r)
	}
	return records, off, nil
}

// maxPointerHops bounds compression-pointer chains; RFC-compliant
// messages never need more than a handful.
const maxPointerHops = 32

// readName decodes a possibly compressed domain name starting at off.
// It returns the dotted name and the offset of the first byte after the
// name's in-place encoding (pointers do not advance past their two bytes).
func readName(b []byte, off, depth int) (string, int, error) {
	if depth > maxPointerHops {
		return "", 0, ErrBadPointer
	}
	var name []byte
	end := -1 // offset after the name at the original position
	totalLen := 0
	for {
		if off >= len(b) {
			return "", 0, ErrShortMessage
		}
		c := int(b[off])
		switch {
		case c == 0:
			if end < 0 {
				end = off + 1
			}
			if len(name) == 0 {
				return ".", end, nil
			}
			return string(name[:len(name)-1]), end, nil
		case c&0xc0 == 0xc0:
			if off+1 >= len(b) {
				return "", 0, ErrShortMessage
			}
			ptr := (c&0x3f)<<8 | int(b[off+1])
			if ptr >= off {
				return "", 0, ErrBadPointer // pointers must point backward
			}
			if end < 0 {
				end = off + 2
			}
			off = ptr
			depth++
			if depth > maxPointerHops {
				return "", 0, ErrBadPointer
			}
		case c&0xc0 != 0:
			return "", 0, ErrBadName
		default:
			if off+1+c > len(b) {
				return "", 0, ErrShortMessage
			}
			totalLen += c + 1
			if totalLen > 255 {
				return "", 0, ErrNameTooLong
			}
			name = append(name, b[off+1:off+1+c]...)
			name = append(name, '.')
			off += 1 + c
		}
	}
}

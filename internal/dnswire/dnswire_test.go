package dnswire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func query(id uint16, name string, typ Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: typ, Class: ClassIN}},
	}
}

func TestEncodeDecodeQuery(t *testing.T) {
	m := query(0x1234, "maps.google.com", TypeA)
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.ID != 0x1234 || got.Header.Response {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	if !got.Header.RecursionDesired {
		t.Error("RD flag lost")
	}
	if len(got.Questions) != 1 {
		t.Fatalf("got %d questions", len(got.Questions))
	}
	q := got.Questions[0]
	if q.Name != "maps.google.com" || q.Type != TypeA || q.Class != ClassIN {
		t.Errorf("question mismatch: %+v", q)
	}
}

func TestEncodeDecodeResponseWithAnswers(t *testing.T) {
	cname, err := CNAMERecord("www.example.com", "edge.cdn.example.com", 300)
	if err != nil {
		t.Fatal(err)
	}
	m := &Message{
		Header: Header{ID: 7, Response: true, RecursionAvailable: true, RCode: RCodeNoError},
		Questions: []Question{
			{Name: "www.example.com", Type: TypeA, Class: ClassIN},
		},
		Answers: []Record{
			cname,
			ARecord("edge.cdn.example.com", 60, [4]byte{192, 0, 2, 10}),
			ARecord("edge.cdn.example.com", 60, [4]byte{192, 0, 2, 11}),
		},
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Header.Response || got.Header.RCode != RCodeNoError {
		t.Errorf("header: %+v", got.Header)
	}
	if len(got.Answers) != 3 {
		t.Fatalf("got %d answers, want 3", len(got.Answers))
	}
	target, err := got.Answers[0].TargetName()
	if err != nil || target != "edge.cdn.example.com" {
		t.Errorf("CNAME target = %q, %v", target, err)
	}
	ip, ok := got.Answers[1].IPv4()
	if !ok || ip != [4]byte{192, 0, 2, 10} {
		t.Errorf("A record ip = %v ok=%v", ip, ok)
	}
	if got.Answers[2].TTL != 60 {
		t.Errorf("TTL = %d, want 60", got.Answers[2].TTL)
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: "a.very.long.domain.example.com", Type: TypeA, Class: ClassIN}},
		Answers: []Record{
			ARecord("a.very.long.domain.example.com", 30, [4]byte{1, 2, 3, 4}),
			ARecord("b.very.long.domain.example.com", 30, [4]byte{1, 2, 3, 5}),
		},
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	uncompressedGuess := 12 + 3*(len("a.very.long.domain.example.com")+2+4) + 2*10 + 8
	if len(b) >= uncompressedGuess {
		t.Errorf("compressed message %d bytes, expected < %d", len(b), uncompressedGuess)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Name != "a.very.long.domain.example.com" ||
		got.Answers[1].Name != "b.very.long.domain.example.com" {
		t.Errorf("names lost in compression: %q, %q", got.Answers[0].Name, got.Answers[1].Name)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrShortMessage},
		{"short header", make([]byte, 11), ErrShortMessage},
		{"huge counts", []byte{0, 1, 0, 0, 0xff, 0xff, 0, 0, 0, 0, 0, 0}, ErrTooManyRecords},
	}
	for _, tt := range tests {
		if _, err := Decode(tt.b); !errors.Is(err, tt.want) {
			t.Errorf("%s: err = %v, want %v", tt.name, err, tt.want)
		}
	}
}

func TestDecodeForwardPointerRejected(t *testing.T) {
	// Header with 1 question whose name is a pointer to itself.
	b := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0xc0, 12, // pointer to offset 12 (itself)
		0, 1, 0, 1,
	}
	if _, err := Decode(b); !errors.Is(err, ErrBadPointer) {
		t.Errorf("self-pointer err = %v, want ErrBadPointer", err)
	}
}

func TestEncodeRejectsBadNames(t *testing.T) {
	longLabel := strings.Repeat("a", 64) + ".com"
	if _, err := Encode(query(1, longLabel, TypeA)); !errors.Is(err, ErrLabelTooLong) {
		t.Errorf("long label err = %v", err)
	}
	longName := strings.Repeat("abcdefgh.", 32) + "com"
	if _, err := Encode(query(1, longName, TypeA)); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("long name err = %v", err)
	}
	if _, err := Encode(query(1, "a..b.com", TypeA)); !errors.Is(err, ErrBadName) {
		t.Errorf("empty label err = %v", err)
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	for _, typ := range []Type{TypeA, TypeNS, TypeCNAME, TypeMX, TypeTXT, TypeAAAA, Type(99)} {
		got, err := ParseType(typ.String())
		if err != nil {
			t.Errorf("ParseType(%q): %v", typ.String(), err)
			continue
		}
		if got != typ {
			t.Errorf("round trip %v -> %q -> %v", typ, typ.String(), got)
		}
	}
	if _, err := ParseType("BOGUS"); err == nil {
		t.Error("ParseType accepted garbage")
	}
}

func TestDecodeNeverPanicsOnFuzzedInput(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b) // must not panic; error is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: every well-formed query round-trips bit-exactly through
// Encode → Decode → Encode.
func TestEncodeDecodeEncodeStable(t *testing.T) {
	names := []string{
		"google.com", "a.b.c.example.org", "oorfapjflmp.ws",
		"x.brvegnholster.bid", "host.campus.edu",
	}
	for _, name := range names {
		for _, typ := range []Type{TypeA, TypeNS, TypeMX} {
			m := query(999, name, typ)
			b1, err := Encode(m)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := Decode(b1)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := Encode(decoded)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Errorf("unstable encoding for %q/%v", name, typ)
			}
		}
	}
}

func TestRootNameRoundTrip(t *testing.T) {
	b, err := Encode(query(5, ".", TypeNS))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "." {
		t.Errorf("root name decoded as %q", got.Questions[0].Name)
	}
}

func BenchmarkEncode(b *testing.B) {
	m := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: "www.example.com", Type: TypeA, Class: ClassIN}},
		Answers: []Record{
			ARecord("www.example.com", 300, [4]byte{192, 0, 2, 1}),
			ARecord("www.example.com", 300, [4]byte{192, 0, 2, 2}),
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	m := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: "www.example.com", Type: TypeA, Class: ClassIN}},
		Answers: []Record{
			ARecord("www.example.com", 300, [4]byte{192, 0, 2, 1}),
		},
	}
	buf, err := Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMXRecordRoundTrip(t *testing.T) {
	mx, err := MXRecord("example.com", 3600, 10, "mail.example.com")
	if err != nil {
		t.Fatal(err)
	}
	m := &Message{
		Header:    Header{ID: 3, Response: true},
		Questions: []Question{{Name: "example.com", Type: TypeMX, Class: ClassIN}},
		Answers:   []Record{mx},
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	pref, exch, err := got.Answers[0].MX()
	if err != nil || pref != 10 || exch != "mail.example.com" {
		t.Fatalf("MX = %d %q %v", pref, exch, err)
	}
	if _, err := got.Answers[0].TXT(); err == nil {
		t.Fatal("TXT accessor accepted an MX record")
	}
}

func TestTXTRecordRoundTrip(t *testing.T) {
	txt, err := TXTRecord("example.com", 300, "v=spf1 -all", "second string")
	if err != nil {
		t.Fatal(err)
	}
	m := &Message{
		Header:    Header{ID: 4, Response: true},
		Questions: []Question{{Name: "example.com", Type: TypeTXT, Class: ClassIN}},
		Answers:   []Record{txt},
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	texts, err := got.Answers[0].TXT()
	if err != nil || len(texts) != 2 || texts[0] != "v=spf1 -all" || texts[1] != "second string" {
		t.Fatalf("TXT = %v %v", texts, err)
	}
	if _, err := TXTRecord("x.com", 1, strings.Repeat("a", 256)); err == nil {
		t.Fatal("oversized TXT string accepted")
	}
}

func TestAAAARecordRoundTrip(t *testing.T) {
	var ip6 [16]byte
	ip6[0], ip6[15] = 0x20, 0x01
	m := &Message{
		Header:    Header{ID: 5, Response: true},
		Questions: []Question{{Name: "v6.example.com", Type: TypeAAAA, Class: ClassIN}},
		Answers:   []Record{AAAARecord("v6.example.com", 60, ip6)},
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	back, ok := got.Answers[0].IPv6()
	if !ok || back != ip6 {
		t.Fatalf("IPv6 = %v ok=%v", back, ok)
	}
	if _, ok := got.Answers[0].IPv4(); ok {
		t.Fatal("IPv4 accessor accepted an AAAA record")
	}
}

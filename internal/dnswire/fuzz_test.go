package dnswire

import (
	"bytes"
	"testing"
)

// FuzzDecodeMessage drives Decode with arbitrary bytes. Invariants:
// Decode never panics on malformed RFC 1035 input; when it accepts a
// message, re-encoding either fails cleanly (hostile names with
// embedded dots do not round-trip) or produces bytes that decode again.
func FuzzDecodeMessage(f *testing.F) {
	// Seed corpus: the well-formed messages the unit tests exercise,
	// plus truncation and pointer edge cases.
	seed := func(m *Message) {
		b, err := Encode(m)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(b)
	}
	seed(query(0x1234, "maps.google.com", TypeA))
	seed(query(1, ".", TypeNS))
	cname, err := CNAMERecord("www.example.com", "edge.cdn.example.com", 300)
	if err != nil {
		f.Fatal(err)
	}
	seed(&Message{
		Header:    Header{ID: 7, Response: true, RCode: RCodeNoError},
		Questions: []Question{{Name: "www.example.com", Type: TypeA, Class: ClassIN}},
		Answers: []Record{
			cname,
			ARecord("edge.cdn.example.com", 60, [4]byte{192, 0, 2, 10}),
		},
	})
	f.Add([]byte{})                                   // short message
	f.Add(bytes.Repeat([]byte{0xc0}, 64))             // pointer soup
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0}) // count without body
	f.Add(append(make([]byte, 12), 0xc0, 0x0c, 0, 0)) // self-referential pointer
	f.Add(append(make([]byte, 12), 63, 'a', 'b'))     // label overruns buffer

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		out, err := Encode(m)
		if err != nil {
			// Decoded names may contain bytes (embedded dots, empty
			// labels) Encode rejects; a clean error is acceptable.
			return
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v\noriginal: %x\nencoded:  %x", err, b, out)
		}
	})
}

package dnswire

import (
	"fmt"
	"strings"
)

// Encode serializes m into wire format. Domain names in the question and
// record-owner positions are compressed against previously written names,
// as real resolvers do.
func Encode(m *Message) ([]byte, error) {
	buf := make([]byte, 0, 128)
	offsets := make(map[string]int)

	flags := uint16(0)
	if m.Header.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.Opcode&0xf) << 11
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.Truncated {
		flags |= 1 << 9
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.Header.RCode) & 0xf

	buf = appendUint16(buf, m.Header.ID)
	buf = appendUint16(buf, flags)
	buf = appendUint16(buf, uint16(len(m.Questions)))
	buf = appendUint16(buf, uint16(len(m.Answers)))
	buf = appendUint16(buf, uint16(len(m.Authority)))
	buf = appendUint16(buf, uint16(len(m.Additional)))

	var err error
	for _, q := range m.Questions {
		buf, err = appendName(buf, q.Name, offsets, len(buf))
		if err != nil {
			return nil, fmt.Errorf("encoding question %q: %w", q.Name, err)
		}
		buf = appendUint16(buf, uint16(q.Type))
		buf = appendUint16(buf, uint16(q.Class))
	}
	for _, section := range [][]Record{m.Answers, m.Authority, m.Additional} {
		for _, r := range section {
			buf, err = appendRecord(buf, r, offsets)
			if err != nil {
				return nil, fmt.Errorf("encoding record %q: %w", r.Name, err)
			}
		}
	}
	return buf, nil
}

func appendRecord(buf []byte, r Record, offsets map[string]int) ([]byte, error) {
	buf, err := appendName(buf, r.Name, offsets, len(buf))
	if err != nil {
		return nil, err
	}
	buf = appendUint16(buf, uint16(r.Type))
	buf = appendUint16(buf, uint16(r.Class))
	buf = append(buf,
		byte(r.TTL>>24), byte(r.TTL>>16), byte(r.TTL>>8), byte(r.TTL))
	if len(r.Data) > 0xffff {
		return nil, fmt.Errorf("dnswire: rdata length %d exceeds 65535", len(r.Data))
	}
	buf = appendUint16(buf, uint16(len(r.Data)))
	buf = append(buf, r.Data...)
	return buf, nil
}

func appendUint16(buf []byte, v uint16) []byte {
	return append(buf, byte(v>>8), byte(v))
}

// appendName writes name in wire format. When offsets is non-nil, buf must
// be the whole message so far: suffixes already written are replaced with
// compression pointers and new suffixes at pointer-encodable offsets are
// recorded. Pass offsets == nil (and any base) to encode a standalone
// uncompressed name, e.g. inside rdata.
func appendName(buf []byte, name string, offsets map[string]int, base int) ([]byte, error) {
	_ = base // retained for call-site symmetry; offsets are taken from len(buf)
	name = strings.TrimSuffix(strings.ToLower(name), ".")
	if name == "" {
		return append(buf, 0), nil
	}
	if len(name) > 253 {
		return nil, ErrNameTooLong
	}
	labels := strings.Split(name, ".")
	for i := range labels {
		if labels[i] == "" {
			return nil, ErrBadName
		}
		if len(labels[i]) > 63 {
			return nil, ErrLabelTooLong
		}
		if offsets != nil {
			suffix := strings.Join(labels[i:], ".")
			if off, ok := offsets[suffix]; ok {
				return append(buf, byte(0xc0|off>>8), byte(off)), nil
			}
			if len(buf) <= 0x3fff {
				offsets[suffix] = len(buf)
			}
		}
		buf = append(buf, byte(len(labels[i])))
		buf = append(buf, labels[i]...)
	}
	return append(buf, 0), nil
}

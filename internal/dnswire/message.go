// Package dnswire implements a subset of the DNS wire format (RFC 1035)
// sufficient to encode and decode the query and response packets the
// paper's collection pipeline captures at campus edge routers: the
// 12-byte header, question section, and answer records of types A, AAAA,
// NS, CNAME, MX and TXT, including name compression pointers.
//
// The traffic generator (internal/dnssim) can emit real packets through
// this package and the preprocessing pipeline (internal/pipeline) parses
// them back, so the capture path of the paper's Figure 2 architecture is
// exercised end to end rather than mocked.
package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Type is a DNS resource record type.
type Type uint16

// Record types implemented by this package. The paper's collector records
// the query type of every packet (A, NS, CNAME, MX, ...).
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
)

// String returns the conventional mnemonic for t.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// ParseType converts a mnemonic produced by Type.String back to a Type.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(s) {
	case "A":
		return TypeA, nil
	case "NS":
		return TypeNS, nil
	case "CNAME":
		return TypeCNAME, nil
	case "MX":
		return TypeMX, nil
	case "TXT":
		return TypeTXT, nil
	case "AAAA":
		return TypeAAAA, nil
	}
	var n uint16
	if _, err := fmt.Sscanf(strings.ToUpper(s), "TYPE%d", &n); err == nil {
		return Type(n), nil
	}
	return 0, fmt.Errorf("dnswire: unknown record type %q", s)
}

// Class is a DNS class; only IN is used.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes observed in the traffic model.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
)

// Header is the fixed 12-byte DNS message header.
type Header struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is a single entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// Record is a resource record from the answer, authority, or additional
// sections. Data holds the type-specific payload:
//
//	A:     4-byte IPv4 address
//	AAAA:  16-byte IPv6 address
//	CNAME, NS: encoded target name (use TargetName)
//	MX:    2-byte preference followed by encoded exchange name
//	TXT:   length-prefixed character strings
type Record struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  []byte
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []Record
	Authority  []Record
	Additional []Record
}

// Errors returned by the decoder.
var (
	ErrShortMessage   = errors.New("dnswire: message truncated")
	ErrBadName        = errors.New("dnswire: malformed domain name")
	ErrBadPointer     = errors.New("dnswire: bad compression pointer")
	ErrNameTooLong    = errors.New("dnswire: domain name exceeds 255 octets")
	ErrLabelTooLong   = errors.New("dnswire: label exceeds 63 octets")
	ErrTooManyRecords = errors.New("dnswire: implausible record count")
)

// ARecord builds an answer Record of type A for the dotted-quad address.
func ARecord(name string, ttl uint32, ip4 [4]byte) Record {
	return Record{Name: name, Type: TypeA, Class: ClassIN, TTL: ttl, Data: ip4[:]}
}

// IPv4 extracts the address from an A record. ok is false for other types
// or malformed data.
func (r Record) IPv4() (ip [4]byte, ok bool) {
	if r.Type != TypeA || len(r.Data) != 4 {
		return ip, false
	}
	copy(ip[:], r.Data)
	return ip, true
}

// CNAMERecord builds a CNAME answer pointing name at target.
func CNAMERecord(name, target string, ttl uint32) (Record, error) {
	data, err := appendName(nil, target, nil, -1)
	if err != nil {
		return Record{}, err
	}
	return Record{Name: name, Type: TypeCNAME, Class: ClassIN, TTL: ttl, Data: data}, nil
}

// TargetName decodes the domain name payload of a CNAME or NS record.
func (r Record) TargetName() (string, error) {
	if r.Type != TypeCNAME && r.Type != TypeNS {
		return "", fmt.Errorf("dnswire: TargetName on %v record", r.Type)
	}
	name, _, err := readName(r.Data, 0, 0)
	return name, err
}

// MXRecord builds an MX answer with the given preference and exchange
// host.
func MXRecord(name string, ttl uint32, preference uint16, exchange string) (Record, error) {
	data := []byte{byte(preference >> 8), byte(preference)}
	data, err := appendName(data, exchange, nil, -1)
	if err != nil {
		return Record{}, err
	}
	return Record{Name: name, Type: TypeMX, Class: ClassIN, TTL: ttl, Data: data}, nil
}

// MX decodes an MX record's payload.
func (r Record) MX() (preference uint16, exchange string, err error) {
	if r.Type != TypeMX {
		return 0, "", fmt.Errorf("dnswire: MX on %v record", r.Type)
	}
	if len(r.Data) < 3 {
		return 0, "", ErrShortMessage
	}
	preference = uint16(r.Data[0])<<8 | uint16(r.Data[1])
	exchange, _, err = readName(r.Data, 2, 0)
	return preference, exchange, err
}

// TXTRecord builds a TXT answer from one or more character strings; each
// must be at most 255 bytes.
func TXTRecord(name string, ttl uint32, texts ...string) (Record, error) {
	var data []byte
	for _, t := range texts {
		if len(t) > 255 {
			return Record{}, fmt.Errorf("dnswire: TXT string exceeds 255 bytes")
		}
		data = append(data, byte(len(t)))
		data = append(data, t...)
	}
	return Record{Name: name, Type: TypeTXT, Class: ClassIN, TTL: ttl, Data: data}, nil
}

// TXT decodes a TXT record's character strings.
func (r Record) TXT() ([]string, error) {
	if r.Type != TypeTXT {
		return nil, fmt.Errorf("dnswire: TXT on %v record", r.Type)
	}
	var out []string
	for i := 0; i < len(r.Data); {
		n := int(r.Data[i])
		i++
		if i+n > len(r.Data) {
			return nil, ErrShortMessage
		}
		out = append(out, string(r.Data[i:i+n]))
		i += n
	}
	return out, nil
}

// AAAARecord builds an answer Record of type AAAA.
func AAAARecord(name string, ttl uint32, ip6 [16]byte) Record {
	return Record{Name: name, Type: TypeAAAA, Class: ClassIN, TTL: ttl, Data: ip6[:]}
}

// IPv6 extracts the address from an AAAA record.
func (r Record) IPv6() (ip [16]byte, ok bool) {
	if r.Type != TypeAAAA || len(r.Data) != 16 {
		return ip, false
	}
	copy(ip[:], r.Data)
	return ip, true
}

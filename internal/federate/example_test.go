package federate_test

import (
	"fmt"

	"repro/internal/federate"
)

func ExampleCorrelate() {
	reports := []federate.CampusReport{
		{
			Campus:    "campus-a",
			Flagged:   map[string]float64{"relay1.bad": 0.9, "relay2.bad": 0.7},
			DomainIPs: map[string][]string{"relay1.bad": {"203.0.113.9"}},
		},
		{
			Campus:    "campus-b",
			Flagged:   map[string]float64{"relay3.bad": 0.8},
			DomainIPs: map[string][]string{"relay3.bad": {"203.0.113.9"}},
			Clusters:  [][]string{{"relay3.bad"}},
		},
		{
			Campus:  "campus-a",
			Flagged: map[string]float64{"relay2.bad": 0.6},
		},
	}
	campaigns := federate.Correlate(reports, federate.Config{MinCampuses: 2, MinDomains: 2})
	for _, c := range campaigns {
		fmt.Printf("%d domains across %d campuses via %v\n",
			len(c.Domains), len(c.Campuses), c.SharedIPs)
	}
	// Output:
	// 2 domains across 2 campuses via [203.0.113.9]
}

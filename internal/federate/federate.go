// Package federate implements the paper's stated future work (§10):
// deploying the detection system across several distributed campus or
// enterprise networks and correlating their findings to mine large-scale
// attack campaigns spanning networks.
//
// Each participating network ("campus") contributes a CampusReport — the
// domains its local detector flagged, the resolution infrastructure it
// observed, and its local cluster structure. Correlate links findings
// across reports into Campaigns: connected components of the evidence
// graph whose vertices are flagged domains and whose edges are
//
//   - identity: the same e2LD flagged on two networks,
//   - infrastructure: two flagged domains resolving to a shared address,
//   - locality: two domains in one campus's same behavioral cluster.
//
// A campaign is reported when the component spans at least MinCampuses
// networks — isolated single-network findings stay local, exactly the
// triage split a federated deployment needs.
package federate

import (
	"fmt"
	"sort"
)

// CampusReport is one network's contribution to the federation.
type CampusReport struct {
	// Campus names the contributing network.
	Campus string
	// Flagged maps each locally detected suspicious e2LD to its local
	// detection score (higher = more suspicious).
	Flagged map[string]float64
	// DomainIPs lists the addresses each flagged domain resolved to
	// locally.
	DomainIPs map[string][]string
	// Clusters groups flagged domains by the campus's local behavioral
	// clustering; domains outside any cluster may be omitted.
	Clusters [][]string
}

// Config tunes correlation.
type Config struct {
	// MinCampuses is the minimum number of distinct networks a campaign
	// must span (default 2).
	MinCampuses int
	// MinDomains is the minimum campaign size in domains (default 3).
	MinDomains int
}

func (c Config) withDefaults() Config {
	if c.MinCampuses <= 0 {
		c.MinCampuses = 2
	}
	if c.MinDomains <= 0 {
		c.MinDomains = 3
	}
	return c
}

// Campaign is one cross-network attack campaign.
type Campaign struct {
	// Domains are the campaign's e2LDs, sorted.
	Domains []string
	// Campuses are the networks that observed it, sorted.
	Campuses []string
	// SharedIPs are addresses linking campaign domains, sorted.
	SharedIPs []string
	// MaxScore is the highest local detection score across members.
	MaxScore float64
}

// Correlate merges campus reports into cross-network campaigns.
func Correlate(reports []CampusReport, cfg Config) []Campaign {
	cfg = cfg.withDefaults()

	// Assign ids to (domain) vertices; remember per-domain campuses,
	// scores and IPs across reports.
	id := make(map[string]int)
	var names []string
	vertex := func(d string) int {
		if i, ok := id[d]; ok {
			return i
		}
		i := len(names)
		id[d] = i
		names = append(names, d)
		return i
	}
	campusesOf := make(map[string]map[string]bool)
	scoreOf := make(map[string]float64)
	ipsOf := make(map[string]map[string]bool)

	uf := newUnionFind()
	ipOwners := make(map[string][]int) // address -> domain vertices

	for _, r := range reports {
		for d, score := range r.Flagged {
			v := vertex(d)
			uf.ensure(v)
			if campusesOf[d] == nil {
				campusesOf[d] = make(map[string]bool)
			}
			campusesOf[d][r.Campus] = true
			if score > scoreOf[d] {
				scoreOf[d] = score
			}
			for _, ip := range r.DomainIPs[d] {
				if ipsOf[d] == nil {
					ipsOf[d] = make(map[string]bool)
				}
				ipsOf[d][ip] = true
				ipOwners[ip] = append(ipOwners[ip], v)
			}
		}
		// Locality edges: a campus's cluster members belong together.
		for _, cluster := range r.Clusters {
			var prev = -1
			for _, d := range cluster {
				if _, flagged := r.Flagged[d]; !flagged {
					continue
				}
				v := vertex(d)
				uf.ensure(v)
				if prev >= 0 {
					uf.union(prev, v)
				}
				prev = v
			}
		}
	}
	// Infrastructure edges: domains sharing a resolved address.
	for _, owners := range ipOwners {
		for i := 1; i < len(owners); i++ {
			uf.union(owners[0], owners[i])
		}
	}

	// Collect components.
	comp := make(map[int][]string)
	for d, v := range id {
		comp[uf.find(v)] = append(comp[uf.find(v)], d)
	}
	var out []Campaign
	for _, domains := range comp {
		campusSet := make(map[string]bool)
		ipCount := make(map[string]int)
		maxScore := 0.0
		for _, d := range domains {
			for c := range campusesOf[d] {
				campusSet[c] = true
			}
			for ip := range ipsOf[d] {
				ipCount[ip]++
			}
			if scoreOf[d] > maxScore {
				maxScore = scoreOf[d]
			}
		}
		if len(domains) < cfg.MinDomains || len(campusSet) < cfg.MinCampuses {
			continue
		}
		c := Campaign{MaxScore: maxScore}
		c.Domains = append(c.Domains, domains...)
		sort.Strings(c.Domains)
		for campus := range campusSet {
			c.Campuses = append(c.Campuses, campus)
		}
		sort.Strings(c.Campuses)
		for ip, n := range ipCount {
			if n >= 2 { // shared by at least two campaign domains
				c.SharedIPs = append(c.SharedIPs, ip)
			}
		}
		sort.Strings(c.SharedIPs)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Domains) != len(out[j].Domains) {
			return len(out[i].Domains) > len(out[j].Domains)
		}
		return out[i].Domains[0] < out[j].Domains[0]
	})
	return out
}

// Summary renders campaigns as an aligned text table.
func Summary(campaigns []Campaign) string {
	out := fmt.Sprintf("%-8s %-9s %-10s %-9s %s\n", "domains", "campuses", "shared_ips", "score", "sample")
	for _, c := range campaigns {
		sample := ""
		if len(c.Domains) > 0 {
			sample = c.Domains[0]
		}
		out += fmt.Sprintf("%-8d %-9d %-10d %-9.3f %s\n",
			len(c.Domains), len(c.Campuses), len(c.SharedIPs), c.MaxScore, sample)
	}
	return out
}

// unionFind is a small path-compressing disjoint-set forest.
type unionFind struct {
	parent map[int]int
}

func newUnionFind() *unionFind { return &unionFind{parent: make(map[int]int)} }

func (u *unionFind) ensure(v int) {
	if _, ok := u.parent[v]; !ok {
		u.parent[v] = v
	}
}

func (u *unionFind) find(v int) int {
	u.ensure(v)
	for u.parent[v] != v {
		u.parent[v] = u.parent[u.parent[v]]
		v = u.parent[v]
	}
	return v
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

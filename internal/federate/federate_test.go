package federate

import (
	"strings"
	"testing"

	"repro/internal/dnssim"
)

func report(campus string, flags map[string]float64, ips map[string][]string, clusters [][]string) CampusReport {
	return CampusReport{Campus: campus, Flagged: flags, DomainIPs: ips, Clusters: clusters}
}

func TestIdentityLinking(t *testing.T) {
	// The same three domains flagged on two campuses form one campaign.
	a := report("campus-a",
		map[string]float64{"x1.bad": 0.9, "x2.bad": 0.8, "x3.bad": 0.7},
		nil, [][]string{{"x1.bad", "x2.bad", "x3.bad"}})
	b := report("campus-b",
		map[string]float64{"x1.bad": 0.6, "x2.bad": 0.5, "x3.bad": 0.9},
		nil, [][]string{{"x1.bad", "x2.bad", "x3.bad"}})
	campaigns := Correlate([]CampusReport{a, b}, Config{})
	if len(campaigns) != 1 {
		t.Fatalf("got %d campaigns, want 1", len(campaigns))
	}
	c := campaigns[0]
	if len(c.Domains) != 3 || len(c.Campuses) != 2 {
		t.Fatalf("campaign = %+v", c)
	}
	if c.MaxScore != 0.9 {
		t.Errorf("MaxScore = %v", c.MaxScore)
	}
}

func TestInfrastructureLinking(t *testing.T) {
	// Different domains per campus, linked only by a shared C&C address.
	a := report("campus-a",
		map[string]float64{"a1.bad": 0.9, "a2.bad": 0.8},
		map[string][]string{"a1.bad": {"203.0.113.5"}, "a2.bad": {"203.0.113.5"}},
		nil)
	b := report("campus-b",
		map[string]float64{"b1.bad": 0.7},
		map[string][]string{"b1.bad": {"203.0.113.5"}},
		nil)
	campaigns := Correlate([]CampusReport{a, b}, Config{})
	if len(campaigns) != 1 {
		t.Fatalf("got %d campaigns, want 1", len(campaigns))
	}
	c := campaigns[0]
	if len(c.Domains) != 3 {
		t.Fatalf("domains = %v", c.Domains)
	}
	if len(c.SharedIPs) != 1 || c.SharedIPs[0] != "203.0.113.5" {
		t.Fatalf("shared ips = %v", c.SharedIPs)
	}
}

func TestSingleCampusFindingsStayLocal(t *testing.T) {
	a := report("campus-a",
		map[string]float64{"only1.bad": 0.9, "only2.bad": 0.9, "only3.bad": 0.9},
		map[string][]string{"only1.bad": {"1.1.1.1"}, "only2.bad": {"1.1.1.1"}, "only3.bad": {"1.1.1.1"}},
		nil)
	b := report("campus-b", map[string]float64{"other.bad": 0.5, "more.bad": 0.4, "third.bad": 0.3}, nil, nil)
	campaigns := Correlate([]CampusReport{a, b}, Config{})
	if len(campaigns) != 0 {
		t.Fatalf("single-network findings escalated: %+v", campaigns)
	}
}

func TestMinDomainsFilter(t *testing.T) {
	a := report("campus-a", map[string]float64{"x.bad": 0.9}, nil, nil)
	b := report("campus-b", map[string]float64{"x.bad": 0.9}, nil, nil)
	if got := Correlate([]CampusReport{a, b}, Config{MinDomains: 2}); len(got) != 0 {
		t.Fatalf("undersized campaign reported: %+v", got)
	}
	if got := Correlate([]CampusReport{a, b}, Config{MinDomains: 1}); len(got) != 1 {
		t.Fatalf("campaign missing at MinDomains=1: %+v", got)
	}
}

func TestClusterBridging(t *testing.T) {
	// x.bad appears on both campuses; campus-a's cluster ties it to
	// y.bad, so y.bad joins the cross-campus campaign transitively.
	a := report("campus-a",
		map[string]float64{"x.bad": 0.9, "y.bad": 0.8},
		nil, [][]string{{"x.bad", "y.bad"}})
	b := report("campus-b", map[string]float64{"x.bad": 0.7}, nil, nil)
	campaigns := Correlate([]CampusReport{a, b}, Config{MinDomains: 2})
	if len(campaigns) != 1 || len(campaigns[0].Domains) != 2 {
		t.Fatalf("campaign = %+v", campaigns)
	}
}

func TestClusterSkipsUnflaggedMembers(t *testing.T) {
	// Cluster lists a domain that was not flagged; it must not enter the
	// evidence graph.
	a := report("campus-a",
		map[string]float64{"x.bad": 0.9},
		nil, [][]string{{"x.bad", "innocent.com"}})
	b := report("campus-b", map[string]float64{"x.bad": 0.9}, nil, nil)
	campaigns := Correlate([]CampusReport{a, b}, Config{MinDomains: 1})
	for _, c := range campaigns {
		for _, d := range c.Domains {
			if d == "innocent.com" {
				t.Fatal("unflagged domain entered a campaign")
			}
		}
	}
}

func TestSummaryFormat(t *testing.T) {
	a := report("campus-a", map[string]float64{"x.bad": 0.9, "y.bad": 0.4, "z.bad": 0.2},
		nil, [][]string{{"x.bad", "y.bad", "z.bad"}})
	b := report("campus-b", map[string]float64{"x.bad": 0.8}, nil, nil)
	out := Summary(Correlate([]CampusReport{a, b}, Config{}))
	if !strings.Contains(out, "campuses") || !strings.Contains(out, "x.bad") {
		t.Errorf("summary malformed:\n%s", out)
	}
}

// TestSharedFamilySeedAcrossCampuses pins the dnssim knob the federation
// relies on: distinct campus seeds with one FamilySeed must observe the
// same malware campaign domains.
func TestSharedFamilySeedAcrossCampuses(t *testing.T) {
	cfgA := dnssim.SmallScenario(101)
	cfgA.FamilySeed = 777
	cfgB := dnssim.SmallScenario(202)
	cfgB.FamilySeed = 777
	a := dnssim.NewScenario(cfgA)
	b := dnssim.NewScenario(cfgB)

	famA := a.Families()
	famB := b.Families()
	if len(famA) != len(famB) {
		t.Fatalf("family counts differ: %d vs %d", len(famA), len(famB))
	}
	shared, total := 0, 0
	for name, domainsA := range famA {
		setB := make(map[string]bool)
		for _, d := range famB[name] {
			setB[d] = true
		}
		for _, d := range domainsA {
			total++
			if setB[d] {
				shared++
			}
		}
	}
	if total == 0 || shared < total*9/10 {
		t.Fatalf("campuses share only %d/%d family domains", shared, total)
	}
	// And the benign worlds must differ.
	benA := a.BenignDomains()
	setB := make(map[string]bool)
	for _, d := range b.BenignDomains() {
		setB[d] = true
	}
	overlap := 0
	for _, d := range benA {
		if setB[d] {
			overlap++
		}
	}
	if overlap > len(benA)/2 {
		t.Fatalf("benign catalogs overlap on %d/%d domains; campuses too similar", overlap, len(benA))
	}
}

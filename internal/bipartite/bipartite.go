// Package bipartite implements the paper's behavioral modeling stage
// (§4): the three bipartite graphs that relate domains to the hosts that
// query them (HDBG), the IP addresses they resolve to (DIBG), and the
// minutes in which they are queried (DTBG); the pruning rules of §4.1;
// and the one-mode projections onto the domain vertex set with
// Jaccard-coefficient edge weights (§4.2).
package bipartite

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/pipeline"
)

// View names one of the three behavioral views of §4.2.
type View int

// The three behavioral views.
const (
	// ViewQuery is the domain querying behavioral similarity view
	// (shared querying hosts, Eq. 1).
	ViewQuery View = iota + 1
	// ViewIP is the domain IP resolving similarity view (shared resolved
	// addresses, Eq. 2).
	ViewIP
	// ViewTime is the domain temporal similarity view (shared active
	// minutes, Eq. 3).
	ViewTime
)

// String returns the view's short name.
func (v View) String() string {
	switch v {
	case ViewQuery:
		return "query"
	case ViewIP:
		return "ip"
	case ViewTime:
		return "time"
	default:
		return fmt.Sprintf("view(%d)", int(v))
	}
}

// Views lists all three views in canonical order.
var Views = []View{ViewQuery, ViewIP, ViewTime}

// Graph is one bipartite graph: a shared ordered domain vertex set and,
// per domain, the sorted set of attribute vertices (hosts, IPs, or
// minutes) it connects to, as dense attribute ids. Graphs are immutable
// after construction and safe for concurrent reads.
type Graph struct {
	View    View
	Domains []string
	// Sets[i] holds the sorted attribute ids adjacent to Domains[i].
	Sets [][]int32
	// AttrCount is the number of distinct attribute vertices.
	AttrCount int
	// EdgeCount is the total number of bipartite edges.
	EdgeCount int
}

// PruneConfig is the §4.1 graph reduction policy.
type PruneConfig struct {
	// MaxHostFrac removes domains queried by more than this fraction of
	// all observed devices (well-known services such as search engines).
	// Default 0.5, matching the paper's "over 50% of end hosts" rule.
	MaxHostFrac float64
	// MinHosts removes domains queried by fewer than this many distinct
	// devices. Default 2, matching the paper's single-host rule.
	MinHosts int
}

// DefaultPrune is the paper's pruning policy.
var DefaultPrune = PruneConfig{MaxHostFrac: 0.5, MinHosts: 2}

// Build constructs all three bipartite graphs from pipeline aggregates
// over a shared pruned domain vertex set. deviceCount is the total number
// of distinct devices observed (the denominator of the >50% rule).
func Build(stats map[string]*pipeline.DomainStats, deviceCount int, prune PruneConfig) (query, ip, timeg *Graph) {
	domains := retainedDomains(stats, deviceCount, prune)

	query = &Graph{View: ViewQuery, Domains: domains}
	ip = &Graph{View: ViewIP, Domains: domains}
	timeg = &Graph{View: ViewTime, Domains: domains}

	hostIDs := newInterner()
	ipIDs := newInterner()
	minuteIDs := newInterner()

	query.Sets = make([][]int32, len(domains))
	ip.Sets = make([][]int32, len(domains))
	timeg.Sets = make([][]int32, len(domains))

	for i, d := range domains {
		st := stats[d]
		query.Sets[i] = internStrings(hostIDs, st.Hosts)
		ip.Sets[i] = internStrings(ipIDs, st.IPs)
		timeg.Sets[i] = internInts(minuteIDs, st.Minutes)
		query.EdgeCount += len(query.Sets[i])
		ip.EdgeCount += len(ip.Sets[i])
		timeg.EdgeCount += len(timeg.Sets[i])
	}
	query.AttrCount = hostIDs.count
	ip.AttrCount = ipIDs.count
	timeg.AttrCount = minuteIDs.count
	return query, ip, timeg
}

// retainedDomains applies the pruning rules and returns the surviving
// domain list in deterministic (sorted) order.
func retainedDomains(stats map[string]*pipeline.DomainStats, deviceCount int, prune PruneConfig) []string {
	if prune.MaxHostFrac <= 0 {
		prune.MaxHostFrac = DefaultPrune.MaxHostFrac
	}
	if prune.MinHosts <= 0 {
		prune.MinHosts = DefaultPrune.MinHosts
	}
	limit := int(prune.MaxHostFrac * float64(deviceCount))
	var out []string
	for d, st := range stats {
		if len(st.Hosts) < prune.MinHosts {
			continue
		}
		if deviceCount > 0 && len(st.Hosts) > limit {
			continue
		}
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

type interner struct {
	strIDs map[string]int32
	intIDs map[int]int32
	count  int
}

func newInterner() *interner {
	return &interner{strIDs: make(map[string]int32), intIDs: make(map[int]int32)}
}

// internStrings assigns dense attribute ids in sorted key order so that
// repeated runs over the same stats produce identical Graphs, not merely
// isomorphic ones (attribute ids must not depend on map iteration
// order).
func internStrings(in *interner, set map[string]struct{}) []int32 {
	keys := make([]string, 0, len(set))
	for s := range set {
		keys = append(keys, s)
	}
	sort.Strings(keys)
	out := make([]int32, 0, len(keys))
	for _, s := range keys {
		id, ok := in.strIDs[s]
		if !ok {
			id = int32(in.count)
			in.strIDs[s] = id
			in.count++
		}
		out = append(out, id)
	}
	sortInt32(out)
	return out
}

// internInts is internStrings for integer attributes (minute buckets).
func internInts(in *interner, set map[int]struct{}) []int32 {
	keys := make([]int, 0, len(set))
	for v := range set {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	out := make([]int32, 0, len(keys))
	for _, v := range keys {
		id, ok := in.intIDs[v]
		if !ok {
			id = int32(in.count)
			in.intIDs[v] = id
			in.count++
		}
		out = append(out, id)
	}
	sortInt32(out)
	return out
}

func sortInt32(xs []int32) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Edge is one weighted edge of a one-mode projection: domains U and V
// (indices into the projection's Domains) with Jaccard weight W in (0,1].
// Edges always satisfy U < V.
type Edge struct {
	U, V int32
	W    float64
}

// Projection is the one-mode projection of a bipartite graph onto its
// domain vertex set (Figure 3(b)). It shares the Domains slice with the
// source graph.
type Projection struct {
	View    View
	Domains []string
	Edges   []Edge
}

// Measure selects the set-similarity coefficient used for projection
// edge weights. The paper uses Jaccard (Eqs. 1-3); the alternatives are
// provided for the ablation study in DESIGN.md §4.
type Measure int

// Similarity measures.
const (
	// MeasureJaccard is |A∩B| / |A∪B| (the paper's choice).
	MeasureJaccard Measure = iota
	// MeasureCosine is |A∩B| / √(|A|·|B|) (Ochiai coefficient).
	MeasureCosine
	// MeasureOverlap is |A∩B| / min(|A|, |B|) (Szymkiewicz-Simpson).
	MeasureOverlap
)

// String returns the measure's short name.
func (m Measure) String() string {
	switch m {
	case MeasureJaccard:
		return "jaccard"
	case MeasureCosine:
		return "cosine"
	case MeasureOverlap:
		return "overlap"
	default:
		return fmt.Sprintf("measure(%d)", int(m))
	}
}

// weight computes the coefficient from the intersection size and the two
// set sizes.
func (m Measure) weight(inter float64, lenA, lenB int) float64 {
	switch m {
	case MeasureCosine:
		return inter / math.Sqrt(float64(lenA)*float64(lenB))
	case MeasureOverlap:
		lo := lenA
		if lenB < lo {
			lo = lenB
		}
		if lo == 0 {
			return 0
		}
		return inter / float64(lo)
	default:
		union := float64(lenA+lenB) - inter
		if union <= 0 {
			return 0
		}
		return inter / union
	}
}

// ProjectConfig tunes projection construction.
type ProjectConfig struct {
	// Measure selects the similarity coefficient (default Jaccard, the
	// paper's choice).
	Measure Measure
	// MinSimilarity drops edges with weight below this threshold;
	// 0 keeps every nonzero-overlap pair. Thresholding controls graph
	// density for the embedding stage.
	MinSimilarity float64
	// MaxAttrDegree skips attribute vertices adjacent to more than this
	// many domains when counting intersections (stop-attribute filtering:
	// an address or minute shared by thousands of domains carries no
	// discriminative signal but dominates the quadratic cost). 0 means no
	// limit. Union sizes still use the full sets, so skipped attributes
	// can only shrink weights, never invent edges.
	MaxAttrDegree int
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
}

// Project computes the one-mode projection of g onto the domain set with
// Jaccard weights. The algorithm builds an attribute→domains inverted
// index, then for each domain accumulates intersection counts against all
// later domains using an epoch-tagged counter array, giving
// O(Σ_attr deg(attr)²) time without per-pair set operations.
//
// Scheduling: per-domain costs are wildly skewed (one mega-domain can
// cost as much as thousands of tail domains), so domains are handed to
// workers in descending estimated-cost order through a work-stealing
// chunk queue — an atomic cursor over the sorted order with guided chunk
// sizes that shrink as the queue drains. The expensive domains start
// first and the cheap tail backfills idle workers, so one hot domain no
// longer serializes the end of the stage. Output is deterministic
// regardless of worker count or schedule: each domain's edges are
// assembled into a per-domain slot and concatenated in domain order, and
// candidates are visited in sorted order within a domain.
func Project(g *Graph, cfg ProjectConfig) *Projection {
	n := len(g.Domains)
	proj := &Projection{View: g.View, Domains: g.Domains}
	if n == 0 {
		return proj
	}

	// Inverted index: attribute id -> domain ids having it.
	index := make([][]int32, g.AttrCount)
	for di, set := range g.Sets {
		for _, a := range set {
			index[a] = append(index[a], int32(di))
		}
	}

	// Estimated cost of projecting domain di: the candidate postings it
	// scans, Σ len(index[a]) over its attributes (skipping the ones the
	// stop-attribute filter will skip).
	cost := make([]int64, n)
	for di, set := range g.Sets {
		for _, a := range set {
			if cfg.MaxAttrDegree > 0 && len(index[a]) > cfg.MaxAttrDegree {
				continue
			}
			cost[di] += int64(len(index[a]))
		}
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if cost[order[i]] != cost[order[j]] {
			return cost[order[i]] > cost[order[j]]
		}
		return order[i] < order[j]
	})

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// edgesBy[di] is written by exactly one worker (the one that claimed
	// di) and read only after wg.Wait — no locking needed.
	edgesBy := make([][]Edge, n)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counts := make([]int32, n)
			stamped := make([]int32, n)
			var epoch int32
			var cands []int32 // reused candidate buffer across claimed domains
			var local []Edge  // reused per-domain edge scratch
			for {
				// Guided self-scheduling: claim a chunk sized to a
				// fraction of the (racily estimated) remaining work, so
				// claims are rare while the queue is long and fine-grained
				// near the end where imbalance hurts.
				remaining := n - int(cursor.Load())
				if remaining <= 0 {
					return
				}
				chunk := remaining / (workers * 4)
				if chunk < 1 {
					chunk = 1
				}
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for _, di32 := range order[start:end] {
					di := int(di32)
					epoch++
					set := g.Sets[di]
					// Accumulate |set ∩ other| for every other > di. A
					// candidate's count is seeded on first touch, so the
					// counter array needs no per-epoch reset pass.
					for _, a := range set {
						idx := index[a]
						if cfg.MaxAttrDegree > 0 && len(idx) > cfg.MaxAttrDegree {
							continue
						}
						for _, dj := range idx {
							if int(dj) <= di {
								continue
							}
							if stamped[dj] != epoch {
								stamped[dj] = epoch
								counts[dj] = 1
								cands = append(cands, dj)
							} else {
								counts[dj]++
							}
						}
					}
					// Sorted candidate order makes this domain's edge
					// slice identical no matter which worker built it.
					sortInt32(cands)
					local = local[:0]
					for _, dj := range cands {
						w := cfg.Measure.weight(float64(counts[dj]), len(set), len(g.Sets[dj]))
						if w >= cfg.MinSimilarity && w > 0 {
							local = append(local, Edge{U: int32(di), V: dj, W: w})
						}
					}
					cands = cands[:0]
					if len(local) > 0 {
						edgesBy[di] = append([]Edge(nil), local...)
					}
				}
			}
		}()
	}
	wg.Wait()

	total := 0
	for _, es := range edgesBy {
		total += len(es)
	}
	proj.Edges = make([]Edge, 0, total)
	for _, es := range edgesBy {
		proj.Edges = append(proj.Edges, es...)
	}
	return proj
}

// Similarity computes the exact Jaccard coefficient between the attribute
// sets of domains i and j of g (Eqs. 1-3). It is the reference
// implementation used by tests and by spot queries; Project is the bulk
// path.
func Similarity(g *Graph, i, j int) float64 {
	a, b := g.Sets[i], g.Sets[j]
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] == b[y]:
			inter++
			x++
			y++
		case a[x] < b[y]:
			x++
		default:
			y++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// DomainIndex returns a map from domain name to its index in g.Domains.
func (g *Graph) DomainIndex() map[string]int {
	m := make(map[string]int, len(g.Domains))
	for i, d := range g.Domains {
		m[d] = i
	}
	return m
}

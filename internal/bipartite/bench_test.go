package bipartite

import (
	"sync"
	"testing"

	"repro/internal/dnssim"
	"repro/internal/pipeline"
)

// benchGraphs lazily builds the three bipartite graphs of the small
// scenario once; every projection benchmark shares them.
var (
	benchOnce sync.Once
	benchQ    *Graph
	benchIP   *Graph
	benchT    *Graph
)

func benchBuild(b *testing.B) (q, ip, timeg *Graph) {
	b.Helper()
	benchOnce.Do(func() {
		s := dnssim.NewScenario(dnssim.SmallScenario(51))
		p := pipeline.NewProcessor(pipeline.Config{Start: s.Config.Start, Days: s.Config.Days, DHCP: s.DHCP()})
		s.Generate(func(ev dnssim.Event) { p.Consume(pipeline.Input(ev)) })
		benchQ, benchIP, benchT = Build(p.Stats(), p.DeviceCount(), DefaultPrune)
	})
	return benchQ, benchIP, benchT
}

// BenchmarkProject measures the one-mode projection over each behavioral
// view of the small scenario — the O(Σ deg(attr)²) stage that bounds
// month-scale runs — reporting produced projection edges per second.
// The time view uses the stop-attribute filter the detector applies at
// experiment scale (busy minutes are shared by most domains and would
// otherwise dominate the quadratic cost).
func BenchmarkProject(b *testing.B) {
	q, ip, timeg := benchBuild(b)
	cases := []struct {
		name string
		g    *Graph
		cfg  ProjectConfig
	}{
		{"query", q, ProjectConfig{MinSimilarity: 0.05}},
		{"ip", ip, ProjectConfig{MinSimilarity: 0.05}},
		{"time", timeg, ProjectConfig{MinSimilarity: 0.015, MaxAttrDegree: 2000}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			edges := 0
			for i := 0; i < b.N; i++ {
				proj := Project(tc.g, tc.cfg)
				edges += len(proj.Edges)
			}
			b.ReportMetric(float64(edges)/b.Elapsed().Seconds(), "edges/sec")
		})
	}
}

package bipartite

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dnssim"
	"repro/internal/mathx"
	"repro/internal/pipeline"
)

var t0 = time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)

// statsFixture builds pipeline stats by hand: domain -> hosts/ips/minutes.
func statsFixture(spec map[string]struct {
	hosts   []string
	ips     []string
	minutes []int
}) map[string]*pipeline.DomainStats {
	out := make(map[string]*pipeline.DomainStats)
	for d, s := range spec {
		st := &pipeline.DomainStats{
			E2LD:    d,
			Hosts:   make(map[string]struct{}),
			IPs:     make(map[string]struct{}),
			Minutes: make(map[int]struct{}),
			FQDNs:   map[string]struct{}{"www." + d: {}},
		}
		st.QueryCount = len(s.hosts)
		for _, h := range s.hosts {
			st.Hosts[h] = struct{}{}
		}
		for _, ip := range s.ips {
			st.IPs[ip] = struct{}{}
		}
		for _, m := range s.minutes {
			st.Minutes[m] = struct{}{}
		}
		out[d] = st
	}
	return out
}

type domSpec = struct {
	hosts   []string
	ips     []string
	minutes []int
}

func TestBuildAndExactSimilarity(t *testing.T) {
	stats := statsFixture(map[string]domSpec{
		"a.com": {hosts: []string{"h1", "h2", "h3"}, ips: []string{"1.1.1.1", "1.1.1.2"}, minutes: []int{1, 2, 3}},
		"b.com": {hosts: []string{"h2", "h3", "h4"}, ips: []string{"1.1.1.2", "1.1.1.3"}, minutes: []int{3, 4}},
		"c.com": {hosts: []string{"h5", "h6"}, ips: []string{"9.9.9.9"}, minutes: []int{100}},
	})
	q, ip, tg := Build(stats, 10, DefaultPrune)
	if len(q.Domains) != 3 {
		t.Fatalf("retained %d domains, want 3", len(q.Domains))
	}
	idx := q.DomainIndex()
	// Query view: |{h2,h3}| / |{h1..h4}| = 2/4.
	if got := Similarity(q, idx["a.com"], idx["b.com"]); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("query similarity a,b = %v, want 0.5", got)
	}
	// IP view: 1/3.
	if got := Similarity(ip, idx["a.com"], idx["b.com"]); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("ip similarity a,b = %v, want 1/3", got)
	}
	// Time view: {3} / {1,2,3,4} = 1/4.
	if got := Similarity(tg, idx["a.com"], idx["b.com"]); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("time similarity a,b = %v, want 0.25", got)
	}
	// Disjoint pair.
	if got := Similarity(q, idx["a.com"], idx["c.com"]); got != 0 {
		t.Errorf("query similarity a,c = %v, want 0", got)
	}
}

func TestPruningRules(t *testing.T) {
	hosts := make([]string, 20)
	for i := range hosts {
		hosts[i] = string(rune('A' + i))
	}
	stats := statsFixture(map[string]domSpec{
		"mega.com":   {hosts: hosts, ips: []string{"1.1.1.1"}, minutes: []int{1}},         // 20/20 hosts
		"single.com": {hosts: hosts[:1], ips: []string{"2.2.2.2"}, minutes: []int{2}},     // 1 host
		"normal.com": {hosts: hosts[:5], ips: []string{"3.3.3.3"}, minutes: []int{3, 4}},  // keep
		"edge.com":   {hosts: hosts[:10], ips: []string{"4.4.4.4"}, minutes: []int{5}},    // exactly 50%: keep
		"over.com":   {hosts: hosts[:11], ips: []string{"5.5.5.5"}, minutes: []int{6, 7}}, // >50%: prune
	})
	q, _, _ := Build(stats, 20, DefaultPrune)
	want := map[string]bool{"normal.com": true, "edge.com": true}
	if len(q.Domains) != len(want) {
		t.Fatalf("retained %v, want normal.com and edge.com", q.Domains)
	}
	for _, d := range q.Domains {
		if !want[d] {
			t.Errorf("unexpected retained domain %q", d)
		}
	}
}

func TestProjectMatchesExactSimilarity(t *testing.T) {
	// Random bipartite graph; verify Project against the pairwise
	// reference implementation.
	rng := mathx.NewRNG(99)
	spec := make(map[string]domSpec)
	for i := 0; i < 40; i++ {
		var hs []string
		n := 2 + rng.Intn(6)
		for j := 0; j < n; j++ {
			hs = append(hs, string(rune('a'+rng.Intn(20))))
		}
		spec[string(rune('A'+i%26))+string(rune('0'+i/26))+".com"] = domSpec{
			hosts: hs, ips: []string{"1.1.1.1"}, minutes: []int{1},
		}
	}
	stats := statsFixture(spec)
	q, _, _ := Build(stats, 1000, PruneConfig{MaxHostFrac: 1.0, MinHosts: 1})
	proj := Project(q, ProjectConfig{})

	got := make(map[[2]int32]float64)
	for _, e := range proj.Edges {
		if e.U >= e.V {
			t.Fatalf("edge not canonical: %+v", e)
		}
		got[[2]int32{e.U, e.V}] = e.W
	}
	n := len(q.Domains)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			want := Similarity(q, i, j)
			g := got[[2]int32{int32(i), int32(j)}]
			if math.Abs(g-want) > 1e-12 {
				t.Fatalf("edge (%d,%d): project=%v exact=%v", i, j, g, want)
			}
		}
	}
}

func TestProjectThreshold(t *testing.T) {
	stats := statsFixture(map[string]domSpec{
		"a.com": {hosts: []string{"h1", "h2"}, ips: []string{"1.1.1.1"}, minutes: []int{1}},
		"b.com": {hosts: []string{"h1", "h2"}, ips: []string{"1.1.1.1"}, minutes: []int{1}},
		"c.com": {hosts: []string{"h2", "h3", "h4", "h5"}, ips: []string{"1.1.1.1"}, minutes: []int{1}},
	})
	q, _, _ := Build(stats, 100, PruneConfig{MaxHostFrac: 1, MinHosts: 1})
	all := Project(q, ProjectConfig{})
	high := Project(q, ProjectConfig{MinSimilarity: 0.5})
	if len(all.Edges) != 3 {
		t.Fatalf("unthresholded edges = %d, want 3", len(all.Edges))
	}
	if len(high.Edges) != 1 {
		t.Fatalf("thresholded edges = %d, want 1 (only the identical pair)", len(high.Edges))
	}
	if high.Edges[0].W != 1.0 {
		t.Errorf("surviving edge weight %v, want 1.0", high.Edges[0].W)
	}
}

func TestProjectStopAttributeFilter(t *testing.T) {
	// One hot host shared by everyone, plus a discriminative host pair.
	spec := make(map[string]domSpec)
	for i := 0; i < 30; i++ {
		h := []string{"hot"}
		if i < 2 {
			h = append(h, "rare")
		}
		spec[string(rune('a'+i))+".com"] = domSpec{hosts: h, ips: []string{"1.1.1.1"}, minutes: []int{1}}
	}
	stats := statsFixture(spec)
	q, _, _ := Build(stats, 1000, PruneConfig{MaxHostFrac: 1, MinHosts: 1})
	filtered := Project(q, ProjectConfig{MaxAttrDegree: 10})
	// Only the pair sharing "rare" should produce an edge.
	if len(filtered.Edges) != 1 {
		t.Fatalf("filtered edges = %d, want 1", len(filtered.Edges))
	}
	// And the weight must still use the full union (2 sets of size 2
	// sharing 1 counted attr: 1/(2+2-1)).
	if want := 1.0 / 3; math.Abs(filtered.Edges[0].W-want) > 1e-12 {
		t.Errorf("filtered weight %v, want %v", filtered.Edges[0].W, want)
	}
}

func TestProjectDeterministicAcrossWorkerCounts(t *testing.T) {
	s := dnssim.NewScenario(dnssim.SmallScenario(21))
	p := pipeline.NewProcessor(pipeline.Config{Start: t0, Days: s.Config.Days, DHCP: s.DHCP()})
	s.Generate(func(ev dnssim.Event) { p.Consume(pipeline.Input(ev)) })
	q, _, _ := Build(p.Stats(), p.DeviceCount(), DefaultPrune)

	p1 := Project(q, ProjectConfig{MinSimilarity: 0.05, Workers: 1})
	p8 := Project(q, ProjectConfig{MinSimilarity: 0.05, Workers: 8})
	if len(p1.Edges) != len(p8.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(p1.Edges), len(p8.Edges))
	}
	for i := range p1.Edges {
		if p1.Edges[i] != p8.Edges[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, p1.Edges[i], p8.Edges[i])
		}
	}
}

// Regression: the parallel projection must produce byte-identical edge
// lists across repeated runs with Workers > 1 — not merely
// set-identical ones. The per-domain assembly makes the output
// independent of which worker claims which domain and of claim order;
// this guards the guarantee against scheduler-dependent merges,
// including under the stop-attribute filter, whose skipped postings
// also change per-domain cost estimates (and hence the claim order).
func TestProjectByteIdenticalAcrossRuns(t *testing.T) {
	s := dnssim.NewScenario(dnssim.SmallScenario(43))
	p := pipeline.NewProcessor(pipeline.Config{Start: s.Config.Start, Days: s.Config.Days, DHCP: s.DHCP()})
	s.Generate(func(ev dnssim.Event) { p.Consume(pipeline.Input(ev)) })
	q, _, timeg := Build(p.Stats(), p.DeviceCount(), DefaultPrune)

	cases := []struct {
		name string
		g    *Graph
		cfg  ProjectConfig
	}{
		{"query", q, ProjectConfig{MinSimilarity: 0.05, Workers: 4}},
		{"time/maxattrdegree", timeg, ProjectConfig{MinSimilarity: 0.015, MaxAttrDegree: 50, Workers: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := Project(tc.g, tc.cfg)
			if len(ref.Edges) == 0 {
				t.Fatal("fixture produced no edges; test is vacuous")
			}
			for run := 0; run < 5; run++ {
				got := Project(tc.g, tc.cfg)
				if len(got.Edges) != len(ref.Edges) {
					t.Fatalf("run %d: %d edges, want %d", run, len(got.Edges), len(ref.Edges))
				}
				for i := range got.Edges {
					if got.Edges[i] != ref.Edges[i] {
						t.Fatalf("run %d edge %d: %+v != %+v", run, i, got.Edges[i], ref.Edges[i])
					}
				}
			}
			// And single-worker output matches the parallel output.
			seq := tc.cfg
			seq.Workers = 1
			one := Project(tc.g, seq)
			if len(one.Edges) != len(ref.Edges) {
				t.Fatalf("workers=1: %d edges, want %d", len(one.Edges), len(ref.Edges))
			}
			for i := range one.Edges {
				if one.Edges[i] != ref.Edges[i] {
					t.Fatalf("workers=1 edge %d: %+v != %+v", i, one.Edges[i], ref.Edges[i])
				}
			}
		})
	}
}

// Property: projection weights are in (0,1], symmetric by construction,
// and 1.0 exactly when the two attribute sets coincide.
func TestProjectionWeightProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		spec := make(map[string]domSpec)
		for i := 0; i < 15; i++ {
			n := 1 + rng.Intn(5)
			hs := make([]string, 0, n)
			for j := 0; j < n; j++ {
				hs = append(hs, string(rune('a'+rng.Intn(8))))
			}
			spec[string(rune('a'+i))+".org"] = domSpec{hosts: hs, ips: []string{"1.1.1.1"}, minutes: []int{1}}
		}
		q, _, _ := Build(statsFixture(spec), 1000, PruneConfig{MaxHostFrac: 1, MinHosts: 1})
		proj := Project(q, ProjectConfig{Workers: 2})
		for _, e := range proj.Edges {
			if e.W <= 0 || e.W > 1 {
				return false
			}
			same := len(q.Sets[e.U]) == len(q.Sets[e.V])
			if same {
				for k := range q.Sets[e.U] {
					if q.Sets[e.U][k] != q.Sets[e.V][k] {
						same = false
						break
					}
				}
			}
			if same != (e.W == 1.0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Family domains must be far more similar to each other in the query view
// than random benign-benign pairs — the signal the whole paper rides on.
func TestFamilyCohesionInQueryView(t *testing.T) {
	s := dnssim.NewScenario(dnssim.SmallScenario(31))
	p := pipeline.NewProcessor(pipeline.Config{Start: s.Config.Start, Days: s.Config.Days, DHCP: s.DHCP()})
	s.Generate(func(ev dnssim.Event) { p.Consume(pipeline.Input(ev)) })
	q, _, _ := Build(p.Stats(), p.DeviceCount(), DefaultPrune)
	idx := q.DomainIndex()

	fams := s.Families()
	famSim, famPairs := 0.0, 0
	for _, domains := range fams {
		var present []int
		for _, d := range domains {
			if i, ok := idx[d]; ok {
				present = append(present, i)
			}
		}
		for i := 0; i < len(present) && i < 12; i++ {
			for j := i + 1; j < len(present) && j < 12; j++ {
				famSim += Similarity(q, present[i], present[j])
				famPairs++
			}
		}
	}
	if famPairs == 0 {
		t.Fatal("no family pairs present after pruning")
	}

	truth := s.TruthTable()
	rng := mathx.NewRNG(77)
	benSim, benPairs := 0.0, 0
	var benign []int
	for d, i := range idx {
		if l, ok := truth[d]; ok && !l.Malicious {
			benign = append(benign, i)
		}
	}
	sort.Ints(benign) // fixed order so the seeded pair sampling below is reproducible
	for k := 0; k < 2000 && len(benign) >= 2; k++ {
		i, j := rng.Intn(len(benign)), rng.Intn(len(benign))
		if i == j {
			continue
		}
		benSim += Similarity(q, benign[i], benign[j])
		benPairs++
	}
	famAvg := famSim / float64(famPairs)
	benAvg := benSim / float64(benPairs)
	if famAvg < 3*benAvg {
		t.Errorf("family cohesion too weak: family avg %.4f vs benign avg %.4f", famAvg, benAvg)
	}
}

func BenchmarkProjectQueryView(b *testing.B) {
	s := dnssim.NewScenario(dnssim.SmallScenario(51))
	p := pipeline.NewProcessor(pipeline.Config{Start: s.Config.Start, Days: s.Config.Days, DHCP: s.DHCP()})
	s.Generate(func(ev dnssim.Event) { p.Consume(pipeline.Input(ev)) })
	q, _, _ := Build(p.Stats(), p.DeviceCount(), DefaultPrune)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Project(q, ProjectConfig{MinSimilarity: 0.05})
	}
}

func TestSimilarityMeasures(t *testing.T) {
	stats := statsFixture(map[string]domSpec{
		"a.com": {hosts: []string{"h1", "h2", "h3"}, ips: []string{"1.1.1.1"}, minutes: []int{1}},
		"b.com": {hosts: []string{"h2", "h3"}, ips: []string{"1.1.1.1"}, minutes: []int{1}},
	})
	q, _, _ := Build(stats, 100, PruneConfig{MaxHostFrac: 1, MinHosts: 1})

	cases := []struct {
		measure Measure
		want    float64
	}{
		{MeasureJaccard, 2.0 / 3},         // |∩|=2, |∪|=3
		{MeasureCosine, 2 / math.Sqrt(6)}, // 2/√(3·2)
		{MeasureOverlap, 1.0},             // 2/min(3,2)
	}
	for _, tc := range cases {
		proj := Project(q, ProjectConfig{Measure: tc.measure})
		if len(proj.Edges) != 1 {
			t.Fatalf("%v: %d edges", tc.measure, len(proj.Edges))
		}
		if math.Abs(proj.Edges[0].W-tc.want) > 1e-12 {
			t.Errorf("%v weight = %v, want %v", tc.measure, proj.Edges[0].W, tc.want)
		}
	}
}

func TestMeasureStrings(t *testing.T) {
	if MeasureJaccard.String() != "jaccard" || MeasureCosine.String() != "cosine" ||
		MeasureOverlap.String() != "overlap" {
		t.Error("measure names wrong")
	}
}

// Property: for any sets, overlap >= cosine >= jaccard.
func TestMeasureOrderingProperty(t *testing.T) {
	f := func(interRaw, aRaw, bRaw uint8) bool {
		lenA := int(aRaw%20) + 1
		lenB := int(bRaw%20) + 1
		maxInter := lenA
		if lenB < maxInter {
			maxInter = lenB
		}
		inter := float64(int(interRaw) % (maxInter + 1))
		j := MeasureJaccard.weight(inter, lenA, lenB)
		c := MeasureCosine.weight(inter, lenA, lenB)
		o := MeasureOverlap.weight(inter, lenA, lenB)
		return o >= c-1e-12 && c >= j-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package svm implements a C-support-vector classifier trained with
// Platt's sequential minimal optimization (SMO), the supervised learning
// component of the paper's pipeline (§6.2). The paper uses an RBF kernel
// with penalty parameter C = 0.09 and kernel coefficient γ = 0.06; both
// are the defaults here. Decision values (Eq. 7) are exposed so the
// evaluation stage can sweep thresholds for ROC/AUC.
package svm

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/mathx"
)

// Kernel computes k(x, y) for feature vectors.
type Kernel interface {
	Compute(x, y []float64) float64
	// Name identifies the kernel in model summaries.
	Name() string
}

// RBF is the radial basis function kernel exp(-γ‖x−y‖²).
type RBF struct {
	Gamma float64
}

var _ Kernel = RBF{}

// Compute implements Kernel.
func (k RBF) Compute(x, y []float64) float64 {
	return math.Exp(-k.Gamma * mathx.SquaredDistance(x, y))
}

// Name implements Kernel.
func (k RBF) Name() string { return fmt.Sprintf("rbf(gamma=%g)", k.Gamma) }

// Linear is the dot-product kernel.
type Linear struct{}

var _ Kernel = Linear{}

// Compute implements Kernel.
func (Linear) Compute(x, y []float64) float64 { return mathx.Dot(x, y) }

// Name implements Kernel.
func (Linear) Name() string { return "linear" }

// Config parameterizes training. Defaults follow the paper: RBF kernel,
// C = 0.09, γ = 0.06.
type Config struct {
	// C is the soft-margin penalty (default 0.09).
	C float64
	// Kernel defaults to RBF{Gamma: 0.06}.
	Kernel Kernel
	// Tol is the KKT violation tolerance (default 1e-3).
	Tol float64
	// MaxPasses bounds full sweeps without progress before SMO stops
	// (default 5); MaxIter bounds total pair optimizations (default
	// 200·n, minimum 200k).
	MaxPasses int
	MaxIter   int
	// Seed drives the internal tie-breaking randomness.
	Seed uint64
}

func (c Config) withDefaults(n int) Config {
	if c.C <= 0 {
		c.C = 0.09
	}
	if c.Kernel == nil {
		c.Kernel = RBF{Gamma: 0.06}
	}
	if c.Tol <= 0 {
		c.Tol = 1e-3
	}
	if c.MaxPasses <= 0 {
		c.MaxPasses = 5
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 200 * n
		if c.MaxIter < 200_000 {
			c.MaxIter = 200_000
		}
	}
	return c
}

// Model is a trained classifier. It retains only the support vectors.
type Model struct {
	kernel Kernel
	// svX are the support vectors; svCoef[i] = α_i·y_i with y ∈ {−1,+1}.
	svX    [][]float64
	svCoef []float64
	b      float64
	// Iters reports SMO pair-optimization steps taken during training.
	Iters int

	// RBF decision fast path (see initFastPath): per-SV squared norms so
	// Decision needs one dot product per support vector instead of a
	// subtract-square distance pass.
	rbf      bool
	rbfGamma float64
	svNorm   []float64
}

// initFastPath precomputes the per-support-vector squared norms that let
// RBF decisions use ‖sv−x‖² = ‖sv‖²+‖x‖²−2·sv·x. Called once after
// training or deserialization; models are immutable afterwards, so the
// cached norms stay valid.
func (m *Model) initFastPath() {
	rbf, ok := m.kernel.(RBF)
	if !ok {
		return
	}
	m.rbf = true
	m.rbfGamma = rbf.Gamma
	m.svNorm = make([]float64, len(m.svX))
	for i, sv := range m.svX {
		m.svNorm[i] = mathx.SquaredNorm(sv)
	}
}

// Errors returned by Train.
var (
	ErrNoData    = errors.New("svm: empty training set")
	ErrOneClass  = errors.New("svm: training set contains a single class")
	ErrDimension = errors.New("svm: inconsistent feature dimensions")
	ErrBadLabel  = errors.New("svm: labels must be 0 or 1")
)

// Train fits a binary classifier on X with labels y (0 = negative/benign,
// 1 = positive/malicious), following the paper's class convention.
func Train(X [][]float64, y []int, cfg Config) (*Model, error) {
	n := len(X)
	if n == 0 || len(y) != n {
		return nil, ErrNoData
	}
	dim := len(X[0])
	pos := 0
	for i, x := range X {
		if len(x) != dim {
			return nil, ErrDimension
		}
		switch y[i] {
		case 1:
			pos++
		case 0:
		default:
			return nil, ErrBadLabel
		}
	}
	if pos == 0 || pos == n {
		return nil, ErrOneClass
	}
	cfg = cfg.withDefaults(n)

	t := &trainer{
		cfg:      cfg,
		x:        X,
		y:        make([]float64, n),
		alpha:    make([]float64, n),
		errs:     make([]float64, n),
		rng:      mathx.NewRNG(cfg.Seed),
		diag:     make([]float64, n),
		rowLRU:   newRowCache(n, 256<<20/(8*n)+1),
		workers:  runtime.GOMAXPROCS(0),
		xs:       make([]float64, n*dim),
		dim:      dim,
		nonBound: make([]uint64, (n+63)/64),
		posAlpha: make([]uint64, (n+63)/64),
	}
	for i, x := range X {
		copy(t.xs[i*dim:], x)
	}
	if rbf, ok := cfg.Kernel.(RBF); ok {
		t.rbfGamma = rbf.Gamma
		t.rbfNorm = make([]float64, n)
		for i, x := range X {
			t.rbfNorm[i] = mathx.SquaredNorm(x)
		}
	}
	for i := range y {
		if y[i] == 1 {
			t.y[i] = 1
		} else {
			t.y[i] = -1
		}
		t.diag[i] = cfg.Kernel.Compute(X[i], X[i])
	}
	// Initial errors: f(x)=0, so E_i = −y_i.
	for i := range t.errs {
		t.errs[i] = -t.y[i]
	}

	t.run()

	// The trainer follows Platt's convention u(x) = Σ αyK − b; the model
	// stores the additive offset, hence the sign flip.
	m := &Model{kernel: cfg.Kernel, b: -t.b, Iters: t.iters}
	for i, a := range t.alpha {
		if a > 0 {
			m.svX = append(m.svX, X[i])
			m.svCoef = append(m.svCoef, a*t.y[i])
		}
	}
	m.initFastPath()
	return m, nil
}

// Decision returns the signed distance-like score of Eq. 7: positive
// predicts malicious (class 1).
func (m *Model) Decision(x []float64) float64 {
	s := m.b
	if m.rbf {
		nx := mathx.SquaredNorm(x)
		for i, sv := range m.svX {
			d := m.svNorm[i] + nx - 2*mathx.Dot(sv, x)
			if d < 0 { // rounding guard; true squared distances are >= 0
				d = 0
			}
			s += m.svCoef[i] * mathx.ExpNeg(-m.rbfGamma*d)
		}
		return s
	}
	for i, sv := range m.svX {
		s += m.svCoef[i] * m.kernel.Compute(sv, x)
	}
	return s
}

// Predict returns the class label (0 or 1) for x.
func (m *Model) Predict(x []float64) int {
	if m.Decision(x) > 0 {
		return 1
	}
	return 0
}

// NumSV returns the number of support vectors retained.
func (m *Model) NumSV() int { return len(m.svX) }

// KernelName reports the kernel used for training.
func (m *Model) KernelName() string { return m.kernel.Name() }

package svm

import (
	"errors"
	"math"

	"repro/internal/mathx"
)

// PlattScaler maps raw SVM decision values to calibrated probabilities
// P(malicious | d) = 1/(1+exp(A·d+B)), fitted by Platt's method:
// regularized maximum likelihood on (decision value, label) pairs with
// Newton iterations and backtracking line search (Lin, Weng & Keerthi's
// numerically stable formulation).
type PlattScaler struct {
	A, B float64
}

// ErrCalibrationData is returned when calibration receives fewer than
// two samples or a single class.
var ErrCalibrationData = errors.New("svm: calibration needs both classes")

// FitPlatt fits a scaler on decision values and binary labels (1 =
// positive). For unbiased probabilities, use decision values from
// held-out data (e.g. cross-validation scores), not training scores.
func FitPlatt(decisions []float64, labels []int) (*PlattScaler, error) {
	n := len(decisions)
	if n < 2 || len(labels) != n {
		return nil, ErrCalibrationData
	}
	prior1, prior0 := 0, 0
	for _, l := range labels {
		if l == 1 {
			prior1++
		} else {
			prior0++
		}
	}
	if prior0 == 0 || prior1 == 0 {
		return nil, ErrCalibrationData
	}

	// Regularized targets.
	hiTarget := (float64(prior1) + 1) / (float64(prior1) + 2)
	loTarget := 1 / (float64(prior0) + 2)
	t := make([]float64, n)
	for i, l := range labels {
		if l == 1 {
			t[i] = hiTarget
		} else {
			t[i] = loTarget
		}
	}

	a := 0.0
	b := math.Log((float64(prior0) + 1) / (float64(prior1) + 1))
	fval := 0.0
	for i := 0; i < n; i++ {
		fApB := decisions[i]*a + b
		if fApB >= 0 {
			fval += t[i]*fApB + math.Log1p(math.Exp(-fApB))
		} else {
			fval += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
		}
	}

	const (
		maxIter = 100
		minStep = 1e-10
		sigma   = 1e-12
	)
	for iter := 0; iter < maxIter; iter++ {
		// Gradient and Hessian.
		h11, h22 := sigma, sigma
		h21, g1, g2 := 0.0, 0.0, 0.0
		for i := 0; i < n; i++ {
			fApB := decisions[i]*a + b
			var p, q float64
			if fApB >= 0 {
				p = math.Exp(-fApB) / (1 + math.Exp(-fApB))
				q = 1 / (1 + math.Exp(-fApB))
			} else {
				p = 1 / (1 + math.Exp(fApB))
				q = math.Exp(fApB) / (1 + math.Exp(fApB))
			}
			d2 := p * q
			h11 += decisions[i] * decisions[i] * d2
			h22 += d2
			h21 += decisions[i] * d2
			d1 := t[i] - p
			g1 += decisions[i] * d1
			g2 += d1
		}
		if math.Abs(g1) < 1e-5 && math.Abs(g2) < 1e-5 {
			break
		}
		// Newton direction.
		det := h11*h22 - h21*h21
		dA := -(h22*g1 - h21*g2) / det
		dB := -(-h21*g1 + h11*g2) / det
		gd := g1*dA + g2*dB

		// Backtracking line search.
		step := 1.0
		for step >= minStep {
			newA := a + step*dA
			newB := b + step*dB
			newF := 0.0
			for i := 0; i < n; i++ {
				fApB := decisions[i]*newA + newB
				if fApB >= 0 {
					newF += t[i]*fApB + math.Log1p(math.Exp(-fApB))
				} else {
					newF += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
				}
			}
			if newF < fval+1e-4*step*gd {
				a, b, fval = newA, newB, newF
				break
			}
			step /= 2
		}
		if step < minStep {
			break
		}
	}
	return &PlattScaler{A: a, B: b}, nil
}

// Probability maps a decision value to P(positive).
func (s *PlattScaler) Probability(decision float64) float64 {
	return mathx.Sigmoid(-(s.A*decision + s.B))
}

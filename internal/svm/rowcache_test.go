package svm

import (
	"math"
	"testing"
)

// takeRow registers key i and stamps the returned buffer with v so tests
// can tell buffers apart.
func takeRow(c *rowCache, i int, v float64) []float64 {
	row := c.take(i)
	row[0] = v
	return row
}

// Regression for the eviction policy: the cache is documented as LRU, so
// a get must refresh recency and eviction must remove the least recently
// *used* row — not the oldest-inserted one (the former FIFO behavior).
func TestRowCacheLRUHitRefresh(t *testing.T) {
	c := newRowCache(10, 2)

	takeRow(c, 1, 1)
	takeRow(c, 2, 2)
	if _, ok := c.get(1); !ok { // refreshes 1: LRU order is now [1, 2]
		t.Fatal("row 1 missing before eviction")
	}
	takeRow(c, 3, 3) // must evict 2 (least recently used), not 1

	if _, ok := c.get(2); ok {
		t.Error("row 2 survived eviction; FIFO behavior, want LRU")
	}
	if row, ok := c.get(1); !ok || row[0] != 1 {
		t.Error("row 1 evicted despite being refreshed by get")
	}
	if _, ok := c.get(3); !ok {
		t.Error("row 3 missing after take")
	}
	if c.len() != 2 {
		t.Errorf("cache holds %d rows, want 2", c.len())
	}
}

// take on an existing key must refresh recency and return the buffer
// already registered under that key.
func TestRowCacheLRUTakeRefresh(t *testing.T) {
	c := newRowCache(10, 2)
	r1 := takeRow(c, 1, 1)
	takeRow(c, 2, 2)
	if again := c.take(1); &again[0] != &r1[0] { // refresh 1, same buffer
		t.Fatal("take on an existing key returned a different buffer")
	}
	takeRow(c, 3, 3) // evicts 2

	if _, ok := c.get(2); ok {
		t.Error("row 2 survived eviction after take-refresh of row 1")
	}
	if row, ok := c.get(1); !ok || row[0] != 1 {
		t.Error("row 1 evicted or replaced; take on existing key should keep the cached row")
	}
}

// Eviction must hand the evicted row's buffer to the new key rather than
// allocating: SMO touches thousands of rows per training run and the
// recycle is what keeps the steady state allocation-free.
func TestRowCacheTakeRecyclesEvictedBuffer(t *testing.T) {
	c := newRowCache(10, 2)
	r1 := takeRow(c, 1, 1)
	takeRow(c, 2, 2)
	r3 := c.take(3) // evicts 1 (LRU) and should reuse its buffer
	if &r3[0] != &r1[0] {
		t.Error("take did not recycle the evicted row's buffer")
	}
	if len(r3) != 10 {
		t.Errorf("recycled buffer has length %d, want row length 10", len(r3))
	}
	if _, ok := c.get(1); ok {
		t.Error("row 1 survived eviction")
	}
}

func TestRowCacheCapClamps(t *testing.T) {
	c := newRowCache(3, 100) // cap > n clamps to n
	for i := 0; i < 3; i++ {
		takeRow(c, i, float64(i))
	}
	if c.len() != 3 {
		t.Errorf("cache holds %d rows, want 3", c.len())
	}
	takeRow(c, 9, 9)
	if c.len() != 3 {
		t.Errorf("cache grew past its cap: %d rows", c.len())
	}
	if _, ok := c.get(0); ok {
		t.Error("least recently used row 0 should have been evicted")
	}
}

// The cached-norm RBF fast path must agree with the reference kernel sum
// to within the documented ExpNeg error.
func TestDecisionFastPathMatchesReference(t *testing.T) {
	X, y := blobs(120, 3, 41)
	m, err := Train(X, y, Config{C: 1, Kernel: RBF{Gamma: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if !m.rbf {
		t.Fatal("RBF model did not enable the decision fast path")
	}
	for _, x := range X[:40] {
		got := m.Decision(x)
		want := m.b
		for i, sv := range m.svX {
			want += m.svCoef[i] * m.kernel.Compute(sv, x)
		}
		if diff := math.Abs(got - want); diff > 1e-7*(1+math.Abs(want)) {
			t.Fatalf("fast-path decision %v vs reference %v (diff %v)", got, want, diff)
		}
	}
}

package svm

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mathx"
)

// blobs generates two Gaussian clusters with the given separation.
func blobs(n int, sep float64, seed uint64) (X [][]float64, y []int) {
	rng := mathx.NewRNG(seed)
	for i := 0; i < n; i++ {
		label := i % 2
		cx := -sep / 2
		if label == 1 {
			cx = sep / 2
		}
		X = append(X, []float64{cx + rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, label)
	}
	return X, y
}

func accuracy(m *Model, X [][]float64, y []int) float64 {
	right := 0
	for i, x := range X {
		if m.Predict(x) == y[i] {
			right++
		}
	}
	return float64(right) / float64(len(X))
}

func TestLinearlySeparableBlobs(t *testing.T) {
	X, y := blobs(200, 6, 1)
	m, err := Train(X, y, Config{C: 1, Kernel: RBF{Gamma: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, X, y); acc < 0.97 {
		t.Errorf("training accuracy %.3f on well-separated blobs, want >= 0.97", acc)
	}
	Xtest, ytest := blobs(200, 6, 2)
	if acc := accuracy(m, Xtest, ytest); acc < 0.95 {
		t.Errorf("test accuracy %.3f, want >= 0.95", acc)
	}
}

func TestXORNeedsRBF(t *testing.T) {
	// XOR is the canonical non-linear case: linear kernels fail, RBF
	// separates it.
	rng := mathx.NewRNG(3)
	var X [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		a, b := rng.Float64() > 0.5, rng.Float64() > 0.5
		px, py := -1.0, -1.0
		if a {
			px = 1
		}
		if b {
			py = 1
		}
		X = append(X, []float64{px + 0.2*rng.NormFloat64(), py + 0.2*rng.NormFloat64()})
		if a != b {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	rbf, err := Train(X, y, Config{C: 5, Kernel: RBF{Gamma: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(rbf, X, y); acc < 0.95 {
		t.Errorf("RBF accuracy on XOR = %.3f, want >= 0.95", acc)
	}
	lin, err := Train(X, y, Config{C: 5, Kernel: Linear{}})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(lin, X, y); acc > 0.75 {
		t.Errorf("linear kernel accuracy on XOR = %.3f; suspiciously high", acc)
	}
}

func TestDecisionSignMatchesPredict(t *testing.T) {
	X, y := blobs(120, 4, 9)
	m, err := Train(X, y, Config{C: 1, Kernel: RBF{Gamma: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		d := m.Decision(x)
		p := m.Predict(x)
		if (d > 0) != (p == 1) {
			t.Fatalf("Decision %v disagrees with Predict %v", d, p)
		}
	}
}

func TestDecisionValuesRankClasses(t *testing.T) {
	X, y := blobs(200, 5, 17)
	m, err := Train(X, y, Config{C: 1, Kernel: RBF{Gamma: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	posMean, negMean := 0.0, 0.0
	np, nn := 0, 0
	for i, x := range X {
		if y[i] == 1 {
			posMean += m.Decision(x)
			np++
		} else {
			negMean += m.Decision(x)
			nn++
		}
	}
	posMean /= float64(np)
	negMean /= float64(nn)
	if posMean <= negMean {
		t.Errorf("mean decision: pos %.3f <= neg %.3f", posMean, negMean)
	}
}

func TestAlphasRespectBoxConstraint(t *testing.T) {
	X, y := blobs(150, 1.5, 5) // heavy overlap so many alphas hit C
	cfg := Config{C: 0.09, Kernel: RBF{Gamma: 0.06}}
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSV() == 0 {
		t.Fatal("no support vectors")
	}
	for _, c := range m.svCoef {
		if math.Abs(c) > cfg.C+1e-9 {
			t.Fatalf("|alpha y| = %v exceeds C = %v", math.Abs(c), cfg.C)
		}
	}
}

func TestPaperHyperparametersOnOverlappingData(t *testing.T) {
	// With the paper's C=0.09, gamma=0.06 the classifier must still beat
	// chance comfortably on moderately separated data.
	X, y := blobs(400, 3, 7)
	m, err := Train(X, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, X, y); acc < 0.85 {
		t.Errorf("accuracy with paper defaults = %.3f, want >= 0.85", acc)
	}
	if m.KernelName() != "rbf(gamma=0.06)" {
		t.Errorf("kernel name = %q", m.KernelName())
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty: %v", err)
	}
	X := [][]float64{{1}, {2}}
	if _, err := Train(X, []int{1, 1}, Config{}); !errors.Is(err, ErrOneClass) {
		t.Errorf("one class: %v", err)
	}
	if _, err := Train(X, []int{0, 2}, Config{}); !errors.Is(err, ErrBadLabel) {
		t.Errorf("bad label: %v", err)
	}
	bad := [][]float64{{1, 2}, {3}}
	if _, err := Train(bad, []int{0, 1}, Config{}); !errors.Is(err, ErrDimension) {
		t.Errorf("dimension: %v", err)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	X, y := blobs(100, 3, 21)
	cfg := Config{C: 1, Kernel: RBF{Gamma: 0.3}, Seed: 9}
	a, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x := X[i]
		if a.Decision(x) != b.Decision(x) {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestHighDimensionalSparseDifference(t *testing.T) {
	// Mimics the embedding setting: unit-ish vectors in 96-d where class
	// structure lives in a few coordinates.
	rng := mathx.NewRNG(31)
	var X [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		v := make([]float64, 96)
		for j := range v {
			v[j] = 0.05 * rng.NormFloat64()
		}
		label := i % 2
		if label == 1 {
			v[3] += 0.8
			v[40] -= 0.8
		} else {
			v[3] -= 0.8
			v[40] += 0.8
		}
		mathx.Normalize(v)
		X = append(X, v)
		y = append(y, label)
	}
	m, err := Train(X, y, Config{C: 1, Kernel: RBF{Gamma: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, X, y); acc < 0.95 {
		t.Errorf("high-dim accuracy %.3f, want >= 0.95", acc)
	}
}

func BenchmarkTrain500(b *testing.B) {
	X, y := blobs(500, 3, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(X, y, Config{C: 1, Kernel: RBF{Gamma: 0.3}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecision(b *testing.B) {
	X, y := blobs(500, 3, 13)
	m, err := Train(X, y, Config{C: 1, Kernel: RBF{Gamma: 0.3}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decision(X[i%len(X)])
	}
}

package svm

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Model persistence: a trained classifier serializes to a stream so the
// expensive training step (SMO over the full labeled set) runs once and
// deployments load the result. The format is Go gob of an exported
// surrogate; kernels serialize by name and parameters.

// modelWire is the serialized form of Model.
type modelWire struct {
	KernelName string
	Gamma      float64
	SVX        [][]float64
	SVCoef     []float64
	B          float64
}

// Save writes the model to w.
func (m *Model) Save(w io.Writer) error {
	wire := modelWire{
		SVX:    m.svX,
		SVCoef: m.svCoef,
		B:      m.b,
	}
	switch k := m.kernel.(type) {
	case RBF:
		wire.KernelName = "rbf"
		wire.Gamma = k.Gamma
	case Linear:
		wire.KernelName = "linear"
	default:
		return fmt.Errorf("svm: kernel %s is not serializable", m.kernel.Name())
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("svm: encoding model: %w", err)
	}
	return nil
}

// LoadModel reads a model written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	var wire modelWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("svm: decoding model: %w", err)
	}
	m := &Model{svX: wire.SVX, svCoef: wire.SVCoef, b: wire.B}
	switch wire.KernelName {
	case "rbf":
		m.kernel = RBF{Gamma: wire.Gamma}
	case "linear":
		m.kernel = Linear{}
	default:
		return nil, fmt.Errorf("svm: unknown kernel %q in stream", wire.KernelName)
	}
	if len(m.svX) != len(m.svCoef) {
		return nil, fmt.Errorf("svm: corrupt model: %d SVs vs %d coefficients",
			len(m.svX), len(m.svCoef))
	}
	m.initFastPath()
	return m, nil
}

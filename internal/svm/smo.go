package svm

import (
	"container/list"
	"math/bits"
	"sync"

	"repro/internal/mathx"
)

// trainer holds the mutable SMO state. The implementation follows
// Platt (1998): an outer loop alternating full sweeps with sweeps over
// non-bound examples, a second-choice heuristic that maximizes |E1−E2|,
// and an error cache updated incrementally after every successful step.
type trainer struct {
	cfg   Config
	x     [][]float64
	y     []float64 // ±1
	alpha []float64
	errs  []float64 // E_i = f(x_i) − y_i, maintained for all i
	b     float64
	diag  []float64
	rng   *mathx.RNG
	iters int

	// xs is x flattened into one contiguous n×dim matrix (row j at
	// xs[j*dim:]); kernel rows stream through it sequentially instead of
	// chasing per-row slice headers scattered on the heap.
	xs  []float64
	dim int
	// nonBound marks multipliers strictly inside (0, C). The SMO
	// heuristics scan non-bound examples constantly (second-choice on
	// every examine, then a full sweep); near convergence the set is
	// small, so a bitset walk beats testing every alpha. Bits are always
	// visited in ascending index order, so selection — including
	// tie-breaks — is identical to the plain loop it replaces.
	nonBound []uint64
	// posAlpha marks multipliers with alpha > 0 (the current support
	// vectors); errorOf sums over exactly these, in the same ascending
	// order as the full scan it replaces.
	posAlpha []uint64

	rowLRU *rowCache
	// workers bounds the parallel kernel-row fan-out (GOMAXPROCS at
	// Train time); rows are computed serially when it is 1 or the row is
	// short.
	workers int
	// RBF fast path: with per-vector squared norms cached, a kernel row
	// entry is exp(-γ(‖xi‖²+‖xj‖²−2·xi·xj)) — one dot product instead of
	// a subtract-square pass, and a bounded-error ExpNeg instead of
	// math.Exp. rbfNorm is nil for non-RBF kernels.
	rbfNorm  []float64
	rbfGamma float64
}

func (t *trainer) run() {
	n := len(t.x)
	examineAll := true
	passes := 0
	for passes < t.cfg.MaxPasses && t.iters < t.cfg.MaxIter {
		changed := 0
		if examineAll {
			for i := 0; i < n && t.iters < t.cfg.MaxIter; i++ {
				changed += t.examine(i)
			}
		} else {
			for i := 0; i < n && t.iters < t.cfg.MaxIter; i++ {
				if t.alpha[i] > 0 && t.alpha[i] < t.cfg.C {
					changed += t.examine(i)
				}
			}
		}
		switch {
		case examineAll:
			examineAll = false
			if changed == 0 {
				passes++ // full sweep with no progress counts toward stop
			}
		case changed == 0:
			examineAll = true
		}
	}
}

// examine applies Platt's heuristics to pick a partner for i2 and tries
// to optimize the pair. It returns 1 when a step was taken.
func (t *trainer) examine(i2 int) int {
	y2 := t.y[i2]
	a2 := t.alpha[i2]
	e2 := t.errs[i2]
	r2 := e2 * y2
	tol, c := t.cfg.Tol, t.cfg.C

	if (r2 < -tol && a2 < c) || (r2 > tol && a2 > 0) {
		// Heuristic 1: maximize |E1 − E2| over non-bound examples.
		if i1 := t.secondChoice(e2); i1 >= 0 && i1 != i2 {
			if t.step(i1, i2) {
				return 1
			}
		}
		// Heuristic 2: sweep non-bound examples from a random start.
		n := len(t.x)
		start := t.rng.Intn(n)
		if t.sweepNonBound(start, len(t.alpha), i2) || t.sweepNonBound(0, start, i2) {
			return 1
		}
		// Heuristic 3: sweep everything.
		start = t.rng.Intn(n)
		for k := 0; k < n; k++ {
			i1 := (start + k) % n
			if i1 == i2 {
				continue
			}
			if t.step(i1, i2) {
				return 1
			}
		}
	}
	return 0
}

func (t *trainer) secondChoice(e2 float64) int {
	best, bestGap := -1, -1.0
	errs := t.errs
	for w, word := range t.nonBound {
		for word != 0 {
			i := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			gap := errs[i] - e2
			if gap < 0 {
				gap = -gap
			}
			if gap > bestGap {
				best, bestGap = i, gap
			}
		}
	}
	return best
}

// sweepNonBound tries step(i1, i2) for every non-bound i1 in [lo, hi) in
// ascending order, returning true on the first successful step. It
// visits exactly the indices the plain modular sweep visited, in the
// same order.
func (t *trainer) sweepNonBound(lo, hi, i2 int) bool {
	for w := lo / 64; w*64 < hi; w++ {
		word := t.nonBound[w]
		if base := w * 64; base < lo {
			word &= ^uint64(0) << uint(lo-base)
		}
		if rem := hi - w*64; rem < 64 {
			word &= 1<<uint(rem) - 1
		}
		for word != 0 {
			i1 := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			if i1 != i2 && t.step(i1, i2) {
				return true
			}
		}
	}
	return false
}

// setBit sets or clears bit i of the bitset.
func setBit(bs []uint64, i int, on bool) {
	w, bit := i/64, uint(i%64)
	if on {
		bs[w] |= 1 << bit
	} else {
		bs[w] &^= 1 << bit
	}
}

// step jointly optimizes the pair (i1, i2). It returns true when the
// multipliers moved by a meaningful amount.
func (t *trainer) step(i1, i2 int) bool {
	if i1 == i2 {
		return false
	}
	a1, a2 := t.alpha[i1], t.alpha[i2]
	y1, y2 := t.y[i1], t.y[i2]
	e1, e2 := t.errs[i1], t.errs[i2]
	s := y1 * y2
	c := t.cfg.C

	var lo, hi float64
	if s < 0 {
		lo = maxf(0, a2-a1)
		hi = minf(c, c+a2-a1)
	} else {
		lo = maxf(0, a1+a2-c)
		hi = minf(c, a1+a2)
	}
	if lo >= hi {
		return false
	}

	// row1 is cache-owned storage, valid only until a later kernelRow
	// miss evicts its entry (see rowCache.take). It must survive exactly
	// one potential miss — the kernelRow(i2) fetch below — which holds
	// because newRowCache enforces cap >= 2 and this fetch leaves i1 at
	// the MRU position, so a subsequent single miss evicts some other
	// row. Do not insert additional kernelRow calls between here and the
	// last use of row1 (the error-cache refresh loop) without revisiting
	// that invariant.
	row1 := t.kernelRow(i1)
	k11 := t.diag[i1]
	k22 := t.diag[i2]
	k12 := row1[i2]
	eta := k11 + k22 - 2*k12

	var a2new float64
	if eta > 0 {
		a2new = a2 + y2*(e1-e2)/eta
		if a2new < lo {
			a2new = lo
		} else if a2new > hi {
			a2new = hi
		}
	} else {
		// Degenerate curvature: evaluate the objective at both clip ends.
		f1 := y1*(e1+t.b) - a1*k11 - s*a2*k12
		f2 := y2*(e2+t.b) - s*a1*k12 - a2*k22
		l1 := a1 + s*(a2-lo)
		h1 := a1 + s*(a2-hi)
		objLo := l1*f1 + lo*f2 + 0.5*l1*l1*k11 + 0.5*lo*lo*k22 + s*lo*l1*k12
		objHi := h1*f1 + hi*f2 + 0.5*h1*h1*k11 + 0.5*hi*hi*k22 + s*hi*h1*k12
		switch {
		case objLo < objHi-1e-12:
			a2new = lo
		case objLo > objHi+1e-12:
			a2new = hi
		default:
			return false
		}
	}
	if absf(a2new-a2) < 1e-12*(a2new+a2+1e-12) {
		return false
	}
	a1new := a1 + s*(a2-a2new)
	if a1new < 0 {
		a2new += s * a1new
		a1new = 0
	} else if a1new > c {
		a2new += s * (a1new - c)
		a1new = c
	}

	// Update threshold b (Platt's b1/b2 rule). This fetch may miss and
	// recycle the LRU buffer; row1 is safe because i1 is at the MRU
	// position (fetched above, cap >= 2), but after this point a further
	// miss could corrupt row1 — errorOf below only ever hits i1/i2.
	row2 := t.kernelRow(i2)
	b1 := e1 + y1*(a1new-a1)*k11 + y2*(a2new-a2)*k12 + t.b
	b2 := e2 + y1*(a1new-a1)*k12 + y2*(a2new-a2)*k22 + t.b
	var bNew float64
	switch {
	case a1new > 0 && a1new < c:
		bNew = b1
	case a2new > 0 && a2new < c:
		bNew = b2
	default:
		bNew = (b1 + b2) / 2
	}

	// Commit the step, then refresh the error cache incrementally.
	d1 := y1 * (a1new - a1)
	d2 := y2 * (a2new - a2)
	db := t.b - bNew
	t.alpha[i1] = a1new
	t.alpha[i2] = a2new
	t.b = bNew
	errs := t.errs
	r1 := row1[:len(errs)]
	r2 := row2[:len(errs)]
	for i := range errs {
		errs[i] += d1*r1[i] + d2*r2[i] + db
	}
	// Platt maintains E = 0 for freshly optimized non-bound multipliers;
	// recompute exactly for pair members that landed on a bound.
	setBit(t.posAlpha, i1, a1new > 0)
	setBit(t.posAlpha, i2, a2new > 0)
	if a1new > 0 && a1new < c {
		t.errs[i1] = 0
		setBit(t.nonBound, i1, true)
	} else {
		t.errs[i1] = t.errorOf(i1)
		setBit(t.nonBound, i1, false)
	}
	if a2new > 0 && a2new < c {
		t.errs[i2] = 0
		setBit(t.nonBound, i2, true)
	} else {
		t.errs[i2] = t.errorOf(i2)
		setBit(t.nonBound, i2, false)
	}
	t.iters++
	return true
}

// errorOf recomputes E_i = u(x_i) − y_i from scratch, with Platt's
// convention u(x) = Σ αyK − b. It is only used for freshly bounded pair
// members; everything else is maintained incrementally.
func (t *trainer) errorOf(i int) float64 {
	s := 0.0
	row := t.kernelRow(i)
	alpha, ys := t.alpha, t.y
	for w, word := range t.posAlpha {
		for word != 0 {
			j := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			s += alpha[j] * ys[j] * row[j]
		}
	}
	return s - t.b - t.y[i]
}

func (t *trainer) kernelRow(i int) []float64 {
	if row, ok := t.rowLRU.get(i); ok {
		return row
	}
	// take hands back the evicted row's buffer (or a fresh one while the
	// cache is filling), so the steady state allocates nothing and never
	// re-zeroes: computeRow overwrites every entry.
	row := t.rowLRU.take(i)
	t.computeRow(i, row)
	return row
}

// parallelRowMin is the row length below which the fan-out overhead of
// parallel row computation exceeds the work itself.
const parallelRowMin = 1024

// computeRow fills row with k(x_i, x_j) for all j, splitting the row
// across workers when it is long enough to amortize the goroutine
// fan-out. Chunks are disjoint, so workers never write the same index.
func (t *trainer) computeRow(i int, row []float64) {
	n := len(t.x)
	if t.workers <= 1 || n < parallelRowMin {
		t.fillRowRange(i, row, 0, n)
		return
	}
	chunk := (n + t.workers - 1) / t.workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			t.fillRowRange(i, row, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// fillRowRange computes row[lo:hi] of kernel row i, using the cached
// squared norms when the kernel is RBF. The RBF path walks the flat
// feature matrix, so consecutive j read consecutive memory.
func (t *trainer) fillRowRange(i int, row []float64, lo, hi int) {
	dim := t.dim
	if t.rbfNorm != nil {
		xi := t.xs[i*dim : i*dim+dim]
		ni := t.rbfNorm[i]
		g := t.rbfGamma
		norms := t.rbfNorm
		xs := t.xs
		// The dot products are written out (rather than calling
		// mathx.Dot) so they stay in the row loop's inlining scope: at
		// dim≈32 the call overhead is comparable to the dot itself.
		// Four consecutive j share each xi load — the loop is load-bound
		// — and two accumulators per j break the FP dependency chains.
		// The per-j summation (even k into one accumulator, odd k into
		// the other, remainder appended) is identical in the blocked
		// body and the tail, so every k(i, j) is bit-reproducible no
		// matter where chunk boundaries fall or how many workers run.
		j := lo
		for ; j+4 <= hi; j += 4 {
			base := j * dim
			xj0 := xs[base : base+dim]
			xj1 := xs[base+dim : base+2*dim]
			xj2 := xs[base+2*dim : base+3*dim]
			xj3 := xs[base+3*dim : base+4*dim]
			var a0, b0, a1, b1, a2, b2, a3, b3 float64
			k := 0
			for ; k+2 <= dim; k += 2 {
				x0, x1 := xi[k], xi[k+1]
				a0 += x0 * xj0[k]
				b0 += x1 * xj0[k+1]
				a1 += x0 * xj1[k]
				b1 += x1 * xj1[k+1]
				a2 += x0 * xj2[k]
				b2 += x1 * xj2[k+1]
				a3 += x0 * xj3[k]
				b3 += x1 * xj3[k+1]
			}
			dot0, dot1, dot2, dot3 := a0+b0, a1+b1, a2+b2, a3+b3
			for ; k < dim; k++ {
				x := xi[k]
				dot0 += x * xj0[k]
				dot1 += x * xj1[k]
				dot2 += x * xj2[k]
				dot3 += x * xj3[k]
			}
			d0 := ni + norms[j] - 2*dot0
			d1 := ni + norms[j+1] - 2*dot1
			d2 := ni + norms[j+2] - 2*dot2
			d3 := ni + norms[j+3] - 2*dot3
			// Rounding can push ‖xi−xj‖² a hair below zero.
			if d0 < 0 {
				d0 = 0
			}
			if d1 < 0 {
				d1 = 0
			}
			if d2 < 0 {
				d2 = 0
			}
			if d3 < 0 {
				d3 = 0
			}
			row[j] = mathx.ExpNeg(-g * d0)
			row[j+1] = mathx.ExpNeg(-g * d1)
			row[j+2] = mathx.ExpNeg(-g * d2)
			row[j+3] = mathx.ExpNeg(-g * d3)
		}
		for ; j < hi; j++ {
			xj := xs[j*dim : j*dim+dim]
			var a, b float64
			k := 0
			for ; k+2 <= dim; k += 2 {
				a += xi[k] * xj[k]
				b += xi[k+1] * xj[k+1]
			}
			dot := a + b
			for ; k < dim; k++ {
				dot += xi[k] * xj[k]
			}
			d := ni + norms[j] - 2*dot
			if d < 0 {
				d = 0
			}
			row[j] = mathx.ExpNeg(-g * d)
		}
		return
	}
	xi := t.x[i]
	for j := lo; j < hi; j++ {
		row[j] = t.cfg.Kernel.Compute(xi, t.x[j])
	}
}

// rowCache is a bounded LRU cache of kernel rows: get refreshes recency,
// take registers a key at the most-recent position and hands its caller
// a buffer to fill — recycling the evicted row's buffer once the cache
// is full, so the steady state allocates nothing.
type rowCache struct {
	rows map[int]*list.Element
	lru  *list.List // front = most recently used
	cap  int
	n    int // row length
	// arena is the tail of the current allocation block; new rows are
	// sliced off it so the cache makes a handful of large allocations
	// instead of one small zeroed allocation per row.
	arena []float64
}

// arenaBlockRows is how many rows each arena block holds.
const arenaBlockRows = 64

// rowEntry is the list payload: the row index plus its kernel values.
type rowEntry struct {
	key int
	row []float64
}

func newRowCache(n, capRows int) *rowCache {
	if capRows < 2 {
		capRows = 2
	}
	if capRows > n {
		capRows = n
	}
	return &rowCache{rows: make(map[int]*list.Element, capRows), lru: list.New(), cap: capRows, n: n}
}

func (c *rowCache) get(i int) ([]float64, bool) {
	el, ok := c.rows[i]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*rowEntry).row, true
}

// take returns the buffer registered under key i, inserting i at the
// most-recent position first. On a miss it evicts the least recently
// used row once the cache is full and recycles both its list element and
// its buffer. The buffer's previous contents are preserved for an
// existing key and stale garbage otherwise — the caller fills all n
// entries after a miss.
//
// Lifetime invariant: buffers returned by get/take are cache-owned and
// remain valid only until a later miss evicts their entry. Because
// newRowCache enforces cap >= 2, the MRU row is always guaranteed to
// survive the next single miss — step() relies on exactly that to keep
// row1 intact across its row2 fetch. Callers that need a row to outlive
// more than one subsequent miss must copy it.
func (c *rowCache) take(i int) []float64 {
	if el, ok := c.rows[i]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*rowEntry).row
	}
	if len(c.rows) >= c.cap {
		back := c.lru.Back()
		ent := back.Value.(*rowEntry)
		delete(c.rows, ent.key)
		ent.key = i
		c.lru.MoveToFront(back)
		c.rows[i] = back
		return ent.row
	}
	if len(c.arena) < c.n {
		blockRows := arenaBlockRows
		if left := c.cap - len(c.rows); left < blockRows {
			blockRows = left
		}
		c.arena = make([]float64, c.n*blockRows)
	}
	row := c.arena[:c.n:c.n]
	c.arena = c.arena[c.n:]
	c.rows[i] = c.lru.PushFront(&rowEntry{key: i, row: row})
	return row
}

// len reports the number of cached rows.
func (c *rowCache) len() int { return len(c.rows) }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func absf(a float64) float64 {
	if a < 0 {
		return -a
	}
	return a
}

package svm

import "repro/internal/mathx"

// trainer holds the mutable SMO state. The implementation follows
// Platt (1998): an outer loop alternating full sweeps with sweeps over
// non-bound examples, a second-choice heuristic that maximizes |E1−E2|,
// and an error cache updated incrementally after every successful step.
type trainer struct {
	cfg   Config
	x     [][]float64
	y     []float64 // ±1
	alpha []float64
	errs  []float64 // E_i = f(x_i) − y_i, maintained for all i
	b     float64
	diag  []float64
	rng   *mathx.RNG
	iters int

	rowLRU *rowCache
}

func (t *trainer) run() {
	n := len(t.x)
	examineAll := true
	passes := 0
	for passes < t.cfg.MaxPasses && t.iters < t.cfg.MaxIter {
		changed := 0
		if examineAll {
			for i := 0; i < n && t.iters < t.cfg.MaxIter; i++ {
				changed += t.examine(i)
			}
		} else {
			for i := 0; i < n && t.iters < t.cfg.MaxIter; i++ {
				if t.alpha[i] > 0 && t.alpha[i] < t.cfg.C {
					changed += t.examine(i)
				}
			}
		}
		switch {
		case examineAll:
			examineAll = false
			if changed == 0 {
				passes++ // full sweep with no progress counts toward stop
			}
		case changed == 0:
			examineAll = true
		}
	}
}

// examine applies Platt's heuristics to pick a partner for i2 and tries
// to optimize the pair. It returns 1 when a step was taken.
func (t *trainer) examine(i2 int) int {
	y2 := t.y[i2]
	a2 := t.alpha[i2]
	e2 := t.errs[i2]
	r2 := e2 * y2
	tol, c := t.cfg.Tol, t.cfg.C

	if (r2 < -tol && a2 < c) || (r2 > tol && a2 > 0) {
		// Heuristic 1: maximize |E1 − E2| over non-bound examples.
		if i1 := t.secondChoice(e2); i1 >= 0 && i1 != i2 {
			if t.step(i1, i2) {
				return 1
			}
		}
		// Heuristic 2: sweep non-bound examples from a random start.
		n := len(t.x)
		start := t.rng.Intn(n)
		for k := 0; k < n; k++ {
			i1 := (start + k) % n
			if i1 == i2 || t.alpha[i1] <= 0 || t.alpha[i1] >= c {
				continue
			}
			if t.step(i1, i2) {
				return 1
			}
		}
		// Heuristic 3: sweep everything.
		start = t.rng.Intn(n)
		for k := 0; k < n; k++ {
			i1 := (start + k) % n
			if i1 == i2 {
				continue
			}
			if t.step(i1, i2) {
				return 1
			}
		}
	}
	return 0
}

func (t *trainer) secondChoice(e2 float64) int {
	best, bestGap := -1, -1.0
	for i, a := range t.alpha {
		if a <= 0 || a >= t.cfg.C {
			continue
		}
		gap := t.errs[i] - e2
		if gap < 0 {
			gap = -gap
		}
		if gap > bestGap {
			best, bestGap = i, gap
		}
	}
	return best
}

// step jointly optimizes the pair (i1, i2). It returns true when the
// multipliers moved by a meaningful amount.
func (t *trainer) step(i1, i2 int) bool {
	if i1 == i2 {
		return false
	}
	a1, a2 := t.alpha[i1], t.alpha[i2]
	y1, y2 := t.y[i1], t.y[i2]
	e1, e2 := t.errs[i1], t.errs[i2]
	s := y1 * y2
	c := t.cfg.C

	var lo, hi float64
	if s < 0 {
		lo = maxf(0, a2-a1)
		hi = minf(c, c+a2-a1)
	} else {
		lo = maxf(0, a1+a2-c)
		hi = minf(c, a1+a2)
	}
	if lo >= hi {
		return false
	}

	row1 := t.kernelRow(i1)
	k11 := t.diag[i1]
	k22 := t.diag[i2]
	k12 := row1[i2]
	eta := k11 + k22 - 2*k12

	var a2new float64
	if eta > 0 {
		a2new = a2 + y2*(e1-e2)/eta
		if a2new < lo {
			a2new = lo
		} else if a2new > hi {
			a2new = hi
		}
	} else {
		// Degenerate curvature: evaluate the objective at both clip ends.
		f1 := y1*(e1+t.b) - a1*k11 - s*a2*k12
		f2 := y2*(e2+t.b) - s*a1*k12 - a2*k22
		l1 := a1 + s*(a2-lo)
		h1 := a1 + s*(a2-hi)
		objLo := l1*f1 + lo*f2 + 0.5*l1*l1*k11 + 0.5*lo*lo*k22 + s*lo*l1*k12
		objHi := h1*f1 + hi*f2 + 0.5*h1*h1*k11 + 0.5*hi*hi*k22 + s*hi*h1*k12
		switch {
		case objLo < objHi-1e-12:
			a2new = lo
		case objLo > objHi+1e-12:
			a2new = hi
		default:
			return false
		}
	}
	if absf(a2new-a2) < 1e-12*(a2new+a2+1e-12) {
		return false
	}
	a1new := a1 + s*(a2-a2new)
	if a1new < 0 {
		a2new += s * a1new
		a1new = 0
	} else if a1new > c {
		a2new += s * (a1new - c)
		a1new = c
	}

	// Update threshold b (Platt's b1/b2 rule).
	row2 := t.kernelRow(i2)
	b1 := e1 + y1*(a1new-a1)*k11 + y2*(a2new-a2)*k12 + t.b
	b2 := e2 + y1*(a1new-a1)*k12 + y2*(a2new-a2)*k22 + t.b
	var bNew float64
	switch {
	case a1new > 0 && a1new < c:
		bNew = b1
	case a2new > 0 && a2new < c:
		bNew = b2
	default:
		bNew = (b1 + b2) / 2
	}

	// Commit the step, then refresh the error cache incrementally.
	d1 := y1 * (a1new - a1)
	d2 := y2 * (a2new - a2)
	db := t.b - bNew
	t.alpha[i1] = a1new
	t.alpha[i2] = a2new
	t.b = bNew
	for i := range t.errs {
		t.errs[i] += d1*row1[i] + d2*row2[i] + db
	}
	// Platt maintains E = 0 for freshly optimized non-bound multipliers;
	// recompute exactly for pair members that landed on a bound.
	if a1new > 0 && a1new < c {
		t.errs[i1] = 0
	} else {
		t.errs[i1] = t.errorOf(i1)
	}
	if a2new > 0 && a2new < c {
		t.errs[i2] = 0
	} else {
		t.errs[i2] = t.errorOf(i2)
	}
	t.iters++
	return true
}

// errorOf recomputes E_i = u(x_i) − y_i from scratch, with Platt's
// convention u(x) = Σ αyK − b. It is only used for freshly bounded pair
// members; everything else is maintained incrementally.
func (t *trainer) errorOf(i int) float64 {
	s := 0.0
	row := t.kernelRow(i)
	for j, a := range t.alpha {
		if a > 0 {
			s += a * t.y[j] * row[j]
		}
	}
	return s - t.b - t.y[i]
}

func (t *trainer) kernelRow(i int) []float64 {
	if row, ok := t.rowLRU.get(i); ok {
		return row
	}
	row := make([]float64, len(t.x))
	xi := t.x[i]
	for j := range t.x {
		row[j] = t.cfg.Kernel.Compute(xi, t.x[j])
	}
	t.rowLRU.put(i, row)
	return row
}

// rowCache is a bounded FIFO cache of kernel rows.
type rowCache struct {
	rows  map[int][]float64
	order []int
	cap   int
}

func newRowCache(n, capRows int) *rowCache {
	if capRows < 2 {
		capRows = 2
	}
	if capRows > n {
		capRows = n
	}
	return &rowCache{rows: make(map[int][]float64, capRows), cap: capRows}
}

func (c *rowCache) get(i int) ([]float64, bool) {
	row, ok := c.rows[i]
	return row, ok
}

func (c *rowCache) put(i int, row []float64) {
	if _, exists := c.rows[i]; exists {
		return
	}
	if len(c.rows) >= c.cap {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.rows, old)
	}
	c.rows[i] = row
	c.order = append(c.order, i)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func absf(a float64) float64 {
	if a < 0 {
		return -a
	}
	return a
}

package svm

import (
	"bytes"
	"strings"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	X, y := blobs(150, 4, 3)
	for _, kernel := range []Kernel{RBF{Gamma: 0.4}, Linear{}} {
		m, err := Train(X, y, Config{C: 1, Kernel: kernel})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := LoadModel(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.KernelName() != m.KernelName() {
			t.Fatalf("kernel %q != %q", back.KernelName(), m.KernelName())
		}
		if back.NumSV() != m.NumSV() {
			t.Fatalf("SVs %d != %d", back.NumSV(), m.NumSV())
		}
		for i := 0; i < 50; i++ {
			if got, want := back.Decision(X[i]), m.Decision(X[i]); got != want {
				t.Fatalf("decision %v != %v after reload", got, want)
			}
		}
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage stream accepted")
	}
}

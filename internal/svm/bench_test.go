package svm

import (
	"testing"

	"repro/internal/mathx"
)

// embedLike generates n unit-normalized dim-d vectors with class
// structure in a few coordinates — the shape of the LINE embeddings the
// classifier consumes in the pipeline (§6).
func embedLike(n, dim int, seed uint64) (X [][]float64, y []int) {
	rng := mathx.NewRNG(seed)
	X = make([][]float64, n)
	y = make([]int, n)
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = 0.1 * rng.NormFloat64()
		}
		label := i % 2
		if label == 1 {
			v[1] += 0.6
			v[dim/2] -= 0.6
		} else {
			v[1] -= 0.6
			v[dim/2] += 0.6
		}
		mathx.Normalize(v)
		X[i] = v
		y[i] = label
	}
	return X, y
}

// BenchmarkSVMTrain measures RBF-SMO training at the labeled-set scale
// the experiments run at (n≈1k, embedding-dimensioned features),
// reporting training examples consumed per second.
func BenchmarkSVMTrain(b *testing.B) {
	X, y := embedLike(1000, 32, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Train(X, y, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if m.NumSV() == 0 {
			b.Fatal("no support vectors")
		}
	}
	b.ReportMetric(float64(len(X))*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
}

package svm

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestPlattMonotoneAndBounded(t *testing.T) {
	// Well-separated decisions: positives high, negatives low.
	rng := mathx.NewRNG(3)
	var dec []float64
	var lab []int
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			dec = append(dec, 1+0.5*rng.NormFloat64())
			lab = append(lab, 1)
		} else {
			dec = append(dec, -1+0.5*rng.NormFloat64())
			lab = append(lab, 0)
		}
	}
	s, err := FitPlatt(dec, lab)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, d := range []float64{-3, -1, 0, 1, 3} {
		p := s.Probability(d)
		if p <= 0 || p >= 1 {
			t.Fatalf("P(%v) = %v outside (0,1)", d, p)
		}
		if p < prev {
			t.Fatalf("probability not monotone at %v", d)
		}
		prev = p
	}
	if s.Probability(2) < 0.8 {
		t.Errorf("P(strongly positive) = %v, want > 0.8", s.Probability(2))
	}
	if s.Probability(-2) > 0.2 {
		t.Errorf("P(strongly negative) = %v, want < 0.2", s.Probability(-2))
	}
}

func TestPlattCalibrationQuality(t *testing.T) {
	// Decisions drawn so that P(y=1 | d) = sigmoid(2d): the fitted scaler
	// should recover probabilities close to the truth.
	rng := mathx.NewRNG(11)
	var dec []float64
	var lab []int
	for i := 0; i < 5000; i++ {
		d := 2 * rng.NormFloat64()
		p := mathx.Sigmoid(2 * d)
		dec = append(dec, d)
		if rng.Float64() < p {
			lab = append(lab, 1)
		} else {
			lab = append(lab, 0)
		}
	}
	s, err := FitPlatt(dec, lab)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{-1, -0.5, 0, 0.5, 1} {
		want := mathx.Sigmoid(2 * d)
		got := s.Probability(d)
		if math.Abs(got-want) > 0.08 {
			t.Errorf("P(%v) = %.3f, want ≈%.3f", d, got, want)
		}
	}
}

func TestPlattImbalancedPrior(t *testing.T) {
	// 10:1 imbalance with uninformative decisions: probabilities should
	// hover near the positive prior, not near 0.5.
	rng := mathx.NewRNG(7)
	var dec []float64
	var lab []int
	for i := 0; i < 1100; i++ {
		dec = append(dec, 0.01*rng.NormFloat64())
		if i < 100 {
			lab = append(lab, 1)
		} else {
			lab = append(lab, 0)
		}
	}
	s, err := FitPlatt(dec, lab)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Probability(0)
	if p < 0.03 || p > 0.25 {
		t.Errorf("P at prior-only information = %.3f, want ≈0.09", p)
	}
}

func TestPlattErrors(t *testing.T) {
	if _, err := FitPlatt(nil, nil); !errors.Is(err, ErrCalibrationData) {
		t.Errorf("empty: %v", err)
	}
	if _, err := FitPlatt([]float64{1, 2}, []int{1, 1}); !errors.Is(err, ErrCalibrationData) {
		t.Errorf("one class: %v", err)
	}
}

func TestPlattEndToEndWithSVM(t *testing.T) {
	X, y := blobs(300, 4, 5)
	m, err := Train(X, y, Config{C: 1, Kernel: RBF{Gamma: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	dec := make([]float64, len(X))
	for i, x := range X {
		dec[i] = m.Decision(x)
	}
	s, err := FitPlatt(dec, y)
	if err != nil {
		t.Fatal(err)
	}
	// Calibrated probabilities must rank the classes like the raw scores.
	posMean, negMean := 0.0, 0.0
	np, nn := 0, 0
	for i := range X {
		p := s.Probability(dec[i])
		if y[i] == 1 {
			posMean += p
			np++
		} else {
			negMean += p
			nn++
		}
	}
	if posMean/float64(np) <= negMean/float64(nn)+0.2 {
		t.Errorf("calibrated means too close: pos %.3f neg %.3f",
			posMean/float64(np), negMean/float64(nn))
	}
}

package serve

// Manual JSON encoding for the scoring hot path. The response shapes
// the daemon serves per request are tiny and fixed (ScoreResponse,
// BatchResponse, the ErrorBody envelope), yet encoding/json
// costs dozens of heap allocations per call: the encoder machinery,
// reflection state, and intermediate buffers dominated the serve
// profile (BENCH_4: 42 allocs and 7.9 KB per single score). This file
// hand-encodes exactly those shapes into pooled []byte buffers.
//
// The contract is byte-for-byte equivalence with what
// json.NewEncoder(w).Encode(v) produced before — same field order,
// same string escaping (including encoding/json's default HTML-unsafe
// escapes for <, >, & and its � replacement for invalid UTF-8),
// same float format, same trailing newline — proven by
// TestManualEncodingEquivalence and FuzzJSONStringEquivalence. Callers
// that change a response shape must extend both the appender and the
// equivalence test.

import (
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

// bufPool recycles response-encoding buffers. Buffers start at 1 KB
// (a single-score or error response fits with room to spare) and grow
// with use; oversized buffers (large batch responses) are dropped on
// Put so a burst of 10k-domain batches cannot pin megabytes forever.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// maxPooledBuf bounds the capacity of buffers returned to bufPool.
const maxPooledBuf = 1 << 20

func getBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

func putBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends the JSON encoding of s, replicating
// encoding/json's string escaping with its default escapeHTML=true:
// ", \ and the named control escapes; other control bytes, <, > and &
// as \u00XX; invalid UTF-8 bytes as �; U+2028/U+2029 escaped for
// JSONP safety; everything else copied verbatim.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control bytes below 0x20 without a named escape,
				// plus <, > and & under HTML escaping.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// jsonSafe marks the ASCII bytes encoding/json copies through
// unescaped when HTML escaping is on: printable characters except
// ", \, <, > and &.
var jsonSafe = [utf8.RuneSelf]bool{}

func init() {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		jsonSafe[b] = true
	}
	for _, b := range []byte{'"', '\\', '<', '>', '&'} {
		jsonSafe[b] = false
	}
}

// appendJSONFloat appends f in encoding/json's float64 format: 'f'
// notation in the human range, 'e' notation (with the exponent's
// leading zero trimmed, e.g. 1e-07 → 1e-7) below 1e-6 and at or above
// 1e21. NaN and infinities are unrepresentable in JSON; scoring
// responses only carry finite SVM decision values, and the equivalence
// test pins the finite behavior.
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendScoreResponse appends the ScoreResponse JSON document,
// including the trailing newline json.Encoder.Encode wrote.
func appendScoreResponse(dst []byte, domain string, score float64, label int, known bool, confidence float64, source string) []byte {
	dst = append(dst, `{"domain":`...)
	dst = appendJSONString(dst, domain)
	dst = append(dst, `,"score":`...)
	dst = appendJSONFloat(dst, score)
	dst = append(dst, `,"label":`...)
	dst = strconv.AppendInt(dst, int64(label), 10)
	if known {
		dst = append(dst, `,"known":true`...)
	} else {
		dst = append(dst, `,"known":false`...)
	}
	dst = append(dst, `,"confidence":`...)
	dst = appendJSONFloat(dst, confidence)
	dst = append(dst, `,"source":`...)
	dst = appendJSONString(dst, source)
	return append(dst, '}', '\n')
}

// appendBatchResult appends one BatchResult object (no newline; the
// caller places it inside an array or an NDJSON line). An empty source
// is omitted, matching the struct's omitempty tag.
func appendBatchResult(dst []byte, domain string, score float64, label int, known bool, confidence float64, source string) []byte {
	dst = append(dst, `{"domain":`...)
	dst = appendJSONString(dst, domain)
	dst = append(dst, `,"score":`...)
	dst = appendJSONFloat(dst, score)
	dst = append(dst, `,"label":`...)
	dst = strconv.AppendInt(dst, int64(label), 10)
	if known {
		dst = append(dst, `,"known":true`...)
	} else {
		dst = append(dst, `,"known":false`...)
	}
	dst = append(dst, `,"confidence":`...)
	dst = appendJSONFloat(dst, confidence)
	if source != "" {
		dst = append(dst, `,"source":`...)
		dst = appendJSONString(dst, source)
	}
	return append(dst, '}')
}

// appendErrorEnvelope appends the structured error body every non-2xx
// /v1 response carries, newline-terminated like json.Encoder.Encode:
//
//	{"error":{"code":"...","message":"...","retry_after_ms":N}}
//
// retry_after_ms is omitted when zero, matching ErrorDetail's
// omitempty tag.
func appendErrorEnvelope(dst []byte, code, msg string, retryAfterMS int64) []byte {
	dst = append(dst, `{"error":{"code":`...)
	dst = appendJSONString(dst, code)
	dst = append(dst, `,"message":`...)
	dst = appendJSONString(dst, msg)
	if retryAfterMS != 0 {
		dst = append(dst, `,"retry_after_ms":`...)
		dst = strconv.AppendInt(dst, retryAfterMS, 10)
	}
	return append(dst, '}', '}', '\n')
}

// statusText returns the ASCII form of the HTTP status codes the
// scoring routes emit without allocating; uncommon codes fall back to
// strconv.
func statusText(code int) string {
	switch code {
	case 200:
		return "200"
	case 400:
		return "400"
	case 404:
		return "404"
	case 405:
		return "405"
	case 413:
		return "413"
	case 500:
		return "500"
	case 503:
		return "503"
	}
	return strconv.Itoa(code)
}

package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// ndjsonRequest POSTs a batch with the NDJSON Accept header through
// the full handler and returns the recorder.
func ndjsonRequest(t *testing.T, s *Server, domains []string) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(BatchRequest{Domains: domains})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/score/batch", bytes.NewReader(body))
	req.Header.Set("Accept", NDJSONContentType)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestNDJSONEndpoint is the framing's wire contract: opting in via
// Accept yields the x-ndjson Content-Type, a fingerprint header line,
// and one result line per requested domain in request order, each line
// byte-identical to the buffered document's corresponding
// BatchResponse entry.
func TestNDJSONEndpoint(t *testing.T) {
	modelA, _, scorerA, _ := models(t)
	s, _ := newTestServer(t, modelA, nil)
	queries := append([]string{"missing.example"}, scorerA.Domains()...)

	rec := ndjsonRequest(t, s, queries)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != NDJSONContentType {
		t.Fatalf("Content-Type %q, want %q", ct, NDJSONContentType)
	}

	hdr, results, err := DecodeNDJSON(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Fingerprint != scorerA.Fingerprint() {
		t.Fatalf("fingerprint %q, want %q", hdr.Fingerprint, scorerA.Fingerprint())
	}
	if len(results) != len(queries) {
		t.Fatalf("%d result lines for %d domains", len(results), len(queries))
	}
	want := scorerA.ScoreBatch(queries)
	for i, res := range results {
		if res.Domain != queries[i] {
			t.Fatalf("line %d: domain %q, want %q (request order)", i, res.Domain, queries[i])
		}
		if res.Score != want[i].Score || res.Label != want[i].Label || res.Known != want[i].Known {
			t.Fatalf("line %d: %+v != scorer result %+v", i, res, want[i])
		}
	}
}

// TestNDJSONLineEquivalence pins each streamed line byte-for-byte to
// json.Marshal of the BatchResult struct — the same equivalence
// contract the buffered document carries, per line.
func TestNDJSONLineEquivalence(t *testing.T) {
	modelA, _, scorerA, _ := models(t)
	s, _ := newTestServer(t, modelA, nil)
	queries := append([]string{"missing.example"}, scorerA.Domains()...)

	rec := ndjsonRequest(t, s, queries)
	lines := strings.Split(strings.TrimSuffix(rec.Body.String(), "\n"), "\n")
	if len(lines) != 1+len(queries) {
		t.Fatalf("%d lines, want %d", len(lines), 1+len(queries))
	}
	wantHdr, _ := json.Marshal(NDJSONHeader{Fingerprint: scorerA.Fingerprint()})
	if lines[0] != string(wantHdr) {
		t.Fatalf("header line %q, want %q", lines[0], wantHdr)
	}
	for i, r := range scorerA.ScoreBatch(queries) {
		wantLine, _ := json.Marshal(BatchResult{
			Domain: queries[i], Score: r.Score, Label: r.Label, Known: r.Known,
			Confidence: r.Confidence, Source: r.Source,
		})
		if lines[i+1] != string(wantLine) {
			t.Fatalf("line %d: %q, want %q", i+1, lines[i+1], wantLine)
		}
	}
}

// TestNDJSONStreamsLargeBatch drives a batch large enough to cross the
// flush threshold and checks the response streamed (the recorder saw
// Flush before the handler returned) and stayed complete.
func TestNDJSONStreamsLargeBatch(t *testing.T) {
	modelA, _, scorerA, _ := models(t)
	s, _ := newTestServer(t, modelA, nil)
	base := scorerA.Domains()
	queries := make([]string, 5000)
	for i := range queries {
		queries[i] = base[i%len(base)]
	}

	rec := ndjsonRequest(t, s, queries)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !rec.Flushed {
		t.Fatal("large NDJSON batch never flushed mid-stream")
	}
	n, err := CountNDJSON(bytes.NewReader(rec.Body.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(queries) {
		t.Fatalf("CountNDJSON = %d, want %d", n, len(queries))
	}
	if rec.Body.Len() <= ndjsonFlushBytes {
		t.Fatalf("test batch too small to exercise streaming: %d bytes", rec.Body.Len())
	}
}

// TestNDJSONEmptyBatch: the degenerate stream is just the header line.
func TestNDJSONEmptyBatch(t *testing.T) {
	modelA, _, scorerA, _ := models(t)
	s, _ := newTestServer(t, modelA, nil)
	rec := ndjsonRequest(t, s, nil)
	hdr, results, err := DecodeNDJSON(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Fingerprint != scorerA.Fingerprint() || len(results) != 0 {
		t.Fatalf("empty batch: hdr %+v, %d results", hdr, len(results))
	}
}

// TestWantsNDJSON pins the opt-in matching: only an Accept mentioning
// the exact MIME type switches framing.
func TestWantsNDJSON(t *testing.T) {
	for accept, want := range map[string]bool{
		"":                                       false,
		"application/json":                       false,
		"application/x-ndjson":                   true,
		"application/x-ndjson; q=1":              true,
		"application/json, application/x-ndjson": true,
		"*/*":                                    false,
	} {
		if got := wantsNDJSON(accept); got != want {
			t.Errorf("wantsNDJSON(%q) = %v, want %v", accept, got, want)
		}
	}
}

// TestDecodeNDJSONErrors covers the decoder's failure modes: empty
// stream, garbage header, garbage line mid-stream (with the good
// prefix still returned).
func TestDecodeNDJSONErrors(t *testing.T) {
	if _, _, err := DecodeNDJSON(strings.NewReader("")); !errors.Is(err, ErrNDJSONSyntax) {
		t.Fatalf("empty stream: err %v", err)
	}
	if _, _, err := DecodeNDJSON(strings.NewReader("not json\n")); !errors.Is(err, ErrNDJSONSyntax) {
		t.Fatalf("bad header: err %v", err)
	}
	in := `{"fingerprint":"abc"}` + "\n" +
		`{"domain":"a.com","score":1,"label":1,"known":true}` + "\n" +
		"garbage\n"
	hdr, results, err := DecodeNDJSON(strings.NewReader(in))
	if !errors.Is(err, ErrNDJSONSyntax) {
		t.Fatalf("garbage line: err %v", err)
	}
	if hdr.Fingerprint != "abc" || len(results) != 1 || results[0].Domain != "a.com" {
		t.Fatalf("partial decode lost good prefix: hdr %+v results %+v", hdr, results)
	}

	if _, err := CountNDJSON(strings.NewReader("nope\n"), nil); !errors.Is(err, ErrNDJSONSyntax) {
		t.Fatalf("CountNDJSON bad header: err %v", err)
	}
	n, err := CountNDJSON(strings.NewReader(`{"fingerprint":"x"}`+"\nline1\nline2"), make([]byte, 7))
	if err != nil || n != 2 {
		t.Fatalf("CountNDJSON = %d, %v; want 2 (unterminated final line counts)", n, err)
	}
}

// FuzzDecodeNDJSON hammers both NDJSON consumers with arbitrary bytes:
// they must never panic, and on any input they agree that a nil error
// implies a well-formed header.
func FuzzDecodeNDJSON(f *testing.F) {
	f.Add([]byte(`{"fingerprint":"abc"}` + "\n" + `{"domain":"a.com","score":1.5,"label":1,"known":true}` + "\n"))
	f.Add([]byte(`{"fingerprint":""}` + "\n"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"fingerprint":"x"}` + "\n" + strings.Repeat("a", 100) + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, results, err := DecodeNDJSON(bytes.NewReader(data))
		if err == nil {
			// A clean decode must re-encode to a countable stream.
			var buf bytes.Buffer
			buf.WriteString(`{"fingerprint":""}` + "\n")
			for range results {
				buf.WriteString("{}\n")
			}
			if n, cerr := CountNDJSON(&buf, nil); cerr != nil || n != len(results) {
				t.Fatalf("count %d err %v for %d results", n, cerr, len(results))
			}
		}
		_, _ = CountNDJSON(bytes.NewReader(data), make([]byte, 16))
	})
}

// Package serve is the model-serving daemon: the online half of the
// train/serve split that core.SaveModel/LoadScorer opened. A Server
// holds one persisted model in an atomically swappable pointer and
// answers scoring queries over HTTP (stdlib net/http only):
//
//	GET  /v1/score/{domain}  one domain's decision value and label
//	POST /v1/score/batch     {"domains": [...]} scored in one call;
//	                         Accept: application/x-ndjson streams the
//	                         results line by line (see ndjson.go)
//	POST /v1/observe         feed observed relations for a domain
//	                         outside the model into the fold-in cache
//	POST /v1/reload          re-read the model file and swap atomically
//	GET  /healthz/live       liveness: 200 whenever HTTP is served
//	GET  /healthz/ready      readiness: loaded-model identity, or 503
//	                         (code "not_ready") while a (re)load is in
//	                         flight or no model is installed
//	GET  /healthz            alias of /healthz/ready (back-compat)
//	GET  /metrics            Prometheus text exposition (internal/obsv)
//	GET  /debug/pprof/...    profiling (when Config.EnablePprof)
//
// Domains outside the model are no longer a dead end: when a caller
// has fed relations for a domain through POST /v1/observe (or a stream
// pipeline shares its fold-in cache via Config.FoldIn), the scoring
// routes derive a provisional verdict through core.Scorer.ScoreObserved
// and return it with known=false, a calibrated confidence, and a
// source of "foldin" or "knn" instead of a 404. Every non-2xx /v1
// response carries the structured ErrorBody envelope.
//
// The lifecycle is production-shaped. Reload (also triggered by SIGHUP
// in cmd/maldetect) loads the replacement model fully before swapping
// the pointer, so in-flight requests keep scoring against the old
// model and a corrupt or truncated replacement file leaves the old
// model serving with the error reported to the caller. Scoring
// endpoints sit behind a bounded-concurrency gate that sheds excess
// load with 503 + Retry-After instead of queueing unboundedly, and
// batch body reads sit behind a per-request read deadline. Shutdown
// drains in-flight requests up to a deadline before returning.
//
// The request path is engineered for zero steady-state allocations:
// routing is a hand-rolled prefix switch (no ServeMux wildcard
// machinery), responses are hand-encoded into pooled buffers
// (encode.go; byte-identical to encoding/json by test), scoring reads
// the Scorer's precomputed decision table, and metric series are
// resolved once per route instead of per request. A single-domain
// score costs ≤ 2 allocations end to end; scripts/alloccheck.sh gates
// the handlers against new heap escapes.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/obsv"
)

// Config parameterizes a Server. The zero value needs only ModelPath.
type Config struct {
	// ModelPath is the model file written by maldetect train
	// (core.SaveModel); Reload re-reads the same path.
	ModelPath string
	// MaxInFlight bounds concurrently executing scoring requests;
	// excess requests are shed with 503 + Retry-After (default 256).
	MaxInFlight int
	// RequestTimeout bounds reading one batch request body (default
	// 5s). Handlers themselves are non-blocking table lookups, so the
	// body read is the only place a request can stall.
	RequestTimeout time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight requests when
	// the caller's context has no deadline of its own (default 10s).
	DrainTimeout time.Duration
	// MaxBatch bounds the domain count of one batch request (default
	// 10000); larger batches are rejected with 413.
	MaxBatch int
	// MaxBody bounds the batch request body in bytes; larger bodies
	// are rejected with 413 before being read further. 0 derives the
	// cap from MaxBatch so that any legal MaxBatch-domain batch fits:
	// 64 + 260·MaxBatch (a DNS name is at most 255 bytes; quoting and
	// a comma cost 3 more).
	MaxBody int64
	// FoldIn is the fold-in evidence cache consulted for domains
	// outside the model. Nil creates a private cache sized by
	// FoldInMaxEntries/FoldInTTL; pass a stream pipeline's cache to
	// serve its rolling window's evidence through the same endpoints.
	FoldIn *core.FoldInCache
	// FoldInMaxEntries bounds the private fold-in cache when FoldIn is
	// nil (default 65536 domains).
	FoldInMaxEntries int
	// FoldInTTL is the private fold-in cache's evidence lifetime when
	// FoldIn is nil (default 15m).
	FoldInTTL time.Duration
	// Metrics receives request instrumentation and backs /metrics. A
	// private registry is created when nil; pass the registry used for
	// model builds to expose both vocabularies on one endpoint.
	Metrics *obsv.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Logf, when set, receives operational log lines (reloads,
	// shutdown); nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 10_000
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 64 + 260*int64(c.MaxBatch)
	}
	return c
}

// modelState is one loaded model generation; the Server swaps whole
// states so every request sees a consistent (scorer, metadata) pair.
type modelState struct {
	scorer   *core.Scorer
	loadedAt time.Time
}

// Server serves one model file over HTTP. Create with New, expose with
// Serve (or mount Handler in a test server), stop with Shutdown.
type Server struct {
	cfg   Config
	reg   *obsv.Registry
	model atomic.Pointer[modelState]
	gate  chan struct{}

	httpSrv  *http.Server
	metricsH http.Handler
	reloadMu sync.Mutex // serializes Reload; requests never block on it
	// reloading is observed by the readiness probe: while a (re)load is
	// decoding the next generation, /healthz and /healthz/ready answer
	// 503 so orchestrators hold traffic, while /healthz/live stays 200.
	reloading atomic.Bool

	requests *obsv.CounterVec   // path, code
	latency  *obsv.HistogramVec // path
	inflight *obsv.Gauge
	shed     *obsv.Counter
	reloads  *obsv.CounterVec // result
	scored   *obsv.Counter
	unknown  *obsv.Counter
	modelDom *obsv.Gauge
	modelTS  *obsv.Gauge
	// modelInfo is the maldomain_model_info gauge family: the series
	// labeled with the served model's backend names is 1, superseded
	// label combinations drop to 0 on reload. lastInfo remembers the
	// currently-1 series; install (serialized by reloadMu or startup)
	// zeroes it before publishing the new one.
	modelInfo *obsv.GaugeVec
	lastInfo  *obsv.Gauge

	// foldin is the evidence cache behind POST /v1/observe and the
	// unknown-domain fallback on every scoring route.
	foldin        *core.FoldInCache
	foldinObs     *obsv.Counter
	foldinEntries *obsv.Gauge
	foldinEvicted *obsv.Counter
	foldinExpired *obsv.Counter
	foldinScores  *obsv.CounterVec // source
	// scoredFoldin and scoredKNN are foldinScores' two live series,
	// resolved once so the hot path never builds a label key.
	scoredFoldin *obsv.Counter
	scoredKNN    *obsv.Counter

	mScore, mBatch, mObserve, mReload, mHealth, mLive *routeMetrics
}

// New loads the model at cfg.ModelPath and returns a ready Server. A
// missing or corrupt initial model is a startup error: a daemon that
// never had a model has nothing to keep serving.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	s := &Server{
		cfg:  cfg,
		reg:  reg,
		gate: make(chan struct{}, cfg.MaxInFlight),

		requests: reg.CounterVec("maldomain_http_requests_total",
			"HTTP requests served, by route and status code.", "path", "code"),
		latency: reg.HistogramVec("maldomain_http_request_seconds",
			"HTTP request latency, by route.", "path"),
		inflight: reg.Gauge("maldomain_http_inflight",
			"Scoring requests currently executing."),
		shed: reg.Counter("maldomain_http_shed_total",
			"Scoring requests shed with 503 at the concurrency gate."),
		reloads: reg.CounterVec("maldomain_model_reloads_total",
			"Model reload attempts, by result.", "result"),
		scored: reg.Counter("maldomain_scores_total",
			"Domains scored (single and batch, known domains only)."),
		unknown: reg.Counter("maldomain_score_unknown_total",
			"Score lookups for domains outside the model."),
		modelDom: reg.Gauge("maldomain_model_domains",
			"Retained domain count of the currently served model."),
		modelTS: reg.Gauge("maldomain_model_loaded_timestamp_seconds",
			"Unix time the current model generation was loaded."),
		modelInfo: reg.GaugeVec("maldomain_model_info",
			"Backend identity of the currently served model (1 = serving).",
			"embedder", "classifier"),
		foldinObs: reg.Counter("maldomain_foldin_observations_total",
			"Observe calls accepted into the fold-in evidence cache."),
		foldinEntries: reg.Gauge("maldomain_foldin_cache_entries",
			"Domains currently holding evidence in the fold-in cache."),
		foldinEvicted: reg.Counter("maldomain_foldin_evictions_total",
			"Fold-in cache entries evicted by the size bound."),
		foldinExpired: reg.Counter("maldomain_foldin_expired_total",
			"Fold-in cache entries dropped by TTL expiry."),
		foldinScores: reg.CounterVec("maldomain_foldin_scores_total",
			"Domains scored through the fold-in path, by verdict source.", "source"),
	}
	s.scoredFoldin = s.foldinScores.With(core.SourceFoldin)
	s.scoredKNN = s.foldinScores.With(core.SourceKNN)
	s.foldin = cfg.FoldIn
	if s.foldin == nil {
		s.foldin = core.NewFoldInCache(core.FoldInConfig{
			MaxEntries: cfg.FoldInMaxEntries,
			TTL:        cfg.FoldInTTL,
		})
	}
	s.mScore = s.newRouteMetrics("/v1/score")
	s.mBatch = s.newRouteMetrics("/v1/score/batch")
	s.mObserve = s.newRouteMetrics("/v1/observe")
	s.mReload = s.newRouteMetrics("/v1/reload")
	s.mHealth = s.newRouteMetrics("/healthz")
	s.mLive = s.newRouteMetrics("/healthz/live")
	st, err := s.loadModel()
	if err != nil {
		return nil, fmt.Errorf("serve: loading initial model: %w", err)
	}
	s.install(st)
	s.metricsH = s.reg.Handler()
	s.httpSrv = &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s, nil
}

// loadModel reads cfg.ModelPath into a fresh modelState without
// touching the served pointer. The bufio wrapper matters: the model
// stream holds several gob streams back to back, and a reader without
// io.ByteReader would make each decoder buffer (and lose) the next
// stream's prefix.
func (s *Server) loadModel() (*modelState, error) {
	f, err := os.Open(s.cfg.ModelPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := core.LoadScorer(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, err
	}
	return &modelState{scorer: sc, loadedAt: time.Now()}, nil
}

// install publishes a loaded state and its gauges.
func (s *Server) install(st *modelState) {
	s.model.Store(st)
	s.modelDom.Set(float64(len(st.scorer.Domains())))
	s.modelTS.Set(float64(st.loadedAt.UnixNano()) / 1e9)
	if s.lastInfo != nil {
		s.lastInfo.Set(0)
	}
	s.lastInfo = s.modelInfo.With(st.scorer.EmbedderName(), st.scorer.ClassifierName())
	s.lastInfo.Set(1)
}

// Reload re-reads the model file and swaps it in atomically. The new
// model is fully decoded and validated before the pointer moves, so
// concurrent requests always score against a complete model; on any
// error the previous model keeps serving and the error is returned.
// Concurrent Reload calls are serialized.
func (s *Server) Reload() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	s.reloading.Store(true)
	defer s.reloading.Store(false)
	st, err := s.loadModel()
	if err != nil {
		s.reloads.With("error").Inc()
		s.logf("reload failed, keeping current model: %v", err)
		return err
	}
	s.install(st)
	s.reloads.With("ok").Inc()
	s.logf("reloaded model %s: %d domains, fingerprint %s",
		s.cfg.ModelPath, len(st.scorer.Domains()), st.scorer.Fingerprint())
	return nil
}

// Scorer returns the currently served model generation. The scorer is
// immutable; it remains valid (but possibly superseded) after a
// reload.
func (s *Server) Scorer() *core.Scorer {
	return s.model.Load().scorer
}

// FoldIn returns the fold-in evidence cache the scoring routes consult
// for domains outside the model — Config.FoldIn when one was shared,
// the private cache otherwise.
func (s *Server) FoldIn() *core.FoldInCache { return s.foldin }

// Handler returns the daemon's full route table, for tests and
// embedding.
func (s *Server) Handler() http.Handler { return s }

// Serve accepts connections on l until Shutdown. It returns nil after
// a clean Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish. When ctx carries no deadline, Config.DrainTimeout
// bounds the wait; on deadline expiry remaining connections are closed
// and the context error returned.
func (s *Server) Shutdown(ctx context.Context) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
	}
	s.logf("shutting down, draining in-flight requests")
	return s.httpSrv.Shutdown(ctx)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ---- routing and instrumentation ----

// ServeHTTP is the daemon's router: a hand-rolled prefix switch
// instead of http.ServeMux, because the mux's wildcard matching
// allocates per request and the route table here is five fixed paths.
// Routing, the concurrency gate, and metric attribution are all plain
// function calls on this path.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	if rest, ok := strings.CutPrefix(path, "/v1/score/"); ok && rest != "" {
		if rest == "batch" {
			s.serveBatch(w, r)
		} else {
			s.serveScore(w, r, rest)
		}
		return
	}
	switch path {
	case "/v1/observe":
		s.serveObserve(w, r)
	case "/v1/reload":
		s.serveReload(w, r)
	case "/healthz", "/healthz/ready":
		s.serveHealthz(w, r)
	case "/healthz/live":
		s.serveLive(w, r)
	case "/metrics":
		if r.Method != http.MethodGet {
			s.methodNotAllowed(w, "GET")
			return
		}
		s.metricsH.ServeHTTP(w, r)
	default:
		if s.cfg.EnablePprof && strings.HasPrefix(path, "/debug/pprof/") {
			s.servePprof(w, r)
			return
		}
		if strings.HasPrefix(path, "/v1/") {
			s.writeError(w, http.StatusNotFound, codeNotFound, "no such route: "+path)
			return
		}
		http.NotFound(w, r)
	}
}

// routeMetrics is one route's pre-resolved instrumentation: the
// latency series is bound at construction and counter series are
// cached per status code after first use, so steady-state requests
// never rebuild a label key or take the registry mutex.
type routeMetrics struct {
	path   string
	vec    *obsv.CounterVec
	lat    *obsv.Histogram
	byCode [nCodeSlots]atomic.Pointer[obsv.Counter]
}

func (s *Server) newRouteMetrics(path string) *routeMetrics {
	return &routeMetrics{path: path, vec: s.requests, lat: s.latency.With(path)}
}

// Slots for the status codes the scoring routes emit; anything else
// falls back to a labeled lookup.
const nCodeSlots = 7

func codeSlot(code int) int {
	switch code {
	case 200:
		return 0
	case 400:
		return 1
	case 404:
		return 2
	case 405:
		return 3
	case 413:
		return 4
	case 500:
		return 5
	case 503:
		return 6
	}
	return -1
}

// observe records one finished request. Racing first uses of a code
// slot are benign: CounterVec.With is idempotent per label tuple, so
// every racer caches the same counter.
func (m *routeMetrics) observe(start time.Time, code int) {
	m.lat.Observe(time.Since(start).Seconds())
	slot := codeSlot(code)
	if slot < 0 {
		m.vec.With(m.path, statusText(code)).Inc()
		return
	}
	c := m.byCode[slot].Load()
	if c == nil {
		c = m.vec.With(m.path, statusText(code))
		m.byCode[slot].Store(c)
	}
	c.Inc()
}

// admit claims a concurrency-gate slot, or sheds the request with
// 503 + Retry-After and reports false. Shedding instead of queueing
// keeps overload behavior fast-failing rather than building an
// unbounded backlog of slow requests.
func (s *Server) admit(w http.ResponseWriter) bool {
	select {
	case s.gate <- struct{}{}:
		s.inflight.Add(1)
		return true
	default:
		s.shed.Inc()
		w.Header().Set("Retry-After", "1")
		s.writeErrorRetry(w, http.StatusServiceUnavailable, codeCapacity,
			"server at capacity", 1000)
		return false
	}
}

func (s *Server) release() {
	s.inflight.Add(-1)
	<-s.gate
}

func (s *Server) methodNotAllowed(w http.ResponseWriter, allow string) int {
	w.Header().Set("Allow", allow)
	s.writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed,
		"method not allowed, use "+allow)
	return http.StatusMethodNotAllowed
}

// ---- response writing ----

// Content-Type header values shared across requests; assigning a
// preallocated slice into the header map avoids the per-request
// allocation http.Header.Set would make.
var (
	ctJSON   = []string{"application/json"}
	ctNDJSON = []string{NDJSONContentType}
)

// writeBody sends one fully encoded response.
//
//alloccheck:hot
func writeBody(w http.ResponseWriter, code int, ct []string, body []byte) {
	w.Header()["Content-Type"] = ct
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// ErrorBody is the envelope every non-2xx /v1 response carries. The
// shape is part of the wire contract (docs/api.md): code is a stable
// machine-readable string, message is human-readable detail, and
// retry_after_ms appears only on 503 shed responses.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the inner object of ErrorBody.
type ErrorDetail struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// The stable error codes the /v1 routes emit. These strings are wire
// contract: additive-only within v1.
const (
	codeUnknownDomain    = "unknown_domain"
	codeBadRequest       = "bad_request"
	codeOverLimit        = "over_batch_limit"
	codeCapacity         = "capacity"
	codeMethodNotAllowed = "method_not_allowed"
	codeNotFound         = "not_found"
	codeNotReady         = "not_ready"
)

// writeError sends the ErrorBody envelope with the given status.
func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	s.writeErrorRetry(w, status, code, msg, 0)
}

// writeErrorRetry is writeError with a retry_after_ms hint (503 shed).
func (s *Server) writeErrorRetry(w http.ResponseWriter, status int, code, msg string, retryAfterMS int64) {
	buf := getBuf()
	b := appendErrorEnvelope((*buf)[:0], code, msg, retryAfterMS)
	writeBody(w, status, ctJSON, b)
	*buf = b
	putBuf(buf)
}

// writeJSON is the encoding/json fallback for the cold control-plane
// responses (reload, healthz) whose shapes carry time.Time values.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Handlers marshal small fixed-shape values; an encode failure here
	// means the response is already half-written, so there is nothing
	// better to do than stop.
	_ = json.NewEncoder(w).Encode(v)
}

// ---- scoring handlers ----

// ScoreResponse is the body of GET /v1/score/{domain}. Known reports
// whether the domain is in the model's decision table; Confidence and
// Source qualify the verdict (source "model" at confidence 1 for
// retained domains, "foldin" or "knn" with a calibrated confidence for
// domains scored from observed relations).
type ScoreResponse struct {
	Domain     string  `json:"domain"`
	Score      float64 `json:"score"`
	Label      int     `json:"label"`
	Known      bool    `json:"known"`
	Confidence float64 `json:"confidence"`
	Source     string  `json:"source"`
}

// serveScore handles GET /v1/score/{domain}: method check, gate,
// handler, instrumentation.
func (s *Server) serveScore(w http.ResponseWriter, r *http.Request, domain string) {
	start := time.Now()
	var code int
	switch {
	case r.Method != http.MethodGet:
		code = s.methodNotAllowed(w, "GET")
	case strings.IndexByte(domain, '/') >= 0:
		// {domain} is a single path segment; deeper paths are not
		// routes.
		s.writeError(w, http.StatusNotFound, codeNotFound, "no such route: "+r.URL.Path)
		code = http.StatusNotFound
	case !s.admit(w):
		code = http.StatusServiceUnavailable
	default:
		code = s.handleScore(w, domain)
		s.release()
	}
	s.mScore.observe(start, code)
}

// handleScore is the single-domain hot path: one decision-table
// lookup (or, for domains outside the model, one fold-in cache probe),
// one pooled buffer encode, zero steady-state allocations.
//
//alloccheck:hot
func (s *Server) handleScore(w http.ResponseWriter, domain string) int {
	sc := s.Scorer()
	res, ok := sc.Result(domain)
	if ok {
		s.scored.Inc()
	} else if res, ok = s.foldin.Score(sc, domain, time.Now()); ok {
		s.countFoldin(res.Source)
	} else {
		s.unknown.Inc()
		s.writeError(w, http.StatusNotFound, codeUnknownDomain, unknownDomainMessage(domain))
		return http.StatusNotFound
	}
	buf := getBuf()
	b := appendScoreResponse((*buf)[:0], domain, res.Score, res.Label, res.Known, res.Confidence, res.Source)
	writeBody(w, http.StatusOK, ctJSON, b)
	*buf = b
	putBuf(buf)
	return http.StatusOK
}

// countFoldin attributes one fold-in verdict to its source series.
func (s *Server) countFoldin(source string) {
	if source == core.SourceKNN {
		s.scoredKNN.Inc()
	} else {
		s.scoredFoldin.Inc()
	}
}

// unknownDomainMessage renders the 404 body text for one domain,
// matching core.Scorer.Lookup's error string. Kept out of handleScore
// so its allocations stay off the gated hot path.
//
//go:noinline
func unknownDomainMessage(domain string) string {
	return strconv.Quote(domain) + ": " + core.ErrUnknownDomain.Error()
}

// BatchRequest is the body of POST /v1/score/batch.
type BatchRequest struct {
	Domains []string `json:"domains"`
}

// BatchResult is one entry of BatchResponse.Results, aligned with the
// request's domain order. Known=false marks domains outside the model;
// such a domain still carries a score when fold-in evidence exists, in
// which case Source names the path that produced it ("foldin" or
// "knn"). Source is empty — and omitted on the wire — only when the
// daemon had nothing at all to say about the domain.
type BatchResult struct {
	Domain     string  `json:"domain"`
	Score      float64 `json:"score"`
	Label      int     `json:"label"`
	Known      bool    `json:"known"`
	Confidence float64 `json:"confidence"`
	Source     string  `json:"source,omitempty"`
}

// BatchResponse is the body of POST /v1/score/batch.
type BatchResponse struct {
	Results     []BatchResult `json:"results"`
	Fingerprint string        `json:"fingerprint"`
}

// resultsPool recycles the per-batch []core.Result scratch space.
var resultsPool = sync.Pool{
	New: func() any {
		r := make([]core.Result, 0, 512)
		return &r
	},
}

// maxPooledResults bounds the capacity of result buffers returned to
// the pool, mirroring maxPooledBuf.
const maxPooledResults = 1 << 16

func getResults() *[]core.Result {
	return resultsPool.Get().(*[]core.Result)
}

func putResults(r *[]core.Result) {
	if cap(*r) > maxPooledResults {
		return
	}
	*r = (*r)[:0]
	resultsPool.Put(r)
}

func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var code int
	switch {
	case r.Method != http.MethodPost:
		code = s.methodNotAllowed(w, "POST")
	case !s.admit(w):
		code = http.StatusServiceUnavailable
	default:
		code = s.handleBatch(w, r)
		s.release()
	}
	s.mBatch.observe(start, code)
}

// handleBatch decodes, validates, scores, and encodes one batch. The
// request body is the only place this handler can block, so the
// per-request timeout is enforced there as a connection read deadline
// (http.TimeoutHandler is gone from this path: it buffers whole
// responses, which the streamed NDJSON framing must never do).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) int {
	rc := http.NewResponseController(w)
	// Recorders and other non-net writers report ErrNotSupported;
	// requests through a real net/http server get the deadline.
	_ = rc.SetReadDeadline(time.Now().Add(s.cfg.RequestTimeout))
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	var req BatchRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, http.StatusRequestEntityTooLarge, codeOverLimit,
				fmt.Sprintf("batch body exceeds %d bytes", s.cfg.MaxBody))
			return http.StatusRequestEntityTooLarge
		}
		s.writeError(w, http.StatusBadRequest, codeBadRequest, "bad batch request: "+err.Error())
		return http.StatusBadRequest
	}
	if len(req.Domains) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusRequestEntityTooLarge, codeOverLimit,
			fmt.Sprintf("batch of %d domains exceeds limit %d", len(req.Domains), s.cfg.MaxBatch))
		return http.StatusRequestEntityTooLarge
	}
	sc := s.Scorer()
	if wantsNDJSON(r.Header.Get("Accept")) {
		return s.writeBatchNDJSON(w, rc, sc, req.Domains)
	}
	return s.writeBatchJSON(w, sc, req.Domains)
}

// writeBatchJSON encodes the buffered BatchResponse document into one
// pooled buffer: byte-identical to encoding/json on the BatchResponse
// struct, without the per-request encoder machinery.
func (s *Server) writeBatchJSON(w http.ResponseWriter, sc *core.Scorer, domains []string) int {
	resPtr := getResults()
	results := sc.ScoreBatchInto((*resPtr)[:0], domains)
	now := time.Now()
	buf := getBuf()
	b := append((*buf)[:0], `{"results":[`...)
	var known, unknown uint64
	for i, res := range results {
		if i > 0 {
			b = append(b, ',')
		}
		switch {
		case res.Known:
			known++
		default:
			if fr, ok := s.foldin.Score(sc, domains[i], now); ok {
				res = fr
				s.countFoldin(res.Source)
			} else {
				unknown++
			}
		}
		b = appendBatchResult(b, domains[i], res.Score, res.Label, res.Known, res.Confidence, res.Source)
	}
	b = append(b, `],"fingerprint":`...)
	b = appendJSONString(b, sc.Fingerprint())
	b = append(b, '}', '\n')
	s.scored.Add(known)
	s.unknown.Add(unknown)
	writeBody(w, http.StatusOK, ctJSON, b)
	*buf = b
	putBuf(buf)
	*resPtr = results
	putResults(resPtr)
	return http.StatusOK
}

const (
	// ndjsonChunk is how many domains are scored per ScoreBatchInto
	// sweep while streaming.
	ndjsonChunk = 512
	// ndjsonFlushBytes is the buffered-bytes threshold that triggers a
	// write+flush, bounding the daemon's memory per streamed batch.
	ndjsonFlushBytes = 32 << 10
)

// writeBatchNDJSON streams the batch as NDJSON: a fingerprint header
// line, then one result line per domain, scored and flushed in
// fixed-size chunks so the whole response never exists in memory.
func (s *Server) writeBatchNDJSON(w http.ResponseWriter, rc *http.ResponseController, sc *core.Scorer, domains []string) int {
	w.Header()["Content-Type"] = ctNDJSON
	w.WriteHeader(http.StatusOK)
	buf := getBuf()
	b := append((*buf)[:0], `{"fingerprint":`...)
	b = appendJSONString(b, sc.Fingerprint())
	b = append(b, '}', '\n')

	resPtr := getResults()
	chunk := *resPtr
	now := time.Now()
	var known, unknown uint64
	for off := 0; off < len(domains); off += ndjsonChunk {
		end := min(off+ndjsonChunk, len(domains))
		chunk = sc.ScoreBatchInto(chunk[:0], domains[off:end])
		for i, res := range chunk {
			if res.Known {
				known++
			} else if fr, ok := s.foldin.Score(sc, domains[off+i], now); ok {
				res = fr
				s.countFoldin(res.Source)
			} else {
				unknown++
			}
			b = appendBatchResult(b, domains[off+i], res.Score, res.Label, res.Known, res.Confidence, res.Source)
			b = append(b, '\n')
		}
		if len(b) >= ndjsonFlushBytes {
			if _, err := w.Write(b); err != nil {
				// Client went away mid-stream; stop scoring for it.
				b = b[:0]
				break
			}
			_ = rc.Flush()
			b = b[:0]
		}
	}
	if len(b) > 0 {
		_, _ = w.Write(b)
		_ = rc.Flush()
	}
	s.scored.Add(known)
	s.unknown.Add(unknown)
	*buf = b
	putBuf(buf)
	*resPtr = chunk
	putResults(resPtr)
	return http.StatusOK
}

// ---- fold-in observation ----

// ObserveRelation is one observed edge in an ObserveRequest: the
// domain co-occurred with a retained neighbor in the named behavioral
// view. Weight is the co-occurrence strength; values ≤ 0 count as 1.
type ObserveRelation struct {
	View     string  `json:"view"` // "query", "ip", or "time"
	Neighbor string  `json:"neighbor"`
	Weight   float64 `json:"weight"`
}

// ObserveRequest is the body of POST /v1/observe.
type ObserveRequest struct {
	Domain    string            `json:"domain"`
	Relations []ObserveRelation `json:"relations"`
}

// ObserveResponse is the body of a successful POST /v1/observe.
// Relations counts the relations accepted from this request; Entries
// is the fold-in cache's domain count after the observation.
type ObserveResponse struct {
	Domain    string `json:"domain"`
	Relations int    `json:"relations"`
	Entries   int    `json:"entries"`
}

func (s *Server) serveObserve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var code int
	switch {
	case r.Method != http.MethodPost:
		code = s.methodNotAllowed(w, "POST")
	case !s.admit(w):
		code = http.StatusServiceUnavailable
	default:
		code = s.handleObserve(w, r)
		s.release()
	}
	s.mObserve.observe(start, code)
}

// handleObserve feeds one domain's observed relations into the fold-in
// cache. This is a cold control-plane-shaped path (it allocates); the
// hot path is the cached Score probe the scoring routes make.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) int {
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Now().Add(s.cfg.RequestTimeout))
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	var req ObserveRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, http.StatusRequestEntityTooLarge, codeOverLimit,
				fmt.Sprintf("observe body exceeds %d bytes", s.cfg.MaxBody))
			return http.StatusRequestEntityTooLarge
		}
		s.writeError(w, http.StatusBadRequest, codeBadRequest, "bad observe request: "+err.Error())
		return http.StatusBadRequest
	}
	if req.Domain == "" {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, "observe needs a domain")
		return http.StatusBadRequest
	}
	if len(req.Relations) == 0 {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, "observe needs at least one relation")
		return http.StatusBadRequest
	}
	rels := make([]core.Relation, len(req.Relations))
	for i, rel := range req.Relations {
		v, ok := viewByName(rel.View)
		if !ok {
			s.writeError(w, http.StatusBadRequest, codeBadRequest,
				fmt.Sprintf("relation %d: unknown view %q (use query, ip, or time)", i, rel.View))
			return http.StatusBadRequest
		}
		if rel.Neighbor == "" {
			s.writeError(w, http.StatusBadRequest, codeBadRequest,
				fmt.Sprintf("relation %d: missing neighbor", i))
			return http.StatusBadRequest
		}
		rels[i] = core.Relation{View: v, Neighbor: rel.Neighbor, Weight: rel.Weight}
	}
	evicted, expired := s.foldin.Observe(req.Domain, rels, time.Now())
	s.foldinObs.Inc()
	s.foldinEvicted.Add(uint64(evicted))
	s.foldinExpired.Add(uint64(expired))
	s.foldinEntries.Set(float64(s.foldin.Len()))
	writeJSON(w, http.StatusOK, ObserveResponse{
		Domain:    req.Domain,
		Relations: len(rels),
		Entries:   s.foldin.Len(),
	})
	return http.StatusOK
}

// viewByName maps the wire names of the behavioral views to their
// bipartite identifiers.
func viewByName(name string) (bipartite.View, bool) {
	switch name {
	case "query":
		return bipartite.ViewQuery, true
	case "ip":
		return bipartite.ViewIP, true
	case "time":
		return bipartite.ViewTime, true
	}
	return 0, false
}

// ---- control-plane handlers ----

// ReloadResponse is the body of a successful POST /v1/reload.
type ReloadResponse struct {
	Fingerprint string    `json:"fingerprint"`
	Domains     int       `json:"domains"`
	Embedder    string    `json:"embedder"`
	Classifier  string    `json:"classifier"`
	LoadedAt    time.Time `json:"loaded_at"`
}

func (s *Server) serveReload(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var code int
	if r.Method != http.MethodPost {
		code = s.methodNotAllowed(w, "POST")
	} else {
		code = s.handleReload(w)
	}
	s.mReload.observe(start, code)
}

func (s *Server) handleReload(w http.ResponseWriter) int {
	if err := s.Reload(); err != nil {
		// The old model is still serving; report both facts.
		writeJSON(w, http.StatusInternalServerError, map[string]string{
			"error":   err.Error(),
			"serving": s.Scorer().Fingerprint(),
		})
		return http.StatusInternalServerError
	}
	st := s.model.Load()
	writeJSON(w, http.StatusOK, ReloadResponse{
		Fingerprint: st.scorer.Fingerprint(),
		Domains:     len(st.scorer.Domains()),
		Embedder:    st.scorer.EmbedderName(),
		Classifier:  st.scorer.ClassifierName(),
		LoadedAt:    st.loadedAt,
	})
	return http.StatusOK
}

// HealthResponse is the body of GET /healthz and GET /healthz/ready
// when the server is ready to score.
type HealthResponse struct {
	Status      string    `json:"status"`
	Domains     int       `json:"domains"`
	Fingerprint string    `json:"fingerprint"`
	Embedder    string    `json:"embedder"`
	Classifier  string    `json:"classifier"`
	LoadedAt    time.Time `json:"loaded_at"`
}

// LivenessResponse is the body of GET /healthz/live.
type LivenessResponse struct {
	Status string `json:"status"`
}

// serveLive is the liveness probe: it answers 200 whenever the process
// can serve HTTP at all, deliberately ignoring model state. Restarting
// a daemon because its model reload is slow would destroy the very
// generation still serving traffic — readiness, not liveness, gates
// that.
func (s *Server) serveLive(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var code int
	if r.Method != http.MethodGet {
		code = s.methodNotAllowed(w, "GET")
	} else {
		writeJSON(w, http.StatusOK, LivenessResponse{Status: "alive"})
		code = http.StatusOK
	}
	s.mLive.observe(start, code)
}

// serveHealthz is the readiness probe, served at both /healthz
// (back-compat) and /healthz/ready: 200 with the served model's
// identity when ready, 503 with the structured error envelope (code
// "not_ready") while a (re)load is in flight or no model generation is
// installed.
func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var code int
	if r.Method != http.MethodGet {
		code = s.methodNotAllowed(w, "GET")
	} else {
		st := s.model.Load()
		switch {
		case s.reloading.Load():
			s.writeError(w, http.StatusServiceUnavailable, codeNotReady,
				"model (re)load in flight")
			code = http.StatusServiceUnavailable
		case st == nil:
			s.writeError(w, http.StatusServiceUnavailable, codeNotReady,
				"no model loaded")
			code = http.StatusServiceUnavailable
		default:
			writeJSON(w, http.StatusOK, HealthResponse{
				Status:      "ok",
				Domains:     len(st.scorer.Domains()),
				Fingerprint: st.scorer.Fingerprint(),
				Embedder:    st.scorer.EmbedderName(),
				Classifier:  st.scorer.ClassifierName(),
				LoadedAt:    st.loadedAt,
			})
			code = http.StatusOK
		}
	}
	s.mHealth.observe(start, code)
}

func (s *Server) servePprof(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, "GET")
		return
	}
	switch r.URL.Path {
	case "/debug/pprof/cmdline":
		pprof.Cmdline(w, r)
	case "/debug/pprof/profile":
		pprof.Profile(w, r)
	case "/debug/pprof/symbol":
		pprof.Symbol(w, r)
	case "/debug/pprof/trace":
		pprof.Trace(w, r)
	default:
		pprof.Index(w, r)
	}
}

// Package serve is the model-serving daemon: the online half of the
// train/serve split that core.SaveModel/LoadScorer opened. A Server
// holds one persisted model in an atomically swappable pointer and
// answers scoring queries over HTTP (stdlib net/http only):
//
//	GET  /v1/score/{domain}  one domain's decision value and label
//	POST /v1/score/batch     {"domains": [...]} scored in one call
//	POST /v1/reload          re-read the model file and swap atomically
//	GET  /healthz            liveness + loaded-model identity
//	GET  /metrics            Prometheus text exposition (internal/obsv)
//	GET  /debug/pprof/...    profiling (when Config.EnablePprof)
//
// The lifecycle is production-shaped. Reload (also triggered by SIGHUP
// in cmd/maldetect) loads the replacement model fully before swapping
// the pointer, so in-flight requests keep scoring against the old
// model and a corrupt or truncated replacement file leaves the old
// model serving with the error reported to the caller. Scoring
// endpoints sit behind a bounded-concurrency gate that sheds excess
// load with 503 + Retry-After instead of queueing unboundedly, and
// behind a per-request timeout. Shutdown drains in-flight requests up
// to a deadline before returning.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obsv"
)

// Config parameterizes a Server. The zero value needs only ModelPath.
type Config struct {
	// ModelPath is the model file written by maldetect train
	// (core.SaveModel); Reload re-reads the same path.
	ModelPath string
	// MaxInFlight bounds concurrently executing scoring requests;
	// excess requests are shed with 503 + Retry-After (default 256).
	MaxInFlight int
	// RequestTimeout bounds one scoring request end to end, including
	// reading the body (default 5s).
	RequestTimeout time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight requests when
	// the caller's context has no deadline of its own (default 10s).
	DrainTimeout time.Duration
	// MaxBatch bounds the domain count of one batch request (default
	// 10000); larger batches are rejected with 413.
	MaxBatch int
	// Metrics receives request instrumentation and backs /metrics. A
	// private registry is created when nil; pass the registry used for
	// model builds to expose both vocabularies on one endpoint.
	Metrics *obsv.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Logf, when set, receives operational log lines (reloads,
	// shutdown); nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 10_000
	}
	return c
}

// modelState is one loaded model generation; the Server swaps whole
// states so every request sees a consistent (scorer, metadata) pair.
type modelState struct {
	scorer   *core.Scorer
	loadedAt time.Time
}

// Server serves one model file over HTTP. Create with New, expose with
// Serve (or mount Handler in a test server), stop with Shutdown.
type Server struct {
	cfg   Config
	reg   *obsv.Registry
	model atomic.Pointer[modelState]
	gate  chan struct{}

	handler  http.Handler
	httpSrv  *http.Server
	reloadMu sync.Mutex // serializes Reload; requests never block on it

	requests *obsv.CounterVec   // path, code
	latency  *obsv.HistogramVec // path
	inflight *obsv.Gauge
	shed     *obsv.Counter
	reloads  *obsv.CounterVec // result
	scored   *obsv.Counter
	unknown  *obsv.Counter
	modelDom *obsv.Gauge
	modelTS  *obsv.Gauge
}

// New loads the model at cfg.ModelPath and returns a ready Server. A
// missing or corrupt initial model is a startup error: a daemon that
// never had a model has nothing to keep serving.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	s := &Server{
		cfg:  cfg,
		reg:  reg,
		gate: make(chan struct{}, cfg.MaxInFlight),

		requests: reg.CounterVec("maldomain_http_requests_total",
			"HTTP requests served, by route and status code.", "path", "code"),
		latency: reg.HistogramVec("maldomain_http_request_seconds",
			"HTTP request latency, by route.", "path"),
		inflight: reg.Gauge("maldomain_http_inflight",
			"Scoring requests currently executing."),
		shed: reg.Counter("maldomain_http_shed_total",
			"Scoring requests shed with 503 at the concurrency gate."),
		reloads: reg.CounterVec("maldomain_model_reloads_total",
			"Model reload attempts, by result.", "result"),
		scored: reg.Counter("maldomain_scores_total",
			"Domains scored (single and batch, known domains only)."),
		unknown: reg.Counter("maldomain_score_unknown_total",
			"Score lookups for domains outside the model."),
		modelDom: reg.Gauge("maldomain_model_domains",
			"Retained domain count of the currently served model."),
		modelTS: reg.Gauge("maldomain_model_loaded_timestamp_seconds",
			"Unix time the current model generation was loaded."),
	}
	st, err := s.loadModel()
	if err != nil {
		return nil, fmt.Errorf("serve: loading initial model: %w", err)
	}
	s.install(st)
	s.handler = s.buildMux()
	s.httpSrv = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s, nil
}

// loadModel reads cfg.ModelPath into a fresh modelState without
// touching the served pointer. The bufio wrapper matters: the model
// stream holds several gob streams back to back, and a reader without
// io.ByteReader would make each decoder buffer (and lose) the next
// stream's prefix.
func (s *Server) loadModel() (*modelState, error) {
	f, err := os.Open(s.cfg.ModelPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := core.LoadScorer(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, err
	}
	return &modelState{scorer: sc, loadedAt: time.Now()}, nil
}

// install publishes a loaded state and its gauges.
func (s *Server) install(st *modelState) {
	s.model.Store(st)
	s.modelDom.Set(float64(len(st.scorer.Domains())))
	s.modelTS.Set(float64(st.loadedAt.UnixNano()) / 1e9)
}

// Reload re-reads the model file and swaps it in atomically. The new
// model is fully decoded and validated before the pointer moves, so
// concurrent requests always score against a complete model; on any
// error the previous model keeps serving and the error is returned.
// Concurrent Reload calls are serialized.
func (s *Server) Reload() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	st, err := s.loadModel()
	if err != nil {
		s.reloads.With("error").Inc()
		s.logf("reload failed, keeping current model: %v", err)
		return err
	}
	s.install(st)
	s.reloads.With("ok").Inc()
	s.logf("reloaded model %s: %d domains, fingerprint %s",
		s.cfg.ModelPath, len(st.scorer.Domains()), st.scorer.Fingerprint())
	return nil
}

// Scorer returns the currently served model generation. The scorer is
// immutable; it remains valid (but possibly superseded) after a
// reload.
func (s *Server) Scorer() *core.Scorer {
	return s.model.Load().scorer
}

// Handler returns the daemon's full route table, for tests and
// embedding.
func (s *Server) Handler() http.Handler { return s.handler }

// Serve accepts connections on l until Shutdown. It returns nil after
// a clean Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish. When ctx carries no deadline, Config.DrainTimeout
// bounds the wait; on deadline expiry remaining connections are closed
// and the context error returned.
func (s *Server) Shutdown(ctx context.Context) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
	}
	s.logf("shutting down, draining in-flight requests")
	return s.httpSrv.Shutdown(ctx)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ---- routing and middleware ----

func (s *Server) buildMux() http.Handler {
	mux := http.NewServeMux()
	score := func(h http.HandlerFunc) http.Handler {
		// Gate outside the timeout wrapper: a shed request must not
		// consume a timeout goroutine, and a timed-out handler keeps its
		// slot until it actually finishes, so MaxInFlight stays a true
		// bound on executing handlers.
		return s.gated(http.TimeoutHandler(h, s.cfg.RequestTimeout,
			`{"error":"request timed out"}`))
	}
	mux.Handle("GET /v1/score/{domain}", s.instrument("/v1/score", score(s.handleScore)))
	mux.Handle("POST /v1/score/batch", s.instrument("/v1/score/batch", score(s.handleBatch)))
	mux.Handle("POST /v1/reload", s.instrument("/v1/reload", http.HandlerFunc(s.handleReload)))
	mux.Handle("GET /healthz", s.instrument("/healthz", http.HandlerFunc(s.handleHealthz)))
	mux.Handle("GET /metrics", s.reg.Handler())
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusWriter captures the status code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument records the request count (by final status) and latency
// of every request under route's label.
func (s *Server) instrument(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		s.latency.With(route).Observe(time.Since(start).Seconds())
		s.requests.With(route, strconv.Itoa(sw.code)).Inc()
	})
}

// gated admits at most MaxInFlight concurrent executions; everything
// beyond that is shed immediately with 503 + Retry-After rather than
// queued, so overload degrades with fast rejections instead of
// building an unbounded backlog of slow ones.
func (s *Server) gated(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.gate <- struct{}{}:
			s.inflight.Add(1)
			defer func() {
				s.inflight.Add(-1)
				<-s.gate
			}()
			h.ServeHTTP(w, r)
		default:
			s.shed.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSONError(w, http.StatusServiceUnavailable, "server at capacity")
		}
	})
}

// ---- handlers ----

// ScoreResponse is the body of GET /v1/score/{domain}.
type ScoreResponse struct {
	Domain string  `json:"domain"`
	Score  float64 `json:"score"`
	Label  int     `json:"label"`
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	domain := r.PathValue("domain")
	res, err := s.Scorer().Lookup(domain)
	if err != nil {
		if errors.Is(err, core.ErrUnknownDomain) {
			s.unknown.Inc()
			writeJSONError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.scored.Inc()
	writeJSON(w, http.StatusOK, ScoreResponse{Domain: domain, Score: res.Score, Label: res.Label})
}

// BatchRequest is the body of POST /v1/score/batch.
type BatchRequest struct {
	Domains []string `json:"domains"`
}

// BatchResult is one entry of BatchResponse.Results, aligned with the
// request's domain order. Known=false marks domains outside the model.
type BatchResult struct {
	Domain string  `json:"domain"`
	Score  float64 `json:"score"`
	Label  int     `json:"label"`
	Known  bool    `json:"known"`
}

// BatchResponse is the body of POST /v1/score/batch.
type BatchResponse struct {
	Results     []BatchResult `json:"results"`
	Fingerprint string        `json:"fingerprint"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad batch request: "+err.Error())
		return
	}
	if len(req.Domains) > s.cfg.MaxBatch {
		writeJSONError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d domains exceeds limit %d", len(req.Domains), s.cfg.MaxBatch))
		return
	}
	sc := s.Scorer()
	results := sc.ScoreBatch(req.Domains)
	resp := BatchResponse{
		Results:     make([]BatchResult, len(results)),
		Fingerprint: sc.Fingerprint(),
	}
	var known uint64
	for i, res := range results {
		resp.Results[i] = BatchResult{
			Domain: req.Domains[i],
			Score:  res.Score,
			Label:  res.Label,
			Known:  res.Known,
		}
		if res.Known {
			known++
		}
	}
	s.scored.Add(known)
	s.unknown.Add(uint64(len(results)) - known)
	writeJSON(w, http.StatusOK, resp)
}

// ReloadResponse is the body of a successful POST /v1/reload.
type ReloadResponse struct {
	Fingerprint string    `json:"fingerprint"`
	Domains     int       `json:"domains"`
	LoadedAt    time.Time `json:"loaded_at"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := s.Reload(); err != nil {
		// The old model is still serving; report both facts.
		writeJSON(w, http.StatusInternalServerError, map[string]string{
			"error":   err.Error(),
			"serving": s.Scorer().Fingerprint(),
		})
		return
	}
	st := s.model.Load()
	writeJSON(w, http.StatusOK, ReloadResponse{
		Fingerprint: st.scorer.Fingerprint(),
		Domains:     len(st.scorer.Domains()),
		LoadedAt:    st.loadedAt,
	})
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status      string    `json:"status"`
	Domains     int       `json:"domains"`
	Fingerprint string    `json:"fingerprint"`
	LoadedAt    time.Time `json:"loaded_at"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.model.Load()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:      "ok",
		Domains:     len(st.scorer.Domains()),
		Fingerprint: st.scorer.Fingerprint(),
		LoadedAt:    st.loadedAt,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Handlers marshal small fixed-shape values; an encode failure here
	// means the response is already half-written, so there is nothing
	// better to do than stop.
	_ = json.NewEncoder(w).Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

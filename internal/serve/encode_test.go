package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// nastyStrings exercises every branch of appendJSONString: named
// escapes, raw control bytes, HTML-unsafe characters, invalid UTF-8,
// the JSONP line separators, multi-byte runes, and long plain runs.
var nastyStrings = []string{
	"",
	"plain.example",
	`quo"te`,
	`back\slash`,
	"tab\there",
	"nl\nline",
	"cr\rline",
	"\b\f",
	"\x00\x01\x1f",
	"<script>&amp;</script>",
	"a<b>c&d",
	"\xff\xfe invalid",
	"trailing\xc3",
	" line sep",
	"héllo 世界",
	strings.Repeat("long-ascii.example/", 100),
	"mixed\"\\\n<&\xffé end",
}

// nastyFloats exercises appendJSONFloat's format switch: both sides of
// the 1e-6 and 1e21 thresholds, subnormals, negative zero, and values
// whose shortest representation carries an exponent of one digit.
var nastyFloats = []float64{
	0, math.Copysign(0, -1),
	1, -1, 1.5, -2.75, 0.1,
	1e-6, 9.999999e-7, -9.999999e-7, 6.6e-7,
	1e20, 1e21, -1e21, 1.0000000000000002e21,
	5e-324, math.MaxFloat64, math.SmallestNonzeroFloat64,
	3.141592653589793, -1.2345678901234567e-100, 7.5e250,
}

// encodeRef runs encoding/json exactly the way writeJSON used to:
// Encoder.Encode, default escaping, trailing newline.
func encodeRef(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestManualEncodingEquivalence pins the hand-rolled appenders to
// encoding/json byte for byte, across every response shape the daemon
// hand-encodes and the full nasty-input matrix. This test is the
// license for encode.go to exist.
func TestManualEncodingEquivalence(t *testing.T) {
	sources := []string{"", "model", "foldin", "knn"}
	for _, s := range nastyStrings {
		for _, f := range nastyFloats {
			for _, label := range []int{0, 1, -1} {
				for _, known := range []bool{true, false} {
					for _, src := range sources {
						want := encodeRef(t, ScoreResponse{
							Domain: s, Score: f, Label: label,
							Known: known, Confidence: f, Source: src,
						})
						got := appendScoreResponse(nil, s, f, label, known, f, src)
						if !bytes.Equal(got, want) {
							t.Fatalf("ScoreResponse(%q, %v, %d, %v, %q):\n got %s\nwant %s",
								s, f, label, known, src, got, want)
						}
						wantBR, err := json.Marshal(BatchResult{
							Domain: s, Score: f, Label: label,
							Known: known, Confidence: f, Source: src,
						})
						if err != nil {
							t.Fatal(err)
						}
						gotBR := appendBatchResult(nil, s, f, label, known, f, src)
						if !bytes.Equal(gotBR, wantBR) {
							t.Fatalf("BatchResult(%q, %v, %d, %v, %q):\n got %s\nwant %s",
								s, f, label, known, src, gotBR, wantBR)
						}
					}
				}
			}
		}
		for _, retry := range []int64{0, 1000} {
			wantErr := encodeRef(t, ErrorBody{Error: ErrorDetail{
				Code: "bad_request", Message: s, RetryAfterMS: retry,
			}})
			gotErr := appendErrorEnvelope(nil, "bad_request", s, retry)
			if !bytes.Equal(gotErr, wantErr) {
				t.Fatalf("error envelope(%q, retry=%d):\n got %s\nwant %s", s, retry, gotErr, wantErr)
			}
		}
	}
}

// TestServedEncodingEquivalence checks the equivalence end to end: the
// bytes the live handlers emit must equal encoding/json applied to the
// documented response structs, for score, batch (known and unknown
// domains), and the 404 error envelope.
func TestServedEncodingEquivalence(t *testing.T) {
	modelA, _, scorerA, _ := models(t)
	s, _ := newTestServer(t, modelA, nil)
	domains := scorerA.Domains()

	// Single score, known domain.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/score/"+domains[0], nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	score, _ := scorerA.Score(domains[0])
	label, _ := scorerA.Predict(domains[0])
	want := encodeRef(t, ScoreResponse{
		Domain: domains[0], Score: score, Label: label,
		Known: true, Confidence: 1, Source: "model",
	})
	if got := rec.Body.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("score body:\n got %s\nwant %s", got, want)
	}

	// Single score, unknown domain: the 404 envelope must carry
	// Lookup's exact error text.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/score/not-here.example", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d", rec.Code)
	}
	_, lookupErr := scorerA.Lookup("not-here.example")
	want = encodeRef(t, ErrorBody{Error: ErrorDetail{
		Code: "unknown_domain", Message: lookupErr.Error(),
	}})
	if got := rec.Body.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("404 body:\n got %s\nwant %s", got, want)
	}

	// Batch document with known and unknown domains interleaved.
	queries := append([]string{"missing.example"}, domains...)
	body, _ := json.Marshal(BatchRequest{Domains: queries})
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/score/batch", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	results := make([]BatchResult, 0, len(queries))
	for _, r := range scorerA.ScoreBatch(queries) {
		results = append(results, BatchResult{
			Score: r.Score, Label: r.Label, Known: r.Known,
			Confidence: r.Confidence, Source: r.Source,
		})
	}
	for i := range results {
		results[i].Domain = queries[i]
	}
	want = encodeRef(t, BatchResponse{Results: results, Fingerprint: scorerA.Fingerprint()})
	if got := rec.Body.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("batch body:\n got %s\nwant %s", got, want)
	}

	// Empty batch: results must render as [], not null.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/score/batch", strings.NewReader(`{"domains":[]}`)))
	want = encodeRef(t, BatchResponse{Results: []BatchResult{}, Fingerprint: scorerA.Fingerprint()})
	if got := rec.Body.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("empty batch body:\n got %s\nwant %s", got, want)
	}
}

// TestMaxBodyDerivation pins the MaxBatch → MaxBody sizing rule: any
// legal batch of maximum-length DNS names must fit under the derived
// cap.
func TestMaxBodyDerivation(t *testing.T) {
	cfg := Config{MaxBatch: 4}.withDefaults()
	if want := int64(64 + 260*4); cfg.MaxBody != want {
		t.Fatalf("derived MaxBody = %d, want %d", cfg.MaxBody, want)
	}
	// A full batch of 255-byte domains must be under the cap.
	doc, _ := json.Marshal(BatchRequest{Domains: []string{
		strings.Repeat("a", 255), strings.Repeat("b", 255),
		strings.Repeat("c", 255), strings.Repeat("d", 255),
	}})
	if int64(len(doc)) > cfg.MaxBody {
		t.Fatalf("maximal legal batch is %d bytes, exceeds derived cap %d", len(doc), cfg.MaxBody)
	}
	cfg = Config{MaxBatch: 4, MaxBody: 99}.withDefaults()
	if cfg.MaxBody != 99 {
		t.Fatalf("explicit MaxBody overridden: %d", cfg.MaxBody)
	}
}

// TestBatchBodyCap checks the enforcement boundary: a body of exactly
// MaxBody bytes is served, one byte more is rejected with 413 before
// the batch is scored.
func TestBatchBodyCap(t *testing.T) {
	modelA, _, _, _ := models(t)
	s, _ := newTestServer(t, modelA, func(c *Config) { c.MaxBody = 512 })

	doc := `{"domains":["pad.example"]}`
	pad := strings.Repeat(" ", 512-len(doc))

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/score/batch", strings.NewReader(pad+doc)))
	if rec.Code != http.StatusOK {
		t.Fatalf("body at cap: status %d: %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/score/batch", strings.NewReader(" "+pad+doc)))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("body over cap: status %d, want 413", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "batch body exceeds 512 bytes") {
		t.Fatalf("413 body %q does not name the cap", rec.Body.String())
	}
}

// FuzzJSONStringEquivalence fuzzes the one encoding branch with real
// surface area — string escaping — against encoding/json.
func FuzzJSONStringEquivalence(f *testing.F) {
	for _, s := range nastyStrings {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		want, err := json.Marshal(s)
		if err != nil {
			t.Skip()
		}
		got := appendJSONString(nil, s)
		if !bytes.Equal(got, want) {
			t.Fatalf("appendJSONString(%q):\n got %s\nwant %s", s, got, want)
		}
	})
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// tinyModel builds a persisted model over a hand-crafted trace small
// enough to train in milliseconds even under the race detector:
// 8 domains with overlapping host, IP, and minute sets so every view
// has structure. Different seeds yield different fingerprints and
// decision values, which the reload tests use to tell generations
// apart.
func tinyModel(tb testing.TB, seed uint64) []byte {
	tb.Helper()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	det := core.NewDetector(core.Config{
		Start:        start,
		Days:         1,
		EmbedDim:     4,
		EmbedSamples: 20_000,
		Seed:         seed,
		Workers:      1,
	})
	for i := 0; i < 8; i++ {
		for h := 0; h < 3; h++ {
			for m := 0; m < 3; m++ {
				det.Consume(pipeline.Input{
					Time:     start.Add(time.Duration(2*i+m) * time.Minute),
					ClientIP: fmt.Sprintf("10.0.0.%d", (i+h)%10),
					QName:    fmt.Sprintf("www.dom%d.com", i),
					Answers:  []string{fmt.Sprintf("198.51.100.%d", (i+m)%8)},
				})
			}
		}
	}
	if err := det.BuildModel(); err != nil {
		tb.Fatal(err)
	}
	domains, err := det.Domains()
	if err != nil {
		tb.Fatal(err)
	}
	labels := make([]int, len(domains))
	for i := range domains {
		labels[i] = i % 2
	}
	clf, err := det.TrainClassifier(domains, labels)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.SaveModel(&buf, clf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fixture caches the two model generations: building them once keeps
// the package fast enough to always run under -race.
var fixture struct {
	once             sync.Once
	modelA, modelB   []byte
	scorerA, scorerB *core.Scorer
}

func models(tb testing.TB) (a, b []byte, sa, sb *core.Scorer) {
	tb.Helper()
	fixture.once.Do(func() {
		fixture.modelA = tinyModel(tb, 5)
		fixture.modelB = tinyModel(tb, 6)
		var err error
		if fixture.scorerA, err = core.LoadScorer(bytes.NewReader(fixture.modelA)); err != nil {
			tb.Fatal(err)
		}
		if fixture.scorerB, err = core.LoadScorer(bytes.NewReader(fixture.modelB)); err != nil {
			tb.Fatal(err)
		}
	})
	if fixture.modelA == nil || fixture.modelB == nil {
		tb.Fatal("model fixture failed to build")
	}
	return fixture.modelA, fixture.modelB, fixture.scorerA, fixture.scorerB
}

// newTestServer writes model bytes to a file and builds a Server on it.
func newTestServer(tb testing.TB, model []byte, mutate func(*Config)) (*Server, string) {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "model.bin")
	if err := os.WriteFile(path, model, 0o644); err != nil {
		tb.Fatal(err)
	}
	cfg := Config{ModelPath: path}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return s, path
}

func getJSON(tb testing.TB, h http.Handler, method, target string, body io.Reader, out any) *httptest.ResponseRecorder {
	tb.Helper()
	req := httptest.NewRequest(method, target, body)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			tb.Fatalf("%s %s: bad JSON %q: %v", method, target, rec.Body.String(), err)
		}
	}
	return rec
}

// TestScoreEndpoint checks the single-domain route: bit-identical
// scores for every retained domain (JSON float64 round-trips exactly)
// and a 404 mapped from core.ErrUnknownDomain for everything else.
func TestScoreEndpoint(t *testing.T) {
	modelA, _, scorerA, _ := models(t)
	s, _ := newTestServer(t, modelA, nil)
	for _, dom := range scorerA.Domains() {
		var resp ScoreResponse
		rec := getJSON(t, s.Handler(), "GET", "/v1/score/"+dom, nil, &resp)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /v1/score/%s: status %d: %s", dom, rec.Code, rec.Body.String())
		}
		want, _ := scorerA.Score(dom)
		if resp.Score != want {
			t.Fatalf("%s: served score %v != Scorer.Score %v", dom, resp.Score, want)
		}
		if p, _ := scorerA.Predict(dom); p != resp.Label {
			t.Fatalf("%s: served label %d != Predict %d", dom, resp.Label, p)
		}
	}
	rec := getJSON(t, s.Handler(), "GET", "/v1/score/never-seen.example", nil, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown domain: status %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "never-seen.example") {
		t.Errorf("404 body %q does not name the domain", rec.Body.String())
	}
}

// TestBatchEndpoint checks the batch route: order-aligned results,
// Known flags, bit-identical scores, and the input-validation errors.
func TestBatchEndpoint(t *testing.T) {
	modelA, _, scorerA, _ := models(t)
	s, _ := newTestServer(t, modelA, func(c *Config) { c.MaxBatch = 16 })
	domains := append([]string{"missing.example"}, scorerA.Domains()...)
	body, _ := json.Marshal(BatchRequest{Domains: domains})
	var resp BatchResponse
	rec := getJSON(t, s.Handler(), "POST", "/v1/score/batch", bytes.NewReader(body), &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Results) != len(domains) {
		t.Fatalf("%d results for %d domains", len(resp.Results), len(domains))
	}
	if resp.Fingerprint != scorerA.Fingerprint() {
		t.Errorf("fingerprint %q, want %q", resp.Fingerprint, scorerA.Fingerprint())
	}
	for i, r := range resp.Results {
		if r.Domain != domains[i] {
			t.Fatalf("result %d is %q, want %q", i, r.Domain, domains[i])
		}
		want, ok := scorerA.Score(domains[i])
		if ok != r.Known {
			t.Fatalf("%s: known=%v, want %v", r.Domain, r.Known, ok)
		}
		if ok && r.Score != want {
			t.Fatalf("%s: batch score %v != Scorer.Score %v", r.Domain, r.Score, want)
		}
	}

	rec = getJSON(t, s.Handler(), "POST", "/v1/score/batch", strings.NewReader("not json"), nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", rec.Code)
	}
	big, _ := json.Marshal(BatchRequest{Domains: make([]string, 17)})
	rec = getJSON(t, s.Handler(), "POST", "/v1/score/batch", bytes.NewReader(big), nil)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", rec.Code)
	}
}

// TestReloadUnderFire is the hot-swap guarantee: goroutines score
// continuously while the model file is rewritten and reloaded many
// times. Every request must succeed, and every returned score must be
// bit-identical to one of the two model generations.
func TestReloadUnderFire(t *testing.T) {
	modelA, modelB, scorerA, scorerB := models(t)
	s, path := newTestServer(t, modelA, nil)
	dom := scorerA.Domains()[0]
	wantA, _ := scorerA.Score(dom)
	wantB, okB := scorerB.Score(dom)
	if !okB {
		t.Fatalf("fixture: %s not retained by model B", dom)
	}
	if wantA == wantB {
		t.Fatalf("fixture: generations indistinguishable for %s", dom)
	}

	var stop atomic.Bool
	var failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				var resp ScoreResponse
				rec := getJSON(t, s.Handler(), "GET", "/v1/score/"+dom, nil, &resp)
				if rec.Code != http.StatusOK {
					failures.Add(1)
					continue
				}
				if resp.Score != wantA && resp.Score != wantB {
					failures.Add(1)
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		next := modelB
		if i%2 == 1 {
			next = modelA
		}
		if err := os.WriteFile(path, next, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := s.Reload(); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed or returned a torn score during reloads", n)
	}
	// 20 reloads, last one loaded model A (i=19 odd).
	if got := s.Scorer().Fingerprint(); got != scorerA.Fingerprint() {
		t.Errorf("final fingerprint %q, want model A's %q", got, scorerA.Fingerprint())
	}
}

// TestReloadCorruptKeepsServing: a truncated or garbage replacement
// file must fail the reload and leave the previous model serving, for
// both the Reload method and the HTTP endpoint.
func TestReloadCorruptKeepsServing(t *testing.T) {
	modelA, _, scorerA, _ := models(t)
	s, path := newTestServer(t, modelA, nil)
	dom := scorerA.Domains()[0]
	want, _ := scorerA.Score(dom)

	for name, corrupt := range map[string][]byte{
		"garbage":   []byte("this is not a model"),
		"truncated": modelA[:len(modelA)/3],
		"empty":     {},
	} {
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := s.Reload(); err == nil {
			t.Fatalf("%s replacement: reload succeeded", name)
		}
		rec := getJSON(t, s.Handler(), "POST", "/v1/reload", nil, nil)
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("%s replacement: /v1/reload status %d, want 500", name, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), scorerA.Fingerprint()) {
			t.Errorf("%s replacement: error body does not report the still-serving fingerprint", name)
		}
		var resp ScoreResponse
		if rec := getJSON(t, s.Handler(), "GET", "/v1/score/"+dom, nil, &resp); rec.Code != http.StatusOK {
			t.Fatalf("%s replacement: scoring broken after failed reload: %d", name, rec.Code)
		}
		if resp.Score != want {
			t.Fatalf("%s replacement: score changed after failed reload", name)
		}
	}
	// A missing file must fail the same way.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err == nil {
		t.Fatal("reload of a deleted file succeeded")
	}
	// Restoring a good file recovers via the HTTP endpoint.
	if err := os.WriteFile(path, modelA, 0o644); err != nil {
		t.Fatal(err)
	}
	var rr ReloadResponse
	if rec := getJSON(t, s.Handler(), "POST", "/v1/reload", nil, &rr); rec.Code != http.StatusOK {
		t.Fatalf("recovery reload: status %d", rec.Code)
	}
	if rr.Fingerprint != scorerA.Fingerprint() {
		t.Errorf("recovery fingerprint %q, want %q", rr.Fingerprint, scorerA.Fingerprint())
	}
}

// slowBody lets a test hold a request in-flight: the handler's JSON
// decode blocks until the test releases the tail of the body.
type slowBody struct {
	head    io.Reader
	release chan struct{}
	tail    io.Reader
	started chan struct{}
	once    sync.Once
}

func newSlowBody(head, tail string) *slowBody {
	return &slowBody{
		head:    strings.NewReader(head),
		tail:    strings.NewReader(tail),
		release: make(chan struct{}),
		started: make(chan struct{}),
	}
}

func (b *slowBody) Read(p []byte) (int, error) {
	b.once.Do(func() { close(b.started) })
	n, err := b.head.Read(p)
	if n > 0 || err == nil {
		return n, nil
	}
	<-b.release
	return b.tail.Read(p)
}

// TestLoadShedding fills the single concurrency slot with a request
// whose body never finishes, then checks that the next scoring request
// is shed with 503 + Retry-After while /healthz stays reachable, and
// that the slot is reusable after the first request completes.
func TestLoadShedding(t *testing.T) {
	modelA, _, scorerA, _ := models(t)
	s, _ := newTestServer(t, modelA, func(c *Config) {
		c.MaxInFlight = 1
		c.RequestTimeout = 30 * time.Second
	})
	dom := scorerA.Domains()[0]

	body := newSlowBody(`{"domains":["`, dom+`"]}`)
	done := make(chan *httptest.ResponseRecorder)
	go func() {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/score/batch", body))
		done <- rec
	}()
	<-body.started
	// The slot holder has passed the gate once its body read begins;
	// poll the inflight gauge to avoid racing the gate acquisition.
	for i := 0; s.inflight.Value() < 1 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.inflight.Value() != 1 {
		t.Fatal("in-flight request never occupied the gate")
	}

	rec := getJSON(t, s.Handler(), "GET", "/v1/score/"+dom, nil, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("second request: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}
	if rec := getJSON(t, s.Handler(), "GET", "/healthz", nil, nil); rec.Code != http.StatusOK {
		t.Errorf("healthz shed with the scoring gate: status %d", rec.Code)
	}
	if s.shed.Value() == 0 {
		t.Error("shed counter not incremented")
	}

	close(body.release)
	if rec := <-done; rec.Code != http.StatusOK {
		t.Fatalf("slot-holding request: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp ScoreResponse
	if rec := getJSON(t, s.Handler(), "GET", "/v1/score/"+dom, nil, &resp); rec.Code != http.StatusOK {
		t.Fatalf("gate not released: status %d", rec.Code)
	}
}

// TestGracefulShutdown drives a real listener: a request is held
// in-flight while Shutdown is called; the listener must stop accepting
// new work, the in-flight request must complete with a valid response,
// and both Serve and Shutdown must return cleanly before the drain
// deadline.
func TestGracefulShutdown(t *testing.T) {
	modelA, _, scorerA, _ := models(t)
	s, _ := newTestServer(t, modelA, func(c *Config) {
		c.RequestTimeout = 30 * time.Second
		c.DrainTimeout = 10 * time.Second
	})
	dom := scorerA.Domains()[0]

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	// Sanity: the daemon answers over the wire.
	resp, err := http.Get(base + "/v1/score/" + dom)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: status %d", resp.StatusCode)
	}

	// Hold one request in-flight via a body the server can't finish
	// reading yet.
	pr, pw := io.Pipe()
	inflightDone := make(chan *http.Response, 1)
	go func() {
		req, _ := http.NewRequest("POST", base+"/v1/score/batch", pr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("in-flight request failed: %v", err)
			inflightDone <- nil
			return
		}
		inflightDone <- resp
	}()
	if _, err := pw.Write([]byte(`{"domains":["` + dom + `"`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; s.inflight.Value() < 1 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.inflight.Value() != 1 {
		t.Fatal("request never went in-flight")
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	// New connections must be refused once Shutdown closed the listener.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get(base + "/healthz"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting new connections during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Completing the body lets the in-flight request finish and drain.
	if _, err := pw.Write([]byte(`]}`)); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	resp = <-inflightDone
	if resp == nil {
		t.Fatal("in-flight request dropped during graceful shutdown")
	}
	var batch BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatalf("in-flight response unreadable: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(batch.Results) != 1 || !batch.Results[0].Known {
		t.Fatalf("in-flight response wrong: status %d, %+v", resp.StatusCode, batch)
	}
	if want, _ := scorerA.Score(dom); batch.Results[0].Score != want {
		t.Fatalf("in-flight score %v != %v", batch.Results[0].Score, want)
	}

	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("Shutdown did not return after the in-flight request drained")
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after clean shutdown", err)
	}
}

// TestHealthzAndMetrics checks the operational endpoints: healthz
// reports the model identity, and /metrics exposes the request
// counters and latency histograms in Prometheus text format.
func TestHealthzAndMetrics(t *testing.T) {
	modelA, _, scorerA, _ := models(t)
	s, _ := newTestServer(t, modelA, nil)
	var health HealthResponse
	if rec := getJSON(t, s.Handler(), "GET", "/healthz", nil, &health); rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rec.Code)
	}
	if health.Status != "ok" || health.Fingerprint != scorerA.Fingerprint() ||
		health.Domains != len(scorerA.Domains()) {
		t.Fatalf("healthz = %+v", health)
	}

	// Generate one 200 and one 404, then read the exposition.
	getJSON(t, s.Handler(), "GET", "/v1/score/"+scorerA.Domains()[0], nil, nil)
	getJSON(t, s.Handler(), "GET", "/v1/score/missing.example", nil, nil)
	rec := getJSON(t, s.Handler(), "GET", "/metrics", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	out := rec.Body.String()
	for _, want := range []string{
		`maldomain_http_requests_total{path="/v1/score",code="200"} 1`,
		`maldomain_http_requests_total{path="/v1/score",code="404"} 1`,
		"# TYPE maldomain_http_request_seconds histogram",
		`maldomain_http_request_seconds_count{path="/v1/score"} 2`,
		"maldomain_scores_total 1",
		"maldomain_score_unknown_total 1",
		fmt.Sprintf("maldomain_model_domains %d", len(scorerA.Domains())),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestPprofGate: the profiling routes exist only when enabled.
func TestPprofGate(t *testing.T) {
	modelA, _, _, _ := models(t)
	off, _ := newTestServer(t, modelA, nil)
	if rec := getJSON(t, off.Handler(), "GET", "/debug/pprof/", nil, nil); rec.Code != http.StatusNotFound {
		t.Errorf("pprof reachable while disabled: %d", rec.Code)
	}
	on, _ := newTestServer(t, modelA, func(c *Config) { c.EnablePprof = true })
	if rec := getJSON(t, on.Handler(), "GET", "/debug/pprof/", nil, nil); rec.Code != http.StatusOK {
		t.Errorf("pprof index while enabled: %d", rec.Code)
	}
}

// TestNewRejectsBadModel: startup must fail loudly without a loadable
// model.
func TestNewRejectsBadModel(t *testing.T) {
	dir := t.TempDir()
	if _, err := New(Config{ModelPath: filepath.Join(dir, "absent.bin")}); err == nil {
		t.Error("New accepted a missing model file")
	}
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{ModelPath: bad}); err == nil {
		t.Error("New accepted a corrupt model file")
	}
}

// TestHealthSplit checks the liveness/readiness split: /healthz/live
// answers 200 regardless of model state, /healthz/ready (and the
// /healthz alias) answers 200 with the model identity when serving and
// 503 with the not_ready envelope while a reload is in flight or no
// model generation is installed.
func TestHealthSplit(t *testing.T) {
	modelA, _, scorerA, _ := models(t)
	s, _ := newTestServer(t, modelA, nil)

	var live LivenessResponse
	if rec := getJSON(t, s.Handler(), "GET", "/healthz/live", nil, &live); rec.Code != http.StatusOK {
		t.Fatalf("live: status %d", rec.Code)
	}
	if live.Status != "alive" {
		t.Fatalf("live = %+v", live)
	}

	for _, path := range []string{"/healthz", "/healthz/ready"} {
		var health HealthResponse
		if rec := getJSON(t, s.Handler(), "GET", path, nil, &health); rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", path, rec.Code)
		}
		if health.Status != "ok" || health.Fingerprint != scorerA.Fingerprint() {
			t.Fatalf("%s = %+v", path, health)
		}
	}

	// Simulate a (re)load in flight: readiness flips to 503 not_ready,
	// liveness stays 200 — an orchestrator must not kill a daemon whose
	// next model generation is still decoding.
	s.reloading.Store(true)
	for _, path := range []string{"/healthz", "/healthz/ready"} {
		rec := getJSON(t, s.Handler(), "GET", path, nil, nil)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s during reload: status %d", path, rec.Code)
		}
		var body ErrorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s during reload: bad envelope %q: %v", path, rec.Body.String(), err)
		}
		if body.Error.Code != codeNotReady {
			t.Fatalf("%s during reload: code %q, want %q", path, body.Error.Code, codeNotReady)
		}
	}
	if rec := getJSON(t, s.Handler(), "GET", "/healthz/live", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("live during reload: status %d", rec.Code)
	}
	s.reloading.Store(false)

	// A server with no installed generation is alive but not ready.
	s.model.Store(nil)
	rec := getJSON(t, s.Handler(), "GET", "/healthz/ready", nil, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("ready without model: status %d", rec.Code)
	}
	var body ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("ready without model: bad envelope %q: %v", rec.Body.String(), err)
	}
	if body.Error.Code != codeNotReady {
		t.Fatalf("ready without model: code %q", body.Error.Code)
	}
	if rec := getJSON(t, s.Handler(), "GET", "/healthz/live", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("live without model: status %d", rec.Code)
	}

	// Wrong method: the probes are GET-only.
	if rec := getJSON(t, s.Handler(), "POST", "/healthz/live", nil, nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST live: status %d", rec.Code)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
)

// observeBody builds an ObserveRequest over the first three retained
// domains, one relation per view, and the equivalent core.Relation
// slice for the reference computation.
func observeBody(t *testing.T, domain string, neighbors []string) ([]byte, []core.Relation) {
	t.Helper()
	if len(neighbors) < 3 {
		t.Fatalf("fixture too small: %d retained domains", len(neighbors))
	}
	req := ObserveRequest{Domain: domain, Relations: []ObserveRelation{
		{View: "query", Neighbor: neighbors[0], Weight: 2},
		{View: "query", Neighbor: neighbors[1], Weight: 1},
		{View: "ip", Neighbor: neighbors[1], Weight: 1.5},
		{View: "time", Neighbor: neighbors[2], Weight: 1},
	}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rels := []core.Relation{
		{View: bipartite.ViewQuery, Neighbor: neighbors[0], Weight: 2},
		{View: bipartite.ViewQuery, Neighbor: neighbors[1], Weight: 1},
		{View: bipartite.ViewIP, Neighbor: neighbors[1], Weight: 1.5},
		{View: bipartite.ViewTime, Neighbor: neighbors[2], Weight: 1},
	}
	return body, rels
}

// TestObserveScoreRoundTrip is the fold-in wire contract: an unseen
// domain 404s, POST /v1/observe accepts its relations, and every
// scoring route then returns the enriched verdict — bit-identical to
// core.Scorer.ScoreObserved on the same relations — instead of 404.
func TestObserveScoreRoundTrip(t *testing.T) {
	modelA, _, scorerA, _ := models(t)
	s, _ := newTestServer(t, modelA, nil)
	const unseen = "unseen-roundtrip.example"
	body, rels := observeBody(t, unseen, scorerA.Domains())
	want := scorerA.ScoreObserved(unseen, rels)
	if want.Source == "" {
		t.Fatal("fixture relations yield no fold-in verdict")
	}

	// Before any evidence: 404 with the structured envelope.
	rec := getJSON(t, s.Handler(), "GET", "/v1/score/"+unseen, nil, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("pre-observe score: status %d, want 404", rec.Code)
	}
	var envelope ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
		t.Fatalf("404 body not an ErrorBody: %v", err)
	}
	if envelope.Error.Code != "unknown_domain" || !strings.Contains(envelope.Error.Message, unseen) {
		t.Fatalf("404 envelope = %+v", envelope)
	}

	var obs ObserveResponse
	rec = getJSON(t, s.Handler(), "POST", "/v1/observe", bytes.NewReader(body), &obs)
	if rec.Code != http.StatusOK {
		t.Fatalf("observe: status %d: %s", rec.Code, rec.Body.String())
	}
	if obs.Domain != unseen || obs.Relations != len(rels) || obs.Entries != 1 {
		t.Fatalf("observe response = %+v", obs)
	}

	var resp ScoreResponse
	rec = getJSON(t, s.Handler(), "GET", "/v1/score/"+unseen, nil, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-observe score: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Known {
		t.Fatal("fold-in verdict claims known=true")
	}
	if resp.Source != core.SourceFoldin && resp.Source != core.SourceKNN {
		t.Fatalf("source %q, want foldin or knn", resp.Source)
	}
	if resp.Confidence < 0 || resp.Confidence > 1 {
		t.Fatalf("confidence %v outside [0,1]", resp.Confidence)
	}
	if resp.Score != want.Score || resp.Label != want.Label ||
		resp.Confidence != want.Confidence || resp.Source != want.Source {
		t.Fatalf("served %+v != ScoreObserved %+v", resp, want)
	}

	// Batch document: the unseen domain's entry is enriched, retained
	// domains stay bit-identical with source "model".
	queries := []string{unseen, scorerA.Domains()[0], "never-observed.example"}
	doc, _ := json.Marshal(BatchRequest{Domains: queries})
	var batch BatchResponse
	rec = getJSON(t, s.Handler(), "POST", "/v1/score/batch", bytes.NewReader(doc), &batch)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: status %d", rec.Code)
	}
	if got := batch.Results[0]; got.Known || got.Score != want.Score ||
		got.Source != want.Source || got.Confidence != want.Confidence {
		t.Fatalf("batch fold-in entry %+v, want %+v", got, want)
	}
	if got := batch.Results[1]; !got.Known || got.Source != core.SourceModel || got.Confidence != 1 {
		t.Fatalf("batch model entry %+v", got)
	}
	if wantScore, _ := scorerA.Score(queries[1]); batch.Results[1].Score != wantScore {
		t.Fatalf("batch model score %v != %v", batch.Results[1].Score, wantScore)
	}
	if got := batch.Results[2]; got.Known || got.Source != "" || got.Confidence != 0 {
		t.Fatalf("batch no-evidence entry %+v", got)
	}

	// NDJSON framing carries the same enrichment.
	rec = ndjsonRequest(t, s, queries)
	_, lines, err := DecodeNDJSON(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if lines[0].Source != want.Source || lines[0].Score != want.Score || lines[0].Known {
		t.Fatalf("NDJSON fold-in line %+v, want %+v", lines[0], want)
	}
	if lines[2].Source != "" {
		t.Fatalf("NDJSON no-evidence line %+v", lines[2])
	}

	// The fold-in metrics surface the activity.
	rec = getJSON(t, s.Handler(), "GET", "/metrics", nil, nil)
	out := rec.Body.String()
	for _, wantLine := range []string{
		"maldomain_foldin_observations_total 1",
		"maldomain_foldin_cache_entries 1",
		fmt.Sprintf("maldomain_foldin_scores_total{source=%q}", want.Source),
	} {
		if !strings.Contains(out, wantLine) {
			t.Errorf("metrics missing %q", wantLine)
		}
	}
}

// TestObserveValidation covers the endpoint's rejection paths, all of
// which must carry the structured envelope with a stable code.
func TestObserveValidation(t *testing.T) {
	modelA, _, scorerA, _ := models(t)
	s, _ := newTestServer(t, modelA, nil)
	neighbor := scorerA.Domains()[0]

	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"bad JSON", "not json", http.StatusBadRequest, "bad_request"},
		{"no domain", `{"relations":[{"view":"query","neighbor":"` + neighbor + `"}]}`,
			http.StatusBadRequest, "bad_request"},
		{"no relations", `{"domain":"x.example"}`, http.StatusBadRequest, "bad_request"},
		{"bad view", `{"domain":"x.example","relations":[{"view":"dns","neighbor":"` + neighbor + `"}]}`,
			http.StatusBadRequest, "bad_request"},
		{"no neighbor", `{"domain":"x.example","relations":[{"view":"query"}]}`,
			http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		rec := getJSON(t, s.Handler(), "POST", "/v1/observe", strings.NewReader(tc.body), nil)
		if rec.Code != tc.status {
			t.Fatalf("%s: status %d, want %d", tc.name, rec.Code, tc.status)
		}
		var envelope ErrorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
			t.Fatalf("%s: body %q not an ErrorBody: %v", tc.name, rec.Body.String(), err)
		}
		if envelope.Error.Code != tc.code {
			t.Fatalf("%s: code %q, want %q", tc.name, envelope.Error.Code, tc.code)
		}
	}

	rec := getJSON(t, s.Handler(), "GET", "/v1/observe", nil, nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET observe: status %d, want 405", rec.Code)
	}
	if rec.Header().Get("Allow") != "POST" {
		t.Fatalf("405 without Allow: %q", rec.Header().Get("Allow"))
	}
	var envelope ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil || envelope.Error.Code != "method_not_allowed" {
		t.Fatalf("405 envelope %q (err %v)", rec.Body.String(), err)
	}

	// Unknown /v1 routes carry the envelope too.
	rec = getJSON(t, s.Handler(), "GET", "/v1/nope", nil, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown route: status %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil || envelope.Error.Code != "not_found" {
		t.Fatalf("not_found envelope %q (err %v)", rec.Body.String(), err)
	}
}

// TestObserveScoreReloadRace hammers the fold-in path from three sides
// at once — observers feeding evidence, scorers reading the unknown
// domain, and the model file reloading between generations — under the
// race detector. Every score response must be either a 404 (evidence
// not yet observed) or a well-formed fold-in verdict.
func TestObserveScoreReloadRace(t *testing.T) {
	modelA, modelB, scorerA, _ := models(t)
	s, path := newTestServer(t, modelA, nil)
	const unseen = "race-unseen.example"
	body, _ := observeBody(t, unseen, scorerA.Domains())

	var wg sync.WaitGroup
	var bad atomic.Int64
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/observe", bytes.NewReader(body)))
				if rec.Code != http.StatusOK {
					bad.Add(1)
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var resp ScoreResponse
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/score/"+unseen, nil))
				switch rec.Code {
				case http.StatusNotFound:
					// Evidence not observed yet; fine.
				case http.StatusOK:
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						bad.Add(1)
						continue
					}
					if resp.Known || resp.Confidence < 0 || resp.Confidence > 1 ||
						(resp.Source != core.SourceFoldin && resp.Source != core.SourceKNN) {
						bad.Add(1)
					}
				default:
					bad.Add(1)
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		next := modelB
		if i%2 == 1 {
			next = modelA
		}
		if err := os.WriteFile(path, next, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := s.Reload(); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d malformed responses under observe/score/reload churn", n)
	}
}

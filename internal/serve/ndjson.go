package serve

// NDJSON batch framing: an opt-in wire format for large batch scoring
// responses. A client that sends Accept: application/x-ndjson on
// POST /v1/score/batch receives, instead of one BatchResponse
// document, a newline-delimited stream:
//
//	{"fingerprint":"..."}                         ← header line
//	{"domain":"a.com","score":1.5,"label":1,"known":true,"confidence":1,"source":"model"}
//	{"domain":"b.org","score":0.2,"label":0,"known":false,"confidence":0.41,"source":"foldin"}
//	{"domain":"c.net","score":0,"label":0,"known":false,"confidence":0}
//	...one line per requested domain, in request order
//
// Each line is a self-contained JSON document (the result lines are
// byte-identical to BatchResponse.Results entries), so a consumer can
// score-and-forward line by line without buffering the whole response,
// and the server streams the body in fixed-size chunks without ever
// materializing it: a 10k-domain batch costs the daemon one chunk
// buffer, not a megabyte of response. DecodeNDJSON is the reference
// consumer; FuzzDecodeNDJSON pins its robustness.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// NDJSONContentType is the MIME type of the streamed batch framing,
// sent by clients in Accept and returned in Content-Type.
const NDJSONContentType = "application/x-ndjson"

// NDJSONHeader is the first line of an NDJSON batch response.
type NDJSONHeader struct {
	Fingerprint string `json:"fingerprint"`
}

// ErrNDJSONSyntax reports a malformed NDJSON stream (missing header,
// non-JSON line, or trailing garbage).
var ErrNDJSONSyntax = errors.New("serve: malformed NDJSON stream")

// maxNDJSONLine bounds one line of an NDJSON stream a decoder will
// buffer: a domain name is at most 255 bytes, so legitimate lines are
// far smaller.
const maxNDJSONLine = 1 << 16

// DecodeNDJSON reads a complete NDJSON batch response: the header
// line, then one BatchResult per line until EOF. It is the consumer
// the load generator and the tests share. Malformed input — an empty
// stream, a non-JSON line, or a line exceeding maxNDJSONLine — returns
// an error wrapping ErrNDJSONSyntax; the results decoded before the
// bad line are returned alongside it.
func DecodeNDJSON(r io.Reader) (NDJSONHeader, []BatchResult, error) {
	var hdr NDJSONHeader
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 4096), maxNDJSONLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return hdr, nil, fmt.Errorf("%w: header: %v", ErrNDJSONSyntax, err)
		}
		return hdr, nil, fmt.Errorf("%w: empty stream", ErrNDJSONSyntax)
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return hdr, nil, fmt.Errorf("%w: header: %v", ErrNDJSONSyntax, err)
	}
	var results []BatchResult
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue // tolerate a trailing blank line
		}
		var res BatchResult
		if err := json.Unmarshal(line, &res); err != nil {
			return hdr, results, fmt.Errorf("%w: line %d: %v", ErrNDJSONSyntax, len(results)+2, err)
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return hdr, results, fmt.Errorf("%w: %v", ErrNDJSONSyntax, err)
	}
	return hdr, results, nil
}

// NDJSONTally is what TallyNDJSON measured over one stream: the result
// line count, split by verdict source. Results ≥ Model+Foldin+KNN;
// the difference is no-evidence lines, whose source field is omitted.
type NDJSONTally struct {
	Results int
	Model   int
	Foldin  int
	KNN     int
}

// sourceTokens are the wire encodings of the source field, one per
// core.Source* constant. Result lines are emitted by the manual
// encoder, so the token appears verbatim when the source is set.
var sourceTokens = [...]struct {
	token []byte
	add   func(*NDJSONTally)
}{
	{[]byte(`"source":"model"`), func(t *NDJSONTally) { t.Model++ }},
	{[]byte(`"source":"foldin"`), func(t *NDJSONTally) { t.Foldin++ }},
	{[]byte(`"source":"knn"`), func(t *NDJSONTally) { t.KNN++ }},
}

// TallyNDJSON streams through an NDJSON batch response counting result
// lines and their verdict sources without a full JSON decode — the
// consumption path a load generator uses to report how much of the
// served traffic was answered from the model versus the fold-in
// fallback. buf, when non-nil, becomes the line scanner's buffer so a
// worker can reuse one allocation across responses. The header line is
// validated; result lines are only token-scanned.
func TallyNDJSON(r io.Reader, buf []byte) (NDJSONTally, error) {
	var tally NDJSONTally
	sc := bufio.NewScanner(r)
	if buf == nil {
		buf = make([]byte, 4096)
	}
	sc.Buffer(buf, maxNDJSONLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return tally, fmt.Errorf("%w: header: %v", ErrNDJSONSyntax, err)
		}
		return tally, fmt.Errorf("%w: empty stream", ErrNDJSONSyntax)
	}
	var hdr NDJSONHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return tally, fmt.Errorf("%w: header: %v", ErrNDJSONSyntax, err)
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue // tolerate a trailing blank line
		}
		tally.Results++
		for _, st := range sourceTokens {
			if bytes.Contains(line, st.token) {
				st.add(&tally)
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return tally, fmt.Errorf("%w: %v", ErrNDJSONSyntax, err)
	}
	return tally, nil
}

// CountNDJSON streams through an NDJSON batch response counting result
// lines without decoding them — the cheap consumption path a load
// generator uses when it only needs to know how many domains came
// back. It validates just the header line and returns the result-line
// count.
func CountNDJSON(r io.Reader, buf []byte) (int, error) {
	if len(buf) == 0 {
		buf = make([]byte, 32*1024)
	}
	sawHeader := false
	lines := 0
	var partial bool // inside a line that has not ended yet
	var headerPrefix []byte
	for {
		n, err := r.Read(buf)
		for _, c := range buf[:n] {
			// Accumulate the first line's prefix for validation.
			if !sawHeader && c != '\n' && len(headerPrefix) < 64 {
				headerPrefix = append(headerPrefix, c)
			}
			if c == '\n' {
				if !sawHeader {
					if !strings.HasPrefix(string(headerPrefix), `{"fingerprint":`) {
						return lines, fmt.Errorf("%w: header %q", ErrNDJSONSyntax, headerPrefix)
					}
					sawHeader = true
				} else {
					lines++
				}
				partial = false
			} else {
				partial = true
			}
		}
		if errors.Is(err, io.EOF) {
			if partial && sawHeader {
				lines++ // unterminated final line still counts
			}
			if !sawHeader {
				return lines, fmt.Errorf("%w: no header line", ErrNDJSONSyntax)
			}
			return lines, nil
		}
		if err != nil {
			return lines, err
		}
	}
}

// wantsNDJSON reports whether the request opted into the streamed
// framing. Only an explicit application/x-ndjson in Accept triggers
// it; everything else keeps the buffered BatchResponse document.
func wantsNDJSON(accept string) bool {
	return accept == NDJSONContentType ||
		(accept != "" && strings.Contains(accept, NDJSONContentType))
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchServer builds one Server over the tiny fixture model for the
// throughput benchmarks. Measuring at the handler level (httptest
// recorders, no sockets) isolates the serving hot path — routing,
// gate, timeout wrapper, scoring, JSON encoding — from kernel
// networking noise.
func benchServer(b *testing.B) *Server {
	modelA, _, _, _ := models(b)
	s, _ := newTestServer(b, modelA, nil)
	return s
}

// BenchmarkServeScore measures single-domain GETs through the full
// middleware stack.
func BenchmarkServeScore(b *testing.B) {
	s := benchServer(b)
	dom := s.Scorer().Domains()[0]
	target := "/v1/score/" + dom
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
}

// BenchmarkServeBatch measures batch POSTs; throughput is reported in
// scored domains per second.
func BenchmarkServeBatch(b *testing.B) {
	s := benchServer(b)
	domains := s.Scorer().Domains()
	body, err := json.Marshal(BatchRequest{Domains: domains})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/score/batch", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.ReportMetric(float64(b.N*len(domains))/b.Elapsed().Seconds(), "domains/sec")
}

// BenchmarkServeScoreParallel drives the handler from all procs — the
// many-clients shape the concurrency gate and atomic model pointer are
// built for.
func BenchmarkServeScoreParallel(b *testing.B) {
	s := benchServer(b)
	domains := s.Scorer().Domains()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			target := fmt.Sprintf("/v1/score/%s", domains[i%len(domains)])
			i++
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
}

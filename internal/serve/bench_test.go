package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// benchServer builds one Server over the tiny fixture model for the
// throughput benchmarks. Measuring at the handler level (no sockets)
// isolates the serving hot path — routing, gate, scoring, JSON
// encoding — from kernel networking noise.
func benchServer(b *testing.B) *Server {
	modelA, _, _, _ := models(b)
	s, _ := newTestServer(b, modelA, nil)
	return s
}

// benchWriter is a reusable ResponseWriter: a recorder allocates a
// fresh header map and body buffer per request, which would swamp the
// ≤2 allocs/op budget this file exists to measure.
type benchWriter struct {
	h    http.Header
	code int
	n    int
}

func newBenchWriter() *benchWriter {
	return &benchWriter{h: make(http.Header, 4)}
}

func (w *benchWriter) Header() http.Header         { return w.h }
func (w *benchWriter) WriteHeader(code int)        { w.code = code }
func (w *benchWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
func (w *benchWriter) reset()                      { w.code = 0; w.n = 0 }

// BenchmarkServeScore measures single-domain GETs through the full
// stack — router, gate, metrics, scoring, manual encoding — with the
// request and writer reused so the handler's own allocations are what
// the -benchmem column shows. BENCH_7's allocs/op acceptance gate
// reads this benchmark.
func BenchmarkServeScore(b *testing.B) {
	s := benchServer(b)
	dom := s.Scorer().Domains()[0]
	req := httptest.NewRequest("GET", "/v1/score/"+dom, nil)
	w := newBenchWriter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		s.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("status %d", w.code)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
}

// BenchmarkServeScoreParallel drives the handler from all procs — the
// many-clients shape the concurrency gate, atomic model pointer, and
// pre-resolved metric series are built for. Each goroutine owns its
// request and writer; nothing is constructed inside the loop.
func BenchmarkServeScoreParallel(b *testing.B) {
	s := benchServer(b)
	domains := s.Scorer().Domains()
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		dom := domains[int(next.Add(1))%len(domains)]
		req := httptest.NewRequest("GET", "/v1/score/"+dom, nil)
		w := newBenchWriter()
		for pb.Next() {
			w.reset()
			s.ServeHTTP(w, req)
			if w.code != http.StatusOK {
				b.Fatalf("status %d", w.code)
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
}

// batchRequest builds a reusable POST /v1/score/batch request whose
// body can be rewound with rewind() between iterations.
func batchRequest(b *testing.B, domains []string, ndjson bool) (*http.Request, func()) {
	body, err := json.Marshal(BatchRequest{Domains: domains})
	if err != nil {
		b.Fatal(err)
	}
	br := bytes.NewReader(body)
	req := httptest.NewRequest("POST", "/v1/score/batch", io.NopCloser(br))
	if ndjson {
		req.Header.Set("Accept", NDJSONContentType)
	}
	return req, func() { br.Seek(0, io.SeekStart) }
}

// BenchmarkServeBatch measures small-batch POSTs (the fixture model's
// full domain set per request); throughput is reported in scored
// domains per second.
func BenchmarkServeBatch(b *testing.B) {
	s := benchServer(b)
	domains := s.Scorer().Domains()
	req, rewind := batchRequest(b, domains, false)
	w := newBenchWriter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rewind()
		w.reset()
		s.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("status %d", w.code)
		}
	}
	b.ReportMetric(float64(b.N*len(domains))/b.Elapsed().Seconds(), "domains/sec")
}

// largeBatch tiles the model's domains up to n entries, the shape of a
// bulk scoring client that saturates MaxBatch.
func largeBatch(s *Server, n int) []string {
	domains := s.Scorer().Domains()
	out := make([]string, n)
	for i := range out {
		out[i] = domains[i%len(domains)]
	}
	return out
}

// BenchmarkServeBatchLarge measures a MaxBatch-sized buffered batch:
// the domains/sec figure here is the one BENCH_7's ≥1M domains/sec
// acceptance gate reads.
func BenchmarkServeBatchLarge(b *testing.B) {
	s := benchServer(b)
	batch := largeBatch(s, 10_000)
	req, rewind := batchRequest(b, batch, false)
	w := newBenchWriter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rewind()
		w.reset()
		s.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("status %d", w.code)
		}
	}
	b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "domains/sec")
}

// BenchmarkServeFoldinScore measures the unknown-domain fold-in path
// through the full stack after the cache is warm: routing, gate, the
// decision-table miss, the fold-in cache hit, and the enriched
// encoding. BENCH_9's ≤2 allocs/op acceptance gate reads this
// benchmark.
func BenchmarkServeFoldinScore(b *testing.B) {
	s := benchServer(b)
	neighbors := s.Scorer().Domains()
	const unseen = "bench-foldin.example"
	body, err := json.Marshal(ObserveRequest{Domain: unseen, Relations: []ObserveRelation{
		{View: "query", Neighbor: neighbors[0], Weight: 2},
		{View: "ip", Neighbor: neighbors[1], Weight: 1},
		{View: "time", Neighbor: neighbors[2], Weight: 1},
	}})
	if err != nil {
		b.Fatal(err)
	}
	w := newBenchWriter()
	s.ServeHTTP(w, httptest.NewRequest("POST", "/v1/observe", bytes.NewReader(body)))
	if w.code != http.StatusOK {
		b.Fatalf("observe status %d", w.code)
	}
	req := httptest.NewRequest("GET", "/v1/score/"+unseen, nil)
	w.reset()
	s.ServeHTTP(w, req) // warm the per-scorer result cache
	if w.code != http.StatusOK {
		b.Fatalf("warmup status %d", w.code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		s.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("status %d", w.code)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
}

// BenchmarkServeBatchNDJSON measures the same MaxBatch-sized batch
// through the streamed NDJSON framing, isolating the cost of
// chunked encoding against the buffered document above.
func BenchmarkServeBatchNDJSON(b *testing.B) {
	s := benchServer(b)
	batch := largeBatch(s, 10_000)
	req, rewind := batchRequest(b, batch, true)
	w := newBenchWriter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rewind()
		w.reset()
		s.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("status %d", w.code)
		}
	}
	b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "domains/sec")
}

package exposure

import (
	"math"
	"testing"
	"time"

	"repro/internal/pipeline"
)

var t0 = time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)

func statsFor(e2ld string, days int) *pipeline.DomainStats {
	return &pipeline.DomainStats{
		E2LD:    e2ld,
		Hosts:   make(map[string]struct{}),
		IPs:     make(map[string]struct{}),
		Minutes: make(map[int]struct{}),
		FQDNs:   make(map[string]struct{}),
		TTLVals: make(map[uint32]struct{}),
		PerDay:  make([]int, days),
	}
}

func TestExtractLength(t *testing.T) {
	st := statsFor("example.com", 31)
	v := Extract(st, 31)
	if len(v) != NumFeatures {
		t.Fatalf("vector length %d, want %d", len(v), NumFeatures)
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Errorf("feature %d (%s) = %v on empty stats", i, FeatureNames[i], x)
		}
	}
}

func TestShortLifeFeature(t *testing.T) {
	shortLived := statsFor("dga1.ws", 31)
	shortLived.QueryCount = 10
	shortLived.FirstSeen = t0
	shortLived.LastSeen = t0.Add(12 * time.Hour)

	longLived := statsFor("benign.com", 31)
	longLived.QueryCount = 10
	longLived.FirstSeen = t0
	longLived.LastSeen = t0.Add(30 * 24 * time.Hour)

	vs := Extract(shortLived, 31)
	vl := Extract(longLived, 31)
	if vs[0] >= vl[0] {
		t.Errorf("short-life feature: short %.3f >= long %.3f", vs[0], vl[0])
	}
}

func TestTTLFeaturesSeparateFluxFromCDN(t *testing.T) {
	flux := statsFor("flux.ws", 31)
	flux.QueryCount = 20
	flux.TTLSum = 20 * 60 // mean 60s
	flux.TTLMin, flux.TTLMax = 30, 120
	flux.TTLVals[30] = struct{}{}
	flux.TTLVals[120] = struct{}{}

	stable := statsFor("corp.com", 31)
	stable.QueryCount = 20
	stable.TTLSum = 20 * 86400
	stable.TTLMin, stable.TTLMax = 86400, 86400
	stable.TTLVals[86400] = struct{}{}

	vf := Extract(flux, 31)
	vs := Extract(stable, 31)
	if vf[9] >= vs[9] {
		t.Errorf("ttl_mean: flux %.3f >= stable %.3f", vf[9], vs[9])
	}
	if vf[12] != 1 || vs[12] != 0 {
		t.Errorf("ttl_low_share: flux %.0f stable %.0f, want 1/0", vf[12], vs[12])
	}
}

func TestLexicalFeatures(t *testing.T) {
	if got := LongestMeaningfulSubstring("fattylivercur"); got != "fatty" && got != "liver" {
		t.Errorf("LMS(fattylivercur) = %q, want fatty or liver", got)
	}
	if got := LongestMeaningfulSubstring("oorfapjflmp"); got != "" {
		t.Errorf("LMS(random letters) = %q, want empty", got)
	}
	if got := numericRatio("abc123"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("numericRatio(abc123) = %v", got)
	}
	if got := numericRatio(""); got != 0 {
		t.Errorf("numericRatio(empty) = %v", got)
	}
	// Random strings carry more character entropy than repetitive ones.
	if charEntropy("aaaaaaaa") >= charEntropy("qxzjvkwp") {
		t.Error("entropy ordering wrong")
	}
}

func TestLexicalDiscriminatesDGA(t *testing.T) {
	dga := statsFor("qxzjvkwpmrt.ws", 31)
	benign := statsFor("cloudmusicbox.com", 31)
	vd := Extract(dga, 31)
	vb := Extract(benign, 31)
	if vd[14] >= vb[14] {
		t.Errorf("lms_ratio: dga %.3f >= benign %.3f", vd[14], vb[14])
	}
	if vd[15] <= vb[15]-1 {
		t.Errorf("entropy: dga %.3f much below benign %.3f", vd[15], vb[15])
	}
}

func TestNXRatio(t *testing.T) {
	st := statsFor("nx.ws", 31)
	st.QueryCount = 10
	st.NXCount = 8
	v := Extract(st, 31)
	if math.Abs(v[8]-0.8) > 1e-12 {
		t.Errorf("nx_ratio = %v, want 0.8", v[8])
	}
}

func TestPrefixDiversity(t *testing.T) {
	st := statsFor("spread.com", 31)
	st.IPs["10.0.0.1"] = struct{}{}
	st.IPs["10.9.9.9"] = struct{}{}
	st.IPs["20.0.0.1"] = struct{}{}
	st.IPs["30.0.0.1"] = struct{}{}
	v := Extract(st, 31)
	if math.Abs(v[6]-0.75) > 1e-12 {
		t.Errorf("prefix_diversity = %v, want 0.75 (3 prefixes / 4 ips)", v[6])
	}
}

func TestChangePoints(t *testing.T) {
	steady := []int{10, 11, 10, 12, 10}
	bursty := []int{0, 50, 0, 60, 1}
	if changePoints(steady) >= changePoints(bursty) {
		t.Errorf("change points: steady %.3f >= bursty %.3f",
			changePoints(steady), changePoints(bursty))
	}
	if changePoints(nil) != 0 || changePoints([]int{5}) != 0 {
		t.Error("degenerate series should give 0")
	}
}

func TestExtractAllAlignsWithDomains(t *testing.T) {
	stats := map[string]*pipeline.DomainStats{
		"a.com": statsFor("a.com", 3),
	}
	stats["a.com"].QueryCount = 5
	vs := ExtractAll(stats, []string{"a.com", "missing.com"}, 3)
	if len(vs) != 2 {
		t.Fatalf("got %d vectors", len(vs))
	}
	if len(vs[1]) != NumFeatures {
		t.Fatal("missing domain did not get a zero vector")
	}
	for _, x := range vs[1] {
		if x != 0 {
			t.Fatal("missing domain vector not zero")
		}
	}
}

func BenchmarkExtract(b *testing.B) {
	st := statsFor("cloudmusicbox47.com", 31)
	st.QueryCount = 500
	st.TTLSum = 500 * 300
	for i := 0; i < 31; i++ {
		st.PerDay[i] = 10 + i
	}
	for i := 0; i < 10; i++ {
		st.IPs[string(rune('a'+i))] = struct{}{}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Extract(st, 31)
	}
}

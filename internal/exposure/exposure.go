// Package exposure implements the feature extractor of the Exposure
// system (Bilge et al., "EXPOSURE: A Passive DNS Analysis Service to
// Detect and Report Malicious Domains"), the state-of-the-art baseline
// the paper compares against (§8.2). Exposure classifies domains with a
// J48 decision tree over four groups of statistical features extracted
// from passive DNS traffic:
//
//   - time-based features (short life, daily activity pattern changes),
//   - DNS answer-based features (distinct addresses, address diversity,
//     shared infrastructure),
//   - TTL-based features (average/stddev/distinct TTLs, low-TTL share),
//   - domain-name lexical features (numeric-character ratio, longest
//     meaningful substring, entropy).
//
// Features are computed from the same pipeline.DomainStats aggregates the
// behavioral-modeling stage uses, so both systems see identical traffic.
// Where the original uses data we do not model (IP geolocation), the
// nearest structural proxy is substituted and documented inline.
package exposure

import (
	"math"
	"strings"

	"repro/internal/pipeline"
)

// NumFeatures is the length of the vector Extract returns.
const NumFeatures = 16

// FeatureNames labels each vector component, index-aligned with Extract.
var FeatureNames = [NumFeatures]string{
	// Time-based (Exposure §4.1).
	"time_short_life",       // lifetime span / capture length
	"time_active_day_ratio", // active days / capture days
	"time_daily_cv",         // coefficient of variation of daily volumes
	"time_change_points",    // relative count of abrupt daily changes
	"time_night_ratio",      // share of queries in 00:00-06:00 (bot beaconing)
	// DNS answer-based (Exposure §4.2).
	"dns_distinct_ips",      // log1p distinct resolved addresses
	"dns_prefix_diversity",  // distinct /8 prefixes / distinct IPs (geo proxy)
	"dns_answers_per_query", // mean A records per NOERROR response
	"dns_nx_ratio",          // NXDOMAIN responses / all queries
	// TTL-based (Exposure §4.3).
	"ttl_mean",      // log1p mean TTL
	"ttl_range",     // log1p (max-min) TTL
	"ttl_distinct",  // distinct TTL values observed
	"ttl_low_share", // 1 if min TTL < 300s else 0
	// Lexical (Exposure §4.4).
	"lex_numeric_ratio", // numeric chars / name length
	"lex_lms_ratio",     // longest meaningful substring / name length
	"lex_entropy",       // character entropy of the name (bits)
}

// Extract computes the Exposure feature vector for one domain.
// captureDays is the measurement window length used to normalize the
// time-based group.
func Extract(st *pipeline.DomainStats, captureDays int) []float64 {
	if captureDays <= 0 {
		captureDays = 1
	}
	f := make([]float64, NumFeatures)

	// --- Time-based.
	f[0] = st.LifetimeDays() / float64(captureDays)
	f[1] = float64(st.ActiveDays()) / float64(captureDays)
	f[2] = dailyCV(st.PerDay)
	f[3] = changePoints(st.PerDay)
	f[4] = nightRatio(st.Hours)

	// --- DNS answer-based.
	f[5] = math.Log1p(float64(len(st.IPs)))
	f[6] = prefixDiversity(st.IPs)
	resolved := st.QueryCount - st.NXCount
	if resolved > 0 {
		f[7] = float64(st.AnswerCountSum) / float64(resolved)
	}
	if st.QueryCount > 0 {
		f[8] = float64(st.NXCount) / float64(st.QueryCount)
	}

	// --- TTL-based.
	f[9] = math.Log1p(st.MeanTTL())
	f[10] = math.Log1p(float64(st.TTLMax) - float64(st.TTLMin))
	f[11] = float64(len(st.TTLVals))
	if len(st.TTLVals) > 0 && st.TTLMin < 300 {
		f[12] = 1
	}

	// --- Lexical (on the e2LD's name part, TLD stripped).
	name := namePart(st.E2LD)
	f[13] = numericRatio(name)
	f[14] = lmsRatio(name)
	f[15] = charEntropy(name)
	return f
}

// ExtractAll computes feature matrices for a set of domains in one pass,
// returning vectors index-aligned with the domains slice.
func ExtractAll(stats map[string]*pipeline.DomainStats, domains []string, captureDays int) [][]float64 {
	out := make([][]float64, len(domains))
	for i, d := range domains {
		st := stats[d]
		if st == nil {
			out[i] = make([]float64, NumFeatures)
			continue
		}
		out[i] = Extract(st, captureDays)
	}
	return out
}

func dailyCV(perDay []int) float64 {
	n := 0
	sum := 0.0
	for _, c := range perDay {
		sum += float64(c)
		n++
	}
	if n == 0 || sum == 0 {
		return 0
	}
	mean := sum / float64(n)
	v := 0.0
	for _, c := range perDay {
		d := float64(c) - mean
		v += d * d
	}
	return math.Sqrt(v/float64(n)) / mean
}

// changePoints counts day-over-day volume jumps beyond 3x in either
// direction, normalized by series length — a cheap stand-in for
// Exposure's CUSUM change-point detection over daily time series.
func changePoints(perDay []int) float64 {
	if len(perDay) < 2 {
		return 0
	}
	jumps := 0
	for i := 1; i < len(perDay); i++ {
		a, b := float64(perDay[i-1]), float64(perDay[i])
		if a == 0 && b == 0 {
			continue
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		if lo == 0 || hi/lo > 3 {
			jumps++
		}
	}
	return float64(jumps) / float64(len(perDay)-1)
}

func nightRatio(hours [24]int) float64 {
	total, night := 0, 0
	for h, c := range hours {
		total += c
		if h < 6 {
			night += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(night) / float64(total)
}

// prefixDiversity returns distinct /8 prefixes over distinct addresses —
// a structural proxy for Exposure's "number of countries the addresses
// map to" feature, since the simulation carries no geolocation database.
func prefixDiversity(ips map[string]struct{}) float64 {
	if len(ips) == 0 {
		return 0
	}
	prefixes := make(map[string]struct{}, len(ips))
	for ip := range ips {
		if i := strings.IndexByte(ip, '.'); i > 0 {
			prefixes[ip[:i]] = struct{}{}
		}
	}
	return float64(len(prefixes)) / float64(len(ips))
}

func namePart(e2ld string) string {
	if i := strings.IndexByte(e2ld, '.'); i > 0 {
		return e2ld[:i]
	}
	return e2ld
}

func numericRatio(name string) float64 {
	if name == "" {
		return 0
	}
	n := 0
	for i := 0; i < len(name); i++ {
		if name[i] >= '0' && name[i] <= '9' {
			n++
		}
	}
	return float64(n) / float64(len(name))
}

// meaningfulWords is a compact English word list used to find the longest
// meaningful substring (LMS). Exposure's intuition: benign names embed
// dictionary words ("facebook" -> "face", "book"), algorithmically
// generated names usually do not.
var meaningfulWords = []string{
	"about", "account", "action", "active", "after", "agent", "alert",
	"amazon", "anchor", "angel", "apple", "audio", "bank", "base", "beacon",
	"best", "bird", "blog", "blue", "board", "book", "box", "bridge",
	"cache", "call", "camp", "canvas", "card", "care", "cash", "cast",
	"center", "chase", "check", "claim", "class", "click", "cloud", "club",
	"code", "coin", "collect", "cook", "core", "cure", "data", "date",
	"deal", "design", "detect", "diet", "dish", "down", "drive", "earth",
	"east", "easy", "edge", "face", "fast", "fatty", "file", "film",
	"fire", "fish", "flight", "food", "forum", "free", "fresh", "fox",
	"gain", "game", "gate", "gift", "goal", "gold", "good", "grow",
	"hand", "head", "health", "help", "home", "host", "hub", "idea",
	"image", "info", "insure", "iron", "java", "join", "keep", "king",
	"kit", "lab", "lake", "land", "learn", "level", "life", "light",
	"line", "link", "lion", "live", "liver", "loan", "lock", "login",
	"logo", "long", "loss", "love", "mail", "main", "map", "mark",
	"market", "master", "media", "meet", "micro", "mind", "mirror",
	"money", "moon", "muscle", "music", "nano", "net", "news", "nice",
	"node", "north", "note", "office", "open", "page", "park", "pass",
	"pay", "phone", "photo", "pilot", "plan", "play", "plus", "point",
	"port", "post", "power", "press", "price", "prime", "profit", "proxy",
	"pulse", "pure", "quick", "radio", "rain", "rank", "rapid", "relay",
	"rich", "ring", "river", "rock", "root", "safe", "sale", "save",
	"scan", "sea", "search", "secure", "send", "share", "shop", "sign",
	"site", "skin", "sky", "smart", "snow", "soft", "solar", "south",
	"space", "spam", "sport", "star", "stat", "stone", "store", "stream",
	"sun", "sync", "team", "tech", "tele", "test", "time", "tool", "top",
	"track", "trade", "tree", "trick", "true", "trust", "turbo", "update",
	"user", "verify", "video", "view", "watch", "wave", "weather", "web",
	"weight", "west", "wide", "wiki", "win", "wind", "wing", "wolf",
	"wood", "word", "work", "world", "zone",
}

var wordSet = func() map[string]bool {
	m := make(map[string]bool, len(meaningfulWords))
	for _, w := range meaningfulWords {
		m[w] = true
	}
	return m
}()

// LongestMeaningfulSubstring returns the longest substring of name that
// is an English dictionary word (length >= 3).
func LongestMeaningfulSubstring(name string) string {
	name = strings.ToLower(name)
	best := ""
	for i := 0; i < len(name); i++ {
		for j := i + 3; j <= len(name); j++ {
			if j-i <= len(best) {
				continue
			}
			if wordSet[name[i:j]] {
				best = name[i:j]
			}
		}
	}
	return best
}

func lmsRatio(name string) float64 {
	if name == "" {
		return 0
	}
	return float64(len(LongestMeaningfulSubstring(name))) / float64(len(name))
}

func charEntropy(name string) float64 {
	if name == "" {
		return 0
	}
	var counts [256]int
	for i := 0; i < len(name); i++ {
		counts[name[i]]++
	}
	h := 0.0
	n := float64(len(name))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

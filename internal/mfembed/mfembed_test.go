package mfembed

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// ringGraph builds a weighted ring of n vertices plus a few chords, a
// small connected similarity-graph stand-in.
func ringGraph(t *testing.T, n int) *graph.Weighted {
	t.Helper()
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32((i + 1) % n), W: 0.5 + 0.5*float64(i%3)/2})
	}
	for i := 0; i < n; i += 4 {
		edges = append(edges, graph.Edge{U: int32(i), V: int32((i + n/2) % n), W: 0.25})
	}
	g, err := graph.Build(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTrainDeterministic: same graph, same seed, same config — the
// sequential trainer must be bit-reproducible regardless of Workers.
func TestTrainDeterministic(t *testing.T) {
	g := ringGraph(t, 16)
	cfg := Config{Dim: 8, Samples: 50_000, Seed: 7}
	a, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8 // documented as ignored; must not perturb results
	b, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Vectors {
		for i := range a.Vectors[v] {
			if a.Vectors[v][i] != b.Vectors[v][i] {
				t.Fatalf("vertex %d dim %d: %v vs %v", v, i, a.Vectors[v][i], b.Vectors[v][i])
			}
		}
	}
	if a.Samples != 50_000 {
		t.Fatalf("Samples = %d, want 50000", a.Samples)
	}
}

// TestTrainSeedMatters: different seeds must explore different optima —
// a trivially constant trainer would pass determinism vacuously.
func TestTrainSeedMatters(t *testing.T) {
	g := ringGraph(t, 16)
	a, err := Train(g, Config{Dim: 8, Samples: 50_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(g, Config{Dim: 8, Samples: 50_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.Vectors {
		for i := range a.Vectors[v] {
			if a.Vectors[v][i] != b.Vectors[v][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical embeddings")
	}
}

// TestTrainNormalized: every vector (including isolated vertices') is
// unit length, like the LINE trainer's output.
func TestTrainNormalized(t *testing.T) {
	g, err := graph.Build(5, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	emb, err := Train(g, Config{Dim: 6, Samples: 40_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Vectors) != 5 || emb.Dim != 6 {
		t.Fatalf("got %d vectors of dim %d", len(emb.Vectors), emb.Dim)
	}
	for v, vec := range emb.Vectors {
		n := 0.0
		for _, x := range vec {
			n += x * x
		}
		if math.Abs(math.Sqrt(n)-1) > 1e-9 {
			t.Fatalf("vertex %d has norm %v", v, math.Sqrt(n))
		}
	}
}

// TestTrainConnectedCloserThanDistant: the factorization must place a
// strongly connected pair closer than an unconnected one.
func TestTrainConnectedCloserThanDistant(t *testing.T) {
	// Two cliques joined by nothing: {0,1,2} dense, {3,4,5} dense.
	var edges []graph.Edge
	for _, p := range [][2]int32{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}} {
		edges = append(edges, graph.Edge{U: p[0], V: p[1], W: 1})
	}
	g, err := graph.Build(6, edges)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := Train(g, Config{Dim: 8, Samples: 200_000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dot := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	within := dot(emb.Vectors[0], emb.Vectors[1])
	across := dot(emb.Vectors[0], emb.Vectors[3])
	if within <= across {
		t.Fatalf("within-clique similarity %v not above cross-clique %v", within, across)
	}
}

// TestTrainWarmStart: Init rows seed training (and must not be
// mutated); nil rows cold-start.
func TestTrainWarmStart(t *testing.T) {
	g := ringGraph(t, 8)
	dim := 4
	init := make([][]float64, 8)
	init[0] = []float64{0.25, -0.25, 0.25, -0.25}
	orig := append([]float64(nil), init[0]...)
	cold, err := Train(g, Config{Dim: dim, Samples: 40_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Train(g, Config{Dim: dim, Samples: 40_000, Seed: 5, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if init[0][i] != orig[i] {
			t.Fatal("Train mutated the warm-start row")
		}
	}
	same := true
	for i := range cold.Vectors[0] {
		if cold.Vectors[0][i] != warm.Vectors[0][i] {
			same = false
		}
	}
	if same {
		t.Fatal("warm start had no effect on the seeded vertex")
	}
}

// TestTrainValidation: malformed Init shapes error out instead of
// silently training on garbage.
func TestTrainValidation(t *testing.T) {
	g := ringGraph(t, 4)
	if _, err := Train(g, Config{Dim: 4, Init: make([][]float64, 3)}); err == nil {
		t.Fatal("wrong Init row count accepted")
	}
	bad := make([][]float64, 4)
	bad[2] = []float64{1, 2}
	if _, err := Train(g, Config{Dim: 4, Init: bad}); err == nil {
		t.Fatal("wrong Init row dim accepted")
	}
}

// TestTrainEmptyAndEdgeless: degenerate graphs are handled without
// SGD.
func TestTrainEmptyAndEdgeless(t *testing.T) {
	empty, err := graph.Build(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := Train(empty, Config{Dim: 4})
	if err != nil || len(emb.Vectors) != 0 {
		t.Fatalf("empty graph: emb=%v err=%v", emb, err)
	}
	lone, err := graph.Build(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	emb, err = Train(lone, Config{Dim: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if emb.Samples != 0 {
		t.Fatalf("edgeless graph reported %d samples", emb.Samples)
	}
	for v, vec := range emb.Vectors {
		n := 0.0
		for _, x := range vec {
			n += x * x
		}
		if math.Abs(math.Sqrt(n)-1) > 1e-9 {
			t.Fatalf("isolated vertex %d has norm %v", v, math.Sqrt(n))
		}
	}
}

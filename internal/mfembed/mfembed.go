// Package mfembed learns domain embeddings by weighted matrix
// factorization of the similarity projection graph, the MF-DNS-E
// construction (see PAPERS.md): the Jaccard similarity matrix S is
// approximated by a low-rank symmetric factorization S ≈ UUᵀ, so two
// domains embed closely exactly when the projection says they behave
// similarly. It is the drop-in alternative to LINE behind core's
// Embedder registry — same graph input, same warm-start contract, same
// Workers=1 determinism guarantee — at a fraction of LINE's sample
// budget, because each SGD step fits an explicit similarity value
// instead of a sampled proximity objective.
//
// Training is plain SGD over edge samples: an edge (u, v, w) is drawn
// with probability proportional to w (alias sampling, like LINE's edge
// sampler), the residual w − Uᵤ·Uᵥ drives a gradient step on both
// endpoint rows with L2 regularization, and a few uniformly sampled
// negative pairs per positive push unconnected rows toward
// orthogonality. The trainer is deliberately single-threaded: the
// automatic sample budget is an order of magnitude below LINE's, the
// whole fit is a small slice of a model build, and a sequential loop
// makes every run — not just Workers=1 — bit-reproducible in the seed.
//
//maldlint:deterministic
package mfembed

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mathx"
)

// Config parameterizes training.
type Config struct {
	// Dim is the embedding dimension per vertex (default 32).
	Dim int
	// Samples is the total number of SGD edge samples. Default
	// 40 × edge count, clamped to [40k, 4M]: factorizing explicit
	// similarity values converges far faster than LINE's sampled
	// objective, so the budget is deliberately an order of magnitude
	// smaller.
	Samples int
	// Negatives is the number of uniformly sampled negative pairs per
	// positive edge (default 2).
	Negatives int
	// InitialLR is the starting learning rate, decayed linearly to its
	// floor over training (default 0.05).
	InitialLR float64
	// Lambda is the L2 regularization strength applied to the rows
	// touched by each step (default 0.01).
	Lambda float64
	// Workers is accepted for interface symmetry with the LINE trainer
	// but ignored: training is sequential, so every run is
	// deterministic in the seed regardless of the setting.
	Workers int
	// Seed drives initialization and sampling.
	Seed uint64
	// Init optionally warm-starts training: when non-nil it must have
	// one entry per vertex, and every non-nil row (length Dim) replaces
	// that vertex's random initialization. Rows are copied, never
	// mutated. Like LINE, a warm start shrinks the automatic sample
	// budget by warmSampleScale.
	Init [][]float64
}

func (c Config) withDefaults(edgeCount int) Config {
	if c.Dim <= 0 {
		c.Dim = 32
	}
	if c.Samples <= 0 {
		c.Samples = 40 * edgeCount
		lo, hi := 40_000, 4_000_000
		if c.Init != nil {
			c.Samples = int(float64(c.Samples) * warmSampleScale)
			lo = int(float64(lo) * warmSampleScale)
			hi = int(float64(hi) * warmSampleScale)
		}
		if c.Samples < lo {
			c.Samples = lo
		}
		if c.Samples > hi {
			c.Samples = hi
		}
	}
	if c.Negatives <= 0 {
		c.Negatives = 2
	}
	if c.InitialLR <= 0 {
		c.InitialLR = 0.05
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.01
	}
	return c
}

// Tuning constants shared with the LINE trainer's conventions.
const (
	// warmSampleScale shrinks the automatic sample budget when
	// Config.Init warm-starts training.
	warmSampleScale = 0.4
	// lrInterval is how many samples pass between learning-rate
	// refreshes; the schedule is linear so the drift within one
	// interval is negligible.
	lrInterval = 1024
)

// Embedding holds the learned vertex representations: Vectors[v] is
// the L2-normalized embedding of vertex v.
type Embedding struct {
	Dim     int
	Vectors [][]float64
	// Samples is the number of SGD edge samples Train performed (0 for
	// edgeless graphs). Reported in build telemetry.
	Samples int
}

// Train factorizes g's weighted adjacency into Dim-dimensional vertex
// rows. Isolated vertices keep their small random initialization,
// normalized, exactly like the LINE trainer treats them.
func Train(g *graph.Weighted, cfg Config) (*Embedding, error) {
	cfg = cfg.withDefaults(g.EdgeCount())
	if g.N == 0 {
		return &Embedding{Dim: cfg.Dim}, nil
	}
	if cfg.Init != nil {
		if len(cfg.Init) != g.N {
			return nil, fmt.Errorf("mfembed: Init has %d rows for %d vertices", len(cfg.Init), g.N)
		}
		for v, row := range cfg.Init {
			if row != nil && len(row) != cfg.Dim {
				return nil, fmt.Errorf("mfembed: Init row %d has dim %d, want %d", v, len(row), cfg.Dim)
			}
		}
	}

	rng := mathx.NewRNG(cfg.Seed)
	U := make([][]float64, g.N)
	for v := range U {
		row := make([]float64, cfg.Dim)
		for i := range row {
			row[i] = (rng.Float64() - 0.5) / float64(cfg.Dim)
		}
		U[v] = row
	}
	for v, row := range cfg.Init {
		if row != nil {
			copy(U[v], row)
		}
	}

	samples := 0
	if g.EdgeCount() > 0 {
		edgeSampler, err := graph.NewAliasTable(g.EdgesW)
		if err != nil {
			return nil, fmt.Errorf("mfembed: building edge sampler: %w", err)
		}
		sgd(g, U, cfg, rng, edgeSampler)
		samples = cfg.Samples
	}

	emb := &Embedding{Dim: cfg.Dim, Vectors: make([][]float64, g.N), Samples: samples}
	for v := range U {
		mathx.Normalize(U[v])
		emb.Vectors[v] = U[v]
	}
	return emb, nil
}

// sgd runs the sequential factorization loop over cfg.Samples edge
// draws.
func sgd(g *graph.Weighted, U [][]float64, cfg Config, rng *mathx.RNG, edges *graph.AliasTable) {
	scratch := make([]float64, cfg.Dim)
	lr := cfg.InitialLR
	floorLR := cfg.InitialLR * 0.0001
	total := float64(cfg.Samples)
	for s := 0; s < cfg.Samples; s++ {
		if s%lrInterval == 0 {
			lr = cfg.InitialLR * (1 - float64(s)/total)
			if lr < floorLR {
				lr = floorLR
			}
		}
		ei := edges.Sample(rng)
		u, v := g.EdgesU[ei], g.EdgesV[ei]
		// Positive pair: pull the dot product toward the edge weight.
		// scratch keeps Uᵤ's pre-step value so both halves of the
		// symmetric update use the operands the residual was computed
		// from.
		copy(scratch, U[u])
		res := g.EdgesW[ei] - mathx.Dot(U[u], U[v])
		step(U[u], U[v], res, lr, cfg.Lambda)
		step(U[v], scratch, res, lr, cfg.Lambda)
		// Negative pairs: push uniformly sampled non-neighbors toward a
		// zero dot product. Collisions with the endpoints are simply
		// skipped; at projection-graph sizes they are rare.
		for k := 0; k < cfg.Negatives; k++ {
			n := int32(rng.Intn(g.N))
			if n == u || n == v {
				continue
			}
			copy(scratch, U[u])
			step(U[u], U[n], -mathx.Dot(U[u], U[n]), lr, cfg.Lambda)
			step(U[n], scratch, -mathx.Dot(scratch, U[n]), lr, cfg.Lambda)
		}
	}
}

// step applies one regularized gradient step to row toward residual
// res against other: row += lr·(res·other − λ·row).
func step(row, other []float64, res, lr, lambda float64) {
	for i := range row {
		row[i] += lr * (res*other[i] - lambda*row[i])
	}
}

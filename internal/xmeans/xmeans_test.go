package xmeans

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mathx"
)

// gaussianBlobs generates k well-separated clusters of m points each,
// with centers spread on a circle. Tight far-apart clusters mirror the
// embedding-space geometry X-Means sees in the pipeline (families embed
// near-orthogonally); 2-way splits of grid-arranged blobs are genuinely
// BIC-marginal and not representative.
func gaussianBlobs(k, m int, spread float64, seed uint64) (points [][]float64, truth []int) {
	rng := mathx.NewRNG(seed)
	for c := 0; c < k; c++ {
		angle := 2 * math.Pi * float64(c) / float64(k)
		cx := 60 * math.Cos(angle)
		cy := 60 * math.Sin(angle)
		for i := 0; i < m; i++ {
			points = append(points, []float64{
				cx + spread*rng.NormFloat64(),
				cy + spread*rng.NormFloat64(),
			})
			truth = append(truth, c)
		}
	}
	return points, truth
}

// purity computes the fraction of points whose cluster's majority truth
// label matches their own.
func purity(assign, truth []int, k int) float64 {
	counts := make([]map[int]int, k)
	for i := range counts {
		counts[i] = make(map[int]int)
	}
	for i, c := range assign {
		counts[c][truth[i]]++
	}
	right := 0
	for _, m := range counts {
		best := 0
		for _, n := range m {
			if n > best {
				best = n
			}
		}
		right += best
	}
	return float64(right) / float64(len(assign))
}

func TestXMeansFindsClusterCount(t *testing.T) {
	for _, wantK := range []int{3, 5, 7} {
		points, truth := gaussianBlobs(wantK, 60, 1.0, uint64(wantK))
		res, err := Cluster(points, Config{KMin: 2, KMax: 20, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.K < wantK-1 || res.K > wantK+2 {
			t.Errorf("want ≈%d clusters, got %d", wantK, res.K)
		}
		if p := purity(res.Assign, truth, res.K); p < 0.95 {
			t.Errorf("purity %.3f with %d true clusters", p, wantK)
		}
	}
}

func TestKMeansExactK(t *testing.T) {
	points, truth := gaussianBlobs(4, 50, 0.8, 9)
	res, err := KMeans(points, 4, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 {
		t.Fatalf("KMeans returned %d clusters, want 4", res.K)
	}
	if p := purity(res.Assign, truth, res.K); p < 0.95 {
		t.Errorf("purity %.3f", p)
	}
}

func TestAssignmentsMatchNearestCentroid(t *testing.T) {
	points, _ := gaussianBlobs(3, 40, 1.0, 11)
	res, err := Cluster(points, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		best, bestD := -1, -1.0
		for c, cent := range res.Centroids {
			d := mathx.SquaredDistance(p, cent)
			if best < 0 || d < bestD {
				best, bestD = c, d
			}
		}
		if res.Assign[i] != best {
			t.Fatalf("point %d assigned to %d, nearest centroid %d", i, res.Assign[i], best)
		}
	}
}

func TestKMaxRespected(t *testing.T) {
	points, _ := gaussianBlobs(8, 30, 0.5, 13)
	res, err := Cluster(points, Config{KMin: 2, KMax: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 4 {
		t.Fatalf("K = %d exceeds KMax 4", res.K)
	}
}

func TestSingleBlobStaysTogether(t *testing.T) {
	points, _ := gaussianBlobs(1, 120, 1.0, 17)
	res, err := Cluster(points, Config{KMin: 2, KMax: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// BIC shouldn't shatter a single Gaussian into many pieces.
	if res.K > 4 {
		t.Errorf("single blob split into %d clusters", res.K)
	}
}

func TestMembersPartition(t *testing.T) {
	points, _ := gaussianBlobs(3, 30, 1.0, 19)
	res, err := Cluster(points, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(points))
	for c, members := range res.Members() {
		for _, i := range members {
			if seen[i] {
				t.Fatalf("point %d in two clusters", i)
			}
			seen[i] = true
			if res.Assign[i] != c {
				t.Fatalf("Members/Assign disagree for point %d", i)
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("point %d unassigned", i)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Cluster(nil, Config{}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Cluster([][]float64{{1}, {1, 2}}, Config{}); err == nil {
		t.Error("ragged input accepted")
	}
	if _, err := KMeans([][]float64{{1}}, 5, Config{}); err == nil {
		t.Error("k > n accepted")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	points, _ := gaussianBlobs(4, 40, 1.0, 23)
	a, err := Cluster(points, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(points, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K {
		t.Fatalf("same seed, different K: %d vs %d", a.K, b.K)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed, different assignments")
		}
	}
}

func TestIdenticalPoints(t *testing.T) {
	points := make([][]float64, 50)
	for i := range points {
		points[i] = []float64{1, 2, 3}
	}
	res, err := Cluster(points, Config{KMin: 2, KMax: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 2 {
		t.Errorf("identical points split into %d clusters", res.K)
	}
}

func BenchmarkXMeans(b *testing.B) {
	points, _ := gaussianBlobs(6, 100, 1.0, 29)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(points, Config{KMin: 2, KMax: 16, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// Package xmeans implements the X-Means clustering algorithm (Pelleg &
// Moore, ICML 2000) the paper applies to domain embeddings to discover
// malware families and other associations (§7.1). X-Means extends
// k-means with an automated choice of k: starting from a small k, each
// cluster is tentatively split in two and the split is kept when it
// improves the Bayesian information criterion (BIC), repeating until no
// split helps or a maximum k is reached. Distances are Euclidean over
// the embedding vectors, as in the paper.
package xmeans

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/mathx"
)

// Config parameterizes clustering.
type Config struct {
	// KMin is the initial number of clusters (default 2).
	KMin int
	// KMax bounds the number of clusters (default 64).
	KMax int
	// MaxIter bounds Lloyd iterations per k-means run (default 50).
	MaxIter int
	// Seed drives centroid initialization.
	Seed uint64
}

func (c Config) withDefaults(n int) Config {
	if c.KMin <= 0 {
		c.KMin = 2
	}
	if c.KMax <= 0 {
		c.KMax = 64
	}
	if c.KMax > n {
		c.KMax = n
	}
	if c.KMin > c.KMax {
		c.KMin = c.KMax
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 50
	}
	return c
}

// Result is a clustering of the input points.
type Result struct {
	// K is the chosen number of clusters.
	K int
	// Assign[i] is the cluster index of point i.
	Assign []int
	// Centroids[c] is the mean of cluster c.
	Centroids [][]float64
	// BIC is the Bayesian information criterion of the final model
	// (higher is better under the Kass-Wasserman formulation used here).
	BIC float64
}

// ErrNoData is returned for an empty input.
var ErrNoData = errors.New("xmeans: empty input")

// Cluster runs X-Means over points.
func Cluster(points [][]float64, cfg Config) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoData
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("xmeans: inconsistent dimensions %d vs %d", len(p), dim)
		}
	}
	cfg = cfg.withDefaults(n)
	rng := mathx.NewRNG(cfg.Seed)

	centroids := kmeansPP(points, cfg.KMin, rng)
	assign := make([]int, n)
	lloyd(points, centroids, assign, cfg.MaxIter)

	for len(centroids) < cfg.KMax {
		// budget limits how many clusters may split this round so the
		// total never exceeds KMax.
		budget := cfg.KMax - len(centroids)
		improved := false
		next := make([][]float64, 0, len(centroids)+budget)
		for c := range centroids {
			members := membersOf(assign, c)
			if budget == 0 || len(members) < 4 {
				next = append(next, centroids[c])
				continue
			}
			sub := gather(points, members)
			// Parent model: the cluster as one Gaussian.
			parentBIC := bic(sub, [][]float64{centroidOf(sub)}, make([]int, len(sub)))
			// Child model: 2-means inside the cluster.
			childCentroids := kmeansPP(sub, 2, rng)
			childAssign := make([]int, len(sub))
			lloyd(sub, childCentroids, childAssign, cfg.MaxIter)
			if bic(sub, childCentroids, childAssign) > parentBIC {
				next = append(next, childCentroids...)
				budget--
				improved = true
			} else {
				next = append(next, centroids[c])
			}
		}
		if !improved {
			break
		}
		centroids = next
		lloyd(points, centroids, assign, cfg.MaxIter)
	}

	// Drop empty clusters and compact indices.
	centroids, assign = compact(points, centroids, assign)
	return &Result{
		K:         len(centroids),
		Assign:    assign,
		Centroids: centroids,
		BIC:       bic(points, centroids, assign),
	}, nil
}

// KMeans runs plain k-means with k-means++ seeding (exposed for the
// paper's comparisons and for callers that know k).
func KMeans(points [][]float64, k int, cfg Config) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoData
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("xmeans: k = %d invalid for %d points", k, n)
	}
	cfg = cfg.withDefaults(n)
	rng := mathx.NewRNG(cfg.Seed)
	centroids := kmeansPP(points, k, rng)
	assign := make([]int, n)
	lloyd(points, centroids, assign, cfg.MaxIter)
	centroids, assign = compact(points, centroids, assign)
	return &Result{
		K:         len(centroids),
		Assign:    assign,
		Centroids: centroids,
		BIC:       bic(points, centroids, assign),
	}, nil
}

// kmeansPP seeds k centroids with the k-means++ D² weighting.
func kmeansPP(points [][]float64, k int, rng *mathx.RNG) [][]float64 {
	n := len(points)
	if k > n {
		k = n
	}
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, clone(points[rng.Intn(n)]))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = mathx.SquaredDistance(points[i], centroids[0])
	}
	for len(centroids) < k {
		total := 0.0
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			u := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= u {
					pick = i
					break
				}
			}
		}
		c := clone(points[pick])
		centroids = append(centroids, c)
		for i := range d2 {
			if d := mathx.SquaredDistance(points[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// lloyd iterates assignment/update until convergence or maxIter. The
// assignment step parallelizes across points (month-scale experiments
// cluster ~10k 96-dimensional embeddings into >100 clusters, which is
// prohibitive single-threaded).
func lloyd(points [][]float64, centroids [][]float64, assign []int, maxIter int) {
	n, k := len(points), len(centroids)
	dim := len(points[0])
	sums := make([][]float64, k)
	counts := make([]int, k)

	workers := runtime.GOMAXPROCS(0)
	if workers > n/256+1 {
		workers = n/256 + 1
	}

	for it := 0; it < maxIter; it++ {
		var changed int32
		if workers <= 1 {
			for i, p := range points {
				best := nearest(p, centroids)
				if assign[i] != best {
					assign[i] = best
					changed = 1
				}
			}
		} else {
			var wg sync.WaitGroup
			chunk := (n + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					local := false
					for i := lo; i < hi; i++ {
						best := nearest(points[i], centroids)
						if assign[i] != best {
							assign[i] = best
							local = true
						}
					}
					if local {
						atomic.StoreInt32(&changed, 1)
					}
				}(lo, hi)
			}
			wg.Wait()
		}
		if changed == 0 && it > 0 {
			return
		}
		for c := range sums {
			sums[c] = make([]float64, dim)
			counts[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // keep the stale centroid; compact() removes empties
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
}

func nearest(p []float64, centroids [][]float64) int {
	best, bestD := 0, math.MaxFloat64
	for c := range centroids {
		if d := mathx.SquaredDistance(p, centroids[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// bic computes the Bayesian information criterion of a spherical-Gaussian
// mixture fit (Pelleg & Moore's formulation): larger is better.
func bic(points [][]float64, centroids [][]float64, assign []int) float64 {
	n := len(points)
	k := len(centroids)
	if n == 0 || k == 0 {
		return math.Inf(-1)
	}
	dim := float64(len(points[0]))
	// Pooled within-cluster variance estimate.
	rss := 0.0
	counts := make([]int, k)
	for i, p := range points {
		rss += mathx.SquaredDistance(p, centroids[assign[i]])
		counts[assign[i]]++
	}
	denom := float64(n-k) * dim
	if denom <= 0 {
		denom = dim
	}
	variance := rss / denom
	if variance < 1e-12 {
		variance = 1e-12
	}
	ll := 0.0
	for c := 0; c < k; c++ {
		nc := float64(counts[c])
		if nc == 0 {
			continue
		}
		ll += nc*math.Log(nc) - nc*math.Log(float64(n)) -
			nc*dim/2*math.Log(2*math.Pi*variance) - (nc-1)*dim/2
	}
	params := float64(k) * (dim + 1)
	return ll - params/2*math.Log(float64(n))
}

func membersOf(assign []int, c int) []int {
	var out []int
	for i, a := range assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

func gather(points [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = points[j]
	}
	return out
}

func centroidOf(points [][]float64) []float64 {
	dim := len(points[0])
	c := make([]float64, dim)
	for _, p := range points {
		for j, v := range p {
			c[j] += v
		}
	}
	for j := range c {
		c[j] /= float64(len(points))
	}
	return c
}

func clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// compact removes empty clusters and renumbers assignments.
func compact(points [][]float64, centroids [][]float64, assign []int) ([][]float64, []int) {
	used := make([]bool, len(centroids))
	for _, a := range assign {
		used[a] = true
	}
	remap := make([]int, len(centroids))
	var kept [][]float64
	for c, u := range used {
		if u {
			remap[c] = len(kept)
			kept = append(kept, centroids[c])
		}
	}
	out := make([]int, len(assign))
	for i, a := range assign {
		out[i] = remap[a]
	}
	return kept, out
}

// Members returns the point indices of each cluster.
func (r *Result) Members() [][]int {
	out := make([][]int, r.K)
	for i, c := range r.Assign {
		out[c] = append(out[c], i)
	}
	return out
}

// Package dnssim generates synthetic campus-network DNS traffic with the
// relational structure the paper's detection pipeline exploits.
//
// The paper evaluates on one month of DNS packets captured at the edge
// routers of a large campus network — data that is not publicly
// available. The detection signal, however, is purely relational: which
// hosts query which domains (host-domain bipartite graph), which domains
// resolve to shared IP addresses (domain-IP graph), and which domains are
// queried in the same minutes (domain-time graph). dnssim plants exactly
// those relations:
//
//   - a host population with diurnal weekday/weekend activity profiles
//     (students, staff, servers, IoT devices) drawing benign domains from
//     a Zipf-popular catalog;
//   - web-page structure: visiting a page triggers queries for embedded
//     ad/CDN/analytics domains in the same minute (temporal correlation
//     among benign domains, the effect §4.2.3 attributes to redirections
//     and embedded hyperlinks);
//   - CDN and shared-hosting IP pools reused across many benign domains
//     (IP-structural noise);
//   - malware families: sets of infected hosts that beacon to the
//     family's domains — DGA-generated (Conficker-style, wordlist spam,
//     hash-hex) or fixed phishing/C&C sets — resolving via fast-flux IP
//     pools with rotating low-TTL answers, a fraction of the DGA space
//     unregistered (NXDOMAIN), and optional TTL-evasion families that use
//     benign-looking high TTLs (the drift Exposure is sensitive to, §8.2);
//   - DHCP churn, so the same device appears under several client IPs.
//
// Every generated e2LD carries ground-truth labels (benign/malicious,
// family, style) used by the simulated threat-intelligence feeds.
package dnssim

import (
	"time"

	"repro/internal/mathx"
)

// Profile classifies a host's activity pattern.
type Profile int

// Host profiles. Distribution across the population is configurable.
const (
	// ProfileStudent is active roughly 08:00-24:00 with an evening peak.
	ProfileStudent Profile = iota + 1
	// ProfileStaff is active roughly 08:00-18:00 on weekdays.
	ProfileStaff
	// ProfileServer is active around the clock with low variance.
	ProfileServer
	// ProfileIoT queries a tiny fixed set of domains on a timer.
	ProfileIoT
)

// FamilyKind selects how a malware family derives its domain set.
type FamilyKind int

// Malware family kinds.
const (
	// KindDGAConficker uses Conficker-style random-letter DGA domains.
	KindDGAConficker FamilyKind = iota + 1
	// KindDGAWordlist uses pronounceable wordlist spam domains (.bid).
	KindDGAWordlist
	// KindDGAHashHex uses hex-digest DGA domains (.top).
	KindDGAHashHex
	// KindPhish uses a fixed set of typosquat/phishing domains.
	KindPhish
	// KindCnC uses a small fixed set of long-lived C&C domains.
	KindCnC
	// KindCompromised uses hacked legitimate sites repurposed as C&C
	// relays: dictionary names on mainstream TLDs, benign TTLs, stable
	// dedicated addresses. Statistically indistinguishable from benign
	// domains — the class of threats Exposure's features cannot see and
	// behavioral modeling can (the paper's core motivation, §1).
	KindCompromised
)

// Config is the full scenario description. The zero value is not usable;
// start from DefaultScenario or SmallScenario and adjust.
type Config struct {
	// Seed drives all randomness in scenario construction and traffic
	// generation. Identical configs with identical seeds generate
	// identical traffic.
	Seed uint64
	// FamilySeed, when nonzero, decouples malware-family construction
	// (domains, flux pools, registration) from the campus seed: several
	// campus scenarios with distinct Seeds but one FamilySeed observe the
	// same global malware campaigns through different local populations —
	// the multi-network deployment the paper's future work proposes.
	FamilySeed uint64

	// Start and Days bound the capture window.
	Start time.Time
	Days  int

	// Hosts is the number of end devices.
	Hosts int
	// ProfileMix gives relative weights for student/staff/server/IoT
	// hosts, in that order. Zero value means {55, 30, 5, 10}.
	ProfileMix [4]float64

	// BenignDomains is the catalog size of ordinary benign e2LDs.
	BenignDomains int
	// MegaDomains is the number of ultra-popular domains (search engines,
	// OS telemetry) queried by most hosts; these exist to exercise the
	// >50%-of-hosts pruning rule.
	MegaDomains int
	// ZipfExponent shapes benign domain popularity (default 0.9).
	ZipfExponent float64
	// VisitsPerDay is the mean number of page visits per active host-day.
	VisitsPerDay float64
	// EmbedProb is the probability that a visited page has embedded
	// third-party domains (ads/CDN/analytics).
	EmbedProb float64

	// CDNPools is the number of shared CDN/hosting IP pools; a fraction
	// of benign domains resolve into these shared pools.
	CDNPools int
	// SharedHostingFrac is the fraction of benign domains on shared pools.
	SharedHostingFrac float64

	// Families describes the planted malware families.
	Families []FamilyConfig
	// CrossContamination is the per-visit probability that an uninfected
	// host queries a random malicious domain (spam clicks, drive-by
	// pages); this is the main label-noise knob for classifier AUC.
	CrossContamination float64

	// NXDomainNoiseProb is the per-visit probability of a typo query that
	// yields NXDOMAIN for a nonexistent benign-looking name.
	NXDomainNoiseProb float64
	// BenignNXProb is the per-visit probability that the visited benign
	// e2LD also produces an NXDOMAIN under one of its own subdomains
	// (missing AAAA/wpad-style lookups), so benign domains carry a
	// nonzero NX ratio as in real traffic.
	BenignNXProb float64
	// FlashFrac is the fraction of benign tail domains that are
	// short-lived (active only during a window of a few days — event
	// pages, campaign sites, article CDNs).
	FlashFrac float64
	// ForeignNameFrac is the fraction of benign domains with
	// non-dictionary romanized names (the non-English-context lexical
	// noise §8.2 discusses); these carry DGA-like character statistics
	// while being benign.
	ForeignNameFrac float64
	// BeaconJitter is the window over which one beacon's domain queries
	// spread (default 12 minutes); larger jitter weakens minute-level
	// co-occurrence among family domains.
	BeaconJitter time.Duration
	// DormancyProb is the per-(host, family, day) probability that the
	// malware stays silent that day (default 0.4); dormancy makes family
	// domains' infected-host sets partially rather than fully
	// overlapping.
	DormancyProb float64
	// InterestGroupSize is the size of benign niche communities (course
	// cohorts, gaming clans, departments). Each community shares a small
	// set of niche domains only its members visit, producing benign
	// clusters in the query view that are structurally similar to malware
	// families. Default 20 hosts; 0 < Hosts disables grouping only when
	// negative.
	InterestGroupSize int
	// NicheDomainsPerGroup is how many tail domains each community
	// adopts (default 8).
	NicheDomainsPerGroup int
	// NicheVisitFrac is the fraction of a host's visits that go to its
	// community's niche domains (default 0.2).
	NicheVisitFrac float64

	// DHCP configures lease churn. LeaseTime default 12h, MoveProb 0.15.
	DHCPLeaseTime time.Duration
	DHCPMoveProb  float64
}

// FamilyConfig describes one malware family.
type FamilyConfig struct {
	// Name tags the family in ground truth ("conficker-a", "spamkit-3").
	Name string
	// Kind selects the domain-generation mechanism.
	Kind FamilyKind
	// TLDs restricts DGA-generated domains to these TLDs when non-empty
	// (e.g. the paper's Conficker cluster lives entirely on .ws).
	TLDs []string
	// Domains is the number of distinct e2LDs the family uses over the
	// whole window.
	Domains int
	// RegisteredFrac is the fraction of family domains that actually
	// resolve; the rest return NXDOMAIN (typical for DGA families that
	// register only a daily handful). Fixed-set kinds default to 1.0.
	RegisteredFrac float64
	// InfectedHosts is how many hosts carry this family's malware.
	InfectedHosts int
	// BeaconsPerDay is the mean beacon events per infected host-day.
	BeaconsPerDay float64
	// DomainsPerBeacon is how many family domains one beacon queries.
	DomainsPerBeacon int
	// FluxIPs is the size of the family's fast-flux IP pool.
	FluxIPs int
	// SharesHostingWithBenign marks families on bulletproof shared
	// hosting whose IPs are also used by benign tail domains (IP noise).
	SharesHostingWithBenign bool
	// HighTTL marks TTL-evading families that use CDN-like TTLs instead
	// of classic low fast-flux TTLs (the Exposure-evasion behavior the
	// paper cites from Xu et al.).
	HighTTL bool
	// Port is the C&C destination port reported in flow summaries.
	Port int
}

func (c Config) withDefaults() Config {
	if c.ProfileMix == ([4]float64{}) {
		c.ProfileMix = [4]float64{55, 30, 5, 10}
	}
	if c.ZipfExponent == 0 {
		c.ZipfExponent = 0.9
	}
	if c.VisitsPerDay == 0 {
		c.VisitsPerDay = 30
	}
	if c.EmbedProb == 0 {
		c.EmbedProb = 0.6
	}
	if c.CDNPools == 0 {
		c.CDNPools = 12
	}
	if c.SharedHostingFrac == 0 {
		c.SharedHostingFrac = 0.25
	}
	if c.DHCPLeaseTime == 0 {
		c.DHCPLeaseTime = 12 * time.Hour
	}
	if c.DHCPMoveProb == 0 {
		c.DHCPMoveProb = 0.15
	}
	if c.MegaDomains == 0 {
		c.MegaDomains = 8
	}
	if c.BenignNXProb == 0 {
		c.BenignNXProb = 0.05
	}
	if c.FlashFrac == 0 {
		c.FlashFrac = 0.3
	}
	if c.ForeignNameFrac == 0 {
		c.ForeignNameFrac = 0.25
	}
	if c.BeaconJitter == 0 {
		c.BeaconJitter = 4 * time.Minute
	}
	if c.DormancyProb == 0 {
		c.DormancyProb = 0.4
	}
	if c.InterestGroupSize == 0 {
		c.InterestGroupSize = 20
	}
	if c.NicheDomainsPerGroup == 0 {
		c.NicheDomainsPerGroup = 8
	}
	if c.NicheVisitFrac == 0 {
		c.NicheVisitFrac = 0.2
	}
	return c
}

// defaultStart is the first day of the paper's measurement month.
var defaultStart = time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)

// DefaultScenario reproduces the paper's experimental scale in shape: a
// month of traffic, a labeled-set-sized domain population (>10,000 e2LDs
// with roughly 30% malicious), and a family mix spanning DGA botnets,
// spam kits, phishing clusters, and long-lived C&C.
func DefaultScenario(seed uint64) Config {
	return Config{
		Seed:               seed,
		Start:              defaultStart,
		Days:               31,
		Hosts:              800,
		BenignDomains:      7400,
		VisitsPerDay:       30,
		CrossContamination: 0.01,
		NXDomainNoiseProb:  0.01,
		Families:           defaultFamilies(3200),
	}.withDefaults()
}

// SmallScenario is a scaled-down configuration for tests and examples:
// a few days, ~150 hosts, ~600 labeled domains. The relational structure
// is the same; only the scale shrinks.
func SmallScenario(seed uint64) Config {
	return Config{
		Seed:               seed,
		Start:              defaultStart,
		Days:               3,
		Hosts:              150,
		BenignDomains:      420,
		VisitsPerDay:       40,
		CrossContamination: 0.004,
		NXDomainNoiseProb:  0.01,
		Families: []FamilyConfig{
			{Name: "conficker-a", Kind: KindDGAConficker, Domains: 60, RegisteredFrac: 0.4,
				InfectedHosts: 12, BeaconsPerDay: 30, DomainsPerBeacon: 4, FluxIPs: 10, Port: 80},
			{Name: "spamkit-1", Kind: KindDGAWordlist, Domains: 40, RegisteredFrac: 0.9,
				InfectedHosts: 18, BeaconsPerDay: 16, DomainsPerBeacon: 3, FluxIPs: 6,
				SharesHostingWithBenign: true, Port: 25},
			{Name: "phishco", Kind: KindPhish, Domains: 25, InfectedHosts: 10,
				BeaconsPerDay: 10, DomainsPerBeacon: 2, FluxIPs: 4, Port: 443},
			{Name: "cnc-apt", Kind: KindCnC, Domains: 8, InfectedHosts: 5,
				BeaconsPerDay: 40, DomainsPerBeacon: 2, FluxIPs: 3, HighTTL: true, Port: 1337},
		},
	}.withDefaults()
}

// defaultFamilies builds a family mix totaling approximately
// totalMalicious domains, echoing the cluster census in §7 (Conficker DGA
// clusters, .bid spam clusters, phishing groups, small C&C sets).
func defaultFamilies(totalMalicious int) []FamilyConfig {
	// Fractions of the malicious domain budget per family archetype.
	// Beacon rates and fan-outs are calibrated so family domains have
	// partially overlapping (not identical) infected-host sets and thin
	// minute-level co-occurrence, matching the relative view strengths
	// the paper reports (query 0.89 > IP 0.83 >> temporal 0.65).
	archetypes := []struct {
		cfg   FamilyConfig
		share float64
	}{
		{FamilyConfig{Name: "conficker", Kind: KindDGAConficker, TLDs: []string{"ws"},
			RegisteredFrac: 0.35, InfectedHosts: 24, BeaconsPerDay: 10,
			DomainsPerBeacon: 3, FluxIPs: 12, Port: 80}, 0.22},
		{FamilyConfig{Name: "rustockdga", Kind: KindDGAConficker, RegisteredFrac: 0.4,
			InfectedHosts: 14, BeaconsPerDay: 8, DomainsPerBeacon: 3, FluxIPs: 9, Port: 2710}, 0.09},
		{FamilyConfig{Name: "spamkit", Kind: KindDGAWordlist, RegisteredFrac: 0.9,
			InfectedHosts: 30, BeaconsPerDay: 6, DomainsPerBeacon: 2, FluxIPs: 7,
			SharesHostingWithBenign: true, Port: 25}, 0.16},
		{FamilyConfig{Name: "clickfraud", Kind: KindDGAHashHex, RegisteredFrac: 0.7,
			InfectedHosts: 20, BeaconsPerDay: 14, DomainsPerBeacon: 3, FluxIPs: 10, Port: 80}, 0.11},
		{FamilyConfig{Name: "phish", Kind: KindPhish, InfectedHosts: 16,
			BeaconsPerDay: 5, DomainsPerBeacon: 2, FluxIPs: 5,
			SharesHostingWithBenign: true, Port: 443}, 0.12},
		{FamilyConfig{Name: "apt-cnc", Kind: KindCnC, InfectedHosts: 8,
			BeaconsPerDay: 20, DomainsPerBeacon: 2, FluxIPs: 4, HighTTL: true, Port: 1337}, 0.05},
		{FamilyConfig{Name: "hacked-sites", Kind: KindCompromised, InfectedHosts: 24,
			BeaconsPerDay: 9, DomainsPerBeacon: 3, FluxIPs: 3, HighTTL: true, Port: 443}, 0.25},
	}
	var out []FamilyConfig
	rng := mathx.NewRNG(0xfa417) // structural variety only; traffic uses Config.Seed
	for _, a := range archetypes {
		budget := int(a.share * float64(totalMalicious))
		// Split each archetype's budget into several concrete families so
		// clustering has many family-pure groups to find.
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			f := a.cfg
			f.Name = f.Name + "-" + string(rune('a'+i))
			f.Domains = budget / n
			if f.Domains < 4 {
				f.Domains = 4
			}
			// Vary infection size ±50% across the split families.
			f.InfectedHosts = f.InfectedHosts/2 + rng.Intn(f.InfectedHosts)
			if f.InfectedHosts < 3 {
				f.InfectedHosts = 3
			}
			out = append(out, f)
		}
	}
	return out
}

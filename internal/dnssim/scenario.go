package dnssim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dga"
	"repro/internal/dhcp"
	"repro/internal/mathx"
)

// Label is the ground-truth annotation of one e2LD.
type Label struct {
	Malicious bool
	// Family is the malware family name for malicious domains ("" for
	// benign).
	Family string
	// Style is the family style tag ("conficker", "wordlist", "hashhex",
	// "phish", "cnc") or "benign".
	Style string
	// Registered is true for domains that actually resolve. Unregistered
	// DGA domains only ever NXDOMAIN; threat-intel feeds rarely list
	// them (blacklists track live infrastructure), so they mostly stay
	// out of the labeled set, as in the paper's VirusTotal-confirmed
	// data. Benign domains are always registered.
	Registered bool
}

// Scenario is a fully instantiated simulation world: the host population,
// the benign and malicious domain catalogs with their IP pools, the DHCP
// lease log, and ground truth. Build one with NewScenario; it is
// immutable afterwards and safe for concurrent reads.
type Scenario struct {
	Config Config

	hosts       []hostSpec
	benign      []benignDomain
	mega        []benignDomain
	zipf        *mathx.Zipf
	fams        []family
	cdnPools    [][]string
	usedNames   map[string]bool
	nicheOf     [][]int // group -> benign catalog indices
	leases      []dhcp.Lease
	leasesByDev [][]dhcp.Lease
	dhcpRes     *dhcp.Resolver

	truth map[string]Label // e2LD -> label
}

type hostSpec struct {
	index   int
	mac     string
	profile Profile
	// group is the host's benign interest community.
	group int
	// families carried by this host (indices into Scenario.fams).
	infections []int
	// visitRate is this host's personal mean page visits per active day.
	visitRate float64
}

type benignDomain struct {
	e2ld  string
	names []string // FQDNs under the e2LD
	ips   []string
	ttl   uint32
	// embeds are catalog indices of third-party domains co-loaded when a
	// page on this domain is visited.
	embeds []int
	mega   bool
	// pool, when non-nil, is the shared CDN/hosting pool the domain
	// resolves from; responses sample the whole pool over time (address
	// rotation), unlike fixed-address domains that always answer from
	// ips.
	pool []string
	// nxFactor scales the per-visit benign-NX probability for this
	// domain (some sites chronically reference missing subdomains,
	// others never do).
	nxFactor float64
	// activeFrom/activeTo bound the days (inclusive) on which the domain
	// receives traffic; flash domains (event pages, campaign sites) have
	// short windows, everything else spans the whole capture.
	activeFrom, activeTo int
}

// activeOn reports whether the domain receives traffic on day index d.
func (b *benignDomain) activeOn(d int) bool {
	return d >= b.activeFrom && d <= b.activeTo
}

// codeName generates a short random alphanumeric label like the names of
// URL shorteners and tracking hosts.
func codeName(rng *mathx.RNG) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	n := 6 + rng.Intn(9)
	b := make([]byte, n)
	// First character alphabetic to stay a plausible hostname label.
	b[0] = alphabet[rng.Intn(26)]
	for i := 1; i < n; i++ {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// romanizedName generates a pronounceable-but-non-dictionary name from
// random syllables, optionally with a numeric suffix — the lexical
// profile of romanized non-English domains (§8.2's observation that
// lexical features lose power outside English naming conventions).
func romanizedName(rng *mathx.RNG) string {
	const consonants = "bcdfghjklmnpqrstwxyz"
	const vowels = "aeiou"
	n := 3 + rng.Intn(3)
	b := make([]byte, 0, 2*n+2)
	for i := 0; i < n; i++ {
		b = append(b, consonants[rng.Intn(len(consonants))], vowels[rng.Intn(len(vowels))])
	}
	if rng.Float64() < 0.4 {
		b = append(b, byte('0'+rng.Intn(10)), byte('0'+rng.Intn(10)))
	}
	return string(b)
}

type family struct {
	cfg        FamilyConfig
	domains    []string
	registered map[string]bool
	ips        []string
	ttl        uint32
	// domainTTL jitters the family base TTL per domain so families do
	// not carry a single constant-TTL fingerprint.
	domainTTL map[string]uint32
	// domainIPs is each domain's flux subset of the family pool.
	domainIPs map[string][]string
	// domainNX is the per-domain probability that a query for a
	// registered domain still fails (rotation churn); varied per domain
	// so no family carries a constant NX-ratio fingerprint.
	domainNX map[string]float64
	infected []int // host indices
}

// NewScenario instantiates the world described by cfg.
func NewScenario(cfg Config) *Scenario {
	cfg = cfg.withDefaults()
	s := &Scenario{Config: cfg, truth: make(map[string]Label)}
	root := mathx.NewRNG(cfg.Seed)
	s.buildHosts(root.SplitLabeled("hosts"))
	s.buildBenign(root.SplitLabeled("benign"))
	s.buildGroups(root.SplitLabeled("groups"))
	famRoot := root
	if cfg.FamilySeed != 0 {
		famRoot = mathx.NewRNG(cfg.FamilySeed)
	}
	s.buildFamilies(famRoot.SplitLabeled("families"))
	s.buildDHCP(root.SplitLabeled("dhcp"))
	s.zipf = mathx.NewZipf(len(s.benign), cfg.ZipfExponent)
	return s
}

// buildGroups partitions hosts into benign interest communities and
// assigns each community a set of niche tail domains. These communities
// are the main source of benign small-host-set clusters in the query
// view; without them every dense cluster would be a malware family and
// classification would be artificially easy.
func (s *Scenario) buildGroups(rng *mathx.RNG) {
	size := s.Config.InterestGroupSize
	if size <= 0 || len(s.benign) == 0 {
		return
	}
	groups := (len(s.hosts) + size - 1) / size
	perm := rng.Perm(len(s.hosts))
	for i, hi := range perm {
		s.hosts[hi].group = i % groups
	}
	s.nicheOf = make([][]int, groups)
	tailStart := len(s.benign) / 3 // niche domains come from the unpopular tail
	for g := 0; g < groups; g++ {
		n := 1 + rng.Poisson(float64(s.Config.NicheDomainsPerGroup))
		for k := 0; k < n; k++ {
			s.nicheOf[g] = append(s.nicheOf[g], tailStart+rng.Intn(len(s.benign)-tailStart))
		}
	}
}

func (s *Scenario) buildHosts(rng *mathx.RNG) {
	mix := s.Config.ProfileMix
	total := mix[0] + mix[1] + mix[2] + mix[3]
	s.hosts = make([]hostSpec, s.Config.Hosts)
	for i := range s.hosts {
		u := rng.Float64() * total
		var p Profile
		switch {
		case u < mix[0]:
			p = ProfileStudent
		case u < mix[0]+mix[1]:
			p = ProfileStaff
		case u < mix[0]+mix[1]+mix[2]:
			p = ProfileServer
		default:
			p = ProfileIoT
		}
		rate := s.Config.VisitsPerDay * (0.4 + 1.2*rng.Float64())
		if p == ProfileIoT {
			rate = 4 + 8*rng.Float64()
		}
		s.hosts[i] = hostSpec{
			index:     i,
			mac:       dhcp.MACForDevice(i),
			profile:   p,
			visitRate: rate,
		}
	}
}

// benignTLDs weights the TLD mix of the benign catalog.
var benignTLDs = []string{
	"com", "com", "com", "com", "net", "org", "io", "co", "edu",
	"cn", "com.cn", "co.uk", "de", "info", "me", "tv", "app", "dev",
}

var benignWords = []string{
	"news", "cloud", "shop", "tech", "data", "media", "game", "photo",
	"book", "mail", "video", "music", "blog", "forum", "wiki", "soft",
	"web", "net", "app", "dev", "lab", "hub", "zone", "box", "kit",
	"pro", "max", "plus", "go", "my", "top", "best", "smart", "fast",
	"open", "free", "easy", "true", "blue", "red", "star", "sun",
	"moon", "sky", "sea", "rock", "tree", "bird", "fox", "wolf",
}

var hostPrefixes = []string{"www", "mail", "api", "cdn", "static", "img", "m", "app", "login", "shop"}

func (s *Scenario) buildBenign(rng *mathx.RNG) {
	// Shared CDN/hosting pools: each pool is a set of addresses reused by
	// many domains (and abused by some malware families).
	pools := make([][]string, s.Config.CDNPools)
	for p := range pools {
		n := 4 + rng.Intn(24)
		pools[p] = make([]string, n)
		for i := range pools[p] {
			pools[p][i] = publicIP(rng)
		}
	}
	s.cdnPools = pools

	seen := s.usedNames
	if seen == nil {
		seen = make(map[string]bool)
		s.usedNames = seen
	}
	makeName := func(tag string, i int) string {
		for {
			var base string
			u := rng.Float64()
			switch {
			case tag == "benign" && u < 0.08:
				// Short-code services (URL shorteners, tracking and
				// cloud-storage hosts) have random alphanumeric names
				// with DGA-like character statistics.
				base = codeName(rng)
			case tag == "benign" && u < 0.08+s.Config.ForeignNameFrac:
				base = romanizedName(rng)
			default:
				base = benignWords[rng.Intn(len(benignWords))] +
					benignWords[rng.Intn(len(benignWords))] +
					suffixFor(tag, i, rng)
			}
			tld := benignTLDs[rng.Intn(len(benignTLDs))]
			name := fmt.Sprintf("%s.%s", base, tld)
			if !seen[name] {
				seen[name] = true
				return name
			}
		}
	}

	// Mega domains: queried by nearly every host, later removed by the
	// >50%-fan-out pruning rule.
	s.mega = make([]benignDomain, s.Config.MegaDomains)
	for i := range s.mega {
		d := benignDomain{
			e2ld: makeName("mega", i),
			ttl:  uint32(300 + rng.Intn(3600)),
			mega: true,
		}
		d.names = fqdnsFor(d.e2ld, 3+rng.Intn(4))
		for j := 0; j < 8+rng.Intn(8); j++ {
			d.ips = append(d.ips, publicIP(rng))
		}
		d.activeTo = s.Config.Days - 1
		s.mega[i] = d
		s.truth[d.e2ld] = Label{Style: "benign", Registered: true}
	}

	s.benign = make([]benignDomain, s.Config.BenignDomains)
	for i := range s.benign {
		d := benignDomain{
			e2ld: makeName("benign", i),
			ttl:  uint32(300 + rng.Intn(86400-300)),
		}
		d.names = fqdnsFor(d.e2ld, 1+rng.Intn(4))
		d.nxFactor = 2 * rng.Float64()
		if rng.Float64() < s.Config.SharedHostingFrac {
			// Shared hosting/CDN: the domain answers from the whole pool
			// over the month (address rotation), so its distinct-IP count
			// grows like a fast-flux domain's.
			d.pool = pools[rng.Intn(len(pools))]
			d.ips = d.pool[:1+rng.Intn(minInt(4, len(d.pool)))]
			d.ttl = uint32(60 + rng.Intn(600)) // CDNs use short TTLs
		} else {
			// Round-robin multi-datacenter services have many addresses
			// with arbitrary TTLs; most sites keep 1-3 addresses. Both
			// exist so "many distinct IPs" alone is not a malicious tell.
			n := 1 + rng.Intn(3)
			if rng.Float64() < 0.2 {
				n = 4 + rng.Intn(7)
			}
			for j := 0; j < n; j++ {
				d.ips = append(d.ips, publicIP(rng))
			}
			// Dynamic-DNS/load-balanced benign services also use short
			// TTLs, so a low TTL alone is not a malicious tell.
			if rng.Float64() < 0.15 {
				d.ttl = uint32(30 + rng.Intn(570))
			}
		}
		// Flash domains live only a few days; the rest span the capture.
		d.activeTo = s.Config.Days - 1
		if rng.Float64() < s.Config.FlashFrac && s.Config.Days > 2 {
			span := 1 + rng.Intn(4)
			d.activeFrom = rng.Intn(maxInt(1, s.Config.Days-span))
			d.activeTo = d.activeFrom + span - 1
		}
		s.benign[i] = d
		s.truth[d.e2ld] = Label{Style: "benign", Registered: true}
	}

	// Wire up page-embedding structure: each domain embeds a few
	// popular third-party domains (ads/analytics live in the popular
	// head, which is what yields minute-level co-occurrence).
	popular := mathx.NewZipf(len(s.benign), 1.2)
	for i := range s.benign {
		n := rng.Intn(4)
		for j := 0; j < n; j++ {
			e := popular.Sample(rng)
			if e != i {
				s.benign[i].embeds = append(s.benign[i].embeds, e)
			}
		}
	}
}

func suffixFor(tag string, i int, rng *mathx.RNG) string {
	switch {
	case tag == "mega":
		return ""
	case rng.Float64() < 0.3:
		return fmt.Sprintf("%d", rng.Intn(100))
	default:
		return ""
	}
}

func fqdnsFor(e2ld string, n int) []string {
	names := make([]string, 0, n)
	for i := 0; i < n && i < len(hostPrefixes); i++ {
		names = append(names, hostPrefixes[i]+"."+e2ld)
	}
	if len(names) == 0 {
		names = []string{"www." + e2ld}
	}
	return names
}

var phishWords = []string{
	"paypa1", "secure-login", "appleid-verify", "bank-update", "account-check",
	"netf1ix", "micros0ft", "amaz0n-pay", "gmai1-auth", "faceb00k-help",
	"dropb0x-share", "off1ce365", "icloud-locked", "wellsfarg0", "chase-alert",
}

var cncWords = []string{
	"update-node", "sync-relay", "cdn-edge", "stat-collect", "api-bridge",
	"telemetry-core", "proxy-gate", "mirror-hub", "cache-link", "beacon-srv",
}

func (s *Scenario) buildFamilies(rng *mathx.RNG) {
	s.fams = make([]family, len(s.Config.Families))
	for fi, fc := range s.Config.Families {
		f := family{cfg: fc}
		seed := rng.Uint64()
		switch fc.Kind {
		case KindDGAConficker:
			f.domains = dga.Sequence(dga.Conficker{TLDs: fc.TLDs}, seed, fc.Domains)
		case KindDGAWordlist:
			f.domains = dga.Sequence(dga.Wordlist{}, seed, fc.Domains)
		case KindDGAHashHex:
			f.domains = dga.Sequence(dga.HashHex{}, seed, fc.Domains)
		case KindPhish:
			f.domains = fixedDomains(phishWords, fc.Domains, "com", rng)
		case KindCnC:
			f.domains = fixedDomains(cncWords, fc.Domains, "net", rng)
		case KindCompromised:
			f.domains = s.compromisedDomains(fc.Domains, rng)
		default:
			panic(fmt.Sprintf("dnssim: unknown family kind %d", fc.Kind))
		}

		regFrac := fc.RegisteredFrac
		if fc.Kind == KindPhish || fc.Kind == KindCnC || fc.Kind == KindCompromised {
			regFrac = 1.0
		}
		f.registered = make(map[string]bool, len(f.domains))
		for _, d := range f.domains {
			f.registered[d] = rng.Float64() < regFrac
		}

		nIPs := fc.FluxIPs
		if nIPs <= 0 {
			nIPs = 4
		}
		f.ips = make([]string, nIPs)
		if fc.SharesHostingWithBenign && len(s.cdnPools) > 0 {
			// Abused cloud/CDN infrastructure: the family's addresses come
			// from a pool that legitimate domains also resolve to, so the
			// IP view cannot cleanly separate these families.
			pool := s.cdnPools[rng.Intn(len(s.cdnPools))]
			for i := range f.ips {
				f.ips[i] = pool[rng.Intn(len(pool))]
			}
		} else {
			for i := range f.ips {
				f.ips[i] = publicIP(rng)
			}
		}
		if fc.HighTTL {
			f.ttl = uint32(21600 + rng.Intn(64800)) // TTL-evading family
		} else {
			// Drifted fast-flux TTLs: the paper's §8.2 cites the upward
			// trend in malicious TTLs, which overlaps the CDN range and
			// degrades Exposure's TTL feature group.
			f.ttl = uint32(120 + rng.Intn(3480))
		}
		// Per-domain TTL base: ×[0.5, 2.0) around the family base so the
		// family carries no single constant-TTL fingerprint. Compromised
		// sites keep their original (benign-distributed) TTLs — the
		// attacker never touches the DNS zone.
		f.domainTTL = make(map[string]uint32, len(f.domains))
		for _, d := range f.domains {
			if fc.Kind == KindCompromised {
				// Mirror the benign TTL mixture (CDN/dynamic lows plus a
				// uniform bulk): the zone is still the victim's.
				if rng.Float64() < 0.4 {
					f.domainTTL[d] = uint32(30 + rng.Intn(570))
				} else {
					f.domainTTL[d] = uint32(300 + rng.Intn(86400-300))
				}
			} else {
				f.domainTTL[d] = uint32(float64(f.ttl) * (0.5 + 1.5*rng.Float64()))
			}
		}

		// Infect a random host subset, excluding IoT devices (they query
		// fixed firmware domains only).
		candidates := make([]int, 0, len(s.hosts))
		for _, h := range s.hosts {
			if h.profile != ProfileIoT {
				candidates = append(candidates, h.index)
			}
		}
		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		n := fc.InfectedHosts
		if n > len(candidates) {
			n = len(candidates)
		}
		f.infected = append([]int(nil), candidates[:n]...)
		sort.Ints(f.infected)
		for _, hi := range f.infected {
			s.hosts[hi].infections = append(s.hosts[hi].infections, fi)
		}

		// Each domain resolves to its own small subset of the family flux
		// pool (real flux rotates a handful of addresses per name), so
		// per-domain distinct-IP counts stay in the benign range while
		// the family still shares infrastructure pairwise. Compromised
		// sites are the exception: every hacked server has its own
		// unrelated hosting, so the IP view cannot link them at all —
		// only the querying-host view can.
		f.domainIPs = make(map[string][]string, len(f.domains))
		for _, d := range f.domains {
			if fc.Kind == KindCompromised {
				// A hacked site keeps its own hosting, mirroring the
				// benign address-count mixture (most sites 1-3 addresses,
				// some on multi-datacenter round robins).
				n := 1 + rng.Intn(3)
				if rng.Float64() < 0.2 {
					n = 4 + rng.Intn(7)
				}
				own := make([]string, n)
				for k := range own {
					own[k] = publicIP(rng)
				}
				f.domainIPs[d] = own
				continue
			}
			n := 2 + rng.Intn(minInt(4, len(f.ips)))
			start := rng.Intn(len(f.ips))
			sub := make([]string, 0, n)
			for k := 0; k < n; k++ {
				sub = append(sub, f.ips[(start+k)%len(f.ips)])
			}
			f.domainIPs[d] = sub
		}

		f.domainNX = make(map[string]float64, len(f.domains))
		for _, d := range f.domains {
			f.domainNX[d] = 0.12 * rng.Float64()
		}

		style := styleFor(fc.Kind)
		for _, d := range f.domains {
			s.truth[d] = Label{
				Malicious:  true,
				Family:     fc.Name,
				Style:      style,
				Registered: f.registered[d],
			}
		}
		s.fams[fi] = f
	}

	// Bulletproof shared hosting: families flagged SharesHostingWithBenign
	// lend a couple of their addresses to random benign tail domains.
	for fi := range s.fams {
		if !s.fams[fi].cfg.SharesHostingWithBenign || len(s.benign) == 0 {
			continue
		}
		for k := 0; k < 6; k++ {
			bi := len(s.benign)/2 + rng.Intn(len(s.benign)/2) // tail half
			ip := s.fams[fi].ips[rng.Intn(len(s.fams[fi].ips))]
			s.benign[bi].ips = append(s.benign[bi].ips, ip)
		}
	}
}

func styleFor(k FamilyKind) string {
	switch k {
	case KindDGAConficker:
		return "conficker"
	case KindDGAWordlist:
		return "wordlist"
	case KindDGAHashHex:
		return "hashhex"
	case KindPhish:
		return "phish"
	case KindCnC:
		return "cnc"
	case KindCompromised:
		return "compromised"
	default:
		return "unknown"
	}
}

// compromisedDomains generates names for hacked legitimate sites: the
// same dictionary-word pattern as the benign catalog, deduplicated
// against it so no planted name is both benign and malicious.
func (s *Scenario) compromisedDomains(n int, rng *mathx.RNG) []string {
	if s.usedNames == nil {
		s.usedNames = make(map[string]bool)
	}
	out := make([]string, 0, n)
	for len(out) < n {
		base := benignWords[rng.Intn(len(benignWords))] +
			benignWords[rng.Intn(len(benignWords))]
		if rng.Float64() < 0.3 {
			base = fmt.Sprintf("%s%d", base, rng.Intn(100))
		}
		name := fmt.Sprintf("%s.%s", base, benignTLDs[rng.Intn(len(benignTLDs))])
		if s.usedNames[name] {
			continue
		}
		s.usedNames[name] = true
		out = append(out, name)
	}
	return out
}

func fixedDomains(words []string, n int, tld string, rng *mathx.RNG) []string {
	out := make([]string, 0, n)
	seen := make(map[string]bool)
	for len(out) < n {
		w := words[rng.Intn(len(words))]
		name := fmt.Sprintf("%s%d.%s", w, rng.Intn(1000), tld)
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

func (s *Scenario) buildDHCP(rng *mathx.RNG) {
	cfg := s.Config
	s.leases = dhcp.Generate(dhcp.GenConfig{
		Devices:   cfg.Hosts,
		Start:     cfg.Start,
		Duration:  time.Duration(cfg.Days) * 24 * time.Hour,
		LeaseTime: cfg.DHCPLeaseTime,
		MoveProb:  cfg.DHCPMoveProb,
	}, rng)
	s.dhcpRes = dhcp.NewResolver(s.leases)
	// Index leases per device for fast IP-at-time lookup during
	// generation.
	s.leasesByDev = make([][]dhcp.Lease, cfg.Hosts)
	for _, l := range s.leases {
		// MACForDevice is bijective over the device range; recover index.
		var b [4]byte
		if _, err := fmt.Sscanf(l.MAC, "02:00:%02x:%02x:%02x:%02x", &b[0], &b[1], &b[2], &b[3]); err != nil {
			continue // foreign MAC not minted by MACForDevice; no device index to recover
		}
		dev := int(b[0])<<24 | int(b[1])<<16 | int(b[2])<<8 | int(b[3])
		if dev < 0 || dev >= len(s.leasesByDev) {
			continue
		}
		s.leasesByDev[dev] = append(s.leasesByDev[dev], l)
	}
}

// publicIP draws a synthetic routable IPv4 address.
func publicIP(rng *mathx.RNG) string {
	return fmt.Sprintf("%d.%d.%d.%d",
		20+rng.Intn(200), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
}

// Leases exposes the generated DHCP log (sorted by start time).
func (s *Scenario) Leases() []dhcp.Lease { return s.leases }

// DHCP exposes the lease resolver used to pin client IPs to devices.
func (s *Scenario) DHCP() *dhcp.Resolver { return s.dhcpRes }

// Truth returns the ground-truth label for an e2LD; ok is false for
// domains the scenario never planted (e.g. NX noise names).
func (s *Scenario) Truth(e2ld string) (Label, bool) {
	l, ok := s.truth[e2ld]
	return l, ok
}

// TruthTable returns a copy of the complete ground-truth map.
func (s *Scenario) TruthTable() map[string]Label {
	out := make(map[string]Label, len(s.truth))
	for k, v := range s.truth {
		out[k] = v
	}
	return out
}

// Families lists the planted family names with their domains, for
// cluster-purity evaluation.
func (s *Scenario) Families() map[string][]string {
	out := make(map[string][]string, len(s.fams))
	for _, f := range s.fams {
		out[f.cfg.Name] = append([]string(nil), f.domains...)
	}
	return out
}

// MaliciousDomains returns all planted malicious e2LDs, sorted.
func (s *Scenario) MaliciousDomains() []string {
	var out []string
	for d, l := range s.truth {
		if l.Malicious {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}

// BenignDomains returns all planted benign e2LDs (including mega
// domains), sorted.
func (s *Scenario) BenignDomains() []string {
	var out []string
	for d, l := range s.truth {
		if !l.Malicious {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}

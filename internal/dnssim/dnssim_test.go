package dnssim

import (
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/etld"
)

func smallScenario(t testing.TB) *Scenario {
	t.Helper()
	return NewScenario(SmallScenario(42))
}

func TestScenarioDeterministic(t *testing.T) {
	a := NewScenario(SmallScenario(7)).Collect()
	b := NewScenario(SmallScenario(7)).Collect()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].QName != b[i].QName || !a[i].Time.Equal(b[i].Time) || a[i].ClientIP != b[i].ClientIP {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSeedsChangeTraffic(t *testing.T) {
	a := NewScenario(SmallScenario(1)).Collect()
	b := NewScenario(SmallScenario(2)).Collect()
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i].QName != b[i].QName {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traffic")
		}
	}
}

func TestTruthCoversCatalog(t *testing.T) {
	s := smallScenario(t)
	cfg := s.Config
	mal := s.MaliciousDomains()
	ben := s.BenignDomains()
	wantMal := 0
	for _, f := range cfg.Families {
		wantMal += f.Domains
	}
	if len(mal) != wantMal {
		t.Errorf("malicious domains = %d, want %d", len(mal), wantMal)
	}
	if len(ben) != cfg.BenignDomains+cfg.MegaDomains {
		t.Errorf("benign domains = %d, want %d", len(ben), cfg.BenignDomains+cfg.MegaDomains)
	}
	for _, d := range mal {
		l, ok := s.Truth(d)
		if !ok || !l.Malicious || l.Family == "" {
			t.Fatalf("bad truth for malicious domain %q: %+v ok=%v", d, l, ok)
		}
	}
}

func TestAllDomainsAreE2LDs(t *testing.T) {
	s := smallScenario(t)
	for d := range s.TruthTable() {
		got, err := etld.E2LD(d)
		if err != nil {
			t.Fatalf("catalog domain %q has no e2LD: %v", d, err)
		}
		if got != d {
			t.Errorf("catalog domain %q is not an e2LD (e2LD = %q)", d, got)
		}
	}
}

func TestEventsWellFormed(t *testing.T) {
	s := smallScenario(t)
	end := s.Config.Start.Add(time.Duration(s.Config.Days+1) * 24 * time.Hour)
	n := 0
	s.Generate(func(ev Event) {
		n++
		if ev.Time.Before(s.Config.Start.Add(-24*time.Hour)) || ev.Time.After(end) {
			t.Fatalf("event time %v outside window", ev.Time)
		}
		if ev.QName == "" || ev.ClientIP == "" {
			t.Fatalf("event missing name or client: %+v", ev)
		}
		switch ev.RCode {
		case dnswire.RCodeNoError:
			if len(ev.Answers) == 0 {
				t.Fatalf("NOERROR event with no answers: %+v", ev)
			}
		case dnswire.RCodeNXDomain:
			if len(ev.Answers) != 0 {
				t.Fatalf("NXDOMAIN event with answers: %+v", ev)
			}
		default:
			t.Fatalf("unexpected rcode %v", ev.RCode)
		}
	})
	if n < 10000 {
		t.Fatalf("small scenario produced only %d events", n)
	}
}

// The core relational property: hosts infected by the same family query
// overlapping family-domain sets, and family domains share flux IPs.
func TestFamilyRelationalStructure(t *testing.T) {
	s := smallScenario(t)
	macOf := make(map[string]string) // clientIP is dynamic; use scenario truth instead
	_ = macOf

	domHosts := make(map[string]map[string]bool) // e2LD -> set of client IPs
	domIPs := make(map[string]map[string]bool)   // e2LD -> resolved IPs
	s.Generate(func(ev Event) {
		d, err := etld.E2LD(ev.QName)
		if err != nil {
			return
		}
		if domHosts[d] == nil {
			domHosts[d] = make(map[string]bool)
			domIPs[d] = make(map[string]bool)
		}
		domHosts[d][ev.ClientIP] = true
		for _, ip := range ev.Answers {
			domIPs[d][ip] = true
		}
	})

	fams := s.Families()
	for name, domains := range fams {
		// Count family domains that were actually queried.
		queried := 0
		resolved := 0
		for _, d := range domains {
			if len(domHosts[d]) > 0 {
				queried++
			}
			if len(domIPs[d]) > 0 {
				resolved++
			}
		}
		if queried < len(domains)/2 {
			t.Errorf("family %s: only %d/%d domains ever queried", name, queried, len(domains))
		}
		if resolved == 0 {
			t.Errorf("family %s: no domain ever resolved", name)
		}
		// Each resolved family domain draws a small subset of the family
		// flux pool, so any two subsets need not intersect directly — but
		// every domain must share at least one address with some *other*
		// family domain (the pairwise structure the DIBG projection
		// exploits transitively).
		ipOwners := make(map[string]int) // ip -> how many family domains use it
		resolvedDomains := 0
		for _, d := range domains {
			if len(domIPs[d]) == 0 {
				continue
			}
			resolvedDomains++
			for ip := range domIPs[d] {
				ipOwners[ip]++
			}
		}
		if resolvedDomains >= 2 {
			for _, d := range domains {
				if len(domIPs[d]) == 0 {
					continue
				}
				shared := false
				for ip := range domIPs[d] {
					if ipOwners[ip] >= 2 {
						shared = true
						break
					}
				}
				if !shared {
					t.Errorf("family %s: domain %s shares no IPs with any sibling", name, d)
				}
			}
		}
	}
}

func TestMegaDomainsHaveHighFanout(t *testing.T) {
	s := smallScenario(t)
	domHosts := make(map[string]map[string]bool)
	s.Generate(func(ev Event) {
		d, err := etld.E2LD(ev.QName)
		if err != nil {
			return
		}
		if domHosts[d] == nil {
			domHosts[d] = make(map[string]bool)
		}
		domHosts[d][ev.ClientIP] = true
	})
	// At least one mega domain must exceed 50% of hosts (clientIP churn
	// inflates the denominator, so compare against host count directly).
	hi := 0
	for _, m := range s.mega {
		if len(domHosts[m.e2ld]) > hi {
			hi = len(domHosts[m.e2ld])
		}
	}
	if hi < s.Config.Hosts/2 {
		t.Errorf("largest mega-domain fanout %d < half of %d hosts", hi, s.Config.Hosts)
	}
}

func TestPacketsRoundTrip(t *testing.T) {
	s := smallScenario(t)
	checked := 0
	s.Generate(func(ev Event) {
		if checked >= 500 {
			return
		}
		checked++
		qb, rb, err := Packets(ev)
		if err != nil {
			t.Fatalf("Packets(%+v): %v", ev, err)
		}
		q, err := dnswire.Decode(qb)
		if err != nil {
			t.Fatalf("decoding query: %v", err)
		}
		r, err := dnswire.Decode(rb)
		if err != nil {
			t.Fatalf("decoding response: %v", err)
		}
		if q.Header.ID != ev.TxnID || r.Header.ID != ev.TxnID {
			t.Fatal("txn id mismatch")
		}
		if q.Questions[0].Name != ev.QName {
			t.Fatalf("qname %q != %q", q.Questions[0].Name, ev.QName)
		}
		if r.Header.RCode != ev.RCode || len(r.Answers) != len(ev.Answers) {
			t.Fatalf("response mismatch: %+v", r.Header)
		}
	})
	if checked == 0 {
		t.Fatal("no events checked")
	}
}

func TestInfectedHostsNonEmpty(t *testing.T) {
	s := smallScenario(t)
	inf := s.InfectedHosts()
	if len(inf) == 0 {
		t.Fatal("no infected hosts")
	}
	total := 0
	for _, f := range s.Config.Families {
		total += f.InfectedHosts
	}
	if len(inf) > total {
		t.Fatalf("infected hosts %d exceeds configured total %d", len(inf), total)
	}
}

func TestFlowSummaries(t *testing.T) {
	s := smallScenario(t)
	flows := s.FlowSummaries()
	if len(flows) != len(s.Config.Families) {
		t.Fatalf("got %d summaries, want %d", len(flows), len(s.Config.Families))
	}
	for _, f := range flows {
		if f.HostCount == 0 || len(f.ServerIPs) == 0 || len(f.Ports) == 0 {
			t.Errorf("degenerate flow summary: %+v", f)
		}
	}
}

func TestDiurnalShape(t *testing.T) {
	s := smallScenario(t)
	byHour := make([]int, 24)
	s.Generate(func(ev Event) { byHour[ev.Time.Hour()]++ })
	night := byHour[3] + byHour[4]
	day := byHour[14] + byHour[15]
	if day < night*2 {
		t.Errorf("no diurnal pattern: day=%d night=%d", day, night)
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewScenario(SmallScenario(uint64(i)))
		n := 0
		s.Generate(func(Event) { n++ })
	}
}

package dnssim

import (
	"fmt"
	"time"

	"repro/internal/dnswire"
	"repro/internal/mathx"
)

// Event is one DNS query together with its response, in the record schema
// the paper's collector extracts from packet captures: query timestamp,
// transaction id, client source IP, queried name and type; response code,
// answer addresses and TTL.
type Event struct {
	Time     time.Time
	TxnID    uint16
	ClientIP string
	QName    string
	QType    dnswire.Type
	RCode    dnswire.RCode
	// Answers holds resolved IPv4 addresses for RCodeNoError A queries.
	Answers []string
	TTL     uint32
}

// Generate streams the scenario's full traffic through emit. Events are
// time-ordered per host but interleaved arbitrarily across hosts; the
// aggregating consumers in internal/pipeline do not require global order.
// The stream is deterministic in the scenario's seed. Events whose
// redirect/beacon jitter would spill past the capture window are clamped
// to its final second, so every event satisfies Start <= Time < Start+Days.
func (s *Scenario) Generate(emit func(Event)) {
	root := mathx.NewRNG(s.Config.Seed).SplitLabeled("traffic")
	end := s.Config.Start.Add(time.Duration(s.Config.Days) * 24 * time.Hour)
	clamped := func(ev Event) {
		if !ev.Time.Before(end) {
			ev.Time = end.Add(-time.Second)
		}
		if ev.Time.Before(s.Config.Start) {
			ev.Time = s.Config.Start
		}
		emit(ev)
	}
	for hi := range s.hosts {
		s.generateHost(hi, root.Split(), clamped)
	}
}

// Collect materializes the full event stream. Use only for small
// scenarios; the default month-long campus scenario produces millions of
// events and should be consumed via Generate.
func (s *Scenario) Collect() []Event {
	var out []Event
	s.Generate(func(ev Event) { out = append(out, ev) })
	return out
}

// generateHost emits the complete timeline of one host: benign page
// visits shaped by the host's activity profile, plus malware beacons for
// each infection the host carries.
func (s *Scenario) generateHost(hi int, rng *mathx.RNG, emit func(Event)) {
	h := s.hosts[hi]
	cfg := s.Config
	dayLen := 24 * time.Hour

	for day := 0; day < cfg.Days; day++ {
		dayStart := cfg.Start.Add(time.Duration(day) * dayLen)
		weekday := dayStart.Weekday()
		factor := activityFactor(h.profile, weekday)
		if factor == 0 {
			continue
		}

		// Benign page visits.
		nVisits := rng.Poisson(h.visitRate * factor)
		for v := 0; v < nVisits; v++ {
			t := dayStart.Add(visitTime(h.profile, rng))
			s.emitVisit(hi, t, rng, emit)
		}

		// Mega-domain background chatter (telemetry, search): every
		// active host touches most mega domains daily.
		for mi := range s.mega {
			if rng.Float64() < 0.8*factor {
				t := dayStart.Add(visitTime(h.profile, rng))
				s.emitBenignQuery(hi, t, &s.mega[mi], rng, emit)
			}
		}

		// Malware beacons for each infection carried by this host. The
		// malware runs only while the device is on, so beacons follow the
		// host's activity profile rather than a flat 24h clock; it also
		// goes dormant on some days (sandbox evasion, kill-switch checks,
		// device sleep), so family domains see partially overlapping
		// infected-host subsets rather than identical ones.
		for _, fi := range h.infections {
			if rng.Float64() < s.Config.DormancyProb {
				continue
			}
			f := &s.fams[fi]
			nBeacons := rng.Poisson(f.cfg.BeaconsPerDay * factor)
			for b := 0; b < nBeacons; b++ {
				t := dayStart.Add(visitTime(h.profile, rng))
				s.emitBeacon(hi, t, f, day, rng, emit)
			}
		}
	}
}

// activityFactor scales a profile's visit volume for the given weekday.
func activityFactor(p Profile, wd time.Weekday) float64 {
	weekend := wd == time.Saturday || wd == time.Sunday
	switch p {
	case ProfileStudent:
		if weekend {
			return 0.8
		}
		return 1.0
	case ProfileStaff:
		if weekend {
			return 0.15
		}
		return 1.0
	case ProfileServer:
		return 1.0
	case ProfileIoT:
		return 1.0
	default:
		return 0
	}
}

// visitTime draws a time-of-day for one visit according to the profile's
// diurnal shape.
func visitTime(p Profile, rng *mathx.RNG) time.Duration {
	var hour float64
	switch p {
	case ProfileStudent:
		// Bimodal: afternoon and evening peaks.
		if rng.Float64() < 0.45 {
			hour = 10 + 5*rng.Float64()
		} else {
			hour = 17 + 6.5*rng.Float64()
		}
	case ProfileStaff:
		hour = 8.5 + 9*rng.Float64()
	case ProfileServer, ProfileIoT:
		hour = 24 * rng.Float64()
	}
	if hour >= 24 {
		hour -= 24
	}
	return time.Duration(hour * float64(time.Hour))
}

// emitVisit emits the query cascade of one page visit: the primary
// domain, its embedded third-party domains (same minute — the temporal
// correlation of §4.2.3), occasional typo NXDOMAINs, and the
// cross-contamination clicks that make uninfected hosts touch malicious
// domains.
func (s *Scenario) emitVisit(hi int, t time.Time, rng *mathx.RNG, emit func(Event)) {
	day := int(t.Sub(s.Config.Start) / (24 * time.Hour))
	// A fraction of visits go to the host's interest-community niche
	// domains; the rest draw from the global Zipf popularity curve.
	// Resample when the chosen domain is outside its activity window
	// (flash domains only exist on their few days).
	primary := s.pickDomain(hi, rng)
	for try := 0; try < 4 && !s.benign[primary].activeOn(day); try++ {
		primary = s.pickDomain(hi, rng)
	}
	if !s.benign[primary].activeOn(day) {
		return
	}
	s.emitBenignQuery(hi, t, &s.benign[primary], rng, emit)

	if rng.Float64() < s.Config.EmbedProb {
		for _, e := range s.benign[primary].embeds {
			if !s.benign[e].activeOn(day) {
				continue
			}
			// Embedded resources load within the same minute, with a
			// small chance of spilling into the next.
			dt := time.Duration(rng.Float64() * 20 * float64(time.Second))
			if rng.Float64() < 0.1 {
				dt += time.Minute
			}
			s.emitBenignQuery(hi, t.Add(dt), &s.benign[e], rng, emit)
		}
	}

	if rng.Float64() < s.Config.BenignNXProb*s.benign[primary].nxFactor {
		// A missing subdomain of the visited site (wpad, stale asset
		// host): benign e2LDs carry a nonzero NX ratio in real traffic.
		emit(Event{
			Time:     t.Add(time.Second),
			TxnID:    uint16(rng.Intn(1 << 16)),
			ClientIP: s.clientIP(hi, t),
			QName:    fmt.Sprintf("alt%d.%s", rng.Intn(4), s.benign[primary].e2ld),
			QType:    dnswire.TypeA,
			RCode:    dnswire.RCodeNXDomain,
		})
	}

	if rng.Float64() < s.Config.NXDomainNoiseProb {
		emit(Event{
			Time:     t.Add(2 * time.Second),
			TxnID:    uint16(rng.Intn(1 << 16)),
			ClientIP: s.clientIP(hi, t),
			QName:    "www." + s.benign[primary].e2ld + "x.com", // typo
			QType:    dnswire.TypeA,
			RCode:    dnswire.RCodeNXDomain,
		})
	}

	if rng.Float64() < s.Config.CrossContamination && len(s.fams) > 0 {
		f := &s.fams[rng.Intn(len(s.fams))]
		d := f.domains[rng.Intn(len(f.domains))]
		s.emitMalQuery(hi, t.Add(5*time.Second), f, d, rng, emit)
	}
}

// pickDomain selects the primary domain of one visit: usually a global
// Zipf draw, sometimes one of the host community's niche domains.
func (s *Scenario) pickDomain(hi int, rng *mathx.RNG) int {
	g := s.hosts[hi].group
	if len(s.nicheOf) > 0 && g < len(s.nicheOf) && len(s.nicheOf[g]) > 0 &&
		rng.Float64() < s.Config.NicheVisitFrac {
		return s.nicheOf[g][rng.Intn(len(s.nicheOf[g]))]
	}
	return s.zipf.Sample(rng)
}

func (s *Scenario) emitBenignQuery(hi int, t time.Time, d *benignDomain, rng *mathx.RNG, emit func(Event)) {
	name := d.names[rng.Intn(len(d.names))]
	// CDN-backed domains rotate answers over the whole shared pool;
	// fixed-address domains answer from their static set.
	source := d.ips
	if d.pool != nil {
		source = d.pool
	}
	n := 1 + rng.Intn(minInt(3, len(source)))
	answers := make([]string, 0, n)
	start := rng.Intn(len(source))
	for i := 0; i < n; i++ {
		answers = append(answers, source[(start+i)%len(source)])
	}
	emit(Event{
		Time:     t,
		TxnID:    uint16(rng.Intn(1 << 16)),
		ClientIP: s.clientIP(hi, t),
		QName:    name,
		QType:    dnswire.TypeA,
		RCode:    dnswire.RCodeNoError,
		Answers:  answers,
		TTL:      jitterTTL(d.ttl, rng),
	})
}

// jitterTTL varies a base TTL per response (recursive resolvers observe
// counted-down and operator-tuned values, never one constant).
func jitterTTL(base uint32, rng *mathx.RNG) uint32 {
	v := uint32(float64(base) * (0.6 + 0.8*rng.Float64()))
	if v == 0 {
		v = 1
	}
	return v
}

// emitBeacon emits one malware beacon: the family queries several of its
// domains in a burst. DGA families walk a daily window of their domain
// sequence (like real DGAs that derive domains from the date), so the
// active domain subset rotates day by day.
func (s *Scenario) emitBeacon(hi int, t time.Time, f *family, day int, rng *mathx.RNG, emit func(Event)) {
	n := f.cfg.DomainsPerBeacon
	if n <= 0 {
		n = 2
	}
	window := len(f.domains)
	isDGA := f.cfg.Kind == KindDGAConficker || f.cfg.Kind == KindDGAWordlist || f.cfg.Kind == KindDGAHashHex
	var base int
	if isDGA && s.Config.Days > 0 {
		// The daily window slides across the whole sequence over the
		// capture; consecutive days overlap by half a window.
		window = maxInt(n*3, len(f.domains)/maxInt(1, s.Config.Days)*2)
		if window > len(f.domains) {
			window = len(f.domains)
		}
		base = (day * window / 2) % maxInt(1, len(f.domains)-window+1)
	}
	for i := 0; i < n; i++ {
		d := f.domains[base+rng.Intn(window)]
		// Spread the beacon's queries across the jitter window so family
		// domains rarely share exact minutes (this is what keeps the
		// temporal view the weakest of the three, as in Figure 7).
		dt := time.Duration(rng.Float64() * float64(s.Config.BeaconJitter))
		s.emitMalQuery(hi, t.Add(dt), f, d, rng, emit)
	}
}

func (s *Scenario) emitMalQuery(hi int, t time.Time, f *family, domain string, rng *mathx.RNG, emit func(Event)) {
	ev := Event{
		Time:     t,
		TxnID:    uint16(rng.Intn(1 << 16)),
		ClientIP: s.clientIP(hi, t),
		QName:    domain,
		QType:    dnswire.TypeA,
	}
	// Registered flux domains still fail to resolve occasionally —
	// rotation churn and registration lapses — with a per-domain rate so
	// the NX ratio carries no family-constant fingerprint.
	if f.registered[domain] && rng.Float64() > f.domainNX[domain] {
		ev.RCode = dnswire.RCodeNoError
		pool := f.domainIPs[domain]
		if len(pool) == 0 {
			pool = f.ips
		}
		n := 1 + rng.Intn(minInt(3, len(pool)))
		start := rng.Intn(len(pool))
		for i := 0; i < n; i++ {
			ev.Answers = append(ev.Answers, pool[(start+i)%len(pool)])
		}
		base := f.domainTTL[domain]
		if base == 0 {
			base = f.ttl
		}
		ev.TTL = jitterTTL(base, rng)
	} else {
		ev.RCode = dnswire.RCodeNXDomain
	}
	emit(ev)
}

// clientIP resolves the host's leased address at time t. Device timelines
// always have a covering lease; fall back to the last known lease at the
// window edges.
func (s *Scenario) clientIP(hi int, t time.Time) string {
	ls := s.leasesByDev[hi]
	for i := len(ls) - 1; i >= 0; i-- {
		if !ls[i].Start.After(t) {
			return ls[i].IP
		}
	}
	if len(ls) > 0 {
		return ls[0].IP
	}
	return "10.255.255.254"
}

// HostMAC returns the ground-truth MAC of host index hi.
func (s *Scenario) HostMAC(hi int) string { return s.hosts[hi].mac }

// InfectedHosts returns the MACs of hosts carrying any malware family.
func (s *Scenario) InfectedHosts() []string {
	var out []string
	for _, h := range s.hosts {
		if len(h.infections) > 0 {
			out = append(out, h.mac)
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package dnssim

import "sort"

// FlowSummary aggregates the netflow view of one malware family's C&C
// traffic as observed at the edge routers (§7.2.2): how many campus hosts
// talk to the family's servers, on which destination ports, and across
// how many server addresses. The paper uses these summaries to show that
// domains in one cluster exhibit a common traffic pattern.
type FlowSummary struct {
	Family    string
	Style     string
	Domains   int
	ServerIPs []string
	Ports     []int
	HostCount int
}

// FlowSummaries derives per-family flow summaries from the scenario's
// ground truth.
func (s *Scenario) FlowSummaries() []FlowSummary {
	out := make([]FlowSummary, 0, len(s.fams))
	for _, f := range s.fams {
		ports := []int{f.cfg.Port}
		if f.cfg.Port == 0 {
			ports = []int{80}
		}
		// Families with spam/clickfraud behavior also hit auxiliary ports,
		// mirroring the 80/1337/2710 pattern reported in the paper.
		switch f.cfg.Kind {
		case KindDGAWordlist:
			ports = append(ports, 80)
		case KindDGAHashHex:
			ports = append(ports, 1337, 2710)
		}
		sort.Ints(ports)
		ports = dedupInts(ports)
		out = append(out, FlowSummary{
			Family:    f.cfg.Name,
			Style:     styleFor(f.cfg.Kind),
			Domains:   len(f.domains),
			ServerIPs: append([]string(nil), f.ips...),
			Ports:     ports,
			HostCount: len(f.infected),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Family < out[j].Family })
	return out
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

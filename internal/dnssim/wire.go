package dnssim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dnswire"
)

// Packets converts an event into the query and response wire-format
// packets a capture at the campus edge routers would record, exercising
// the real RFC 1035 encoder. NXDOMAIN responses carry no answer records.
func Packets(ev Event) (query, response []byte, err error) {
	q := &dnswire.Message{
		Header: dnswire.Header{ID: ev.TxnID, RecursionDesired: true},
		Questions: []dnswire.Question{
			{Name: ev.QName, Type: ev.QType, Class: dnswire.ClassIN},
		},
	}
	query, err = dnswire.Encode(q)
	if err != nil {
		return nil, nil, fmt.Errorf("encoding query for %q: %w", ev.QName, err)
	}

	r := &dnswire.Message{
		Header: dnswire.Header{
			ID:                 ev.TxnID,
			Response:           true,
			RecursionDesired:   true,
			RecursionAvailable: true,
			RCode:              ev.RCode,
		},
		Questions: q.Questions,
	}
	for _, a := range ev.Answers {
		ip, perr := parseIPv4(a)
		if perr != nil {
			return nil, nil, fmt.Errorf("event for %q: %w", ev.QName, perr)
		}
		r.Answers = append(r.Answers, dnswire.ARecord(ev.QName, ev.TTL, ip))
	}
	response, err = dnswire.Encode(r)
	if err != nil {
		return nil, nil, fmt.Errorf("encoding response for %q: %w", ev.QName, err)
	}
	return query, response, nil
}

func parseIPv4(s string) ([4]byte, error) {
	var ip [4]byte
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("dnssim: bad IPv4 %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return ip, fmt.Errorf("dnssim: bad IPv4 %q", s)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

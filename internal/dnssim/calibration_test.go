package dnssim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/etld"
)

// The calibration features exist to keep the synthetic data from being
// artificially easy for the paper's baselines; these tests pin the
// behaviors down.

func TestBenignDomainsHaveNXNoise(t *testing.T) {
	s := smallScenario(t)
	nxByDomain := make(map[string]int)
	totByDomain := make(map[string]int)
	s.Generate(func(ev Event) {
		d, err := etld.E2LD(ev.QName)
		if err != nil {
			return
		}
		l, ok := s.Truth(d)
		if !ok || l.Malicious {
			return
		}
		totByDomain[d]++
		if ev.RCode == dnswire.RCodeNXDomain {
			nxByDomain[d]++
		}
	})
	withNX := 0
	for d, tot := range totByDomain {
		if tot >= 50 && nxByDomain[d] > 0 {
			withNX++
		}
	}
	if withNX < 10 {
		t.Errorf("only %d well-observed benign domains ever NXDOMAIN; real traffic has many", withNX)
	}
}

func TestRegisteredMaliciousDomainsSometimesNX(t *testing.T) {
	s := smallScenario(t)
	resolvedAndNX := 0
	resolvedOnly := 0
	type counts struct{ ok, nx int }
	perDomain := make(map[string]*counts)
	s.Generate(func(ev Event) {
		d, err := etld.E2LD(ev.QName)
		if err != nil {
			return
		}
		l, okT := s.Truth(d)
		if !okT || !l.Malicious {
			return
		}
		c := perDomain[d]
		if c == nil {
			c = &counts{}
			perDomain[d] = c
		}
		if ev.RCode == dnswire.RCodeNXDomain {
			c.nx++
		} else {
			c.ok++
		}
	})
	for _, c := range perDomain {
		if c.ok > 20 {
			if c.nx > 0 {
				resolvedAndNX++
			} else {
				resolvedOnly++
			}
		}
	}
	if resolvedAndNX == 0 {
		t.Error("no registered malicious domain ever NXDOMAINs; zero-NX would be a benign tell")
	}
}

func TestFlashBenignDomainsAreShortLived(t *testing.T) {
	cfg := SmallScenario(61)
	cfg.Days = 7 // longer window so flash windows are visibly shorter
	s := NewScenario(cfg)
	short, long := 0, 0
	for i := range s.benign {
		span := s.benign[i].activeTo - s.benign[i].activeFrom + 1
		if span < cfg.Days {
			short++
		} else {
			long++
		}
	}
	if short == 0 || long == 0 {
		t.Fatalf("flash mix degenerate: %d short, %d long", short, long)
	}
	frac := float64(short) / float64(short+long)
	if frac < 0.15 || frac > 0.5 {
		t.Errorf("flash fraction %.2f outside configured ~0.3 band", frac)
	}
}

func TestFlashDomainsRespectWindows(t *testing.T) {
	cfg := SmallScenario(62)
	cfg.Days = 7
	s := NewScenario(cfg)
	window := make(map[string][2]int)
	for i := range s.benign {
		window[s.benign[i].e2ld] = [2]int{s.benign[i].activeFrom, s.benign[i].activeTo}
	}
	s.Generate(func(ev Event) {
		d, err := etld.E2LD(ev.QName)
		if err != nil {
			return
		}
		w, ok := window[d]
		if !ok {
			return // malicious, mega, or NX-noise name
		}
		day := int(ev.Time.Sub(cfg.Start) / (24 * time.Hour))
		if day < w[0] || day > w[1] {
			// NX-noise subdomains share the e2LD; only NOERROR page
			// queries are window-bound.
			if ev.RCode == dnswire.RCodeNoError {
				t.Fatalf("domain %s queried on day %d outside window %v", d, day, w)
			}
		}
	})
}

func TestRomanizedNamesPresent(t *testing.T) {
	s := smallScenario(t)
	nonDictionary := 0
	total := 0
	for i := range s.benign {
		name, _, _ := strings.Cut(s.benign[i].e2ld, ".")
		total++
		hasWord := false
		for _, w := range benignWords {
			if len(w) >= 3 && strings.Contains(name, w) {
				hasWord = true
				break
			}
		}
		if !hasWord {
			nonDictionary++
		}
	}
	if frac := float64(nonDictionary) / float64(total); frac < 0.1 {
		t.Errorf("only %.0f%% of benign names are non-dictionary; lexical baseline would be too easy", 100*frac)
	}
}

func TestCDNDomainsAccumulateManyIPs(t *testing.T) {
	s := smallScenario(t)
	ips := make(map[string]map[string]bool)
	s.Generate(func(ev Event) {
		d, err := etld.E2LD(ev.QName)
		if err != nil {
			return
		}
		if ips[d] == nil {
			ips[d] = make(map[string]bool)
		}
		for _, a := range ev.Answers {
			ips[d][a] = true
		}
	})
	// Pool-backed benign domains must grow beyond their initial 1-4
	// addresses when observed often enough.
	grew := 0
	for i := range s.benign {
		if s.benign[i].pool == nil {
			continue
		}
		if len(ips[s.benign[i].e2ld]) > 4 {
			grew++
		}
	}
	if grew < 5 {
		t.Errorf("only %d CDN-backed domains resolved to >4 addresses", grew)
	}
}

func TestConfickerTLDRestriction(t *testing.T) {
	cfg := SmallScenario(63)
	cfg.Families = []FamilyConfig{{
		Name: "conficker-ws", Kind: KindDGAConficker, TLDs: []string{"ws"},
		Domains: 30, RegisteredFrac: 0.5, InfectedHosts: 8,
		BeaconsPerDay: 10, DomainsPerBeacon: 3, FluxIPs: 6, Port: 80,
	}}
	s := NewScenario(cfg)
	for _, d := range s.Families()["conficker-ws"] {
		if !strings.HasSuffix(d, ".ws") {
			t.Fatalf("family domain %s not on .ws", d)
		}
	}
}

func TestBeaconJitterSpreadsQueries(t *testing.T) {
	// With the default 20-minute jitter, one beacon's family queries must
	// not all land in the same minute.
	s := smallScenario(t)
	sameMinute, spread := 0, 0
	var lastT time.Time
	var lastFam string
	s.Generate(func(ev Event) {
		d, err := etld.E2LD(ev.QName)
		if err != nil {
			return
		}
		l, ok := s.Truth(d)
		if !ok || !l.Malicious {
			return
		}
		if l.Family == lastFam && !lastT.IsZero() {
			// Consecutive same-family events from the per-host stream
			// approximate one beacon's queries.
			gap := ev.Time.Sub(lastT)
			if gap < 0 {
				gap = -gap
			}
			if gap < time.Minute {
				sameMinute++
			} else if gap < 30*time.Minute {
				spread++
			}
		}
		lastT = ev.Time
		lastFam = l.Family
	})
	if spread == 0 {
		t.Fatal("no beacon queries spread beyond one minute; jitter not applied")
	}
	if sameMinute > spread {
		t.Errorf("beacon queries cluster in single minutes (%d same vs %d spread)", sameMinute, spread)
	}
}

package pipeline

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/dnswire"
)

// The text log format is one tab-separated line per joined observation:
//
//	RFC3339Nano  txnid  client  qname  qtype  rcode  ttl  ip1,ip2,...
//
// An empty answer list is written as "-". This is the on-disk format of
// cmd/dnsgen and the input of cmd/maldetect.

// WriteLog serializes inputs to w in the text log format.
func WriteLog(w io.Writer, inputs []Input) error {
	bw := bufio.NewWriter(w)
	for i := range inputs {
		if err := WriteLogLine(bw, inputs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteLogLine writes a single observation line.
func WriteLogLine(w io.Writer, in Input) error {
	answers := "-"
	if len(in.Answers) > 0 {
		answers = strings.Join(in.Answers, ",")
	}
	_, err := fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\t%d\t%d\t%s\n",
		in.Time.UTC().Format(time.RFC3339Nano), in.TxnID, in.ClientIP,
		in.QName, in.QType, in.RCode, in.TTL, answers)
	return err
}

// ReadLog parses the text log format from r, calling emit for every
// observation. It fails fast on the first malformed line, reporting its
// line number.
func ReadLog(r io.Reader, emit func(Input)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		in, err := ParseLogLine(line)
		if err != nil {
			return fmt.Errorf("pipeline: line %d: %w", lineNo, err)
		}
		emit(in)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("pipeline: reading log: %w", err)
	}
	return nil
}

// ParseLogLine parses one text log line.
func ParseLogLine(line string) (Input, error) {
	fields := strings.Split(line, "\t")
	if len(fields) != 8 {
		return Input{}, fmt.Errorf("want 8 fields, got %d", len(fields))
	}
	t, err := time.Parse(time.RFC3339Nano, fields[0])
	if err != nil {
		return Input{}, fmt.Errorf("bad timestamp %q: %w", fields[0], err)
	}
	txn, err := strconv.ParseUint(fields[1], 10, 16)
	if err != nil {
		return Input{}, fmt.Errorf("bad txn id %q: %w", fields[1], err)
	}
	qtype, err := dnswire.ParseType(fields[4])
	if err != nil {
		return Input{}, err
	}
	rcode, err := strconv.ParseUint(fields[5], 10, 8)
	if err != nil {
		return Input{}, fmt.Errorf("bad rcode %q: %w", fields[5], err)
	}
	ttl, err := strconv.ParseUint(fields[6], 10, 32)
	if err != nil {
		return Input{}, fmt.Errorf("bad ttl %q: %w", fields[6], err)
	}
	in := Input{
		Time:     t,
		TxnID:    uint16(txn),
		ClientIP: fields[2],
		QName:    fields[3],
		QType:    qtype,
		RCode:    dnswire.RCode(rcode),
		TTL:      uint32(ttl),
	}
	if fields[7] != "-" {
		in.Answers = strings.Split(fields[7], ",")
	}
	return in, nil
}

package pipeline

import (
	"testing"
	"time"

	"repro/internal/dnssim"
	"repro/internal/mathx"
)

// Fault-injection tests: real captures lose, duplicate, and reorder
// packets; the joiner must degrade gracefully, never panic, and never
// fabricate records.

func joinerTraffic(t *testing.T, seed uint64, limit int) []dnssim.Event {
	t.Helper()
	var events []dnssim.Event
	s := dnssim.NewScenario(dnssim.SmallScenario(seed))
	s.Generate(func(ev dnssim.Event) {
		if len(events) < limit {
			events = append(events, ev)
		}
	})
	return events
}

func TestJoinerSurvivesResponseLoss(t *testing.T) {
	events := joinerTraffic(t, 91, 3000)
	j := NewJoiner()
	rng := mathx.NewRNG(1)
	joined, dropped := 0, 0
	for _, ev := range events {
		qb, rb, err := dnssim.Packets(ev)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := j.Offer(ev.Time, ev.ClientIP, DirQuery, qb); err != nil {
			t.Fatal(err)
		}
		if rng.Float64() < 0.3 { // 30% response loss
			dropped++
			continue
		}
		if _, ok, err := j.Offer(ev.Time.Add(time.Millisecond), ev.ClientIP, DirResponse, rb); err != nil {
			t.Fatal(err)
		} else if ok {
			joined++
		}
	}
	j.Flush()
	if joined == 0 || dropped == 0 {
		t.Fatalf("degenerate run: joined=%d dropped=%d", joined, dropped)
	}
	// Every lost response leaves an unmatched query behind.
	if j.Unmatched() < dropped {
		t.Errorf("unmatched %d < dropped %d", j.Unmatched(), dropped)
	}
	if j.Joined() != joined {
		t.Errorf("Joined() = %d, want %d", j.Joined(), joined)
	}
}

func TestJoinerSurvivesDuplicateResponses(t *testing.T) {
	events := joinerTraffic(t, 92, 1000)
	j := NewJoiner()
	joined, extra := 0, 0
	for _, ev := range events {
		qb, rb, err := dnssim.Packets(ev)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := j.Offer(ev.Time, ev.ClientIP, DirQuery, qb); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := j.Offer(ev.Time, ev.ClientIP, DirResponse, rb); err != nil {
			t.Fatal(err)
		} else if ok {
			joined++
		}
		// Retransmitted response: must not produce a second record.
		if _, ok, err := j.Offer(ev.Time, ev.ClientIP, DirResponse, rb); err != nil {
			t.Fatal(err)
		} else if ok {
			extra++
		}
	}
	if joined == 0 {
		t.Fatal("nothing joined")
	}
	if extra != 0 {
		t.Fatalf("duplicate responses produced %d extra records", extra)
	}
}

func TestJoinerToleratesMisdirectedPackets(t *testing.T) {
	events := joinerTraffic(t, 93, 500)
	j := NewJoiner()
	for _, ev := range events {
		qb, rb, err := dnssim.Packets(ev)
		if err != nil {
			t.Fatal(err)
		}
		// Response offered as a query and vice versa: both are ignored,
		// not errors.
		if _, ok, err := j.Offer(ev.Time, ev.ClientIP, DirQuery, rb); err != nil || ok {
			t.Fatalf("response-as-query: ok=%v err=%v", ok, err)
		}
		if _, ok, err := j.Offer(ev.Time, ev.ClientIP, DirResponse, qb); err != nil || ok {
			t.Fatalf("query-as-response: ok=%v err=%v", ok, err)
		}
	}
	if j.Joined() != 0 {
		t.Fatalf("misdirected packets joined %d records", j.Joined())
	}
}

func TestJoinerExpiresStalePending(t *testing.T) {
	j := NewJoiner()
	base := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	events := joinerTraffic(t, 94, 6000)
	// Offer only queries so the pending table grows past the sweep
	// threshold, with capture time advancing well past the timeout.
	for i, ev := range events {
		qb, _, err := dnssim.Packets(ev)
		if err != nil {
			t.Fatal(err)
		}
		at := base.Add(time.Duration(i) * time.Second)
		if _, _, err := j.Offer(at, ev.ClientIP, DirQuery, qb); err != nil {
			t.Fatal(err)
		}
	}
	if j.Unmatched() == 0 {
		t.Error("stale pending queries were never expired")
	}
}

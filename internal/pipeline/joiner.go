package pipeline

import (
	"fmt"
	"time"

	"repro/internal/dnswire"
)

// Joiner matches DNS response packets back to their queries by
// (client address, transaction id), reconstructing joined observations
// from a raw packet capture the way the paper's collector does. Queries
// that never see a response are evicted after Timeout and reported
// through Unmatched.
type Joiner struct {
	// Timeout is how long a pending query waits for its response
	// (default 5s of capture time).
	Timeout time.Duration

	pending   map[joinKey]pendingQuery
	unmatched int
	emitted   int
}

type joinKey struct {
	client string
	id     uint16
}

type pendingQuery struct {
	at    time.Time
	qname string
	qtype dnswire.Type
}

// NewJoiner returns a Joiner with the default timeout.
func NewJoiner() *Joiner {
	return &Joiner{Timeout: 5 * time.Second, pending: make(map[joinKey]pendingQuery)}
}

// PacketDirection says whether a captured packet travels from a client to
// the resolver (a query) or back (a response).
type PacketDirection int

// Packet directions.
const (
	DirQuery PacketDirection = iota + 1
	DirResponse
)

// Offer feeds one captured packet. clientAddr is the campus-side address
// (source of queries, destination of responses). When the packet
// completes a pair, the joined Input is returned with ok true.
//
// Out-of-order and duplicate packets are tolerated: a response with no
// pending query is dropped, and a retransmitted query overwrites its
// predecessor.
func (j *Joiner) Offer(at time.Time, clientAddr string, dir PacketDirection, pkt []byte) (Input, bool, error) {
	msg, err := dnswire.Decode(pkt)
	if err != nil {
		return Input{}, false, fmt.Errorf("pipeline: undecodable packet: %w", err)
	}
	if len(msg.Questions) == 0 {
		return Input{}, false, nil
	}
	key := joinKey{client: clientAddr, id: msg.Header.ID}
	j.expire(at)

	switch dir {
	case DirQuery:
		if msg.Header.Response {
			return Input{}, false, nil
		}
		// A pending entry under the same (client, id) is displaced: either
		// a retransmission or an id collision. Count it as unmatched so
		// dropped responses are fully accounted for.
		if _, exists := j.pending[key]; exists {
			j.unmatched++
		}
		j.pending[key] = pendingQuery{
			at:    at,
			qname: msg.Questions[0].Name,
			qtype: msg.Questions[0].Type,
		}
		return Input{}, false, nil
	case DirResponse:
		if !msg.Header.Response {
			return Input{}, false, nil
		}
		q, ok := j.pending[key]
		if !ok {
			return Input{}, false, nil
		}
		delete(j.pending, key)
		in := Input{
			Time:     q.at,
			TxnID:    msg.Header.ID,
			ClientIP: clientAddr,
			QName:    q.qname,
			QType:    q.qtype,
			RCode:    msg.Header.RCode,
		}
		for _, a := range msg.Answers {
			if ip, ok := a.IPv4(); ok {
				in.Answers = append(in.Answers,
					fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3]))
				in.TTL = a.TTL
			}
		}
		j.emitted++
		return in, true, nil
	default:
		return Input{}, false, fmt.Errorf("pipeline: unknown packet direction %d", dir)
	}
}

// expire drops pending queries older than Timeout relative to now.
func (j *Joiner) expire(now time.Time) {
	if len(j.pending) < 4096 {
		return // amortize: only sweep when the table grows
	}
	for k, q := range j.pending {
		if now.Sub(q.at) > j.Timeout {
			delete(j.pending, k)
			j.unmatched++
		}
	}
}

// Flush evicts all still-pending queries, counting them as unmatched.
func (j *Joiner) Flush() {
	j.unmatched += len(j.pending)
	j.pending = make(map[joinKey]pendingQuery)
}

// Unmatched reports queries evicted without a response.
func (j *Joiner) Unmatched() int { return j.unmatched }

// Joined reports the number of successfully joined pairs.
func (j *Joiner) Joined() int { return j.emitted }

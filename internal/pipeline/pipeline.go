// Package pipeline implements the data collection and pre-processing
// component of the paper's architecture (Figure 2, first stage): joining
// DNS query and response packets, pinning dynamic client addresses to
// physical devices via DHCP logs, aggregating hostnames to effective
// second-level domains, and accumulating the per-domain observations that
// the behavioral-modeling and baseline stages consume.
//
//maldlint:deterministic
package pipeline

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dhcp"
	"repro/internal/dnswire"
	"repro/internal/etld"
)

// Input is one joined DNS observation: a query and its response. It
// mirrors the record schema the paper's collector extracts (§2).
type Input struct {
	Time     time.Time
	TxnID    uint16
	ClientIP string
	QName    string
	QType    dnswire.Type
	RCode    dnswire.RCode
	Answers  []string
	TTL      uint32
}

// DomainStats accumulates every per-e2LD observation downstream stages
// need: the host, IP, and minute sets that define the three bipartite
// graphs (§4.1), plus the volume/TTL/timing aggregates the Exposure
// baseline's feature extractor uses (§8.2).
type DomainStats struct {
	E2LD       string
	FirstSeen  time.Time
	LastSeen   time.Time
	QueryCount int
	NXCount    int

	// Hosts is the set of device identities (MACs, or raw client IPs
	// when no DHCP lease covers the query) that queried the domain.
	Hosts map[string]struct{}
	// IPs is the set of resolved addresses.
	IPs map[string]struct{}
	// Minutes is the set of minute indices (since the processor start)
	// in which the domain was queried.
	Minutes map[int]struct{}
	// FQDNs is the set of distinct queried hostnames under the e2LD.
	FQDNs map[string]struct{}

	// TTL aggregates over NOERROR responses.
	TTLSum  float64
	TTLMin  uint32
	TTLMax  uint32
	TTLVals map[uint32]struct{}
	// PerDay holds query counts per day index.
	PerDay []int
	// Hours histograms queries by hour of day.
	Hours [24]int
	// AnswerCountSum accumulates answers-per-response for the mean.
	AnswerCountSum int
}

// BucketStat is one point of the Figure 1 traffic series.
type BucketStat struct {
	Start      time.Time
	Queries    int
	UniqueFQDN int
	UniqueE2LD int
}

// Config parameterizes a Processor.
type Config struct {
	// Start anchors minute and day indices; observations before Start are
	// clamped to index 0.
	Start time.Time
	// Days bounds the PerDay histograms.
	Days int
	// Bucket is the Figure 1 series resolution (default 24h).
	Bucket time.Duration
	// DHCP, when non-nil, pins client IPs to device MACs.
	DHCP *dhcp.Resolver
	// Suffixes is the public-suffix table (default etld.Default).
	Suffixes *etld.Table
}

// Processor consumes joined DNS observations and maintains the aggregates.
// It is not safe for concurrent use; feed it from a single goroutine (the
// generator's stream is single-threaded too).
type Processor struct {
	cfg     Config
	stats   map[string]*DomainStats
	devices map[string]struct{}

	buckets      map[int]*bucketAccum
	totalQueries int
	skipped      int
}

type bucketAccum struct {
	queries int
	fqdns   map[string]struct{}
	e2lds   map[string]struct{}
}

// NewProcessor returns a Processor for cfg.
func NewProcessor(cfg Config) *Processor {
	if cfg.Bucket <= 0 {
		cfg.Bucket = 24 * time.Hour
	}
	if cfg.Suffixes == nil {
		cfg.Suffixes = etld.Default
	}
	if cfg.Days <= 0 {
		cfg.Days = 31
	}
	return &Processor{
		cfg:     cfg,
		stats:   make(map[string]*DomainStats),
		devices: make(map[string]struct{}),
		buckets: make(map[int]*bucketAccum),
	}
}

// Consume folds one observation into the aggregates. Observations whose
// query name yields no e2LD (bare TLDs, empty names) are counted as
// skipped and otherwise ignored.
func (p *Processor) Consume(in Input) {
	e2, err := p.cfg.Suffixes.E2LD(in.QName)
	if err != nil {
		p.skipped++
		return
	}
	p.totalQueries++

	device := in.ClientIP
	if p.cfg.DHCP != nil {
		if mac, ok := p.cfg.DHCP.MACAt(in.ClientIP, in.Time); ok {
			device = mac
		}
	}
	p.devices[device] = struct{}{}

	st := p.stats[e2]
	if st == nil {
		st = &DomainStats{
			E2LD:      e2,
			FirstSeen: in.Time,
			LastSeen:  in.Time,
			Hosts:     make(map[string]struct{}),
			IPs:       make(map[string]struct{}),
			Minutes:   make(map[int]struct{}),
			FQDNs:     make(map[string]struct{}),
			TTLVals:   make(map[uint32]struct{}),
			PerDay:    make([]int, p.cfg.Days),
		}
		p.stats[e2] = st
	}
	if in.Time.Before(st.FirstSeen) {
		st.FirstSeen = in.Time
	}
	if in.Time.After(st.LastSeen) {
		st.LastSeen = in.Time
	}
	st.QueryCount++
	st.Hosts[device] = struct{}{}
	st.FQDNs[in.QName] = struct{}{}
	st.Minutes[p.minuteIndex(in.Time)] = struct{}{}
	st.Hours[in.Time.Hour()]++
	if day := p.dayIndex(in.Time); day >= 0 && day < len(st.PerDay) {
		st.PerDay[day]++
	}

	if in.RCode == dnswire.RCodeNXDomain {
		st.NXCount++
	} else {
		for _, ip := range in.Answers {
			st.IPs[ip] = struct{}{}
		}
		st.AnswerCountSum += len(in.Answers)
		if len(in.Answers) > 0 {
			ttl := in.TTL
			st.TTLSum += float64(ttl)
			st.TTLVals[ttl] = struct{}{}
			if len(st.TTLVals) == 1 {
				st.TTLMin, st.TTLMax = ttl, ttl
			} else {
				if ttl < st.TTLMin {
					st.TTLMin = ttl
				}
				if ttl > st.TTLMax {
					st.TTLMax = ttl
				}
			}
		}
	}

	bi := p.bucketIndex(in.Time)
	b := p.buckets[bi]
	if b == nil {
		b = &bucketAccum{fqdns: make(map[string]struct{}), e2lds: make(map[string]struct{})}
		p.buckets[bi] = b
	}
	b.queries++
	b.fqdns[in.QName] = struct{}{}
	b.e2lds[e2] = struct{}{}
}

func (p *Processor) minuteIndex(t time.Time) int {
	m := int(t.Sub(p.cfg.Start) / time.Minute)
	if m < 0 {
		return 0
	}
	return m
}

func (p *Processor) dayIndex(t time.Time) int {
	return int(t.Sub(p.cfg.Start) / (24 * time.Hour))
}

func (p *Processor) bucketIndex(t time.Time) int {
	i := int(t.Sub(p.cfg.Start) / p.cfg.Bucket)
	if i < 0 {
		return 0
	}
	return i
}

// Stats returns the per-domain aggregates, keyed by e2LD. The returned
// map is the processor's live state; treat it as read-only.
func (p *Processor) Stats() map[string]*DomainStats { return p.stats }

// Config returns the processor's effective (defaulted) configuration.
func (p *Processor) Config() Config { return p.cfg }

// MismatchError reports why a set of processors cannot be merged:
// their configurations disagree on a field that would make minute, day,
// or bucket indices mean different things in different shards, or their
// day cursors have drifted further apart than the caller's window
// allows. Field is one of "start", "bucket", "suffixes", or "days";
// Want/Got render the disagreeing values. A shard supervisor acts on
// the typed error by quarantining the shard whose aggregate disagrees
// instead of aborting the whole merge.
type MismatchError struct {
	// Field names the disagreeing configuration dimension.
	Field string
	// Want and Got render the expected and offending values.
	Want, Got string
}

// Error implements error.
func (e *MismatchError) Error() string {
	return fmt.Sprintf("pipeline: merge mismatch on %s: want %s, got %s", e.Field, e.Want, e.Got)
}

// Merge combines the aggregates of several processors into one new
// processor, leaving the inputs untouched (their state is deep-copied,
// never aliased). It is how sharded aggregation composes: the streaming
// mode keeps one processor per day and merges the current window at
// each remodel instead of replaying raw observations.
//
// All inputs must share the same Start, Bucket, and Suffixes so minute,
// day, and bucket indices mean the same thing in every shard; Days may
// differ (the merged processor takes the maximum) and DHCP is not
// consulted (device pinning already happened at Consume time). The
// merge is deterministic: every combination step — set unions, count
// sums, min/max folds — is commutative and associative, so the merged
// aggregates are identical regardless of argument order or internal map
// iteration order. Configuration disagreements surface as a typed
// *MismatchError.
func Merge(ps ...*Processor) (*Processor, error) {
	return MergeWindow(0, ps...)
}

// MergeWindow is Merge with a day-cursor guard: when window > 0, inputs
// whose Days cursors disagree by more than window days are rejected
// with a *MismatchError on field "days". A rolling deployment merging
// the per-day processors of a W-day window expects cursors to span at
// most W consecutive days; a wider spread means a stale or corrupt
// aggregate (for example a shard restored from the wrong generation)
// slipped in, and merging it would silently rewrite history. window <= 0
// disables the guard, which is plain Merge.
func MergeWindow(window int, ps ...*Processor) (*Processor, error) {
	if len(ps) == 0 {
		return nil, errors.New("pipeline: Merge needs at least one processor")
	}
	base := ps[0].cfg
	minDays, maxDays := base.Days, base.Days
	for _, p := range ps[1:] {
		switch {
		case !p.cfg.Start.Equal(base.Start):
			return nil, &MismatchError{
				Field: "start",
				Want:  base.Start.UTC().Format(time.RFC3339),
				Got:   p.cfg.Start.UTC().Format(time.RFC3339),
			}
		case p.cfg.Bucket != base.Bucket:
			return nil, &MismatchError{
				Field: "bucket",
				Want:  base.Bucket.String(),
				Got:   p.cfg.Bucket.String(),
			}
		case p.cfg.Suffixes != base.Suffixes:
			return nil, &MismatchError{
				Field: "suffixes",
				Want:  fmt.Sprintf("%p", base.Suffixes),
				Got:   fmt.Sprintf("%p", p.cfg.Suffixes),
			}
		}
		if p.cfg.Days > maxDays {
			maxDays = p.cfg.Days
		}
		if p.cfg.Days < minDays {
			minDays = p.cfg.Days
		}
	}
	if window > 0 && maxDays-minDays > window {
		return nil, &MismatchError{
			Field: "days",
			Want:  fmt.Sprintf("cursors within %d day(s)", window),
			Got:   fmt.Sprintf("cursors span days %d..%d", minDays, maxDays),
		}
	}
	cfg := base
	cfg.Days = maxDays
	out := NewProcessor(cfg)
	for _, p := range ps {
		out.absorb(p)
	}
	return out, nil
}

// absorb folds o's aggregates into p, deep-copying every container.
func (p *Processor) absorb(o *Processor) {
	p.totalQueries += o.totalQueries
	p.skipped += o.skipped
	for d := range o.devices {
		p.devices[d] = struct{}{}
	}
	for e2, st := range o.stats {
		dst := p.stats[e2]
		if dst == nil {
			dst = &DomainStats{
				E2LD:    e2,
				Hosts:   make(map[string]struct{}, len(st.Hosts)),
				IPs:     make(map[string]struct{}, len(st.IPs)),
				Minutes: make(map[int]struct{}, len(st.Minutes)),
				FQDNs:   make(map[string]struct{}, len(st.FQDNs)),
				TTLVals: make(map[uint32]struct{}, len(st.TTLVals)),
				PerDay:  make([]int, p.cfg.Days),
			}
			p.stats[e2] = dst
		}
		dst.mergeFrom(st)
	}
	for i, ob := range o.buckets {
		b := p.buckets[i]
		if b == nil {
			b = &bucketAccum{
				fqdns: make(map[string]struct{}, len(ob.fqdns)),
				e2lds: make(map[string]struct{}, len(ob.e2lds)),
			}
			p.buckets[i] = b
		}
		b.queries += ob.queries
		for f := range ob.fqdns {
			b.fqdns[f] = struct{}{}
		}
		for e := range ob.e2lds {
			b.e2lds[e] = struct{}{}
		}
	}
}

// mergeFrom folds o's observations into s. A fresh s (QueryCount 0 —
// Consume never stores a zero-count domain) adopts o's sighting window;
// otherwise windows, counts, and sets combine commutatively.
func (s *DomainStats) mergeFrom(o *DomainStats) {
	if s.QueryCount == 0 {
		s.FirstSeen, s.LastSeen = o.FirstSeen, o.LastSeen
	} else {
		if o.FirstSeen.Before(s.FirstSeen) {
			s.FirstSeen = o.FirstSeen
		}
		if o.LastSeen.After(s.LastSeen) {
			s.LastSeen = o.LastSeen
		}
	}
	s.QueryCount += o.QueryCount
	s.NXCount += o.NXCount
	s.AnswerCountSum += o.AnswerCountSum
	for h := range o.Hosts {
		s.Hosts[h] = struct{}{}
	}
	for ip := range o.IPs {
		s.IPs[ip] = struct{}{}
	}
	for m := range o.Minutes {
		s.Minutes[m] = struct{}{}
	}
	for f := range o.FQDNs {
		s.FQDNs[f] = struct{}{}
	}
	if len(o.TTLVals) > 0 {
		if len(s.TTLVals) == 0 {
			s.TTLMin, s.TTLMax = o.TTLMin, o.TTLMax
		} else {
			if o.TTLMin < s.TTLMin {
				s.TTLMin = o.TTLMin
			}
			if o.TTLMax > s.TTLMax {
				s.TTLMax = o.TTLMax
			}
		}
		for v := range o.TTLVals {
			s.TTLVals[v] = struct{}{}
		}
	}
	s.TTLSum += o.TTLSum
	for i, c := range o.PerDay {
		if i < len(s.PerDay) {
			s.PerDay[i] += c
		}
	}
	for h, c := range o.Hours {
		s.Hours[h] += c
	}
}

// DeviceCount returns the number of distinct device identities observed.
func (p *Processor) DeviceCount() int { return len(p.devices) }

// TotalQueries returns the number of observations successfully consumed.
func (p *Processor) TotalQueries() int { return p.totalQueries }

// Skipped returns the number of observations dropped for lacking an e2LD.
func (p *Processor) Skipped() int { return p.skipped }

// Series returns the Figure 1 traffic series: one point per bucket from
// the first to the last non-empty bucket, inclusive; empty buckets in
// between appear with zero counts.
func (p *Processor) Series() []BucketStat {
	if len(p.buckets) == 0 {
		return nil
	}
	lo, hi := -1, -1
	for i := range p.buckets {
		if lo < 0 || i < lo {
			lo = i
		}
		if i > hi {
			hi = i
		}
	}
	out := make([]BucketStat, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		pt := BucketStat{Start: p.cfg.Start.Add(time.Duration(i) * p.cfg.Bucket)}
		if b := p.buckets[i]; b != nil {
			pt.Queries = b.queries
			pt.UniqueFQDN = len(b.fqdns)
			pt.UniqueE2LD = len(b.e2lds)
		}
		out = append(out, pt)
	}
	return out
}

// MeanTTL returns the mean TTL over NOERROR responses, or 0 when none.
func (s *DomainStats) MeanTTL() float64 {
	n := s.QueryCount - s.NXCount
	if n <= 0 {
		return 0
	}
	return s.TTLSum / float64(n)
}

// ActiveDays returns how many distinct days the domain was queried.
func (s *DomainStats) ActiveDays() int {
	n := 0
	for _, c := range s.PerDay {
		if c > 0 {
			n++
		}
	}
	return n
}

// LifetimeDays returns the span in days between first and last sighting,
// minimum 1 when the domain was seen at all.
func (s *DomainStats) LifetimeDays() float64 {
	if s.QueryCount == 0 {
		return 0
	}
	d := s.LastSeen.Sub(s.FirstSeen).Hours() / 24
	if d < 1 {
		return 1
	}
	return d
}

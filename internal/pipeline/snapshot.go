package pipeline

// Processor snapshot/restore: the crash-safe streaming mode
// (internal/stream) checkpoints its per-day processors at every day
// boundary. A Snapshot is a plain exported value — gob-friendly, no
// maps of empty structs, sets flattened to sorted slices — that
// captures every aggregate a Processor holds. FromSnapshot rebuilds an
// equivalent Processor; the non-serializable configuration (the DHCP
// resolver and the public-suffix table, both consulted only at Consume
// time) is re-supplied by the caller.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/dhcp"
	"repro/internal/etld"
)

// Snapshot is the serializable state of a Processor. All set-valued
// aggregates are flattened to sorted slices, so encoding a snapshot is
// deterministic given the same aggregates.
type Snapshot struct {
	Start        time.Time
	Days         int
	Bucket       time.Duration
	TotalQueries int
	Skipped      int
	Devices      []string
	Domains      []DomainSnapshot
	Buckets      []BucketSnapshot
}

// DomainSnapshot is one domain's DomainStats with its sets flattened.
type DomainSnapshot struct {
	E2LD           string
	FirstSeen      time.Time
	LastSeen       time.Time
	QueryCount     int
	NXCount        int
	AnswerCountSum int
	Hosts          []string
	IPs            []string
	FQDNs          []string
	Minutes        []int
	TTLSum         float64
	TTLMin         uint32
	TTLMax         uint32
	TTLVals        []uint32
	PerDay         []int
	Hours          [24]int
}

// BucketSnapshot is one traffic-series bucket.
type BucketSnapshot struct {
	Index   int
	Queries int
	FQDNs   []string
	E2LDs   []string
}

// Snapshot captures the processor's full aggregate state.
func (p *Processor) Snapshot() *Snapshot {
	s := &Snapshot{
		Start:        p.cfg.Start,
		Days:         p.cfg.Days,
		Bucket:       p.cfg.Bucket,
		TotalQueries: p.totalQueries,
		Skipped:      p.skipped,
		Devices:      sortedKeys(p.devices),
	}
	s.Domains = make([]DomainSnapshot, 0, len(p.stats))
	for _, st := range p.stats {
		s.Domains = append(s.Domains, DomainSnapshot{
			E2LD:           st.E2LD,
			FirstSeen:      st.FirstSeen,
			LastSeen:       st.LastSeen,
			QueryCount:     st.QueryCount,
			NXCount:        st.NXCount,
			AnswerCountSum: st.AnswerCountSum,
			Hosts:          sortedKeys(st.Hosts),
			IPs:            sortedKeys(st.IPs),
			FQDNs:          sortedKeys(st.FQDNs),
			Minutes:        sortedInts(st.Minutes),
			TTLSum:         st.TTLSum,
			TTLMin:         st.TTLMin,
			TTLMax:         st.TTLMax,
			TTLVals:        sortedTTLs(st.TTLVals),
			PerDay:         append([]int(nil), st.PerDay...),
			Hours:          st.Hours,
		})
	}
	sort.Slice(s.Domains, func(i, j int) bool { return s.Domains[i].E2LD < s.Domains[j].E2LD })
	s.Buckets = make([]BucketSnapshot, 0, len(p.buckets))
	for i, b := range p.buckets {
		s.Buckets = append(s.Buckets, BucketSnapshot{
			Index:   i,
			Queries: b.queries,
			FQDNs:   sortedKeys(b.fqdns),
			E2LDs:   sortedKeys(b.e2lds),
		})
	}
	sort.Slice(s.Buckets, func(i, j int) bool { return s.Buckets[i].Index < s.Buckets[j].Index })
	return s
}

// RestoreConfig carries the non-serializable pieces of a Processor's
// configuration that a restored processor needs to keep consuming:
// device pinning and e2LD extraction.
type RestoreConfig struct {
	// DHCP, when non-nil, pins client IPs to device MACs for
	// observations consumed after the restore.
	DHCP *dhcp.Resolver
	// Suffixes is the public-suffix table (default etld.Default). It
	// must be the same table the snapshotted processor used, or merged
	// windows will mix incompatible e2LD groupings.
	Suffixes *etld.Table
}

// FromSnapshot rebuilds a Processor from a snapshot. The snapshot is
// validated — a corrupt or internally inconsistent snapshot returns an
// error, never a panic — and its state is deep-copied, so mutating the
// snapshot afterwards does not alias the processor.
func FromSnapshot(s *Snapshot, rc RestoreConfig) (*Processor, error) {
	if s == nil {
		return nil, errors.New("pipeline: nil snapshot")
	}
	if s.Days <= 0 || s.Bucket <= 0 {
		return nil, fmt.Errorf("pipeline: corrupt snapshot: days=%d bucket=%v", s.Days, s.Bucket)
	}
	if s.TotalQueries < 0 || s.Skipped < 0 {
		return nil, fmt.Errorf("pipeline: corrupt snapshot: negative counters")
	}
	p := NewProcessor(Config{
		Start:    s.Start,
		Days:     s.Days,
		Bucket:   s.Bucket,
		DHCP:     rc.DHCP,
		Suffixes: rc.Suffixes,
	})
	p.totalQueries = s.TotalQueries
	p.skipped = s.Skipped
	for _, d := range s.Devices {
		p.devices[d] = struct{}{}
	}
	for i := range s.Domains {
		ds := &s.Domains[i]
		if ds.E2LD == "" {
			return nil, fmt.Errorf("pipeline: corrupt snapshot: domain %d has empty e2LD", i)
		}
		if _, dup := p.stats[ds.E2LD]; dup {
			return nil, fmt.Errorf("pipeline: corrupt snapshot: duplicate domain %q", ds.E2LD)
		}
		if ds.QueryCount <= 0 || ds.NXCount < 0 || ds.NXCount > ds.QueryCount {
			return nil, fmt.Errorf("pipeline: corrupt snapshot: %q has %d queries, %d NX",
				ds.E2LD, ds.QueryCount, ds.NXCount)
		}
		if len(ds.PerDay) != s.Days {
			return nil, fmt.Errorf("pipeline: corrupt snapshot: %q PerDay length %d, want %d",
				ds.E2LD, len(ds.PerDay), s.Days)
		}
		st := &DomainStats{
			E2LD:           ds.E2LD,
			FirstSeen:      ds.FirstSeen,
			LastSeen:       ds.LastSeen,
			QueryCount:     ds.QueryCount,
			NXCount:        ds.NXCount,
			AnswerCountSum: ds.AnswerCountSum,
			Hosts:          toSet(ds.Hosts),
			IPs:            toSet(ds.IPs),
			FQDNs:          toSet(ds.FQDNs),
			Minutes:        toIntSet(ds.Minutes),
			TTLSum:         ds.TTLSum,
			TTLMin:         ds.TTLMin,
			TTLMax:         ds.TTLMax,
			TTLVals:        toTTLSet(ds.TTLVals),
			PerDay:         append([]int(nil), ds.PerDay...),
			Hours:          ds.Hours,
		}
		p.stats[ds.E2LD] = st
	}
	for i := range s.Buckets {
		bs := &s.Buckets[i]
		if bs.Index < 0 || bs.Queries < 0 {
			return nil, fmt.Errorf("pipeline: corrupt snapshot: bucket %d index=%d queries=%d",
				i, bs.Index, bs.Queries)
		}
		if _, dup := p.buckets[bs.Index]; dup {
			return nil, fmt.Errorf("pipeline: corrupt snapshot: duplicate bucket %d", bs.Index)
		}
		p.buckets[bs.Index] = &bucketAccum{
			queries: bs.Queries,
			fqdns:   toSet(bs.FQDNs),
			e2lds:   toSet(bs.E2LDs),
		}
	}
	return p, nil
}

func sortedKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedInts(m map[int]struct{}) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedTTLs(m map[uint32]struct{}) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func toSet(ss []string) map[string]struct{} {
	m := make(map[string]struct{}, len(ss))
	for _, s := range ss {
		m[s] = struct{}{}
	}
	return m
}

func toIntSet(ss []int) map[int]struct{} {
	m := make(map[int]struct{}, len(ss))
	for _, s := range ss {
		m[s] = struct{}{}
	}
	return m
}

func toTTLSet(ss []uint32) map[uint32]struct{} {
	m := make(map[uint32]struct{}, len(ss))
	for _, s := range ss {
		m[s] = struct{}{}
	}
	return m
}

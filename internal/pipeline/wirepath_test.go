package pipeline

import (
	"testing"
	"time"

	"repro/internal/dnssim"
)

// TestWirePathEquivalence drives the full capture path of the paper's
// Figure 2: generator events are encoded to RFC 1035 packets, offered to
// the Joiner as separate query/response captures, and the joined records
// are aggregated. The resulting per-domain statistics must match the
// direct (in-memory) consumption path on every field the behavioral
// models read.
func TestWirePathEquivalence(t *testing.T) {
	s := dnssim.NewScenario(dnssim.SmallScenario(123))

	direct := NewProcessor(Config{Start: s.Config.Start, Days: s.Config.Days})
	wire := NewProcessor(Config{Start: s.Config.Start, Days: s.Config.Days})
	j := NewJoiner()

	processed := 0
	s.Generate(func(ev dnssim.Event) {
		if processed >= 30000 {
			return
		}
		processed++
		direct.Consume(Input(ev))

		qb, rb, err := dnssim.Packets(ev)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, err := j.Offer(ev.Time, ev.ClientIP, DirQuery, qb); err != nil || ok {
			t.Fatalf("query offer: ok=%v err=%v", ok, err)
		}
		in, ok, err := j.Offer(ev.Time.Add(10*time.Millisecond), ev.ClientIP, DirResponse, rb)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			// A duplicate (client, txn-id) pair overwrote the pending
			// query; tolerate by re-consuming the direct record so both
			// processors stay aligned.
			wire.Consume(Input(ev))
			return
		}
		wire.Consume(in)
	})

	if direct.TotalQueries() != wire.TotalQueries() {
		t.Fatalf("total queries differ: direct %d, wire %d",
			direct.TotalQueries(), wire.TotalQueries())
	}
	ds, ws := direct.Stats(), wire.Stats()
	if len(ds) != len(ws) {
		t.Fatalf("domain counts differ: direct %d, wire %d", len(ds), len(ws))
	}
	for d, a := range ds {
		b := ws[d]
		if b == nil {
			t.Fatalf("domain %s missing from wire path", d)
		}
		if a.QueryCount != b.QueryCount || a.NXCount != b.NXCount {
			t.Fatalf("%s: counts differ: %d/%d vs %d/%d",
				d, a.QueryCount, a.NXCount, b.QueryCount, b.NXCount)
		}
		if len(a.Hosts) != len(b.Hosts) || len(a.IPs) != len(b.IPs) ||
			len(a.Minutes) != len(b.Minutes) || len(a.FQDNs) != len(b.FQDNs) {
			t.Fatalf("%s: set sizes differ", d)
		}
		for h := range a.Hosts {
			if _, ok := b.Hosts[h]; !ok {
				t.Fatalf("%s: host %s missing on wire path", d, h)
			}
		}
		for ip := range a.IPs {
			if _, ok := b.IPs[ip]; !ok {
				t.Fatalf("%s: ip %s missing on wire path", d, ip)
			}
		}
		if a.TTLMin != b.TTLMin || a.TTLMax != b.TTLMax {
			t.Fatalf("%s: TTL range differs: [%d,%d] vs [%d,%d]",
				d, a.TTLMin, a.TTLMax, b.TTLMin, b.TTLMax)
		}
	}
}

package pipeline

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/dnswire"
	"repro/internal/etld"
	"repro/internal/mathx"
)

var t0 = time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)

func in(t time.Time, client, qname string, answers []string, ttl uint32) Input {
	rcode := dnswire.RCodeNoError
	if answers == nil {
		rcode = dnswire.RCodeNXDomain
	}
	return Input{
		Time: t, TxnID: 1, ClientIP: client, QName: qname,
		QType: dnswire.TypeA, RCode: rcode, Answers: answers, TTL: ttl,
	}
}

func TestProcessorAggregatesByE2LD(t *testing.T) {
	p := NewProcessor(Config{Start: t0, Days: 3})
	p.Consume(in(t0, "10.0.0.1", "www.example.com", []string{"1.2.3.4"}, 300))
	p.Consume(in(t0.Add(time.Minute), "10.0.0.2", "mail.example.com", []string{"1.2.3.5"}, 600))
	p.Consume(in(t0.Add(2*time.Minute), "10.0.0.1", "api.example.com", []string{"1.2.3.4"}, 300))

	st := p.Stats()["example.com"]
	if st == nil {
		t.Fatal("no stats for example.com")
	}
	if st.QueryCount != 3 {
		t.Errorf("QueryCount = %d, want 3", st.QueryCount)
	}
	if len(st.Hosts) != 2 {
		t.Errorf("Hosts = %d, want 2", len(st.Hosts))
	}
	if len(st.IPs) != 2 {
		t.Errorf("IPs = %d, want 2", len(st.IPs))
	}
	if len(st.Minutes) != 3 {
		t.Errorf("Minutes = %d, want 3", len(st.Minutes))
	}
	if len(st.FQDNs) != 3 {
		t.Errorf("FQDNs = %d, want 3", len(st.FQDNs))
	}
	if got := st.MeanTTL(); got != 400 {
		t.Errorf("MeanTTL = %v, want 400", got)
	}
	if st.TTLMin != 300 || st.TTLMax != 600 {
		t.Errorf("TTL range [%d,%d], want [300,600]", st.TTLMin, st.TTLMax)
	}
}

func TestProcessorNXDomains(t *testing.T) {
	p := NewProcessor(Config{Start: t0, Days: 1})
	p.Consume(in(t0, "10.0.0.1", "xyz.nxdomain-example.com", nil, 0))
	st := p.Stats()["nxdomain-example.com"]
	if st == nil || st.NXCount != 1 || len(st.IPs) != 0 {
		t.Fatalf("NX aggregation wrong: %+v", st)
	}
	if st.MeanTTL() != 0 {
		t.Errorf("MeanTTL over only-NX domain = %v, want 0", st.MeanTTL())
	}
}

func TestProcessorSkipsBareSuffixes(t *testing.T) {
	p := NewProcessor(Config{Start: t0})
	p.Consume(in(t0, "10.0.0.1", "com", []string{"1.1.1.1"}, 1))
	if p.Skipped() != 1 || p.TotalQueries() != 0 {
		t.Errorf("skipped=%d total=%d, want 1/0", p.Skipped(), p.TotalQueries())
	}
}

func TestProcessorDHCPPinning(t *testing.T) {
	leases := []dhcp.Lease{
		{MAC: "02:00:00:00:00:01", IP: "10.0.0.9", Start: t0, End: t0.Add(12 * time.Hour)},
		{MAC: "02:00:00:00:00:02", IP: "10.0.0.9", Start: t0.Add(12 * time.Hour), End: t0.Add(24 * time.Hour)},
	}
	p := NewProcessor(Config{Start: t0, DHCP: dhcp.NewResolver(leases)})
	// Same IP at two times — two different devices.
	p.Consume(in(t0.Add(time.Hour), "10.0.0.9", "www.pin-example.com", []string{"1.1.1.1"}, 60))
	p.Consume(in(t0.Add(13*time.Hour), "10.0.0.9", "www.pin-example.com", []string{"1.1.1.1"}, 60))
	st := p.Stats()["pin-example.com"]
	if len(st.Hosts) != 2 {
		t.Fatalf("DHCP pinning failed: hosts=%v", st.Hosts)
	}
	if p.DeviceCount() != 2 {
		t.Errorf("DeviceCount = %d, want 2", p.DeviceCount())
	}
}

func TestSeries(t *testing.T) {
	p := NewProcessor(Config{Start: t0, Bucket: time.Hour})
	p.Consume(in(t0.Add(10*time.Minute), "10.0.0.1", "www.a-example.com", []string{"1.1.1.1"}, 60))
	p.Consume(in(t0.Add(20*time.Minute), "10.0.0.1", "www.a-example.com", []string{"1.1.1.1"}, 60))
	p.Consume(in(t0.Add(2*time.Hour), "10.0.0.1", "www.b-example.com", []string{"1.1.1.2"}, 60))
	s := p.Series()
	if len(s) != 3 {
		t.Fatalf("series length %d, want 3 (incl. empty middle bucket)", len(s))
	}
	if s[0].Queries != 2 || s[0].UniqueFQDN != 1 || s[0].UniqueE2LD != 1 {
		t.Errorf("bucket 0 = %+v", s[0])
	}
	if s[1].Queries != 0 {
		t.Errorf("bucket 1 should be empty: %+v", s[1])
	}
	if s[2].Queries != 1 {
		t.Errorf("bucket 2 = %+v", s[2])
	}
}

func TestJoinerMatchesPairs(t *testing.T) {
	j := NewJoiner()
	s := dnssim.NewScenario(dnssim.SmallScenario(5))
	events := 0
	joined := 0
	s.Generate(func(ev dnssim.Event) {
		if events >= 2000 {
			return
		}
		events++
		qb, rb, err := dnssim.Packets(ev)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, err := j.Offer(ev.Time, ev.ClientIP, DirQuery, qb); err != nil || ok {
			t.Fatalf("query offer: ok=%v err=%v", ok, err)
		}
		in, ok, err := j.Offer(ev.Time.Add(20*time.Millisecond), ev.ClientIP, DirResponse, rb)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return // duplicate txn id for this client overwrote the entry; rare and tolerated
		}
		joined++
		if in.QName != ev.QName || in.RCode != ev.RCode {
			t.Fatalf("joined record mismatch: %+v vs %+v", in, ev)
		}
		if len(in.Answers) != len(ev.Answers) {
			t.Fatalf("answers %v vs %v", in.Answers, ev.Answers)
		}
	})
	if joined < events*9/10 {
		t.Fatalf("joined only %d/%d pairs", joined, events)
	}
	if j.Joined() != joined {
		t.Errorf("Joined() = %d, want %d", j.Joined(), joined)
	}
}

func TestJoinerIgnoresOrphanResponse(t *testing.T) {
	j := NewJoiner()
	resp := &dnswire.Message{
		Header:    dnswire.Header{ID: 9, Response: true},
		Questions: []dnswire.Question{{Name: "x.example.com", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
	}
	b, err := dnswire.Encode(resp)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := j.Offer(t0, "10.0.0.1", DirResponse, b); ok || err != nil {
		t.Fatalf("orphan response: ok=%v err=%v", ok, err)
	}
}

func TestJoinerRejectsGarbage(t *testing.T) {
	j := NewJoiner()
	if _, _, err := j.Offer(t0, "10.0.0.1", DirQuery, []byte{1, 2, 3}); err == nil {
		t.Fatal("garbage packet accepted")
	}
}

func TestTextLogRoundTrip(t *testing.T) {
	inputs := []Input{
		in(t0, "10.0.0.1", "www.example.com", []string{"1.2.3.4", "1.2.3.5"}, 300),
		in(t0.Add(time.Second), "10.0.0.2", "gone.example.org", nil, 0),
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, inputs); err != nil {
		t.Fatal(err)
	}
	var got []Input
	if err := ReadLog(&buf, func(i Input) { got = append(got, i) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records", len(got))
	}
	for i := range inputs {
		a, b := inputs[i], got[i]
		if !a.Time.Equal(b.Time) || a.ClientIP != b.ClientIP || a.QName != b.QName ||
			a.RCode != b.RCode || a.TTL != b.TTL || len(a.Answers) != len(b.Answers) {
			t.Errorf("record %d mismatch:\n  %+v\n  %+v", i, a, b)
		}
	}
}

func TestReadLogErrors(t *testing.T) {
	for _, bad := range []string{
		"not a log line",
		"2018-03-01T00:00:00Z\tx\t10.0.0.1\twww.a.com\tA\t0\t60\t-",
		"2018-03-01T00:00:00Z\t1\t10.0.0.1\twww.a.com\tBOGUS\t0\t60\t-",
	} {
		err := ReadLog(strings.NewReader(bad+"\n"), func(Input) {})
		if err == nil {
			t.Errorf("ReadLog accepted %q", bad)
		}
	}
	// Comments and blank lines are fine.
	if err := ReadLog(strings.NewReader("# header\n\n"), func(Input) {}); err != nil {
		t.Errorf("comment/blank rejected: %v", err)
	}
}

func TestEndToEndSmallScenario(t *testing.T) {
	s := dnssim.NewScenario(dnssim.SmallScenario(3))
	p := NewProcessor(Config{
		Start: s.Config.Start,
		Days:  s.Config.Days,
		DHCP:  s.DHCP(),
	})
	s.Generate(func(ev dnssim.Event) { p.Consume(Input(ev)) })

	if p.DeviceCount() == 0 || p.DeviceCount() > s.Config.Hosts {
		t.Fatalf("DeviceCount = %d with %d hosts", p.DeviceCount(), s.Config.Hosts)
	}
	// Most planted domains must be visible in the aggregates.
	seen := 0
	for d := range s.TruthTable() {
		if p.Stats()[d] != nil {
			seen++
		}
	}
	if total := len(s.TruthTable()); seen < total*3/5 {
		t.Fatalf("only %d/%d planted domains observed", seen, total)
	}
	// DHCP pinning must beat raw client IPs: device count should be at
	// most the host count even though clients changed addresses.
	if p.DeviceCount() > s.Config.Hosts {
		t.Fatalf("device identities %d exceed physical hosts %d", p.DeviceCount(), s.Config.Hosts)
	}
}

func TestProcessorDefaultBucketIsDaily(t *testing.T) {
	p := NewProcessor(Config{Start: t0})
	p.Consume(in(t0.Add(time.Hour), "10.0.0.1", "www.x-example.com", []string{"1.1.1.1"}, 60))
	p.Consume(in(t0.Add(25*time.Hour), "10.0.0.1", "www.x-example.com", []string{"1.1.1.1"}, 60))
	if got := len(p.Series()); got != 2 {
		t.Fatalf("daily series length = %d, want 2", got)
	}
}

// mergeFixture is a day-spanning observation mix covering every
// aggregate Merge must fold: NOERROR and NXDOMAIN, several hosts and
// resolved IPs, TTL extremes, bare-suffix skips, and multiple buckets.
func mergeFixture() []Input {
	return []Input{
		in(t0, "10.0.0.1", "www.example.com", []string{"1.2.3.4"}, 300),
		in(t0.Add(time.Minute), "10.0.0.2", "mail.example.com", []string{"1.2.3.5", "1.2.3.6"}, 30),
		in(t0.Add(2*time.Minute), "10.0.0.1", "xyz.example.com", nil, 0),
		in(t0.Add(3*time.Minute), "10.0.0.3", "com", []string{"9.9.9.9"}, 1), // skipped
		in(t0.Add(26*time.Hour), "10.0.0.1", "www.example.com", []string{"1.2.3.4"}, 7200),
		in(t0.Add(26*time.Hour+time.Minute), "10.0.0.4", "cdn.other-example.org", []string{"5.6.7.8"}, 60),
		in(t0.Add(27*time.Hour), "10.0.0.4", "api.other-example.org", nil, 0),
	}
}

func TestMergeMatchesSingleProcessor(t *testing.T) {
	cfg := Config{Start: t0, Days: 3}
	inputs := mergeFixture()

	single := NewProcessor(cfg)
	for _, i := range inputs {
		single.Consume(i)
	}

	// Shard by day, the way the streaming mode does.
	a, b := NewProcessor(cfg), NewProcessor(cfg)
	for _, i := range inputs {
		if i.Time.Sub(t0) < 24*time.Hour {
			a.Consume(i)
		} else {
			b.Consume(i)
		}
	}
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(merged.stats, single.stats) {
		t.Errorf("merged stats differ from single-processor stats:\n%+v\nvs\n%+v",
			merged.stats["example.com"], single.stats["example.com"])
	}
	if !reflect.DeepEqual(merged.devices, single.devices) {
		t.Errorf("devices %v vs %v", merged.devices, single.devices)
	}
	if merged.totalQueries != single.totalQueries || merged.skipped != single.skipped {
		t.Errorf("totals %d/%d vs %d/%d",
			merged.totalQueries, merged.skipped, single.totalQueries, single.skipped)
	}
	if !reflect.DeepEqual(merged.Series(), single.Series()) {
		t.Errorf("series %+v vs %+v", merged.Series(), single.Series())
	}

	// Argument order must not matter.
	swapped, err := Merge(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(swapped.stats, merged.stats) {
		t.Error("Merge(b,a) differs from Merge(a,b)")
	}
}

func TestMergeTakesMaxDaysAndDeepCopies(t *testing.T) {
	a := NewProcessor(Config{Start: t0, Days: 1})
	b := NewProcessor(Config{Start: t0, Days: 3})
	a.Consume(in(t0, "10.0.0.1", "www.example.com", []string{"1.2.3.4"}, 300))
	b.Consume(in(t0.Add(48*time.Hour), "10.0.0.2", "www.example.com", []string{"1.2.3.5"}, 600))

	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Config().Days != 3 {
		t.Errorf("merged Days = %d, want 3", merged.Config().Days)
	}
	st := merged.Stats()["example.com"]
	if st == nil || st.QueryCount != 2 || len(st.PerDay) != 3 || st.PerDay[0] != 1 || st.PerDay[2] != 1 {
		t.Fatalf("merged stats wrong: %+v", st)
	}

	// Mutating the merged output must not leak into the inputs.
	st.Hosts["mutant"] = struct{}{}
	st.QueryCount = 99
	if len(a.Stats()["example.com"].Hosts) != 1 || a.Stats()["example.com"].QueryCount != 1 {
		t.Error("merged processor aliases input state")
	}
}

func TestMergeRejectsMismatchedConfigs(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Error("Merge() with no processors accepted")
	}
	base := NewProcessor(Config{Start: t0})
	for name, other := range map[string]*Processor{
		"start":    NewProcessor(Config{Start: t0.Add(time.Hour)}),
		"bucket":   NewProcessor(Config{Start: t0, Bucket: time.Hour}),
		"suffixes": NewProcessor(Config{Start: t0, Suffixes: etld.NewTable([]string{"com"})}),
	} {
		_, err := Merge(base, other)
		if err == nil {
			t.Errorf("Merge accepted mismatched %s", name)
			continue
		}
		var mm *MismatchError
		if !errors.As(err, &mm) {
			t.Errorf("mismatched %s: error %v is not a *MismatchError", name, err)
			continue
		}
		if mm.Field != name {
			t.Errorf("mismatched %s: MismatchError.Field = %q", name, mm.Field)
		}
	}
}

func TestMergeWindowDayCursorGuard(t *testing.T) {
	proc := func(days int) *Processor { return NewProcessor(Config{Start: t0, Days: days}) }
	cases := []struct {
		name      string
		window    int
		days      []int
		wantField string // "" = merge must succeed
	}{
		{name: "identical cursors", window: 1, days: []int{4, 4, 4}},
		{name: "spread equals window", window: 3, days: []int{2, 4, 5}},
		{name: "spread exceeds window", window: 3, days: []int{1, 4, 5}, wantField: "days"},
		{name: "stale shard aggregate", window: 1, days: []int{7, 7, 2}, wantField: "days"},
		{name: "guard disabled", window: 0, days: []int{1, 9}},
		{name: "single input", window: 1, days: []int{6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ps := make([]*Processor, len(tc.days))
			for i, d := range tc.days {
				ps[i] = proc(d)
			}
			merged, err := MergeWindow(tc.window, ps...)
			if tc.wantField == "" {
				if err != nil {
					t.Fatalf("MergeWindow(%d) rejected %v: %v", tc.window, tc.days, err)
				}
				want := tc.days[0]
				for _, d := range tc.days {
					if d > want {
						want = d
					}
				}
				if merged.Config().Days != want {
					t.Errorf("merged Days = %d, want %d", merged.Config().Days, want)
				}
				return
			}
			var mm *MismatchError
			if !errors.As(err, &mm) {
				t.Fatalf("MergeWindow(%d) on %v: error %v is not a *MismatchError", tc.window, tc.days, err)
			}
			if mm.Field != tc.wantField {
				t.Errorf("MismatchError.Field = %q, want %q", mm.Field, tc.wantField)
			}
		})
	}
}

func BenchmarkProcessorConsume(b *testing.B) {
	s := dnssim.NewScenario(dnssim.SmallScenario(9))
	events := s.Collect()
	rng := mathx.NewRNG(1)
	_ = rng
	b.ResetTimer()
	b.ReportAllocs()
	p := NewProcessor(Config{Start: s.Config.Start, Days: s.Config.Days})
	for i := 0; i < b.N; i++ {
		p.Consume(Input(events[i%len(events)]))
	}
}

package pipeline

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dnswire"
)

func snapshotFixture(t *testing.T) (*Processor, []Input) {
	t.Helper()
	start := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	p := NewProcessor(Config{Start: start, Days: 3})
	inputs := []Input{
		{Time: start.Add(5 * time.Minute), ClientIP: "10.0.0.1", QName: "www.alpha.com",
			RCode: dnswire.RCodeNoError, Answers: []string{"198.51.100.1"}, TTL: 300},
		{Time: start.Add(26 * time.Hour), ClientIP: "10.0.0.2", QName: "cdn.alpha.com",
			RCode: dnswire.RCodeNoError, Answers: []string{"198.51.100.2", "198.51.100.3"}, TTL: 60},
		{Time: start.Add(30 * time.Hour), ClientIP: "10.0.0.1", QName: "evil.beta.net",
			RCode: dnswire.RCodeNXDomain},
		{Time: start.Add(49 * time.Hour), ClientIP: "10.0.0.3", QName: "evil.beta.net",
			RCode: dnswire.RCodeNoError, Answers: []string{"203.0.113.9"}, TTL: 30},
		{Time: start.Add(49 * time.Hour), ClientIP: "10.0.0.3", QName: "justtld",
			RCode: dnswire.RCodeNoError}, // skipped: no e2LD
	}
	for _, in := range inputs {
		p.Consume(in)
	}
	return p, inputs
}

// TestSnapshotRoundTrip is the crash-safety contract: snapshot → gob →
// restore reproduces a processor whose aggregates, merge behavior, and
// further consumption are indistinguishable from the original's.
func TestSnapshotRoundTrip(t *testing.T) {
	p, _ := snapshotFixture(t)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := gob.NewDecoder(&buf).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	q, err := FromSnapshot(&snap, RestoreConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Snapshots are canonical (sorted slices), so equality of snapshots
	// is equality of aggregates.
	if !reflect.DeepEqual(p.Snapshot(), q.Snapshot()) {
		t.Fatalf("restored snapshot differs:\n orig: %+v\n rest: %+v", p.Snapshot(), q.Snapshot())
	}
	if q.TotalQueries() != p.TotalQueries() || q.Skipped() != p.Skipped() ||
		q.DeviceCount() != p.DeviceCount() {
		t.Fatalf("counter mismatch after restore")
	}

	// The restored processor keeps working: consuming the same new
	// observation into both sides preserves equality.
	extra := Input{Time: p.cfg.Start.Add(50 * time.Hour), ClientIP: "10.0.0.9",
		QName: "late.alpha.com", RCode: dnswire.RCodeNoError, Answers: []string{"198.51.100.7"}, TTL: 60}
	p.Consume(extra)
	q.Consume(extra)
	if !reflect.DeepEqual(p.Snapshot(), q.Snapshot()) {
		t.Fatal("restored processor diverged after further consumption")
	}

	// And it still merges: a restored processor is a valid Merge input.
	m1, err := Merge(p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Merge(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1.Snapshot(), m2.Snapshot()) {
		t.Fatal("merge of restored processor differs from merge of original")
	}
}

// TestSnapshotIsDeepCopy guards the no-aliasing contract both ways.
func TestSnapshotIsDeepCopy(t *testing.T) {
	p, _ := snapshotFixture(t)
	snap := p.Snapshot()
	q, err := FromSnapshot(snap, RestoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the snapshot must not reach the restored processor.
	snap.Domains[0].PerDay[0] = 999
	snap.Domains[0].Hosts[0] = "tampered"
	for _, st := range q.Stats() {
		if st.PerDay[0] == 999 {
			t.Fatal("restored processor aliases snapshot PerDay")
		}
		if _, ok := st.Hosts["tampered"]; ok {
			t.Fatal("restored processor aliases snapshot Hosts")
		}
	}
	// And a fresh snapshot of the original is unaffected by the tampering.
	if reflect.DeepEqual(snap, p.Snapshot()) {
		t.Fatal("snapshot aliases live processor state")
	}
}

func TestFromSnapshotRejectsCorrupt(t *testing.T) {
	p, _ := snapshotFixture(t)
	cases := []struct {
		name   string
		mutate func(*Snapshot)
	}{
		{"zero days", func(s *Snapshot) { s.Days = 0 }},
		{"zero bucket", func(s *Snapshot) { s.Bucket = 0 }},
		{"negative totals", func(s *Snapshot) { s.TotalQueries = -1 }},
		{"empty e2LD", func(s *Snapshot) { s.Domains[0].E2LD = "" }},
		{"duplicate domain", func(s *Snapshot) { s.Domains[1].E2LD = s.Domains[0].E2LD }},
		{"zero query count", func(s *Snapshot) { s.Domains[0].QueryCount = 0 }},
		{"NX above queries", func(s *Snapshot) { s.Domains[0].NXCount = s.Domains[0].QueryCount + 1 }},
		{"PerDay length", func(s *Snapshot) { s.Domains[0].PerDay = s.Domains[0].PerDay[:1] }},
		{"negative bucket index", func(s *Snapshot) { s.Buckets[0].Index = -1 }},
		{"duplicate bucket", func(s *Snapshot) { s.Buckets[1].Index = s.Buckets[0].Index }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap := p.Snapshot()
			tc.mutate(snap)
			if _, err := FromSnapshot(snap, RestoreConfig{}); err == nil {
				t.Fatal("corrupt snapshot accepted")
			} else if !strings.Contains(err.Error(), "pipeline:") {
				t.Fatalf("error lacks package context: %v", err)
			}
		})
	}
	if _, err := FromSnapshot(nil, RestoreConfig{}); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

package shard

import (
	"bytes"
	"crypto/sha256"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/faultio"
	"repro/internal/pipeline"
)

// chaosFS injects periodic persistence faults into the shard checkpoint
// path: every third temp-file creation fails outright, and every fourth
// created file tears its write mid-stream. Counters are only touched by
// the supervisor goroutine (checkpoints are written between barriers).
type chaosFS struct {
	inner   faultio.Faults
	creates int
}

func (c *chaosFS) CreateTemp(dir, pattern string) (faultio.File, error) {
	c.creates++
	c.inner.FailCreate = c.creates%3 == 0
	if c.creates%4 == 0 {
		c.inner.WrapWriter = func(w io.Writer) io.Writer { return faultio.TornWriter(w, 100) }
	} else {
		c.inner.WrapWriter = nil
	}
	return c.inner.CreateTemp(dir, pattern)
}

func (c *chaosFS) Rename(oldpath, newpath string) error { return c.inner.Rename(oldpath, newpath) }
func (c *chaosFS) Remove(name string) error             { return c.inner.Remove(name) }

// buildModel runs the full window build — merge the last windowDays of
// per-day aggregates, embed, train — and returns the saved model bytes.
// The configuration is fixed-seed and single-worker, so identical
// aggregates must produce identical bytes.
func buildModel(t testing.TB, s *dnssim.Scenario, days map[int]*pipeline.Processor, lastDay, windowDays int) []byte {
	t.Helper()
	var procs []*pipeline.Processor
	for d := lastDay - windowDays + 1; d <= lastDay; d++ {
		if p := days[d]; p != nil {
			procs = append(procs, p)
		}
	}
	merged, err := pipeline.Merge(procs...)
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewDetectorWith(core.Config{
		Start:        s.Config.Start,
		Days:         lastDay + 1,
		DHCP:         s.DHCP(),
		EmbedDim:     8,
		EmbedSamples: 5_000,
		Workers:      1,
		Seed:         99,
	}, merged)
	if err := det.BuildModel(); err != nil {
		t.Fatal(err)
	}
	retained, err := det.Domains()
	if err != nil {
		t.Fatal(err)
	}
	var domains []string
	var labels []int
	for _, d := range retained {
		if l, ok := s.Truth(d); ok {
			domains = append(domains, d)
			lab := 0
			if l.Malicious {
				lab = 1
			}
			labels = append(labels, lab)
		}
	}
	clf, err := det.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosRecoveredModelSHAMatchesSerial is the acceptance test for
// the shard supervisor: with worker panics, an artificial hang, and
// periodic checkpoint write faults all injected into a sharded run, the
// recovered build's saved model must be byte-identical (SHA-256) to the
// serial build's — crashes and restarts may cost retries, never
// observations.
func TestChaosRecoveredModelSHAMatchesSerial(t *testing.T) {
	s := tinyScenario(91)
	days := eventsByDay(s)
	serial := serialDays(s, days)

	release := make(chan struct{})
	defer close(release)
	var deliveries atomic.Int64
	var hangs atomic.Int64
	cfg := poolConfig(s, 3)
	cfg.Dir = t.TempDir()
	cfg.FS = &chaosFS{}
	cfg.BatchSize = 64
	cfg.Deadline = 100 * time.Millisecond
	cfg.MaxRetries = 10
	cfg.consumeHook = func(shard int, in pipeline.Input) {
		// Deterministic-count chaos: the Nth delivery panics or hangs,
		// wherever the schedule happens to put it. Replayed deliveries
		// keep counting, so each site fires exactly once.
		switch deliveries.Add(1) {
		case 500, 1700, 2900:
			panic("chaos: injected worker crash")
		case 1000:
			hangs.Add(1)
			<-release
		}
	}
	got, deg := runPool(t, cfg, days)
	if deg != nil {
		t.Fatalf("chaos run degraded (retries should have absorbed the faults): %v", deg)
	}
	if n := deliveries.Load(); n < 2900 {
		t.Fatalf("only %d deliveries; chaos sites never all fired", n)
	}
	if hangs.Load() == 0 {
		t.Fatal("injected hang never fired")
	}
	assertDaysEqual(t, got, serial)

	lastDay := s.Config.Days - 1
	shardedModel := buildModel(t, s, got, lastDay, 2)
	serialModel := buildModel(t, s, serial, lastDay, 2)
	if sha256.Sum256(shardedModel) != sha256.Sum256(serialModel) {
		t.Fatal("sharded model SHA-256 differs from serial model")
	}
}

// TestChaosQuarantinedRunStaysDegradedNotDead: a shard whose worker
// fails terminally is quarantined, and every subsequent boundary keeps
// producing models over the healthy shards with an exact missing-
// partition report — the pool never escalates a dead partition into a
// dead pipeline.
func TestChaosQuarantinedRunStaysDegradedNotDead(t *testing.T) {
	s := tinyScenario(93)
	days := eventsByDay(s)

	cfg := poolConfig(s, 4)
	cfg.MaxRetries = 2
	probe, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := probe.route(days[0][0])
	probe.Close()
	cfg.consumeHook = func(shard int, in pipeline.Input) {
		if shard == bad {
			panic("chaos: terminally poisoned shard")
		}
	}
	pool, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	var healthy [][]pipeline.Input
	for _, ins := range days {
		var keep []pipeline.Input
		for _, in := range ins {
			if pool.route(in) != bad {
				keep = append(keep, in)
			}
		}
		healthy = append(healthy, keep)
	}
	want := serialDays(s, healthy)

	merged := make(map[int]*pipeline.Processor)
	for day, ins := range days {
		for _, in := range ins {
			pool.Consume(in)
		}
		m, deg, err := pool.CloseDay(day)
		if err != nil {
			t.Fatalf("CloseDay(%d): %v", day, err)
		}
		if m != nil {
			merged[day] = m
		}
		if deg == nil {
			t.Fatalf("day %d: no Degraded report", day)
		}
		if deg.Day != day || len(deg.Missing) != 1 || deg.Missing[0] != bad {
			t.Fatalf("day %d: Degraded = %+v, want exactly shard %d missing", day, deg, bad)
		}
	}
	assertDaysEqual(t, merged, want)
}

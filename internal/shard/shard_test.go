package shard

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dnssim"
	"repro/internal/faultio"
	"repro/internal/obsv"
	"repro/internal/pipeline"
)

// tinyScenario is a scaled-down campus capture: big enough that every
// shard of a small pool sees traffic, small enough to rerun dozens of
// times under the race detector.
func tinyScenario(seed uint64) *dnssim.Scenario {
	cfg := dnssim.SmallScenario(seed)
	cfg.Hosts = 60
	cfg.BenignDomains = 150
	return dnssim.NewScenario(cfg)
}

// eventsByDay collects a scenario's events grouped by day index, each
// day in generation order.
func eventsByDay(s *dnssim.Scenario) [][]pipeline.Input {
	out := make([][]pipeline.Input, s.Config.Days)
	s.Generate(func(ev dnssim.Event) {
		in := pipeline.Input(ev)
		day := int(in.Time.Sub(s.Config.Start) / (24 * time.Hour))
		if day < 0 {
			day = 0
		}
		if day >= len(out) {
			day = len(out) - 1
		}
		out[day] = append(out[day], in)
	})
	return out
}

// serialDays builds the serial streaming mode's per-day processors: the
// reference every sharded run must be byte-identical to.
func serialDays(s *dnssim.Scenario, days [][]pipeline.Input) map[int]*pipeline.Processor {
	procs := make(map[int]*pipeline.Processor)
	for day, ins := range days {
		for _, in := range ins {
			p := procs[day]
			if p == nil {
				p = pipeline.NewProcessor(pipeline.Config{
					Start: s.Config.Start,
					Days:  day + 1,
					DHCP:  s.DHCP(),
				})
				procs[day] = p
			}
			p.Consume(in)
		}
	}
	return procs
}

// snapBytes serializes a processor's snapshot; identical aggregates
// yield identical bytes (snapshot slices are sorted).
func snapBytes(t testing.TB, p *pipeline.Processor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// poolConfig is the base test configuration: tight deadline, no real
// sleeping between restart attempts.
func poolConfig(s *dnssim.Scenario, shards int) Config {
	return Config{
		Shards:   shards,
		Start:    s.Config.Start,
		DHCP:     s.DHCP(),
		Deadline: 2 * time.Second,
		Backoff:  time.Millisecond,
		Seed:     7,
		sleep:    func(time.Duration) {},
	}
}

// runPool feeds the grouped events through a pool, closing each day
// boundary, and returns the merged per-day processors and the last
// non-nil Degraded report.
func runPool(t testing.TB, cfg Config, days [][]pipeline.Input) (map[int]*pipeline.Processor, *Degraded) {
	t.Helper()
	pool, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	merged := make(map[int]*pipeline.Processor)
	var lastDeg *Degraded
	for day, ins := range days {
		for _, in := range ins {
			pool.Consume(in)
		}
		m, deg, err := pool.CloseDay(day)
		if err != nil {
			t.Fatalf("CloseDay(%d): %v", day, err)
		}
		if m != nil {
			merged[day] = m
		}
		if deg != nil {
			lastDeg = deg
		}
	}
	return merged, lastDeg
}

// assertDaysEqual compares merged shard aggregates to the serial
// reference, byte for byte.
func assertDaysEqual(t *testing.T, got, want map[int]*pipeline.Processor) {
	t.Helper()
	for day, wp := range want {
		gp := got[day]
		if gp == nil {
			t.Fatalf("day %d: sharded run produced no aggregate", day)
		}
		if !bytes.Equal(snapBytes(t, gp), snapBytes(t, wp)) {
			t.Errorf("day %d: merged shard aggregate differs from serial", day)
		}
	}
	for day := range got {
		if want[day] == nil {
			t.Errorf("day %d: sharded run produced an aggregate the serial run did not", day)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: 0, Start: time.Unix(0, 1)}); err == nil {
		t.Error("Shards=0 accepted")
	}
	if _, err := New(Config{Shards: 2}); err == nil {
		t.Error("zero Start accepted")
	}
}

func TestRouteIsDeterministicAndCovers(t *testing.T) {
	s := tinyScenario(11)
	days := eventsByDay(s)
	cfg := poolConfig(s, 4)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	hits := make([]int, 4)
	for _, ins := range days {
		for _, in := range ins {
			ra, rb := a.route(in), b.route(in)
			if ra != rb {
				t.Fatalf("route(%q) unstable: %d vs %d", in.QName, ra, rb)
			}
			hits[ra]++
		}
	}
	for i, n := range hits {
		if n == 0 {
			t.Errorf("shard %d received no traffic; routing is not spreading", i)
		}
	}
}

func TestShardedMatchesSerialForAnyShardCountAndBatchSize(t *testing.T) {
	s := tinyScenario(21)
	days := eventsByDay(s)
	want := serialDays(s, days)
	for _, n := range []int{1, 2, 3, 4, 8} {
		for _, batch := range []int{1, 7, 256} {
			t.Run(fmt.Sprintf("shards=%d/batch=%d", n, batch), func(t *testing.T) {
				cfg := poolConfig(s, n)
				cfg.BatchSize = batch
				got, deg := runPool(t, cfg, days)
				if deg != nil {
					t.Fatalf("unexpected degradation: %v", deg)
				}
				assertDaysEqual(t, got, want)
			})
		}
	}
}

func TestCloseDayOrdering(t *testing.T) {
	s := tinyScenario(3)
	pool, err := New(poolConfig(s, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, _, err := pool.CloseDay(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pool.CloseDay(0); err == nil {
		t.Error("re-closing day 0 accepted")
	}
	if got := pool.ClosedThrough(); got != 0 {
		t.Errorf("ClosedThrough = %d, want 0", got)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pool.CloseDay(1); err == nil {
		t.Error("CloseDay on a closed pool accepted")
	}
}

func TestWorkerPanicIsRetriedWithJitteredBackoff(t *testing.T) {
	s := tinyScenario(31)
	days := eventsByDay(s)
	want := serialDays(s, days)

	var tripped atomic.Bool
	var sleeps []time.Duration
	cfg := poolConfig(s, 3)
	cfg.Backoff = 10 * time.Millisecond
	cfg.MaxBackoff = 80 * time.Millisecond
	cfg.sleep = func(d time.Duration) { sleeps = append(sleeps, d) }
	cfg.consumeHook = func(shard int, in pipeline.Input) {
		if tripped.CompareAndSwap(false, true) {
			panic("injected worker fault")
		}
	}
	reg := obsv.NewRegistry()
	cfg.Metrics = reg

	got, deg := runPool(t, cfg, days)
	if deg != nil {
		t.Fatalf("unexpected degradation: %v", deg)
	}
	assertDaysEqual(t, got, want)
	if !tripped.Load() {
		t.Fatal("injected panic never fired")
	}
	if len(sleeps) == 0 {
		t.Fatal("restart happened without backoff")
	}
	// First attempt's jittered backoff is drawn from [Backoff/2, Backoff).
	if sleeps[0] < cfg.Backoff/2 || sleeps[0] >= cfg.Backoff {
		t.Errorf("first backoff %v outside [%v, %v)", sleeps[0], cfg.Backoff/2, cfg.Backoff)
	}
	var metrics bytes.Buffer
	if err := reg.WritePrometheus(&metrics); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(metrics.Bytes(), []byte("maldomain_shard_restarts")) {
		t.Error("restart counter not exported")
	}
}

func TestBackoffBoundsAndJitter(t *testing.T) {
	s := tinyScenario(5)
	cfg := poolConfig(s, 1)
	cfg.Backoff = 8 * time.Millisecond
	cfg.MaxBackoff = 50 * time.Millisecond
	pool, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	st := pool.shards[0]
	seen := make(map[time.Duration]bool)
	for attempt := 1; attempt <= 12; attempt++ {
		st.restarts = attempt
		full := cfg.Backoff << uint(attempt-1)
		if full > cfg.MaxBackoff {
			full = cfg.MaxBackoff
		}
		for i := 0; i < 8; i++ {
			d := pool.backoffFor(st)
			if d < full/2 || d >= full {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, full/2, full)
			}
			seen[d] = true
		}
	}
	if len(seen) < 10 {
		t.Errorf("backoff draws look unjittered: only %d distinct values", len(seen))
	}
}

func TestHungWorkerIsDetectedAndReplaced(t *testing.T) {
	s := tinyScenario(41)
	days := eventsByDay(s)
	want := serialDays(s, days)

	release := make(chan struct{})
	defer close(release)
	var hung atomic.Bool
	cfg := poolConfig(s, 3)
	cfg.Deadline = 50 * time.Millisecond
	cfg.consumeHook = func(shard int, in pipeline.Input) {
		if hung.CompareAndSwap(false, true) {
			<-release
		}
	}
	got, deg := runPool(t, cfg, days)
	if deg != nil {
		t.Fatalf("unexpected degradation: %v", deg)
	}
	if !hung.Load() {
		t.Fatal("injected hang never fired")
	}
	assertDaysEqual(t, got, want)
}

func TestQuarantineProducesExactDegradedReport(t *testing.T) {
	s := tinyScenario(51)
	days := eventsByDay(s)

	cfg := poolConfig(s, 4)
	cfg.MaxRetries = 2
	// Pick the shard of the very first event and poison all its inputs.
	probe, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := probe.route(days[0][0])
	probe.Close()
	cfg.consumeHook = func(shard int, in pipeline.Input) {
		if shard == bad {
			panic("poisoned shard")
		}
	}
	reg := obsv.NewRegistry()
	cfg.Metrics = reg

	pool, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// The healthy-shard reference: the serial build over every event
	// NOT routed to the poisoned shard.
	routed := 0
	var healthy [][]pipeline.Input
	for _, ins := range days {
		var keep []pipeline.Input
		for _, in := range ins {
			if pool.route(in) == bad {
				routed++
			} else {
				keep = append(keep, in)
			}
		}
		healthy = append(healthy, keep)
	}
	want := serialDays(s, healthy)

	merged := make(map[int]*pipeline.Processor)
	var deg *Degraded
	for day, ins := range days {
		for _, in := range ins {
			pool.Consume(in)
		}
		m, d, err := pool.CloseDay(day)
		if err != nil {
			t.Fatalf("CloseDay(%d): %v", day, err)
		}
		if m != nil {
			merged[day] = m
		}
		deg = d
	}
	if deg == nil {
		t.Fatal("no Degraded report despite a poisoned shard")
	}
	if len(deg.Missing) != 1 || deg.Missing[0] != bad {
		t.Fatalf("Degraded.Missing = %v, want [%d]", deg.Missing, bad)
	}
	if deg.Dropped != routed {
		t.Errorf("Degraded.Dropped = %d, want %d (all inputs routed to shard %d)", deg.Dropped, routed, bad)
	}
	if len(deg.Errors) != 1 {
		t.Fatalf("Degraded.Errors has %d entries, want 1", len(deg.Errors))
	}
	var se *ShardError
	if !errors.As(deg.Errors[0], &se) || se.Shard != bad {
		t.Fatalf("quarantine error %v does not identify shard %d", deg.Errors[0], bad)
	}
	if se.Attempts != cfg.MaxRetries {
		t.Errorf("ShardError.Attempts = %d, want %d", se.Attempts, cfg.MaxRetries)
	}
	if got := pool.Quarantined(); len(got) != 1 || got[0] != bad {
		t.Errorf("Quarantined() = %v, want [%d]", got, bad)
	}
	assertDaysEqual(t, merged, want)

	var metrics bytes.Buffer
	if err := reg.WritePrometheus(&metrics); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(metrics.Bytes(), []byte("maldomain_shard_quarantined 1")) {
		t.Error("quarantined gauge not exported as 1")
	}
}

func TestRestartFromCheckpointReplaysExactlyOnce(t *testing.T) {
	s := tinyScenario(61)
	days := eventsByDay(s)
	want := serialDays(s, days)

	dir := t.TempDir()
	var tripped atomic.Bool
	trigger := days[1][len(days[1])/2]
	cfg := poolConfig(s, 3)
	cfg.Dir = dir
	cfg.consumeHook = func(shard int, in pipeline.Input) {
		// Crash a worker mid-day-1, after day 0's close wrote the
		// shard checkpoints: recovery must restore the checkpoint and
		// replay only the post-checkpoint suffix.
		if in.Time.Equal(trigger.Time) && in.QName == trigger.QName &&
			tripped.CompareAndSwap(false, true) {
			panic("mid-day crash")
		}
	}
	pool, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	merged := make(map[int]*pipeline.Processor)
	for day, ins := range days {
		for _, in := range ins {
			pool.Consume(in)
		}
		m, deg, err := pool.CloseDay(day)
		if err != nil {
			t.Fatalf("CloseDay(%d): %v", day, err)
		}
		if deg != nil {
			t.Fatalf("unexpected degradation: %v", deg)
		}
		if m != nil {
			merged[day] = m
		}
		if day == 0 {
			// Day 0's close must have made every shard durable: files
			// on disk, replay buffers trimmed to the checkpoint cursor.
			for i, st := range pool.shards {
				if _, err := os.Stat(pool.ckptPath(i)); err != nil {
					t.Fatalf("shard %d checkpoint missing after day 0: %v", i, err)
				}
				if st.ckptSeq == 0 {
					t.Fatalf("shard %d has no durable cursor after day 0", i)
				}
				if len(st.buf) != 0 {
					t.Fatalf("shard %d replay buffer holds %d entries after checkpoint", i, len(st.buf))
				}
			}
		}
	}
	if !tripped.Load() {
		t.Fatal("injected crash never fired")
	}
	assertDaysEqual(t, merged, want)
}

func TestCheckpointWriteFaultFallsBackToReplay(t *testing.T) {
	s := tinyScenario(71)
	days := eventsByDay(s)
	want := serialDays(s, days)

	var tripped atomic.Bool
	trigger := days[1][len(days[1])/2]
	cfg := poolConfig(s, 2)
	cfg.Dir = t.TempDir()
	// Every checkpoint commit fails at the rename step: the pool must
	// keep its replay buffers and recover purely from replay.
	cfg.FS = &faultio.Faults{FailRename: true}
	cfg.consumeHook = func(shard int, in pipeline.Input) {
		if in.Time.Equal(trigger.Time) && in.QName == trigger.QName &&
			tripped.CompareAndSwap(false, true) {
			panic("crash with no durable checkpoint")
		}
	}
	got, deg := runPool(t, cfg, days)
	if deg != nil {
		t.Fatalf("unexpected degradation: %v", deg)
	}
	if !tripped.Load() {
		t.Fatal("injected crash never fired")
	}
	assertDaysEqual(t, got, want)
}

func TestCorruptShardCheckpointQuarantines(t *testing.T) {
	s := tinyScenario(81)
	days := eventsByDay(s)

	cfg := poolConfig(s, 2)
	cfg.Dir = t.TempDir()
	cfg.MaxRetries = 2
	var armed, once atomic.Bool
	cfg.consumeHook = func(shard int, in pipeline.Input) {
		if armed.Load() && shard == 0 && once.CompareAndSwap(false, true) {
			panic("crash after checkpoint corruption")
		}
	}
	pool, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for _, in := range days[0] {
		pool.Consume(in)
	}
	if _, _, err := pool.CloseDay(0); err != nil {
		t.Fatal(err)
	}
	// Rot every shard file on disk, then crash shard 0's worker. Its
	// replay buffer was trimmed against the now-unreadable checkpoint,
	// so the shard is unrecoverable and must be quarantined — not
	// silently rebuilt with missing history.
	for i := range pool.shards {
		if err := os.WriteFile(pool.ckptPath(i), []byte("not a checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	armed.Store(true)
	for _, in := range days[1] {
		pool.Consume(in)
	}
	_, deg, err := pool.CloseDay(1)
	if err != nil {
		t.Fatal(err)
	}
	if !once.Load() {
		t.Fatal("injected crash never fired")
	}
	if deg == nil || len(deg.Missing) != 1 || deg.Missing[0] != 0 {
		t.Fatalf("Degraded = %+v, want shard 0 missing", deg)
	}
	if !errors.Is(deg.Errors[0], ErrCorruptCheckpoint) {
		t.Errorf("quarantine cause %v does not unwrap to ErrCorruptCheckpoint", deg.Errors[0])
	}
}

func TestDegradedStringNamesPartitions(t *testing.T) {
	d := &Degraded{Day: 4, Missing: []int{1, 3}, Dropped: 17}
	got := d.String()
	for _, wantSub := range []string{"day 4", "[1 3]", "17"} {
		if !bytes.Contains([]byte(got), []byte(wantSub)) {
			t.Errorf("Degraded.String() = %q, missing %q", got, wantSub)
		}
	}
	sort.Ints(d.Missing) // keep the report stable for log comparison
}

// Package shard partitions streaming ingestion across a pool of
// supervised workers so one process can aggregate ISP-sized traces
// without giving up the serial build's determinism or its crash safety.
//
// A Pool routes each pipeline.Input to one of N shard workers by the
// FNV-1a hash of its device identity (the DHCP-pinned MAC when a lease
// covers the query, else the raw client IP, else the query name).
// Every worker aggregates its partition into its own per-day
// pipeline.Processor — the same per-day layout the serial streaming
// mode keeps — and at each day boundary CloseDay collects the shards'
// day aggregates and merges them with pipeline.Merge. Because every
// fold in the merge is commutative and associative (set unions, count
// sums, min/max), the merged aggregate is byte-identical to the serial
// build for any shard count, worker schedule, or crash/restart
// interleaving: the only thing sharding changes is which processor an
// observation lands in first.
//
// Robustness is the point of the supervisor. Each request to a worker
// carries a deadline; a worker that crashes (panic) or hangs past the
// watchdog is abandoned and restarted with bounded exponential backoff
// and jitter. A restarted worker rebuilds its exact state from its
// per-shard checkpoint (written through the crcio/faultio atomic-write
// path CloseDay reuses) plus a replay of the supervisor's in-memory
// buffer of inputs routed since that checkpoint — exactly-once
// accounting rides on a per-shard (day floor, sequence number) cursor,
// so no observation is dropped or double-counted across any number of
// restarts. A shard that exhausts its retries is quarantined with a
// typed *ShardError; the merge proceeds over the healthy shards and
// CloseDay reports the missing partitions in a *Degraded report
// instead of failing the day.
package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"repro/internal/dhcp"
	"repro/internal/etld"
	"repro/internal/faultio"
	"repro/internal/mathx"
	"repro/internal/obsv"
	"repro/internal/pipeline"
)

// errHung is the watchdog's verdict on a worker that neither accepted a
// request nor replied within the deadline.
var errHung = errors.New("shard: worker deadline exceeded")

// ShardError reports a shard that exhausted its restart budget and was
// quarantined. It unwraps to the last failure cause, so errors.Is can
// see through to an injected fault or the watchdog's errHung.
type ShardError struct {
	// Shard is the quarantined partition's index.
	Shard int
	// Attempts is how many restarts were tried before giving up.
	Attempts int
	// Err is the last failure cause.
	Err error
}

// Error implements error.
func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d quarantined after %d restart attempts: %v", e.Shard, e.Attempts, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }

// Degraded reports a day boundary that merged fewer partitions than the
// pool owns: one or more shards were quarantined, and their traffic
// since the last handed-off day is missing from the merged aggregate.
// The pool stays healthy — merges keep proceeding over the remaining
// shards — but the caller should surface the gap.
type Degraded struct {
	// Day is the boundary whose merge was degraded.
	Day int
	// Missing lists the quarantined shard indices, ascending.
	Missing []int
	// Dropped counts observations lost to the quarantined shards:
	// inputs routed to them since their last durable state plus inputs
	// dropped at the door after quarantine.
	Dropped int
	// Errors holds each missing shard's quarantine cause, aligned with
	// Missing.
	Errors []*ShardError
}

// String renders the report for logs.
func (d *Degraded) String() string {
	return fmt.Sprintf("day %d degraded: missing shards %v (%d observations lost)", d.Day, d.Missing, d.Dropped)
}

// Config parameterizes a Pool.
type Config struct {
	// Shards is the partition count (required, >= 1).
	Shards int
	// Start anchors day boundaries; it must equal the consuming
	// stream's anchor so shard and serial day indices agree.
	Start time.Time
	// DHCP pins dynamic client addresses to devices for both routing
	// and aggregation; optional.
	DHCP *dhcp.Resolver
	// Suffixes is the public-suffix table (nil uses the default).
	Suffixes *etld.Table
	// Dir, when non-empty, holds one checkpoint file per shard
	// (shard-NNN.ckpt), written after every CloseDay; a restarted
	// worker then replays only the inputs since its checkpoint instead
	// of the whole day. Empty keeps recovery purely replay-based. The
	// directory is pool-owned scratch: stale files in it are removed at
	// New.
	Dir string
	// FS is the filesystem checkpoints are written through (nil = the
	// real one); tests inject faults here.
	FS faultio.FS
	// Deadline is the watchdog budget for one worker request (accept or
	// reply); past it the worker is declared hung and restarted.
	// Default 30s.
	Deadline time.Duration
	// MaxRetries caps consecutive failed restart attempts per shard
	// before quarantine. Default 3.
	MaxRetries int
	// Backoff is the base restart backoff, doubled per consecutive
	// attempt and jittered uniformly into [d/2, d). Default 10ms.
	Backoff time.Duration
	// MaxBackoff caps the un-jittered backoff. Default 1s.
	MaxBackoff time.Duration
	// BatchSize is how many inputs are handed to a worker per request.
	// Default 256.
	BatchSize int
	// Seed drives the backoff jitter streams. Default 1.
	Seed uint64
	// Metrics, when set, receives maldomain_shard_restarts{shard},
	// maldomain_shard_quarantined, maldomain_shard_merge_seconds, and
	// maldomain_shard_lag_days.
	Metrics *obsv.Registry

	// sleep replaces time.Sleep between restart attempts; tests stub it
	// to observe backoff without waiting.
	sleep func(time.Duration)
	// consumeHook, when set, runs inside the worker before each input
	// is folded in; chaos tests use it to inject panics and hangs.
	consumeHook func(shard int, in pipeline.Input)
}

func (c Config) withDefaults() (Config, error) {
	if c.Shards < 1 {
		return c, fmt.Errorf("shard: Config.Shards = %d, need >= 1", c.Shards)
	}
	if c.Start.IsZero() {
		return c, errors.New("shard: Config.Start is required")
	}
	if c.FS == nil {
		c.FS = faultio.OS
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.sleep == nil {
		c.sleep = time.Sleep
	}
	return c, nil
}

// seqInput is one routed observation tagged with its per-shard sequence
// number, the unit of the replay buffer and the exactly-once cursor.
type seqInput struct {
	seq uint64
	in  pipeline.Input
}

// shardState is the supervisor's book-keeping for one partition.
type shardState struct {
	id int
	w  *worker

	// pending is the batch being assembled; buf is the replay buffer of
	// every input sent since the last trim (checkpoint or day handoff).
	pending []seqInput
	buf     []seqInput

	// seq numbers routed inputs; ckptSeq and ckptDay locate the last
	// durable checkpoint (0 / -1 when none).
	seq     uint64
	ckptSeq uint64
	ckptDay int

	// handed is the last day this shard handed off to a merge; a
	// restarted worker is floored here so an already-merged day can
	// never be re-counted, even when the restart interleaves with a
	// boundary (handoff done, pool-wide close still in progress).
	handed int

	// restarts counts consecutive failed revival attempts; it resets on
	// a successful day handoff.
	restarts int

	quarantined bool
	reason      *ShardError
	dropped     int

	rng *mathx.RNG
}

// Pool is the shard supervisor. Feed observations with Consume and
// close each day boundary in order with CloseDay; both must be called
// from one goroutine (the pool parallelizes internally). Call Close
// when done to release the workers.
type Pool struct {
	cfg       Config
	fp        string
	shards    []*shardState
	closedDay int
	closed    bool

	mRestarts *obsv.CounterVec
	mQuar     *obsv.Gauge
	mMerge    *obsv.Histogram
	mLag      *obsv.Gauge
}

// New starts a pool of cfg.Shards workers. When cfg.Dir is set it is
// created if missing and cleared of stale shard checkpoints: shard
// files describe this process's replay buffers and must not outlive
// them.
func New(cfg Config) (*Pool, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	p := &Pool{
		cfg: cfg,
		fp: fmt.Sprintf("shard n=%d start=%s",
			cfg.Shards, cfg.Start.UTC().Format(time.RFC3339Nano)),
		closedDay: -1,
	}
	if m := cfg.Metrics; m != nil {
		p.mRestarts = m.CounterVec("maldomain_shard_restarts",
			"Shard worker restart attempts.", "shard")
		p.mQuar = m.Gauge("maldomain_shard_quarantined",
			"Shards currently quarantined after exhausting restarts.")
		p.mMerge = m.Histogram("maldomain_shard_merge_seconds",
			"CloseDay latency: shard handoff plus aggregate merge, in seconds.")
		p.mLag = m.Gauge("maldomain_shard_lag_days",
			"Closed day minus the oldest healthy shard's durable day floor.")
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("shard: creating checkpoint dir: %w", err)
		}
		for i := 0; i < cfg.Shards; i++ {
			_ = cfg.FS.Remove(p.ckptPath(i))
		}
	}
	root := mathx.NewRNG(cfg.Seed).SplitLabeled("shard-backoff")
	p.shards = make([]*shardState, cfg.Shards)
	for i := range p.shards {
		s := &shardState{id: i, ckptDay: -1, handed: -1, rng: root.SplitLabeled(strconv.Itoa(i))}
		s.w = p.spawn(i, freshState(-1, 0))
		p.shards[i] = s
	}
	return p, nil
}

// spawn starts a worker goroutine for shard id over the given state.
func (p *Pool) spawn(id int, st workerState) *worker {
	w := newWorker()
	st.id = id
	st.base = pipeline.Config{
		Start:    p.cfg.Start,
		DHCP:     p.cfg.DHCP,
		Suffixes: p.cfg.Suffixes,
	}
	st.hook = p.cfg.consumeHook
	go w.run(st)
	return w
}

// route picks the partition for one observation: FNV-1a over the device
// identity, falling back to the query name for device-less records. It
// is a pure function of the input, so replay after a restart routes
// identically.
func (p *Pool) route(in pipeline.Input) int {
	key := in.ClientIP
	if p.cfg.DHCP != nil {
		if mac, ok := p.cfg.DHCP.MACAt(in.ClientIP, in.Time); ok {
			key = mac
		}
	}
	if key == "" {
		key = in.QName
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(len(p.shards)))
}

// dayOf mirrors the streaming day computation (clamping pre-start
// observations into day 0) so shard floors and stream floors agree.
func (p *Pool) dayOf(t time.Time) int {
	day := int(t.Sub(p.cfg.Start) / (24 * time.Hour))
	if day < 0 {
		day = 0
	}
	return day
}

// Consume routes one observation to its shard. Observations for a
// quarantined shard are counted as dropped and reported in the next
// CloseDay's Degraded report.
func (p *Pool) Consume(in pipeline.Input) {
	s := p.shards[p.route(in)]
	if s.quarantined {
		s.dropped++
		return
	}
	s.seq++
	s.pending = append(s.pending, seqInput{seq: s.seq, in: in})
	if len(s.pending) >= p.cfg.BatchSize {
		p.flush(s)
	}
}

// flush hands the assembled batch to the shard's worker, recording it
// in the replay buffer first so a crash mid-send loses nothing.
func (p *Pool) flush(s *shardState) {
	if s.quarantined || len(s.pending) == 0 {
		return
	}
	batch := s.pending
	s.pending = nil
	s.buf = append(s.buf, batch...)
	if err := p.trySend(s.w, request{batch: batch}); err != nil {
		// The replay buffer already covers the batch; revive rebuilds
		// the worker from checkpoint + replay.
		p.revive(s, err)
	}
}

// trySend delivers one request under the watchdog deadline.
func (p *Pool) trySend(w *worker, req request) error {
	select {
	case w.in <- req:
		return nil
	default:
	}
	timer := time.NewTimer(p.cfg.Deadline)
	defer timer.Stop()
	select {
	case w.in <- req:
		return nil
	case err := <-w.done:
		return err
	case <-timer.C:
		return errHung
	}
}

// closeShard runs the day-handoff barrier on one worker.
func (p *Pool) closeShard(s *shardState, day int) (closeReply, error) {
	req := request{close: &closeReq{day: day, reply: make(chan closeReply, 1)}}
	if err := p.trySend(s.w, req); err != nil {
		return closeReply{}, err
	}
	timer := time.NewTimer(p.cfg.Deadline)
	defer timer.Stop()
	select {
	case rep := <-req.close.reply:
		return rep, nil
	case err := <-s.w.done:
		return closeReply{}, err
	case <-timer.C:
		return closeReply{}, errHung
	}
}

// snapshotShard runs the checkpoint barrier on one worker.
func (p *Pool) snapshotShard(s *shardState) (ckptReply, error) {
	req := request{ckpt: &ckptReq{reply: make(chan ckptReply, 1)}}
	if err := p.trySend(s.w, req); err != nil {
		return ckptReply{}, err
	}
	timer := time.NewTimer(p.cfg.Deadline)
	defer timer.Stop()
	select {
	case rep := <-req.ckpt.reply:
		return rep, nil
	case err := <-s.w.done:
		return ckptReply{}, err
	case <-timer.C:
		return ckptReply{}, errHung
	}
}

// backoffFor returns the jittered restart delay for the shard's current
// attempt count: base << (attempt-1), capped, then drawn uniformly from
// [d/2, d) so a burst of shard failures does not restart in lockstep.
func (p *Pool) backoffFor(s *shardState) time.Duration {
	shift := s.restarts - 1
	if shift > 16 {
		shift = 16
	}
	d := p.cfg.Backoff << uint(shift)
	if d > p.cfg.MaxBackoff {
		d = p.cfg.MaxBackoff
	}
	half := d / 2
	return half + time.Duration(s.rng.Float64()*float64(half))
}

// revive abandons the shard's current worker and restarts it from its
// durable state: checkpoint (when one exists) plus a replay of every
// buffered input after it. Attempts beyond the retry budget quarantine
// the shard.
func (p *Pool) revive(s *shardState, cause error) {
	close(s.w.in) // sole sender; a live-but-slow worker drains and exits
	s.w = nil
	for {
		s.restarts++
		if p.mRestarts != nil {
			p.mRestarts.With(strconv.Itoa(s.id)).Inc()
		}
		if s.restarts > p.cfg.MaxRetries {
			p.quarantine(s, cause)
			return
		}
		p.cfg.sleep(p.backoffFor(s))
		st, err := p.restoreState(s)
		if err != nil {
			cause = err
			continue
		}
		w := p.spawn(s.id, st)
		if err := p.replay(s, w); err != nil {
			close(w.in)
			cause = err
			continue
		}
		s.w = w
		return
	}
}

// restoreState rebuilds a worker's starting state from the shard's
// checkpoint file. Without a checkpoint directory — or before the first
// successful checkpoint — recovery is purely replay-based: a fresh
// state floored at the last handed-off day, with the full replay buffer
// re-delivering everything since.
func (p *Pool) restoreState(s *shardState) (workerState, error) {
	if p.cfg.Dir == "" || s.ckptSeq == 0 {
		return freshState(s.handed, s.ckptSeq), nil
	}
	st, err := p.readCheckpoint(s.id)
	if err != nil {
		return workerState{}, err
	}
	if st.seqFloor != s.ckptSeq {
		// The file does not describe the buffer we trimmed against;
		// replaying over it would double- or under-count.
		return workerState{}, fmt.Errorf("shard %d: checkpoint covers seq %d, supervisor trimmed through %d: %w",
			s.id, st.seqFloor, s.ckptSeq, ErrCorruptCheckpoint)
	}
	if st.dayFloor < s.handed {
		// Days handed off after the checkpoint was taken are already in
		// the merged output; drop their partial aggregates.
		for d := range st.days {
			if d <= s.handed {
				delete(st.days, d)
			}
		}
		st.dayFloor = s.handed
	}
	return st, nil
}

// replay re-delivers the shard's buffered inputs to a freshly restored
// worker in batches.
func (p *Pool) replay(s *shardState, w *worker) error {
	for off := 0; off < len(s.buf); off += p.cfg.BatchSize {
		end := off + p.cfg.BatchSize
		if end > len(s.buf) {
			end = len(s.buf)
		}
		if err := p.trySend(w, request{batch: s.buf[off:end]}); err != nil {
			return err
		}
	}
	return nil
}

// quarantine retires a shard: its buffered and future inputs are
// counted as dropped, and CloseDay reports it missing from every
// subsequent merge.
func (p *Pool) quarantine(s *shardState, cause error) {
	s.quarantined = true
	s.reason = &ShardError{Shard: s.id, Attempts: s.restarts - 1, Err: cause}
	s.dropped += len(s.buf) + len(s.pending)
	s.buf, s.pending = nil, nil
	if p.mQuar != nil {
		p.mQuar.Set(float64(p.quarantinedCount()))
	}
}

func (p *Pool) quarantinedCount() int {
	n := 0
	for _, s := range p.shards {
		if s.quarantined {
			n++
		}
	}
	return n
}

// CloseDay completes a day boundary: every healthy shard hands off its
// aggregates for days through day, the pool checkpoints and trims the
// replay buffers, and the shard aggregates are merged into one
// processor — byte-identical to what a serial build would hold for the
// same observations. A nil processor with a nil error means no healthy
// shard saw traffic for the day. The Degraded report is non-nil when
// any shard is quarantined; the merge still covers the healthy ones.
// Days must close in increasing order.
func (p *Pool) CloseDay(day int) (*pipeline.Processor, *Degraded, error) {
	if p.closed {
		return nil, nil, errors.New("shard: pool is closed")
	}
	if day <= p.closedDay {
		return nil, nil, fmt.Errorf("shard: day %d already closed (through %d)", day, p.closedDay)
	}
	start := time.Now() // merge latency metric only, never aggregate state
	var procs []*pipeline.Processor
	for _, s := range p.shards {
		if s.quarantined {
			continue
		}
		p.flush(s)
		for !s.quarantined {
			rep, err := p.closeShard(s, day)
			if err != nil {
				p.revive(s, err)
				continue
			}
			if bad := cursorFault(rep, day); bad != nil {
				// A day cursor from the future means the worker's state
				// is not a prefix of this stream; its aggregates cannot
				// be trusted.
				p.revive(s, bad)
				continue
			}
			for _, dp := range rep.procs {
				procs = append(procs, dp.proc)
			}
			s.handed = day
			s.restarts = 0
			p.trimShard(s, day)
			break
		}
	}
	if p.cfg.Dir != "" {
		p.checkpointShards()
	}

	var merged *pipeline.Processor
	if len(procs) > 0 {
		var err error
		merged, err = pipeline.Merge(procs...)
		if err != nil {
			return nil, p.degradedReport(day), fmt.Errorf("shard: merging day %d: %w", day, err)
		}
	}
	p.closedDay = day
	deg := p.degradedReport(day)
	if p.mMerge != nil {
		p.mMerge.Observe(time.Since(start).Seconds())
	}
	p.observeLag(day)
	return merged, deg, nil
}

// cursorFault validates a handoff's day cursors against the boundary.
func cursorFault(rep closeReply, day int) error {
	for _, dp := range rep.procs {
		if got := dp.proc.Config().Days; got > day+1 {
			return &pipeline.MismatchError{
				Field: "days",
				Want:  fmt.Sprintf("cursor <= %d", day+1),
				Got:   fmt.Sprintf("cursor %d", got),
			}
		}
	}
	return nil
}

// trimShard drops one shard's replay-buffer entries whose day has been
// handed off: their aggregates now live in the merged output, and the
// restart floor at s.handed guarantees a restarted worker never sees
// their day again.
func (p *Pool) trimShard(s *shardState, day int) {
	kept := s.buf[:0]
	for _, e := range s.buf {
		if p.dayOf(e.in.Time) > day {
			kept = append(kept, e)
		}
	}
	s.buf = kept
}

// checkpointShards snapshots every healthy shard and commits the
// snapshot to its checkpoint file; on success the replay buffer is
// trimmed to the entries after the snapshot's cursor. A write failure
// leaves the buffer intact — recovery falls back to a longer replay.
func (p *Pool) checkpointShards() {
	for _, s := range p.shards {
		if s.quarantined {
			continue
		}
		rep, err := p.snapshotShard(s)
		if err != nil {
			p.revive(s, err)
			continue
		}
		if err := p.writeCheckpoint(s.id, rep); err != nil {
			continue
		}
		s.ckptSeq = rep.seq
		s.ckptDay = rep.dayFloor
		kept := s.buf[:0]
		for _, e := range s.buf {
			if e.seq > rep.seq {
				kept = append(kept, e)
			}
		}
		s.buf = kept
	}
}

// degradedReport builds the missing-partition report for a boundary,
// or nil when every shard is healthy.
func (p *Pool) degradedReport(day int) *Degraded {
	var deg *Degraded
	for _, s := range p.shards {
		if !s.quarantined {
			continue
		}
		if deg == nil {
			deg = &Degraded{Day: day}
		}
		deg.Missing = append(deg.Missing, s.id)
		deg.Dropped += s.dropped
		deg.Errors = append(deg.Errors, s.reason)
	}
	if deg != nil {
		sort.Ints(deg.Missing)
	}
	return deg
}

// observeLag publishes how far the oldest healthy shard's durable floor
// trails the closed day: the size of the replay window a restart would
// need.
func (p *Pool) observeLag(day int) {
	if p.mLag == nil {
		return
	}
	lag := 0
	for _, s := range p.shards {
		if s.quarantined {
			continue
		}
		if l := day - s.ckptDay; l > lag {
			lag = l
		}
	}
	p.mLag.Set(float64(lag))
}

// Quarantined reports the quarantined shard indices, ascending.
func (p *Pool) Quarantined() []int {
	var out []int
	for _, s := range p.shards {
		if s.quarantined {
			out = append(out, s.id)
		}
	}
	return out
}

// ClosedThrough reports the last closed day boundary, -1 before any.
func (p *Pool) ClosedThrough() int { return p.closedDay }

// Close stops the workers. Pending un-flushed inputs are discarded;
// call CloseDay for the final boundary first.
func (p *Pool) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	for _, s := range p.shards {
		if s.w != nil {
			close(s.w.in)
			s.w = nil
		}
	}
	return nil
}

// ckptPath names a shard's checkpoint file.
func (p *Pool) ckptPath(id int) string {
	return filepath.Join(p.cfg.Dir, fmt.Sprintf("shard-%03d.ckpt", id))
}

package shard

// Per-shard checkpoint persistence. Each shard's file captures the
// worker's open-day aggregates plus its (day floor, sequence) cursor,
// CRC-sealed and committed atomically through the same
// temp-fsync-rename sequence the stream checkpoint uses — through the
// injectable faultio seam, so the chaos tests can tear a write at any
// step and prove the previous generation survives. The files are
// process-scratch, not durable deployment state: a restart of the whole
// process goes through the stream checkpoint and replay instead, so New
// clears stale shard files.

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/crcio"
	"repro/internal/pipeline"
)

const (
	shardMagic       = "maldomain-shard\n"
	shardCkptVersion = 1
)

// ErrCorruptCheckpoint reports a shard checkpoint that is not one, is
// truncated, fails its CRC, or disagrees with the supervisor's replay
// bookkeeping.
var ErrCorruptCheckpoint = errors.New("shard: corrupt checkpoint")

// shardWire is the gob body of a shard checkpoint.
type shardWire struct {
	Version     int
	Fingerprint string
	Shard       int
	Seq         uint64
	DayFloor    int
	Days        []shardDaySnap
}

// writeCheckpoint commits one shard's snapshot to its file atomically:
// temp file in the same directory, flush, fsync, close, rename. On any
// failure the temp file is removed and the previous checkpoint is left
// untouched.
func (p *Pool) writeCheckpoint(id int, rep ckptReply) error {
	wire := shardWire{
		Version:     shardCkptVersion,
		Fingerprint: p.fp,
		Shard:       id,
		Seq:         rep.seq,
		DayFloor:    rep.dayFloor,
		Days:        rep.days,
	}
	fs := p.cfg.FS
	path := p.ckptPath(id)
	f, err := fs.CreateTemp(filepath.Dir(path), ".shard-*")
	if err != nil {
		return fmt.Errorf("shard %d: creating checkpoint temp file: %w", id, err)
	}
	tmp := f.Name()
	fail := func(step string, err error) error {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return fmt.Errorf("shard %d: %s checkpoint %s: %w", id, step, tmp, err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	cw := crcio.NewWriter(bw)
	if _, err := io.WriteString(cw, shardMagic); err != nil {
		return fail("writing", err)
	}
	if err := gob.NewEncoder(cw).Encode(wire); err != nil {
		return fail("encoding", err)
	}
	if err := cw.WriteTrailer(); err != nil {
		return fail("sealing", err)
	}
	if err := bw.Flush(); err != nil {
		return fail("flushing", err)
	}
	if err := f.Sync(); err != nil {
		return fail("syncing", err)
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return fmt.Errorf("shard %d: closing checkpoint %s: %w", id, tmp, err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		_ = fs.Remove(tmp)
		return fmt.Errorf("shard %d: committing checkpoint %s: %w", id, path, err)
	}
	return nil
}

// readCheckpoint loads a shard's checkpoint file into a worker state.
func (p *Pool) readCheckpoint(id int) (workerState, error) {
	f, err := os.Open(p.ckptPath(id))
	if err != nil {
		return workerState{}, err
	}
	st, rerr := p.decodeCheckpoint(bufio.NewReaderSize(f, 1<<20), id)
	if cerr := f.Close(); rerr == nil && cerr != nil {
		return workerState{}, cerr
	}
	return st, rerr
}

func (p *Pool) decodeCheckpoint(rd io.Reader, id int) (workerState, error) {
	cr := crcio.NewReader(rd)
	magic := make([]byte, len(shardMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return workerState{}, fmt.Errorf("%w: reading magic: %v", ErrCorruptCheckpoint, err)
	}
	if string(magic) != shardMagic {
		return workerState{}, fmt.Errorf("%w: not a shard checkpoint", ErrCorruptCheckpoint)
	}
	var wire shardWire
	if err := gob.NewDecoder(cr).Decode(&wire); err != nil {
		return workerState{}, fmt.Errorf("%w: decoding: %v", ErrCorruptCheckpoint, err)
	}
	if err := cr.VerifyTrailer(); err != nil {
		return workerState{}, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	if wire.Version != shardCkptVersion {
		return workerState{}, fmt.Errorf("shard: checkpoint version %d, this build reads %d",
			wire.Version, shardCkptVersion)
	}
	if wire.Fingerprint != p.fp {
		return workerState{}, fmt.Errorf("%w: fingerprint %q, pool %q", ErrCorruptCheckpoint, wire.Fingerprint, p.fp)
	}
	if wire.Shard != id {
		return workerState{}, fmt.Errorf("%w: file is for shard %d, not %d", ErrCorruptCheckpoint, wire.Shard, id)
	}
	st := freshState(wire.DayFloor, wire.Seq)
	rc := pipeline.RestoreConfig{DHCP: p.cfg.DHCP, Suffixes: p.cfg.Suffixes}
	for _, ds := range wire.Days {
		if ds.Day <= wire.DayFloor {
			return workerState{}, fmt.Errorf("%w: open day %d at or below floor %d", ErrCorruptCheckpoint, ds.Day, wire.DayFloor)
		}
		if _, dup := st.days[ds.Day]; dup {
			return workerState{}, fmt.Errorf("%w: duplicate day %d", ErrCorruptCheckpoint, ds.Day)
		}
		proc, err := pipeline.FromSnapshot(ds.Snap, rc)
		if err != nil {
			return workerState{}, fmt.Errorf("%w: day %d: %v", ErrCorruptCheckpoint, ds.Day, err)
		}
		st.days[ds.Day] = proc
	}
	return st, nil
}

package shard

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dnssim"
	"repro/internal/pipeline"
)

// The scaling-curve workload: a 10× campus trace (ten times the small
// scenario's hosts and benign catalog), generated once and shared by
// every shard count so the curve measures the pool, not the generator.
var benchTrace struct {
	once sync.Once
	s    *dnssim.Scenario
	days [][]pipeline.Input
	n    int
}

func benchEvents(b *testing.B) (*dnssim.Scenario, [][]pipeline.Input, int) {
	benchTrace.once.Do(func() {
		cfg := dnssim.SmallScenario(17)
		cfg.Hosts *= 10
		cfg.BenignDomains *= 10
		benchTrace.s = dnssim.NewScenario(cfg)
		benchTrace.days = eventsByDay(benchTrace.s)
		for _, ins := range benchTrace.days {
			benchTrace.n += len(ins)
		}
	})
	return benchTrace.s, benchTrace.days, benchTrace.n
}

// BenchmarkShardIngest measures end-to-end sharded aggregation on the
// 10× trace: route + consume every observation, then close every day
// boundary (handoff barrier + shard merge). events/sec is the headline
// scaling figure; one iteration processes the whole trace.
func BenchmarkShardIngest(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			s, days, events := benchEvents(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool, err := New(Config{Shards: n, Start: s.Config.Start, DHCP: s.DHCP(), Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				for day, ins := range days {
					for _, in := range ins {
						pool.Consume(in)
					}
					if _, deg, err := pool.CloseDay(day); err != nil || deg != nil {
						b.Fatalf("CloseDay(%d): err=%v deg=%v", day, err, deg)
					}
				}
				pool.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(events*b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

package shard

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/pipeline"
)

// request is one unit of work for a shard worker: exactly one of batch,
// close, or ckpt is set. The supervisor is the channel's only sender
// and closes it to retire the worker.
type request struct {
	batch []seqInput
	close *closeReq
	ckpt  *ckptReq
}

// closeReq asks the worker to hand off its aggregates for every open
// day at or before day and to floor itself there.
type closeReq struct {
	day   int
	reply chan closeReply
}

type closeReply struct {
	// procs holds the handed-off (day, aggregate) pairs, ascending by
	// day; normally exactly one entry, the boundary day itself.
	procs []dayProc
}

type dayProc struct {
	day  int
	proc *pipeline.Processor
}

// ckptReq asks the worker for a serializable snapshot of its state.
type ckptReq struct {
	reply chan ckptReply
}

type ckptReply struct {
	// seq is the highest sequence number folded into the snapshot; the
	// supervisor trims its replay buffer through it once the snapshot
	// is durable.
	seq      uint64
	dayFloor int
	days     []shardDaySnap
}

// shardDaySnap is one open day's aggregate in checkpoint form.
type shardDaySnap struct {
	Day  int
	Snap *pipeline.Snapshot
}

// workerState is everything a worker owns. It crosses goroutines only
// by value handoff: the supervisor builds it (fresh, or restored from a
// checkpoint) before the worker goroutine starts, and never touches it
// after.
type workerState struct {
	id   int
	base pipeline.Config
	hook func(shard int, in pipeline.Input)

	// days holds one aggregation processor per open day.
	days map[int]*pipeline.Processor
	// maxSeq is the highest sequence number received; seqFloor and
	// dayFloor implement exactly-once replay: inputs at or below either
	// floor are already represented (by the restored checkpoint, or by
	// a day handed off to the merge) and are dropped.
	maxSeq   uint64
	seqFloor uint64
	dayFloor int
}

// freshState is a worker state with no aggregates, floored at the given
// day and sequence.
func freshState(dayFloor int, seqFloor uint64) workerState {
	return workerState{
		days:     make(map[int]*pipeline.Processor),
		maxSeq:   seqFloor,
		seqFloor: seqFloor,
		dayFloor: dayFloor,
	}
}

// worker is the supervisor's handle on one shard goroutine.
type worker struct {
	// in carries requests; capacity 1 so the supervisor can pipeline
	// one batch while the previous one is processed.
	in chan request
	// done receives the worker's dying breath when it panics; the
	// supervisor selects on it wherever it would otherwise block.
	done chan error
}

func newWorker() *worker {
	return &worker{in: make(chan request, 1), done: make(chan error, 1)}
}

// run processes requests until the supervisor closes the channel. A
// panic anywhere in the loop — a poisoned input, a bug in an injected
// hook — is reported on done instead of crashing the process.
func (w *worker) run(st workerState) {
	defer func() {
		if r := recover(); r != nil {
			w.done <- fmt.Errorf("shard %d: worker panic: %v", st.id, r)
		}
	}()
	for req := range w.in {
		switch {
		case req.batch != nil:
			st.consume(req.batch)
		case req.close != nil:
			req.close.reply <- st.closeThrough(req.close.day)
		case req.ckpt != nil:
			req.ckpt.reply <- st.snapshot()
		}
	}
}

// consume folds a batch into the per-day aggregates, dropping inputs
// already represented by the floors.
func (st *workerState) consume(batch []seqInput) {
	for _, e := range batch {
		if e.seq > st.maxSeq {
			st.maxSeq = e.seq
		}
		if e.seq <= st.seqFloor {
			continue
		}
		day := st.dayIndex(e.in.Time)
		if day <= st.dayFloor {
			continue
		}
		if st.hook != nil {
			st.hook(st.id, e.in)
		}
		p := st.days[day]
		if p == nil {
			// Mirror the serial streaming mode exactly: same anchor,
			// same day cursor, so merged shard aggregates are
			// indistinguishable from a single processor's.
			cfg := st.base
			cfg.Days = day + 1
			p = pipeline.NewProcessor(cfg)
			st.days[day] = p
		}
		p.Consume(e.in)
	}
}

func (st *workerState) dayIndex(t time.Time) int {
	day := int(t.Sub(st.base.Start) / (24 * time.Hour))
	if day < 0 {
		day = 0
	}
	return day
}

// closeThrough hands off every open day at or before day (ascending)
// and floors the worker there.
func (st *workerState) closeThrough(day int) closeReply {
	var rep closeReply
	for d, p := range st.days {
		if d <= day {
			rep.procs = append(rep.procs, dayProc{day: d, proc: p})
		}
	}
	sort.Slice(rep.procs, func(i, j int) bool { return rep.procs[i].day < rep.procs[j].day })
	for _, dp := range rep.procs {
		delete(st.days, dp.day)
	}
	if day > st.dayFloor {
		st.dayFloor = day
	}
	return rep
}

// snapshot serializes the open days in ascending order, so identical
// state always produces identical checkpoint bytes.
func (st *workerState) snapshot() ckptReply {
	rep := ckptReply{seq: st.maxSeq, dayFloor: st.dayFloor}
	keys := make([]int, 0, len(st.days))
	for d := range st.days {
		keys = append(keys, d)
	}
	sort.Ints(keys)
	for _, d := range keys {
		rep.days = append(rep.days, shardDaySnap{Day: d, Snap: st.days[d].Snapshot()})
	}
	return rep
}

package dhcp

import (
	"testing"
	"time"

	"repro/internal/mathx"
)

var t0 = time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)

func genTestLog(devices int, dur time.Duration) []Lease {
	return Generate(GenConfig{
		Devices:  devices,
		Start:    t0,
		Duration: dur,
	}, mathx.NewRNG(1))
}

func TestGenerateCoversWindow(t *testing.T) {
	leases := genTestLog(20, 48*time.Hour)
	if len(leases) == 0 {
		t.Fatal("no leases generated")
	}
	perMAC := make(map[string][]Lease)
	for _, l := range leases {
		perMAC[l.MAC] = append(perMAC[l.MAC], l)
	}
	if len(perMAC) != 20 {
		t.Fatalf("got %d devices, want 20", len(perMAC))
	}
	end := t0.Add(48 * time.Hour)
	for mac, ls := range perMAC {
		// Leases for one device must tile the window with no gaps.
		for i := 1; i < len(ls); i++ {
			if !ls[i].Start.Equal(ls[i-1].End) {
				t.Errorf("%s: gap between lease %d end %v and lease %d start %v",
					mac, i-1, ls[i-1].End, i, ls[i].Start)
			}
		}
		if ls[0].Start.After(t0) {
			t.Errorf("%s: first lease starts after window: %v", mac, ls[0].Start)
		}
		if ls[len(ls)-1].End.Before(end) {
			t.Errorf("%s: last lease ends before window: %v", mac, ls[len(ls)-1].End)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genTestLog(10, 24*time.Hour)
	b := genTestLog(10, 24*time.Hour)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lease %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestResolverPinsDevice(t *testing.T) {
	leases := genTestLog(50, 72*time.Hour)
	r := NewResolver(leases)
	// Every lease midpoint must resolve; it may resolve to a different MAC
	// only when a later overlapping lease shadows this one.
	for _, l := range leases {
		mid := l.Start.Add(l.End.Sub(l.Start) / 2)
		mac, ok := r.MACAt(l.IP, mid)
		if !ok {
			t.Fatalf("no device for %s at %v", l.IP, mid)
		}
		if mac == "" {
			t.Fatal("empty MAC")
		}
	}
}

func TestResolverMiss(t *testing.T) {
	r := NewResolver(genTestLog(5, 24*time.Hour))
	if _, ok := r.MACAt("203.0.113.9", t0.Add(time.Hour)); ok {
		t.Error("resolved an address never leased")
	}
	if _, ok := r.MACAt("10.0.0.2", t0.Add(-100*24*time.Hour)); ok {
		t.Error("resolved a time far before any lease")
	}
}

func TestDeviceChurnProducesMultipleIPs(t *testing.T) {
	leases := Generate(GenConfig{
		Devices:  30,
		Start:    t0,
		Duration: 30 * 24 * time.Hour,
		MoveProb: 0.3,
	}, mathx.NewRNG(2))
	ipsPerMAC := make(map[string]map[string]bool)
	for _, l := range leases {
		if ipsPerMAC[l.MAC] == nil {
			ipsPerMAC[l.MAC] = make(map[string]bool)
		}
		ipsPerMAC[l.MAC][l.IP] = true
	}
	multi := 0
	for _, ips := range ipsPerMAC {
		if len(ips) > 1 {
			multi++
		}
	}
	if multi < 20 {
		t.Errorf("only %d/30 devices changed IP over a month with MoveProb 0.3", multi)
	}
}

func TestDevices(t *testing.T) {
	r := NewResolver(genTestLog(7, 24*time.Hour))
	devs := r.Devices()
	if len(devs) != 7 {
		t.Fatalf("Devices() = %d, want 7", len(devs))
	}
	for i := 1; i < len(devs); i++ {
		if devs[i-1] >= devs[i] {
			t.Fatal("Devices() not sorted/unique")
		}
	}
}

func TestMACForDeviceUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		m := MACForDevice(i)
		if seen[m] {
			t.Fatalf("duplicate MAC %s at device %d", m, i)
		}
		seen[m] = true
	}
}

// Package dhcp models the campus DHCP infrastructure the paper collects
// alongside DNS traffic (§2). Devices receive leases that expire and are
// re-issued — sometimes with a different IP because of device mobility or
// lease timeout — so the same physical device can appear under several IP
// addresses during a capture window. The preprocessing pipeline uses
// Resolver to pin DNS queries back to stable device identities (MAC
// addresses), exactly the role DHCP logs play in the paper.
package dhcp

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/mathx"
)

// Lease is one DHCP lease binding a device MAC to an IPv4 address for
// [Start, End).
type Lease struct {
	MAC   string
	IP    string
	Start time.Time
	End   time.Time
}

// GenConfig parameterizes lease log generation.
type GenConfig struct {
	// Devices is the number of physical devices on the network.
	Devices int
	// Start and Duration bound the simulated capture window.
	Start    time.Time
	Duration time.Duration
	// LeaseTime is the nominal DHCP lease duration (default 12h).
	LeaseTime time.Duration
	// MoveProb is the per-renewal probability that a device changes IP
	// (mobility between subnets or expired lease reassignment).
	MoveProb float64
	// Subnets is the number of /24 address pools (default 16).
	Subnets int
}

func (c *GenConfig) setDefaults() {
	if c.LeaseTime <= 0 {
		c.LeaseTime = 12 * time.Hour
	}
	if c.MoveProb == 0 {
		c.MoveProb = 0.15
	}
	if c.Subnets <= 0 {
		c.Subnets = 16
	}
}

// MACForDevice returns the deterministic MAC address of device i, used by
// both the lease generator and the traffic generator so they agree on
// device identity.
func MACForDevice(i int) string {
	return fmt.Sprintf("02:00:%02x:%02x:%02x:%02x",
		byte(i>>24), byte(i>>16), byte(i>>8), byte(i))
}

// Generate produces a lease log for cfg. Device i keeps a single IP per
// lease period and changes IP with probability cfg.MoveProb at each
// renewal. The returned leases are sorted by start time.
func Generate(cfg GenConfig, rng *mathx.RNG) []Lease {
	cfg.setDefaults()
	var leases []Lease
	for dev := 0; dev < cfg.Devices; dev++ {
		mac := MACForDevice(dev)
		// Stagger initial lease start so renewals don't synchronize.
		offset := time.Duration(rng.Float64() * float64(cfg.LeaseTime))
		start := cfg.Start.Add(-offset)
		ip := randomIP(cfg, rng)
		for start.Before(cfg.Start.Add(cfg.Duration)) {
			end := start.Add(cfg.LeaseTime)
			leases = append(leases, Lease{MAC: mac, IP: ip, Start: start, End: end})
			start = end
			if rng.Float64() < cfg.MoveProb {
				ip = randomIP(cfg, rng)
			}
		}
	}
	sort.Slice(leases, func(i, j int) bool {
		if !leases[i].Start.Equal(leases[j].Start) {
			return leases[i].Start.Before(leases[j].Start)
		}
		return leases[i].MAC < leases[j].MAC
	})
	return leases
}

func randomIP(cfg GenConfig, rng *mathx.RNG) string {
	subnet := rng.Intn(cfg.Subnets)
	host := 2 + rng.Intn(250)
	return fmt.Sprintf("10.%d.%d.%d", subnet/256, subnet%256, host)
}

// Resolver answers "which device held IP x at time t" queries over a
// lease log. It is immutable after construction and safe for concurrent
// use.
type Resolver struct {
	byIP map[string][]Lease // sorted by Start
}

// NewResolver indexes a lease log.
func NewResolver(leases []Lease) *Resolver {
	r := &Resolver{byIP: make(map[string][]Lease)}
	for _, l := range leases {
		r.byIP[l.IP] = append(r.byIP[l.IP], l)
	}
	for ip := range r.byIP {
		ls := r.byIP[ip]
		sort.Slice(ls, func(i, j int) bool { return ls[i].Start.Before(ls[j].Start) })
	}
	return r
}

// MACAt returns the MAC address that held ip at time t. ok is false when
// no lease covers (ip, t) — e.g. traffic from a static or off-campus
// address.
func (r *Resolver) MACAt(ip string, t time.Time) (mac string, ok bool) {
	ls := r.byIP[ip]
	// Find the last lease starting at or before t.
	i := sort.Search(len(ls), func(i int) bool { return ls[i].Start.After(t) }) - 1
	// Overlapping reassignments are possible when a device moves away and
	// the pool re-issues its address; scan back for any covering lease,
	// preferring the most recent.
	for ; i >= 0; i-- {
		if !ls[i].End.After(t) {
			continue
		}
		return ls[i].MAC, true
	}
	return "", false
}

// Devices returns the set of distinct MACs present in the log.
func (r *Resolver) Devices() []string {
	set := make(map[string]bool)
	for _, ls := range r.byIP {
		for _, l := range ls {
			set[l.MAC] = true
		}
	}
	out := make([]string, 0, len(set))
	for mac := range set {
		out = append(out, mac)
	}
	sort.Strings(out)
	return out
}

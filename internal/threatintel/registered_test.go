package threatintel

import (
	"testing"

	"repro/internal/dnssim"
)

// TestUnregisteredDomainsRarelyConfirmed pins down the registration-aware
// coverage rule: blacklists track live infrastructure, so unregistered
// DGA names should mostly fail the 2-feed confirmation bar while
// registered siblings pass.
func TestUnregisteredDomainsRarelyConfirmed(t *testing.T) {
	truth := make(map[string]dnssim.Label)
	for i := 0; i < 400; i++ {
		truth[domainName("reg", i)] = dnssim.Label{
			Malicious: true, Family: "f", Style: "conficker", Registered: true,
		}
		truth[domainName("unreg", i)] = dnssim.Label{
			Malicious: true, Family: "f", Style: "conficker", Registered: false,
		}
	}
	svc := NewService(truth, Config{Seed: 7})
	regOK, unregOK := 0, 0
	for d, l := range truth {
		if !svc.Validate(d) {
			continue
		}
		if l.Registered {
			regOK++
		} else {
			unregOK++
		}
	}
	if regOK < 300 {
		t.Errorf("only %d/400 registered malicious domains confirmed", regOK)
	}
	if unregOK > regOK/3 {
		t.Errorf("unregistered confirmations %d not well below registered %d", unregOK, regOK)
	}
}

// Package threatintel simulates the external threat-intelligence
// services the paper relies on for labeling and validation: the
// VirusTotal API, which aggregates over 60 global blacklists (§6.1), and
// ThreatBook-style family reports used to annotate discovered clusters
// (§7.1, Tables 1-2).
//
// The simulation reproduces the labeling *process* including its noise:
// each of the 60 feeds covers only a fraction of truly malicious domains
// (coverage varies by feed quality) and occasionally lists a benign
// domain by mistake. The paper's confirmation rule — a domain counts as
// malicious only when at least MinFeeds feeds list it — is implemented by
// Validate, and the same rule drives the Figure 4 seed-expansion
// experiment that distinguishes confirmed ("true") malicious domains from
// unconfirmed ("suspicious") ones.
package threatintel

import (
	"sort"

	"repro/internal/dnssim"
	"repro/internal/mathx"
)

// FeedCount is the number of simulated blacklist feeds VirusTotal
// aggregates, per the paper's "over 60 global blacklists".
const FeedCount = 60

// DefaultMinFeeds is the paper's confirmation rule: listed by at least
// two feeds.
const DefaultMinFeeds = 2

// Service simulates the VirusTotal aggregation plus ThreatBook family
// reports over a scenario's ground truth. It is immutable after
// construction and safe for concurrent use.
type Service struct {
	listings map[string][]int // e2LD -> sorted feed ids listing it
	truth    map[string]dnssim.Label
	minFeeds int
}

// Config parameterizes feed simulation.
type Config struct {
	// Seed drives feed coverage randomness.
	Seed uint64
	// MinFeeds is the confirmation threshold (default 2).
	MinFeeds int
	// MeanCoverage is the average probability that a feed lists a truly
	// malicious domain (default 0.08; with 60 feeds a malicious domain is
	// then listed by ≈5 feeds, and ~95% reach the 2-feed bar).
	MeanCoverage float64
	// FalsePositiveRate is the per-feed probability of listing a benign
	// domain (default 0.0004).
	FalsePositiveRate float64
	// UnregisteredCoverageFactor scales feed coverage for malicious
	// domains that never resolve (default 0.1): blacklists track live
	// infrastructure, so unregistered DGA names are rarely listed and
	// therefore mostly fail the confirmation rule — matching the paper's
	// VirusTotal-confirmed labeled set, which consists of real, active
	// blacklisted domains.
	UnregisteredCoverageFactor float64
}

func (c Config) withDefaults() Config {
	if c.MinFeeds <= 0 {
		c.MinFeeds = DefaultMinFeeds
	}
	if c.MeanCoverage <= 0 {
		c.MeanCoverage = 0.08
	}
	if c.FalsePositiveRate <= 0 {
		c.FalsePositiveRate = 0.0004
	}
	if c.UnregisteredCoverageFactor <= 0 {
		c.UnregisteredCoverageFactor = 0.1
	}
	return c
}

// NewService builds the simulated feeds over the scenario's ground truth.
func NewService(truth map[string]dnssim.Label, cfg Config) *Service {
	cfg = cfg.withDefaults()
	rng := mathx.NewRNG(cfg.Seed).SplitLabeled("threatintel")

	// Per-feed quality: coverage drawn around the mean, a few strong
	// feeds and a long tail of weak ones.
	coverage := make([]float64, FeedCount)
	for f := range coverage {
		coverage[f] = cfg.MeanCoverage * (0.2 + 1.6*rng.Float64())
	}

	s := &Service{
		listings: make(map[string][]int),
		truth:    make(map[string]dnssim.Label, len(truth)),
		minFeeds: cfg.MinFeeds,
	}
	// Deterministic iteration for reproducibility.
	domains := make([]string, 0, len(truth))
	for d := range truth {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for _, d := range domains {
		label := truth[d]
		s.truth[d] = label
		for f := 0; f < FeedCount; f++ {
			p := cfg.FalsePositiveRate
			if label.Malicious {
				p = coverage[f]
				if !label.Registered {
					p *= cfg.UnregisteredCoverageFactor
				}
			}
			if rng.Float64() < p {
				s.listings[d] = append(s.listings[d], f)
			}
		}
	}
	return s
}

// Listings returns the feed ids that list the domain (empty for unknown
// or unlisted domains).
func (s *Service) Listings(e2ld string) []int {
	return append([]int(nil), s.listings[e2ld]...)
}

// Validate implements the paper's confirmation rule: true when the
// domain appears on at least MinFeeds of the 60 feeds.
func (s *Service) Validate(e2ld string) bool {
	return len(s.listings[e2ld]) >= s.minFeeds
}

// Family returns the ThreatBook-style family report for a domain: the
// family name and style tag, with ok false for domains with no report
// (benign or unknown). Reports are only available for domains at least
// one feed lists — threat intel knows nothing about unlisted domains.
func (s *Service) Family(e2ld string) (family, style string, ok bool) {
	if len(s.listings[e2ld]) == 0 {
		return "", "", false
	}
	l, exists := s.truth[e2ld]
	if !exists || !l.Malicious {
		return "", "", false
	}
	return l.Family, l.Style, true
}

// LabeledSet assembles the supervised-learning data set of §6.1 from the
// domains visible in traffic: every observed domain with ground truth
// gets a label, but a malicious domain is only *labeled* malicious when
// the confirmation rule passes (unconfirmed malicious domains are
// excluded entirely, as the paper does). It returns parallel slices of
// domains and labels (1 = malicious).
func (s *Service) LabeledSet(observed []string) (domains []string, labels []int) {
	for _, d := range observed {
		l, ok := s.truth[d]
		if !ok {
			continue
		}
		if l.Malicious {
			if s.Validate(d) {
				domains = append(domains, d)
				labels = append(labels, 1)
			}
			continue
		}
		if s.Validate(d) {
			// Benign domain blacklisted by feed noise: the paper's
			// whitelist would exclude it; so do we.
			continue
		}
		domains = append(domains, d)
		labels = append(labels, 0)
	}
	return domains, labels
}

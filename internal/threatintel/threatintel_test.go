package threatintel

import (
	"sort"
	"testing"

	"repro/internal/dnssim"
)

func fixtureTruth() map[string]dnssim.Label {
	truth := make(map[string]dnssim.Label)
	for i := 0; i < 500; i++ {
		truth[domainName("mal", i)] = dnssim.Label{
			Malicious: true, Family: "fam-a", Style: "conficker", Registered: true,
		}
	}
	for i := 0; i < 1500; i++ {
		truth[domainName("ben", i)] = dnssim.Label{Style: "benign", Registered: true}
	}
	return truth
}

func domainName(prefix string, i int) string {
	return prefix + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)) + ".com"
}

func TestValidationSeparatesClasses(t *testing.T) {
	truth := fixtureTruth()
	svc := NewService(truth, Config{Seed: 1})
	malConfirmed, benConfirmed := 0, 0
	for d, l := range truth {
		if svc.Validate(d) {
			if l.Malicious {
				malConfirmed++
			} else {
				benConfirmed++
			}
		}
	}
	if malConfirmed < 400 {
		t.Errorf("only %d/500 malicious domains confirmed", malConfirmed)
	}
	if benConfirmed > 15 {
		t.Errorf("%d/1500 benign domains falsely confirmed", benConfirmed)
	}
}

func TestDeterministic(t *testing.T) {
	truth := fixtureTruth()
	a := NewService(truth, Config{Seed: 9})
	b := NewService(truth, Config{Seed: 9})
	for d := range truth {
		if a.Validate(d) != b.Validate(d) {
			t.Fatalf("validation for %s differs across identical services", d)
		}
	}
}

func TestListingsCopied(t *testing.T) {
	svc := NewService(fixtureTruth(), Config{Seed: 2})
	var anyListed string
	for d := range svc.listings {
		anyListed = d
		break
	}
	if anyListed == "" {
		t.Skip("no listings in fixture")
	}
	l := svc.Listings(anyListed)
	if len(l) > 0 {
		l[0] = -99
		if svc.listings[anyListed][0] == -99 {
			t.Fatal("Listings returned internal slice")
		}
	}
}

func TestFamilyReports(t *testing.T) {
	truth := fixtureTruth()
	svc := NewService(truth, Config{Seed: 3})
	reported := 0
	for d, l := range truth {
		fam, style, ok := svc.Family(d)
		if !l.Malicious {
			if ok {
				t.Fatalf("family report for benign domain %s", d)
			}
			continue
		}
		if ok {
			reported++
			if fam != "fam-a" || style != "conficker" {
				t.Fatalf("wrong report for %s: %s/%s", d, fam, style)
			}
		}
	}
	if reported < 400 {
		t.Errorf("only %d/500 malicious domains have family reports", reported)
	}
}

func TestUnknownDomain(t *testing.T) {
	svc := NewService(fixtureTruth(), Config{Seed: 4})
	if svc.Validate("never-seen.example") {
		t.Error("unknown domain validated")
	}
	if _, _, ok := svc.Family("never-seen.example"); ok {
		t.Error("unknown domain has family report")
	}
	if len(svc.Listings("never-seen.example")) != 0 {
		t.Error("unknown domain has listings")
	}
}

func TestLabeledSet(t *testing.T) {
	truth := fixtureTruth()
	svc := NewService(truth, Config{Seed: 5})
	var observed []string
	for d := range truth {
		observed = append(observed, d)
	}
	sort.Strings(observed)
	domains, labels := svc.LabeledSet(observed)
	if len(domains) != len(labels) {
		t.Fatal("misaligned output")
	}
	pos, neg := 0, 0
	for i, d := range domains {
		l := truth[d]
		switch labels[i] {
		case 1:
			pos++
			if !l.Malicious {
				t.Fatalf("benign domain %s labeled malicious", d)
			}
			if !svc.Validate(d) {
				t.Fatalf("unconfirmed domain %s in labeled set", d)
			}
		case 0:
			neg++
			if l.Malicious {
				t.Fatalf("malicious domain %s labeled benign", d)
			}
		}
	}
	if pos < 400 || neg < 1400 {
		t.Errorf("labeled set has %d positives and %d negatives", pos, neg)
	}
	// Observed-but-unknown domains are skipped.
	d2, _ := svc.LabeledSet([]string{"not-planted.org"})
	if len(d2) != 0 {
		t.Error("unknown observed domain entered the labeled set")
	}
}

func TestMinFeedsKnob(t *testing.T) {
	truth := fixtureTruth()
	loose := NewService(truth, Config{Seed: 6, MinFeeds: 1})
	strict := NewService(truth, Config{Seed: 6, MinFeeds: 10})
	looseCount, strictCount := 0, 0
	for d := range truth {
		if loose.Validate(d) {
			looseCount++
		}
		if strict.Validate(d) {
			strictCount++
		}
	}
	if strictCount >= looseCount {
		t.Errorf("stricter threshold confirmed more: %d vs %d", strictCount, looseCount)
	}
}

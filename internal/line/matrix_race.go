//go:build race || !(amd64 || arm64)

package line

import (
	"math"
	"sync/atomic"

	"repro/internal/mathx"
)

// matrix is the safe-path embedding store: an n×dim float64 matrix held
// as a flat slice of bit patterns accessed with sync/atomic. It gives
// the hogwild SGD workers lock-free shared updates without data races:
// concurrent addScaled calls to the same element may lose one increment
// (load and store are two operations), but every read and write is
// atomic, so the race detector is satisfied and no torn values are ever
// observed. It is selected under the race detector and on every
// platform where plain float64 accesses could tear (anything other than
// amd64/arm64); those 64-bit builds select the unsynchronized
// []float64 variant in matrix_norace.go, which skips the atomic traffic
// entirely. The uint64 slice is 64-bit aligned by the Go allocator, so
// the atomics are valid on 32-bit platforms too. With Workers=1 both
// variants perform identical arithmetic in the same order, so training
// stays bit-deterministic in the seed across build modes.
type matrix struct {
	n, dim int
	bits   []uint64
}

func newMatrix(n, dim int) *matrix {
	return &matrix{n: n, dim: dim, bits: make([]uint64, n*dim)}
}

// randomize fills the matrix with the standard LINE initialization,
// uniform in (-0.5/dim, 0.5/dim).
func (m *matrix) randomize(rng *mathx.RNG) {
	for i := range m.bits {
		m.bits[i] = math.Float64bits((rng.Float64() - 0.5) / float64(m.dim))
	}
}

// row copies row v into scratch and returns scratch.
func (m *matrix) row(v int32, scratch []float64) []float64 {
	base := int(v) * m.dim
	for i := range scratch {
		scratch[i] = math.Float64frombits(atomic.LoadUint64(&m.bits[base+i]))
	}
	return scratch
}

// addScaled adds s*x to row v element-wise.
func (m *matrix) addScaled(v int32, s float64, x []float64) {
	base := int(v) * m.dim
	for i, xv := range x {
		p := &m.bits[base+i]
		cur := math.Float64frombits(atomic.LoadUint64(p))
		atomic.StoreUint64(p, math.Float64bits(cur+s*xv))
	}
}

// set copies vals into row v. Called only before workers start (warm
// start); the atomic stores keep the race detector satisfied if that
// ever changes.
func (m *matrix) set(v int32, vals []float64) {
	base := int(v) * m.dim
	for i, x := range vals {
		atomic.StoreUint64(&m.bits[base+i], math.Float64bits(x))
	}
}

// rows converts the matrix to per-vertex slices once training finished;
// the caller owns the result.
func (m *matrix) rows() [][]float64 {
	out := make([][]float64, m.n)
	for v := 0; v < m.n; v++ {
		row := make([]float64, m.dim)
		base := v * m.dim
		for i := range row {
			row[i] = math.Float64frombits(m.bits[base+i])
		}
		out[v] = row
	}
	return out
}

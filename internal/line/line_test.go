package line

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/mathx"
)

// twoCliques builds two dense cliques of size k joined by one weak
// bridge edge — the canonical embedding sanity case: within-clique
// similarity must exceed cross-clique similarity.
func twoCliques(k int) *graph.Weighted {
	var edges []graph.Edge
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j), W: 1})
			edges = append(edges, graph.Edge{U: int32(k + i), V: int32(k + j), W: 1})
		}
	}
	edges = append(edges, graph.Edge{U: 0, V: int32(k), W: 0.05})
	g, err := graph.Build(2*k, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func cosine(a, b []float64) float64 {
	na, nb := mathx.Norm(a), mathx.Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return mathx.Dot(a, b) / (na * nb)
}

func cliqueSeparation(t *testing.T, order Order) float64 {
	t.Helper()
	// Negatives is kept below the default: on a 40-vertex toy graph the
	// noise distribution constantly collides with true neighbors, an
	// artifact that vanishes at the 10k-domain scale the pipeline runs at.
	const k = 20
	g := twoCliques(k)
	emb, err := Train(g, Config{Dim: 16, Order: order, Samples: 400_000, Seed: 7, Workers: 2, Negatives: 2})
	if err != nil {
		t.Fatal(err)
	}
	within, cross := 0.0, 0.0
	nw, nc := 0, 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			within += cosine(emb.Vectors[i], emb.Vectors[j])
			within += cosine(emb.Vectors[k+i], emb.Vectors[k+j])
			nw += 2
		}
		for j := 0; j < k; j++ {
			cross += cosine(emb.Vectors[i], emb.Vectors[k+j])
			nc++
		}
	}
	return within/float64(nw) - cross/float64(nc)
}

func TestCliqueSeparationFirstOrder(t *testing.T) {
	if sep := cliqueSeparation(t, OrderFirst); sep < 0.3 {
		t.Errorf("first-order within-cross separation = %.3f, want >= 0.3", sep)
	}
}

func TestCliqueSeparationSecondOrder(t *testing.T) {
	if sep := cliqueSeparation(t, OrderSecond); sep < 0.3 {
		t.Errorf("second-order within-cross separation = %.3f, want >= 0.3", sep)
	}
}

func TestCliqueSeparationBoth(t *testing.T) {
	if sep := cliqueSeparation(t, OrderBoth); sep < 0.3 {
		t.Errorf("combined within-cross separation = %.3f, want >= 0.3", sep)
	}
}

func TestSecondOrderCapturesSharedNeighborhoods(t *testing.T) {
	// Star-of-stars: vertices 1 and 2 share all their neighbors (hubs 3,
	// 4, 5) but have no edge between them. Second-order proximity must
	// embed them closely; vertex 0 attaches to different hubs (6, 7, 8).
	edges := []graph.Edge{
		{U: 1, V: 3, W: 1}, {U: 1, V: 4, W: 1}, {U: 1, V: 5, W: 1},
		{U: 2, V: 3, W: 1}, {U: 2, V: 4, W: 1}, {U: 2, V: 5, W: 1},
		{U: 0, V: 6, W: 1}, {U: 0, V: 7, W: 1}, {U: 0, V: 8, W: 1},
		// Weak connectivity so the graph is one component.
		{U: 3, V: 6, W: 0.05},
	}
	g, err := graph.Build(9, edges)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := Train(g, Config{Dim: 8, Order: OrderSecond, Samples: 300_000, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	same := cosine(emb.Vectors[1], emb.Vectors[2])
	diff := cosine(emb.Vectors[1], emb.Vectors[0])
	if same <= diff+0.2 {
		t.Errorf("second order: shared-neighborhood cos %.3f not above different-neighborhood cos %.3f", same, diff)
	}
}

func TestVectorsAreUnitNormPerPart(t *testing.T) {
	g := twoCliques(4)
	emb, err := Train(g, Config{Dim: 8, Order: OrderFirst, Samples: 50_000, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v, vec := range emb.Vectors {
		if len(vec) != 8 {
			t.Fatalf("vector %d has dim %d", v, len(vec))
		}
		if n := mathx.Norm(vec); math.Abs(n-1) > 1e-9 {
			t.Fatalf("vector %d norm %v, want 1", v, n)
		}
	}
}

func TestOrderBothConcatenates(t *testing.T) {
	g := twoCliques(4)
	emb, err := Train(g, Config{Dim: 16, Order: OrderBoth, Samples: 50_000, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, vec := range emb.Vectors {
		if len(vec) != 16 {
			t.Fatalf("combined vector has dim %d, want 16", len(vec))
		}
		// Each half is unit norm -> total norm sqrt(2).
		if n := mathx.Norm(vec); math.Abs(n-math.Sqrt2) > 1e-9 {
			t.Fatalf("combined norm %v, want sqrt(2)", n)
		}
	}
}

func TestOddDimRejectedForBoth(t *testing.T) {
	g := twoCliques(3)
	if _, err := Train(g, Config{Dim: 15, Order: OrderBoth, Samples: 1000}); err == nil {
		t.Fatal("odd Dim accepted for OrderBoth")
	}
}

func TestSelfLoopEdgesAreSkipped(t *testing.T) {
	// graph.Build rejects self-loops, but package line does not control
	// its inputs: a hand-built Weighted can carry u==v edges. In the
	// first-order objective a self-loop would alias src and dst (the
	// unsynchronized matrix returns live rows), so trainOrder skips
	// them; training must stay finite and Workers=1 deterministic.
	g := &graph.Weighted{
		N:      3,
		EdgesU: []int32{0, 1, 2},
		EdgesV: []int32{1, 2, 2}, // (2,2) is a self-loop
		EdgesW: []float64{1, 1, 5},
		Degree: []float64{1, 2, 11},
	}
	cfg := Config{Dim: 8, Order: OrderFirst, Samples: 20_000, Seed: 3, Workers: 1, Negatives: 2}
	e1, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range e1.Vectors {
		for i := range e1.Vectors[v] {
			x := e1.Vectors[v][i]
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("vertex %d component %d is %v", v, i, x)
			}
			if x != e2.Vectors[v][i] {
				t.Fatalf("vertex %d differs across identically seeded runs: %v vs %v",
					v, x, e2.Vectors[v][i])
			}
		}
	}
}

func TestDeterministicSingleWorker(t *testing.T) {
	g := twoCliques(5)
	cfg := Config{Dim: 8, Order: OrderFirst, Samples: 20_000, Seed: 11, Workers: 1}
	a, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Vectors {
		for i := range a.Vectors[v] {
			if a.Vectors[v][i] != b.Vectors[v][i] {
				t.Fatalf("vertex %d dim %d differs across identical runs", v, i)
			}
		}
	}
}

func TestIsolatedVerticesGetFiniteVectors(t *testing.T) {
	// Vertices 4 and 5 are isolated.
	edges := []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}}
	g, err := graph.Build(6, edges)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := Train(g, Config{Dim: 8, Order: OrderBoth, Samples: 10_000, Seed: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v, vec := range emb.Vectors {
		for i, x := range vec {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("vertex %d dim %d is %v", v, i, x)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := graph.Build(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := Train(g, Config{Dim: 8, Samples: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Vectors) != 0 {
		t.Fatal("empty graph produced vectors")
	}
}

func TestEdgelessGraphStillEmbeds(t *testing.T) {
	g, err := graph.Build(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := Train(g, Config{Dim: 8, Order: OrderFirst, Samples: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Vectors) != 5 {
		t.Fatalf("got %d vectors, want 5", len(emb.Vectors))
	}
}

func TestWeightsInfluenceEmbedding(t *testing.T) {
	// Triangle where 0-1 has weight 100 and the other edges 0.01: vertex
	// 0 should embed much closer to 1 than to 2.
	edges := []graph.Edge{
		{U: 0, V: 1, W: 100},
		{U: 0, V: 2, W: 0.01},
		{U: 1, V: 2, W: 0.01},
	}
	g, err := graph.Build(3, edges)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := Train(g, Config{Dim: 8, Order: OrderFirst, Samples: 100_000, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	strong := cosine(emb.Vectors[0], emb.Vectors[1])
	weak := cosine(emb.Vectors[0], emb.Vectors[2])
	if strong <= weak {
		t.Errorf("heavy edge cos %.3f not above light edge cos %.3f", strong, weak)
	}
}

func TestWarmStartInitValidation(t *testing.T) {
	g := twoCliques(3)
	if _, err := Train(g, Config{Dim: 8, Order: OrderFirst, Samples: 1000, Init: make([][]float64, 2)}); err == nil {
		t.Fatal("Init with wrong vertex count accepted")
	}
	bad := make([][]float64, 6)
	bad[0] = make([]float64, 5)
	if _, err := Train(g, Config{Dim: 8, Order: OrderFirst, Samples: 1000, Init: bad}); err == nil {
		t.Fatal("Init row with wrong dim accepted")
	}
}

func TestWarmStartSeedsVectors(t *testing.T) {
	// With zero effective training (Samples so small each worker does ~1
	// step) a warm-started vertex must stay near its init direction while
	// differing from the cold run, proving the rows were applied.
	g := twoCliques(4)
	cold, err := Train(g, Config{Dim: 8, Order: OrderBoth, Samples: 8, Seed: 9, Workers: 1, Negatives: 1})
	if err != nil {
		t.Fatal(err)
	}
	init := make([][]float64, len(cold.Vectors))
	for v := range init {
		row := make([]float64, 8)
		// A distinctive direction: all mass on one component per half.
		row[v%4] = 1
		row[4+(v+1)%4] = 1
		init[v] = row
	}
	warm, err := Train(g, Config{Dim: 8, Order: OrderBoth, Samples: 8, Seed: 9, Workers: 1, Negatives: 1, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	for v := range warm.Vectors {
		if c := cosine(warm.Vectors[v], init[v]); c < 0.9 {
			t.Errorf("vertex %d drifted from its warm init: cos %.3f", v, c)
		}
	}
	same := true
	for v := range warm.Vectors {
		for i := range warm.Vectors[v] {
			if warm.Vectors[v][i] != cold.Vectors[v][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("warm-started embedding identical to cold start")
	}
}

func TestWarmStartShrinksAutoSamples(t *testing.T) {
	g := twoCliques(4)
	cold, err := Train(g, Config{Dim: 8, Order: OrderFirst, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	init := make([][]float64, len(cold.Vectors))
	copy(init, cold.Vectors)
	warm, err := Train(g, Config{Dim: 8, Order: OrderFirst, Seed: 1, Workers: 1, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Samples >= cold.Samples {
		t.Errorf("warm auto budget %d not below cold %d", warm.Samples, cold.Samples)
	}
	// An explicit Samples value must be respected exactly in both modes.
	explicit, err := Train(g, Config{Dim: 8, Order: OrderFirst, Samples: 12_345, Seed: 1, Workers: 1, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Samples != 12_345 {
		t.Errorf("explicit sample count overridden: %d", explicit.Samples)
	}
}

func BenchmarkTrainFirstOrder(b *testing.B) {
	g := twoCliques(20)
	for i := 0; i < b.N; i++ {
		if _, err := Train(g, Config{Dim: 32, Order: OrderFirst, Samples: 200_000, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

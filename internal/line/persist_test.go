package line

import (
	"bytes"
	"strings"
	"testing"
)

func TestEmbeddingSaveLoadRoundTrip(t *testing.T) {
	g := twoCliques(5)
	emb, err := Train(g, Config{Dim: 8, Order: OrderFirst, Samples: 20_000, Seed: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEmbedding(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim != emb.Dim || len(back.Vectors) != len(emb.Vectors) {
		t.Fatalf("shape mismatch after reload")
	}
	for v := range emb.Vectors {
		for i := range emb.Vectors[v] {
			if back.Vectors[v][i] != emb.Vectors[v][i] {
				t.Fatalf("vector %d differs after reload", v)
			}
		}
	}
}

func TestLoadEmbeddingRejectsGarbage(t *testing.T) {
	if _, err := LoadEmbedding(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage stream accepted")
	}
}

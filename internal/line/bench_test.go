package line

import (
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/mathx"
)

// benchGraph builds a reproducible sparse random graph with n vertices
// and n*avgDeg/2 distinct edges — the shape of a projection graph at
// test scale, without the cost of generating traffic first.
func benchGraph(n, avgDeg int, seed uint64) *graph.Weighted {
	rng := mathx.NewRNG(seed)
	m := n * avgDeg / 2
	seen := make(map[[2]int32]bool, m)
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int32{u, v}] {
			continue
		}
		seen[[2]int32{u, v}] = true
		edges = append(edges, graph.Edge{U: u, V: v, W: rng.Float64() + 0.1})
	}
	g, err := graph.Build(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// BenchmarkLINETrainOrder measures raw SGD throughput for each objective
// at Workers=1 (the deterministic configuration) and Workers=GOMAXPROCS
// (the hogwild configuration), reporting samples/sec so BENCH_*.json
// snapshots track the hot-loop trajectory across PRs.
func BenchmarkLINETrainOrder(b *testing.B) {
	g := benchGraph(1000, 16, 99)
	const samples = 500_000
	cases := []struct {
		name    string
		order   Order
		workers int
	}{
		{"first/workers=1", OrderFirst, 1},
		{"first/workers=max", OrderFirst, runtime.GOMAXPROCS(0)},
		{"second/workers=1", OrderSecond, 1},
		{"second/workers=max", OrderSecond, runtime.GOMAXPROCS(0)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Train(g, Config{
					Dim:     32,
					Order:   tc.order,
					Samples: samples,
					Seed:    42,
					Workers: tc.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(samples)*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
		})
	}
}

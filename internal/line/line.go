// Package line implements the LINE graph-embedding algorithm (Tang et
// al., WWW 2015) the paper uses to learn latent feature representations
// of domains from the similarity projection graphs (§5).
//
// LINE learns low-dimensional vertex vectors that preserve first-order
// proximity (directly connected vertices embed closely, weighted by edge
// weight) and second-order proximity (vertices with similar neighborhoods
// embed closely). Training follows the reference implementation:
// stochastic gradient descent where each step samples one edge with
// probability proportional to its weight (alias sampling), treats it as a
// positive example, and draws K negative vertices from the noise
// distribution P(v) ∝ deg(v)^0.75 (§5.2, Eqs. 4-6).
//
// Optimization is asynchronous (hogwild-style): workers update the shared
// embedding matrices without locking. The matrices are stored as flat
// float64 bit patterns accessed through sync/atomic, so concurrent
// updates are data-race-free (and `go test -race` clean); colliding
// updates may still lose an increment, which is exactly the perturbation
// hogwild SGD tolerates. With Workers=1 training is fully deterministic
// in the seed.
package line

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/mathx"
)

// Order selects which proximity objective(s) to train.
type Order int

// Proximity orders.
const (
	// OrderFirst trains only the first-order objective.
	OrderFirst Order = 1
	// OrderSecond trains only the second-order objective.
	OrderSecond Order = 2
	// OrderBoth trains both and concatenates the two embeddings, as the
	// LINE paper recommends; each half has Dim/2 dimensions.
	OrderBoth Order = 3
)

// Config parameterizes training.
type Config struct {
	// Dim is the output embedding dimension (per vertex). For OrderBoth
	// it must be even; each objective contributes Dim/2 dimensions.
	Dim int
	// Order selects the proximity objective (default OrderBoth).
	Order Order
	// Samples is the total number of SGD edge samples across all
	// workers. Default 200 × edge count, clamped to [200k, 30M] so
	// month-scale projection graphs stay tractable.
	Samples int
	// Negatives is the number of negative samples per positive edge
	// (default 5).
	Negatives int
	// InitialLR is the starting learning rate, decayed linearly to 1% of
	// itself over training (default 0.025).
	InitialLR float64
	// Workers bounds parallelism (default GOMAXPROCS). Training is
	// deterministic only when Workers is 1.
	Workers int
	// Seed drives initialization and sampling.
	Seed uint64
}

func (c Config) withDefaults(edgeCount int) (Config, error) {
	if c.Dim <= 0 {
		c.Dim = 32
	}
	if c.Order == 0 {
		c.Order = OrderBoth
	}
	if c.Order == OrderBoth && c.Dim%2 != 0 {
		return c, fmt.Errorf("line: Dim must be even for OrderBoth, got %d", c.Dim)
	}
	if c.Samples <= 0 {
		c.Samples = 200 * edgeCount
		if c.Samples < 200_000 {
			c.Samples = 200_000
		}
		if c.Samples > 30_000_000 {
			c.Samples = 30_000_000
		}
	}
	if c.Negatives <= 0 {
		c.Negatives = 5
	}
	if c.InitialLR <= 0 {
		c.InitialLR = 0.025
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c, nil
}

// Embedding holds the learned vertex representations: Vectors[v] is the
// L2-normalized embedding of vertex v.
type Embedding struct {
	Dim     int
	Vectors [][]float64
}

// Train learns embeddings for all vertices of g. Isolated vertices keep
// their (small, random) initialization, normalized; they carry no
// structural information and embed near-orthogonally to everything.
func Train(g *graph.Weighted, cfg Config) (*Embedding, error) {
	cfg, err := cfg.withDefaults(g.EdgeCount())
	if err != nil {
		return nil, err
	}
	if g.N == 0 {
		return &Embedding{Dim: cfg.Dim}, nil
	}

	var parts [][][]float64
	switch cfg.Order {
	case OrderFirst:
		part, err := trainOrder(g, cfg, false)
		if err != nil {
			return nil, err
		}
		parts = [][][]float64{part}
	case OrderSecond:
		part, err := trainOrder(g, cfg, true)
		if err != nil {
			return nil, err
		}
		parts = [][][]float64{part}
	case OrderBoth:
		half := cfg
		half.Dim = cfg.Dim / 2
		p1, err := trainOrder(g, half, false)
		if err != nil {
			return nil, err
		}
		half.Seed = cfg.Seed ^ 0x5bd1e995
		p2, err := trainOrder(g, half, true)
		if err != nil {
			return nil, err
		}
		parts = [][][]float64{p1, p2}
	default:
		return nil, fmt.Errorf("line: unknown order %d", cfg.Order)
	}

	emb := &Embedding{Dim: cfg.Dim, Vectors: make([][]float64, g.N)}
	for v := 0; v < g.N; v++ {
		var vec []float64
		for _, p := range parts {
			mathx.Normalize(p[v])
			vec = append(vec, p[v]...)
		}
		emb.Vectors[v] = vec
	}
	return emb, nil
}

// trainOrder runs SGD for one objective. When secondOrder is true, a
// separate context matrix is used and positives/negatives score against
// contexts; otherwise vertices score against each other directly.
func trainOrder(g *graph.Weighted, cfg Config, secondOrder bool) ([][]float64, error) {
	if g.EdgeCount() == 0 {
		// No structure to train on; return the random init so callers
		// still get valid (meaningless) vectors.
		rng := mathx.NewRNG(cfg.Seed)
		return randomInit(g.N, cfg.Dim, rng), nil
	}

	edgeSampler, err := graph.NewAliasTable(g.EdgesW)
	if err != nil {
		return nil, fmt.Errorf("line: building edge sampler: %w", err)
	}
	noise := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		noise[v] = math.Pow(g.Degree[v], 0.75)
	}
	noiseSampler, err := graph.NewAliasTable(noise)
	if err != nil {
		return nil, fmt.Errorf("line: building noise sampler: %w", err)
	}

	root := mathx.NewRNG(cfg.Seed)
	emb := newAtomicMatrix(g.N, cfg.Dim)
	emb.randomize(root)
	tgt := emb
	if secondOrder {
		tgt = newAtomicMatrix(g.N, cfg.Dim) // context matrix starts at zero
	}

	var wg sync.WaitGroup
	perWorker := cfg.Samples / cfg.Workers
	if perWorker == 0 {
		perWorker = 1
	}
	total := float64(cfg.Samples)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(rng *mathx.RNG, workerID int) {
			defer wg.Done()
			src := make([]float64, cfg.Dim)
			dst := make([]float64, cfg.Dim)
			grad := make([]float64, cfg.Dim)
			for s := 0; s < perWorker; s++ {
				// Linear LR decay on local progress; workers advance in
				// lockstep on average.
				progress := float64(workerID*perWorker+s) / total
				lr := cfg.InitialLR * (1 - progress)
				if lr < cfg.InitialLR*0.0001 {
					lr = cfg.InitialLR * 0.0001
				}

				ei := edgeSampler.Sample(rng)
				u, v := g.EdgesU[ei], g.EdgesV[ei]
				// Undirected edge: train in a random direction each step.
				if rng.Float64() < 0.5 {
					u, v = v, u
				}
				emb.load(u, src)
				for i := range grad {
					grad[i] = 0
				}
				// Positive example.
				tgt.load(v, dst)
				g1 := (1 - mathx.Sigmoid(mathx.Dot(src, dst))) * lr
				mathx.AddScaled(grad, g1, dst)
				tgt.addScaled(v, g1, src)
				// Negative samples.
				for k := 0; k < cfg.Negatives; k++ {
					nv := int32(noiseSampler.Sample(rng))
					if nv == v || nv == u {
						continue
					}
					tgt.load(nv, dst)
					gn := -mathx.Sigmoid(mathx.Dot(src, dst)) * lr
					mathx.AddScaled(grad, gn, dst)
					tgt.addScaled(nv, gn, src)
				}
				emb.addScaled(u, 1, grad)
			}
		}(root.Split(), w)
	}
	wg.Wait()
	return emb.rows(), nil
}

// atomicMatrix is an n×dim float64 matrix stored as a flat slice of bit
// patterns accessed with sync/atomic. It gives the hogwild SGD workers
// lock-free shared updates without data races: concurrent addScaled
// calls to the same element may lose one increment (load and store are
// two operations), but every read and write is atomic, so the race
// detector is satisfied and no torn values are ever observed.
type atomicMatrix struct {
	n, dim int
	bits   []uint64
}

func newAtomicMatrix(n, dim int) *atomicMatrix {
	return &atomicMatrix{n: n, dim: dim, bits: make([]uint64, n*dim)}
}

// randomize fills the matrix with the standard LINE initialization,
// uniform in (-0.5/dim, 0.5/dim).
func (m *atomicMatrix) randomize(rng *mathx.RNG) {
	for i := range m.bits {
		m.bits[i] = math.Float64bits((rng.Float64() - 0.5) / float64(m.dim))
	}
}

// load copies row v into dst.
func (m *atomicMatrix) load(v int32, dst []float64) {
	base := int(v) * m.dim
	for i := range dst {
		dst[i] = math.Float64frombits(atomic.LoadUint64(&m.bits[base+i]))
	}
}

// addScaled adds s*x to row v element-wise.
func (m *atomicMatrix) addScaled(v int32, s float64, x []float64) {
	base := int(v) * m.dim
	for i, xv := range x {
		p := &m.bits[base+i]
		cur := math.Float64frombits(atomic.LoadUint64(p))
		atomic.StoreUint64(p, math.Float64bits(cur+s*xv))
	}
}

// rows converts the matrix to per-vertex slices once training finished;
// the caller owns the result.
func (m *atomicMatrix) rows() [][]float64 {
	out := make([][]float64, m.n)
	for v := 0; v < m.n; v++ {
		row := make([]float64, m.dim)
		base := v * m.dim
		for i := range row {
			row[i] = math.Float64frombits(m.bits[base+i])
		}
		out[v] = row
	}
	return out
}

// randomInit mirrors atomicMatrix.randomize for the no-edge early path,
// which never spawns workers and has no need for atomics.
func randomInit(n, dim int, rng *mathx.RNG) [][]float64 {
	out := make([][]float64, n)
	for v := range out {
		vec := make([]float64, dim)
		for i := range vec {
			vec[i] = (rng.Float64() - 0.5) / float64(dim)
		}
		out[v] = vec
	}
	return out
}

// Save writes the embedding to w (gob encoding), so the expensive SGD
// training runs once and deployments load the vectors.
func (e *Embedding) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(embeddingWire{Dim: e.Dim, Vectors: e.Vectors}); err != nil {
		return fmt.Errorf("line: encoding embedding: %w", err)
	}
	return nil
}

// LoadEmbedding reads an embedding written by Save.
func LoadEmbedding(r io.Reader) (*Embedding, error) {
	var wire embeddingWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("line: decoding embedding: %w", err)
	}
	for i, v := range wire.Vectors {
		if len(v) != wire.Dim {
			return nil, fmt.Errorf("line: corrupt embedding: vector %d has dim %d, want %d",
				i, len(v), wire.Dim)
		}
	}
	return &Embedding{Dim: wire.Dim, Vectors: wire.Vectors}, nil
}

// embeddingWire is the serialized form of Embedding.
type embeddingWire struct {
	Dim     int
	Vectors [][]float64
}

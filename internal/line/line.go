// Package line implements the LINE graph-embedding algorithm (Tang et
// al., WWW 2015) the paper uses to learn latent feature representations
// of domains from the similarity projection graphs (§5).
//
// LINE learns low-dimensional vertex vectors that preserve first-order
// proximity (directly connected vertices embed closely, weighted by edge
// weight) and second-order proximity (vertices with similar neighborhoods
// embed closely). Training follows the reference implementation:
// stochastic gradient descent where each step samples one edge with
// probability proportional to its weight (alias sampling), treats it as a
// positive example, and draws K negative vertices from the noise
// distribution P(v) ∝ deg(v)^0.75 (§5.2, Eqs. 4-6).
//
// Optimization is asynchronous (hogwild-style): workers update the shared
// embedding matrices without locking. The matrix storage is selected by
// build tag (see matrix_norace.go / matrix_race.go): normal builds on
// 64-bit platforms (amd64/arm64, where aligned float64 accesses never
// tear) use a plain []float64 with genuinely unsynchronized hogwild
// updates — the reference implementation's scheme — while race-detector
// builds and other architectures swap in an atomic bit-pattern matrix,
// so `go test -race` stays clean and 32-bit builds stay torn-free. The
// production hogwild path is thus intentionally exempt from race
// checking: the detector exercises the atomic variant. Colliding
// updates may lose an increment in either variant, which is exactly the
// perturbation hogwild SGD tolerates. With Workers=1 training is fully
// deterministic in the seed.
//
// The SGD inner loop avoids per-sample transcendental and bookkeeping
// costs: the logistic function is a 1024-interval lookup table
// (mathx.FastSigmoid, bounded at ±6 like the reference implementation),
// the learning rate is recomputed only every lrInterval samples, and
// negative sampling retries collisions in place instead of dropping the
// sample.
//
//maldlint:deterministic
package line

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/mathx"
)

// Order selects which proximity objective(s) to train.
type Order int

// Proximity orders.
const (
	// OrderFirst trains only the first-order objective.
	OrderFirst Order = 1
	// OrderSecond trains only the second-order objective.
	OrderSecond Order = 2
	// OrderBoth trains both and concatenates the two embeddings, as the
	// LINE paper recommends; each half has Dim/2 dimensions.
	OrderBoth Order = 3
)

// Config parameterizes training.
type Config struct {
	// Dim is the output embedding dimension (per vertex). For OrderBoth
	// it must be even; each objective contributes Dim/2 dimensions.
	Dim int
	// Order selects the proximity objective (default OrderBoth).
	Order Order
	// Samples is the total number of SGD edge samples across all
	// workers. Default 200 × edge count, clamped to [200k, 30M] so
	// month-scale projection graphs stay tractable.
	Samples int
	// Negatives is the number of negative samples per positive edge
	// (default 5).
	Negatives int
	// InitialLR is the starting learning rate, decayed linearly to 1% of
	// itself over training (default 0.025).
	InitialLR float64
	// Workers bounds parallelism (default GOMAXPROCS). Training is
	// deterministic only when Workers is 1.
	Workers int
	// Seed drives initialization and sampling.
	Seed uint64
	// Init optionally warm-starts training: when non-nil it must have one
	// entry per vertex, and every non-nil row (length Dim) replaces that
	// vertex's random initialization. For OrderBoth the first Dim/2
	// components seed the first-order matrix and the rest the
	// second-order vertex matrix (the second-order context matrix always
	// starts at zero, as in a cold start). Rows are copied, never
	// mutated. A warm start from previously converged vectors needs far
	// fewer SGD samples, so when Samples is 0 the automatic sample count
	// is scaled down by warmSampleScale.
	Init [][]float64
}

func (c Config) withDefaults(edgeCount int) (Config, error) {
	if c.Dim <= 0 {
		c.Dim = 32
	}
	if c.Order == 0 {
		c.Order = OrderBoth
	}
	if c.Order == OrderBoth && c.Dim%2 != 0 {
		return c, fmt.Errorf("line: Dim must be even for OrderBoth, got %d", c.Dim)
	}
	if c.Samples <= 0 {
		c.Samples = 200 * edgeCount
		lo, hi := 200_000, 30_000_000
		if c.Init != nil {
			// Warm start: most vertices begin near their converged
			// position, so the budget only has to move the new vertices
			// and track the drift of the old ones.
			c.Samples = int(float64(c.Samples) * warmSampleScale)
			lo = int(float64(lo) * warmSampleScale)
			hi = int(float64(hi) * warmSampleScale)
		}
		if c.Samples < lo {
			c.Samples = lo
		}
		if c.Samples > hi {
			c.Samples = hi
		}
	}
	if c.Negatives <= 0 {
		c.Negatives = 5
	}
	if c.InitialLR <= 0 {
		c.InitialLR = 0.025
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c, nil
}

// Embedding holds the learned vertex representations: Vectors[v] is the
// L2-normalized embedding of vertex v.
type Embedding struct {
	Dim     int
	Vectors [][]float64
	// Samples is the total number of SGD edge samples Train performed
	// (summed over both objectives for OrderBoth; 0 for edgeless
	// graphs). Reported in build telemetry; not persisted by Save.
	Samples int
}

// Train learns embeddings for all vertices of g. Isolated vertices keep
// their (small, random) initialization, normalized; they carry no
// structural information and embed near-orthogonally to everything.
func Train(g *graph.Weighted, cfg Config) (*Embedding, error) {
	cfg, err := cfg.withDefaults(g.EdgeCount())
	if err != nil {
		return nil, err
	}
	if g.N == 0 {
		return &Embedding{Dim: cfg.Dim}, nil
	}
	if cfg.Init != nil {
		if len(cfg.Init) != g.N {
			return nil, fmt.Errorf("line: Init has %d rows for %d vertices", len(cfg.Init), g.N)
		}
		for v, row := range cfg.Init {
			if row != nil && len(row) != cfg.Dim {
				return nil, fmt.Errorf("line: Init row %d has dim %d, want %d", v, len(row), cfg.Dim)
			}
		}
	}

	orders := 1
	var parts [][][]float64
	switch cfg.Order {
	case OrderFirst:
		part, err := trainOrder(g, cfg, false, 0)
		if err != nil {
			return nil, err
		}
		parts = [][][]float64{part}
	case OrderSecond:
		part, err := trainOrder(g, cfg, true, 0)
		if err != nil {
			return nil, err
		}
		parts = [][][]float64{part}
	case OrderBoth:
		orders = 2
		half := cfg
		half.Dim = cfg.Dim / 2
		p1, err := trainOrder(g, half, false, 0)
		if err != nil {
			return nil, err
		}
		half.Seed = cfg.Seed ^ 0x5bd1e995
		p2, err := trainOrder(g, half, true, half.Dim)
		if err != nil {
			return nil, err
		}
		parts = [][][]float64{p1, p2}
	default:
		return nil, fmt.Errorf("line: unknown order %d", cfg.Order)
	}

	emb := &Embedding{Dim: cfg.Dim, Vectors: make([][]float64, g.N)}
	if g.EdgeCount() > 0 {
		emb.Samples = orders * cfg.Samples
	}
	for v := 0; v < g.N; v++ {
		var vec []float64
		for _, p := range parts {
			mathx.Normalize(p[v])
			vec = append(vec, p[v]...)
		}
		emb.Vectors[v] = vec
	}
	return emb, nil
}

// trainOrder runs SGD for one objective. When secondOrder is true, a
// separate context matrix is used and positives/negatives score against
// contexts; otherwise vertices score against each other directly.
// initOff is the offset into Config.Init rows where this objective's
// Dim-sized slice of the warm-start vector begins (nonzero only for the
// second half of OrderBoth).
func trainOrder(g *graph.Weighted, cfg Config, secondOrder bool, initOff int) ([][]float64, error) {
	if g.EdgeCount() == 0 {
		// No structure to train on; return the random init (overridden by
		// warm-start rows) so callers still get valid vectors.
		rng := mathx.NewRNG(cfg.Seed)
		out := randomInit(g.N, cfg.Dim, rng)
		for v, row := range cfg.Init {
			if row != nil {
				copy(out[v], row[initOff:initOff+cfg.Dim])
			}
		}
		return out, nil
	}

	edgeSampler, err := graph.NewAliasTable(g.EdgesW)
	if err != nil {
		return nil, fmt.Errorf("line: building edge sampler: %w", err)
	}
	noise := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		noise[v] = math.Pow(g.Degree[v], 0.75)
	}
	noiseSampler, err := graph.NewAliasTable(noise)
	if err != nil {
		return nil, fmt.Errorf("line: building noise sampler: %w", err)
	}

	root := mathx.NewRNG(cfg.Seed)
	emb := newMatrix(g.N, cfg.Dim)
	emb.randomize(root)
	for v, row := range cfg.Init {
		if row != nil {
			emb.set(int32(v), row[initOff:initOff+cfg.Dim])
		}
	}
	tgt := emb
	if secondOrder {
		tgt = newMatrix(g.N, cfg.Dim) // context matrix starts at zero
	}

	var wg sync.WaitGroup
	perWorker := cfg.Samples / cfg.Workers
	if perWorker == 0 {
		perWorker = 1
	}
	total := float64(cfg.Samples)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(rng *mathx.RNG, workerID int) {
			defer wg.Done()
			srcScratch := make([]float64, cfg.Dim)
			dstScratch := make([]float64, cfg.Dim)
			grad := make([]float64, cfg.Dim)
			lr := cfg.InitialLR
			floorLR := cfg.InitialLR * 0.0001
			for s := 0; s < perWorker; s++ {
				// Hoisted LR schedule: linear decay on local progress,
				// recomputed every lrInterval samples instead of per
				// sample. Workers advance in lockstep on average, and the
				// LR changes by at most InitialLR·lrInterval/total ≈ 1e-5
				// of its range between refreshes.
				if s%lrInterval == 0 {
					progress := float64(workerID*perWorker+s) / total
					lr = cfg.InitialLR * (1 - progress)
					if lr < floorLR {
						lr = floorLR
					}
				}

				ei := edgeSampler.Sample(rng)
				u, v := g.EdgesU[ei], g.EdgesV[ei]
				// Skip self-loops: with tgt == emb (first order) they would
				// alias src and dst, and the unsynchronized matrix's live
				// rows would let the negative-sample dots observe the
				// positive update mid-step — diverging from the atomic
				// variant's scratch-copy reads and breaking the Workers=1
				// cross-build bit-identical guarantee. Projection graphs
				// never contain them (edges always have U < V), so this is
				// purely defensive.
				if u == v {
					continue
				}
				// Undirected edge: train in a random direction each step.
				if rng.Float64() < 0.5 {
					u, v = v, u
				}
				src := emb.row(u, srcScratch)
				for i := range grad {
					grad[i] = 0
				}
				// Positive example.
				dst := tgt.row(v, dstScratch)
				g1 := (1 - mathx.FastSigmoid(mathx.Dot(src, dst))) * lr
				mathx.AddScaled(grad, g1, dst)
				tgt.addScaled(v, g1, src)
				// Negative samples: resample collisions with the positive
				// pair in place (bounded rejection loop) so every step
				// trains on the configured number of negatives instead of
				// silently dropping some on dense toy graphs.
				for k := 0; k < cfg.Negatives; k++ {
					nv := int32(noiseSampler.Sample(rng))
					for tries := 0; (nv == v || nv == u) && tries < negRetries; tries++ {
						nv = int32(noiseSampler.Sample(rng))
					}
					if nv == v || nv == u {
						continue
					}
					dst = tgt.row(nv, dstScratch)
					gn := -mathx.FastSigmoid(mathx.Dot(src, dst)) * lr
					mathx.AddScaled(grad, gn, dst)
					tgt.addScaled(nv, gn, src)
				}
				emb.addScaled(u, 1, grad)
			}
		}(root.Split(), w)
	}
	wg.Wait()
	return emb.rows(), nil
}

// Inner-loop tuning constants.
const (
	// lrInterval is how many samples a worker processes between learning
	// rate refreshes; the schedule is linear, so the LR drifts by a
	// negligible amount within one interval.
	lrInterval = 1024
	// negRetries bounds the negative-sample rejection loop so degenerate
	// graphs (where the noise distribution nearly always returns the
	// positive pair) cannot stall a worker.
	negRetries = 3
	// warmSampleScale shrinks the automatic sample budget (and its
	// clamps) when Config.Init warm-starts training: seeded vertices
	// start near their converged positions, so a fraction of the cold
	// budget suffices to absorb new vertices and drift.
	warmSampleScale = 0.4
)

// randomInit mirrors matrix.randomize for the no-edge early path,
// which never spawns workers and has no need for atomics.
func randomInit(n, dim int, rng *mathx.RNG) [][]float64 {
	out := make([][]float64, n)
	for v := range out {
		vec := make([]float64, dim)
		for i := range vec {
			vec[i] = (rng.Float64() - 0.5) / float64(dim)
		}
		out[v] = vec
	}
	return out
}

// Save writes the embedding to w (gob encoding), so the expensive SGD
// training runs once and deployments load the vectors.
func (e *Embedding) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(embeddingWire{Dim: e.Dim, Vectors: e.Vectors}); err != nil {
		return fmt.Errorf("line: encoding embedding: %w", err)
	}
	return nil
}

// LoadEmbedding reads an embedding written by Save.
func LoadEmbedding(r io.Reader) (*Embedding, error) {
	var wire embeddingWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("line: decoding embedding: %w", err)
	}
	for i, v := range wire.Vectors {
		if len(v) != wire.Dim {
			return nil, fmt.Errorf("line: corrupt embedding: vector %d has dim %d, want %d",
				i, len(v), wire.Dim)
		}
	}
	return &Embedding{Dim: wire.Dim, Vectors: wire.Vectors}, nil
}

// embeddingWire is the serialized form of Embedding.
type embeddingWire struct {
	Dim     int
	Vectors [][]float64
}

//go:build !race && (amd64 || arm64)

package line

import "repro/internal/mathx"

// matrix is the fast-path embedding store: one flat []float64 shared by
// all hogwild SGD workers with no synchronization at all. This is the
// true lock-free scheme of the reference LINE implementation (Tang et
// al., WWW 2015): colliding updates may lose an increment and readers
// may observe a row mid-update, which is exactly the perturbation
// hogwild SGD tolerates. It is selected only on 64-bit platforms
// (amd64/arm64), where aligned float64 loads and stores are
// single-instruction and never tear; everywhere else — and under the
// race detector — matrix_race.go's atomic bit-pattern variant is used
// instead, so 32-bit builds never observe torn values and
// `go test -race ./...` stays clean. That build split is a deliberate
// carve-out: the production hogwild path is intentionally exempt from
// race checking (the whole point is unsynchronized updates, which the
// detector would rightly flag), so the race suite validates the atomic
// variant while this file's correctness rests on the single-instruction
// access guarantee plus hogwild's tolerance of lost increments. With
// Workers=1 both variants perform identical arithmetic in the same
// order, so training stays bit-deterministic in the seed across build
// modes (provided the graph has no self-loops; trainOrder skips them,
// see line.go).
type matrix struct {
	n, dim int
	data   []float64
}

func newMatrix(n, dim int) *matrix {
	return &matrix{n: n, dim: dim, data: make([]float64, n*dim)}
}

// randomize fills the matrix with the standard LINE initialization,
// uniform in (-0.5/dim, 0.5/dim).
func (m *matrix) randomize(rng *mathx.RNG) {
	for i := range m.data {
		m.data[i] = (rng.Float64() - 0.5) / float64(m.dim)
	}
}

// row returns the live storage of row v; scratch is unused in this
// build (the race-build variant fills and returns scratch instead, so
// callers must treat the result as read-only and valid only until the
// next row call with the same scratch).
func (m *matrix) row(v int32, scratch []float64) []float64 {
	base := int(v) * m.dim
	return m.data[base : base+m.dim : base+m.dim]
}

// addScaled adds s*x to row v element-wise.
func (m *matrix) addScaled(v int32, s float64, x []float64) {
	base := int(v) * m.dim
	row := m.data[base : base+m.dim : base+m.dim]
	for i, xv := range x {
		row[i] += s * xv
	}
}

// set copies vals into row v. Called only before workers start (warm
// start), so plain stores are safe in every build.
func (m *matrix) set(v int32, vals []float64) {
	copy(m.data[int(v)*m.dim:(int(v)+1)*m.dim], vals)
}

// rows converts the matrix to per-vertex slices once training finished;
// the caller owns the result.
func (m *matrix) rows() [][]float64 {
	out := make([][]float64, m.n)
	for v := 0; v < m.n; v++ {
		row := make([]float64, m.dim)
		copy(row, m.data[v*m.dim:(v+1)*m.dim])
		out[v] = row
	}
	return out
}

// Package obsv is the observability vocabulary shared by the batch
// build path (core.BuildModel's stage runner) and the serving daemon
// (internal/serve): counters, gauges, and log-linear histograms in a
// Registry that renders the Prometheus text exposition format. It is
// stdlib-only and allocation-free on the hot path — a Counter.Inc is
// one atomic add, a Histogram.Observe is a binary search plus two
// atomic adds — so instrumentation can sit on per-request and
// per-sample paths without showing up in profiles.
//
// Metric families are registered once by name; registration is
// idempotent (asking for the same name again returns the same family)
// but re-registering a name as a different kind or with a different
// label scheme panics, since that is always a programming error.
// Labeled families hand out their per-label-tuple series through With,
// which caches the series so steady-state lookups take one map read
// under a short critical section.
package obsv

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a set of metric families and renders them in
// Prometheus text format. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric with a fixed kind and label scheme; its
// series map holds one metric instance per label tuple ("" for the
// unlabeled singleton).
type family struct {
	name   string
	help   string
	kind   string // "counter", "gauge", "histogram"
	labels []string

	mu    sync.Mutex
	order []string          // label-tuple keys in first-use order
	by    map[string]metric // label-tuple key -> instance
}

// metric is the exposition hook every instrument implements. Rendering
// targets a strings.Builder (whose writes cannot fail) so the single
// fallible write to the caller's io.Writer happens once, in
// WritePrometheus.
type metric interface {
	expose(b *strings.Builder, name, labelPrefix string)
}

// register returns the family for name, creating it on first use and
// panicking on kind or label-scheme mismatch.
func (r *Registry) register(name, help, kind string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obsv: %s registered as %s, requested as %s", name, f.kind, kind))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obsv: %s registered with labels %v, requested with %v", name, f.labels, labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obsv: %s registered with labels %v, requested with %v", name, f.labels, labels))
			}
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, by: make(map[string]metric)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// get returns the series for one label tuple, creating it with mk on
// first use.
func (f *family) get(key string, mk func() metric) metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.by[key]; ok {
		return m
	}
	m := mk()
	f.by[key] = m
	f.order = append(f.order, key)
	return m
}

// labelKey renders one label tuple as the exposition fragment
// `name="value",...` (no braces), which doubles as the cache key.
func (f *family) labelKey(values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obsv: %s takes %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	if len(values) == 0 {
		return ""
	}
	var b strings.Builder
	for i, v := range values {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(f.labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the exposition-format label-value escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// ---- Counter ----

// Counter is a monotonically increasing count.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

func (c *Counter) expose(b *strings.Builder, name, labels string) {
	fmt.Fprintf(b, "%s%s %d\n", name, braced(labels), c.Value())
}

// Counter returns the unlabeled counter family name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil)
	return f.get("", func() metric { return new(Counter) }).(*Counter)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, "counter", labels)}
}

// With returns the counter for one label-value tuple.
func (v *CounterVec) With(values ...string) *Counter {
	key := v.f.labelKey(values)
	return v.f.get(key, func() metric { return new(Counter) }).(*Counter)
}

// ---- Gauge ----

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; safe for concurrent adders).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) expose(b *strings.Builder, name, labels string) {
	fmt.Fprintf(b, "%s%s %s\n", name, braced(labels), formatFloat(g.Value()))
}

// Gauge returns the unlabeled gauge family name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil)
	return f.get("", func() metric { return new(Gauge) }).(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, "gauge", labels)}
}

// With returns the gauge for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := v.f.labelKey(values)
	return v.f.get(key, func() metric { return new(Gauge) }).(*Gauge)
}

// ---- Histogram ----

// DefaultBuckets returns the log-linear bucket bounds histograms use:
// three linear subdivisions (1, 2.5, 5) of every decade from 1µs to
// 1000s. The scheme keeps relative error bounded (~2.5×) across nine
// orders of magnitude with 28 buckets — wide enough for both
// per-request latencies and multi-minute build stages, so the build
// and serve paths share one bucket vocabulary.
func DefaultBuckets() []float64 {
	var out []float64
	for e := -6; e <= 2; e++ {
		scale := math.Pow(10, float64(e))
		for _, m := range []float64{1, 2.5, 5} {
			out = append(out, m*scale)
		}
	}
	return append(out, 1000)
}

// Histogram counts observations into fixed buckets and tracks their
// sum, exposed in the Prometheus cumulative-`le` histogram format.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// NewHistogram returns a standalone histogram over the given ascending
// bucket bounds (the implicit +Inf bucket is appended), outside any
// Registry. Callers that need percentile readouts but no exposition —
// the load generator's latency report is the motivating case — reuse
// the same lock-free Observe/Quantile machinery the registered
// histograms run on. Bounds must be sorted ascending and non-empty.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obsv: NewHistogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obsv: histogram bounds not ascending at %d: %v <= %v",
				i, bounds[i], bounds[i-1]))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return newHistogram(b)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation inside the bucket holding that
// rank: the estimate's relative error is bounded by the bucket's
// width. Observations in the +Inf bucket clamp to the last finite
// bound. With no observations Quantile returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based; q=0 means the first.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: no upper bound to interpolate toward.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		// Position of the target rank within this bucket's count.
		frac := float64(rank-cum) / float64(n)
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; past the last bound the
	// observation lands in the implicit +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) expose(b *strings.Builder, name, labels string) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, braced(joinLabels(labels, `le="`+formatFloat(bound)+`"`)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, braced(joinLabels(labels, `le="+Inf"`)), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, braced(labels), formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, braced(labels), h.Count())
}

// Histogram returns the unlabeled histogram family name with the
// default log-linear buckets.
func (r *Registry) Histogram(name, help string) *Histogram {
	f := r.register(name, help, "histogram", nil)
	return f.get("", func() metric { return newHistogram(DefaultBuckets()) }).(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family name with the
// default log-linear buckets.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, "histogram", labels)}
}

// With returns the histogram for one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := v.f.labelKey(values)
	return v.f.get(key, func() metric { return newHistogram(DefaultBuckets()) }).(*Histogram)
}

// ---- Exposition ----

// WritePrometheus renders every registered family in the Prometheus
// text exposition format, families in registration order, series in
// first-use order. The page is rendered in memory and written to w in
// one call; the returned error is that write's.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range families {
		f.mu.Lock()
		keys := make([]string, len(f.order))
		copy(keys, f.order)
		series := make([]metric, len(keys))
		for i, k := range keys {
			series[i] = f.by[k]
		}
		f.mu.Unlock()
		if len(series) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for i, m := range series {
			m.expose(&b, f.name, keys[i])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the exposition text (the
// /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A failed write means the scraper went away mid-response;
		// there is nothing left to report it to.
		_ = r.WritePrometheus(w)
	})
}

// braced wraps a non-empty label fragment in {}.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// joinLabels appends one rendered label pair to an existing fragment.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// formatFloat renders a float in the shortest round-trippable form.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

package obsv

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "total jobs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("jobs_total", "total jobs"); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("queue_depth", "current depth")
	g.Set(3)
	g.Add(-1.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}

	var buf strings.Builder
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP jobs_total total jobs",
		"# TYPE jobs_total counter",
		"jobs_total 5",
		"# TYPE queue_depth gauge",
		"queue_depth 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestVecSeriesAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "requests", "path", "code")
	v.With("/v1/score", "200").Add(3)
	v.With("/v1/score", "404").Inc()
	if got := v.With("/v1/score", "200").Value(); got != 3 {
		t.Fatalf("series value = %d, want 3", got)
	}
	// Label values with exposition metacharacters must be escaped.
	r.GaugeVec("weird", "", "name").With("a\"b\\c\nd").Set(1)

	var buf strings.Builder
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`http_requests_total{path="/v1/score",code="200"} 3`,
		`http_requests_total{path="/v1/score",code="404"} 1`,
		`weird{name="a\"b\\c\nd"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistrationMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	for name, f := range map[string]func(){
		"kind":   func() { r.Gauge("m", "") },
		"labels": func() { r.CounterVec("m", "", "path") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong label arity did not panic")
			}
		}()
		r.CounterVec("v", "", "a", "b").With("only-one")
	}()
}

// TestHistogramBuckets checks the log-linear scheme end to end:
// observations land in the right bucket, the exposition is cumulative,
// and sum/count agree.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "request latency")
	h.Observe(0.0009) // <= 0.001 bucket
	h.Observe(0.002)  // <= 0.0025 bucket
	h.Observe(0.002)
	h.Observe(5000) // beyond every bound: +Inf bucket
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 0.0009+0.002+0.002+5000; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}

	var buf strings.Builder
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.001"} 1`,
		`latency_seconds_bucket{le="0.0025"} 3`, // cumulative
		`latency_seconds_bucket{le="1000"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		"latency_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestDefaultBucketsShape(t *testing.T) {
	b := DefaultBuckets()
	if len(b) == 0 {
		t.Fatal("no buckets")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not strictly ascending at %d: %v <= %v", i, b[i], b[i-1])
		}
	}
	if b[0] > 1e-6 || b[len(b)-1] < 1000 {
		t.Fatalf("bucket span [%v, %v] does not cover 1µs..1000s", b[0], b[len(b)-1])
	}
}

// TestConcurrentInstruments hammers every instrument kind from many
// goroutines; correctness of the totals plus the race detector cover
// the atomic paths.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	hv := r.HistogramVec("h", "", "route")
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := hv.With("hot")
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.003)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Errorf("counter = %d, want %d", c.Value(), workers*each)
	}
	if g.Value() != workers*each {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*each)
	}
	if h := hv.With("hot"); h.Count() != workers*each {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*each)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up 1") {
		t.Errorf("body missing metric:\n%s", rec.Body.String())
	}
}

// TestQuantile drives the bucket-interpolation estimator with a known
// uniform distribution: 1000 observations spread evenly over [0, 10)
// must put p50 near 5 and p99 near 9.9, within one bucket width.
func TestQuantile(t *testing.T) {
	bounds := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	h := NewHistogram(bounds)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 100) // 0.00 .. 9.99 uniform
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0, 0, 1},
		{0.5, 5, 1},
		{0.9, 9, 1},
		{0.99, 9.9, 1},
		{1, 10, 1},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
	// Observations beyond the last bound clamp to it.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.5); got != 2 {
		t.Errorf("+Inf bucket Quantile = %v, want clamp to 2", got)
	}
}

// TestNewHistogramValidation: the standalone constructor rejects
// malformed bounds loudly.
func TestNewHistogramValidation(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":      {},
		"descending": {2, 1},
		"duplicate":  {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds: no panic", name)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

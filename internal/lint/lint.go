// Package lint is a from-scratch static analyzer for this repository,
// built only on the standard library's go/ast, go/parser, go/token and
// go/types packages. It enforces repo-specific invariants that keep the
// detection pipeline (bipartite graphs → projections → LINE embedding →
// SVM) deterministic and race-free:
//
//   - mathrand: stochastic code must draw from mathx.RNG streams, never
//     math/rand or time-seeded generators (reproducibility contract in
//     internal/mathx/rng.go).
//   - maprange: iteration over a Go map has randomized order; functions
//     that emit ordered output (reports, feature vectors, embeddings)
//     must not range over maps unless the collected result is sorted.
//   - copylocks: sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once and
//     sync.Cond must not be copied by value.
//   - loopcapture: goroutines must receive loop variables as parameters,
//     not capture them from the enclosing loop.
//   - wgadd: sync.WaitGroup.Add must run before the goroutine it
//     accounts for is spawned, never inside it.
//   - droppederr: error returns must not be silently discarded outside
//     _test.go files.
//   - detpath: packages annotated //maldlint:deterministic may not
//     consult the wall clock, use global math/rand, or let map
//     iteration order choose their results.
//   - gobfields: structs handed to gob.Encode/Decode must not carry
//     unexported (silently dropped) or interface-typed fields.
//   - errcmpsentinel: sentinel errors must be compared with errors.Is,
//     never ==/!= (carries a mechanical -fix).
//   - closeleak: opened files must be closed on every CFG path
//     (dataflow-aware, built on the cfg.go graph).
//   - tickerloop: no time.After/NewTicker allocation per loop
//     iteration.
//   - atomicalign: 64-bit sync/atomic operands must stay 8-byte
//     aligned under 32-bit struct layout.
//
// Every check implements the Check interface, reports position-accurate
// diagnostics with a severity, and honors inline suppressions of the form
//
//	//maldlint:ignore <check>[,<check>...] [rationale]
//
// placed on the offending line or the line directly above it. A
// suppression must name the check(s) it silences; there is no blanket
// ignore. cmd/maldlint wires the checks into a CLI gate with JSON
// output, a baseline workflow, and per-check -explain documentation.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity classifies how a finding should be treated. The CLI gate
// fails on every finding regardless of severity; the level tells the
// reader whether the finding is a correctness bug (SeverityError) or a
// determinism/style hazard (SeverityWarning).
type Severity int

// Severity levels.
const (
	// SeverityWarning marks hazards that can silently change results
	// (nondeterministic iteration, captured loop variables).
	SeverityWarning Severity = iota + 1
	// SeverityError marks definite correctness bugs (copied locks,
	// dropped errors, forbidden randomness sources).
	SeverityError
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == SeverityError {
		return "error"
	}
	return "warning"
}

// Diagnostic is one finding: a position, the check that produced it, its
// severity, and a human-readable message. Mechanical checks may attach
// a Fix that cmd/maldlint -fix applies.
type Diagnostic struct {
	Pos      token.Position
	Check    string
	Severity Severity
	Message  string
	Fix      *Fix
}

// Fix is a mechanical rewrite for one finding: replace the source bytes
// [Start, End) of the finding's file with NewText. Offsets are byte
// offsets within the file. NeedsImport, when non-empty, names an import
// path the fixed file must have (added if missing).
type Fix struct {
	Start       int
	End         int
	NewText     string
	NeedsImport string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s] %s", d.Pos, d.Severity, d.Check, d.Message)
}

// Check is one pluggable analysis. Implementations walk the files of a
// Pass and report findings through it; they must be stateless so one
// Check value can serve many packages.
type Check interface {
	// Name is the short identifier used in diagnostics and in
	// //maldlint:ignore comments.
	Name() string
	// Doc is a one-line description shown by `maldlint -list`.
	Doc() string
	// Explain is the long-form documentation shown by
	// `maldlint -explain <check>`: what the check flags, why the repo
	// cares, and how to fix or suppress a finding.
	Explain() string
	// Severity is the level attached to every finding of this check.
	Severity() Severity
	// Run analyzes one type-checked package.
	Run(p *Pass)
}

// Pass hands one type-checked package to a Check and collects its
// findings.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File
	// Deterministic mirrors Package.Deterministic: the package carries a
	// //maldlint:deterministic annotation.
	Deterministic bool

	check  Check
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Check:    p.check.Name(),
		Severity: p.check.Severity(),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying a mechanical fix.
func (p *Pass) ReportFix(pos token.Pos, fix *Fix, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Check:    p.check.Name(),
		Severity: p.check.Severity(),
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Runner applies a set of checks to packages and filters suppressed
// findings.
type Runner struct {
	Checks []Check
}

// NewRunner returns a Runner with every built-in check registered in
// canonical order.
func NewRunner() *Runner {
	return &Runner{Checks: AllChecks()}
}

// Run analyzes one loaded package and returns its unsuppressed findings
// sorted by position.
func (r *Runner) Run(pkg *Package) []Diagnostic {
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, c := range r.Checks {
		pass := &Pass{
			Fset:          pkg.Fset,
			Pkg:           pkg.Types,
			Info:          pkg.Info,
			Files:         pkg.Files,
			Deterministic: pkg.Deterministic,
			check:         c,
		}
		pass.report = func(d Diagnostic) {
			if sup.matches(d.Pos.Filename, d.Pos.Line, d.Check) {
				return
			}
			out = append(out, d)
		}
		c.Run(pass)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Check < out[j].Check
	})
	return out
}

// suppressions records, per file and line, the set of check names an
// inline //maldlint:ignore comment silences.
type suppressions map[string]map[int]map[string]bool

// ignorePrefix introduces a suppression comment.
const ignorePrefix = "maldlint:ignore"

// collectSuppressions scans every comment of every file for ignore
// directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				names := parseIgnoreList(rest)
				if len(names) == 0 {
					continue // a bare ignore with no check names silences nothing
				}
				pos := fset.Position(c.Pos())
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					sup[pos.Filename] = byLine
				}
				set := byLine[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					byLine[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return sup
}

// parseIgnoreList extracts the comma-separated check names that lead an
// ignore directive; everything after the first whitespace-delimited
// token is free-form rationale.
func parseIgnoreList(rest string) []string {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// matches reports whether a finding of check at file:line is silenced by
// a directive on the same line or the line directly above.
func (s suppressions) matches(file string, line int, check string) bool {
	byLine, ok := s[file]
	if !ok {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		if set, ok := byLine[l]; ok && set[check] {
			return true
		}
	}
	return false
}

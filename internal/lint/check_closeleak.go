package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CloseLeakCheck finds opened files that are not closed on every
// control-flow path. It is the first dataflow-aware check: for each
// `f, err := os.Open(...)`-shaped statement it walks the function's CFG
// (cfg.go) from the open site and requires that every path to a return
// (or to the function end) either closes f, defers its close, or hands
// f off — passing it to another function, returning it, or storing it
// into longer-lived state all transfer the close obligation and end
// the analysis conservatively.
//
// The error branch of the open itself (`if err != nil { return ... }`)
// is exempt: there is no file to close when the open failed.
type CloseLeakCheck struct{}

// Name implements Check.
func (*CloseLeakCheck) Name() string { return "closeleak" }

// Doc implements Check.
func (*CloseLeakCheck) Doc() string {
	return "flag opened files not closed on every control-flow path"
}

// Explain implements Check.
func (*CloseLeakCheck) Explain() string {
	return `A file opened with os.Open/Create/OpenFile/CreateTemp (or an
io.Closer-returning open method like faultio.FS.CreateTemp) must be
closed on every path out of the function — including early error
returns, which is where leaks hide: each leaked descriptor survives
until GC finalization, and a daemon (maldetect serve reloading models,
the stream subcommand checkpointing every boundary) turns that into
descriptor exhaustion.

closeleak builds an intra-procedural CFG and walks every path from the
open statement. A path is satisfied when it reaches f.Close() or
defer f.Close() (including inside a deferred closure), or when f
escapes — returned, passed to a call, or stored — because ownership
moved with it. The branch guarded by the open's own err != nil check
is skipped: a failed open yields no file.

Fix with defer f.Close() immediately after the error check, or close
explicitly on each early return (the write path: check the Close error
instead of deferring it away).`
}

// Severity implements Check.
func (*CloseLeakCheck) Severity() Severity { return SeverityError }

// Run implements Check.
func (c *CloseLeakCheck) Run(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			body := funcBody(n)
			if body == nil {
				return true
			}
			c.checkFunc(p, body)
			return true
		})
	}
}

// checkFunc analyzes one function body (nested function literals are
// visited as their own functions by Run's Inspect).
func (c *CloseLeakCheck) checkFunc(p *Pass, body *ast.BlockStmt) {
	opens := findOpens(p, body)
	if len(opens) == 0 {
		return
	}
	g := buildCFG(body, p.Info)
	for _, o := range opens {
		node, ok := g.byStmt[o.stmt]
		if !ok {
			continue
		}
		if leak := findLeakPath(p, g, node, o); leak != nil {
			where := "the function end"
			if leak.Stmt != nil {
				where = p.Fset.Position(leak.Stmt.Pos()).String()
			}
			p.Reportf(o.stmt.Pos(),
				"%s opened here is not closed on the path reaching %s: close it, defer its close, or hand it off",
				o.file.Name(), where)
		}
	}
}

// openSite is one tracked open: the statement, the file variable, and
// the error variable of the same assignment (nil when single-valued).
type openSite struct {
	stmt ast.Stmt
	file types.Object
	err  types.Object
}

// openerNames are the os-package functions (and method names on any
// receiver whose first result is a closer) that transfer a close
// obligation to the caller.
var openerNames = map[string]bool{
	"Open":       true,
	"Create":     true,
	"OpenFile":   true,
	"CreateTemp": true,
}

// findOpens collects open-shaped assignments directly inside body
// (not in nested function literals).
func findOpens(p *Pass, body *ast.BlockStmt) []openSite {
	var out []openSite
	inspectShallow(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || !isOpenCall(p, call) {
			return true
		}
		fileID, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
		if !ok || fileID.Name == "_" {
			return true
		}
		fileObj := p.Info.ObjectOf(fileID)
		if fileObj == nil {
			return true
		}
		var errObj types.Object
		if len(assign.Lhs) > 1 {
			if errID, ok := ast.Unparen(assign.Lhs[1]).(*ast.Ident); ok && errID.Name != "_" {
				errObj = p.Info.ObjectOf(errID)
			}
		}
		out = append(out, openSite{stmt: assign, file: fileObj, err: errObj})
		return true
	})
	return out
}

// isOpenCall reports whether call opens a closable resource the caller
// owns: an os.* opener, or a method of one of those names whose first
// result implements io.Closer (the faultio.FS seam).
func isOpenCall(p *Pass, call *ast.CallExpr) bool {
	obj := calleeObject(p.Info, call)
	if obj == nil || !openerNames[obj.Name()] {
		return false
	}
	if objPkgPath(obj) == "os" {
		return true
	}
	sig, ok := obj.Type().Underlying().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return implementsCloser(sig.Results().At(0).Type())
}

// implementsCloser reports whether t has a Close() error method.
func implementsCloser(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		if m.Name() != "Close" {
			continue
		}
		sig, ok := m.Type().Underlying().(*types.Signature)
		if ok && sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
			isErrorType(sig.Results().At(0).Type()) {
			return true
		}
	}
	return false
}

// pathState keys the DFS visited set: the node plus whether the open's
// err variable still holds the open's result (the error-branch
// exemption only applies while it does).
type pathState struct {
	node     *cfgNode
	errValid bool
}

// findLeakPath walks every CFG path from the open site and returns the
// node of the first leaking return (or the exit node for a fall-off
// leak), or nil when every path closes or hands off the file.
func findLeakPath(p *Pass, g *funcCFG, open *cfgNode, o openSite) *cfgNode {
	visited := make(map[pathState]bool)
	var dfs func(n *cfgNode, errValid bool) *cfgNode
	dfs = func(n *cfgNode, errValid bool) *cfgNode {
		st := pathState{n, errValid}
		if visited[st] {
			return nil
		}
		visited[st] = true
		if n == g.Exit {
			return n
		}
		scope := nodeScope(n)
		switch classifyUse(p, scope, o.file) {
		case useCloses, useEscapes:
			return nil
		}
		if n.IsReturn {
			return n // return without close or hand-off: leak
		}
		if n.Terminates {
			return nil
		}
		if errValid && n.Stmt != nil && assignsObject(p, n.Stmt, o.err) {
			errValid = false
		}
		// Error-branch exemption: skip the branch on which the open
		// failed.
		if ifs, ok := n.Stmt.(*ast.IfStmt); ok && errValid && o.err != nil {
			if skip := failBranch(p, ifs, o.err); skip >= 0 && skip < len(n.Succ) {
				for i, s := range n.Succ {
					if i == skip {
						continue
					}
					if leak := dfs(s, errValid); leak != nil {
						return leak
					}
				}
				return nil
			}
		}
		for _, s := range n.Succ {
			if leak := dfs(s, errValid); leak != nil {
				return leak
			}
		}
		return nil
	}
	for _, s := range open.Succ {
		if leak := dfs(s, true); leak != nil {
			return leak
		}
	}
	return nil
}

// useKind classifies what a statement does with the tracked file.
type useKind int

const (
	useNone useKind = iota
	useCloses
	useEscapes
)

// classifyUse inspects the node-relevant AST for uses of obj. A call of
// obj.Close (anywhere, including deferred closures) closes; any other
// mention — argument, return value, store, reassignment — is a
// conservative hand-off that ends the obligation.
func classifyUse(p *Pass, scope []ast.Node, obj types.Object) useKind {
	kind := useNone
	for _, root := range scope {
		if root == nil {
			continue
		}
		ast.Inspect(root, func(n ast.Node) bool {
			if kind == useCloses {
				return false
			}
			switch x := n.(type) {
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
						kind = useCloses
						return false
					}
				}
			case *ast.Ident:
				if p.Info.ObjectOf(x) == obj {
					if kind == useNone {
						kind = useEscapes
					}
				}
			}
			return true
		})
	}
	return kind
}

// nodeScope returns the AST the node's statement actually evaluates —
// for compound statements, just the header expressions (bodies are
// separate CFG nodes).
func nodeScope(n *cfgNode) []ast.Node {
	switch x := n.Stmt.(type) {
	case nil:
		return nil
	case *ast.IfStmt:
		return []ast.Node{x.Cond}
	case *ast.ForStmt:
		if x.Cond == nil {
			return nil
		}
		return []ast.Node{x.Cond}
	case *ast.RangeStmt:
		return []ast.Node{x.X, x.Key, x.Value}
	case *ast.SwitchStmt:
		if x.Tag == nil {
			return nil
		}
		return []ast.Node{x.Tag}
	case *ast.TypeSwitchStmt:
		return []ast.Node{x.Assign}
	case *ast.SelectStmt:
		return nil
	default:
		return []ast.Node{x}
	}
}

// assignsObject reports whether stmt reassigns obj (killing the
// error-branch exemption for the open's err variable).
func assignsObject(p *Pass, stmt ast.Stmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// failBranch returns the successor index of the branch taken when the
// open failed (0 = then, 1 = else/fallthrough), or -1 when the
// condition is not a nil check of errObj.
func failBranch(p *Pass, ifs *ast.IfStmt, errObj types.Object) int {
	bin, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok {
		return -1
	}
	var id *ast.Ident
	var nilSide ast.Expr
	if x, ok := ast.Unparen(bin.X).(*ast.Ident); ok {
		id, nilSide = x, bin.Y
	} else if y, ok := ast.Unparen(bin.Y).(*ast.Ident); ok {
		id, nilSide = y, bin.X
	} else {
		return -1
	}
	if p.Info.ObjectOf(id) != errObj {
		return -1
	}
	if nid, ok := ast.Unparen(nilSide).(*ast.Ident); !ok || nid.Name != "nil" {
		return -1
	}
	switch bin.Op {
	case token.NEQ: // if err != nil { <failed> } else { <ok> }
		return 0
	case token.EQL: // if err == nil { <ok> } else { <failed> }
		return 1
	}
	return -1
}

package lint

import (
	"go/ast"
	"go/types"
)

// AllChecks returns every built-in check in canonical order. The slice
// is freshly allocated; callers may filter it.
func AllChecks() []Check {
	return []Check{
		&MathRandCheck{Allow: []string{"repro/internal/mathx"}},
		&MapRangeCheck{},
		&CopyLocksCheck{},
		&LoopCaptureCheck{},
		&WgAddCheck{},
		&DroppedErrCheck{},
		&DetPathCheck{},
		&GobFieldsCheck{},
		&ErrCmpSentinelCheck{},
		&CloseLeakCheck{},
		&TickerLoopCheck{},
		&AtomicAlignCheck{},
	}
}

// CheckByName returns the check with the given name from AllChecks, or
// nil if none matches.
func CheckByName(name string) Check {
	for _, c := range AllChecks() {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// objPkgPath returns the import path of the package an object belongs
// to, or "" for universe-scope objects.
func objPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// calleeObject resolves the function or method a call expression
// invokes, or nil when it cannot be determined (dynamic calls through
// function values still resolve to the variable's object).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.ObjectOf(fun)
	case *ast.SelectorExpr:
		return info.ObjectOf(fun.Sel)
	}
	return nil
}

// isSyncType reports whether t is the named type sync.<name>.
func isSyncType(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && objPkgPath(obj) == "sync" && obj.Name() == name
}

// lockTypes are the sync types that must never be copied by value.
var lockTypes = []string{"Mutex", "RWMutex", "WaitGroup", "Once", "Cond"}

// containsLock reports whether a value of type t embeds (directly, in a
// struct field, or in an array element) one of the sync lock types.
// Pointers, slices, maps and channels break the chain: copying those
// copies a reference, not the lock.
func containsLock(t types.Type) bool {
	return containsLockRec(t, make(map[types.Type]bool))
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isAnyLock(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}

func isAnyLock(t types.Type) bool {
	for _, name := range lockTypes {
		if isSyncType(t, name) {
			return true
		}
	}
	return false
}

// isWaitGroup reports whether t (possibly behind a pointer) is
// sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isSyncType(t, "WaitGroup")
}

// containsTimeNow reports whether the expression tree rooted at e calls
// time.Now.
func containsTimeNow(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := calleeObject(info, call); obj != nil &&
			objPkgPath(obj) == "time" && obj.Name() == "Now" {
			found = true
			return false
		}
		return true
	})
	return found
}

// rootIdent walks down selector/index/star expressions to the leftmost
// identifier, e.g. a.b[i].c → a.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// WgAddCheck flags the classic WaitGroup race: calling wg.Add inside the
// very goroutine it accounts for. If the scheduler runs wg.Wait before
// the goroutine starts, the counter is still zero and Wait returns
// early. The pattern detected is a `go func(){ ... }()` whose body calls
// Add on a WaitGroup that the same body also releases with a directly
// deferred Done — Add must happen before the go statement instead.
// Worker goroutines that Add before spawning sub-goroutines (whose Done
// lives in the nested literal) are not flagged.
type WgAddCheck struct{}

// Name implements Check.
func (*WgAddCheck) Name() string { return "wgadd" }

// Doc implements Check.
func (*WgAddCheck) Doc() string {
	return "flag sync.WaitGroup.Add called inside the goroutine it accounts for"
}

// Severity implements Check.
func (*WgAddCheck) Severity() Severity { return SeverityError }

// Explain implements Check.
func (*WgAddCheck) Explain() string {
	return `wg.Add called inside the goroutine it accounts for races with the
matching wg.Wait: the waiter can observe the counter at zero and return
before the goroutine has registered itself, so Wait no longer waits —
sharded trainers join before every shard finished, and the merged model
is silently missing contributions.

wgadd flags wg.Add calls lexically inside a go func body. Call Add on
the launching side, before the go statement (the repo's pattern:
wg.Add(1) immediately before each go worker()).`
}

// Run implements Check.
func (*WgAddCheck) Run(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fn, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			// Collect, at this literal's own level only, the WaitGroups
			// with a deferred Done and the positions of Add calls.
			doneOn := make(map[types.Object]bool)
			type addCall struct {
				obj types.Object
				pos ast.Node
			}
			var adds []addCall
			inspectShallow(fn.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.DeferStmt:
					if obj := waitGroupMethodRecv(p, x.Call, "Done"); obj != nil {
						doneOn[obj] = true
					}
				case *ast.CallExpr:
					if obj := waitGroupMethodRecv(p, x, "Add"); obj != nil {
						adds = append(adds, addCall{obj: obj, pos: x})
					}
				}
				return true
			})
			for _, a := range adds {
				if doneOn[a.obj] {
					p.Reportf(a.pos.Pos(),
						"%s.Add called inside the goroutine it accounts for: Wait can run before the goroutine starts; call Add before the go statement", a.obj.Name())
				}
			}
			return true
		})
	}
}

// waitGroupMethodRecv returns the object of the receiver variable when
// call invokes the named method on a sync.WaitGroup, else nil.
func waitGroupMethodRecv(p *Pass, call *ast.CallExpr, method string) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	if t := p.TypeOf(sel.X); t == nil || !isWaitGroup(t) {
		return nil
	}
	root := rootIdent(sel.X)
	if root == nil {
		return nil
	}
	return p.Info.ObjectOf(root)
}

package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func sampleFindings() []JSONFinding {
	return []JSONFinding{
		{File: "internal/a/a.go", Line: 10, Column: 2, Check: "droppederr", Severity: "error", Message: "dropped"},
		{File: "internal/a/a.go", Line: 20, Column: 2, Check: "droppederr", Severity: "error", Message: "dropped"},
		{File: "internal/b/b.go", Line: 5, Column: 1, Check: "maprange", Severity: "warning", Message: "unsorted"},
	}
}

// TestBaselineRoundTrip writes a baseline, reads it back, and checks
// that it absorbs exactly the findings it recorded — multiset
// semantics: two identical findings need two entries.
func TestBaselineRoundTrip(t *testing.T) {
	findings := sampleFindings()
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, findings); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	base, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	if base.Len() != 3 {
		t.Errorf("baseline Len = %d, want 3", base.Len())
	}
	fresh, baselined := base.Filter(findings)
	if len(fresh) != 0 || baselined != 3 {
		t.Errorf("Filter(all recorded) = %d fresh, %d baselined; want 0, 3", len(fresh), baselined)
	}
	// A third identical droppederr finding exceeds the multiplicity and
	// must surface as new.
	extra := append(findings, JSONFinding{
		File: "internal/a/a.go", Line: 30, Check: "droppederr", Severity: "error", Message: "dropped",
	})
	fresh, baselined = base.Filter(extra)
	if len(fresh) != 1 || baselined != 3 {
		t.Errorf("Filter(extra) = %d fresh, %d baselined; want 1, 3", len(fresh), baselined)
	}
	// Line numbers are not identity: shifting every finding changes
	// nothing.
	shifted := sampleFindings()
	for i := range shifted {
		shifted[i].Line += 100
	}
	fresh, _ = base.Filter(shifted)
	if len(fresh) != 0 {
		t.Errorf("line-shifted findings should all be baselined, got %d fresh", len(fresh))
	}
}

// TestBaselineEmptyFile accepts both an empty file and an empty array.
func TestBaselineEmptyFile(t *testing.T) {
	for name, content := range map[string]string{"empty": "", "array": "[]\n"} {
		path := filepath.Join(t.TempDir(), name+".json")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		base, err := ReadBaseline(path)
		if err != nil {
			t.Fatalf("ReadBaseline(%s): %v", name, err)
		}
		if base.Len() != 0 {
			t.Errorf("%s baseline Len = %d, want 0", name, base.Len())
		}
		fresh, baselined := base.Filter(sampleFindings())
		if len(fresh) != 3 || baselined != 0 {
			t.Errorf("%s: Filter = %d fresh, %d baselined; want 3, 0", name, len(fresh), baselined)
		}
	}
}

// TestWriteBaselineStable requires diff-stable output: sorted keys and
// stripped positions.
func TestWriteBaselineStable(t *testing.T) {
	findings := sampleFindings()
	reversed := []JSONFinding{findings[2], findings[1], findings[0]}
	var a, b bytes.Buffer
	if err := WriteBaseline(&a, findings); err != nil {
		t.Fatal(err)
	}
	if err := WriteBaseline(&b, reversed); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("baseline output depends on input order:\n%s\nvs\n%s", a.String(), b.String())
	}
	var entries []JSONFinding
	if err := json.Unmarshal(a.Bytes(), &entries); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	for _, e := range entries {
		if e.Line != 0 || e.Column != 0 {
			t.Errorf("baseline entry %s kept position %d:%d", e.Key(), e.Line, e.Column)
		}
	}
}

// TestToJSON checks the diagnostic-to-wire conversion, including the
// fixable flag.
func TestToJSON(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: "x.go", Line: 3, Column: 1},
			Check:    "errcmpsentinel",
			Severity: SeverityError,
			Message:  "use errors.Is",
			Fix:      &Fix{Start: 1, End: 2, NewText: "y"},
		},
		{
			Pos:      token.Position{Filename: "y.go", Line: 9, Column: 4},
			Check:    "maprange",
			Severity: SeverityWarning,
			Message:  "unsorted",
		},
	}
	got := ToJSON(diags)
	if len(got) != 2 {
		t.Fatalf("ToJSON returned %d findings, want 2", len(got))
	}
	if !got[0].Fixable || got[0].Severity != "error" || got[0].Line != 3 {
		t.Errorf("first finding wrong: %+v", got[0])
	}
	if got[1].Fixable || got[1].Severity != "warning" {
		t.Errorf("second finding wrong: %+v", got[1])
	}
}

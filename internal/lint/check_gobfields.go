package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// GobFieldsCheck guards the repo's persisted formats (core/persist.go
// model files, stream/checkpoint.go checkpoints, svm and line wire
// structs): a struct handed to gob.Encode/Decode with unexported fields
// silently drops them on the wire, and interface-typed fields need
// gob.Register and break the bit-identical round-trip contract. Both
// failure modes are invisible at compile time and only surface as
// corrupt or lossy restores in production.
type GobFieldsCheck struct{}

// Name implements Check.
func (*GobFieldsCheck) Name() string { return "gobfields" }

// Doc implements Check.
func (*GobFieldsCheck) Doc() string {
	return "flag gob.Encode/Decode of structs with unexported or interface-typed fields"
}

// Explain implements Check.
func (*GobFieldsCheck) Explain() string {
	return `encoding/gob serializes only exported struct fields: an unexported
field passes through Encode without error and comes back zero-valued
from Decode — silent data loss in a persisted model or checkpoint.
Interface-typed fields are also hazardous: they require gob.Register
of every concrete type and make the wire format depend on runtime
state.

gobfields resolves the argument type of every (*gob.Encoder).Encode
and (*gob.Decoder).Decode call, walks the struct (recursively through
exported fields, slices, arrays, maps and pointers), and reports every
unexported data-carrying field and every interface-typed field it can
reach. Types implementing GobEncoder/GobDecoder or
encoding.BinaryMarshaler (e.g. time.Time) manage their own wire format
and are exempt.

Fix by exporting the field on a dedicated wire struct (the
checkpointWire pattern in internal/stream), or implement GobEncoder on
the type.`
}

// Severity implements Check.
func (*GobFieldsCheck) Severity() Severity { return SeverityError }

// Run implements Check.
func (c *GobFieldsCheck) Run(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if !isGobCodecCall(p, call) {
				return true
			}
			t := p.TypeOf(call.Args[0])
			if t == nil {
				return true
			}
			seen := make(map[types.Type]bool)
			for _, bad := range gobHazards(t, "", seen) {
				p.Reportf(call.Pos(), "%s", bad)
			}
			return true
		})
	}
}

// isGobCodecCall reports whether call is Encode/Decode on a
// *gob.Encoder / *gob.Decoder.
func isGobCodecCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if name != "Encode" && name != "Decode" {
		return false
	}
	recv := p.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return objPkgPath(obj) == "encoding/gob" &&
		(obj.Name() == "Encoder" || obj.Name() == "Decoder")
}

// gobHazards walks t the way gob will and describes every field that
// gob silently drops (unexported) or that needs runtime registration
// (interface-typed). path carries the field trail for the message.
func gobHazards(t types.Type, path string, seen map[types.Type]bool) []string {
	if t == nil || seen[t] {
		return nil
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return gobHazards(u.Elem(), path, seen)
	case *types.Slice:
		return gobHazards(u.Elem(), path, seen)
	case *types.Array:
		return gobHazards(u.Elem(), path, seen)
	case *types.Map:
		return append(gobHazards(u.Key(), path, seen), gobHazards(u.Elem(), path, seen)...)
	case *types.Struct:
		if selfEncoding(t) {
			return nil
		}
		typeName := t.String()
		if named, ok := t.(*types.Named); ok {
			typeName = named.Obj().Name()
		}
		var out []string
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if f.Name() == "_" {
				continue // blank padding carries no data
			}
			trail := f.Name()
			if path != "" {
				trail = path + "." + trail
			}
			if !f.Exported() {
				out = append(out, fmt.Sprintf(
					"gob silently drops unexported field %s of %s: export it on a wire struct or implement GobEncoder",
					trail, typeName))
				continue
			}
			if _, isIface := f.Type().Underlying().(*types.Interface); isIface {
				out = append(out, fmt.Sprintf(
					"interface-typed field %s of %s needs gob.Register and makes the wire format runtime-dependent",
					trail, typeName))
				continue
			}
			out = append(out, gobHazards(f.Type(), trail, seen)...)
		}
		return out
	}
	return nil
}

// selfEncoding reports whether t (or *t) implements GobEncoder,
// GobDecoder, or encoding.BinaryMarshaler/Unmarshaler — types that
// define their own wire format, which gob respects field-visibility
// rules notwithstanding.
func selfEncoding(t types.Type) bool {
	for _, name := range [...]string{"GobEncode", "GobDecode", "MarshalBinary", "UnmarshalBinary"} {
		if hasMethod(t, name) || hasMethod(types.NewPointer(t), name) {
			return true
		}
	}
	return false
}

// hasMethod reports whether t's method set contains a method with the
// given name.
func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

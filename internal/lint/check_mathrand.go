package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// MathRandCheck enforces the repository's RNG hygiene contract: all
// stochastic code draws from per-goroutine mathx.RNG streams derived
// from one experiment seed (internal/mathx/rng.go), so importing
// math/rand — or seeding any generator from the wall clock — silently
// breaks reproducibility.
type MathRandCheck struct {
	// Allow lists package import paths exempt from the check (the RNG
	// home package itself).
	Allow []string
}

// Name implements Check.
func (*MathRandCheck) Name() string { return "mathrand" }

// Doc implements Check.
func (*MathRandCheck) Doc() string {
	return "forbid math/rand imports and time-seeded randomness outside internal/mathx"
}

// Severity implements Check.
func (*MathRandCheck) Severity() Severity { return SeverityError }

// Explain implements Check.
func (*MathRandCheck) Explain() string {
	return `The paper's pipeline must be reproducible: identical input and seed
must produce identical embeddings, scores, and alert feeds. The global
math/rand generators (rand.Intn, rand.Shuffle, ...) share hidden
process-wide state — any import anywhere reorders every other
consumer's draws, and Go seeds the global source randomly at startup.

mathrand bans importing math/rand and math/rand/v2 outside the allow
list (repro/internal/mathx, which wraps a seeded source). Route all
randomness through mathx.RNG streams: each consumer owns its sequence,
so adding a new random consumer cannot perturb existing ones.`
}

// forbiddenImports are the randomness packages the contract bans.
var forbiddenImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// seedCallNames are callee names that bind a seed to a generator.
var seedCallNames = map[string]bool{
	"Seed":       true,
	"NewSource":  true,
	"NewRNG":     true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// Run implements Check.
func (c *MathRandCheck) Run(p *Pass) {
	for _, allow := range c.Allow {
		if p.Pkg.Path() == allow {
			return
		}
	}
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if forbiddenImports[path] {
				p.Reportf(spec.Pos(),
					"import of %s: stochastic code must use mathx.RNG streams (internal/mathx/rng.go)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				name := calleeName(x)
				if !seedCallNames[name] {
					return true
				}
				for _, arg := range x.Args {
					if containsTimeNow(p.Info, arg) {
						p.Reportf(x.Pos(),
							"%s seeded from time.Now: experiments must be reproducible from a fixed seed", name)
						break
					}
				}
			case *ast.KeyValueExpr:
				key, ok := x.Key.(*ast.Ident)
				if !ok || !strings.Contains(key.Name, "Seed") {
					return true
				}
				if containsTimeNow(p.Info, x.Value) {
					p.Reportf(x.Pos(),
						"field %s set from time.Now: experiments must be reproducible from a fixed seed", key.Name)
				}
			}
			return true
		})
	}
}

// calleeName extracts the syntactic name a call invokes ("Seed" for both
// rand.Seed and r.Seed).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
